// Capacity planner: for each strategy, find the maximum number of model
// instances the server sustains at a target goodput — the operator-facing
// inverse of Figure 13, and a direct measure of DeepPlan's consolidation
// benefit ("fewer GPU servers" from the paper's introduction).
//
//   ./build/examples/capacity_planner --model=bert_base --rate=100
//       --slo_ms=100 --target=0.99
#include <iostream>

#include "src/deepplan.h"
#include "src/serving/capacity.h"

int main(int argc, char** argv) {
  using namespace deepplan;

  Flags flags;
  flags.DefineString("model", "bert_base", "zoo model name");
  flags.DefineDouble("rate", 100.0, "offered load (requests/second)");
  flags.DefineDouble("slo_ms", 100.0, "latency SLO (ms)");
  flags.DefineDouble("target", 0.99, "goodput target (fraction)");
  flags.DefineInt("probe_requests", 600, "requests per binary-search probe");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const Model model = ModelZoo::ByName(flags.GetString("model"));

  std::cout << "Capacity planning: " << model.name() << " on " << topology.name()
            << " at " << flags.GetDouble("rate") << " rps, SLO "
            << flags.GetDouble("slo_ms") << " ms, goodput >= "
            << Table::Pct(flags.GetDouble("target")) << "\n\n";

  Table table({"strategy", "max instances", "goodput", "p99 (ms)",
               "cold-start rate", "probes"});
  int pipeswitch_max = 0;
  int best_max = 0;
  for (const Strategy strategy :
       {Strategy::kPipeSwitch, Strategy::kDeepPlanDha, Strategy::kDeepPlanPtDha}) {
    CapacityQuery query;
    query.strategy = strategy;
    query.rate_per_sec = flags.GetDouble("rate");
    query.slo = Millis(flags.GetDouble("slo_ms"));
    query.target_goodput = flags.GetDouble("target");
    query.requests_per_probe = static_cast<int>(flags.GetInt("probe_requests"));
    const CapacityReport report = FindMaxConcurrency(topology, perf, model, query);
    if (strategy == Strategy::kPipeSwitch) {
      pipeswitch_max = report.max_instances;
    }
    best_max = std::max(best_max, report.max_instances);
    table.AddRow({StrategyName(strategy), std::to_string(report.max_instances),
                  Table::Pct(report.goodput), Table::Num(report.p99_ms, 1),
                  Table::Pct(report.cold_start_rate),
                  std::to_string(report.probes)});
  }
  table.Print(std::cout);
  if (pipeswitch_max > 0) {
    std::cout << "\nDeepPlan consolidates "
              << Table::Num(static_cast<double>(best_max) / pipeswitch_max, 2)
              << "x the instances of PipeSwitch on the same hardware.\n";
  }
  return 0;
}
