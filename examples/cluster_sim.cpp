// Cluster simulation: multiple 4-GPU servers behind a router, serving more
// model instances than any single server's GPU memory holds — the paper's
// cost argument ("fewer GPU servers") at cluster scale. Compares routing
// policies: instance affinity keeps each back-end's cache sharded and hot;
// round-robin duplicates residency across back-ends and thrashes.
//
//   ./build/examples/cluster_sim --servers=2 --instances=240 --rate=150
#include <iostream>

#include "src/deepplan.h"
#include "src/serving/cluster.h"

int main(int argc, char** argv) {
  using namespace deepplan;

  Flags flags;
  flags.DefineInt("servers", 2, "number of back-end servers (4 GPUs each)");
  flags.DefineInt("instances", 240, "cluster-wide BERT-Base instances");
  flags.DefineDouble("rate", 150.0, "offered load (requests/second)");
  flags.DefineDouble("seconds", 10.0, "workload duration");
  flags.DefineString("strategy", "pt_dha", "baseline|pipeswitch|dha|pt|pt_dha");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const std::string strategy = flags.GetString("strategy");

  PoissonOptions w;
  w.rate_per_sec = flags.GetDouble("rate");
  w.num_instances = static_cast<int>(flags.GetInt("instances"));
  w.duration = Seconds(flags.GetDouble("seconds"));
  const Trace trace = GeneratePoissonTrace(w);

  std::cout << "Cluster: " << flags.GetInt("servers") << "x " << topology.name()
            << " serving " << flags.GetInt("instances") << " BERT-Base instances, "
            << trace.size() << " requests @ " << w.rate_per_sec << " rps\n\n";

  Table table({"routing", "p99 (ms)", "goodput", "cold-start rate",
               "per-server requests"});
  for (const RoutingPolicy routing :
       {RoutingPolicy::kRoundRobin, RoutingPolicy::kInstanceAffinity,
        RoutingPolicy::kLeastOutstanding}) {
    ClusterOptions options;
    options.num_servers = static_cast<int>(flags.GetInt("servers"));
    options.routing = routing;
    options.server.strategy = strategy == "baseline"     ? Strategy::kBaseline
                              : strategy == "pipeswitch" ? Strategy::kPipeSwitch
                              : strategy == "dha"        ? Strategy::kDeepPlanDha
                              : strategy == "pt"         ? Strategy::kDeepPlanPt
                                                         : Strategy::kDeepPlanPtDha;
    options.server.slo = Millis(100);
    Cluster cluster(topology, perf, options);
    const int type = cluster.RegisterModelType(ModelZoo::BertBase());
    cluster.AddInstances(type, static_cast<int>(flags.GetInt("instances")));
    const ServingMetrics m = cluster.Run(trace);
    std::string shares;
    for (int s = 0; s < cluster.num_servers(); ++s) {
      shares += (s == 0 ? "" : " / ") +
                std::to_string(cluster.server(s).metrics().count());
    }
    table.AddRow({RoutingPolicyName(routing), Table::Num(m.LatencyPercentileMs(99), 1),
                  Table::Pct(m.Goodput(Millis(100))), Table::Pct(m.ColdStartRate()),
                  shares});
  }
  table.Print(std::cout);
  std::cout << "\nInstance affinity shards the instance set so each back-end's "
               "memory covers its share; cache-oblivious routing re-provisions "
               "models on every back-end.\n";
  return 0;
}
