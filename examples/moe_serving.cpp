// Future work, Section 7: Mixture-of-Experts provisioning. In MoE models only
// one expert per layer runs for a given input; once the router's choice is
// known, DeepPlan can provision just the active expert's weights and leave
// the inactive experts host-side — "effectively reduce the time spent of
// transferring models".
//
// This example compares cold-start latency of (1) a dense plan that loads
// every expert, (2) an expert-aware plan that loads only the active expert
// and keeps the rest host-resident (DHA, never touched), and (3) Algorithm 1
// run on the same profile, which discovers the inactive experts by itself
// because their DHA execution time is ~0.
//
//   ./build/examples/moe_serving [--experts=8] [--layers=12]
#include <iostream>

#include "src/deepplan.h"

int main(int argc, char** argv) {
  using namespace deepplan;

  Flags flags;
  flags.DefineInt("experts", 8, "experts per MoE layer (1 active)");
  flags.DefineInt("layers", 12, "transformer blocks");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const Model moe = ModelZoo::MoeSparse("moe", 768, flags.GetInt("layers"),
                                        flags.GetInt("experts"), 384);
  std::cout << "MoE model: " << moe.num_layers() << " layers, "
            << FormatBytes(moe.total_param_bytes()) << " parameters, "
            << flags.GetInt("experts") << " experts/block (1 active)\n\n";

  Profiler profiler(&perf);
  const ModelProfile profile = profiler.Profile(moe);

  // (1) Dense: load everything.
  const ExecutionPlan dense(moe.name(), moe.num_layers());
  // (2) Expert-aware: inactive experts (zero FLOPs in the reference forward
  // pass) stay host-side.
  ExecutionPlan expert_aware(moe.name(), moe.num_layers());
  for (std::size_t i = 0; i < moe.num_layers(); ++i) {
    if (moe.layer(i).has_params() && moe.layer(i).flops == 0) {
      expert_aware.set_method(i, ExecMethod::kDirectHostAccess);
    }
  }
  // (3) Algorithm 1 discovers the same structure from the profile.
  const ExecutionPlan discovered = Planner(&profile).GeneratePlan();

  auto run_cold = [&](const ExecutionPlan& plan) {
    Simulator sim;
    ServerFabric fabric(&sim, &topology);
    Engine engine(&sim, &fabric, &perf);
    InferenceResult result;
    engine.RunCold(moe, plan, 0, {}, ColdRunOptions{},
                   [&](const InferenceResult& r) { result = r; });
    sim.Run();
    return result;
  };

  Table table({"plan", "GPU-resident", "host-resident", "cold latency", "stall"});
  const struct {
    const char* name;
    const ExecutionPlan* plan;
  } rows[] = {{"dense (load all experts)", &dense},
              {"expert-aware (active only)", &expert_aware},
              {"Algorithm 1 (discovered)", &discovered}};
  for (const auto& row : rows) {
    const InferenceResult r = run_cold(*row.plan);
    table.AddRow({row.name, FormatBytes(row.plan->GpuResidentBytes(profile)),
                  FormatBytes(row.plan->HostResidentBytes(profile)),
                  FormatDuration(r.latency), FormatDuration(r.stall)});
  }
  table.Print(std::cout);
  std::cout << "\nExpert-aware provisioning skips the inactive experts' "
               "transfer entirely — the Section 7 claim.\n";
  return 0;
}
