// Trace replay: generate (or load) an Azure-Functions-like arrival trace,
// save it to CSV, and replay it against the serving system — the paper's
// Section 5.3.2 workflow. Use --trace to replay a real MAF-derived CSV
// ("<time_ns>,<instance>" rows).
//
//   ./build/examples/trace_replay --minutes=5 --rate=120 --save=trace.csv
//   ./build/examples/trace_replay --trace=trace.csv --strategy=pipeswitch
#include <iostream>

#include "src/deepplan.h"

int main(int argc, char** argv) {
  using namespace deepplan;

  Flags flags;
  flags.DefineString("trace", "", "CSV trace to replay (empty = synthesize)");
  flags.DefineString("save", "", "save the synthesized trace to this CSV");
  flags.DefineInt("minutes", 5, "synthesized trace length");
  flags.DefineDouble("rate", 120.0, "target request rate (requests/second)");
  flags.DefineInt("instances", 135, "model instances (BERT:RoBERTa:GPT-2 = 4:4:1)");
  flags.DefineString("strategy", "pt_dha", "baseline|pipeswitch|dha|pt|pt_dha");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  const int instances = static_cast<int>(flags.GetInt("instances"));

  Trace trace;
  if (!flags.GetString("trace").empty()) {
    auto loaded = Trace::LoadFrom(flags.GetString("trace"));
    if (!loaded.has_value()) {
      std::cerr << "failed to load " << flags.GetString("trace") << "\n";
      return 1;
    }
    trace = std::move(*loaded);
    std::cout << "loaded " << trace.size() << " arrivals from "
              << flags.GetString("trace") << "\n";
  } else {
    AzureTraceOptions w;
    w.num_instances = instances;
    w.duration = Seconds(60.0 * static_cast<double>(flags.GetInt("minutes")));
    w.target_rate_per_sec = flags.GetDouble("rate");
    trace = GenerateAzureTrace(w);
    std::cout << "synthesized MAF-like trace: " << trace.size() << " arrivals, "
              << Table::Num(trace.MeanRate(), 1) << " rps mean\n";
    if (!flags.GetString("save").empty()) {
      if (trace.SaveTo(flags.GetString("save"))) {
        std::cout << "saved to " << flags.GetString("save") << "\n";
      }
    }
  }

  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  ServerOptions options;
  const std::string strategy = flags.GetString("strategy");
  options.strategy = strategy == "baseline"     ? Strategy::kBaseline
                     : strategy == "pipeswitch" ? Strategy::kPipeSwitch
                     : strategy == "dha"        ? Strategy::kDeepPlanDha
                     : strategy == "pt"         ? Strategy::kDeepPlanPt
                                                : Strategy::kDeepPlanPtDha;
  Server server(topology, perf, options);
  const int bert = server.RegisterModelType(ModelZoo::BertBase());
  const int roberta = server.RegisterModelType(ModelZoo::RobertaBase());
  const int gpt2 = server.RegisterModelType(ModelZoo::Gpt2());
  const int unit = instances / 9;
  server.AddInstances(bert, 4 * unit);
  server.AddInstances(roberta, 4 * unit);
  server.AddInstances(gpt2, instances - 8 * unit);

  const ServingMetrics m = server.Run(trace);
  const MinuteSeries series = m.PerMinute(Millis(100));

  std::cout << "\n" << StrategyName(options.strategy) << " on " << topology.name()
            << ": p99 " << Table::Num(m.LatencyPercentileMs(99), 1) << " ms, goodput "
            << Table::Pct(m.Goodput(Millis(100))) << ", cold-starts "
            << m.ColdStartCount() << "\n\n";
  Table table({"minute", "requests", "p99 (ms)", "goodput", "cold starts"});
  for (std::size_t minute = 0; minute < series.requests.size(); ++minute) {
    table.AddRow({std::to_string(minute), std::to_string(series.requests[minute]),
                  Table::Num(series.p99_ms[minute], 1),
                  Table::Pct(series.goodput[minute]),
                  std::to_string(series.cold_starts[minute])});
  }
  table.Print(std::cout);
  return 0;
}
