// Timeline export: run one cold start with timeline recording and write a
// Chrome-trace JSON (open in chrome://tracing or ui.perfetto.dev). The
// resulting picture is the paper's Figure 9 — PCIe loads, NVLink migration,
// and execution overlapping across tracks — generated from an actual
// simulated run.
//
//   ./build/examples/timeline_export --model=bert_base --strategy=pt_dha
//       --out=timeline.json
#include <iostream>

#include "src/deepplan.h"

int main(int argc, char** argv) {
  using namespace deepplan;

  Flags flags;
  flags.DefineString("model", "bert_base", "zoo model name");
  flags.DefineString("strategy", "pt_dha", "baseline|pipeswitch|dha|pt|pt_dha");
  flags.DefineString("out", "timeline.json", "output Chrome-trace JSON path");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  const std::string strategy_name = flags.GetString("strategy");
  const Strategy strategy = strategy_name == "baseline"     ? Strategy::kBaseline
                            : strategy_name == "pipeswitch" ? Strategy::kPipeSwitch
                            : strategy_name == "dha"        ? Strategy::kDeepPlanDha
                            : strategy_name == "pt"         ? Strategy::kDeepPlanPt
                                                            : Strategy::kDeepPlanPtDha;

  const Model model = ModelZoo::ByName(flags.GetString("model"));
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const ModelProfile profile = Profiler(&perf).Profile(model);
  const int degree = StrategyDegree(strategy, topology, 0);
  const ExecutionPlan plan = MakeStrategyPlan(strategy, profile, degree);

  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  ColdRunOptions options = MakeColdRunOptions(strategy);
  options.record_timeline = true;
  InferenceResult result;
  engine.RunCold(model, plan, 0,
                 TransmissionPlanner::ChooseSecondaries(topology, 0, degree), options,
                 [&](const InferenceResult& r) { result = r; });
  sim.Run();

  if (!ChromeTraceWriter::WriteTo(flags.GetString("out"), result.timeline)) {
    std::cerr << "failed to write " << flags.GetString("out") << "\n";
    return 1;
  }
  std::cout << StrategyName(strategy) << " cold start of " << model.name() << ": "
            << FormatDuration(result.latency) << " (" << result.timeline.size()
            << " timeline events)\n"
            << "wrote " << flags.GetString("out")
            << " — open in chrome://tracing or ui.perfetto.dev\n";
  return 0;
}
