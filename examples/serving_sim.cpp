// Serving simulation: run the multi-GPU inference server on a Poisson
// workload with any strategy and report the tail latency / goodput /
// cold-start profile — a configurable, single-command version of the paper's
// Figure 13 experiments.
//
//   ./build/examples/serving_sim --model=bert_base --strategy=pt_dha
//       --instances=180 --rate=100 --seconds=10 --slo_ms=100
#include <iostream>

#include "src/deepplan.h"

namespace {

deepplan::Strategy StrategyFromName(const std::string& name) {
  using deepplan::Strategy;
  if (name == "baseline") return Strategy::kBaseline;
  if (name == "pipeswitch") return Strategy::kPipeSwitch;
  if (name == "dha") return Strategy::kDeepPlanDha;
  if (name == "pt") return Strategy::kDeepPlanPt;
  if (name == "pt_dha") return Strategy::kDeepPlanPtDha;
  std::cerr << "unknown strategy '" << name
            << "' (use baseline|pipeswitch|dha|pt|pt_dha); defaulting to pt_dha\n";
  return Strategy::kDeepPlanPtDha;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deepplan;

  Flags flags;
  flags.DefineString("model", "bert_base", "zoo model name");
  flags.DefineString("strategy", "pt_dha",
                     "baseline|pipeswitch|dha|pt|pt_dha");
  flags.DefineInt("instances", 140, "number of model instances");
  flags.DefineDouble("rate", 100.0, "offered load, requests/second");
  flags.DefineDouble("seconds", 10.0, "workload duration");
  flags.DefineDouble("slo_ms", 100.0, "latency SLO in milliseconds");
  flags.DefineInt("seed", 42, "workload seed");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  ServerOptions options;
  options.strategy = StrategyFromName(flags.GetString("strategy"));
  options.slo = Millis(flags.GetDouble("slo_ms"));

  Server server(topology, perf, options);
  const int type = server.RegisterModelType(ModelZoo::ByName(flags.GetString("model")));
  server.AddInstances(type, static_cast<int>(flags.GetInt("instances")));

  PoissonOptions w;
  w.rate_per_sec = flags.GetDouble("rate");
  w.num_instances = static_cast<int>(flags.GetInt("instances"));
  w.duration = Seconds(flags.GetDouble("seconds"));
  w.seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
  const Trace trace = GeneratePoissonTrace(w);

  std::cout << "Serving " << flags.GetInt("instances") << "x "
            << flags.GetString("model") << " with "
            << StrategyName(options.strategy) << " on " << topology.name() << " ("
            << trace.size() << " requests @ " << w.rate_per_sec << " rps)\n";
  const ServingMetrics m = server.Run(trace);

  std::cout << "\nresident after warmup: " << server.WarmCapacity() << " / "
            << server.num_instances() << " instances\n";
  Table table({"metric", "value"});
  table.AddRow({"requests", std::to_string(m.count())});
  table.AddRow({"mean latency", Table::Num(m.MeanLatencyMs(), 2) + " ms"});
  table.AddRow({"p50 latency", Table::Num(m.LatencyPercentileMs(50), 2) + " ms"});
  table.AddRow({"p99 latency", Table::Num(m.LatencyPercentileMs(99), 2) + " ms"});
  table.AddRow({"goodput (SLO " + Table::Num(flags.GetDouble("slo_ms"), 0) + "ms)",
                Table::Pct(m.Goodput(options.slo))});
  table.AddRow({"cold-start rate", Table::Pct(m.ColdStartRate())});
  table.Print(std::cout);
  return 0;
}
