// SweepRunner walkthrough: fan an experiment sweep out over host cores while
// keeping the aggregated output byte-identical for any thread count.
//
// The sweep here is the Figure-11-style question "mean cold latency of every
// paper model under PipeSwitch vs DeepPlan (PT+DHA)", repeated with noisy
// profiles. Each task is a pure function of its index — it builds its own
// Simulator/ServerFabric/Engine and seeds the profiler from the run number —
// so results land in task order no matter which worker finished first.
//
//   ./sweep_runner                  # all cores (or $DEEPPLAN_JOBS)
//   DEEPPLAN_JOBS=1 ./sweep_runner  # sequential escape hatch, same numbers
//   ./sweep_runner --jobs=8 --runs=50
#include <chrono>
#include <iostream>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace deepplan;
  using namespace deepplan::bench;

  Flags flags;
  flags.DefineInt("runs", 20, "noisy-profile repetitions per (model, strategy)");
  flags.DefineInt("jobs", 0, "worker threads (0 = DEEPPLAN_JOBS or all cores)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  const int runs = static_cast<int>(flags.GetInt("runs"));
  const int jobs_flag = static_cast<int>(flags.GetInt("jobs"));
  const SweepRunner runner(jobs_flag > 0 ? jobs_flag : DefaultSweepJobs());

  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const std::vector<Model> models = ModelZoo::PaperModels();
  const std::vector<Strategy> strategies = {Strategy::kPipeSwitch,
                                            Strategy::kDeepPlanPtDha};

  std::cout << "Sweeping " << models.size() << " models x " << strategies.size()
            << " strategies x " << runs << " runs on " << runner.jobs()
            << " worker thread(s)\n\n";

  // deepplan-lint: allow(raw-entropy, example prints wall-clock speedup; stdout demo only, no golden)
  const auto wall_start = std::chrono::steady_clock::now();

  // One task per (model, strategy) cell; each cell internally sweeps its
  // repetitions on the same runner. Results arrive in cell order.
  BenchReport report("sweep_runner_example", runner.jobs());
  report.config().Set("topology", topology.name()).Set("runs", runs);
  const int cells = static_cast<int>(models.size() * strategies.size());
  const std::vector<double> mean_ms = runner.Map(cells, [&](int i) {
    const Model& model = models[static_cast<std::size_t>(i) / strategies.size()];
    const Strategy strategy = strategies[static_cast<std::size_t>(i) % strategies.size()];
    return MeanColdLatencyMs(topology, perf, model, strategy, runs, 1,
                             SweepRunner(1));  // inner loop stays sequential
  });

  const double wall_ms = std::chrono::duration<double, std::milli>(
                             // deepplan-lint: allow(raw-entropy, example prints wall-clock speedup; stdout demo only, no golden)
                             std::chrono::steady_clock::now() - wall_start)
                             .count();

  Table table({"model", "PipeSwitch (ms)", "PT+DHA (ms)", "speedup"});
  for (std::size_t m = 0; m < models.size(); ++m) {
    const double pipeswitch = mean_ms[m * strategies.size()];
    const double ptdha = mean_ms[m * strategies.size() + 1];
    table.AddRow({PrettyModelName(models[m].name()), Table::Num(pipeswitch, 2),
                  Table::Num(ptdha, 2), Table::Num(pipeswitch / ptdha, 2) + "x"});
    report.AddPoint()
        .Set("model", models[m].name())
        .Set("pipeswitch_ms", pipeswitch)
        .Set("ptdha_ms", ptdha);
  }
  table.Print(std::cout);
  std::cout << "\nwall clock: " << Table::Num(wall_ms, 1) << " ms on "
            << runner.jobs() << " job(s) — rerun with DEEPPLAN_JOBS=1 to "
               "check the numbers above do not move\n";
  report.Write(&std::cerr);
  return 0;
}
