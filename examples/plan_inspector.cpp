// Plan inspector: profile a model, generate the DeepPlan execution plan, and
// dump every per-layer decision with the numbers behind it (load time,
// in-memory vs DHA execution, PerfDiff) plus the projected timeline — the
// tool an ML practitioner would use to understand *why* a layer stays
// host-side (Table 3 of the paper, but for the whole model).
//
//   ./build/examples/plan_inspector --model=gpt2 --partitions=2 --save=plan.txt
#include <fstream>
#include <iostream>

#include "src/deepplan.h"

int main(int argc, char** argv) {
  using namespace deepplan;

  Flags flags;
  flags.DefineString("model", "bert_base", "zoo model name");
  flags.DefineInt("partitions", 0,
                  "parallel-transmission partitions (0 = let topology decide)");
  flags.DefineBool("greedy", false,
                   "show the greedy per-layer plan instead of Algorithm 1");
  flags.DefineString("save", "", "write the serialized plan to this file");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  const Model model = ModelZoo::ByName(flags.GetString("model"));
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  Profiler profiler(&perf);
  const ModelProfile profile = profiler.Profile(model);

  Planner planner(&profile);
  PlannerOptions options;
  options.num_partitions = flags.GetInt("partitions") > 0
                               ? static_cast<int>(flags.GetInt("partitions"))
                               : TransmissionPlanner::ChooseDegree(topology, 0);
  options.pipeline.nvlink = topology.nvlink();
  const ExecutionPlan plan = flags.GetBool("greedy")
                                 ? planner.GreedyDhaPlan()
                                 : planner.GeneratePlan(options);
  const PipelineResult timeline = SimulatePipeline(profile, plan, options.pipeline);

  std::cout << "Model " << model.name() << ": " << model.num_layers() << " layers, "
            << FormatBytes(model.total_param_bytes()) << " parameters\n"
            << "Plan: " << plan.CountDha() << " DHA layers, " << plan.num_partitions()
            << " partition(s); GPU-resident "
            << FormatBytes(plan.GpuResidentBytes(profile)) << ", host-resident "
            << FormatBytes(plan.HostResidentBytes(profile)) << "\n"
            << "Projected cold latency " << FormatDuration(timeline.total)
            << " (exec " << FormatDuration(timeline.exec_busy) << ", stall "
            << FormatDuration(timeline.total_stall) << ")\n\n";

  Table table({"#", "kind", "name", "part", "method", "load", "exec(mem)",
               "exec(DHA)", "PerfDiff", "stall"});
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    const LayerProfile& lp = profile.layers[i];
    if (!lp.has_params()) {
      continue;
    }
    table.AddRow({std::to_string(i), LayerKindName(lp.kind), lp.name,
                  std::to_string(plan.partition(i)),
                  plan.method(i) == ExecMethod::kDirectHostAccess ? "DHA" : "load",
                  FormatDuration(lp.load), FormatDuration(lp.exec_in_mem),
                  FormatDuration(lp.exec_dha), FormatDuration(lp.PerfDiff()),
                  FormatDuration(timeline.layers[i].stall)});
  }
  table.Print(std::cout);

  if (!flags.GetString("save").empty()) {
    std::ofstream out(flags.GetString("save"));
    out << plan.Serialize();
    std::cout << "\nplan written to " << flags.GetString("save") << "\n";
  }
  return 0;
}
