// deepplan_cli: the deployment workflow as one binary with subcommands —
// mirrors the paper's Figure 10 pipeline end to end on custom models.
//
//   deepplan_cli profile --model=bert_base            # per-layer pre-run table
//   deepplan_cli plan --model=bert_base --out=x.plan  # generate + save a plan
//   deepplan_cli run --model=bert_base --plan=x.plan  # cold-start the plan
//   deepplan_cli spec --model=bert_base --out=m.model # dump model description
//   deepplan_cli serve --model=bert_base --instances=140 --rate=100
//
// Every subcommand accepts --model_file=<path> (a text model spec, see
// src/model/model_spec.h) instead of --model, and --topology=p3|a5000|dgx1.
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/core/plan_repository.h"
#include "src/deepplan.h"
#include "src/model/model_spec.h"

namespace {

using namespace deepplan;

Topology TopologyByName(const std::string& name) {
  if (name == "a5000") {
    return Topology::A5000Box();
  }
  if (name == "dgx1") {
    return Topology::Dgx1();
  }
  return Topology::P3_8xlarge();
}

std::optional<Model> ResolveModel(const Flags& flags) {
  if (!flags.GetString("model_file").empty()) {
    std::string error;
    auto model = LoadModelSpec(flags.GetString("model_file"), &error);
    if (!model.has_value()) {
      std::cerr << "model_file: " << error << "\n";
    }
    return model;
  }
  return ModelZoo::ByName(flags.GetString("model"));
}

int CmdProfile(const Flags& flags, const Model& model, const Topology& topology) {
  const PerfModel perf(topology.gpu(), topology.pcie());
  const ModelProfile profile = Profiler(&perf).Profile(model);
  Table table({"#", "kind", "name", "bytes", "load", "exec(mem)", "exec(DHA)"});
  for (std::size_t i = 0; i < profile.num_layers(); ++i) {
    const LayerProfile& lp = profile.layers[i];
    table.AddRow({std::to_string(i), LayerKindName(lp.kind), lp.name,
                  FormatBytes(lp.param_bytes), FormatDuration(lp.load),
                  FormatDuration(lp.exec_in_mem), FormatDuration(lp.exec_dha)});
  }
  table.Print(std::cout);
  (void)flags;
  return 0;
}

int CmdPlan(const Flags& flags, const Model& model, const Topology& topology) {
  const PerfModel perf(topology.gpu(), topology.pcie());
  const ModelProfile profile = Profiler(&perf).Profile(model);
  Planner planner(&profile);
  PlannerOptions options;
  options.num_partitions = TransmissionPlanner::ChooseDegree(topology, 0);
  options.pipeline.nvlink = topology.nvlink();
  const ExecutionPlan plan = planner.GeneratePlan(options);
  const PipelineResult timeline = SimulatePipeline(profile, plan, options.pipeline);
  std::cout << "plan: " << plan.CountDha() << " DHA layers, " << plan.num_partitions()
            << " partition(s), projected cold latency "
            << FormatDuration(timeline.total) << "\n";
  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    std::ofstream file(out);
    if (!file) {
      std::cerr << "cannot write " << out << "\n";
      return 1;
    }
    file << plan.Serialize();
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}

int CmdRun(const Flags& flags, const Model& model, const Topology& topology) {
  const PerfModel perf(topology.gpu(), topology.pcie());
  const ModelProfile profile = Profiler(&perf).Profile(model);
  ExecutionPlan plan;
  if (!flags.GetString("plan").empty()) {
    std::ifstream in(flags.GetString("plan"));
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = ExecutionPlan::Parse(buffer.str());
    if (!parsed.has_value()) {
      std::cerr << "cannot parse plan file " << flags.GetString("plan") << "\n";
      return 1;
    }
    plan = std::move(*parsed);
    if (const auto error = plan.Validate(profile)) {
      std::cerr << "plan does not fit this model: " << *error << "\n";
      return 1;
    }
  } else {
    PlannerOptions options;
    options.num_partitions = TransmissionPlanner::ChooseDegree(topology, 0);
    plan = Planner(&profile).GeneratePlan(options);
  }
  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  InferenceResult result;
  engine.RunCold(model, plan, 0,
                 TransmissionPlanner::ChooseSecondaries(topology, 0,
                                                        plan.num_partitions()),
                 ColdRunOptions{}, [&](const InferenceResult& r) { result = r; });
  sim.Run();
  std::cout << "cold latency " << FormatDuration(result.latency) << " (exec "
            << FormatDuration(result.exec_busy) << ", stall "
            << FormatDuration(result.stall) << ", load done "
            << FormatDuration(result.load_done) << ")\n";
  return 0;
}

int CmdServe(const Flags& flags, const Model& model, const Topology& topology) {
  const PerfModel perf(topology.gpu(), topology.pcie());
  ServerOptions options;
  options.slo = Millis(flags.GetDouble("slo_ms"));
  Server server(topology, perf, options);
  const int type = server.RegisterModelType(model);
  server.AddInstances(type, static_cast<int>(flags.GetInt("instances")));
  PoissonOptions w;
  w.rate_per_sec = flags.GetDouble("rate");
  w.num_instances = static_cast<int>(flags.GetInt("instances"));
  w.duration = Seconds(flags.GetDouble("seconds"));
  const ServingMetrics m = server.Run(GeneratePoissonTrace(w));
  std::cout << m.count() << " requests: p99 "
            << Table::Num(m.LatencyPercentileMs(99), 1) << " ms, goodput "
            << Table::Pct(m.Goodput(options.slo)) << ", cold-starts "
            << m.ColdStartCount() << " (" << server.WarmCapacity() << "/"
            << server.num_instances() << " resident after warmup)\n";
  return 0;
}

int CmdSpec(const Flags& flags, const Model& model) {
  const std::string text = ModelToSpec(model);
  const std::string out = flags.GetString("out");
  if (out.empty()) {
    std::cout << text;
  } else {
    std::ofstream file(out);
    file << text;
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineString("model", "bert_base", "zoo model name");
  flags.DefineString("model_file", "", "text model spec path (overrides --model)");
  flags.DefineString("topology", "p3", "p3|a5000|dgx1");
  flags.DefineString("out", "", "output file (plan/spec)");
  flags.DefineString("plan", "", "plan file to run (run subcommand)");
  flags.DefineInt("instances", 140, "serve: model instances");
  flags.DefineDouble("rate", 100.0, "serve: requests/second");
  flags.DefineDouble("seconds", 10.0, "serve: workload duration");
  flags.DefineDouble("slo_ms", 100.0, "serve: latency SLO (ms)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (flags.positional().size() != 1) {
    std::cerr << "usage: deepplan_cli <profile|plan|run|spec|serve> [--flags]\n";
    return 1;
  }
  const std::string command = flags.positional()[0];
  const auto model = ResolveModel(flags);
  if (!model.has_value()) {
    return 1;
  }
  const Topology topology = TopologyByName(flags.GetString("topology"));
  if (command == "profile") {
    return CmdProfile(flags, *model, topology);
  }
  if (command == "plan") {
    return CmdPlan(flags, *model, topology);
  }
  if (command == "run") {
    return CmdRun(flags, *model, topology);
  }
  if (command == "spec") {
    return CmdSpec(flags, *model);
  }
  if (command == "serve") {
    return CmdServe(flags, *model, topology);
  }
  std::cerr << "unknown subcommand '" << command << "'\n";
  return 1;
}
