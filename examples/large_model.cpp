// Future work, Section 7: serving a model that does NOT fit in a single
// GPU's memory. DeepPlan's direct-host-access becomes a capacity mechanism:
// keep the DHA-friendly layers (embeddings, small projections) in host
// memory permanently, load only the compute-dense remainder, and the model
// becomes servable on one 16 GB V100 — "a cost-effective alternative" to
// pipeline parallelism across GPUs.
//
//   ./build/examples/large_model [--gpu_budget_gib=12]
#include <iostream>

#include "src/deepplan.h"

int main(int argc, char** argv) {
  using namespace deepplan;

  Flags flags;
  flags.DefineDouble("gpu_budget_gib", 12.0,
                     "GPU memory budget for parameters (GiB)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const Model big = ModelZoo::Oversized("oversized_gpt");
  const auto budget = static_cast<std::int64_t>(flags.GetDouble("gpu_budget_gib") *
                                                1024.0 * 1024.0 * 1024.0);

  std::cout << "Model: " << big.name() << ", " << FormatBytes(big.total_param_bytes())
            << " of parameters — vs " << FormatBytes(topology.gpu().mem_bytes)
            << " of GPU memory (" << topology.gpu().name << ")\n\n";

  Profiler profiler(&perf);
  const ModelProfile profile = profiler.Profile(big);

  // Start from Algorithm 1's plan, then push further layers host-side in
  // ascending-PerfDiff order (cheapest DHA conversions first) until the
  // GPU-resident bytes fit the budget.
  Planner planner(&profile);
  ExecutionPlan plan = planner.GeneratePlan();
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < profile.num_layers(); ++i) {
    if (profile.layers[i].has_params() && plan.method(i) == ExecMethod::kLoad) {
      candidates.push_back(i);
    }
  }
  std::sort(candidates.begin(), candidates.end(), [&](std::size_t a, std::size_t b) {
    return profile.layers[a].PerfDiff() < profile.layers[b].PerfDiff();
  });
  std::size_t converted = 0;
  for (const std::size_t i : candidates) {
    if (plan.GpuResidentBytes(profile) <= budget) {
      break;
    }
    plan.set_method(i, ExecMethod::kDirectHostAccess);
    ++converted;
  }

  if (plan.GpuResidentBytes(profile) > budget) {
    std::cout << "cannot fit this model under " << FormatBytes(budget)
              << " even fully host-resident\n";
    return 1;
  }

  std::cout << "Capacity plan: " << plan.CountDha() << " layers host-side ("
            << converted << " beyond Algorithm 1's choice), GPU-resident "
            << FormatBytes(plan.GpuResidentBytes(profile)) << ", host-resident "
            << FormatBytes(plan.HostResidentBytes(profile)) << "\n";

  // Warm inference cost of the capacity plan vs a hypothetical all-in-memory
  // execution (which would need >1 GPU), and the cold-start latency.
  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  InferenceResult cold;
  engine.RunCold(big, plan, 0, {}, ColdRunOptions{},
                 [&](const InferenceResult& r) { cold = r; });
  sim.Run();

  Table table({"metric", "value"});
  table.AddRow({"all-in-memory warm latency (needs >1 GPU)",
                FormatDuration(perf.WarmLatency(big, 1))});
  table.AddRow({"capacity-plan warm latency (1 GPU + host)",
                FormatDuration(engine.WarmDuration(big, plan, 1))});
  table.AddRow({"capacity-plan cold start", FormatDuration(cold.latency)});
  table.Print(std::cout);
  std::cout << "\nThe slowdown is the price of fitting "
            << FormatBytes(big.total_param_bytes()) << " into one "
            << FormatBytes(topology.gpu().mem_bytes)
            << " GPU without model parallelism.\n";
  return 0;
}
