// Quickstart: profile a model, generate DeepPlan execution plans, and compare
// cold-start latency across all five strategies on a simulated 4x V100 server
// (AWS p3.8xlarge).
//
//   ./build/examples/quickstart [--model=bert_base] [--batch=1]
#include <cstdio>
#include <iostream>

#include "src/deepplan.h"

int main(int argc, char** argv) {
  using namespace deepplan;

  Flags flags;
  flags.DefineString("model", "bert_base",
                     "one of: resnet50 resnet101 bert_base bert_large roberta_base "
                     "roberta_large gpt2 gpt2_medium");
  flags.DefineInt("batch", 1, "inference batch size");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  // 1. Pick a model and a server.
  const Model model = ModelZoo::ByName(flags.GetString("model"));
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const int batch = static_cast<int>(flags.GetInt("batch"));

  std::cout << "Model: " << model.name() << " (" << model.num_layers() << " layers, "
            << FormatBytes(model.total_param_bytes()) << ")\n";
  std::cout << "Server: " << topology.name() << " — " << topology.num_gpus() << "x "
            << topology.gpu().name << ", " << topology.pcie().name << "\n";
  std::cout << "Warm (in-GPU-memory) latency: "
            << FormatDuration(perf.WarmLatency(model, batch)) << "\n\n";

  // 2. One-time profiling pre-run (Figure 10, step 1).
  ProfilerOptions popts;
  popts.batch = batch;
  Profiler profiler(&perf, popts);
  const ModelProfile profile = profiler.Profile(model);

  // 3. Run every strategy's cold start and report latency.
  Table table({"strategy", "plan", "cold latency", "stall", "speedup vs baseline"});
  Nanos baseline_latency = 0;
  for (const Strategy strategy : AllStrategies()) {
    Simulator sim;
    ServerFabric fabric(&sim, &topology);
    Engine engine(&sim, &fabric, &perf);

    const int degree = StrategyDegree(strategy, topology, /*primary=*/0);
    PipelineOptions pipeline;
    pipeline.nvlink = topology.nvlink();
    const ExecutionPlan plan = MakeStrategyPlan(strategy, profile, degree, pipeline);
    const std::vector<GpuId> secondaries =
        TransmissionPlanner::ChooseSecondaries(topology, /*primary=*/0, degree);

    InferenceResult result;
    engine.RunCold(model, plan, /*primary=*/0, secondaries,
                   MakeColdRunOptions(strategy, batch),
                   [&](const InferenceResult& r) { result = r; });
    sim.Run();

    if (strategy == Strategy::kBaseline) {
      baseline_latency = result.latency;
    }
    const std::string plan_desc = std::to_string(plan.CountDha()) + " DHA / " +
                                  std::to_string(plan.num_partitions()) + " partitions";
    table.AddRow({StrategyName(strategy), plan_desc, FormatDuration(result.latency),
                  FormatDuration(result.stall),
                  Table::Num(static_cast<double>(baseline_latency) /
                                 static_cast<double>(result.latency),
                             2) +
                      "x"});
  }
  table.Print(std::cout);
  return 0;
}
