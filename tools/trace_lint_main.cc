// trace_lint: re-validates exported Chrome/Perfetto JSON traces (structure,
// sorted timestamps, pid/tid metadata, slice nesting, async balance) so CI
// can lint any captured artifact. Exit 0 when every file is clean.
//
//   trace_lint results/trace_fig15.json [more.json ...]
#include <cstdio>

#include "src/check/trace_lint.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.json> [more.json ...]\n", argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    const deepplan::check::TraceLintResult result =
        deepplan::check::LintChromeTraceFile(argv[i]);
    if (result.ok()) {
      std::printf("OK %s: %zu events (%zu spans, %zu counters, %zu async) on %zu tracks\n",
                  argv[i], result.num_events, result.num_spans,
                  result.num_counters, result.num_asyncs, result.num_tracks);
      continue;
    }
    ++failures;
    std::fprintf(stderr, "FAIL %s: %zu error(s)\n", argv[i],
                 result.num_errors);
    for (const std::string& error : result.errors) {
      std::fprintf(stderr, "  %s\n", error.c_str());
    }
    if (result.num_errors > result.errors.size()) {
      std::fprintf(stderr, "  ... and %zu more\n",
                   result.num_errors - result.errors.size());
    }
  }
  return failures == 0 ? 0 : 1;
}
