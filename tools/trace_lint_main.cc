// trace_lint: re-validates exported JSON artifacts so CI can lint any
// captured file. Default mode checks Chrome/Perfetto traces (structure,
// sorted timestamps, pid/tid metadata, slice nesting, async balance,
// cumulative-counter monotonicity); --profile switches to the
// {"profile_report":...} schema check (attribution sums, utilization
// bounds); --whatif switches to the {"whatif_report":...} schema check
// (scales, quantile monotonicity, per-request deltas, baseline self-check);
// --selfprof switches to the {"selfprof_report":...} schema check (lane
// uniqueness, phase-tree exclusive/inclusive arithmetic, aggregate equal to
// the per-lane sums — full reports and deterministic projections both pass);
// --journal switches to the binary causal-journal check (DPJL header and
// version, per-chunk CRC32, string-table/process references, dangling-edge
// and truncation diagnosis). Exit 0 when every file is clean.
//
//   trace_lint results/trace_fig15.json [more.json ...]
//   trace_lint --profile results/profile_report.json
//   trace_lint --whatif results/whatif_report.json
//   trace_lint --selfprof results/selfprof_scaling.json
//   trace_lint --journal results/journal_fig15.dpj
#include <cstdio>
#include <cstring>

#include "src/check/trace_lint.h"
#include "src/obs/journal_stream.h"

int main(int argc, char** argv) {
  enum class Mode { kTrace, kProfile, kWhatIf, kSelfprof, kJournal };
  Mode mode = Mode::kTrace;
  int first_file = 1;
  if (argc > 1 && std::strcmp(argv[1], "--profile") == 0) {
    mode = Mode::kProfile;
    first_file = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "--whatif") == 0) {
    mode = Mode::kWhatIf;
    first_file = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "--selfprof") == 0) {
    mode = Mode::kSelfprof;
    first_file = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "--journal") == 0) {
    mode = Mode::kJournal;
    first_file = 2;
  }
  if (first_file >= argc) {
    std::fprintf(stderr,
                 "usage: %s [--profile|--whatif|--selfprof|--journal] <file> "
                 "[more files ...]\n",
                 argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = first_file; i < argc; ++i) {
    deepplan::JournalLintInfo info;
    const deepplan::check::TraceLintResult result =
        mode == Mode::kProfile ? deepplan::check::LintProfileReportFile(argv[i])
        : mode == Mode::kWhatIf ? deepplan::check::LintWhatIfReportFile(argv[i])
        : mode == Mode::kSelfprof
            ? deepplan::check::LintSelfprofReportFile(argv[i])
        : mode == Mode::kJournal ? deepplan::LintJournalFile(argv[i], &info)
                                 : deepplan::check::LintChromeTraceFile(argv[i]);
    if (result.ok()) {
      if (mode == Mode::kProfile) {
        std::printf("OK %s: profile report schema clean\n", argv[i]);
      } else if (mode == Mode::kWhatIf) {
        std::printf("OK %s: what-if report schema clean\n", argv[i]);
      } else if (mode == Mode::kSelfprof) {
        std::printf("OK %s: selfprof report schema clean (%zu lanes)\n",
                    argv[i], result.num_tracks);
      } else if (mode == Mode::kJournal) {
        std::printf(
            "OK %s: %llu requests (%llu incomplete), %llu nodes, %llu edges "
            "in %llu chunks across %llu process(es)\n",
            argv[i], static_cast<unsigned long long>(info.totals.requests),
            static_cast<unsigned long long>(info.totals.incomplete_requests),
            static_cast<unsigned long long>(info.totals.nodes),
            static_cast<unsigned long long>(info.totals.edges),
            static_cast<unsigned long long>(info.totals.chunks),
            static_cast<unsigned long long>(info.processes));
      } else {
        std::printf("OK %s: %zu events (%zu spans, %zu counters, %zu async) on %zu tracks\n",
                    argv[i], result.num_events, result.num_spans,
                    result.num_counters, result.num_asyncs, result.num_tracks);
      }
      continue;
    }
    ++failures;
    std::fprintf(stderr, "FAIL %s: %zu error(s)\n", argv[i],
                 result.num_errors);
    for (const std::string& error : result.errors) {
      std::fprintf(stderr, "  %s\n", error.c_str());
    }
    if (result.num_errors > result.errors.size()) {
      std::fprintf(stderr, "  ... and %zu more\n",
                   result.num_errors - result.errors.size());
    }
  }
  return failures == 0 ? 0 : 1;
}
