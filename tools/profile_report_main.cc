// profile_report: offline critical-path analysis of a causal journal. Reads
// the {"causal_journal":...} document a bench run writes via --profile_out,
// runs the critical-path engine and utilization module, and prints the
// deterministic text report; --json=<path> additionally writes the
// {"profile_report":...} document for tools (lint with `trace_lint
// --profile`).
//
// Accepts either journal representation: {"causal_journal":...} JSON or the
// binary DPJL format (--journal_out) — the file header decides.
//
//   profile_report results/profile_fig15.json [--json=results/report.json]
//   profile_report results/journal_fig15.dpj
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/obs/causal_graph.h"
#include "src/obs/journal_stream.h"
#include "src/obs/profile_report.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string journal_path;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (journal_path.empty()) {
      journal_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (journal_path.empty()) {
    std::fprintf(stderr, "usage: %s <journal.json> [--json=<report.json>]\n",
                 argv[0]);
    return 2;
  }

  deepplan::CausalGraph graph;
  std::string error;
  if (deepplan::IsBinaryJournalFile(journal_path)) {
    if (!deepplan::ReadJournalToGraph(journal_path, &graph, &error)) {
      std::fprintf(stderr, "bad journal: %s\n", error.c_str());
      return 1;
    }
  } else {
    std::string text;
    if (!ReadFile(journal_path, &text)) {
      std::fprintf(stderr, "cannot read %s\n", journal_path.c_str());
      return 2;
    }
    if (!deepplan::CausalGraph::FromJson(text, &graph, &error)) {
      std::fprintf(stderr, "bad journal %s: %s\n", journal_path.c_str(),
                   error.c_str());
      return 1;
    }
  }

  const deepplan::ProfileReport report = deepplan::BuildProfileReport(graph);
  deepplan::PrintProfileReport(report, std::cout);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << deepplan::ProfileReportJson(report) << "\n";
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  return 0;
}
