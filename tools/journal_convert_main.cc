// journal_convert: lossless conversion between the two causal-journal
// representations — {"causal_journal":...} JSON (human-greppable, Perfetto
// tooling, goldens) and the chunked binary DPJL format (streaming recorder,
// windowed replay). The conversion is exact: binary -> JSON emits the same
// bytes CausalGraph::ToJson() would have produced for the recording run, and
// JSON -> binary -> JSON is the identity.
//
//   journal_convert --to-json   results/journal_fig15.dpj out.json
//   journal_convert --to-binary results/profile_fig15.json out.dpj
//   journal_convert --info      results/journal_fig15.dpj
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/causal_graph.h"
#include "src/obs/journal_stream.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool LoadGraph(const std::string& path, deepplan::CausalGraph* graph,
               std::string* error) {
  if (deepplan::IsBinaryJournalFile(path)) {
    return deepplan::ReadJournalToGraph(path, graph, error);
  }
  std::string text;
  if (!ReadFile(path, &text)) {
    *error = path + ": cannot read file";
    return false;
  }
  if (!deepplan::CausalGraph::FromJson(text, graph, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --to-json <journal> <out.json>\n"
               "       %s --to-binary <journal> <out.dpj>\n"
               "       %s --info <journal>\n"
               "<journal> may be JSON ({\"causal_journal\":...}) or binary "
               "(DPJL); the header decides.\n",
               argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return Usage(argv[0]);
  }
  const std::string mode = argv[1];
  const std::string in_path = argv[2];
  std::string error;

  if (mode == "--info") {
    if (argc != 3) {
      return Usage(argv[0]);
    }
    if (deepplan::IsBinaryJournalFile(in_path)) {
      deepplan::JournalLintInfo info;
      const deepplan::check::TraceLintResult result =
          deepplan::LintJournalFile(in_path, &info);
      if (!result.ok()) {
        for (const std::string& e : result.errors) {
          std::fprintf(stderr, "%s\n", e.c_str());
        }
        return 1;
      }
      std::printf(
          "binary journal v%u: %llu requests (%llu incomplete), %llu nodes, "
          "%llu edges in %llu chunks, %llu process(es)\n",
          deepplan::kJournalVersion,
          static_cast<unsigned long long>(info.totals.requests),
          static_cast<unsigned long long>(info.totals.incomplete_requests),
          static_cast<unsigned long long>(info.totals.nodes),
          static_cast<unsigned long long>(info.totals.edges),
          static_cast<unsigned long long>(info.totals.chunks),
          static_cast<unsigned long long>(info.processes));
      return 0;
    }
    deepplan::CausalGraph graph;
    if (!LoadGraph(in_path, &graph, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("JSON journal: %zu requests, %zu nodes, %zu edges, "
                "%zu process(es)\n",
                graph.requests().size(), graph.nodes().size(),
                graph.edges().size(), graph.processes().size());
    return 0;
  }

  if ((mode != "--to-json" && mode != "--to-binary") || argc != 4) {
    return Usage(argv[0]);
  }
  const std::string out_path = argv[3];
  deepplan::CausalGraph graph;
  if (!LoadGraph(in_path, &graph, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (mode == "--to-json") {
    if (!graph.WriteTo(out_path)) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
  } else {
    if (!deepplan::WriteGraphToJournal(graph, out_path, {}, nullptr, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
