// bench_history: wall-clock trajectory and slowdown gate over directories of
// BENCH_*.json snapshots (src/check/bench_history.h). Positional directories
// are snapshots in order (oldest first); the trajectory table prints every
// bench's recorded wall clock per snapshot.
//
//   bench_history results/2026-08-01 results/2026-08-05 results/today
//   bench_history --max_slowdown=1.03 baseline1 baseline2 \
//       --candidate=cand1 --candidate=cand2
//
// --candidate=DIR    repeatable: dirs holding the runs under test. Without
//                    any, the last positional dir is the candidate and the
//                    rest are baseline.
// --max_slowdown=R   gate: per bench, best-of-candidate wall clock divided by
//                    best-of-baseline above R exits 1. 0 (default) reports
//                    the ratios without failing.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/check/bench_history.h"

int main(int argc, char** argv) {
  using deepplan::check::BenchComparison;
  using deepplan::check::BenchRun;
  double max_slowdown = 0.0;
  std::vector<std::string> dirs;
  std::vector<std::string> candidate_dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--max_slowdown=", 0) == 0) {
      max_slowdown = std::strtod(arg.c_str() + 15, nullptr);
    } else if (arg.rfind("--candidate=", 0) == 0) {
      candidate_dirs.push_back(arg.substr(12));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty() && candidate_dirs.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--max_slowdown=R] [--candidate=DIR ...] "
                 "<snapshot dir> [more dirs ...]\n",
                 argv[0]);
    return 2;
  }
  // Without explicit candidates, the newest snapshot is the candidate (only
  // meaningful when gating; the trajectory covers every dir either way).
  if (candidate_dirs.empty() && dirs.size() > 1) {
    candidate_dirs.push_back(dirs.back());
  }

  const auto is_candidate = [&](const std::string& dir) {
    return std::find(candidate_dirs.begin(), candidate_dirs.end(), dir) !=
           candidate_dirs.end();
  };
  // Trajectory covers every dir once: positional order, then any --candidate
  // dirs not already listed positionally.
  std::vector<std::string> scan_dirs = dirs;
  for (const std::string& dir : candidate_dirs) {
    if (std::find(dirs.begin(), dirs.end(), dir) == dirs.end()) {
      scan_dirs.push_back(dir);
    }
  }

  std::vector<std::string> errors;
  std::vector<BenchRun> all;       // every scanned run, dir order
  std::vector<BenchRun> baseline;  // runs from non-candidate dirs
  std::vector<BenchRun> candidate;
  for (const std::string& dir : scan_dirs) {
    std::vector<BenchRun> runs = deepplan::check::ScanBenchDir(dir, &errors);
    for (BenchRun& run : runs) {
      all.push_back(run);
      (is_candidate(dir) ? candidate : baseline).push_back(std::move(run));
    }
  }
  for (const std::string& error : errors) {
    std::fprintf(stderr, "warning: %s\n", error.c_str());
  }
  if (all.empty()) {
    std::fprintf(stderr, "no BENCH_*.json found\n");
    return 2;
  }

  std::printf("%-12s %-28s %6s %7s %12s\n", "bench", "snapshot", "jobs",
              "points", "wall ms");
  for (const BenchRun& run : all) {
    std::printf("%-12s %-28s %6d %7zu %12.1f\n", run.bench.c_str(),
                run.dir.c_str(), run.jobs, run.num_points, run.wall_clock_ms);
  }

  if (baseline.empty() || candidate.empty()) {
    return 0;  // single snapshot: trajectory only, nothing to gate
  }
  const std::vector<BenchComparison> comparisons =
      deepplan::check::CompareBenchRuns(baseline, candidate, max_slowdown);
  std::printf("\n%-12s %14s %14s %9s\n", "bench", "baseline ms",
              "candidate ms", "ratio");
  int regressions = 0;
  for (const BenchComparison& cmp : comparisons) {
    if (cmp.baseline_best_ms < 0.0 || cmp.candidate_best_ms < 0.0) {
      std::printf("%-12s %14s %14s %9s\n", cmp.bench.c_str(),
                  cmp.baseline_best_ms < 0.0 ? "-" : "present",
                  cmp.candidate_best_ms < 0.0 ? "-" : "present", "n/a");
      continue;
    }
    std::printf("%-12s %14.1f %14.1f %8.3fx%s\n", cmp.bench.c_str(),
                cmp.baseline_best_ms, cmp.candidate_best_ms, cmp.slowdown,
                cmp.regressed ? "  REGRESSED" : "");
    if (cmp.regressed) {
      ++regressions;
    }
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "FAIL: %d bench(es) above --max_slowdown=%.3f (best-of "
                 "candidate vs best-of baseline)\n",
                 regressions, max_slowdown);
    return 1;
  }
  return 0;
}
