// deepplan_lint: the repo's determinism linter (rule catalog and rationale in
// src/check/determinism_lint.h and DESIGN.md §14).
//
// Usage:
//   deepplan_lint [--compdb=build/compile_commands.json] [path...]
//
// Each path is a source file or a directory (recursed for *.h, *.cc, *.cpp).
// --compdb lints every file listed in a CMake compile_commands.json instead
// of / in addition to explicit paths. Prints one line per finding
// (file:line: [rule] message), suppressed findings with their recorded
// reason, and a summary. Exit 0 when clean, 1 on violations or stale
// suppressions, 2 on usage/IO errors.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/determinism_lint.h"
#include "src/util/json_parse.h"

namespace {

using deepplan::check::DeterminismLintResult;
using deepplan::check::LintFinding;

int Usage() {
  std::fprintf(
      stderr,
      "usage: deepplan_lint [--compdb=FILE] [--list-rules] [path...]\n"
      "  path       source file, or directory recursed for *.h *.cc *.cpp\n"
      "  --compdb   lint every file listed in a compile_commands.json\n"
      "  --list-rules  print the rule ids and exit\n"
      "suppress a finding with: // deepplan-lint: allow(<rule>, <reason>)\n");
  return 2;
}

bool IsSourceFile(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

// Collects source files from a file-or-directory path into `files`.
bool CollectPath(const std::string& arg, std::set<std::string>* files) {
  std::error_code ec;
  const std::filesystem::path p(arg);
  if (std::filesystem::is_regular_file(p, ec)) {
    files->insert(p.lexically_normal().string());
    return true;
  }
  if (std::filesystem::is_directory(p, ec)) {
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(p, ec)) {
      if (entry.is_regular_file() && IsSourceFile(entry.path())) {
        files->insert(entry.path().lexically_normal().string());
      }
    }
    return !ec;
  }
  std::fprintf(stderr, "deepplan_lint: no such file or directory: %s\n",
               arg.c_str());
  return false;
}

// Extracts the "file" entry of every translation unit in a CMake
// compile_commands.json.
bool CollectCompdb(const std::string& path, std::set<std::string>* files) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "deepplan_lint: cannot read compdb: %s\n",
                 path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const deepplan::JsonParseResult parsed = deepplan::ParseJson(buf.str());
  if (!parsed.ok || !parsed.value.is_array()) {
    std::fprintf(stderr,
                 "deepplan_lint: %s is not a compile_commands.json array%s%s\n",
                 path.c_str(), parsed.ok ? "" : ": ",
                 parsed.ok ? "" : parsed.error.c_str());
    return false;
  }
  for (const deepplan::JsonValue& entry : parsed.value.items()) {
    if (!entry.is_object()) {
      continue;
    }
    const deepplan::JsonValue* file = entry.Find("file");
    if (file != nullptr && file->is_string()) {
      files->insert(
          std::filesystem::path(file->AsString()).lexically_normal().string());
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::set<std::string> files;  // sorted + deduped -> deterministic output
  bool any_input = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    }
    if (arg == "--list-rules") {
      for (const std::string& rule :
           deepplan::check::DeterminismLintRules()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (arg.rfind("--compdb=", 0) == 0) {
      any_input = true;
      if (!CollectCompdb(arg.substr(9), &files)) {
        return 2;
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "deepplan_lint: unknown flag: %s\n", arg.c_str());
      return Usage();
    }
    any_input = true;
    if (!CollectPath(arg, &files)) {
      return 2;
    }
  }
  if (!any_input) {
    return Usage();
  }

  DeterminismLintResult total;
  for (const std::string& file : files) {
    deepplan::check::MergeDeterminismLint(
        deepplan::check::LintDeterminismFile(file), &total);
  }

  for (const LintFinding& f : total.findings) {
    if (f.suppressed) {
      std::printf("%s:%zu: [%s] suppressed: %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.suppression_reason.c_str());
    } else {
      std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
  }
  for (const std::string& e : total.errors) {
    std::printf("%s\n", e.c_str());
  }
  std::printf(
      "deepplan_lint: %zu file(s), %zu line(s): %zu violation(s), "
      "%zu suppression(s), %zu stale/malformed suppression(s)\n",
      total.files, total.lines, total.violations, total.suppressions,
      total.unused_suppressions);
  if (!total.errors.empty() &&
      total.violations == 0 && total.unused_suppressions == 0) {
    return 2;  // IO errors only
  }
  return total.ok() ? 0 : 1;
}
