// whatif_report: offline virtual-hardware experiments over a causal journal.
// Reads the {"causal_journal":...} document a bench run writes via
// --profile_out (or --whatif_out), replays the happens-before DAG under each
// requested experiment, and prints the deterministic text report (predicted
// latency quantiles per experiment plus the ranked knob-sensitivity table);
// --json=<path> additionally writes the {"whatif_report":...} document for
// tools (lint with `trace_lint --whatif`).
//
// Accepts either journal representation: {"causal_journal":...} JSON is
// replayed by the in-memory engine; a binary DPJL journal (--journal_out) is
// replayed by the bounded-memory windowed engine. Both produce byte-identical
// reports for the same journal.
//
//   whatif_report results/profile_fig15.json
//   whatif_report results/journal_fig15.dpj
//   whatif_report results/profile_fig15.json --exp=pcie=1.92 --exp=noevict
//       --json=results/whatif.json
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/causal_graph.h"
#include "src/obs/journal_stream.h"
#include "src/obs/whatif/whatif.h"
#include "src/obs/whatif/whatif_report.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string journal_path;
  std::string json_path;
  std::vector<deepplan::WhatIfExperiment> experiments;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--exp=", 0) == 0) {
      deepplan::WhatIfExperiment exp;
      std::string error;
      if (!deepplan::ParseWhatIfExperiment(arg.substr(6), &exp, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
      }
      experiments.push_back(std::move(exp));
    } else if (journal_path.empty()) {
      journal_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (journal_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s <journal.json> [--exp=<spec>]... "
                 "[--json=<report.json>]\n"
                 "  spec clauses: pcie=K nvlink=K exec=K nocontention "
                 "noevict baseline (comma-separated)\n",
                 argv[0]);
    return 2;
  }
  if (experiments.empty()) {
    experiments = deepplan::DefaultWhatIfExperiments();
  }

  deepplan::WhatIfReport report;
  std::string error;
  if (deepplan::IsBinaryJournalFile(journal_path)) {
    deepplan::WindowedJournal journal;
    if (!journal.Open(journal_path, &error)) {
      std::fprintf(stderr, "bad journal: %s\n", error.c_str());
      return 1;
    }
    report = deepplan::BuildWhatIfReportWindowed(journal, experiments);
  } else {
    std::string text;
    if (!ReadFile(journal_path, &text)) {
      std::fprintf(stderr, "cannot read %s\n", journal_path.c_str());
      return 2;
    }
    deepplan::CausalGraph graph;
    if (!deepplan::CausalGraph::FromJson(text, &graph, &error)) {
      std::fprintf(stderr, "bad journal %s: %s\n", journal_path.c_str(),
                   error.c_str());
      return 1;
    }
    report = deepplan::BuildWhatIfReport(graph, experiments);
  }
  deepplan::PrintWhatIfReport(report, std::cout);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << deepplan::WhatIfReportJson(report) << "\n";
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  // A baseline replay that cannot reproduce its own journal means the
  // journal predates hop/DHA recording (or is damaged): fail loudly so CI
  // never trusts those predictions.
  if (report.requests > 0 && !report.baseline_matches_journal) {
    std::fprintf(stderr,
                 "baseline replay does not match the journal; predictions "
                 "are unreliable\n");
    return 1;
  }
  return 0;
}
