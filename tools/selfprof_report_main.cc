// selfprof_report: human-readable view of the {"selfprof_report":...} JSON a
// bench writes via --selfprof_out (src/obs/selfprof.h). Default mode prints
// every lane's phase tree — estimated wall-clock per phase (sampled phases
// projected to all entries), share of the lane's total, entry counts — plus
// counters and the host RSS block.
//
//   selfprof_report results/selfprof_scaling.json
//   selfprof_report --min_coverage=0.9 results/selfprof_scaling.json
//   selfprof_report --deterministic results/selfprof_scaling.json
//   selfprof_report --diff before.json after.json
//
// --min_coverage=F   gate: on the aggregate lane, the top-level phases'
//                    estimated time must cover at least fraction F of the
//                    root's measured wall-clock; exit 1 below (CI uses 0.9 —
//                    "where does the wall-clock go" must stay answerable).
// --deterministic    re-render the report's deterministic projection (drop
//                    *_ns fields, the host block, and wall-dependent
//                    counters) to stdout; running it on reports from
//                    different DEEPPLAN_JOBS values must produce
//                    byte-identical output (cmp-able determinism legs).
// --diff A B         per-phase-path count and estimated-time deltas between
//                    two reports' aggregate lanes (bench trajectory triage).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/json_parse.h"

namespace {

using deepplan::JsonParseResult;
using deepplan::JsonValue;
using deepplan::ParseJson;

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// Parses `path` and returns the "selfprof_report" object, or null (with a
// stderr diagnostic) on any failure. `doc` keeps the DOM alive.
const JsonValue* LoadReport(const std::string& path, JsonValue* doc) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return nullptr;
  }
  JsonParseResult parsed = ParseJson(text);
  if (!parsed.ok) {
    std::fprintf(stderr, "bad JSON in %s: %s\n", path.c_str(),
                 parsed.error.c_str());
    return nullptr;
  }
  *doc = std::move(parsed.value);
  const JsonValue* report =
      doc->is_object() ? doc->Find("selfprof_report") : nullptr;
  if (report == nullptr || !report->is_object()) {
    std::fprintf(stderr, "%s: no \"selfprof_report\" object\n", path.c_str());
    return nullptr;
  }
  return report;
}

double NumberOr(const JsonValue& obj, const char* key, double fallback) {
  const JsonValue* v = obj.Find(key);
  return (v != nullptr && v->is_number()) ? v->AsNumber() : fallback;
}

// Sum of the immediate children's estimated_ns (0 when untimed/leaf).
double ChildrenEstimatedNs(const JsonValue& node) {
  double sum = 0.0;
  const JsonValue* children = node.Find("children");
  if (children != nullptr && children->is_array()) {
    for (const JsonValue& child : children->items()) {
      sum += NumberOr(child, "estimated_ns", 0.0);
    }
  }
  return sum;
}

void PrintNode(const JsonValue& node, int depth, double root_ns) {
  const JsonValue* phase = node.Find("phase");
  const std::string name =
      (phase != nullptr && phase->is_string()) ? phase->AsString() : "?";
  const double count = NumberOr(node, "count", 0.0);
  const double estimated = NumberOr(node, "estimated_ns", -1.0);
  std::string label(static_cast<std::size_t>(depth) * 2, ' ');
  label += name;
  if (estimated >= 0.0) {
    // estimated-exclusive: this phase's projected time minus its children's.
    const double self = estimated - ChildrenEstimatedNs(node);
    std::printf("  %-34s %10.1fms %5.1f%%  self %8.1fms  x%.0f\n",
                label.c_str(), estimated / 1e6,
                root_ns > 0.0 ? 100.0 * estimated / root_ns : 0.0, self / 1e6,
                count);
  } else {
    std::printf("  %-34s %29s  x%.0f\n", label.c_str(), "", count);
  }
  const JsonValue* children = node.Find("children");
  if (children != nullptr && children->is_array()) {
    for (const JsonValue& child : children->items()) {
      PrintNode(child, depth + 1, root_ns);
    }
  }
}

void PrintLane(const JsonValue& lane) {
  const JsonValue* name = lane.Find("name");
  std::printf("lane \"%s\"\n",
              (name != nullptr && name->is_string()) ? name->AsString().c_str()
                                                     : "?");
  const JsonValue* tree = lane.Find("tree");
  if (tree != nullptr && tree->is_object()) {
    PrintNode(*tree, 0, NumberOr(*tree, "inclusive_ns", 0.0));
  }
  const JsonValue* counters = lane.Find("counters");
  if (counters != nullptr && counters->is_object() &&
      !counters->fields().empty()) {
    std::printf("  counters:");
    for (const auto& [key, value] : counters->fields()) {
      if (value.is_number()) {
        std::printf(" %s=%.0f", key.c_str(), value.AsNumber());
      }
    }
    std::printf("\n");
  }
}

// Fraction of the aggregate root's measured wall-clock covered by its
// top-level phases' estimates. 1.0 (vacuous pass) for untimed projections.
double AggregateCoverage(const JsonValue& report) {
  const JsonValue* aggregate = report.Find("aggregate");
  const JsonValue* tree =
      (aggregate != nullptr && aggregate->is_object()) ? aggregate->Find("tree")
                                                       : nullptr;
  if (tree == nullptr || !tree->is_object()) {
    return 0.0;
  }
  const double root_ns = NumberOr(*tree, "inclusive_ns", -1.0);
  if (root_ns < 0.0) {
    return 1.0;  // deterministic projection: no durations to cover
  }
  if (root_ns == 0.0) {
    return 1.0;
  }
  return ChildrenEstimatedNs(*tree) / root_ns;
}

// --- deterministic projection ------------------------------------------------

// Re-renders `value` with duration fields ("*_ns"), the report's "host"
// block, and wall-dependent counters ("heartbeats") removed. Numbers in the
// surviving fields are integral counts, rendered without a decimal point so
// output is byte-stable.
void RenderDeterministic(const JsonValue& value, std::string* out) {
  if (value.is_object()) {
    out->push_back('{');
    bool first = true;
    for (const auto& [key, field] : value.fields()) {
      const bool ns_key =
          key.size() > 3 && key.compare(key.size() - 3, 3, "_ns") == 0;
      if (ns_key || key == "host" || key == "heartbeats") {
        continue;
      }
      if (!first) out->push_back(',');
      first = false;
      out->push_back('"');
      out->append(key);
      out->append("\":");
      RenderDeterministic(field, out);
    }
    out->push_back('}');
  } else if (value.is_array()) {
    out->push_back('[');
    bool first = true;
    for (const JsonValue& item : value.items()) {
      if (!first) out->push_back(',');
      first = false;
      RenderDeterministic(item, out);
    }
    out->push_back(']');
  } else if (value.is_string()) {
    out->push_back('"');
    out->append(value.AsString());  // report strings carry no escapes
    out->push_back('"');
  } else if (value.is_number()) {
    char buffer[32];
    const double number = value.AsNumber();
    if (number == std::floor(number) && std::fabs(number) < 9.0e15) {
      std::snprintf(buffer, sizeof(buffer), "%lld",
                    static_cast<long long>(number));
    } else {
      std::snprintf(buffer, sizeof(buffer), "%.12g", number);
    }
    out->append(buffer);
  } else {
    out->append("null");
  }
}

// --- diff --------------------------------------------------------------------

struct PhaseStat {
  double count = 0.0;
  double estimated_ns = -1.0;  // -1: untimed report
};

void CollectPhases(const JsonValue& node, const std::string& parent_path,
                   std::map<std::string, PhaseStat>* out) {
  const JsonValue* phase = node.Find("phase");
  if (phase == nullptr || !phase->is_string()) {
    return;
  }
  const std::string path = parent_path.empty()
                               ? phase->AsString()
                               : parent_path + "/" + phase->AsString();
  PhaseStat& stat = (*out)[path];
  stat.count = NumberOr(node, "count", 0.0);
  stat.estimated_ns = NumberOr(node, "estimated_ns", -1.0);
  const JsonValue* children = node.Find("children");
  if (children != nullptr && children->is_array()) {
    for (const JsonValue& child : children->items()) {
      CollectPhases(child, path, out);
    }
  }
}

std::map<std::string, PhaseStat> AggregatePhases(const JsonValue& report) {
  std::map<std::string, PhaseStat> out;
  const JsonValue* aggregate = report.Find("aggregate");
  const JsonValue* tree =
      (aggregate != nullptr && aggregate->is_object()) ? aggregate->Find("tree")
                                                       : nullptr;
  if (tree != nullptr && tree->is_object()) {
    CollectPhases(*tree, "", &out);
  }
  return out;
}

int Diff(const std::string& path_a, const std::string& path_b) {
  JsonValue doc_a = JsonValue::Null();
  JsonValue doc_b = JsonValue::Null();
  const JsonValue* a = LoadReport(path_a, &doc_a);
  const JsonValue* b = LoadReport(path_b, &doc_b);
  if (a == nullptr || b == nullptr) {
    return 2;
  }
  std::map<std::string, PhaseStat> phases = AggregatePhases(*a);
  std::map<std::string, PhaseStat> phases_b = AggregatePhases(*b);
  // Union of phase paths, keyed alphabetically (std::map order).
  for (const auto& [path, stat] : phases_b) {
    (void)stat;
    phases.emplace(path, PhaseStat{});  // no-op when already present
  }
  std::printf("selfprof diff (aggregate lanes): %s -> %s\n", path_a.c_str(),
              path_b.c_str());
  std::printf("  %-44s %14s %14s %12s\n", "phase", "count a->b", "est ms a->b",
              "delta ms");
  for (const auto& [path, stat_a] : phases) {
    const auto it_b = phases_b.find(path);
    const PhaseStat stat_b = it_b != phases_b.end() ? it_b->second : PhaseStat{};
    const bool timed = stat_a.estimated_ns >= 0.0 || stat_b.estimated_ns >= 0.0;
    const double est_a = stat_a.estimated_ns >= 0.0 ? stat_a.estimated_ns : 0.0;
    const double est_b = stat_b.estimated_ns >= 0.0 ? stat_b.estimated_ns : 0.0;
    char counts[64];
    std::snprintf(counts, sizeof(counts), "%.0f->%.0f", stat_a.count,
                  stat_b.count);
    if (timed) {
      char est[64];
      std::snprintf(est, sizeof(est), "%.1f->%.1f", est_a / 1e6, est_b / 1e6);
      std::printf("  %-44s %14s %14s %+12.1f\n", path.c_str(), counts, est,
                  (est_b - est_a) / 1e6);
    } else {
      std::printf("  %-44s %14s %14s %12s\n", path.c_str(), counts, "-", "-");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool deterministic = false;
  bool diff = false;
  double min_coverage = -1.0;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--deterministic") {
      deterministic = true;
    } else if (arg == "--diff") {
      diff = true;
    } else if (arg.rfind("--min_coverage=", 0) == 0) {
      min_coverage = std::strtod(arg.c_str() + 15, nullptr);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (diff) {
    if (files.size() != 2 || deterministic || min_coverage >= 0.0) {
      std::fprintf(stderr, "usage: %s --diff <a.json> <b.json>\n", argv[0]);
      return 2;
    }
    return Diff(files[0], files[1]);
  }
  if (files.size() != 1) {
    std::fprintf(stderr,
                 "usage: %s [--deterministic] [--min_coverage=F] "
                 "<selfprof.json>\n       %s --diff <a.json> <b.json>\n",
                 argv[0], argv[0]);
    return 2;
  }

  JsonValue doc = JsonValue::Null();
  const JsonValue* report = LoadReport(files[0], &doc);
  if (report == nullptr) {
    return 2;
  }

  if (deterministic) {
    std::string out;
    RenderDeterministic(*doc.Find("selfprof_report"), &out);
    std::printf("{\"selfprof_report\":%s}\n", out.c_str());
    return 0;
  }

  std::printf("selfprof report: %s (schema v%.0f)\n",
              files[0].c_str(), NumberOr(*report, "schema_version", 0.0));
  const JsonValue* label = report->Find("label");
  if (label != nullptr && label->is_string()) {
    std::printf("label: %s\n", label->AsString().c_str());
  }
  const JsonValue* lanes = report->Find("lanes");
  if (lanes != nullptr && lanes->is_array()) {
    for (const JsonValue& lane : lanes->items()) {
      PrintLane(lane);
    }
  }
  const JsonValue* aggregate = report->Find("aggregate");
  if (aggregate != nullptr && aggregate->is_object()) {
    PrintLane(*aggregate);
  }
  const JsonValue* host = report->Find("host");
  if (host != nullptr && host->is_object()) {
    std::printf("host: rss=%.0fMB peak=%.0fMB\n",
                NumberOr(*host, "rss_kb", 0.0) / 1024.0,
                NumberOr(*host, "rss_peak_kb", 0.0) / 1024.0);
  }

  const double coverage = AggregateCoverage(*report);
  std::printf("coverage: %.1f%% of aggregate wall-clock attributed to "
              "top-level phases\n",
              100.0 * coverage);
  if (min_coverage >= 0.0 && coverage < min_coverage) {
    std::fprintf(stderr,
                 "FAIL: coverage %.3f below --min_coverage=%.3f — the profiler "
                 "no longer explains where wall-clock goes\n",
                 coverage, min_coverage);
    return 1;
  }
  return 0;
}
