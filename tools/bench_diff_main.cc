// bench_diff: the regression gate. Compares a candidate BENCH_*.json against
// a checked-in golden and exits nonzero on any divergence beyond tolerance.
// Machine-dependent keys (wall_clock_ms, jobs) are ignored at any depth, so
// goldens recorded on one host gate runs on another.
//
//   bench_diff [--tol=0.1] bench/golden/BENCH_fig15.json results/BENCH_fig15.json
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/bench_diff.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  deepplan::check::BenchDiffOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--tol=", 0) == 0) {
      char* end = nullptr;
      options.rel_tol = std::strtod(arg.c_str() + 6, &end);
      if (end == nullptr || *end != '\0' || options.rel_tol < 0.0) {
        std::fprintf(stderr, "bad --tol value: %s\n", arg.c_str());
        return 2;
      }
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr, "usage: %s [--tol=X] <golden.json> <candidate.json>\n",
                 argv[0]);
    return 2;
  }

  std::string golden;
  std::string candidate;
  if (!ReadFile(paths[0], &golden)) {
    std::fprintf(stderr, "cannot read %s\n", paths[0].c_str());
    return 2;
  }
  if (!ReadFile(paths[1], &candidate)) {
    std::fprintf(stderr, "cannot read %s\n", paths[1].c_str());
    return 2;
  }

  const deepplan::check::BenchDiffResult result =
      deepplan::check::DiffBenchReports(golden, candidate, options);
  if (!result.parsed) {
    std::fprintf(stderr, "parse error: %s\n", result.parse_error.c_str());
    return 2;
  }
  if (result.ok()) {
    std::printf("OK %s vs %s (tol %g)\n", paths[0].c_str(), paths[1].c_str(),
                options.rel_tol);
    return 0;
  }
  std::fprintf(stderr, "REGRESSION %s vs %s: %zu difference(s)\n",
               paths[0].c_str(), paths[1].c_str(), result.diffs.size());
  for (const deepplan::check::BenchDiffEntry& diff : result.diffs) {
    std::fprintf(stderr, "  %s: %s\n", diff.path.c_str(),
                 diff.detail.c_str());
  }
  return 1;
}
