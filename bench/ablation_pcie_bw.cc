// Ablation: PCIe bandwidth sensitivity. Sweeps the effective host->GPU
// bandwidth from PCIe 3.0-class to PCIe 5.0-class and reports where
// DeepPlan's advantage over PipeSwitch comes from and where it shrinks:
// faster links shorten loads, stalls vanish, and cold latency converges
// toward the warm-execution floor for every strategy (the Figure 16 story,
// extrapolated).
#include <iostream>

#include "bench/bench_util.h"

namespace {

using namespace deepplan;

Nanos ColdAt(const Topology& topology, const PerfModel& perf, const Model& model,
             Strategy strategy) {
  const ModelProfile profile = bench::ExactProfile(perf, model);
  const int degree = StrategyDegree(strategy, topology, 0);
  const ExecutionPlan plan = MakeStrategyPlan(strategy, profile, degree);
  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  InferenceResult result;
  engine.RunCold(model, plan, 0,
                 TransmissionPlanner::ChooseSecondaries(topology, 0, degree),
                 MakeColdRunOptions(strategy),
                 [&](const InferenceResult& r) { result = r; });
  sim.Run();
  return result.latency;
}

}  // namespace

int main() {
  const Model model = ModelZoo::BertBase();

  std::cout << "Ablation: PCIe effective bandwidth sweep (BERT-Base, batch 1, "
               "4-GPU V100 topology with scaled links)\n\n";
  Table table({"PCIe bw (GB/s)", "Baseline", "PipeSwitch", "DHA", "PT+DHA",
               "PT+DHA/PipeSwitch", "warm floor"});
  for (const double gbps : {8.0, 12.0, 16.0, 23.0, 32.0, 48.0}) {
    PcieSpec pcie = PcieSpec::Gen3();
    pcie.name = "swept";
    pcie.effective_bw_bytes_per_sec = gbps * 1e9;
    const Topology topology = Topology::Custom(
        "swept", GpuSpec::V100(), pcie, NvlinkSpec::V100Nvlink(), {0, 0, 1, 1},
        pcie.effective_bw_bytes_per_sec * 1.05,
        {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
    const PerfModel perf(topology.gpu(), topology.pcie());
    const Nanos baseline = ColdAt(topology, perf, model, Strategy::kBaseline);
    const Nanos pipeswitch = ColdAt(topology, perf, model, Strategy::kPipeSwitch);
    const Nanos dha = ColdAt(topology, perf, model, Strategy::kDeepPlanDha);
    const Nanos ptdha = ColdAt(topology, perf, model, Strategy::kDeepPlanPtDha);
    table.AddRow({Table::Num(gbps, 0), FormatDuration(baseline),
                  FormatDuration(pipeswitch), FormatDuration(dha),
                  FormatDuration(ptdha),
                  Table::Num(static_cast<double>(pipeswitch) /
                                 static_cast<double>(ptdha),
                             2) +
                      "x",
                  FormatDuration(perf.WarmLatency(model, 1))});
  }
  table.Print(std::cout);
  std::cout << "\nAs bandwidth grows, every strategy converges toward the "
               "warm floor and DeepPlan's edge narrows — provisioning "
               "acceleration matters exactly when the interconnect is the "
               "bottleneck.\n";
  return 0;
}
