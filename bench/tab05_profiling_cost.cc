// Table 5: simulated wall-clock time spent profiling models (10 iterations):
// the DHA pass, the in-memory pass, and the layer-load pass.
//
// Paper shape: the DHA pass dominates; totals range seconds to ~a minute and
// grow with model size.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace deepplan;
  const PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  ProfilerOptions opts;
  opts.iterations = 10;
  Profiler profiler(&perf, opts);

  std::cout << "Table 5: time spent profiling models (10 iterations)\n\n";
  Table table({"model", "DHA", "In-memory", "Layer load", "Total"});
  for (const char* name :
       {"resnet50", "bert_base", "roberta_large", "gpt2_medium"}) {
    const Model model = ModelZoo::ByName(name);
    const ProfilingCost cost = profiler.Cost(model);
    table.AddRow({deepplan::bench::PrettyModelName(name),
                  Table::Num(ToSeconds(cost.dha_pass), 2) + "s",
                  Table::Num(ToSeconds(cost.in_memory_pass), 2) + "s",
                  Table::Num(ToSeconds(cost.layer_load_pass), 2) + "s",
                  Table::Num(ToSeconds(cost.Total()), 2) + "s"});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: ResNet-50 3.92s, BERT-Base 12.40s, "
               "RoBERTa-Large 75.87s, GPT-2 Medium 40.81s (DHA pass "
               "dominates).\n";
  return 0;
}
