// Table 5: simulated wall-clock time spent profiling models (10 iterations):
// the DHA pass, the in-memory pass, and the layer-load pass.
//
// Paper shape: the DHA pass dominates; totals range seconds to ~a minute and
// grow with model size.
//
// A second section measures the cost of *our* profiler — the causal
// recorder behind --profile_out. Recording must be timing-neutral: the same
// cold start is run with attribution off and on, the BENCH point rendered
// from each must be byte-identical (DP_CHECK), and the only cost reported is
// the journal bookkeeping (node/edge counts, journal bytes) plus a
// wall-clock overhead estimate on stderr (the one non-deterministic number).
#include <chrono>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/util/logging.h"

namespace {

using namespace deepplan;

// The deterministic simulated outcome of a cold start, rendered the way a
// BENCH point would be.
std::string PointJson(const InferenceResult& r) {
  return JsonObject()
      .Set("latency_ns", r.latency)
      .Set("exec_busy_ns", r.exec_busy)
      .Set("stall_ns", r.stall)
      .Render();
}

}  // namespace

int main() {
  using namespace deepplan::bench;
  const PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  ProfilerOptions opts;
  opts.iterations = 10;
  Profiler profiler(&perf, opts);

  std::cout << "Table 5: time spent profiling models (10 iterations)\n\n";
  Table table({"model", "DHA", "In-memory", "Layer load", "Total"});
  for (const char* name :
       {"resnet50", "bert_base", "roberta_large", "gpt2_medium"}) {
    const Model model = ModelZoo::ByName(name);
    const ProfilingCost cost = profiler.Cost(model);
    table.AddRow({PrettyModelName(name),
                  Table::Num(ToSeconds(cost.dha_pass), 2) + "s",
                  Table::Num(ToSeconds(cost.in_memory_pass), 2) + "s",
                  Table::Num(ToSeconds(cost.layer_load_pass), 2) + "s",
                  Table::Num(ToSeconds(cost.Total()), 2) + "s"});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: ResNet-50 3.92s, BERT-Base 12.40s, "
               "RoBERTa-Large 75.87s, GPT-2 Medium 40.81s (DHA pass "
               "dominates).\n";

  // Causal-recorder overhead: attribution may not perturb the simulation.
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel tperf(topology.gpu(), topology.pcie());
  BenchReport report("tab05_profiling_cost");
  std::cout << "\nCausal recorder overhead (one cold start, batch 1):\n";
  Table overhead({"model", "strategy", "latency", "nodes", "edges",
                  "journal bytes"});
  for (const char* name : {"bert_base", "gpt2"}) {
    const Model model = ModelZoo::ByName(name);
    const ModelProfile profile = ExactProfile(tperf, model);
    for (const Strategy strategy :
         {Strategy::kPipeSwitch, Strategy::kDeepPlanPtDha}) {
      const ColdMeasurement plain =
          RunColdWithProfile(topology, tperf, model, strategy, profile);
      CausalGraph graph(/*enabled=*/true);
      const int process = graph.RegisterProcess(StrategyName(strategy));
      const ColdMeasurement recorded = RunColdWithProfile(
          topology, tperf, model, strategy, profile, /*batch=*/1, &graph,
          process);
      // Byte-identical BENCH output with attribution on vs off — recording
      // observes the run, it never steers it.
      DP_CHECK(PointJson(plain.result) == PointJson(recorded.result));
      const std::string journal = graph.ToJson();
      overhead.AddRow({PrettyModelName(name), StrategyName(strategy),
                       FormatDuration(plain.result.latency),
                       std::to_string(graph.nodes().size()),
                       std::to_string(graph.edges().size()),
                       std::to_string(journal.size())});
      JsonObject& point = report.AddPoint();
      point.Set("model", name)
          .Set("strategy", StrategyName(strategy))
          .SetRaw("result", PointJson(plain.result))
          .Set("causal_nodes", static_cast<std::int64_t>(graph.nodes().size()))
          .Set("causal_edges", static_cast<std::int64_t>(graph.edges().size()))
          .Set("journal_bytes", static_cast<std::int64_t>(journal.size()));
    }
  }
  overhead.Print(std::cout);
  std::cout << "\nRecording is timing-neutral: every simulated result above "
               "is byte-identical with attribution on or off (checked).\n";

  // Wall-clock overhead of recording (host-dependent -> stderr only).
  {
    const Model model = ModelZoo::BertBase();
    const ModelProfile profile = ExactProfile(tperf, model);
    constexpr int kReps = 20;
    // deepplan-lint: allow(raw-entropy, recorder-overhead measurement is wall-clock by definition; reported text only, no golden)
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kReps; ++r) {
      RunColdWithProfile(topology, tperf, model, Strategy::kDeepPlanPtDha,
                         profile);
    }
    // deepplan-lint: allow(raw-entropy, recorder-overhead measurement is wall-clock by definition; reported text only, no golden)
    const auto t1 = std::chrono::steady_clock::now();
    for (int r = 0; r < kReps; ++r) {
      CausalGraph graph(/*enabled=*/true);
      const int process = graph.RegisterProcess("overhead");
      RunColdWithProfile(topology, tperf, model, Strategy::kDeepPlanPtDha,
                         profile, /*batch=*/1, &graph, process);
    }
    // deepplan-lint: allow(raw-entropy, recorder-overhead measurement is wall-clock by definition; reported text only, no golden)
    const auto t2 = std::chrono::steady_clock::now();
    const double off_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double on_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    std::cerr << "recorder wall-clock overhead: " << Table::Num(off_ms, 1)
              << " ms off vs " << Table::Num(on_ms, 1) << " ms on over "
              << kReps << " BERT-Base PT+DHA cold starts ("
              << Table::Pct(off_ms > 0.0 ? (on_ms - off_ms) / off_ms : 0.0)
              << " overhead)\n";
  }
  report.Write(&std::cerr);
  return 0;
}
