// Table 5: simulated wall-clock time spent profiling models (10 iterations):
// the DHA pass, the in-memory pass, and the layer-load pass.
//
// Paper shape: the DHA pass dominates; totals range seconds to ~a minute and
// grow with model size.
//
// A second section measures the cost of *our* profiler — the causal
// recorder behind --profile_out. Recording must be timing-neutral: the same
// cold start is run with attribution off and on, the BENCH point rendered
// from each must be byte-identical (DP_CHECK), and the only cost reported is
// the journal bookkeeping (node/edge counts, journal bytes) plus a
// wall-clock overhead estimate on stderr (the one non-deterministic number).
//
// Third and fourth sections apply the same discipline to the host-side
// observability added for --selfprof_out and DEEPPLAN_PROGRESS: a scaling
// point replayed with the self-profiler off and on must produce a
// byte-identical deterministic surface (DP_CHECK), and a dispatch-loop
// micro-bench with the heartbeat check off and armed must dispatch the same
// events; wall-clock deltas for both go to stderr.
#include <chrono>
#include <functional>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "bench/scaling_common.h"
#include "src/util/logging.h"

namespace {

using namespace deepplan;

// The deterministic simulated outcome of a cold start, rendered the way a
// BENCH point would be.
std::string PointJson(const InferenceResult& r) {
  return JsonObject()
      .Set("latency_ns", r.latency)
      .Set("exec_busy_ns", r.exec_busy)
      .Set("stall_ns", r.stall)
      .Render();
}

}  // namespace

int main() {
  using namespace deepplan::bench;
  const PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  ProfilerOptions opts;
  opts.iterations = 10;
  Profiler profiler(&perf, opts);

  std::cout << "Table 5: time spent profiling models (10 iterations)\n\n";
  Table table({"model", "DHA", "In-memory", "Layer load", "Total"});
  for (const char* name :
       {"resnet50", "bert_base", "roberta_large", "gpt2_medium"}) {
    const Model model = ModelZoo::ByName(name);
    const ProfilingCost cost = profiler.Cost(model);
    table.AddRow({PrettyModelName(name),
                  Table::Num(ToSeconds(cost.dha_pass), 2) + "s",
                  Table::Num(ToSeconds(cost.in_memory_pass), 2) + "s",
                  Table::Num(ToSeconds(cost.layer_load_pass), 2) + "s",
                  Table::Num(ToSeconds(cost.Total()), 2) + "s"});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: ResNet-50 3.92s, BERT-Base 12.40s, "
               "RoBERTa-Large 75.87s, GPT-2 Medium 40.81s (DHA pass "
               "dominates).\n";

  // Causal-recorder overhead: attribution may not perturb the simulation.
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel tperf(topology.gpu(), topology.pcie());
  BenchReport report("tab05_profiling_cost");
  std::cout << "\nCausal recorder overhead (one cold start, batch 1):\n";
  Table overhead({"model", "strategy", "latency", "nodes", "edges",
                  "journal bytes"});
  for (const char* name : {"bert_base", "gpt2"}) {
    const Model model = ModelZoo::ByName(name);
    const ModelProfile profile = ExactProfile(tperf, model);
    for (const Strategy strategy :
         {Strategy::kPipeSwitch, Strategy::kDeepPlanPtDha}) {
      const ColdMeasurement plain =
          RunColdWithProfile(topology, tperf, model, strategy, profile);
      CausalGraph graph(/*enabled=*/true);
      const int process = graph.RegisterProcess(StrategyName(strategy));
      const ColdMeasurement recorded = RunColdWithProfile(
          topology, tperf, model, strategy, profile, /*batch=*/1, &graph,
          process);
      // Byte-identical BENCH output with attribution on vs off — recording
      // observes the run, it never steers it.
      DP_CHECK(PointJson(plain.result) == PointJson(recorded.result));
      const std::string journal = graph.ToJson();
      overhead.AddRow({PrettyModelName(name), StrategyName(strategy),
                       FormatDuration(plain.result.latency),
                       std::to_string(graph.nodes().size()),
                       std::to_string(graph.edges().size()),
                       std::to_string(journal.size())});
      JsonObject& point = report.AddPoint();
      point.Set("model", name)
          .Set("strategy", StrategyName(strategy))
          .SetRaw("result", PointJson(plain.result))
          .Set("causal_nodes", static_cast<std::int64_t>(graph.nodes().size()))
          .Set("causal_edges", static_cast<std::int64_t>(graph.edges().size()))
          .Set("journal_bytes", static_cast<std::int64_t>(journal.size()));
    }
  }
  overhead.Print(std::cout);
  std::cout << "\nRecording is timing-neutral: every simulated result above "
               "is byte-identical with attribution on or off (checked).\n";

  // Wall-clock overhead of recording (host-dependent -> stderr only).
  {
    const Model model = ModelZoo::BertBase();
    const ModelProfile profile = ExactProfile(tperf, model);
    constexpr int kReps = 20;
    // deepplan-lint: allow(raw-entropy, recorder-overhead measurement is wall-clock by definition; reported text only, no golden)
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kReps; ++r) {
      RunColdWithProfile(topology, tperf, model, Strategy::kDeepPlanPtDha,
                         profile);
    }
    // deepplan-lint: allow(raw-entropy, recorder-overhead measurement is wall-clock by definition; reported text only, no golden)
    const auto t1 = std::chrono::steady_clock::now();
    for (int r = 0; r < kReps; ++r) {
      CausalGraph graph(/*enabled=*/true);
      const int process = graph.RegisterProcess("overhead");
      RunColdWithProfile(topology, tperf, model, Strategy::kDeepPlanPtDha,
                         profile, /*batch=*/1, &graph, process);
    }
    // deepplan-lint: allow(raw-entropy, recorder-overhead measurement is wall-clock by definition; reported text only, no golden)
    const auto t2 = std::chrono::steady_clock::now();
    const double off_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double on_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    std::cerr << "recorder wall-clock overhead: " << Table::Num(off_ms, 1)
              << " ms off vs " << Table::Num(on_ms, 1) << " ms on over "
              << kReps << " BERT-Base PT+DHA cold starts ("
              << Table::Pct(off_ms > 0.0 ? (on_ms - off_ms) / off_ms : 0.0)
              << " overhead)\n";
  }

  // Self-profiler overhead: host wall-clock attribution (--selfprof_out) may
  // not perturb the simulation either — same scaling point with the lane off
  // and on, byte-identical deterministic surface.
  {
    bench::ScalingPointOptions options;
    options.num_requests = 20000;
    const bench::ScalingPointResult plain = bench::RunScalingPoint(options);
    options.selfprof = true;
    const bench::ScalingPointResult profiled = bench::RunScalingPoint(options);
    DP_CHECK(bench::DeterministicPointsJson({plain}) ==
             bench::DeterministicPointsJson({profiled}));

    std::cout << "\nSelf-profiler cost (20k-request scaling point):\n";
    Table phases({"phase", "entries", "timed samples"});
    const auto& nodes = profiled.selfprof.nodes();
    for (std::size_t i = 1; i < nodes.size(); ++i) {  // skip the root "total"
      int depth = 0;  // indent by nesting depth below the root
      for (std::int32_t p = nodes[i].parent; p > 0;
           p = nodes[static_cast<std::size_t>(p)].parent) {
        ++depth;
      }
      phases.AddRow({std::string(static_cast<std::size_t>(depth) * 2, ' ') +
                         selfprof::PhaseName(nodes[i].phase),
                     std::to_string(nodes[i].count),
                     std::to_string(nodes[i].sampled)});
    }
    phases.Print(std::cout);
    std::cout << "\nSelf-profiling is timing-neutral: the point's "
                 "deterministic surface is byte-identical with the lane off "
                 "or on (checked); sampled phases pay one clock pair per "
                 << selfprof::kSampledPhasePeriod << " entries.\n";

    JsonObject& point = report.AddPoint();
    point.Set("section", "selfprof_overhead")
        .Set("requests", static_cast<std::int64_t>(options.num_requests))
        .Set("events_dispatched",
             static_cast<std::int64_t>(profiled.selfprof.counter(
                 selfprof::Counter::kEventsDispatched)))
        .Set("deterministic_surface_identical", true);

    // Wall-clock overhead of the lane (host-dependent -> stderr only).
    std::cerr << "selfprof wall-clock: " << Table::Num(plain.wall_ms, 1)
              << " ms off vs " << Table::Num(profiled.wall_ms, 1)
              << " ms on for the 20k point ("
              << Table::Pct(plain.wall_ms > 0.0
                                ? (profiled.wall_ms - plain.wall_ms) /
                                      plain.wall_ms
                                : 0.0)
              << " overhead, single run — run_all.sh gates best-of-N)\n";
  }

  // Heartbeat overhead: the DEEPPLAN_PROGRESS check rides the hot dispatch
  // loop, so measure it where it lives — a chain of empty events.
  {
    constexpr std::uint64_t kEvents = 1000000;
    const auto run_chain = [](Nanos period) {
      Simulator sim;
      sim.set_progress_period_for_testing(period);
      std::uint64_t fired = 0;
      std::function<void()> tick;
      tick = [&] {
        if (++fired < kEvents) {
          sim.ScheduleAfter(1, tick);
        }
      };
      sim.ScheduleAfter(1, tick);
      sim.Run();
      return sim.events_dispatched();
    };
    // deepplan-lint: allow(raw-entropy, heartbeat-overhead measurement is wall-clock by definition; reported text only, no golden)
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t off_dispatched = run_chain(0);
    // deepplan-lint: allow(raw-entropy, heartbeat-overhead measurement is wall-clock by definition; reported text only, no golden)
    const auto t1 = std::chrono::steady_clock::now();
    // Armed with an hour-long period: the cadence check runs every 1024
    // dispatches but never emits, isolating the check's cost.
    const std::uint64_t on_dispatched = run_chain(Seconds(3600));
    // deepplan-lint: allow(raw-entropy, heartbeat-overhead measurement is wall-clock by definition; reported text only, no golden)
    const auto t2 = std::chrono::steady_clock::now();
    DP_CHECK(off_dispatched == on_dispatched);  // observation only, no steering
    const double off_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double on_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    std::cerr << "heartbeat wall-clock: " << Table::Num(off_ms, 1)
              << " ms off vs " << Table::Num(on_ms, 1) << " ms armed over "
              << kEvents << " empty dispatches ("
              << Table::Pct(off_ms > 0.0 ? (on_ms - off_ms) / off_ms : 0.0)
              << " overhead)\n";
    JsonObject& point = report.AddPoint();
    point.Set("section", "heartbeat_overhead")
        .Set("events", static_cast<std::int64_t>(kEvents))
        .Set("dispatch_identical", true);
  }
  report.Write(&std::cerr);
  return 0;
}
