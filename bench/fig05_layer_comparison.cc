// Figure 5: per-layer execution time, load-then-execute vs direct-host-access
// for (a) embedding layers from BERT-Base, (b) convolutional layers from
// ResNet-50, (c) fully connected layers from BERT-Base. Batch size 1.
//
// Paper shape: DHA wins for embeddings (hugely for the 89 MiB one), ties for
// small/medium convs and loses for large convs, and loses badly for FCs.
#include <iostream>

#include "bench/bench_util.h"

namespace {

void PrintGroup(const deepplan::PerfModel& perf, const char* title,
                const std::vector<std::pair<std::string, deepplan::Layer>>& layers) {
  using deepplan::FormatBytes;
  using deepplan::FormatDuration;
  using deepplan::Table;
  std::cout << title << "\n";
  Table table({"layer", "size", "load", "exec(in-mem)", "load+exec", "DHA",
               "DHA/load+exec"});
  for (const auto& [label, layer] : layers) {
    const auto load = perf.LoadTime(layer);
    const auto exec = perf.ExecInMemory(layer);
    const auto dha = perf.ExecDha(layer);
    table.AddRow({label, FormatBytes(layer.param_bytes), FormatDuration(load),
                  FormatDuration(exec), FormatDuration(load + exec),
                  FormatDuration(dha),
                  Table::Num(static_cast<double>(dha) /
                                 static_cast<double>(load + exec),
                             2) +
                      "x"});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace deepplan;
  const PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());

  std::cout << "Figure 5: load-then-execute vs direct-host-access per layer "
               "(batch 1, V100 / PCIe 3.0)\n\n";

  PrintGroup(perf, "(a) Embedding layers (BERT-Base, seq 384)",
             {{"Medium (1.50MiB)", Layer::Embedding("pos", 512, 768, 384)},
              {"Large (89.42MiB)", Layer::Embedding("word", 30522, 768, 384)}});

  PrintGroup(perf, "(b) Convolutional layers (ResNet-50)",
             {{"Small (0.14MiB)", Layer::Conv2d("c1", 64, 64, 3, 56, 56)},
              {"Medium (2.25MiB)", Layer::Conv2d("c2", 256, 256, 3, 14, 14)},
              {"Large (9.00MiB)", Layer::Conv2d("c3", 512, 512, 3, 7, 7)}});

  PrintGroup(perf, "(c) Fully connected layers (BERT-Base, seq 384)",
             {{"Small (2.25MiB)", Layer::Linear("qkv", 768, 768, 384, false)},
              {"Large (9.01MiB)", Layer::Linear("ffn", 768, 3072, 384)}});

  std::cout << "(d) Other layers (Section 3.1)\n";
  PrintGroup(perf, "",
             {{"BatchNorm (256ch)", Layer::BatchNorm("bn", 256, 14 * 14)},
              {"LayerNorm (768d)", Layer::LayerNorm("ln", 768, 384)}});

  std::cout << "Paper reference: DHA preferable for embeddings and BatchNorm; "
               "load-then-execute wins for FC, large conv, and LayerNorm.\n";
  return 0;
}
