// Table 2: average PCIe bandwidth per participating GPU when loading a model
// serially vs with parallel-pipeline over 2 and 4 GPUs.
//
// Paper shape: serial 9.1-11.5 GB/s (ResNet lowest: many small transfers);
// parallel-pipeline(2) about the same per lane; parallel-pipeline(4) drops to
// ~6 GB/s per lane because two GPUs share each switch uplink.
#include <iostream>

#include "bench/bench_util.h"

namespace {

using namespace deepplan;

// Per-lane average bandwidths (GB/s) for a parallel-pipeline transmission of
// `degree` partitions.
double AvgLaneBandwidth(const Topology& topology, const PerfModel& perf,
                        const Model& model, int degree) {
  ProfilerOptions popts;
  popts.noise_stddev = 0.0;
  const ModelProfile profile = Profiler(&perf, popts).Profile(model);
  ExecutionPlan plan(model.name(), model.num_layers());
  TransmissionPlanner::AssignPartitions(profile, degree, &plan);
  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  const std::vector<GpuId> all_secondaries = {2, 1, 3};
  InferenceResult result;
  engine.RunCold(model, plan, 0,
                 std::vector<GpuId>(all_secondaries.begin(),
                                    all_secondaries.begin() + (degree - 1)),
                 ColdRunOptions{}, [&](const InferenceResult& r) { result = r; });
  sim.Run();
  double sum = 0.0;
  int lanes = 0;
  for (const auto& p : result.partitions) {
    if (p.bytes == 0 || p.pcie_done <= p.pcie_start) {
      continue;
    }
    sum += static_cast<double>(p.bytes) / ToSeconds(p.pcie_done - p.pcie_start) / 1e9;
    ++lanes;
  }
  return lanes == 0 ? 0.0 : sum / lanes;
}

}  // namespace

int main() {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());

  std::cout << "Table 2: average PCIe bandwidth (GB/s) per GPU lane\n\n";
  Table table({"model", "Serial (1)", "Parallel-pipeline (2)",
               "Parallel-pipeline (4)"});
  for (const char* name :
       {"resnet50", "bert_base", "roberta_large", "gpt2_medium"}) {
    const Model model = ModelZoo::ByName(name);
    table.AddRow({bench::PrettyModelName(name),
                  Table::Num(AvgLaneBandwidth(topology, perf, model, 1), 2),
                  Table::Num(AvgLaneBandwidth(topology, perf, model, 2), 2),
                  Table::Num(AvgLaneBandwidth(topology, perf, model, 4), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: serial 9.10-11.52 GB/s; (2) within ~2%; "
               "(4) collapses to 5.9-7.0 GB/s from switch-uplink sharing.\n";
  return 0;
}
