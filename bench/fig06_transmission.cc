// Figure 6: model loading time to a target GPU — serial (one PCIe lane) vs
// parallel (partitions land on secondary GPUs, then one bulk NVLink forward)
// vs parallel-pipeline (per-layer NVLink forwarding), with 2 and 4 GPUs.
//
// Paper shape: parallel(2) cuts transfer ~30-45%; parallel-pipeline(2) nearly
// halves it for transformers; 4 GPUs add little or regress because two GPUs
// share each PCIe switch uplink.
#include <iostream>

#include "bench/bench_util.h"

namespace {

using namespace deepplan;

// Transmission completion time (last byte on the primary GPU) for a plan with
// `degree` partitions and the given migration mode. Secondary GPU order: 2
// (other switch), then 1 and 3 (forcing same-switch contention at degree 4,
// as in the paper's 4-GPU configuration).
Nanos TransmissionTime(const Topology& topology, const PerfModel& perf,
                       const Model& model, int degree, MigrationMode migration) {
  ProfilerOptions popts;
  popts.noise_stddev = 0.0;
  const ModelProfile profile = Profiler(&perf, popts).Profile(model);
  ExecutionPlan plan(model.name(), model.num_layers());
  TransmissionPlanner::AssignPartitions(profile, degree, &plan);
  const std::vector<GpuId> secondaries = {2, 1, 3};
  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  ColdRunOptions options;
  options.migration = migration;
  InferenceResult result;
  engine.RunCold(model, plan, /*primary=*/0,
                 std::vector<GpuId>(secondaries.begin(),
                                    secondaries.begin() + (degree - 1)),
                 options, [&](const InferenceResult& r) { result = r; });
  sim.Run();
  return result.load_done;
}

}  // namespace

int main() {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());

  std::cout << "Figure 6: model loading time, serial vs parallel vs "
               "parallel-pipeline (numbers in parentheses = GPUs used)\n\n";
  Table table({"model", "serial (1)", "parallel (2)", "par-pipe (2)", "parallel (4)",
               "par-pipe (4)"});
  for (const char* name :
       {"resnet50", "bert_base", "roberta_large", "gpt2_medium"}) {
    const Model model = ModelZoo::ByName(name);
    const Nanos serial =
        TransmissionTime(topology, perf, model, 1, MigrationMode::kBulk);
    const Nanos par2 =
        TransmissionTime(topology, perf, model, 2, MigrationMode::kBulk);
    const Nanos pp2 =
        TransmissionTime(topology, perf, model, 2, MigrationMode::kPipelined);
    const Nanos par4 =
        TransmissionTime(topology, perf, model, 4, MigrationMode::kBulk);
    const Nanos pp4 =
        TransmissionTime(topology, perf, model, 4, MigrationMode::kPipelined);
    table.AddRow({bench::PrettyModelName(name), FormatDuration(serial),
                  FormatDuration(par2), FormatDuration(pp2), FormatDuration(par4),
                  FormatDuration(pp4)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: parallel-pipeline (2) roughly halves "
               "transformer load time; (4) shows little further gain due to "
               "PCIe switch contention.\n";
  return 0;
}
