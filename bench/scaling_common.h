// Shared core of the sim-core scaling measurement: one point = replay a
// count-exact synthetic trace (src/workload/synthetic.h) against a BERT-Base
// server on an *external* simulator, so the point can report event-queue
// introspection (total events scheduled, callback-slot peak) alongside the
// serving metrics. Used by bench/bench_scaling.cc (the 44k/200k/1M curve
// behind BENCH_scaling.json) and tests/scaling_test.cc (byte-identical
// output across DEEPPLAN_JOBS, bounded memory at 200k requests).
//
// Everything in ScalingPointResult except wall_ms is a pure function of the
// point's options — the deterministic surface the golden gate locks down.
// Wall-clock readings only ever appear under keys named "wall_clock_ms",
// which tools/bench_diff ignores at any depth.
#ifndef BENCH_SCALING_COMMON_H_
#define BENCH_SCALING_COMMON_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/deepplan.h"
#include "src/util/logging.h"

namespace deepplan {
namespace bench {

struct ScalingPointOptions {
  std::size_t num_requests = 44000;
  double rate_per_sec = 120.0;
  int num_instances = 135;
  double zipf_exponent = 0.9;
  std::uint64_t seed = 42;
  Strategy strategy = Strategy::kDeepPlanPtDha;
  Nanos slo = Millis(100);
  // Non-empty: stream a binary causal journal of the replay to this path.
  // Recording is bounded-memory (in-flight requests, not journal length), so
  // the 1M point stays within the same RSS pin as the unjournaled run.
  std::string journal_out;
  // Profile the point's own host wall-clock into result.selfprof (the lane is
  // installed for the duration of the replay; see src/obs/selfprof.h).
  bool selfprof = false;
};

struct ScalingPointResult {
  // Deterministic (golden-gated).
  std::size_t requests = 0;
  std::size_t completed = 0;
  std::size_t cold_starts = 0;
  double goodput = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double sim_seconds = 0.0;          // trace duration in simulated time
  std::uint64_t events_scheduled = 0;  // total events over the whole replay
  std::size_t event_slot_peak = 0;     // callback slots ever created
  // Journal recording (journal_out only; deterministic — the encoding holds
  // no timestamps, so the same point yields the same bytes on any host).
  bool journaled = false;
  JournalTotals journal;
  std::uint64_t journal_bytes = 0;
  // Self-profiling lane for this point (selfprof option only). Never feeds
  // FillScalingPoint — the BENCH point schema and its golden are untouched;
  // benches render it into a separate --selfprof_out report. Phase counts in
  // here are deterministic; durations are wall-dependent.
  selfprof::SelfProfiler selfprof;
  // Wall-dependent (reported only under "wall_clock_ms" keys / stdout).
  double wall_ms = 0.0;
};

// Replays one scaling point. Arrivals are fed through a chained feeder (each
// Submit schedules the next), so pending events track server activity — not
// trace length; event_slot_peak stays O(outstanding work) even at 1M
// requests, which is the arena-reuse property the scaling test pins.
inline ScalingPointResult RunScalingPoint(const ScalingPointOptions& options) {
  // deepplan-lint: allow(raw-entropy, wall-clock measurement; only feeds wall_ms, which the golden gate ignores)
  const auto wall_start = std::chrono::steady_clock::now();

  ScalingPointResult r;
  {
    // Lane for this point's host-side wall-clock attribution; the scoped
    // phases inside the components (workload gen, dispatch, fair-share, ...)
    // accumulate here. No-op unless options.selfprof.
    selfprof::InstallLane profile(options.selfprof ? &r.selfprof : nullptr);

    SyntheticScaleOptions w;
    w.num_requests = options.num_requests;
    w.rate_per_sec = options.rate_per_sec;
    w.num_instances = options.num_instances;
    w.zipf_exponent = options.zipf_exponent;
    w.seed = options.seed;
    const Trace trace = GenerateSyntheticScaleTrace(w);

    // Setup scope held in an optional: the objects it times must outlive it.
    std::optional<selfprof::ScopedPhase> setup(std::in_place,
                                               selfprof::Phase::kSetup);
    const Topology topology = Topology::P3_8xlarge();
    const PerfModel perf(topology.gpu(), topology.pcie());
    ServerOptions server_options;
    server_options.strategy = options.strategy;
    server_options.slo = options.slo;
    Simulator sim;
    Server server(&sim, topology, perf, server_options);
    const int type = server.RegisterModelType(ModelZoo::BertBase());
    server.AddInstances(type, options.num_instances);

    // Streaming journal: the graph retires each request into the chunked
    // binary writer as it completes, so resident recorder state tracks
    // in-flight requests while the journal itself goes to disk.
    const bool journal = !options.journal_out.empty();
    CausalGraph causal(journal);
    JournalWriter writer;
    MetricsRegistry journal_metrics;
    if (journal) {
      const bool opened = writer.Open(options.journal_out, {}, &journal_metrics);
      DP_CHECK(opened);
      causal.AttachSink(&writer);
      server.set_causal(&causal, causal.RegisterProcess("scaling"));
    }
    setup.reset();
    server.Warmup();

    struct Feeder {
      const std::vector<Arrival>* arrivals;
      Simulator* sim;
      Server* server;
      std::size_t next = 0;
      void ScheduleNext() {
        if (next >= arrivals->size()) {
          return;
        }
        const Arrival& a = (*arrivals)[next++];
        sim->ScheduleAt(a.time, [this, instance = a.instance] {
          server->Submit(instance);
          ScheduleNext();
        });
      }
    };
    Feeder feeder{&trace.arrivals(), &sim, &server};
    feeder.ScheduleNext();
    sim.Run();

    {
      DP_SELFPROF_SCOPE(kMetricsSnapshot);
      const ServingMetrics& m = server.metrics();
      r.requests = trace.size();
      r.completed = m.count();
      r.cold_starts = m.ColdStartCount();
      r.goodput = m.Goodput(options.slo);
      r.p99_ms = m.LatencyPercentileMs(99);
      r.mean_ms = m.MeanLatencyMs();
      r.sim_seconds = ToSeconds(trace.duration());
      r.events_scheduled = sim.event_queue().total_scheduled();
      r.event_slot_peak = sim.event_queue().slot_capacity();
    }
    if (journal) {
      causal.FlushOpenRequests();
      const bool finished = writer.Finish();
      DP_CHECK(finished);
      r.journaled = true;
      r.journal = writer.totals();
      r.journal_bytes = writer.bytes_written();
    }
  }
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  // deepplan-lint: allow(raw-entropy, wall-clock measurement; only feeds wall_ms, which the golden gate ignores)
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
  return r;
}

// Adds one point's deterministic fields (plus its wall reading under the
// ignored key) to a BenchReport point.
inline void FillScalingPoint(JsonObject& point, const ScalingPointResult& r) {
  point.Set("requests", static_cast<std::int64_t>(r.requests))
      .Set("completed", static_cast<std::int64_t>(r.completed))
      .Set("cold_starts", static_cast<std::int64_t>(r.cold_starts))
      .Set("goodput", r.goodput)
      .Set("p99_ms", r.p99_ms)
      .Set("mean_ms", r.mean_ms)
      .Set("sim_seconds", r.sim_seconds)
      .Set("events_scheduled", static_cast<std::int64_t>(r.events_scheduled))
      .Set("event_slot_peak", static_cast<std::int64_t>(r.event_slot_peak));
  // Only journaled runs get the sub-object, so the default curve's golden
  // bytes are untouched.
  if (r.journaled) {
    point.SetRaw(
        "journal",
        JsonObject()
            .Set("requests", static_cast<std::int64_t>(r.journal.requests))
            .Set("incomplete_requests",
                 static_cast<std::int64_t>(r.journal.incomplete_requests))
            .Set("nodes", static_cast<std::int64_t>(r.journal.nodes))
            .Set("edges", static_cast<std::int64_t>(r.journal.edges))
            .Set("chunks", static_cast<std::int64_t>(r.journal.chunks))
            .Set("bytes", static_cast<std::int64_t>(r.journal_bytes))
            .Render());
  }
  point.Set("wall_clock_ms", r.wall_ms);
}

// Deterministic serialization of a result list: every golden-gated field and
// nothing wall-dependent. scaling_test compares these strings byte-for-byte
// across DEEPPLAN_JOBS settings.
inline std::string DeterministicPointsJson(
    const std::vector<ScalingPointResult>& results) {
  JsonArray points;
  for (const ScalingPointResult& r : results) {
    JsonObject point;
    ScalingPointResult stripped = r;
    stripped.wall_ms = 0.0;
    FillScalingPoint(point, stripped);
    points.AddRaw(point.Render());
  }
  return points.Render();
}

}  // namespace bench
}  // namespace deepplan

#endif  // BENCH_SCALING_COMMON_H_
