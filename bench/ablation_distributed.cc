// Ablation (Section 2.3): merge partitions onto the primary GPU over NVLink
// (DeepPlan's choice) vs distributed execution that leaves partitions on
// their GPUs and ships activations across NVLink at every partition boundary.
// The paper rejects distributed execution because it "pays the cost of
// GPU-to-GPU communication while inferencing [and] can pose additional
// latency even for in-memory executions" — this bench quantifies both
// halves of that claim.
#include <iostream>

#include "bench/bench_util.h"
#include "src/engine/distributed.h"

namespace {

using namespace deepplan;

struct DistResult {
  Nanos cold;
  Nanos warm;
};

DistResult RunDistributed(const Topology& topology, const PerfModel& perf,
                          const Model& model) {
  const ModelProfile profile = bench::ExactProfile(perf, model);
  ExecutionPlan plan(model.name(), model.num_layers());
  TransmissionPlanner::AssignPartitions(profile, 2, &plan);
  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  DistributedEngine engine(&sim, &fabric, &perf);
  const std::vector<GpuId> gpus = {0, 2};
  InferenceResult result;
  engine.RunCold(model, plan, gpus, DistributedRunOptions{},
                 [&](const InferenceResult& r) { result = r; });
  sim.Run();
  return {result.latency, engine.WarmDuration(model, plan, gpus, {})};
}

}  // namespace

int main() {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());

  std::cout << "Ablation (Section 2.3): partition merging (PT) vs distributed "
               "execution, 2 GPUs\n\n";
  Table table({"model", "PT cold", "distributed cold", "merged warm",
               "distributed warm", "GPU-time/warm (merged)",
               "GPU-time/warm (dist)"});
  for (const Model& model : ModelZoo::PaperModels()) {
    const auto pt =
        bench::RunColdOnce(topology, perf, model, Strategy::kDeepPlanPt);
    const DistResult dist = RunDistributed(topology, perf, model);
    const Nanos merged_warm = perf.WarmLatency(model, 1);
    // A distributed inference reserves both participating GPUs for its whole
    // duration (activations ping-pong between them), so it consumes ~2x the
    // GPU-time per request — halving serving capacity.
    table.AddRow({bench::PrettyModelName(model.name()),
                  FormatDuration(pt.result.latency), FormatDuration(dist.cold),
                  FormatDuration(merged_warm), FormatDuration(dist.warm),
                  FormatDuration(merged_warm), FormatDuration(2 * dist.warm)});
  }
  table.Print(std::cout);
  std::cout << "\nDistributed execution roughly matches PT on the cold path "
               "(no weight forwarding), and the per-boundary latency tax is "
               "small at degree 2 — but every warm inference occupies BOTH "
               "GPUs, doubling GPU-time per request and adding cross-GPU "
               "interference, which is why the paper merges partitions.\n";
  return 0;
}
