// Table 4: interference from parallel-transmission — cold latency of
// PipeSwitch(1), PT+DHA with one instance provisioning (no interference), and
// PT+DHA with two GPUs provisioning simultaneously (each using the other as
// its secondary lane).
//
// Paper shape: PT+DHA(2) is slower than PT+DHA(1) but still beats PipeSwitch.
#include <iostream>

#include "bench/bench_util.h"

namespace {

using namespace deepplan;

double DualColdMs(const Topology& topology, const PerfModel& perf,
                  const Model& model) {
  const ModelProfile profile = bench::ExactProfile(perf, model);
  PipelineOptions pipeline;
  pipeline.nvlink = topology.nvlink();
  const ExecutionPlan plan =
      MakeStrategyPlan(Strategy::kDeepPlanPtDha, profile, 2, pipeline);
  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  InferenceResult a;
  InferenceResult b;
  // GPU 0 provisions via GPU 2 and vice versa — both cross-switch NVLink
  // pairs, loading simultaneously as in the paper's two-instance experiment.
  engine.RunCold(model, plan, 0, {2}, ColdRunOptions{},
                 [&](const InferenceResult& r) { a = r; });
  engine.RunCold(model, plan, 2, {0}, ColdRunOptions{},
                 [&](const InferenceResult& r) { b = r; });
  sim.Run();
  return (ToMillis(a.latency) + ToMillis(b.latency)) / 2.0;
}

}  // namespace

int main() {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());

  std::cout << "Table 4: inference execution time (ms) under "
               "parallel-transmission interference\n\n";
  Table table({"model", "PipeSwitch (1)", "PT+DHA (1)", "PT+DHA (2)",
               "interference", "still beats PipeSwitch"});
  for (const Model& model : ModelZoo::PaperModels()) {
    const double pipeswitch = ToMillis(
        bench::RunColdOnce(topology, perf, model, Strategy::kPipeSwitch)
            .result.latency);
    const double solo = ToMillis(
        bench::RunColdOnce(topology, perf, model, Strategy::kDeepPlanPtDha)
            .result.latency);
    const double dual = DualColdMs(topology, perf, model);
    // Built up mutably: `"+" + std::string` trips a GCC 12 -Wrestrict false
    // positive when inlined at -O2.
    std::string delta = Table::Num((dual / solo - 1.0) * 100.0, 1);
    delta.insert(delta.begin(), '+');
    delta += "%";
    table.AddRow({bench::PrettyModelName(model.name()), Table::Num(pipeswitch, 2),
                  Table::Num(solo, 2), Table::Num(dual, 2), delta,
                  dual < pipeswitch ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: e.g. BERT-Base 40.51 / 20.88 / 30.45 ms — "
               "interference slows PT+DHA but it still wins.\n";
  return 0;
}
