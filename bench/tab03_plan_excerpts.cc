// Table 3: excerpts of generated execution plans, comparing the "initial
// approach" (greedy per-layer load-vs-DHA comparison) against DeepPlan's
// pipeline-aware Algorithm 1: (a) a middle slice of ResNet-101, (b) the first
// five layers of GPT-2. O = load, X = direct-host-access.
//
// Paper shape: the two rows differ — Algorithm 1 keeps loading layers whose
// transfer pipelining already hides, and spends DHA where it shortens stalls.
#include <iostream>

#include "bench/bench_util.h"

namespace {

using namespace deepplan;

void PrintExcerpt(const char* title, const Model& model, const ModelProfile& profile,
                  const ExecutionPlan& greedy, const ExecutionPlan& tuned,
                  std::size_t first, std::size_t count) {
  std::cout << title << "\n";
  Table table({"layer #", "kind", "name", "Initial approach", "DeepPlan (DHA)"});
  for (std::size_t i = first; i < std::min(first + count, model.num_layers()); ++i) {
    if (!profile.layers[i].has_params()) {
      continue;  // parameter-free layers have no load/DHA decision
    }
    const auto mark = [](ExecMethod m) {
      return m == ExecMethod::kDirectHostAccess ? "X" : "O";
    };
    table.AddRow({std::to_string(i), LayerKindName(model.layer(i).kind),
                  model.layer(i).name, mark(greedy.method(i)),
                  mark(tuned.method(i))});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());

  std::cout << "Table 3: generated execution plans — greedy vs Algorithm 1 "
               "(O: load, X: direct-host-access)\n\n";

  {
    const Model model = ModelZoo::ResNet101();
    const ModelProfile profile = bench::ExactProfile(perf, model);
    Planner planner(&profile);
    const ExecutionPlan greedy = planner.GreedyDhaPlan();
    const ExecutionPlan tuned = planner.GeneratePlan();
    int diffs = 0;
    std::size_t first_diff = 160;  // default middle slice if plans coincide
    for (std::size_t i = 0; i < model.num_layers(); ++i) {
      if (greedy.method(i) != tuned.method(i)) {
        if (diffs == 0) {
          first_diff = i >= 4 ? i - 4 : 0;
        }
        ++diffs;
      }
    }
    PrintExcerpt("(a) ResNet-101: layers of a middle part", model, profile, greedy,
                 tuned, first_diff, /*count=*/14);
    std::cout << "decisions flipped by pipeline awareness across the model: "
              << diffs << "\n\n";
  }
  {
    const Model model = ModelZoo::Gpt2();
    const ModelProfile profile = bench::ExactProfile(perf, model);
    Planner planner(&profile);
    PrintExcerpt("(b) GPT-2: front layers", model, profile, planner.GreedyDhaPlan(),
                 planner.GeneratePlan(), /*first=*/0, /*count=*/8);
  }
  std::cout << "Paper reference: greedy and DeepPlan rows differ (e.g. "
               "DeepPlan loads a conv whose transfer pipelining hides).\n";
  return 0;
}
