// Figure 11: single cold inference (batch 1) — relative speedup of
// PipeSwitch, DeepPlan (DHA), DeepPlan (PT), and DeepPlan (PT+DHA) over
// Baseline, averaged over 100 runs, for all eight models on 4x V100.
//
// Paper shape: DHA beats PipeSwitch by 1.01-1.43x; PT+DHA reaches 1.94x
// (BERT-Base) and 2.21x (RoBERTa-Base) over PipeSwitch.
#include <iostream>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace deepplan;
  using namespace deepplan::bench;

  Flags flags;
  flags.DefineInt("runs", 100, "repetitions per (model, strategy)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  const int runs = static_cast<int>(flags.GetInt("runs"));

  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const SweepRunner runner;
  BenchReport report("fig11_single_inference", runner.jobs());
  report.config().Set("topology", topology.name()).Set("runs", runs).Set("batch", 1);

  std::cout << "Figure 11: cold single-inference latency and speedup vs "
               "Baseline (batch 1, " << runs << " runs)\n\n";
  Table table({"model", "Baseline", "PipeSwitch", "DHA", "PT", "PT+DHA",
               "PipeSwitch x", "DHA x", "PT x", "PT+DHA x", "PT+DHA/PipeSwitch"});
  for (const Model& model : ModelZoo::PaperModels()) {
    double ms[5];
    int i = 0;
    for (const Strategy s : AllStrategies()) {
      ms[i] = MeanColdLatencyMs(topology, perf, model, s, runs, 1, runner);
      report.AddPoint()
          .Set("model", model.name())
          .Set("strategy", StrategyName(s))
          .Set("mean_cold_ms", ms[i]);
      ++i;
    }
    table.AddRow({PrettyModelName(model.name()), Table::Num(ms[0], 2),
                  Table::Num(ms[1], 2), Table::Num(ms[2], 2), Table::Num(ms[3], 2),
                  Table::Num(ms[4], 2), Table::Num(ms[0] / ms[1], 2) + "x",
                  Table::Num(ms[0] / ms[2], 2) + "x",
                  Table::Num(ms[0] / ms[3], 2) + "x",
                  Table::Num(ms[0] / ms[4], 2) + "x",
                  Table::Num(ms[1] / ms[4], 2) + "x"});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference (PT+DHA over PipeSwitch): BERT-Base 1.94x, "
               "RoBERTa-Base 2.21x, overall 1.18-2.21x.\n";
  report.Write(&std::cerr);
  return 0;
}
