// Figure 15: replaying a Microsoft-Azure-Functions-like trace (scaled to the
// 4-GPU server, 150 rps) against BERT-Base : RoBERTa-Base : GPT-2 instances
// at a 4:4:1 ratio; per-minute offered load, 99% latency, goodput (SLO
// 100 ms), and cold starts, for PipeSwitch, DeepPlan (DHA), and (PT+DHA).
//
// Paper shape: DeepPlan variants sustain 98-99% goodput where PipeSwitch dips
// to ~81-98%; DeepPlan p99 stays near/below 100 ms vs PipeSwitch >150 ms.
// (The paper replays 3 hours; the default here replays a scaled-down slice —
// raise --minutes to lengthen it.)
//
// The three strategies replay the same (immutable) trace on independent
// servers, so they fan out over DEEPPLAN_JOBS threads; output renders in
// strategy order and is byte-identical for any thread count. With
// --trace_out=<path> (default: $DEEPPLAN_TRACE), each replay records into its
// own TraceRecorder/MetricsRegistry; the recorders are stitched in strategy
// order into one Perfetto-loadable Chrome trace, and each strategy's metrics
// snapshot lands in its BENCH point. With --profile_out=<path> (default:
// $DEEPPLAN_PROFILE) each replay additionally records a causal journal; the
// stitched journal is written to <path> and the critical-path attribution
// report prints after the tables. With --whatif_out=<path> (default:
// $DEEPPLAN_WHATIF) the stitched journal is replayed under the default
// virtual-hardware experiments (src/obs/whatif) and the
// {"whatif_report":...} JSON lands at <path>; journaling turns on even
// without --profile_out. With --journal_out=<path> the stitched journal is
// additionally written in the chunked binary DPJL format
// (src/obs/journal_stream.h) — the same graph, exactly convertible to/from
// the JSON journal with tools/journal_convert. With --selfprof_out=<path>
// (default: $DEEPPLAN_SELFPROF) each replay carries a host self-profiling
// lane (src/obs/selfprof.h) and the per-strategy wall-clock attribution
// report lands at <path> (inspect with tools/selfprof_report).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <utility>

#include "bench/bench_util.h"
#include "src/util/logging.h"

namespace {

using namespace deepplan;

struct Outcome {
  ServingMetrics metrics;
  MinuteSeries series;
  TraceRecorder recorder{false};
  MetricsRegistry registry;
  CausalGraph causal{false};
  // Host wall-clock attribution for this strategy's replay; merged into the
  // --selfprof_out report in strategy order (never feeds the BENCH point).
  selfprof::SelfProfiler selfprof;
};

Outcome Replay(Strategy strategy, const Trace& trace, int instances, bool tracing,
               bool journaling, bool profiling_host) {
  Outcome out;
  {
    // Scope: the lane's root "total" closes when this block exits, before
    // the outcome is returned (reports require closed lanes).
    selfprof::InstallLane profile(profiling_host ? &out.selfprof : nullptr);
    const Topology topology = Topology::P3_8xlarge();
    const PerfModel perf(topology.gpu(), topology.pcie());
    ServerOptions options;
    options.strategy = strategy;
    options.slo = Millis(100);
    Server server(topology, perf, options);
    const int bert = server.RegisterModelType(ModelZoo::BertBase());
    const int roberta = server.RegisterModelType(ModelZoo::RobertaBase());
    const int gpt2 = server.RegisterModelType(ModelZoo::Gpt2());
    // 4:4:1 instance mix (Section 5.3.2).
    const int unit = instances / 9;
    server.AddInstances(bert, 4 * unit);
    server.AddInstances(roberta, 4 * unit);
    server.AddInstances(gpt2, instances - 8 * unit);
    if (tracing) {
      out.recorder = TraceRecorder(/*enabled=*/true);
      server.set_telemetry(&out.recorder, &out.registry,
                           out.recorder.RegisterProcess(StrategyName(strategy)));
    }
    if (journaling) {
      out.causal = CausalGraph(/*enabled=*/true);
      server.set_causal(&out.causal,
                        out.causal.RegisterProcess(StrategyName(strategy)));
    }
    out.metrics = server.Run(trace);
    out.series = out.metrics.PerMinute(Millis(100));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("minutes", 6, "trace length to replay (paper: 180)");
  // The paper stresses its server at 150 rps; this simulation's model mix has
  // a slightly heavier mean warm latency (GPT-2 at seq 1024), so 120 rps is
  // the equivalent stress point. Pass --rate=150 for the paper's raw number.
  flags.DefineDouble("rate", 120.0, "offered load (requests/second)");
  // 135 instances exceed the 4-GPU capacity (PipeSwitch holds ~93, DeepPlan
  // ~115 of this mix), so the replay exercises eviction and cold starts as in
  // the paper's over-committed deployment.
  flags.DefineInt("instances", 135, "total model instances (4:4:1 mix)");
  flags.DefineString("trace", "", "optional MAF-derived CSV to replay instead");
  const char* trace_env = std::getenv("DEEPPLAN_TRACE");
  flags.DefineString("trace_out", trace_env != nullptr ? trace_env : "",
                     "write a Chrome/Perfetto trace JSON here (default: "
                     "$DEEPPLAN_TRACE; empty disables telemetry)");
  const char* profile_env = std::getenv("DEEPPLAN_PROFILE");
  flags.DefineString("profile_out", profile_env != nullptr ? profile_env : "",
                     "write the causal journal JSON here (default: "
                     "$DEEPPLAN_PROFILE; empty disables profiling)");
  const char* whatif_env = std::getenv("DEEPPLAN_WHATIF");
  flags.DefineString("whatif_out", whatif_env != nullptr ? whatif_env : "",
                     "write the what-if report JSON here (default: "
                     "$DEEPPLAN_WHATIF; empty disables what-if replay)");
  flags.DefineString("journal_out", "",
                     "additionally write the stitched causal journal in the "
                     "binary DPJL format here (empty disables)");
  const char* selfprof_env = std::getenv("DEEPPLAN_SELFPROF");
  flags.DefineString("selfprof_out", selfprof_env != nullptr ? selfprof_env : "",
                     "write a host self-profiling report (one wall-clock "
                     "attribution lane per strategy) here (default: "
                     "$DEEPPLAN_SELFPROF; empty disables)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  const int instances = static_cast<int>(flags.GetInt("instances"));
  const std::string trace_out = flags.GetString("trace_out");
  const bool tracing = !trace_out.empty();
  const std::string profile_out = flags.GetString("profile_out");
  const bool profiling = !profile_out.empty();
  const std::string whatif_out = flags.GetString("whatif_out");
  const std::string journal_out = flags.GetString("journal_out");
  const bool journaling =
      profiling || !whatif_out.empty() || !journal_out.empty();
  const std::string selfprof_out = flags.GetString("selfprof_out");

  Trace trace;
  if (!flags.GetString("trace").empty()) {
    // Line-at-a-time ingest: MAF CSVs are large, and a malformed or
    // truncated file should fail with the offending line, not load short.
    std::string trace_error;
    auto loaded = LoadAzureTraceCsv(flags.GetString("trace"), &trace_error);
    if (!loaded.has_value()) {
      std::cerr << "cannot load trace: " << trace_error << "\n";
      return 1;
    }
    trace = loaded->ScaledToRate(flags.GetDouble("rate"));
  } else {
    AzureTraceOptions w;
    w.num_instances = instances;
    w.duration = Seconds(60.0 * static_cast<double>(flags.GetInt("minutes")));
    w.target_rate_per_sec = flags.GetDouble("rate");
    trace = GenerateAzureTrace(w);
  }

  std::cout << "Figure 15: MAF-like trace replay (" << trace.size() << " requests, "
            << Table::Num(ToSeconds(trace.duration()) / 60.0, 1) << " min, mean "
            << Table::Num(trace.MeanRate(), 1) << " rps), "
            << "BERT:RoBERTa:GPT-2 = 4:4:1, SLO 100 ms\n\n";

  // Offered load per minute (top panel).
  {
    Table table({"minute", "offered load (req)"});
    const auto counts = trace.PerMinuteCounts();
    for (std::size_t minute = 0; minute < counts.size(); ++minute) {
      table.AddRow({std::to_string(minute), std::to_string(counts[minute])});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  const std::vector<Strategy> strategies = {
      Strategy::kPipeSwitch, Strategy::kDeepPlanDha, Strategy::kDeepPlanPtDha};
  const SweepRunner runner;
  bench::BenchReport report("fig15_azure_trace", runner.jobs());
  report.config()
      .Set("minutes", static_cast<std::int64_t>(flags.GetInt("minutes")))
      .Set("rate_per_sec", flags.GetDouble("rate"))
      .Set("instances", instances)
      .Set("requests", static_cast<std::int64_t>(trace.size()))
      .Set("slo_ms", 100.0);

  std::vector<Outcome> outcomes =
      runner.Map(static_cast<int>(strategies.size()), [&](int i) {
        return Replay(strategies[static_cast<std::size_t>(i)], trace, instances,
                      tracing, journaling, !selfprof_out.empty());
      });

  for (std::size_t s = 0; s < strategies.size(); ++s) {
    const Strategy strategy = strategies[s];
    const Outcome& out = outcomes[s];
    std::cout << StrategyName(strategy) << ": overall p99 "
              << Table::Num(out.metrics.LatencyPercentileMs(99), 1) << " ms, goodput "
              << Table::Pct(out.metrics.Goodput(Millis(100))) << ", cold-starts "
              << out.metrics.ColdStartCount() << " (evictions "
              << out.metrics.EvictionCount() << ")\n";
    // Where the latency goes (mean / p99 per component; the components tile
    // each request exactly: queue + cold-start + exec == total).
    {
      const LatencyBreakdown b = out.metrics.Breakdown();
      Table breakdown({"component", "mean (ms)", "p99 (ms)"});
      breakdown.AddRow({"queue", Table::Num(b.mean_queue_ms, 2),
                        Table::Num(b.p99_queue_ms, 2)});
      breakdown.AddRow({"cold-start", Table::Num(b.mean_cold_ms, 2),
                        Table::Num(b.p99_cold_ms, 2)});
      breakdown.AddRow({"exec", Table::Num(b.mean_exec_ms, 2),
                        Table::Num(b.p99_exec_ms, 2)});
      breakdown.AddRow({"total", Table::Num(b.mean_total_ms, 2),
                        Table::Num(b.p99_total_ms, 2)});
      breakdown.Print(std::cout);
      std::cout << "\n";
    }
    Table table({"minute", "p99 (ms)", "goodput", "cold starts"});
    JsonArray minutes;
    for (std::size_t minute = 0; minute < out.series.requests.size(); ++minute) {
      table.AddRow({std::to_string(minute), Table::Num(out.series.p99_ms[minute], 1),
                    Table::Pct(out.series.goodput[minute]),
                    std::to_string(out.series.cold_starts[minute])});
      minutes.AddRaw(JsonObject()
                         .Set("minute", static_cast<std::int64_t>(minute))
                         .Set("p99_ms", out.series.p99_ms[minute])
                         .Set("goodput", out.series.goodput[minute])
                         .Set("cold_starts", static_cast<std::int64_t>(
                                                 out.series.cold_starts[minute]))
                         .Render());
    }
    table.Print(std::cout);
    std::cout << "\n";
    JsonObject& point = report.AddPoint();
    point.Set("strategy", StrategyName(strategy))
        .Set("p99_ms", out.metrics.LatencyPercentileMs(99))
        .Set("goodput", out.metrics.Goodput(Millis(100)))
        .Set("cold_starts", static_cast<std::int64_t>(out.metrics.ColdStartCount()))
        .SetRaw("minutes", minutes.Render());
    if (tracing) {
      // Only enriched when telemetry is on so the disabled report stays
      // byte-identical to pre-telemetry behaviour.
      point.SetRaw("metrics", out.registry.ToJsonObject().Render());
    }
  }
  std::cout << "Paper reference: DeepPlan variants hold 98-99% goodput; "
               "PipeSwitch drops to ~81% in loaded minutes.\n";
  if (journaling) {
    // Stitch the per-strategy graphs in strategy order (deterministic for
    // any DEEPPLAN_JOBS).
    CausalGraph merged(/*enabled=*/true);
    for (Outcome& out : outcomes) {
      merged.Adopt(std::move(out.causal));
    }
    if (profiling) {
      std::cout << "\n";
      PrintProfileReport(BuildProfileReport(merged), std::cout);
      if (merged.WriteTo(profile_out)) {
        std::cerr << "wrote profile journal " << profile_out << " ("
                  << merged.nodes().size() << " nodes)\n";
      } else {
        std::cerr << "cannot write profile journal " << profile_out << "\n";
        return 1;
      }
    }
    if (!journal_out.empty()) {
      std::string error;
      if (!WriteGraphToJournal(merged, journal_out, {}, nullptr, &error)) {
        std::cerr << "cannot write binary journal: " << error << "\n";
        return 1;
      }
      std::cerr << "wrote binary journal " << journal_out << " ("
                << merged.nodes().size() << " nodes)\n";
    }
    if (!whatif_out.empty()) {
      const WhatIfReport whatif =
          BuildWhatIfReport(merged, DefaultWhatIfExperiments());
      // Identity self-check: replay must reproduce the recorded latencies
      // before the perturbed predictions mean anything.
      DP_CHECK(whatif.baseline_matches_journal);
      std::cout << "\n";
      PrintWhatIfReport(whatif, std::cout);
      std::ofstream out(whatif_out, std::ios::binary);
      if (out) {
        out << WhatIfReportJson(whatif) << "\n";
      }
      if (!out) {
        std::cerr << "cannot write what-if report " << whatif_out << "\n";
        return 1;
      }
      std::cerr << "wrote what-if report " << whatif_out << "\n";
    }
  }
  report.Write(&std::cerr);
  if (tracing) {
    TraceRecorder merged(/*enabled=*/true);
    for (Outcome& out : outcomes) {
      merged.Adopt(std::move(out.recorder));
    }
    if (merged.WriteTo(trace_out)) {
      std::cerr << "wrote trace " << trace_out << " (" << merged.size()
                << " events)\n";
    } else {
      std::cerr << "cannot write trace " << trace_out << "\n";
      return 1;
    }
  }
  if (!selfprof_out.empty()) {
    // Lanes in strategy order (the sweep aggregates in task-index order).
    std::vector<selfprof::LaneView> lanes;
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      lanes.push_back({StrategyName(strategies[s]), &outcomes[s].selfprof});
    }
    if (!selfprof::WriteReport(selfprof_out,
                               selfprof::ReportJson("fig15_azure_trace",
                                                    lanes))) {
      std::cerr << "cannot write selfprof report " << selfprof_out << "\n";
      return 1;
    }
    std::cerr << "selfprof report: " << selfprof_out << "\n";
  }
  return 0;
}
