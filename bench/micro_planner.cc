// google-benchmark microbenchmarks for DeepPlan's offline path: profiling,
// Algorithm 1 plan generation, partitioning, and plan serialization. These
// bound the one-time per-model cost of the planner itself (not the simulated
// profiling time of Table 5 — the real CPU time of the algorithms).
#include <benchmark/benchmark.h>

#include "src/deepplan.h"

namespace deepplan {
namespace {

const Model& ModelFor(int index) {
  static const std::vector<Model> models = ModelZoo::PaperModels();
  return models[static_cast<std::size_t>(index) % models.size()];
}

ModelProfile ProfileFor(int index) {
  static PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;
  return Profiler(&perf, opts).Profile(ModelFor(index));
}

void BM_Profile(benchmark::State& state) {
  const Model& model = ModelFor(static_cast<int>(state.range(0)));
  PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  Profiler profiler(&perf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(profiler.Profile(model));
  }
  state.SetLabel(model.name());
}
BENCHMARK(BM_Profile)->DenseRange(0, 7);

void BM_GeneratePlanDha(benchmark::State& state) {
  const ModelProfile profile = ProfileFor(static_cast<int>(state.range(0)));
  Planner planner(&profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.GeneratePlan());
  }
  state.SetLabel(profile.model_name);
}
BENCHMARK(BM_GeneratePlanDha)->DenseRange(0, 7);

void BM_GeneratePlanPtDha(benchmark::State& state) {
  const ModelProfile profile = ProfileFor(static_cast<int>(state.range(0)));
  Planner planner(&profile);
  PlannerOptions options;
  options.num_partitions = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.GeneratePlan(options));
  }
  state.SetLabel(profile.model_name);
}
BENCHMARK(BM_GeneratePlanPtDha)->DenseRange(0, 7);

void BM_SimulatePipeline(benchmark::State& state) {
  const ModelProfile profile = ProfileFor(static_cast<int>(state.range(0)));
  const ExecutionPlan plan(profile.model_name, profile.num_layers());
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulatePipeline(profile, plan));
  }
  state.SetLabel(profile.model_name);
}
BENCHMARK(BM_SimulatePipeline)->DenseRange(0, 7);

void BM_PlanSerializeParse(benchmark::State& state) {
  const ModelProfile profile = ProfileFor(2);  // bert_base
  const ExecutionPlan plan = Planner(&profile).GeneratePlan();
  for (auto _ : state) {
    const std::string text = plan.Serialize();
    benchmark::DoNotOptimize(ExecutionPlan::Parse(text));
  }
}
BENCHMARK(BM_PlanSerializeParse);

}  // namespace
}  // namespace deepplan
