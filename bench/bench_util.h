// Shared helpers for the figure/table reproduction benches: single-run and
// repeated cold-start measurement on a chosen topology, with exact or noisy
// profiling. Every bench prints the paper's rows through util::Table and can
// additionally emit a machine-readable BENCH_<name>.json via BenchReport.
//
// Repetition loops run on SweepRunner: tasks fan out over DEEPPLAN_JOBS
// worker threads, results aggregate in task order, so bench output is
// byte-identical for any thread count (DEEPPLAN_JOBS=1 runs inline).
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "src/deepplan.h"

namespace deepplan {
namespace bench {

struct ColdMeasurement {
  InferenceResult result;
  ExecutionPlan plan;
};

// Profiles `model` on `perf` with measurement noise disabled (benches report
// the model's deterministic ground truth; the profiler's noise handling is
// exercised in tests and Table 5).
inline ModelProfile ExactProfile(const PerfModel& perf, const Model& model,
                                 int batch = 1) {
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;
  opts.batch = batch;
  return Profiler(&perf, opts).Profile(model);
}

// Single source of the degree/pipeline/plan derivation every cold run needs.
// Returns the strategy's plan for `profile`; the transmission degree used is
// written to `degree_out` when non-null.
inline ExecutionPlan PlanFor(const Topology& topology, Strategy strategy,
                             const ModelProfile& profile, int* degree_out = nullptr) {
  const int degree = StrategyDegree(strategy, topology, /*primary=*/0);
  PipelineOptions pipeline;
  pipeline.nvlink = topology.nvlink();
  if (degree_out != nullptr) {
    *degree_out = degree;
  }
  return MakeStrategyPlan(strategy, profile, degree, pipeline);
}

// Runs one cold start of `strategy` for `model` using a pre-computed profile,
// on a fresh simulator/fabric. Self-contained and thread-safe: every call
// builds its own Simulator/ServerFabric/Engine, so SweepRunner tasks can call
// it concurrently. When `causal` points at an enabled graph the run records
// its happens-before DAG there as one cold request under `causal_process`
// (critical-path profiling, --profile_out).
inline ColdMeasurement RunColdWithProfile(const Topology& topology,
                                          const PerfModel& perf, const Model& model,
                                          Strategy strategy,
                                          const ModelProfile& profile,
                                          int batch = 1,
                                          CausalGraph* causal = nullptr,
                                          int causal_process = 0,
                                          int causal_instance = 0) {
  int degree = 0;
  ColdMeasurement m{{}, PlanFor(topology, strategy, profile, &degree)};
  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  ColdRunOptions options = MakeColdRunOptions(strategy, batch);
  int request = -1;
  if (causal != nullptr && causal->enabled()) {
    engine.set_causal(causal);
    request = causal->BeginRequest(causal_process, causal_instance, sim.now());
    causal->MarkCold(request);
    options.causal_request = request;
    options.causal_root = causal->arrival_node(request);
  }
  engine.RunCold(model, m.plan, /*primary=*/0,
                 TransmissionPlanner::ChooseSecondaries(topology, 0, degree),
                 options,
                 [&m, &sim, causal, request](const InferenceResult& r) {
                   m.result = r;
                   if (request >= 0) {
                     causal->EndRequest(request, sim.now(), r.causal_terminal);
                   }
                 });
  sim.Run();
  return m;
}

// Runs one cold start of `strategy` for `model` with an exact (noise-free)
// profile on a fresh simulator/fabric.
inline ColdMeasurement RunColdOnce(const Topology& topology, const PerfModel& perf,
                                   const Model& model, Strategy strategy,
                                   int batch = 1) {
  return RunColdWithProfile(topology, perf, model, strategy,
                            ExactProfile(perf, model, batch), batch);
}

// Mean cold latency over `runs` independent repetitions with profiling noise
// re-sampled per run (mirrors the paper's "averaged on 100 runs"). Run r is a
// pure function of its index (profiler seed 1000 + r), so the repetitions fan
// out over `runner`'s threads and the mean — accumulated in run order after
// the sweep — is byte-identical for any DEEPPLAN_JOBS.
inline double MeanColdLatencyMs(const Topology& topology, const PerfModel& perf,
                                const Model& model, Strategy strategy, int runs,
                                int batch = 1,
                                const SweepRunner& runner = SweepRunner()) {
  const std::vector<double> latencies_ms =
      runner.Map(runs, [&](int r) {
        ProfilerOptions opts;
        opts.seed = 1000 + static_cast<std::uint64_t>(r);
        opts.batch = batch;
        const ModelProfile profile = Profiler(&perf, opts).Profile(model);
        return ToMillis(
            RunColdWithProfile(topology, perf, model, strategy, profile, batch)
                .result.latency);
      });
  StreamingStats stats;
  for (const double ms : latencies_ms) {
    stats.Add(ms);
  }
  return stats.mean();
}

inline std::string PrettyModelName(const std::string& zoo_name) {
  if (zoo_name == "resnet50") return "ResNet-50";
  if (zoo_name == "resnet101") return "ResNet-101";
  if (zoo_name == "bert_base") return "BERT-Base";
  if (zoo_name == "bert_large") return "BERT-Large";
  if (zoo_name == "roberta_base") return "RoBERTa-Base";
  if (zoo_name == "roberta_large") return "RoBERTa-Large";
  if (zoo_name == "gpt2") return "GPT-2";
  if (zoo_name == "gpt2_medium") return "GPT-2 Medium";
  return zoo_name;
}

// Machine-readable bench output: config key/values, one JsonObject per data
// point, plus the worker count and wall-clock of the run. Write() renders
//   {"bench":<name>,"jobs":N,"config":{...},"points":[...],"wall_clock_ms":T}
// to BENCH_<name>.json in $DEEPPLAN_BENCH_DIR (default: current directory).
// Everything except wall_clock_ms is deterministic for a given config and
// independent of DEEPPLAN_JOBS; the wall clock is what records the sweep
// speedup across thread counts.
class BenchReport {
 public:
  explicit BenchReport(std::string name, int jobs = DefaultSweepJobs())
      : name_(std::move(name)),
        jobs_(jobs),
        // deepplan-lint: allow(raw-entropy, wall-clock bench timing; only feeds wall_clock_ms, which the golden gate ignores)
        start_(std::chrono::steady_clock::now()) {}

  JsonObject& config() { return config_; }

  // Adds a data point; references stay valid as points accumulate.
  JsonObject& AddPoint() {
    points_.emplace_back();
    return points_.back();
  }

  std::string ToJson() const {
    DP_SELFPROF_SCOPE(kReportRender);
    const double wall_ms =
        // deepplan-lint: allow(raw-entropy, wall-clock bench timing; only feeds wall_clock_ms, which the golden gate ignores)
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  start_)
            .count();
    JsonArray points;
    for (const JsonObject& p : points_) {
      points.AddRaw(p.Render());
    }
    JsonObject doc;
    doc.Set("bench", name_)
        .Set("jobs", jobs_)
        .SetRaw("config", config_.Render())
        .SetRaw("points", points.Render())
        .Set("wall_clock_ms", wall_ms);
    return doc.Render();
  }

  // Writes BENCH_<name>.json; returns the path, or "" on I/O failure. Notes
  // the destination on `log` (stderr by default) so table output on stdout
  // stays byte-identical across thread counts.
  std::string Write(std::ostream* log = nullptr) const {
    const char* dir = std::getenv("DEEPPLAN_BENCH_DIR");
    std::string path = (dir != nullptr && *dir != '\0') ? std::string(dir) : ".";
    path += "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (out) {
      out << ToJson() << "\n";
    }
    if (!out) {
      if (log != nullptr) {
        *log << "cannot write " << path << "\n";
      }
      return "";
    }
    if (log != nullptr) {
      *log << "wrote " << path << "\n";
    }
    return path;
  }

 private:
  std::string name_;
  int jobs_;
  // deepplan-lint: allow(raw-entropy, wall-clock bench timing; only feeds wall_clock_ms, which the golden gate ignores)
  std::chrono::steady_clock::time_point start_;
  JsonObject config_;
  std::deque<JsonObject> points_;  // deque: AddPoint() references stay valid
};

}  // namespace bench
}  // namespace deepplan

#endif  // BENCH_BENCH_UTIL_H_
