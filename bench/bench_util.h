// Shared helpers for the figure/table reproduction benches: single-run and
// repeated cold-start measurement on a chosen topology, with exact or noisy
// profiling. Every bench prints the paper's rows through util::Table.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "src/deepplan.h"

namespace deepplan {
namespace bench {

struct ColdMeasurement {
  InferenceResult result;
  ExecutionPlan plan;
};

// Profiles `model` on `perf` with measurement noise disabled (benches report
// the model's deterministic ground truth; the profiler's noise handling is
// exercised in tests and Table 5).
inline ModelProfile ExactProfile(const PerfModel& perf, const Model& model,
                                 int batch = 1) {
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;
  opts.batch = batch;
  return Profiler(&perf, opts).Profile(model);
}

// Runs one cold start of `strategy` for `model` on a fresh simulator/fabric.
inline ColdMeasurement RunColdOnce(const Topology& topology, const PerfModel& perf,
                                   const Model& model, Strategy strategy,
                                   int batch = 1) {
  const ModelProfile profile = ExactProfile(perf, model, batch);
  const int degree = StrategyDegree(strategy, topology, /*primary=*/0);
  PipelineOptions pipeline;
  pipeline.nvlink = topology.nvlink();
  ColdMeasurement m{{}, MakeStrategyPlan(strategy, profile, degree, pipeline)};
  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  engine.RunCold(model, m.plan, /*primary=*/0,
                 TransmissionPlanner::ChooseSecondaries(topology, 0, degree),
                 MakeColdRunOptions(strategy, batch),
                 [&m](const InferenceResult& r) { m.result = r; });
  sim.Run();
  return m;
}

// Mean cold latency over `runs` independent repetitions with profiling noise
// re-sampled per run (mirrors the paper's "averaged on 100 runs").
inline double MeanColdLatencyMs(const Topology& topology, const PerfModel& perf,
                                const Model& model, Strategy strategy, int runs,
                                int batch = 1) {
  StreamingStats stats;
  for (int r = 0; r < runs; ++r) {
    ProfilerOptions opts;
    opts.seed = 1000 + static_cast<std::uint64_t>(r);
    opts.batch = batch;
    const ModelProfile profile = Profiler(&perf, opts).Profile(model);
    const int degree = StrategyDegree(strategy, topology, 0);
    PipelineOptions pipeline;
    pipeline.nvlink = topology.nvlink();
    const ExecutionPlan plan = MakeStrategyPlan(strategy, profile, degree, pipeline);
    Simulator sim;
    ServerFabric fabric(&sim, &topology);
    Engine engine(&sim, &fabric, &perf);
    InferenceResult result;
    engine.RunCold(model, plan, 0,
                   TransmissionPlanner::ChooseSecondaries(topology, 0, degree),
                   MakeColdRunOptions(strategy, batch),
                   [&](const InferenceResult& r) { result = r; });
    sim.Run();
    stats.Add(ToMillis(result.latency));
  }
  return stats.mean();
}

inline std::string PrettyModelName(const std::string& zoo_name) {
  if (zoo_name == "resnet50") return "ResNet-50";
  if (zoo_name == "resnet101") return "ResNet-101";
  if (zoo_name == "bert_base") return "BERT-Base";
  if (zoo_name == "bert_large") return "BERT-Large";
  if (zoo_name == "roberta_base") return "RoBERTa-Base";
  if (zoo_name == "roberta_large") return "RoBERTa-Large";
  if (zoo_name == "gpt2") return "GPT-2";
  if (zoo_name == "gpt2_medium") return "GPT-2 Medium";
  return zoo_name;
}

}  // namespace bench
}  // namespace deepplan

#endif  // BENCH_BENCH_UTIL_H_
