// Table 1: number of PCIe read events (64 B payloads, PCIeRdCur counter
// methodology) for loading a layer vs executing it with direct-host-access,
// for the Figure 5 layers.
//
// Paper reference values: embedding medium 24,580/18,267; embedding large
// 1,465,112/18,459; conv medium 36,869/65,891; conv large 147,465/273,487;
// FC small 36,920/446,276; FC large 147,660/1,765,787.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace deepplan;
  const PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  const PcieEventCounter counter(&perf);

  std::cout << "Table 1: PCIe read events, load vs direct-host-access "
               "(batch 1)\n\n";
  Table table({"layer", "size", "Load events", "DHA events", "DHA/Load"});

  const std::vector<std::pair<std::string, Layer>> layers = {
      {"(a) Embedding Medium", Layer::Embedding("pos", 512, 768, 384)},
      {"(a) Embedding Large", Layer::Embedding("word", 30522, 768, 384)},
      {"(b) Conv Medium", Layer::Conv2d("c2", 256, 256, 3, 14, 14)},
      {"(b) Conv Large", Layer::Conv2d("c3", 512, 512, 3, 7, 7)},
      {"(c) FC Small", Layer::Linear("qkv", 768, 768, 384, false)},
      {"(c) FC Large", Layer::Linear("ffn", 768, 3072, 384, false)},
  };
  for (const auto& [label, layer] : layers) {
    const auto load = counter.LoadEvents(layer);
    const auto dha = counter.DhaEvents(layer);
    table.AddRow({label, FormatBytes(layer.param_bytes), std::to_string(load),
                  std::to_string(dha),
                  Table::Num(static_cast<double>(dha) / static_cast<double>(load), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference ratios: embeddings <<1 (large), conv ~1.8, "
               "FC ~12.\n";
  return 0;
}
