// Ablation: eviction policy under memory churn. The paper evicts the least
// recently used instance (Section 5.3); this bench compares LRU against FIFO
// and Random victims at an over-committed concurrency on the Figure 13 setup.
#include <iostream>

#include "bench/bench_util.h"

namespace {

using namespace deepplan;

struct Row {
  double p99;
  double goodput;
  double cold_rate;
};

Row RunPolicy(EvictionPolicy policy, int concurrency) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  ServerOptions options;
  options.strategy = Strategy::kDeepPlanPtDha;
  options.eviction_policy = policy;
  Server server(topology, perf, options);
  const int type = server.RegisterModelType(ModelZoo::BertBase());
  server.AddInstances(type, concurrency);
  // Skewed, bursty arrivals (MAF-like): eviction policy only matters when
  // popularity has temporal locality — uniform Poisson would make every
  // victim equally good.
  AzureTraceOptions w;
  w.target_rate_per_sec = 100;
  w.num_instances = concurrency;
  w.duration = Seconds(10);
  w.seed = 11;
  const ServingMetrics m = server.Run(GenerateAzureTrace(w));
  return {m.LatencyPercentileMs(99), m.Goodput(Millis(100)), m.ColdStartRate()};
}

}  // namespace

int main() {
  std::cout << "Ablation: eviction policy (DeepPlan PT+DHA, BERT-Base, "
               "100 rps, SLO 100 ms)\n\n";
  Table table({"instances", "policy", "p99 (ms)", "goodput", "cold-start rate"});
  for (const int concurrency : {140, 160, 180}) {
    for (const EvictionPolicy policy :
         {EvictionPolicy::kLru, EvictionPolicy::kFifo, EvictionPolicy::kRandom}) {
      const Row row = RunPolicy(policy, concurrency);
      table.AddRow({std::to_string(concurrency), EvictionPolicyName(policy),
                    Table::Num(row.p99, 1), Table::Pct(row.goodput),
                    Table::Pct(row.cold_rate)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nUnder the skewed MAF-like workload LRU keeps the popular "
               "instances resident (lowest cold-start rate at every "
               "concurrency); FIFO and Random evict still-hot instances.\n";
  return 0;
}
