// Sim-core scaling curve: simulated requests/second versus trace size for
// the million-request core (DESIGN.md §12). Each point replays a count-exact
// synthetic BERT-Base workload (44k / 200k / 1M requests by default) on its
// own server+simulator and reports serving metrics plus event-queue
// introspection; points fan out over DEEPPLAN_JOBS threads and aggregate in
// point order, so BENCH_scaling.json is byte-identical for any thread count
// (wall-clock fields excepted — tools/bench_diff ignores "wall_clock_ms" at
// any depth, which is how the checked-in bench/golden baseline gates the
// deterministic surface while throughput varies by host).
//
// The headline column is simulated requests per wall-second: the old
// heap-backed queue and per-run allocation churn degraded superlinearly with
// trace length (id-indexed bookkeeping never shrank), so this curve is where
// the calendar queue + arena work shows up — and the 1M point completing in
// bounded memory is itself part of the claim (tests/scaling_test.cc).
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/scaling_common.h"

int main(int argc, char** argv) {
  using namespace deepplan;
  Flags flags;
  flags.DefineInt("max_requests", 1000000,
                  "drop curve points larger than this (CI legs trim the 1M "
                  "point; the golden gate only sees the default full curve)");
  flags.DefineDouble("rate", 120.0, "offered load (requests/second)");
  flags.DefineInt("instances", 135, "BERT-Base instances on the 4-GPU server");
  flags.DefineString(
      "journal_out", "",
      "stream a binary causal journal per point to <journal_out>.<requests> "
      "(bounded-memory recording; adds a \"journal\" block to each point)");
  const char* selfprof_env = std::getenv("DEEPPLAN_SELFPROF");
  flags.DefineString(
      "selfprof_out", selfprof_env != nullptr ? selfprof_env : "",
      "write a host self-profiling report (per-point wall-clock attribution "
      "lanes + aggregate) to this path; profiling is enabled iff non-empty "
      "(default: $DEEPPLAN_SELFPROF)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  const auto max_requests =
      static_cast<std::size_t>(flags.GetInt("max_requests"));
  const double rate = flags.GetDouble("rate");
  const int instances = static_cast<int>(flags.GetInt("instances"));
  const std::string journal_out = flags.GetString("journal_out");
  const std::string selfprof_out = flags.GetString("selfprof_out");

  std::vector<std::size_t> sizes;
  for (const std::size_t n : {std::size_t{44000}, std::size_t{200000},
                              std::size_t{1000000}}) {
    if (n <= max_requests) {
      sizes.push_back(n);
    }
  }

  const SweepRunner runner;
  bench::BenchReport report("scaling", runner.jobs());
  report.config()
      .Set("model", "bert_base")
      .Set("strategy", "DeepPlan (PT+DHA)")
      .Set("rate_per_sec", rate)
      .Set("instances", instances)
      .Set("zipf_exponent", 0.9)
      .Set("slo_ms", 100.0)
      .Set("seed", std::int64_t{42});

  const std::vector<bench::ScalingPointResult> results =
      runner.Map(static_cast<int>(sizes.size()), [&](int i) {
        bench::ScalingPointOptions options;
        options.num_requests = sizes[static_cast<std::size_t>(i)];
        options.rate_per_sec = rate;
        options.num_instances = instances;
        if (!journal_out.empty()) {
          options.journal_out =
              journal_out + "." + std::to_string(options.num_requests);
        }
        options.selfprof = !selfprof_out.empty();
        return bench::RunScalingPoint(options);
      });

  // The main thread gets its own lane so report rendering shows up in the
  // selfprof output alongside the per-point lanes.
  selfprof::SelfProfiler main_lane;
  {
    selfprof::InstallLane profile(!selfprof_out.empty() ? &main_lane : nullptr);
    std::cout << "Sim-core scaling: BERT-Base serving, " << rate
              << " rps synthetic zipf(0.9) trace, 4x V100, " << instances
              << " instances\n\n";
    Table table({"requests", "sim time (s)", "cold", "goodput", "p99 (ms)",
                 "events", "event slots"});
    for (const bench::ScalingPointResult& r : results) {
      table.AddRow({std::to_string(r.requests), Table::Num(r.sim_seconds, 0),
                    std::to_string(r.cold_starts), Table::Pct(r.goodput),
                    Table::Num(r.p99_ms, 1), std::to_string(r.events_scheduled),
                    std::to_string(r.event_slot_peak)});
      JsonObject& point = report.AddPoint();
      bench::FillScalingPoint(point, r);
    }
    table.Print(std::cout);

    // Throughput is wall-dependent: stderr only, so stdout and the JSON's
    // deterministic surface stay byte-identical across hosts and thread
    // counts.
    for (const bench::ScalingPointResult& r : results) {
      std::cerr << r.requests << " requests: " << r.wall_ms << " ms wall, "
                << static_cast<std::uint64_t>(
                       static_cast<double>(r.requests) / (r.wall_ms / 1000.0))
                << " simulated requests/sec\n";
    }
    report.Write(&std::cerr);
  }

  if (!selfprof_out.empty()) {
    // Lanes in point order (the sweep aggregates results in task-index
    // order), then the main thread's render lane.
    std::vector<selfprof::LaneView> lanes;
    for (std::size_t i = 0; i < results.size(); ++i) {
      lanes.push_back({std::to_string(results[i].requests) + " requests",
                       &results[i].selfprof});
    }
    lanes.push_back({"main", &main_lane});
    if (!selfprof::WriteReport(selfprof_out,
                               selfprof::ReportJson("scaling", lanes))) {
      std::cerr << "error: cannot write selfprof report to " << selfprof_out
                << "\n";
      return 1;
    }
    std::cerr << "selfprof report: " << selfprof_out << "\n";
  }
  return 0;
}
