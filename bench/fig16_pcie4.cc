// Figure 16: single cold inference speedups (batch 1) on the second system —
// 2x NVIDIA RTX A5000 with NVLink on PCIe 4.0 — showing DeepPlan's plans
// regenerate for different hardware and keep their advantage.
//
// Paper shape: same improvement trend as Figure 11, with smaller absolute
// stalls thanks to PCIe 4.0 bandwidth.
//
// With --whatif_out=<path> (default: $DEEPPLAN_WHATIF) the bench additionally
// validates the what-if replay engine end to end: it journals every
// (model, strategy) cold start with the same box throttled to PCIe 3.0
// bandwidth, predicts the PCIe 4.0 latencies from that journal alone
// (pcie x bw4/bw3 virtual experiment, src/obs/whatif), re-simulates on the
// real PCIe 4.0 spec as ground truth, and DP_CHECKs every per-request
// prediction within 1% of the re-simulation. The {"whatif_report":...} JSON
// lands at <path> (lint with `trace_lint --whatif`).
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/util/logging.h"

namespace {

using namespace deepplan;
using namespace deepplan::bench;

constexpr Strategy kStrategies[] = {Strategy::kBaseline, Strategy::kPipeSwitch,
                                    Strategy::kDeepPlanDha,
                                    Strategy::kDeepPlanPtDha};

// Journals PCIe 3.0 cold starts, predicts PCIe 4.0 from the journal alone,
// and checks the predictions against re-simulated ground truth. Returns 0 on
// success (DP_CHECK aborts on a >1% miss, so failures are loud either way).
int ValidateWhatIf(const Topology& gen4, const PerfModel& perf4,
                   const std::string& whatif_out) {
  const Topology gen3 = gen4.WithPcieBandwidth(
      PcieSpec::Gen3().effective_bw_bytes_per_sec);
  const PerfModel perf3(gen3.gpu(), gen3.pcie());
  const double speedup = gen4.pcie().effective_bw_bytes_per_sec /
                         gen3.pcie().effective_bw_bytes_per_sec;

  // One process per (model, strategy): every cold run used its own
  // simulator/fabric, so each journals as an independent single-request
  // process.
  CausalGraph graph(/*enabled=*/true);
  std::vector<std::string> labels;
  std::vector<Nanos> truth;
  for (const Model& model : ModelZoo::PaperModels()) {
    // The plan is derived from the PCIe 3.0 profile in both runs — the
    // what-if question is "same deployment, faster links", not "replan for
    // new hardware".
    const ModelProfile profile3 = ExactProfile(perf3, model);
    for (const Strategy s : kStrategies) {
      const std::string label =
          PrettyModelName(model.name()) + " " + StrategyName(s);
      const int process = graph.RegisterProcess(label);
      RunColdWithProfile(gen3, perf3, model, s, profile3, /*batch=*/1, &graph,
                         process);
      truth.push_back(RunColdWithProfile(gen4, perf4, model, s, profile3)
                          .result.latency);
      labels.push_back(label);
    }
  }

  WhatIfExperiment exp;
  exp.pcie_scale = speedup;
  exp.name = "pcie=" + Json::Num(speedup);
  const WhatIfReport report = BuildWhatIfReport(graph, {exp});
  DP_CHECK(report.baseline_matches_journal);
  DP_CHECK(report.outcomes.size() == 1);
  DP_CHECK(report.outcomes[0].per_request.size() == truth.size());

  std::cout << "\nWhat-if validation: PCIe 4.0 predicted from the PCIe 3.0 "
               "journal (pcie x "
            << Table::Num(speedup, 3) << ") vs re-simulation\n\n";
  Table table({"run", "PCIe3 (ms)", "predicted PCIe4", "simulated PCIe4",
               "error"});
  double max_err = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const WhatIfPerRequest& row = report.outcomes[0].per_request[i];
    const double err =
        std::abs(static_cast<double>(row.predicted_ns - truth[i])) /
        static_cast<double>(truth[i]);
    max_err = std::max(max_err, err);
    table.AddRow({labels[i], Table::Num(ToMillis(row.baseline_ns)),
                  Table::Num(ToMillis(row.predicted_ns)),
                  Table::Num(ToMillis(truth[i])), Table::Pct(err, 3)});
    // The acceptance bar: journal-only predictions must land within 1% of
    // re-simulating the faster hardware.
    DP_CHECK(err <= 0.01);
  }
  table.Print(std::cout);
  std::cout << "\nAll " << truth.size()
            << " predictions within 1% of re-simulation (max error "
            << Table::Pct(max_err, 3) << ").\n";

  std::ofstream out(whatif_out, std::ios::binary);
  if (out) {
    out << WhatIfReportJson(report) << "\n";
  }
  if (!out) {
    std::cerr << "cannot write what-if report " << whatif_out << "\n";
    return 1;
  }
  std::cerr << "wrote what-if report " << whatif_out << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("runs", 100, "repetitions per (model, strategy)");
  const char* whatif_env = std::getenv("DEEPPLAN_WHATIF");
  flags.DefineString("whatif_out", whatif_env != nullptr ? whatif_env : "",
                     "write the PCIe3->PCIe4 what-if validation report JSON "
                     "here (default: $DEEPPLAN_WHATIF; empty disables)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  const int runs = static_cast<int>(flags.GetInt("runs"));
  const std::string whatif_out = flags.GetString("whatif_out");

  const Topology topology = Topology::A5000Box();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const SweepRunner runner;
  BenchReport report("fig16_pcie4", runner.jobs());
  report.config().Set("topology", topology.name()).Set("runs", runs).Set("batch", 1);

  std::cout << "Figure 16: cold single-inference speedup vs Baseline on 2x "
               "RTX A5000, PCIe 4.0 (batch 1, " << runs << " runs)\n\n";
  Table table({"model", "Baseline", "PipeSwitch", "DHA", "PT+DHA", "PipeSwitch x",
               "DHA x", "PT+DHA x"});
  for (const Model& model : ModelZoo::PaperModels()) {
    double ms[4];
    int i = 0;
    for (const Strategy s : kStrategies) {
      ms[i] = MeanColdLatencyMs(topology, perf, model, s, runs, 1, runner);
      report.AddPoint()
          .Set("model", model.name())
          .Set("strategy", StrategyName(s))
          .Set("mean_cold_ms", ms[i]);
      ++i;
    }
    table.AddRow({PrettyModelName(model.name()), Table::Num(ms[0], 2),
                  Table::Num(ms[1], 2), Table::Num(ms[2], 2), Table::Num(ms[3], 2),
                  Table::Num(ms[0] / ms[1], 2) + "x",
                  Table::Num(ms[0] / ms[2], 2) + "x",
                  Table::Num(ms[0] / ms[3], 2) + "x"});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: the Figure 11 trend reproduces on PCIe 4.0 "
               "hardware; DeepPlan still leads everywhere.\n";
  report.Write(&std::cerr);
  if (!whatif_out.empty()) {
    return ValidateWhatIf(topology, perf, whatif_out);
  }
  return 0;
}
