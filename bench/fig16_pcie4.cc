// Figure 16: single cold inference speedups (batch 1) on the second system —
// 2x NVIDIA RTX A5000 with NVLink on PCIe 4.0 — showing DeepPlan's plans
// regenerate for different hardware and keep their advantage.
//
// Paper shape: same improvement trend as Figure 11, with smaller absolute
// stalls thanks to PCIe 4.0 bandwidth.
#include <iostream>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace deepplan;
  using namespace deepplan::bench;

  Flags flags;
  flags.DefineInt("runs", 100, "repetitions per (model, strategy)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  const int runs = static_cast<int>(flags.GetInt("runs"));

  const Topology topology = Topology::A5000Box();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const SweepRunner runner;
  BenchReport report("fig16_pcie4", runner.jobs());
  report.config().Set("topology", topology.name()).Set("runs", runs).Set("batch", 1);

  std::cout << "Figure 16: cold single-inference speedup vs Baseline on 2x "
               "RTX A5000, PCIe 4.0 (batch 1, " << runs << " runs)\n\n";
  Table table({"model", "Baseline", "PipeSwitch", "DHA", "PT+DHA", "PipeSwitch x",
               "DHA x", "PT+DHA x"});
  for (const Model& model : ModelZoo::PaperModels()) {
    const Strategy strategies[] = {Strategy::kBaseline, Strategy::kPipeSwitch,
                                   Strategy::kDeepPlanDha, Strategy::kDeepPlanPtDha};
    double ms[4];
    int i = 0;
    for (const Strategy s : strategies) {
      ms[i] = MeanColdLatencyMs(topology, perf, model, s, runs, 1, runner);
      report.AddPoint()
          .Set("model", model.name())
          .Set("strategy", StrategyName(s))
          .Set("mean_cold_ms", ms[i]);
      ++i;
    }
    table.AddRow({PrettyModelName(model.name()), Table::Num(ms[0], 2),
                  Table::Num(ms[1], 2), Table::Num(ms[2], 2), Table::Num(ms[3], 2),
                  Table::Num(ms[0] / ms[1], 2) + "x",
                  Table::Num(ms[0] / ms[2], 2) + "x",
                  Table::Num(ms[0] / ms[3], 2) + "x"});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: the Figure 11 trend reproduces on PCIe 4.0 "
               "hardware; DeepPlan still leads everywhere.\n";
  report.Write(&std::cerr);
  return 0;
}
