// Figure 16: single cold inference speedups (batch 1) on the second system —
// 2x NVIDIA RTX A5000 with NVLink on PCIe 4.0 — showing DeepPlan's plans
// regenerate for different hardware and keep their advantage.
//
// Paper shape: same improvement trend as Figure 11, with smaller absolute
// stalls thanks to PCIe 4.0 bandwidth.
#include <iostream>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace deepplan;
  using namespace deepplan::bench;

  Flags flags;
  flags.DefineInt("runs", 100, "repetitions per (model, strategy)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  const int runs = static_cast<int>(flags.GetInt("runs"));

  const Topology topology = Topology::A5000Box();
  const PerfModel perf(topology.gpu(), topology.pcie());

  std::cout << "Figure 16: cold single-inference speedup vs Baseline on 2x "
               "RTX A5000, PCIe 4.0 (batch 1, " << runs << " runs)\n\n";
  Table table({"model", "Baseline", "PipeSwitch", "DHA", "PT+DHA", "PipeSwitch x",
               "DHA x", "PT+DHA x"});
  for (const Model& model : ModelZoo::PaperModels()) {
    const double base = MeanColdLatencyMs(topology, perf, model, Strategy::kBaseline, runs);
    const double pipeswitch =
        MeanColdLatencyMs(topology, perf, model, Strategy::kPipeSwitch, runs);
    const double dha =
        MeanColdLatencyMs(topology, perf, model, Strategy::kDeepPlanDha, runs);
    const double ptdha =
        MeanColdLatencyMs(topology, perf, model, Strategy::kDeepPlanPtDha, runs);
    table.AddRow({PrettyModelName(model.name()), Table::Num(base, 2),
                  Table::Num(pipeswitch, 2), Table::Num(dha, 2), Table::Num(ptdha, 2),
                  Table::Num(base / pipeswitch, 2) + "x",
                  Table::Num(base / dha, 2) + "x",
                  Table::Num(base / ptdha, 2) + "x"});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: the Figure 11 trend reproduces on PCIe 4.0 "
               "hardware; DeepPlan still leads everywhere.\n";
  return 0;
}
