// Figure 14: 99% latency vs concurrency for BERT-Large (30 rps) and GPT-2
// (90 rps) under PipeSwitch, DeepPlan (DHA), and DeepPlan (PT+DHA).
//
// Paper shape: DeepPlan improves tail latency significantly; for GPT-2 the
// DHA and PT+DHA curves nearly coincide (PT has little to add, Figure 11).
#include <iostream>

#include "bench/bench_util.h"

namespace {

using namespace deepplan;

double P99Point(const Model& model, Strategy strategy, int concurrency, double rate,
                int requests) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  ServerOptions options;
  options.strategy = strategy;
  options.slo = Millis(200);
  Server server(topology, perf, options);
  const int type = server.RegisterModelType(model);
  server.AddInstances(type, concurrency);
  PoissonOptions w;
  w.rate_per_sec = rate;
  w.num_instances = concurrency;
  w.duration = Seconds(static_cast<double>(requests) / rate);
  w.seed = 7;
  return server.Run(GeneratePoissonTrace(w)).LatencyPercentileMs(99);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("requests", 600, "requests per point");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  const int requests = static_cast<int>(flags.GetInt("requests"));

  struct Config {
    const char* model;
    double rate;
    std::vector<int> concurrency;
  };
  const std::vector<Config> configs = {
      {"bert_large", 30.0, {10, 20, 30, 40, 50, 60}},
      {"gpt2", 90.0, {20, 40, 60, 80, 100, 120}},
  };
  for (const Config& config : configs) {
    const Model model = ModelZoo::ByName(config.model);
    std::cout << "Figure 14: 99% latency (ms), "
              << deepplan::bench::PrettyModelName(config.model) << " at "
              << config.rate << " rps\n\n";
    Table table({"instances", "PipeSwitch", "DeepPlan (DHA)", "DeepPlan (PT+DHA)"});
    for (const int c : config.concurrency) {
      table.AddRow(
          {std::to_string(c),
           Table::Num(P99Point(model, Strategy::kPipeSwitch, c, config.rate, requests), 1),
           Table::Num(P99Point(model, Strategy::kDeepPlanDha, c, config.rate, requests), 1),
           Table::Num(
               P99Point(model, Strategy::kDeepPlanPtDha, c, config.rate, requests),
               1)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper reference: DeepPlan cuts p99 well below PipeSwitch; "
               "for GPT-2, DHA and PT+DHA are nearly indistinguishable.\n";
  return 0;
}
