// Ablation: Algorithm 1's candidate ordering. Step 1 sorts candidate layers
// by PerfDiff ascending ("the smaller the difference, the more the stall time
// can be reduced while minimizing the negative performance impact"). This
// bench swaps that ordering for load-descending and naive layer-order and
// measures the resulting cold latency and DHA spend.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace deepplan;
  using namespace deepplan::bench;

  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());

  std::cout << "Ablation: Algorithm 1 candidate ordering (DHA-only plans, "
               "single GPU, batch 1)\n\n";
  Table table({"model", "ordering", "DHA layers", "host-resident",
               "cold latency", "stall"});
  for (const char* name : {"resnet101", "bert_base", "roberta_large", "gpt2"}) {
    const Model model = ModelZoo::ByName(name);
    const ModelProfile profile = ExactProfile(perf, model);
    Planner planner(&profile);
    for (const CandidateOrder order :
         {CandidateOrder::kPerfDiffAscending, CandidateOrder::kLoadDescending,
          CandidateOrder::kLayerOrder}) {
      PlannerOptions options;
      options.candidate_order = order;
      const ExecutionPlan plan = planner.GeneratePlan(options);
      const PipelineResult timeline =
          SimulatePipeline(profile, plan, options.pipeline);
      table.AddRow({PrettyModelName(name), CandidateOrderName(order),
                    std::to_string(plan.CountDha()),
                    FormatBytes(plan.HostResidentBytes(profile)),
                    FormatDuration(timeline.total),
                    FormatDuration(timeline.total_stall)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nPerfDiff-ascending spends DHA where the execution-time "
               "penalty is smallest; load-descending converts expensive "
               "layers (paying big DHA slowdowns), layer-order wastes "
               "conversions on already-hidden transfers.\n";
  return 0;
}
