// Ablation: sequence-length sensitivity. The paper observes that GPT-2's
// longer context (1024 tokens) makes pipelining more effective "because the
// computation time is relatively longer" (Section 5.2). This bench sweeps the
// sequence length of a BERT-Base-shaped encoder and reports the PipeSwitch
// stall share and the DHA speedup — showing where DeepPlan's headroom comes
// from: short sequences stall the pipeline, long sequences hide transfers.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace deepplan;
  using namespace deepplan::bench;

  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());

  std::cout << "Ablation: sequence length vs pipeline stalls (BERT-Base "
               "architecture, batch 1)\n\n";
  Table table({"seq len", "warm exec", "PipeSwitch cold", "stall share",
               "DHA cold", "DHA/PipeSwitch"});
  for (const std::int64_t seq : {64, 128, 256, 384, 512, 1024}) {
    const Model model = ModelZoo::TransformerEncoder(
        "bert_seq" + std::to_string(seq), 30522, 768, 12, 3072, seq);
    const auto pipeswitch = RunColdOnce(topology, perf, model, Strategy::kPipeSwitch);
    const auto dha = RunColdOnce(topology, perf, model, Strategy::kDeepPlanDha);
    const double stall_share = static_cast<double>(pipeswitch.result.stall) /
                               static_cast<double>(pipeswitch.result.latency);
    table.AddRow({std::to_string(seq), FormatDuration(perf.WarmLatency(model, 1)),
                  FormatDuration(pipeswitch.result.latency), Table::Pct(stall_share),
                  FormatDuration(dha.result.latency),
                  Table::Num(static_cast<double>(pipeswitch.result.latency) /
                                 static_cast<double>(dha.result.latency),
                             2) +
                      "x"});
  }
  table.Print(std::cout);
  std::cout << "\nLonger sequences lengthen computation, hiding more of the "
               "transfer under pipelining (stall share falls) — which is why "
               "the paper's GPT-2 (seq 1024) benefits less from DHA than "
               "BERT (seq 384).\n";
  return 0;
}
