// Ablation: sequence-length sensitivity. The paper observes that GPT-2's
// longer context (1024 tokens) makes pipelining more effective "because the
// computation time is relatively longer" (Section 5.2). This bench sweeps the
// sequence length of a BERT-Base-shaped encoder and reports the PipeSwitch
// stall share and the DHA speedup — showing where DeepPlan's headroom comes
// from: short sequences stall the pipeline, long sequences hide transfers.
//
// Each sequence length is an independent pair of cold runs, so the sweep fans
// out over DEEPPLAN_JOBS threads via SweepRunner and renders in length order.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace deepplan;
  using namespace deepplan::bench;

  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());

  const std::vector<std::int64_t> seq_lens = {64, 128, 256, 384, 512, 1024};

  struct SeqPoint {
    Nanos warm;
    Nanos pipeswitch_latency;
    Nanos pipeswitch_stall;
    Nanos dha_latency;
  };

  const SweepRunner runner;
  BenchReport report("ablation_seqlen", runner.jobs());
  report.config().Set("architecture", "bert_base").Set("batch", 1);

  const std::vector<SeqPoint> points =
      runner.Map(static_cast<int>(seq_lens.size()), [&](int i) {
        const std::int64_t seq = seq_lens[static_cast<std::size_t>(i)];
        const Model model = ModelZoo::TransformerEncoder(
            "bert_seq" + std::to_string(seq), 30522, 768, 12, 3072, seq);
        const auto pipeswitch =
            RunColdOnce(topology, perf, model, Strategy::kPipeSwitch);
        const auto dha = RunColdOnce(topology, perf, model, Strategy::kDeepPlanDha);
        return SeqPoint{perf.WarmLatency(model, 1), pipeswitch.result.latency,
                        pipeswitch.result.stall, dha.result.latency};
      });

  std::cout << "Ablation: sequence length vs pipeline stalls (BERT-Base "
               "architecture, batch 1)\n\n";
  Table table({"seq len", "warm exec", "PipeSwitch cold", "stall share",
               "DHA cold", "DHA/PipeSwitch"});
  for (std::size_t i = 0; i < seq_lens.size(); ++i) {
    const SeqPoint& p = points[i];
    const double stall_share = static_cast<double>(p.pipeswitch_stall) /
                               static_cast<double>(p.pipeswitch_latency);
    const double speedup = static_cast<double>(p.pipeswitch_latency) /
                           static_cast<double>(p.dha_latency);
    table.AddRow({std::to_string(seq_lens[i]), FormatDuration(p.warm),
                  FormatDuration(p.pipeswitch_latency), Table::Pct(stall_share),
                  FormatDuration(p.dha_latency), Table::Num(speedup, 2) + "x"});
    report.AddPoint()
        .Set("seq_len", seq_lens[i])
        .Set("warm_ms", ToMillis(p.warm))
        .Set("pipeswitch_cold_ms", ToMillis(p.pipeswitch_latency))
        .Set("stall_share", stall_share)
        .Set("dha_cold_ms", ToMillis(p.dha_latency))
        .Set("dha_speedup", speedup);
  }
  table.Print(std::cout);
  std::cout << "\nLonger sequences lengthen computation, hiding more of the "
               "transfer under pipelining (stall share falls) — which is why "
               "the paper's GPT-2 (seq 1024) benefits less from DHA than "
               "BERT (seq 384).\n";
  report.Write(&std::cerr);
  return 0;
}
