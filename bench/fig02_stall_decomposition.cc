// Figure 2: decomposition of cold-inference latency under the pipelining
// approach (PipeSwitch) into GPU execution time and pipeline-stall time,
// batch size 1, for all eight models.
//
// Paper shape: BERT/RoBERTa stall 73-75%; ResNet and GPT-2 roughly 25-45%.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace deepplan;
  using namespace deepplan::bench;

  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());

  std::cout << "Figure 2: inference latency decomposition under PipeSwitch "
               "(batch 1, V100 / PCIe 3.0)\n\n";
  Table table({"model", "total", "exec", "stall", "stall share"});
  for (const Model& model : ModelZoo::PaperModels()) {
    const ColdMeasurement m =
        RunColdOnce(topology, perf, model, Strategy::kPipeSwitch);
    const double share = static_cast<double>(m.result.stall) /
                         static_cast<double>(m.result.latency);
    table.AddRow({PrettyModelName(model.name()), FormatDuration(m.result.latency),
                  FormatDuration(m.result.exec_busy), FormatDuration(m.result.stall),
                  Table::Pct(share)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: BERT/RoBERTa ~73-75% stall; "
               "ResNet/GPT-2 ~27-37% stall.\n";
  return 0;
}
