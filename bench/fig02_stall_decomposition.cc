// Figure 2: decomposition of cold-inference latency under the pipelining
// approach (PipeSwitch) into GPU execution time and pipeline-stall time,
// batch size 1, for all eight models.
//
// Paper shape: BERT/RoBERTa stall 73-75%; ResNet and GPT-2 roughly 25-45%.
//
// With --profile_out=<path> (default: $DEEPPLAN_PROFILE) every cold start
// records its happens-before DAG into a causal journal written to <path>,
// and a second table re-derives the decomposition from critical-path
// attribution — the engine's own stall accounting and the profiler's must
// agree exactly (DP_CHECK), which is the cross-check that keeps the
// attribution taxonomy honest.
//
// With --whatif_out=<path> (default: $DEEPPLAN_WHATIF) the run additionally
// replays its journal under the default virtual-hardware experiments
// (src/obs/whatif) and writes the {"whatif_report":...} JSON to <path>;
// journaling turns on even without --profile_out.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/util/logging.h"

int main(int argc, char** argv) {
  using namespace deepplan;
  using namespace deepplan::bench;

  Flags flags;
  const char* profile_env = std::getenv("DEEPPLAN_PROFILE");
  flags.DefineString("profile_out", profile_env != nullptr ? profile_env : "",
                     "write the causal journal JSON here (default: "
                     "$DEEPPLAN_PROFILE; empty disables profiling)");
  const char* whatif_env = std::getenv("DEEPPLAN_WHATIF");
  flags.DefineString("whatif_out", whatif_env != nullptr ? whatif_env : "",
                     "write the what-if report JSON here (default: "
                     "$DEEPPLAN_WHATIF; empty disables what-if replay)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  const std::string profile_out = flags.GetString("profile_out");
  const bool profiling = !profile_out.empty();
  const std::string whatif_out = flags.GetString("whatif_out");
  const bool journaling = profiling || !whatif_out.empty();

  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  CausalGraph graph(journaling);

  std::cout << "Figure 2: inference latency decomposition under PipeSwitch "
               "(batch 1, V100 / PCIe 3.0)\n\n";
  Table table({"model", "total", "exec", "stall", "stall share"});
  std::vector<std::string> names;
  std::vector<InferenceResult> results;
  for (const Model& model : ModelZoo::PaperModels()) {
    const int process = graph.RegisterProcess(model.name());
    const ColdMeasurement m = RunColdWithProfile(
        topology, perf, model, Strategy::kPipeSwitch,
        ExactProfile(perf, model), /*batch=*/1,
        journaling ? &graph : nullptr, process);
    names.push_back(PrettyModelName(model.name()));
    results.push_back(m.result);
    const double share = static_cast<double>(m.result.stall) /
                         static_cast<double>(m.result.latency);
    table.AddRow({PrettyModelName(model.name()), FormatDuration(m.result.latency),
                  FormatDuration(m.result.exec_busy), FormatDuration(m.result.stall),
                  Table::Pct(share)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: BERT/RoBERTa ~73-75% stall; "
               "ResNet/GPT-2 ~27-37% stall.\n";

  if (profiling) {
    const ProfileSummary summary = AnalyzeCriticalPaths(graph);
    DP_CHECK(summary.requests.size() == results.size());
    std::cout << "\nDecomposition derived from causal attribution "
                 "(critical path):\n";
    Table derived({"model", "exec (path)", "pcie", "contention", "other wait",
                   "stall share"});
    for (std::size_t i = 0; i < summary.requests.size(); ++i) {
      const RequestProfile& p = summary.requests[i];
      // The profiler's view and the engine's own accounting must agree
      // exactly: attribution tiles the latency, and latency minus total
      // exec-busy time is the engine's hand-computed stall.
      DP_CHECK(p.attribution.Total() == p.latency);
      DP_CHECK(p.latency - p.exec_busy == results[i].stall);
      const CpAttribution& a = p.attribution;
      const Nanos other = a.queue + a.evict + a.nvlink + a.sync;
      const double share = static_cast<double>(p.latency - p.exec_busy) /
                           static_cast<double>(p.latency);
      derived.AddRow({names[i], FormatDuration(a.exec), FormatDuration(a.pcie),
                      FormatDuration(a.pcie_contention), FormatDuration(other),
                      Table::Pct(share)});
    }
    derived.Print(std::cout);
    std::cout << "\nAttribution agrees with the engine's stall accounting "
                 "for every model (checked).\n";
    if (graph.WriteTo(profile_out)) {
      std::cerr << "wrote profile journal " << profile_out << " ("
                << graph.nodes().size() << " nodes)\n";
    } else {
      std::cerr << "cannot write profile journal " << profile_out << "\n";
      return 1;
    }
  }
  if (!whatif_out.empty()) {
    const WhatIfReport whatif =
        BuildWhatIfReport(graph, DefaultWhatIfExperiments());
    // The identity replay must land every request on its recorded latency —
    // the self-check that licenses the perturbed predictions.
    DP_CHECK(whatif.baseline_matches_journal);
    std::cout << "\n";
    PrintWhatIfReport(whatif, std::cout);
    std::ofstream out(whatif_out, std::ios::binary);
    if (out) {
      out << WhatIfReportJson(whatif) << "\n";
    }
    if (!out) {
      std::cerr << "cannot write what-if report " << whatif_out << "\n";
      return 1;
    }
    std::cerr << "wrote what-if report " << whatif_out << "\n";
  }
  return 0;
}
