// Figure 13: serving BERT-Base on 4x V100 at 100 requests/s (Poisson) while
// increasing the number of model instances (concurrency) beyond GPU memory:
// 99% latency (top), goodput at SLO 100 ms (middle), cold-start rate
// (bottom), for PipeSwitch, DeepPlan (DHA) and DeepPlan (PT+DHA).
//
// Paper shape: PipeSwitch p99 blows past the SLO at ~120 instances; DHA is
// stable to ~160; PT+DHA serves ~180. Capacity: 100 resident instances for
// PipeSwitch, 124 for DeepPlan.
//
// Every (concurrency, strategy) point replays its own server, so the sweep
// fans out over DEEPPLAN_JOBS threads; tables aggregate in point order and
// are byte-identical for any thread count. With --trace_out=<path> (default:
// $DEEPPLAN_TRACE), the three loose-SLO points at concurrency 140 — the knee
// of the figure — record telemetry; their recorders stitch into one Chrome
// trace and their metrics snapshots land in the matching BENCH points. With
// --profile_out=<path> (default: $DEEPPLAN_PROFILE) the same knee points
// record causal journals; the stitched journal is written to <path> and the
// critical-path attribution report prints after the tables. With
// --selfprof_out=<path> (default: $DEEPPLAN_SELFPROF) every point carries a
// host self-profiling lane (src/obs/selfprof.h) and the per-point wall-clock
// attribution report lands at <path> (inspect with tools/selfprof_report).
#include <cstdlib>
#include <iostream>
#include <utility>

#include "bench/bench_util.h"

namespace {

using namespace deepplan;

struct Point {
  double p99_ms = 0.0;
  double goodput = 0.0;
  double goodput_tight = 0.0;  // against a 50 ms SLO
  double cold_rate = 0.0;
  int capacity = 0;
  TraceRecorder recorder{false};
  MetricsRegistry registry;
  CausalGraph causal{false};
  // Host wall-clock attribution for this point; merged into the
  // --selfprof_out report in spec order (never feeds the BENCH point).
  selfprof::SelfProfiler selfprof;
};

Point RunPoint(Strategy strategy, int concurrency, int requests, double rate,
               std::uint64_t seed, bool tracing, bool profiling,
               bool profiling_host) {
  Point p;
  {
    // Scope: the lane's root "total" closes when this block exits, before
    // the point is returned (reports require closed lanes).
    selfprof::InstallLane profile(profiling_host ? &p.selfprof : nullptr);
    const Topology topology = Topology::P3_8xlarge();
    const PerfModel perf(topology.gpu(), topology.pcie());
    ServerOptions options;
    options.strategy = strategy;
    options.slo = Millis(100);
    Server server(topology, perf, options);
    const int type = server.RegisterModelType(ModelZoo::BertBase());
    server.AddInstances(type, concurrency);

    if (tracing) {
      p.recorder = TraceRecorder(/*enabled=*/true);
      server.set_telemetry(&p.recorder, &p.registry,
                           p.recorder.RegisterProcess(
                               std::string(StrategyName(strategy)) + " c" +
                               std::to_string(concurrency)));
    }
    if (profiling) {
      p.causal = CausalGraph(/*enabled=*/true);
      server.set_causal(&p.causal, p.causal.RegisterProcess(
                                       std::string(StrategyName(strategy)) +
                                       " c" + std::to_string(concurrency)));
    }

    PoissonOptions w;
    w.rate_per_sec = rate;
    w.num_instances = concurrency;
    w.duration = Seconds(static_cast<double>(requests) / rate);
    w.seed = seed;
    const ServingMetrics m = server.Run(GeneratePoissonTrace(w));
    p.p99_ms = m.LatencyPercentileMs(99);
    p.goodput = m.Goodput(Millis(100));
    p.goodput_tight = m.Goodput(Millis(50));
    p.cold_rate = m.ColdStartRate();
    p.capacity = server.WarmCapacity();
  }
  return p;
}

struct PointSpec {
  int concurrency;
  Strategy strategy;
  bool tight;  // belongs to the tight-SLO table

  // Keep traces bounded: only the loose-SLO knee of the sweep records.
  bool Traced() const { return !tight && concurrency == 140; }
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("requests", 1000, "requests per concurrency point");
  flags.DefineDouble("rate", 100.0, "offered load (requests/second)");
  const char* trace_env = std::getenv("DEEPPLAN_TRACE");
  flags.DefineString("trace_out", trace_env != nullptr ? trace_env : "",
                     "write a Chrome/Perfetto trace JSON here (default: "
                     "$DEEPPLAN_TRACE; empty disables telemetry)");
  const char* profile_env = std::getenv("DEEPPLAN_PROFILE");
  flags.DefineString("profile_out", profile_env != nullptr ? profile_env : "",
                     "write the causal journal JSON here (default: "
                     "$DEEPPLAN_PROFILE; empty disables profiling)");
  const char* selfprof_env = std::getenv("DEEPPLAN_SELFPROF");
  flags.DefineString("selfprof_out", selfprof_env != nullptr ? selfprof_env : "",
                     "write a host self-profiling report (one wall-clock "
                     "attribution lane per point) here (default: "
                     "$DEEPPLAN_SELFPROF; empty disables)");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  const int requests = static_cast<int>(flags.GetInt("requests"));
  const double rate = flags.GetDouble("rate");
  const std::string trace_out = flags.GetString("trace_out");
  const bool tracing = !trace_out.empty();
  const std::string profile_out = flags.GetString("profile_out");
  const bool profiling = !profile_out.empty();
  const std::string selfprof_out = flags.GetString("selfprof_out");

  // Enumerate every independent point up front, then sweep them in parallel.
  std::vector<PointSpec> specs;
  for (int concurrency = 20; concurrency <= 200; concurrency += 20) {
    for (const Strategy strategy :
         {Strategy::kPipeSwitch, Strategy::kDeepPlanDha, Strategy::kDeepPlanPtDha}) {
      specs.push_back({concurrency, strategy, /*tight=*/false});
    }
  }
  for (const int concurrency : {120, 140}) {
    for (const Strategy strategy :
         {Strategy::kPipeSwitch, Strategy::kDeepPlanPtDha}) {
      specs.push_back({concurrency, strategy, /*tight=*/true});
    }
  }

  const SweepRunner runner;
  bench::BenchReport report("fig13_concurrency_sweep", runner.jobs());
  report.config()
      .Set("model", "bert_base")
      .Set("requests", requests)
      .Set("rate_per_sec", rate)
      .Set("seed", std::int64_t{42})
      .Set("slo_ms", 100.0);

  std::vector<Point> points =
      runner.Map(static_cast<int>(specs.size()), [&](int i) {
        const PointSpec& s = specs[static_cast<std::size_t>(i)];
        return RunPoint(s.strategy, s.concurrency, requests, rate, 42,
                        tracing && s.Traced(), profiling && s.Traced(),
                        !selfprof_out.empty());
      });

  std::cout << "Figure 13: BERT-Base serving, " << rate
            << " rps Poisson, SLO 100 ms, 4x V100 (" << requests
            << " requests per point)\n\n";
  Table table({"instances", "strategy", "p99 (ms)", "goodput", "cold-start rate",
               "resident"});
  Table tight({"instances", "strategy", "p99 (ms)", "goodput @50ms"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const PointSpec& s = specs[i];
    const Point& p = points[i];
    if (s.tight) {
      tight.AddRow({std::to_string(s.concurrency), StrategyName(s.strategy),
                    Table::Num(p.p99_ms, 1), Table::Pct(p.goodput_tight)});
    } else {
      table.AddRow({std::to_string(s.concurrency), StrategyName(s.strategy),
                    Table::Num(p.p99_ms, 1), Table::Pct(p.goodput),
                    Table::Pct(p.cold_rate), std::to_string(p.capacity)});
    }
    JsonObject& point = report.AddPoint();
    point.Set("instances", s.concurrency)
        .Set("strategy", StrategyName(s.strategy))
        .Set("tight_slo", s.tight)
        .Set("p99_ms", p.p99_ms)
        .Set("goodput", p.goodput)
        .Set("goodput_50ms", p.goodput_tight)
        .Set("cold_start_rate", p.cold_rate)
        .Set("resident", p.capacity);
    if (tracing && s.Traced()) {
      // Only enriched when telemetry is on so the disabled report stays
      // byte-identical to pre-telemetry behaviour.
      point.SetRaw("metrics", p.registry.ToJsonObject().Render());
    }
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: PipeSwitch keeps 100 instances resident "
               "(DeepPlan 124); p99 knees at ~120 (PipeSwitch), ~160 (DHA), "
               "~180 (PT+DHA); PT+DHA goodput 1.84x PipeSwitch at 180.\n";

  // The paper's tight-SLO observation: "When having a relatively tight
  // target SLO such as 50ms, at concurrency 120, PipeSwitch starts violating
  // the SLO... DeepPlan (PT+DHA) shows that it can handle requests within
  // 35ms even at concurrency 140."
  std::cout << "\nTight SLO (50 ms):\n";
  tight.Print(std::cout);
  std::cout << "\nPaper reference: PipeSwitch p99 ~94 ms at 120; PT+DHA "
               "within ~35 ms even at 140.\n";
  if (profiling) {
    // Stitch the recorded points' graphs in spec order (deterministic for
    // any DEEPPLAN_JOBS) and print the critical-path attribution report.
    CausalGraph merged(/*enabled=*/true);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].Traced()) {
        merged.Adopt(std::move(points[i].causal));
      }
    }
    std::cout << "\n";
    PrintProfileReport(BuildProfileReport(merged), std::cout);
    if (merged.WriteTo(profile_out)) {
      std::cerr << "wrote profile journal " << profile_out << " ("
                << merged.nodes().size() << " nodes)\n";
    } else {
      std::cerr << "cannot write profile journal " << profile_out << "\n";
      return 1;
    }
  }
  report.Write(&std::cerr);
  if (tracing) {
    TraceRecorder merged(/*enabled=*/true);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].Traced()) {
        merged.Adopt(std::move(points[i].recorder));
      }
    }
    if (merged.WriteTo(trace_out)) {
      std::cerr << "wrote trace " << trace_out << " (" << merged.size()
                << " events)\n";
    } else {
      std::cerr << "cannot write trace " << trace_out << "\n";
      return 1;
    }
  }
  if (!selfprof_out.empty()) {
    // Lanes in spec order (the sweep aggregates in task-index order).
    std::vector<selfprof::LaneView> lanes;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      lanes.push_back({std::string(StrategyName(specs[i].strategy)) + " c" +
                           std::to_string(specs[i].concurrency) +
                           (specs[i].tight ? " tight" : ""),
                       &points[i].selfprof});
    }
    if (!selfprof::WriteReport(
            selfprof_out,
            selfprof::ReportJson("fig13_concurrency_sweep", lanes))) {
      std::cerr << "cannot write selfprof report " << selfprof_out << "\n";
      return 1;
    }
    std::cerr << "selfprof report: " << selfprof_out << "\n";
  }
  return 0;
}
