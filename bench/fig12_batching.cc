// Figure 12: throughput improvement with batch sizes 1-8 for Baseline,
// PipeSwitch, and DeepPlan (PT+DHA), normalized to Baseline at batch 1.
// Throughput = batch / cold latency.
//
// Paper shape: PT+DHA best at every batch; the PT+DHA vs PipeSwitch gap
// narrows as batching lengthens computation and hides more stalls.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace deepplan;
  using namespace deepplan::bench;

  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());

  std::cout << "Figure 12: throughput (normalized to Baseline batch 1) for "
               "batch sizes 1-8\n";
  for (const char* name :
       {"resnet50", "bert_base", "roberta_large", "gpt2_medium"}) {
    const Model model = ModelZoo::ByName(name);
    std::cout << "\n" << PrettyModelName(name) << "\n";
    Table table({"batch", "Baseline", "PipeSwitch", "PT+DHA",
                 "PT+DHA/PipeSwitch"});
    double base1 = 0.0;
    for (const int batch : {1, 2, 4, 8}) {
      double thr[3];
      int i = 0;
      for (const Strategy s :
           {Strategy::kBaseline, Strategy::kPipeSwitch, Strategy::kDeepPlanPtDha}) {
        const auto m = RunColdOnce(topology, perf, model, s, batch);
        thr[i++] = static_cast<double>(batch) / ToSeconds(m.result.latency);
      }
      if (batch == 1) {
        base1 = thr[0];
      }
      table.AddRow({std::to_string(batch), Table::Num(thr[0] / base1, 2),
                    Table::Num(thr[1] / base1, 2), Table::Num(thr[2] / base1, 2),
                    Table::Num(thr[2] / thr[1], 2) + "x"});
    }
    table.Print(std::cout);
  }
  std::cout << "\nPaper reference: PT+DHA 1.12-1.26x over PipeSwitch for "
               "ResNet-50; transformer gaps narrow as batch grows.\n";
  return 0;
}
