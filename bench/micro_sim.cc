// google-benchmark microbenchmarks for the simulation substrate: event-queue
// throughput, fabric transfer scheduling under contention, cold-run
// simulation, and workload generation. These bound the wall-clock cost of the
// serving experiments (Figures 13-15).
#include <benchmark/benchmark.h>

#include "src/deepplan.h"

namespace deepplan {
namespace {

void BM_EventQueueScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleAfter(i, [] {});
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_FabricContendedTransfers(benchmark::State& state) {
  const int transfers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    Fabric fabric(&sim);
    const LinkId uplink = fabric.AddLink("uplink", 12e9);
    const LinkId a = fabric.AddLink("a", 12e9);
    const LinkId b = fabric.AddLink("b", 12e9);
    for (int i = 0; i < transfers; ++i) {
      fabric.Start({uplink, i % 2 == 0 ? a : b}, 1'000'000, 0, nullptr);
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * transfers);
}
BENCHMARK(BM_FabricContendedTransfers)->Arg(4)->Arg(16)->Arg(64);

void BM_ColdRunBertBase(benchmark::State& state) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const Model model = ModelZoo::BertBase();
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;
  const ModelProfile profile = Profiler(&perf, opts).Profile(model);
  const ExecutionPlan plan =
      MakeStrategyPlan(Strategy::kDeepPlanPtDha, profile, 2);
  for (auto _ : state) {
    Simulator sim;
    ServerFabric fabric(&sim, &topology);
    Engine engine(&sim, &fabric, &perf);
    engine.RunCold(model, plan, 0, {2}, ColdRunOptions{}, [](const InferenceResult&) {});
    sim.Run();
  }
}
BENCHMARK(BM_ColdRunBertBase);

void BM_PoissonTraceGeneration(benchmark::State& state) {
  PoissonOptions opts;
  opts.rate_per_sec = 1000;
  opts.duration = Seconds(10);
  opts.num_instances = 100;
  for (auto _ : state) {
    opts.seed++;
    benchmark::DoNotOptimize(GeneratePoissonTrace(opts));
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_PoissonTraceGeneration);

void BM_AzureTraceGeneration(benchmark::State& state) {
  AzureTraceOptions opts;
  opts.target_rate_per_sec = 150;
  opts.duration = Seconds(60);
  opts.num_instances = 90;
  for (auto _ : state) {
    opts.seed++;
    benchmark::DoNotOptimize(GenerateAzureTrace(opts));
  }
}
BENCHMARK(BM_AzureTraceGeneration);

void BM_ServingThousandRequests(benchmark::State& state) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  for (auto _ : state) {
    ServerOptions options;
    options.strategy = Strategy::kDeepPlanPtDha;
    Server server(topology, perf, options);
    const int type = server.RegisterModelType(ModelZoo::BertBase());
    server.AddInstances(type, 140);
    PoissonOptions w;
    w.rate_per_sec = 100;
    w.num_instances = 140;
    w.duration = Seconds(10);
    benchmark::DoNotOptimize(server.Run(GeneratePoissonTrace(w)));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ServingThousandRequests)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace deepplan
