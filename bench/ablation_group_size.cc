// Ablation: transmission group size. PipeSwitch groups consecutive layers
// into one copy to amortize per-transfer overhead; larger groups waste
// pipelining (execution must wait for the whole group) while single-layer
// copies pay the DMA setup ~once per layer. This bench sweeps the group size
// for pipelined all-load transmission and shows the sweet spot — and that it
// moves with the model's layer-size distribution (ResNet's many small layers
// benefit from grouping far more than BERT's few large ones).
#include <iostream>

#include "bench/bench_util.h"

namespace {

using namespace deepplan;

InferenceResult RunGrouped(const Topology& topology, const PerfModel& perf,
                           const Model& model, int group) {
  const ModelProfile profile = bench::ExactProfile(perf, model);
  const ExecutionPlan plan(model.name(), model.num_layers());
  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  ColdRunOptions options;
  options.transfer_group_layers = group;
  InferenceResult result;
  engine.RunCold(model, plan, 0, {}, options,
                 [&](const InferenceResult& r) { result = r; });
  sim.Run();
  return result;
}

}  // namespace

int main() {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());

  std::cout << "Ablation: transmission group size (pipelined all-load, "
               "single GPU, batch 1)\n\n";
  Table table({"model", "group=1", "group=2", "group=4", "group=8", "group=16",
               "best"});
  for (const char* name : {"resnet50", "resnet101", "bert_base", "gpt2_medium"}) {
    const Model model = ModelZoo::ByName(name);
    std::vector<std::string> row = {bench::PrettyModelName(name)};
    Nanos best = std::numeric_limits<Nanos>::max();
    int best_group = 1;
    for (const int group : {1, 2, 4, 8, 16}) {
      const InferenceResult r = RunGrouped(topology, perf, model, group);
      row.push_back(FormatDuration(r.latency));
      if (r.latency < best) {
        best = r.latency;
        best_group = group;
      }
    }
    row.push_back("group=" + std::to_string(best_group));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nResNet (190+ small layers) wants larger groups to amortize "
               "per-copy overhead; transformers with few big layers are "
               "insensitive or prefer fine-grained pipelining.\n";
  return 0;
}
