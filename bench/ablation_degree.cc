// Ablation: parallel-transmission degree scaling on a DGX-1-style server
// (8x V100 behind 4 PCIe switches). On p3.8xlarge the topology caps useful
// degree at 2; with four switches, degree 4 uses four independent uplinks —
// this bench shows where the returns diminish (NVLink forwarding and the
// first partition become the bottleneck).
#include <iostream>

#include "bench/bench_util.h"

namespace {

using namespace deepplan;

Nanos ColdAtDegree(const Topology& topology, const PerfModel& perf,
                   const Model& model, int degree, bool dha) {
  const ModelProfile profile = bench::ExactProfile(perf, model);
  Planner planner(&profile);
  PlannerOptions options;
  options.enable_dha = dha;
  options.num_partitions = degree;
  options.pipeline.nvlink = topology.nvlink();
  const ExecutionPlan plan = planner.GeneratePlan(options);
  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  InferenceResult result;
  engine.RunCold(model, plan, 0,
                 TransmissionPlanner::ChooseSecondaries(topology, 0, degree),
                 ColdRunOptions{}, [&](const InferenceResult& r) { result = r; });
  sim.Run();
  return result.latency;
}

}  // namespace

int main() {
  const Topology topology = Topology::Dgx1();
  const PerfModel perf(topology.gpu(), topology.pcie());

  std::cout << "Ablation: PT degree scaling on " << topology.name() << " ("
            << topology.num_gpus() << " GPUs, " << topology.num_switches()
            << " PCIe switches; max useful degree "
            << topology.MaxParallelDegree(0) << ")\n\n";
  Table table({"model", "degree 1 (DHA)", "degree 2 (PT+DHA)", "degree 3",
               "degree 4"});
  for (const char* name : {"bert_large", "roberta_large", "gpt2_medium"}) {
    const Model model = ModelZoo::ByName(name);
    table.AddRow({bench::PrettyModelName(name),
                  FormatDuration(ColdAtDegree(topology, perf, model, 1, true)),
                  FormatDuration(ColdAtDegree(topology, perf, model, 2, true)),
                  FormatDuration(ColdAtDegree(topology, perf, model, 3, true)),
                  FormatDuration(ColdAtDegree(topology, perf, model, 4, true))});
  }
  table.Print(std::cout);
  std::cout << "\nEach added partition removes PCIe time from the critical "
               "path but leaves partition 0's load and the execution floor; "
               "gains shrink with degree.\n";
  return 0;
}
