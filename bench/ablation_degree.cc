// Ablation: parallel-transmission degree scaling on a DGX-1-style server
// (8x V100 behind 4 PCIe switches). On p3.8xlarge the topology caps useful
// degree at 2; with four switches, degree 4 uses four independent uplinks —
// this bench shows where the returns diminish (NVLink forwarding and the
// first partition become the bottleneck).
//
// Every (model, degree) cell is an independent cold run, so the grid fans out
// over DEEPPLAN_JOBS threads via SweepRunner and renders in cell order.
#include <iostream>

#include "bench/bench_util.h"

namespace {

using namespace deepplan;

Nanos ColdAtDegree(const Topology& topology, const PerfModel& perf,
                   const Model& model, int degree, bool dha) {
  const ModelProfile profile = bench::ExactProfile(perf, model);
  Planner planner(&profile);
  PlannerOptions options;
  options.enable_dha = dha;
  options.num_partitions = degree;
  options.pipeline.nvlink = topology.nvlink();
  const ExecutionPlan plan = planner.GeneratePlan(options);
  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  InferenceResult result;
  engine.RunCold(model, plan, 0,
                 TransmissionPlanner::ChooseSecondaries(topology, 0, degree),
                 ColdRunOptions{}, [&](const InferenceResult& r) { result = r; });
  sim.Run();
  return result.latency;
}

}  // namespace

int main() {
  const Topology topology = Topology::Dgx1();
  const PerfModel perf(topology.gpu(), topology.pcie());

  const std::vector<std::string> names = {"bert_large", "roberta_large",
                                          "gpt2_medium"};
  constexpr int kMaxDegree = 4;

  const SweepRunner runner;
  bench::BenchReport report("ablation_degree", runner.jobs());
  report.config().Set("topology", topology.name()).Set("max_degree", kMaxDegree);

  // Cell i = (model i / kMaxDegree, degree 1 + i % kMaxDegree).
  const std::vector<Nanos> latencies = runner.Map(
      static_cast<int>(names.size()) * kMaxDegree, [&](int i) {
        const Model model = ModelZoo::ByName(names[static_cast<std::size_t>(i) / kMaxDegree]);
        const int degree = 1 + i % kMaxDegree;
        return ColdAtDegree(topology, perf, model, degree, /*dha=*/true);
      });

  std::cout << "Ablation: PT degree scaling on " << topology.name() << " ("
            << topology.num_gpus() << " GPUs, " << topology.num_switches()
            << " PCIe switches; max useful degree "
            << topology.MaxParallelDegree(0) << ")\n\n";
  Table table({"model", "degree 1 (DHA)", "degree 2 (PT+DHA)", "degree 3",
               "degree 4"});
  for (std::size_t m = 0; m < names.size(); ++m) {
    std::vector<std::string> row = {bench::PrettyModelName(names[m])};
    for (int degree = 1; degree <= kMaxDegree; ++degree) {
      const Nanos latency = latencies[m * kMaxDegree + static_cast<std::size_t>(degree - 1)];
      row.push_back(FormatDuration(latency));
      report.AddPoint()
          .Set("model", names[m])
          .Set("degree", degree)
          .Set("cold_latency_ms", ToMillis(latency));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nEach added partition removes PCIe time from the critical "
               "path but leaves partition 0's load and the execution floor; "
               "gains shrink with degree.\n";
  report.Write(&std::cerr);
  return 0;
}
