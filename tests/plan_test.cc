#include <gtest/gtest.h>

#include "src/core/plan.h"
#include "src/core/profiler.h"
#include "src/model/zoo.h"

namespace deepplan {
namespace {

ModelProfile MakeProfile(const Model& model) {
  PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;
  return Profiler(&perf, opts).Profile(model);
}

TEST(PlanTest, DefaultsToLoadSinglePartition) {
  ExecutionPlan plan("m", 5);
  EXPECT_EQ(plan.num_layers(), 5u);
  EXPECT_EQ(plan.num_partitions(), 1);
  EXPECT_EQ(plan.CountDha(), 0u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(plan.method(i), ExecMethod::kLoad);
    EXPECT_EQ(plan.partition(i), 0);
  }
}

TEST(PlanTest, ResidencySplitsByMethod) {
  const Model model = ModelZoo::BertBase();
  const ModelProfile profile = MakeProfile(model);
  ExecutionPlan plan(model.name(), model.num_layers());
  // Put the word embedding host-side.
  plan.set_method(0, ExecMethod::kDirectHostAccess);
  const std::int64_t gpu = plan.GpuResidentBytes(profile);
  const std::int64_t host = plan.HostResidentBytes(profile);
  EXPECT_EQ(gpu + host, model.total_param_bytes());
  EXPECT_EQ(host, model.layer(0).param_bytes);
}

TEST(PlanTest, ValidateAcceptsWellFormedPlan) {
  const Model model = ModelZoo::ResNet50();
  const ModelProfile profile = MakeProfile(model);
  ExecutionPlan plan(model.name(), model.num_layers());
  EXPECT_FALSE(plan.Validate(profile).has_value());
}

TEST(PlanTest, ValidateRejectsSizeMismatch) {
  const ModelProfile profile = MakeProfile(ModelZoo::ResNet50());
  ExecutionPlan plan("resnet50", 3);
  EXPECT_TRUE(plan.Validate(profile).has_value());
}

TEST(PlanTest, ValidateRejectsDhaOutsidePartitionZero) {
  const Model model = ModelZoo::BertBase();
  const ModelProfile profile = MakeProfile(model);
  ExecutionPlan plan(model.name(), model.num_layers());
  const std::size_t half = model.num_layers() / 2;
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    plan.set_partition(i, i < half ? 0 : 1);
  }
  // Find a parameterized layer in partition 1 and mark it DHA: invalid.
  for (std::size_t i = half; i < model.num_layers(); ++i) {
    if (profile.layers[i].has_params()) {
      plan.set_method(i, ExecMethod::kDirectHostAccess);
      break;
    }
  }
  EXPECT_TRUE(plan.Validate(profile).has_value());
}

TEST(PlanTest, ValidateRejectsNonContiguousPartitions) {
  const Model model = ModelZoo::ResNet50();
  const ModelProfile profile = MakeProfile(model);
  ExecutionPlan plan(model.name(), model.num_layers());
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    plan.set_partition(i, static_cast<int>(i % 2));  // interleaved: invalid
  }
  EXPECT_TRUE(plan.Validate(profile).has_value());
}

TEST(PlanTest, ValidateRejectsDhaOnParameterFreeLayer) {
  const Model model = ModelZoo::ResNet50();
  const ModelProfile profile = MakeProfile(model);
  ExecutionPlan plan(model.name(), model.num_layers());
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    if (!profile.layers[i].has_params()) {
      plan.set_method(i, ExecMethod::kDirectHostAccess);
      break;
    }
  }
  EXPECT_TRUE(plan.Validate(profile).has_value());
}

TEST(PlanTest, SerializeParseRoundTrip) {
  const Model model = ModelZoo::BertBase();
  ExecutionPlan plan(model.name(), model.num_layers());
  plan.set_method(0, ExecMethod::kDirectHostAccess);
  plan.set_method(1, ExecMethod::kDirectHostAccess);
  const std::size_t half = model.num_layers() / 2;
  for (std::size_t i = half; i < model.num_layers(); ++i) {
    plan.set_partition(i, 1);
  }
  const std::string text = plan.Serialize();
  const auto parsed = ExecutionPlan::Parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->model_name(), plan.model_name());
  EXPECT_EQ(parsed->num_layers(), plan.num_layers());
  EXPECT_EQ(parsed->num_partitions(), plan.num_partitions());
  for (std::size_t i = 0; i < plan.num_layers(); ++i) {
    EXPECT_EQ(parsed->method(i), plan.method(i)) << i;
    EXPECT_EQ(parsed->partition(i), plan.partition(i)) << i;
  }
}

TEST(PlanTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ExecutionPlan::Parse("not a plan").has_value());
  EXPECT_FALSE(ExecutionPlan::Parse("deepplan-v1 m layers=2 partitions=1\n0 load 0\n")
                   .has_value());  // truncated
  EXPECT_FALSE(
      ExecutionPlan::Parse("deepplan-v1 m layers=1 partitions=1\n0 teleport 0\n")
          .has_value());  // unknown method
}

TEST(PlanTest, ExecMethodNames) {
  EXPECT_STREQ(ExecMethodName(ExecMethod::kLoad), "load");
  EXPECT_STREQ(ExecMethodName(ExecMethod::kDirectHostAccess), "dha");
}

}  // namespace
}  // namespace deepplan
