#include <gtest/gtest.h>

#include "src/model/zoo.h"
#include "src/serving/cluster.h"
#include "src/workload/poisson.h"

namespace deepplan {
namespace {

ClusterOptions BaseOptions(RoutingPolicy routing, int servers) {
  ClusterOptions options;
  options.num_servers = servers;
  options.routing = routing;
  options.server.strategy = Strategy::kDeepPlanPtDha;
  options.server.slo = Millis(100);
  return options;
}

Trace SmallTrace(int instances, double rate, double seconds, std::uint64_t seed) {
  PoissonOptions w;
  w.rate_per_sec = rate;
  w.num_instances = instances;
  w.duration = Seconds(seconds);
  w.seed = seed;
  return GeneratePoissonTrace(w);
}

TEST(ClusterTest, AllRequestsServedAcrossBackends) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  Cluster cluster(topology, perf, BaseOptions(RoutingPolicy::kRoundRobin, 2));
  const int type = cluster.RegisterModelType(ModelZoo::BertBase());
  cluster.AddInstances(type, 40);
  const Trace trace = SmallTrace(40, 60, 5, 3);
  const ServingMetrics m = cluster.Run(trace);
  EXPECT_EQ(m.count(), trace.size());
  // Round robin splits work roughly evenly.
  const std::size_t a = cluster.server(0).metrics().count();
  const std::size_t b = cluster.server(1).metrics().count();
  EXPECT_EQ(a + b, trace.size());
  EXPECT_NEAR(static_cast<double>(a), static_cast<double>(b),
              static_cast<double>(trace.size()) * 0.02);
}

TEST(ClusterTest, AffinityRoutesInstanceToOneBackend) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  Cluster cluster(topology, perf, BaseOptions(RoutingPolicy::kInstanceAffinity, 2));
  const int type = cluster.RegisterModelType(ModelZoo::BertBase());
  cluster.AddInstances(type, 40);
  cluster.Run(SmallTrace(40, 60, 5, 4));
  for (int s = 0; s < 2; ++s) {
    for (const RequestRecord& r : cluster.server(s).metrics().records()) {
      EXPECT_EQ(r.instance % 2, s) << "instance routed off its affinity server";
    }
  }
}

TEST(ClusterTest, AffinityHasFewerColdStartsThanRoundRobinUnderPressure) {
  // With more instances than one back-end's memory, round-robin duplicates
  // each instance's residency across back-ends (both cache it), wasting
  // memory; affinity shards the instance set and stays warm longer.
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  auto run = [&](RoutingPolicy routing) {
    Cluster cluster(topology, perf, BaseOptions(routing, 2));
    const int type = cluster.RegisterModelType(ModelZoo::BertBase());
    // 200 instances: each back-end caches 124 — the affinity shard of 100
    // fits one back-end, but the full set round-robin routes at both exceeds
    // either's memory.
    cluster.AddInstances(type, 200);
    return cluster.Run(SmallTrace(200, 120, 10, 5)).ColdStartRate();
  };
  EXPECT_LT(run(RoutingPolicy::kInstanceAffinity),
            run(RoutingPolicy::kRoundRobin));
}

TEST(ClusterTest, TwoServersBeatOneOnTail) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  auto run = [&](int servers) {
    Cluster cluster(topology, perf,
                    BaseOptions(RoutingPolicy::kInstanceAffinity, servers));
    const int type = cluster.RegisterModelType(ModelZoo::BertBase());
    cluster.AddInstances(type, 200);
    return cluster.Run(SmallTrace(200, 120, 8, 6)).LatencyPercentileMs(99);
  };
  EXPECT_LT(run(2), run(1));
}

TEST(ClusterTest, LeastOutstandingBalancesLoad) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  Cluster cluster(topology, perf, BaseOptions(RoutingPolicy::kLeastOutstanding, 3));
  const int type = cluster.RegisterModelType(ModelZoo::BertBase());
  cluster.AddInstances(type, 60);
  const Trace trace = SmallTrace(60, 90, 5, 7);
  cluster.Run(trace);
  std::size_t total = 0;
  for (int s = 0; s < 3; ++s) {
    const std::size_t n = cluster.server(s).metrics().count();
    EXPECT_GT(n, trace.size() / 6);  // no starved back-end
    total += n;
  }
  EXPECT_EQ(total, trace.size());
}

TEST(ClusterTest, RoutingPolicyNames) {
  EXPECT_STREQ(RoutingPolicyName(RoutingPolicy::kRoundRobin), "RoundRobin");
  EXPECT_STREQ(RoutingPolicyName(RoutingPolicy::kInstanceAffinity),
               "InstanceAffinity");
  EXPECT_STREQ(RoutingPolicyName(RoutingPolicy::kLeastOutstanding),
               "LeastOutstanding");
}

TEST(ClusterTest, TelemetryRecordsEveryRoutingDecision) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  Cluster cluster(topology, perf, BaseOptions(RoutingPolicy::kRoundRobin, 2));
  const int type = cluster.RegisterModelType(ModelZoo::BertBase());
  cluster.AddInstances(type, 40);

  TraceRecorder recorder(/*enabled=*/true);
  MetricsRegistry registry;
  cluster.EnableTelemetry(&recorder, &registry);

  const Trace trace = SmallTrace(40, 60, 5, 3);
  const ServingMetrics m = cluster.Run(trace);
  EXPECT_EQ(m.count(), trace.size());

  // One instant event on the router track per request.
  std::size_t instants = 0;
  for (const TraceEvent& e : recorder.document().events) {
    if (e.phase == TracePhase::kInstant && e.track == "router") {
      ++instants;
    }
  }
  EXPECT_EQ(instants, trace.size());

  // Per-back-end routed counters sum to the request count and match where
  // the requests actually landed.
  std::int64_t routed = 0;
  for (int s = 0; s < cluster.num_servers(); ++s) {
    const std::int64_t n =
        registry.counter("cluster.routed.server" + std::to_string(s));
    EXPECT_EQ(n, static_cast<std::int64_t>(cluster.server(s).metrics().count()));
    routed += n;
  }
  EXPECT_EQ(routed, static_cast<std::int64_t>(trace.size()));

  // Router plus one process per back-end, all named in the export.
  EXPECT_EQ(recorder.document().process_names.size(),
            1u + static_cast<std::size_t>(cluster.num_servers()));
  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"router\""), std::string::npos);
  EXPECT_NE(json.find("\"server0\""), std::string::npos);
  EXPECT_NE(json.find("\"server1\""), std::string::npos);
}

}  // namespace
}  // namespace deepplan
