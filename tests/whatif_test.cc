// Tests for the what-if replay engine: experiment-spec parsing, bit-exact
// identity replay on engine- and server-recorded journals, closed-form
// scaling on hand-built journals, re-derived contention against the real
// fabric, prediction-vs-re-simulation validation (the fig16 acceptance bar),
// report determinism across sweep thread counts, and the whatif-report
// schema linter.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/check/trace_lint.h"
#include "src/obs/causal_graph.h"
#include "src/obs/whatif/whatif.h"
#include "src/obs/whatif/whatif_report.h"
#include "src/sim/fabric.h"
#include "src/sim/simulator.h"

namespace deepplan {
namespace {

using check::LintWhatIfReport;
using check::TraceLintResult;

WhatIfExperiment Parse(const std::string& spec) {
  WhatIfExperiment exp;
  std::string error;
  EXPECT_TRUE(ParseWhatIfExperiment(spec, &exp, &error)) << spec << ": " << error;
  return exp;
}

// ------------------------------------------------ spec parsing

TEST(WhatIfParseTest, AcceptsSingleClauses) {
  const WhatIfExperiment pcie = Parse("pcie=2");
  EXPECT_DOUBLE_EQ(pcie.pcie_scale, 2.0);
  EXPECT_DOUBLE_EQ(pcie.nvlink_scale, 1.0);
  EXPECT_DOUBLE_EQ(pcie.exec_scale, 1.0);
  EXPECT_FALSE(pcie.zero_contention);
  EXPECT_FALSE(pcie.remove_evictions);
  EXPECT_EQ(pcie.name, "pcie=2");

  EXPECT_DOUBLE_EQ(Parse("nvlink=1.5").nvlink_scale, 1.5);
  EXPECT_DOUBLE_EQ(Parse("exec=4").exec_scale, 4.0);
  EXPECT_TRUE(Parse("nocontention").zero_contention);
  EXPECT_TRUE(Parse("noevict").remove_evictions);
  EXPECT_TRUE(Parse("baseline").IsIdentity());
  EXPECT_EQ(Parse("baseline").name, "baseline");
}

TEST(WhatIfParseTest, CanonicalizesClauseOrderAndDuplicates) {
  // Clauses in any order canonicalize to the fixed order; the last duplicate
  // wins.
  const WhatIfExperiment exp = Parse("noevict,exec=3,pcie=2,nocontention");
  EXPECT_EQ(exp.name, "pcie=2,exec=3,nocontention,noevict");
  EXPECT_DOUBLE_EQ(Parse("pcie=2,pcie=3").pcie_scale, 3.0);
  EXPECT_EQ(Parse("pcie=2,pcie=3").name, "pcie=3");
  EXPECT_DOUBLE_EQ(Parse("pcie=0.5").pcie_scale, 0.5);  // slowdowns allowed
}

TEST(WhatIfParseTest, RejectsMalformedSpecs) {
  WhatIfExperiment exp;
  std::string error;
  for (const char* bad : {"", "pcie=0", "pcie=-1", "pcie=abc", "pcie=2x",
                          "pcie=", "warp=2", "pcie=2,,noevict", "pcie=inf",
                          "pcie=nan", "nocontention=1"}) {
    error.clear();
    EXPECT_FALSE(ParseWhatIfExperiment(bad, &exp, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(WhatIfParseTest, DefaultSweepCoversEveryKnob) {
  const std::vector<WhatIfExperiment> defaults = DefaultWhatIfExperiments();
  ASSERT_GE(defaults.size(), 5u);
  bool pcie = false, nvlink = false, exec = false, contention = false,
       evict = false;
  for (const WhatIfExperiment& exp : defaults) {
    pcie |= exp.pcie_scale != 1.0;
    nvlink |= exp.nvlink_scale != 1.0;
    exec |= exp.exec_scale != 1.0;
    contention |= exp.zero_contention;
    evict |= exp.remove_evictions;
  }
  EXPECT_TRUE(pcie && nvlink && exec && contention && evict);
}

// ------------------------------------------------ closed-form hand journals

// One request, one PCIe transfer: 1 MB over a 1 GB/s lane (1 ms solo, no
// contention recorded), then a 100 ns exec.
CausalGraph SingleTransferGraph() {
  CausalGraph graph(/*enabled=*/true);
  const int process = graph.RegisterProcess("fixture");
  const int req = graph.BeginRequest(process, 0, /*arrival=*/0);
  graph.MarkCold(req);
  const CpNodeId load =
      graph.AddNode(req, CpKind::kPcie, "load", "pcie/gpu0", 0, 1'000'000,
                    /*bytes=*/1'000'000, /*solo=*/1'000'000);
  graph.SetNodePath(load, {{"pcie/gpu0", 1e9}});
  const CpNodeId exec = graph.AddNode(req, CpKind::kExec, "exec", "exec/gpu0",
                                      1'000'000, 1'000'100);
  graph.AddEdge(graph.arrival_node(req), load);
  graph.AddEdge(load, exec);
  graph.EndRequest(req, 1'000'100, exec);
  return graph;
}

TEST(WhatIfReplayTest, PcieScaleHasClosedFormOnSingleTransfer) {
  const CausalGraph graph = SingleTransferGraph();
  WhatIfExperiment identity;
  identity.name = "baseline";
  EXPECT_EQ(ReplayWhatIf(graph, identity).latency[0], 1'000'100);
  // Twice the lane speed halves the transfer, leaves the exec alone.
  EXPECT_EQ(ReplayWhatIf(graph, Parse("pcie=2")).latency[0], 500'100);
  // Half the lane speed doubles it.
  EXPECT_EQ(ReplayWhatIf(graph, Parse("pcie=0.5")).latency[0], 2'000'100);
  // The other knobs must not touch a PCIe transfer.
  EXPECT_EQ(ReplayWhatIf(graph, Parse("nvlink=2")).latency[0], 1'000'100);
  EXPECT_EQ(ReplayWhatIf(graph, Parse("noevict")).latency[0], 1'000'100);
  // exec=2 halves only the 100 ns exec node.
  EXPECT_EQ(ReplayWhatIf(graph, Parse("exec=2")).latency[0], 1'000'050);
}

TEST(WhatIfReplayTest, NvlinkKnobTargetsOnlyNvlinkLinks) {
  CausalGraph graph(/*enabled=*/true);
  const int process = graph.RegisterProcess("fixture");
  const int req = graph.BeginRequest(process, 0, 0);
  const CpNodeId migrate =
      graph.AddNode(req, CpKind::kNvlink, "migrate", "nvlink/0-1", 0, 400'000,
                    /*bytes=*/1'000'000, /*solo=*/400'000);
  graph.SetNodePath(migrate, {{"nvlink/0-1", 2.5e9}});
  graph.AddEdge(graph.arrival_node(req), migrate);
  graph.EndRequest(req, 400'000, migrate);

  EXPECT_EQ(ReplayWhatIf(graph, Parse("baseline")).latency[0], 400'000);
  EXPECT_EQ(ReplayWhatIf(graph, Parse("nvlink=2")).latency[0], 200'000);
  EXPECT_EQ(ReplayWhatIf(graph, Parse("pcie=2")).latency[0], 400'000);
}

TEST(WhatIfReplayTest, NoEvictDropsEvictionTimeFromTheChain) {
  CausalGraph graph(/*enabled=*/true);
  const int process = graph.RegisterProcess("fixture");
  const int req = graph.BeginRequest(process, 0, 0);
  const CpNodeId evict =
      graph.AddNode(req, CpKind::kEvict, "evict", "gpu0", 0, 200'000);
  const CpNodeId load =
      graph.AddNode(req, CpKind::kPcie, "load", "pcie/gpu0", 200'000,
                    1'200'000, /*bytes=*/1'000'000, /*solo=*/1'000'000);
  graph.SetNodePath(load, {{"pcie/gpu0", 1e9}});
  graph.AddEdge(graph.arrival_node(req), evict);
  graph.AddEdge(evict, load);
  graph.EndRequest(req, 1'200'000, load);

  EXPECT_EQ(ReplayWhatIf(graph, Parse("baseline")).latency[0], 1'200'000);
  EXPECT_EQ(ReplayWhatIf(graph, Parse("noevict")).latency[0], 1'000'000);
  EXPECT_EQ(ReplayWhatIf(graph, Parse("noevict,pcie=2")).latency[0], 500'000);
}

TEST(WhatIfReplayTest, DhaShareOfExecScalesWithPcie) {
  // A 1 ms exec node that spent 600 us streaming parameters over PCIe
  // (direct-host-access): pcie=2 halves only that slice, exec=2 halves the
  // whole node (the DHA slice's stream rides the faster SMs too).
  CausalGraph graph(/*enabled=*/true);
  const int process = graph.RegisterProcess("fixture");
  const int req = graph.BeginRequest(process, 0, 0);
  const CpNodeId exec = graph.AddNode(req, CpKind::kExec, "exec(DHA)",
                                      "exec/gpu0", 0, 1'000'000);
  graph.SetNodeDhaPcie(exec, 600'000);
  graph.AddEdge(graph.arrival_node(req), exec);
  graph.EndRequest(req, 1'000'000, exec);

  EXPECT_EQ(ReplayWhatIf(graph, Parse("baseline")).latency[0], 1'000'000);
  EXPECT_EQ(ReplayWhatIf(graph, Parse("pcie=2")).latency[0], 700'000);
  EXPECT_EQ(ReplayWhatIf(graph, Parse("exec=2")).latency[0], 500'000);
  EXPECT_EQ(ReplayWhatIf(graph, Parse("pcie=2,exec=2")).latency[0], 350'000);
  // The DHA slice charges the pcie knob's time account.
  const WhatIfReplay identity = ReplayWhatIf(graph, Parse("baseline"));
  EXPECT_EQ(identity.pcie_time[0], 600'000);
  EXPECT_EQ(identity.exec_time[0], 1'000'000);
}

// ------------------------------------------------ contention vs the fabric

// Two equal transfers share one link under max-min fair sharing; the journal
// records the *real* fabric's contended timings. The identity replay rebuilds
// the fabric from the recorded hops and must land both requests exactly;
// nocontention restores solo speed; pcie=2 halves the contended duration
// (same overlap, twice the capacity).
TEST(WhatIfReplayTest, RederivesContentionExactlyFromRebuiltFabric) {
  Simulator sim;
  Fabric fabric(&sim);
  const LinkId link = fabric.AddLink("uplink/sw0", 1e9);
  const std::int64_t bytes = 1'000'000;
  Nanos elapsed_a = -1, elapsed_b = -1;
  fabric.Start({link}, bytes, 0, [&elapsed_a](Nanos e) { elapsed_a = e; });
  fabric.Start({link}, bytes, 0, [&elapsed_b](Nanos e) { elapsed_b = e; });
  sim.Run();
  const Nanos solo = fabric.SoloDuration({link}, bytes, 0);
  ASSERT_EQ(solo, 1'000'000);
  ASSERT_GE(elapsed_a, 2 * solo - 2);  // genuinely contended

  CausalGraph graph(/*enabled=*/true);
  const int process = graph.RegisterProcess("contention");
  const std::vector<Nanos> elapsed = {elapsed_a, elapsed_b};
  for (int i = 0; i < 2; ++i) {
    const int req = graph.BeginRequest(process, i, 0);
    const Nanos end = elapsed[static_cast<std::size_t>(i)];
    const CpNodeId load = graph.AddNode(req, CpKind::kPcie, "load",
                                        "uplink/sw0", 0, end, bytes, solo);
    graph.SetNodePath(load, {{"uplink/sw0", 1e9}});
    // Distinct terminal resources so the two requests replay concurrently
    // (same GPU would serialize them under the FIFO dispatch rule).
    const CpNodeId exec =
        graph.AddNode(req, CpKind::kExec, "exec",
                      i == 0 ? "exec/gpu0" : "exec/gpu1", end, end + 100);
    graph.AddEdge(graph.arrival_node(req), load);
    graph.AddEdge(load, exec);
    graph.EndRequest(req, end + 100, exec);
  }

  const WhatIfReport report =
      BuildWhatIfReport(graph, {Parse("nocontention"), Parse("pcie=2")});
  EXPECT_TRUE(report.baseline_matches_journal);
  ASSERT_EQ(report.outcomes.size(), 2u);
  for (const WhatIfPerRequest& row : report.outcomes[0].per_request) {
    EXPECT_EQ(row.predicted_ns, solo + 100);  // contention-free
  }
  for (std::size_t i = 0; i < 2; ++i) {
    // Twice the capacity with the same overlap pattern: half the duration
    // (the fabric rounds completions up to whole nanoseconds, so allow 1 ns).
    const WhatIfPerRequest& row = report.outcomes[1].per_request[i];
    EXPECT_NEAR(static_cast<double>(row.predicted_ns - 100),
                static_cast<double>(elapsed[i]) / 2, 1.0);
  }
}

// ------------------------------------------------ engine-recorded journals

TEST(WhatIfReplayTest, IdentityReplayIsBitExactForEveryStrategy) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const Model model = ModelZoo::BertBase();
  for (const Strategy strategy :
       {Strategy::kBaseline, Strategy::kPipeSwitch, Strategy::kDeepPlanDha,
        Strategy::kDeepPlanPtDha}) {
    CausalGraph graph(/*enabled=*/true);
    const int process = graph.RegisterProcess(StrategyName(strategy));
    const bench::ColdMeasurement m = bench::RunColdWithProfile(
        topology, perf, model, strategy, bench::ExactProfile(perf, model),
        /*batch=*/1, &graph, process);
    WhatIfExperiment identity;
    identity.name = "baseline";
    const WhatIfReplay replay = ReplayWhatIf(graph, identity);
    ASSERT_EQ(replay.latency.size(), 1u) << StrategyName(strategy);
    EXPECT_EQ(replay.latency[0], m.result.latency) << StrategyName(strategy);
  }
}

// The fig16 acceptance bar, as a unit test: journal cold starts at PCIe 3.0
// bandwidth, predict PCIe 4.0 from the journal alone, re-simulate on the
// real PCIe 4.0 hardware, and demand every per-request prediction within 1%.
TEST(WhatIfReplayTest, PcieUpgradePredictionMatchesResimulationWithinOnePercent) {
  const Topology gen4 = Topology::A5000Box();
  const PerfModel perf4(gen4.gpu(), gen4.pcie());
  const Topology gen3 =
      gen4.WithPcieBandwidth(PcieSpec::Gen3().effective_bw_bytes_per_sec);
  const PerfModel perf3(gen3.gpu(), gen3.pcie());
  const double speedup = gen4.pcie().effective_bw_bytes_per_sec /
                         gen3.pcie().effective_bw_bytes_per_sec;

  CausalGraph graph(/*enabled=*/true);
  std::vector<Nanos> truth;
  for (const Model& model : {ModelZoo::ResNet50(), ModelZoo::BertBase()}) {
    // Same plan in both runs: the question is "same deployment, faster
    // links", so the plan stays derived from the PCIe 3.0 profile.
    const ModelProfile profile3 = bench::ExactProfile(perf3, model);
    for (const Strategy s :
         {Strategy::kBaseline, Strategy::kPipeSwitch, Strategy::kDeepPlanDha,
          Strategy::kDeepPlanPtDha}) {
      const int process =
          graph.RegisterProcess(model.name() + "/" + StrategyName(s));
      bench::RunColdWithProfile(gen3, perf3, model, s, profile3, 1, &graph,
                                process);
      truth.push_back(
          bench::RunColdWithProfile(gen4, perf4, model, s, profile3)
              .result.latency);
    }
  }

  WhatIfExperiment exp;
  exp.pcie_scale = speedup;
  exp.name = "pcie=" + Json::Num(speedup);
  const WhatIfReport report = BuildWhatIfReport(graph, {exp});
  EXPECT_TRUE(report.baseline_matches_journal);
  ASSERT_EQ(report.outcomes.size(), 1u);
  ASSERT_EQ(report.outcomes[0].per_request.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const WhatIfPerRequest& row = report.outcomes[0].per_request[i];
    const double err =
        std::abs(static_cast<double>(row.predicted_ns - truth[i])) /
        static_cast<double>(truth[i]);
    EXPECT_LE(err, 0.01) << "request " << i;
  }
}

// ------------------------------------------------ served workload journal

TEST(WhatIfReplayTest, ServedWorkloadIdentityReplayIsExact) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  ServerOptions options;
  options.strategy = Strategy::kDeepPlanDha;  // exercises warm DHA + evictions
  Server server(topology, perf, options);
  const int type = server.RegisterModelType(ModelZoo::BertBase());
  server.AddInstances(type, 120);  // past capacity: forces cold starts

  CausalGraph graph(/*enabled=*/true);
  server.set_causal(&graph, graph.RegisterProcess("serve"));

  PoissonOptions w;
  w.rate_per_sec = 150.0;
  w.num_instances = 120;
  w.duration = Seconds(2.0);
  w.seed = 7;
  const ServingMetrics metrics = server.Run(GeneratePoissonTrace(w));
  ASSERT_GT(metrics.count(), 0u);

  const WhatIfReport report =
      BuildWhatIfReport(graph, DefaultWhatIfExperiments());
  // Queueing, evictions, warm DHA, shared links: the identity replay must
  // still land every request on its recorded completion.
  EXPECT_TRUE(report.baseline_matches_journal);
  EXPECT_EQ(static_cast<std::size_t>(report.requests), metrics.count());
  EXPECT_EQ(report.skipped_requests, 0);
  for (const WhatIfOutcome& outcome : report.outcomes) {
    EXPECT_EQ(outcome.per_request.size(), metrics.count()) << outcome.experiment.name;
  }
  ASSERT_FALSE(report.sensitivity.empty());
  const TraceLintResult lint = LintWhatIfReport(WhatIfReportJson(report));
  EXPECT_TRUE(lint.ok()) << (lint.errors.empty() ? "" : lint.errors[0]);
}

// ------------------------------------------------ determinism across jobs

TEST(WhatIfReplayTest, ReportJsonIsByteIdenticalAcrossSweepJobs) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const std::vector<Model> models = {ModelZoo::BertBase(), ModelZoo::Gpt2(),
                                     ModelZoo::ResNet50(),
                                     ModelZoo::RobertaBase()};
  auto run = [&](int jobs) {
    const SweepRunner runner(jobs);
    std::vector<CausalGraph> graphs =
        runner.Map(static_cast<int>(models.size()), [&](int i) {
          CausalGraph graph(/*enabled=*/true);
          const Model& model = models[static_cast<std::size_t>(i)];
          const int process = graph.RegisterProcess(model.name());
          bench::RunColdWithProfile(topology, perf, model,
                                    Strategy::kPipeSwitch,
                                    bench::ExactProfile(perf, model),
                                    /*batch=*/1, &graph, process);
          return graph;
        });
    CausalGraph merged(/*enabled=*/true);
    for (CausalGraph& graph : graphs) {
      merged.Adopt(std::move(graph));
    }
    return WhatIfReportJson(BuildWhatIfReport(merged, DefaultWhatIfExperiments()));
  };
  const std::string serial = run(1);
  const std::string parallel = run(8);
  EXPECT_EQ(serial, parallel);
}

// ------------------------------------------------ schema linter

TEST(WhatIfLintTest, AcceptsGeneratedReports) {
  const WhatIfReport report =
      BuildWhatIfReport(SingleTransferGraph(), DefaultWhatIfExperiments());
  EXPECT_TRUE(report.baseline_matches_journal);
  const std::string json = WhatIfReportJson(report);
  const TraceLintResult lint = LintWhatIfReport(json);
  EXPECT_TRUE(lint.ok()) << (lint.errors.empty() ? "" : lint.errors[0]);
}

TEST(WhatIfLintTest, RejectsNonReportDocuments) {
  EXPECT_FALSE(LintWhatIfReport("{}").ok());
  EXPECT_FALSE(LintWhatIfReport("[1,2,3]").ok());
  EXPECT_FALSE(LintWhatIfReport("garbage").ok());
  EXPECT_FALSE(LintWhatIfReport("{\"whatif_report\":[]}").ok());
}

TEST(WhatIfLintTest, FlagsBaselineMismatchAndBogusKnobs) {
  const std::string json = WhatIfReportJson(
      BuildWhatIfReport(SingleTransferGraph(), DefaultWhatIfExperiments()));
  // A report whose identity replay failed must never lint clean: its
  // predictions are untrustworthy by the engine's own admission.
  std::string mismatched = json;
  const std::size_t flag = mismatched.find("\"baseline_matches_journal\":true");
  ASSERT_NE(flag, std::string::npos);
  mismatched.replace(flag, 32, "\"baseline_matches_journal\":false");
  EXPECT_FALSE(LintWhatIfReport(mismatched).ok());

  // Sensitivity rows must name a real knob.
  std::string bogus = json;
  const std::size_t knob = bogus.find("\"knob\":\"pcie\"");
  ASSERT_NE(knob, std::string::npos);
  bogus.replace(knob, 13, "\"knob\":\"warp\"");
  EXPECT_FALSE(LintWhatIfReport(bogus).ok());
}

}  // namespace
}  // namespace deepplan
