#include <gtest/gtest.h>

#include "src/model/zoo.h"
#include "src/serving/instance.h"
#include "src/serving/metrics.h"
#include "src/serving/server.h"
#include "src/workload/poisson.h"

namespace deepplan {
namespace {

// ---------------------------------------------------------------- instances

TEST(InstanceManagerTest, AddAndAccounting) {
  InstanceManager mgr(2, 1000);
  const int a = mgr.AddInstance(0, 0, 400);
  const int b = mgr.AddInstance(0, 0, 400);
  EXPECT_EQ(mgr.num_instances(), 2);
  std::vector<int> evicted;
  EXPECT_TRUE(mgr.MakeResident(a, 1, &evicted));
  EXPECT_TRUE(mgr.MakeResident(b, 2, &evicted));
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(mgr.used_bytes(0), 800);
  EXPECT_EQ(mgr.ResidentCount(), 2);
}

TEST(InstanceManagerTest, EvictsLeastRecentlyUsed) {
  InstanceManager mgr(1, 1000);
  const int a = mgr.AddInstance(0, 0, 400);
  const int b = mgr.AddInstance(0, 0, 400);
  const int c = mgr.AddInstance(0, 0, 400);
  std::vector<int> evicted;
  ASSERT_TRUE(mgr.MakeResident(a, 1, &evicted));
  ASSERT_TRUE(mgr.MakeResident(b, 2, &evicted));
  // Touch a so b becomes LRU.
  mgr.MarkUsed(a, 3);
  ASSERT_TRUE(mgr.MakeResident(c, 4, &evicted));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], b);
  EXPECT_TRUE(mgr.instance(a).resident);
  EXPECT_FALSE(mgr.instance(b).resident);
}

TEST(InstanceManagerTest, BusyInstancesAreNotEvicted) {
  InstanceManager mgr(1, 1000);
  const int a = mgr.AddInstance(0, 0, 400);
  const int b = mgr.AddInstance(0, 0, 400);
  const int c = mgr.AddInstance(0, 0, 400);
  std::vector<int> evicted;
  ASSERT_TRUE(mgr.MakeResident(a, 1, &evicted));
  ASSERT_TRUE(mgr.MakeResident(b, 2, &evicted));
  mgr.SetBusy(a, true);
  mgr.SetBusy(b, true);
  // Nothing evictable: c cannot fit.
  EXPECT_FALSE(mgr.MakeResident(c, 3, &evicted));
  mgr.SetBusy(a, false);
  EXPECT_TRUE(mgr.MakeResident(c, 4, &evicted));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], a);
}

TEST(InstanceManagerTest, ResidentInstanceJustRefreshes) {
  InstanceManager mgr(1, 1000);
  const int a = mgr.AddInstance(0, 0, 400);
  std::vector<int> evicted;
  ASSERT_TRUE(mgr.MakeResident(a, 1, &evicted));
  ASSERT_TRUE(mgr.MakeResident(a, 5, &evicted));
  EXPECT_EQ(mgr.used_bytes(0), 400);  // not double-counted
  EXPECT_EQ(mgr.instance(a).last_used, 5);
}

TEST(InstanceManagerTest, PerGpuIsolation) {
  InstanceManager mgr(2, 500);
  const int a = mgr.AddInstance(0, 0, 400);
  const int b = mgr.AddInstance(0, 1, 400);
  std::vector<int> evicted;
  ASSERT_TRUE(mgr.MakeResident(a, 1, &evicted));
  ASSERT_TRUE(mgr.MakeResident(b, 2, &evicted));
  EXPECT_TRUE(evicted.empty());  // separate GPUs, no eviction
  EXPECT_EQ(mgr.used_bytes(0), 400);
  EXPECT_EQ(mgr.used_bytes(1), 400);
}

// ---------------------------------------------------------------- metrics

TEST(MetricsTest, PercentilesGoodputColdRate) {
  ServingMetrics m;
  for (int i = 1; i <= 100; ++i) {
    RequestRecord r;
    r.arrival = 0;
    r.start = 0;
    r.completion = Millis(i);  // latencies 1..100 ms
    r.cold = i % 4 == 0;
    m.Record(r);
  }
  EXPECT_NEAR(m.LatencyPercentileMs(99), 99.0, 1.1);
  EXPECT_NEAR(m.Goodput(Millis(50)), 0.5, 0.01);
  EXPECT_NEAR(m.ColdStartRate(), 0.25, 0.001);
  EXPECT_EQ(m.ColdStartCount(), 25u);
  EXPECT_NEAR(m.MeanLatencyMs(), 50.5, 0.01);
}

TEST(MetricsTest, PerMinuteSeries) {
  ServingMetrics m;
  for (int minute = 0; minute < 3; ++minute) {
    for (int i = 0; i < 10; ++i) {
      RequestRecord r;
      r.arrival = Seconds(60 * minute + i);
      r.start = r.arrival;
      r.completion = r.arrival + Millis(minute == 1 ? 200 : 20);
      r.cold = minute == 1;
      m.Record(r);
    }
  }
  const MinuteSeries s = m.PerMinute(Millis(100));
  ASSERT_EQ(s.requests.size(), 3u);
  EXPECT_EQ(s.requests[0], 10u);
  EXPECT_DOUBLE_EQ(s.goodput[0], 1.0);
  EXPECT_DOUBLE_EQ(s.goodput[1], 0.0);
  EXPECT_EQ(s.cold_starts[1], 10u);
  EXPECT_GT(s.p99_ms[1], s.p99_ms[0]);
}

// ---------------------------------------------------------------- server

class ServerTest : public ::testing::Test {
 protected:
  static ServerOptions BaseOptions(Strategy strategy) {
    ServerOptions options;
    options.strategy = strategy;
    options.slo = Millis(100);
    return options;
  }
};

TEST_F(ServerTest, WarmOnlyWorkloadHasNoColdStarts) {
  const Topology topo = Topology::P3_8xlarge();
  const PerfModel perf(topo.gpu(), topo.pcie());
  Server server(topo, perf, BaseOptions(Strategy::kPipeSwitch));
  const int type = server.RegisterModelType(ModelZoo::BertBase());
  server.AddInstances(type, 8);  // fits easily: everything stays resident

  PoissonOptions w;
  w.rate_per_sec = 40;
  w.num_instances = 8;
  w.duration = Seconds(5);
  const ServingMetrics m = server.Run(GeneratePoissonTrace(w));
  EXPECT_GT(m.count(), 100u);
  EXPECT_EQ(m.ColdStartCount(), 0u);
  EXPECT_NEAR(m.Goodput(Millis(100)), 1.0, 0.001);
  // Warm latency ~10 ms; p99 includes mild queueing.
  EXPECT_LT(m.LatencyPercentileMs(99), 60.0);
}

TEST_F(ServerTest, OverCapacityTriggersColdStartsAndEviction) {
  const Topology topo = Topology::P3_8xlarge();
  const PerfModel perf(topo.gpu(), topo.pcie());
  ServerOptions options = BaseOptions(Strategy::kPipeSwitch);
  // Shrink GPU memory so only ~4 instances fit per GPU.
  options.usable_bytes_per_gpu = 2LL * 1024 * 1024 * 1024;
  Server server(topo, perf, options);
  const int type = server.RegisterModelType(ModelZoo::BertBase());
  server.AddInstances(type, 40);  // 10 per GPU home, only ~4 fit

  EXPECT_LT(server.WarmCapacity(), 40);
  PoissonOptions w;
  w.rate_per_sec = 60;
  w.num_instances = 40;
  w.duration = Seconds(5);
  const ServingMetrics m = server.Run(GeneratePoissonTrace(w));
  EXPECT_GT(m.ColdStartCount(), 0u);
  EXPECT_GT(m.LatencyPercentileMs(99), 30.0);
}

TEST_F(ServerTest, DeepPlanInstancesHaveSmallerFootprint) {
  // Figure 13's capacity effect: DHA layers stay host-side, so more DeepPlan
  // instances fit in the same GPU memory.
  const Topology topo = Topology::P3_8xlarge();
  const PerfModel perf(topo.gpu(), topo.pcie());

  Server pipeswitch(topo, perf, BaseOptions(Strategy::kPipeSwitch));
  const int t1 = pipeswitch.RegisterModelType(ModelZoo::BertBase());
  pipeswitch.AddInstances(t1, 200);

  Server deepplan(topo, perf, BaseOptions(Strategy::kDeepPlanPtDha));
  const int t2 = deepplan.RegisterModelType(ModelZoo::BertBase());
  deepplan.AddInstances(t2, 200);

  // Warmup happens inside Run; use a trivial trace.
  PoissonOptions w;
  w.rate_per_sec = 1;
  w.num_instances = 200;
  w.duration = Seconds(1);
  pipeswitch.Run(GeneratePoissonTrace(w));
  deepplan.Run(GeneratePoissonTrace(w));
  EXPECT_GT(deepplan.WarmCapacity(), pipeswitch.WarmCapacity());
  // Paper: 100 vs 124 on 4x16GB with 417 MiB models.
  EXPECT_NEAR(pipeswitch.WarmCapacity(), 100, 8);
  EXPECT_NEAR(deepplan.WarmCapacity(), 124, 10);
}

TEST_F(ServerTest, DeepPlanTailBeatsPipeSwitchUnderChurn) {
  // Over-committed concurrency: DeepPlan's cheaper cold starts and higher
  // capacity must show up as lower p99 and higher goodput.
  const Topology topo = Topology::P3_8xlarge();
  const PerfModel perf(topo.gpu(), topo.pcie());
  auto run = [&](Strategy strategy) {
    Server server(topo, perf, BaseOptions(strategy));
    const int type = server.RegisterModelType(ModelZoo::BertBase());
    server.AddInstances(type, 140);
    PoissonOptions w;
    w.rate_per_sec = 100;
    w.num_instances = 140;
    w.duration = Seconds(10);
    w.seed = 3;
    return server.Run(GeneratePoissonTrace(w));
  };
  ServingMetrics ps = run(Strategy::kPipeSwitch);
  ServingMetrics dp = run(Strategy::kDeepPlanPtDha);
  EXPECT_LT(dp.LatencyPercentileMs(99), ps.LatencyPercentileMs(99));
  EXPECT_GE(dp.Goodput(Millis(100)), ps.Goodput(Millis(100)));
}

TEST_F(ServerTest, MixedModelTypes) {
  const Topology topo = Topology::P3_8xlarge();
  const PerfModel perf(topo.gpu(), topo.pcie());
  Server server(topo, perf, BaseOptions(Strategy::kDeepPlanDha));
  const int bert = server.RegisterModelType(ModelZoo::BertBase());
  const int roberta = server.RegisterModelType(ModelZoo::RobertaBase());
  const int gpt2 = server.RegisterModelType(ModelZoo::Gpt2());
  server.AddInstances(bert, 4);
  server.AddInstances(roberta, 4);
  server.AddInstances(gpt2, 1);
  EXPECT_EQ(server.num_instances(), 9);
  PoissonOptions w;
  w.rate_per_sec = 30;
  w.num_instances = 9;
  w.duration = Seconds(5);
  const ServingMetrics m = server.Run(GeneratePoissonTrace(w));
  EXPECT_GT(m.count(), 50u);
  EXPECT_GT(m.Goodput(Millis(100)), 0.9);
}

// ---------------------------------------------------------------- telemetry

TEST_F(ServerTest, TelemetryCountersMatchServingMetrics) {
  const Topology topo = Topology::P3_8xlarge();
  const PerfModel perf(topo.gpu(), topo.pcie());
  ServerOptions options = BaseOptions(Strategy::kDeepPlanPtDha);
  options.usable_bytes_per_gpu = 2LL * 1024 * 1024 * 1024;  // force churn
  Server server(topo, perf, options);
  const int type = server.RegisterModelType(ModelZoo::BertBase());
  server.AddInstances(type, 40);

  TraceRecorder recorder(/*enabled=*/true);
  MetricsRegistry registry;
  server.set_telemetry(&recorder, &registry, recorder.RegisterProcess("server"));

  PoissonOptions w;
  w.rate_per_sec = 60;
  w.num_instances = 40;
  w.duration = Seconds(5);
  const ServingMetrics m = server.Run(GeneratePoissonTrace(w));
  ASSERT_GT(m.ColdStartCount(), 0u);
  ASSERT_GT(m.EvictionCount(), 0u);

  // The registry's counters are the live view of what ServingMetrics records.
  EXPECT_EQ(registry.counter("server.requests"),
            static_cast<std::int64_t>(m.count()));
  EXPECT_EQ(registry.counter("server.cold_starts"),
            static_cast<std::int64_t>(m.ColdStartCount()));
  EXPECT_EQ(registry.counter("server.evictions"),
            static_cast<std::int64_t>(m.EvictionCount()));
  EXPECT_EQ(registry.counter("server.warm_hits"),
            static_cast<std::int64_t>(m.count() - m.ColdStartCount()));
  EXPECT_EQ(registry.histogram("server.latency_ms").count, m.count());

  // The recorder saw the cold-start phase decomposition and queue depths.
  EXPECT_FALSE(recorder.empty());
  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("coldstart/gpu"), std::string::npos);
  EXPECT_NE(json.find("\"transfer i"), std::string::npos);
  EXPECT_NE(json.find("queue/gpu"), std::string::npos);
  EXPECT_NE(json.find("bw/"), std::string::npos);
}

TEST_F(ServerTest, LatencyBreakdownComponentsTileTotal) {
  const Topology topo = Topology::P3_8xlarge();
  const PerfModel perf(topo.gpu(), topo.pcie());
  ServerOptions options = BaseOptions(Strategy::kDeepPlanPtDha);
  options.usable_bytes_per_gpu = 2LL * 1024 * 1024 * 1024;
  Server server(topo, perf, options);
  const int type = server.RegisterModelType(ModelZoo::BertBase());
  server.AddInstances(type, 40);
  PoissonOptions w;
  w.rate_per_sec = 60;
  w.num_instances = 40;
  w.duration = Seconds(5);
  const ServingMetrics m = server.Run(GeneratePoissonTrace(w));
  ASSERT_GT(m.ColdStartCount(), 0u);
  const LatencyBreakdown b = m.Breakdown();
  // The decomposition is additive per request, so it is additive in the mean.
  EXPECT_NEAR(b.mean_queue_ms + b.mean_cold_ms + b.mean_exec_ms, b.mean_total_ms,
              1e-6);
  EXPECT_GT(b.mean_cold_ms, 0.0);
  EXPECT_GT(b.mean_exec_ms, 0.0);
  EXPECT_GE(b.p99_total_ms, b.p99_exec_ms);
}

}  // namespace
}  // namespace deepplan
