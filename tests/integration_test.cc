// End-to-end integration: the full DeepPlan workflow (profile -> plan ->
// serialize -> deploy -> serve) across modules, plus the future-work
// scenarios of Section 7 (oversized models, sparse MoE).
#include <gtest/gtest.h>

#include "src/deepplan.h"

namespace deepplan {
namespace {

TEST(IntegrationTest, FullWorkflowProfilePlanSerializeServe) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const Model model = ModelZoo::BertBase();

  // Profile (one-time pre-run).
  Profiler profiler(&perf);
  const ModelProfile profile = profiler.Profile(model);

  // Plan (Algorithm 1 + transmission planning).
  PlannerOptions options;
  options.num_partitions = TransmissionPlanner::ChooseDegree(topology, 0);
  const ExecutionPlan plan = Planner(&profile).GeneratePlan(options);

  // Serialize + reload (deployment artifact round-trip).
  const auto reloaded = ExecutionPlan::Parse(plan.Serialize());
  ASSERT_TRUE(reloaded.has_value());
  ASSERT_FALSE(reloaded->Validate(profile).has_value());

  // Execute the reloaded plan cold.
  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  InferenceResult result;
  engine.RunCold(model, *reloaded, 0,
                 TransmissionPlanner::ChooseSecondaries(
                     topology, 0, reloaded->num_partitions()),
                 ColdRunOptions{}, [&](const InferenceResult& r) { result = r; });
  sim.Run();
  EXPECT_GT(result.latency, 0);
  EXPECT_LT(ToMillis(result.latency), 30.0);  // ~paper's 20.9 ms PT+DHA
}

TEST(IntegrationTest, ServingWithAzureTraceMixedModels) {
  // A miniature Figure 15: BERT:RoBERTa:GPT-2 instances at 4:4:1, MAF-like
  // arrivals, DeepPlan strategy. Goodput should be high and cold starts rare
  // at this scale.
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  ServerOptions options;
  options.strategy = Strategy::kDeepPlanPtDha;
  Server server(topology, perf, options);
  const int bert = server.RegisterModelType(ModelZoo::BertBase());
  const int roberta = server.RegisterModelType(ModelZoo::RobertaBase());
  const int gpt2 = server.RegisterModelType(ModelZoo::Gpt2());
  server.AddInstances(bert, 16);
  server.AddInstances(roberta, 16);
  server.AddInstances(gpt2, 4);

  AzureTraceOptions w;
  w.num_instances = 36;
  w.duration = Seconds(20);
  w.target_rate_per_sec = 60.0;
  const ServingMetrics m = server.Run(GenerateAzureTrace(w));
  EXPECT_GT(m.count(), 500u);
  EXPECT_GT(m.Goodput(Millis(100)), 0.95);
}

TEST(IntegrationTest, OversizedModelServableViaDha) {
  // Section 7: a model larger than one GPU's memory. An all-load plan cannot
  // fit on a 16 GB V100; a DHA plan that keeps enough layers host-side can.
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const Model big = ModelZoo::Oversized("oversized");
  ASSERT_GT(big.total_param_bytes(), topology.gpu().mem_bytes);

  ProfilerOptions popts;
  popts.noise_stddev = 0.0;
  const ModelProfile profile = Profiler(&perf, popts).Profile(big);

  // Force every embedding + attention projection host-side until it fits.
  ExecutionPlan plan(big.name(), big.num_layers());
  std::int64_t resident = big.total_param_bytes();
  const std::int64_t budget = topology.gpu().mem_bytes * 7 / 10;
  for (std::size_t i = 0; i < big.num_layers() && resident > budget; ++i) {
    const Layer& l = big.layer(i);
    if (l.has_params() && (l.kind == LayerKind::kEmbedding ||
                           (l.kind == LayerKind::kLinear &&
                            l.param_bytes < 40 * 1024 * 1024))) {
      plan.set_method(i, ExecMethod::kDirectHostAccess);
      resident -= l.param_bytes;
    }
  }
  ASSERT_LE(plan.GpuResidentBytes(profile), topology.gpu().mem_bytes);

  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  InferenceResult result;
  engine.RunCold(big, plan, 0, {}, ColdRunOptions{},
                 [&](const InferenceResult& r) { result = r; });
  sim.Run();
  EXPECT_GT(result.latency, 0);
}

TEST(IntegrationTest, MoeColdStartCheaperThanDenseEquivalent) {
  // Section 7: with per-expert gating known, inactive experts stay host-side
  // (DHA-eligible, never loaded), shrinking provisioning traffic.
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const Model moe = ModelZoo::MoeSparse("moe", 768, 12, 8, 384);
  ProfilerOptions popts;
  popts.noise_stddev = 0.0;
  const ModelProfile profile = Profiler(&perf, popts).Profile(moe);

  // Expert-aware plan: inactive experts (zero FLOPs) -> DHA (stay host-side).
  ExecutionPlan plan(moe.name(), moe.num_layers());
  for (std::size_t i = 0; i < moe.num_layers(); ++i) {
    if (moe.layer(i).has_params() && moe.layer(i).flops == 0) {
      plan.set_method(i, ExecMethod::kDirectHostAccess);
    }
  }
  ExecutionPlan dense_plan(moe.name(), moe.num_layers());

  auto run = [&](const ExecutionPlan& p) {
    Simulator sim;
    ServerFabric fabric(&sim, &topology);
    Engine engine(&sim, &fabric, &perf);
    InferenceResult result;
    engine.RunCold(moe, p, 0, {}, ColdRunOptions{},
                   [&](const InferenceResult& r) { result = r; });
    sim.Run();
    return result.latency;
  };
  const Nanos expert_aware = run(plan);
  const Nanos dense = run(dense_plan);
  EXPECT_LT(static_cast<double>(expert_aware), static_cast<double>(dense) * 0.6);
}

TEST(IntegrationTest, ProfileOnA5000ProducesDifferentPlan) {
  // Section 5.4: plans adapt to the GPU/PCIe generation. The set of DHA
  // layers on the A5000/PCIe4 box need not match the V100/PCIe3 one.
  const Model model = ModelZoo::ResNet101();
  ProfilerOptions popts;
  popts.noise_stddev = 0.0;
  const PerfModel v100(GpuSpec::V100(), PcieSpec::Gen3());
  const PerfModel a5000(GpuSpec::A5000(), PcieSpec::Gen4());
  const ModelProfile pv = Profiler(&v100, popts).Profile(model);
  const ModelProfile pa = Profiler(&a5000, popts).Profile(model);
  const ExecutionPlan plan_v = Planner(&pv).GeneratePlan();
  const ExecutionPlan plan_a = Planner(&pa).GeneratePlan();
  int diffs = 0;
  for (std::size_t i = 0; i < plan_v.num_layers(); ++i) {
    if (plan_v.method(i) != plan_a.method(i)) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);
}

}  // namespace
}  // namespace deepplan
