// Differential lockdown of the calendar-queue EventQueue against the
// original binary-heap backend (ReferenceEventQueue): ~1M randomized
// schedule/pop/cancel operations across five time-distribution regimes must
// produce bit-identical observable logs — pop order including FIFO ties,
// NextTime before every pop, Cancel outcomes, and live sizes after every op.
// The reference backend defines "correct"; see tests/eventqueue_schedules.h
// for the shared generator.
#include <algorithm>
#include <cstdint>

#include <gtest/gtest.h>

#include "src/check/validator.h"
#include "src/sim/event_queue.h"
#include "src/sim/reference_event_queue.h"
#include "src/util/time.h"
#include "tests/eventqueue_schedules.h"

namespace deepplan {
namespace {

using testing_schedules::RunRandomSchedule;
using testing_schedules::ScheduleLog;
using testing_schedules::ScheduleRegime;

// Raw-queue fuzzing intentionally pops non-monotonically (a later schedule
// may land before an already-popped time): that violates the *simulator's*
// monotone-pop invariant, which only holds when a Simulator owns the queue.
// Force validation off so Debug/DEEPPLAN_VALIDATE builds fuzz the queue
// itself rather than abort in the validator.
class EventQueueDiffTest : public ::testing::Test {
 protected:
  void SetUp() override { check::SetValidationForTesting(0); }
  void TearDown() override { check::SetValidationForTesting(-1); }
};

void ExpectSameLogs(std::uint64_t seed, const ScheduleRegime& regime) {
  EventQueue calendar;
  ReferenceEventQueue reference;
  const ScheduleLog got = RunRandomSchedule(calendar, seed, regime);
  const ScheduleLog want = RunRandomSchedule(reference, seed, regime);

  ASSERT_EQ(got.scheduled, want.scheduled) << "seed " << seed;
  EXPECT_EQ(got.cancel_results, want.cancel_results) << "seed " << seed;
  EXPECT_EQ(got.sizes, want.sizes) << "seed " << seed;
  EXPECT_EQ(got.next_times, want.next_times) << "seed " << seed;
  ASSERT_EQ(got.pops.size(), want.pops.size()) << "seed " << seed;
  for (std::size_t i = 0; i < got.pops.size(); ++i) {
    ASSERT_EQ(got.pops[i], want.pops[i])
        << "seed " << seed << " divergence at pop " << i;
  }
  EXPECT_TRUE(calendar.empty());
  EXPECT_TRUE(reference.empty());

  // Arena-reuse invariant: callback slots are recycled, so the pool never
  // grows past the peak number of simultaneously pending events.
  const std::size_t peak =
      got.sizes.empty() ? 0 : *std::max_element(got.sizes.begin(), got.sizes.end());
  EXPECT_LE(calendar.slot_capacity(), peak);
  EXPECT_EQ(calendar.total_scheduled(), got.scheduled);
}

// Tiny time domain: nearly every event collides with others at the same
// nanosecond, so the FIFO (insertion-order) tie-break carries the ordering.
TEST_F(EventQueueDiffTest, DenseEqualTimestampBursts) {
  ScheduleRegime regime;
  regime.ops = 200000;
  regime.domain = 8;
  regime.schedule_weight = 6;
  regime.burst_every = 5;
  regime.burst_size = 8;
  ExpectSameLogs(0x1001, regime);
}

// Wide time domain with a drifting base: entries spread across many epochs
// and the serve pointer sweeps forward (AdvanceEpoch) and occasionally back
// (Rewind) when a pre-horizon schedule lands behind it.
TEST_F(EventQueueDiffTest, WideDomainWithDrift) {
  ScheduleRegime regime;
  regime.ops = 200000;
  regime.domain = Seconds(1);
  regime.drift = 1000;
  ExpectSameLogs(0x2002, regime);
}

// Cancel-heavy: most non-schedule ops cancel live or stale ids, leaving
// tombstones the calendar queue must skip without perturbing order.
TEST_F(EventQueueDiffTest, CancelHeavy) {
  ScheduleRegime regime;
  regime.ops = 200000;
  regime.domain = 200;
  regime.schedule_weight = 4;
  ExpectSameLogs(0x3003, regime);
}

// Far-future outliers force bucket-ring wraparound: an epoch many widths
// ahead shares a bucket with near-term epochs and must not fire early.
TEST_F(EventQueueDiffTest, FarFutureOutliers) {
  ScheduleRegime regime;
  regime.ops = 200000;
  regime.domain = 1000;
  regime.far_every = 7;
  regime.far_offset = Seconds(100);
  ExpectSameLogs(0x4004, regime);
}

// Everything at once, two seeds: ties, drift, bursts, outliers, cancels.
TEST_F(EventQueueDiffTest, MixedRegime) {
  ScheduleRegime regime;
  regime.ops = 100000;
  regime.domain = 50;
  regime.drift = 20;
  regime.burst_every = 11;
  regime.burst_size = 5;
  regime.far_every = 13;
  regime.far_offset = Seconds(2);
  ExpectSameLogs(0x5005, regime);
  ExpectSameLogs(0x5006, regime);
}

}  // namespace
}  // namespace deepplan
