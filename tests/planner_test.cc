#include <gtest/gtest.h>

#include "src/core/planner.h"
#include "src/core/profiler.h"
#include "src/model/zoo.h"

namespace deepplan {
namespace {

ModelProfile PaperProfile(const Model& model) {
  static PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;
  return Profiler(&perf, opts).Profile(model);
}

TEST(PlannerTest, GreedyPicksEmbeddingsAndSkipsBigLinears) {
  const Model model = ModelZoo::BertBase();
  const ModelProfile profile = PaperProfile(model);
  const ExecutionPlan plan = Planner(&profile).GreedyDhaPlan();
  // Word embedding: DHA wins outright.
  EXPECT_EQ(plan.method(0), ExecMethod::kDirectHostAccess);
  // Large FFN linears: load wins outright.
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    if (model.layer(i).kind == LayerKind::kLinear &&
        model.layer(i).param_bytes > 8 * 1024 * 1024) {
      EXPECT_EQ(plan.method(i), ExecMethod::kLoad) << model.layer(i).name;
    }
  }
}

TEST(PlannerTest, GeneratedPlanIsValid) {
  for (const Model& model : ModelZoo::PaperModels()) {
    const ModelProfile profile = PaperProfile(model);
    Planner planner(&profile);
    for (const int parts : {1, 2}) {
      PlannerOptions options;
      options.num_partitions = parts;
      const ExecutionPlan plan = planner.GeneratePlan(options);
      EXPECT_FALSE(plan.Validate(profile).has_value()) << model.name();
      EXPECT_EQ(plan.num_partitions(), parts) << model.name();
    }
  }
}

TEST(PlannerTest, Algorithm1NeverSlowerThanAllLoadPipeline) {
  for (const Model& model : ModelZoo::PaperModels()) {
    const ModelProfile profile = PaperProfile(model);
    Planner planner(&profile);
    const ExecutionPlan all_load("x", profile.num_layers());
    PlannerOptions options;
    const ExecutionPlan dha = planner.GeneratePlan(options);
    const Nanos before = SimulatePipeline(profile, all_load).total;
    const Nanos after = SimulatePipeline(profile, dha, options.pipeline).total;
    EXPECT_LE(after, before) << model.name();
  }
}

TEST(PlannerTest, Algorithm1BeatsGreedyOnPipelineAwareModels) {
  // The paper's Table 3 point: greedy per-layer choice ignores pipelining and
  // is suboptimal. On every transformer model the Algorithm-1 plan must be at
  // least as fast; on at least one model strictly faster than greedy.
  int strictly_better = 0;
  for (const Model& model : ModelZoo::PaperModels()) {
    const ModelProfile profile = PaperProfile(model);
    Planner planner(&profile);
    const ExecutionPlan greedy = planner.GreedyDhaPlan();
    const ExecutionPlan tuned = planner.GeneratePlan();
    const Nanos greedy_total = SimulatePipeline(profile, greedy).total;
    const Nanos tuned_total = SimulatePipeline(profile, tuned).total;
    EXPECT_LE(tuned_total, greedy_total + Micros(1)) << model.name();
    if (tuned_total + Micros(10) < greedy_total) {
      ++strictly_better;
    }
  }
  EXPECT_GE(strictly_better, 1);
}

TEST(PlannerTest, PlansDifferFromGreedy) {
  // Table 3 shows the pipeline-aware plan flips decisions vs the greedy one.
  const Model model = ModelZoo::ResNet101();
  const ModelProfile profile = PaperProfile(model);
  Planner planner(&profile);
  const ExecutionPlan greedy = planner.GreedyDhaPlan();
  const ExecutionPlan tuned = planner.GeneratePlan();
  int diffs = 0;
  for (std::size_t i = 0; i < profile.num_layers(); ++i) {
    if (greedy.method(i) != tuned.method(i)) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);
}

TEST(PlannerTest, DhaDisabledYieldsAllLoad) {
  const ModelProfile profile = PaperProfile(ModelZoo::BertBase());
  PlannerOptions options;
  options.enable_dha = false;
  const ExecutionPlan plan = Planner(&profile).GeneratePlan(options);
  EXPECT_EQ(plan.CountDha(), 0u);
}

TEST(PlannerTest, PartitionedPlanKeepsDhaInPartitionZero) {
  const ModelProfile profile = PaperProfile(ModelZoo::BertBase());
  PlannerOptions options;
  options.num_partitions = 2;
  const ExecutionPlan plan = Planner(&profile).GeneratePlan(options);
  EXPECT_GT(plan.CountDha(), 0u);
  for (std::size_t i = 0; i < plan.num_layers(); ++i) {
    if (plan.method(i) == ExecMethod::kDirectHostAccess) {
      EXPECT_EQ(plan.partition(i), 0) << i;
    }
  }
}

TEST(PlannerTest, BertPlanLeavesWordEmbeddingOnHost) {
  // DeepPlan's signature behaviour: the 89 MiB embedding never loads.
  const ModelProfile profile = PaperProfile(ModelZoo::BertBase());
  const ExecutionPlan plan = Planner(&profile).GeneratePlan();
  EXPECT_EQ(plan.method(0), ExecMethod::kDirectHostAccess);
  // And the GPU footprint shrinks by at least the embedding size.
  EXPECT_LE(plan.GpuResidentBytes(profile),
            profile.TotalParamBytes() - 89 * 1024 * 1024);
}

TEST(PlannerTest, PlansAreRobustToProfilingNoise) {
  // The paper averages 10 noisy measurement iterations; the plan built from
  // such a profile must not be materially worse than the plan built from the
  // exact profile (evaluated on exact numbers).
  PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  for (const char* name : {"resnet101", "bert_base", "gpt2_medium"}) {
    const Model model = ModelZoo::ByName(name);
    ProfilerOptions exact_opts;
    exact_opts.noise_stddev = 0.0;
    const ModelProfile exact = Profiler(&perf, exact_opts).Profile(model);
    ProfilerOptions noisy_opts;
    noisy_opts.noise_stddev = 0.05;  // 5x the default measurement noise
    noisy_opts.seed = 777;
    const ModelProfile noisy = Profiler(&perf, noisy_opts).Profile(model);

    const ExecutionPlan from_exact = Planner(&exact).GeneratePlan();
    const ExecutionPlan from_noisy = Planner(&noisy).GeneratePlan();
    const Nanos t_exact = SimulatePipeline(exact, from_exact).total;
    const Nanos t_noisy = SimulatePipeline(exact, from_noisy).total;
    EXPECT_LE(static_cast<double>(t_noisy), static_cast<double>(t_exact) * 1.03)
        << name;
  }
}

TEST(PlannerTest, PtDhaNoSlowerThanPtAlone) {
  for (const Model& model : ModelZoo::PaperModels()) {
    const ModelProfile profile = PaperProfile(model);
    Planner planner(&profile);
    PlannerOptions pt;
    pt.enable_dha = false;
    pt.num_partitions = 2;
    PlannerOptions ptdha = pt;
    ptdha.enable_dha = true;
    const Nanos t_pt =
        SimulatePipeline(profile, planner.GeneratePlan(pt), pt.pipeline).total;
    const Nanos t_ptdha =
        SimulatePipeline(profile, planner.GeneratePlan(ptdha), ptdha.pipeline).total;
    EXPECT_LE(t_ptdha, t_pt + Micros(1)) << model.name();
  }
}

}  // namespace
}  // namespace deepplan
