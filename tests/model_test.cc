#include <gtest/gtest.h>

#include "src/model/layer.h"
#include "src/model/model.h"
#include "src/model/zoo.h"

namespace deepplan {
namespace {

constexpr std::int64_t kMiB = 1024 * 1024;

// ---------------------------------------------------------------- layers

TEST(LayerTest, EmbeddingSizesMatchPaper) {
  // BERT-Base word embedding: 30522 x 768 fp32 = 89.42 MiB (Fig. 5a "Large").
  const Layer word = Layer::Embedding("word", 30522, 768, 384);
  EXPECT_NEAR(static_cast<double>(word.param_bytes) / kMiB, 89.42, 0.01);
  // Position embedding: 512 x 768 = 1.50 MiB (Fig. 5a "Medium").
  const Layer pos = Layer::Embedding("pos", 512, 768, 384);
  EXPECT_NEAR(static_cast<double>(pos.param_bytes) / kMiB, 1.50, 0.01);
  // DHA touches only the looked-up rows: 384 tokens x 768 dims x 4 B.
  EXPECT_EQ(word.dha_param_traffic_bytes, 384LL * 768 * 4);
  EXPECT_EQ(pos.dha_param_traffic_bytes, 384LL * 768 * 4);
  EXPECT_TRUE(word.dha_traffic_scales_with_batch);
}

TEST(LayerTest, ConvSizesMatchPaper) {
  // ResNet-50 3x3x256x256 = 2.25 MiB (Fig. 5b "Medium"),
  // 3x3x512x512 = 9.0 MiB (Fig. 5b "Large").
  const Layer medium = Layer::Conv2d("c", 256, 256, 3, 14, 14);
  EXPECT_NEAR(static_cast<double>(medium.param_bytes) / kMiB, 2.25, 0.01);
  const Layer large = Layer::Conv2d("c", 512, 512, 3, 7, 7);
  EXPECT_NEAR(static_cast<double>(large.param_bytes) / kMiB, 9.0, 0.01);
  // Reuse factor ~1.8 (Table 1: 65891/36869 events).
  EXPECT_NEAR(static_cast<double>(medium.dha_param_traffic_bytes) /
                  static_cast<double>(medium.param_bytes),
              1.8, 0.01);
}

TEST(LayerTest, LinearReuseFactorMatchesTable1) {
  // Table 1: FC DHA/load event ratio ~12.1.
  const Layer fc = Layer::Linear("fc", 768, 768, 384, /*bias=*/false);
  EXPECT_NEAR(static_cast<double>(fc.dha_param_traffic_bytes) /
                  static_cast<double>(fc.param_bytes),
              12.0, 0.01);
  EXPECT_FALSE(fc.dha_traffic_scales_with_batch);
}

TEST(LayerTest, LinearFlopsAndBytes) {
  const Layer fc = Layer::Linear("fc", 768, 3072, 384);
  EXPECT_EQ(fc.param_bytes, (768LL * 3072 + 3072) * 4);
  EXPECT_EQ(fc.flops, 2LL * 768 * 3072 * 384);
}

TEST(LayerTest, ParameterFreeLayersHaveNoDhaTraffic) {
  for (const Layer& l :
       {Layer::Activation("a", 1000), Layer::Pooling("p", 1000),
        Layer::Attention("at", 384, 768), Layer::Residual("r", 1000)}) {
    EXPECT_FALSE(l.has_params()) << l.name;
    EXPECT_EQ(l.dha_param_traffic_bytes, 0) << l.name;
  }
}

TEST(LayerKindTest, NamesAreStable) {
  EXPECT_STREQ(LayerKindName(LayerKind::kEmbedding), "Emb");
  EXPECT_STREQ(LayerKindName(LayerKind::kConv2d), "Conv");
  EXPECT_STREQ(LayerKindName(LayerKind::kLinear), "FC");
  EXPECT_STREQ(LayerKindName(LayerKind::kLayerNorm), "LN");
  EXPECT_STREQ(LayerKindName(LayerKind::kBatchNorm), "BN");
}

// ---------------------------------------------------------------- models

TEST(ModelTest, AggregatesTotals) {
  std::vector<Layer> layers;
  layers.push_back(Layer::Linear("a", 10, 10, 1, /*bias=*/false));
  layers.push_back(Layer::Activation("act", 10));
  const Model m("tiny", std::move(layers), 1);
  EXPECT_EQ(m.num_layers(), 2u);
  EXPECT_EQ(m.total_param_bytes(), 400);
  EXPECT_EQ(m.num_param_layers(), 1u);
  EXPECT_EQ(m.ParamBytesInRange(0, 1), 400);
  EXPECT_EQ(m.ParamBytesInRange(1, 1), 0);
}

// Parameter counts of the zoo models vs the published architectures
// (tolerance 3% — we model weights + biases + norm parameters).
struct ZooCase {
  const char* name;
  double expected_mib;
};

class ZooSizeTest : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooSizeTest, TotalParamBytesMatchPublishedModel) {
  const ZooCase& c = GetParam();
  const Model m = ModelZoo::ByName(c.name);
  const double mib = static_cast<double>(m.total_param_bytes()) / kMiB;
  EXPECT_NEAR(mib, c.expected_mib, c.expected_mib * 0.03) << m.name();
}

INSTANTIATE_TEST_SUITE_P(
    PaperModels, ZooSizeTest,
    ::testing::Values(ZooCase{"resnet50", 97.5},       // 25.6 M params
                      ZooCase{"resnet101", 170.0},     // 44.5 M
                      ZooCase{"bert_base", 417.6},     // 109.5 M (paper: 417 MB)
                      ZooCase{"bert_large", 1277.0},   // 335 M
                      ZooCase{"roberta_base", 476.0},  // 124.7 M
                      ZooCase{"roberta_large", 1355.0},
                      ZooCase{"gpt2", 474.7},          // 124.4 M
                      ZooCase{"gpt2_medium", 1320.0}),
    [](const ::testing::TestParamInfo<ZooCase>& info) { return info.param.name; });

TEST(ZooTest, BertBaseEmbeddingIsLargestFrontLayer) {
  const Model m = ModelZoo::BertBase();
  EXPECT_EQ(m.layer(0).kind, LayerKind::kEmbedding);
  EXPECT_NEAR(static_cast<double>(m.layer(0).param_bytes) / kMiB, 89.42, 0.01);
  EXPECT_EQ(m.ref_tokens(), 384);
}

TEST(ZooTest, Gpt2UsesLongContextAndBigVocab) {
  const Model m = ModelZoo::Gpt2();
  EXPECT_EQ(m.ref_tokens(), 1024);
  EXPECT_EQ(m.layer(0).kind, LayerKind::kEmbedding);
  // 50257 x 768 x 4 B = 147 MiB embedding.
  EXPECT_NEAR(static_cast<double>(m.layer(0).param_bytes) / kMiB, 147.2, 0.3);
}

TEST(ZooTest, ResNetLayerStructure) {
  const Model m = ModelZoo::ResNet50();
  // 53 convolutions in ResNet-50 (49 block convs + 4 downsample + stem).
  int convs = 0;
  int bns = 0;
  for (const Layer& l : m.layers()) {
    convs += l.kind == LayerKind::kConv2d ? 1 : 0;
    bns += l.kind == LayerKind::kBatchNorm ? 1 : 0;
  }
  EXPECT_EQ(convs, 53);
  EXPECT_EQ(bns, 53);
  EXPECT_EQ(m.layers().back().kind, LayerKind::kLinear);
}

TEST(ZooTest, ResNet101DeeperThan50) {
  EXPECT_GT(ModelZoo::ResNet101().num_layers(), ModelZoo::ResNet50().num_layers());
  EXPECT_GT(ModelZoo::ResNet101().total_param_bytes(),
            ModelZoo::ResNet50().total_param_bytes());
}

TEST(ZooTest, PaperModelsAreEightAndNamed) {
  const auto models = ModelZoo::PaperModels();
  const auto names = ModelZoo::Names();
  ASSERT_EQ(models.size(), 8u);
  ASSERT_EQ(names.size(), 8u);
  for (std::size_t i = 0; i < models.size(); ++i) {
    EXPECT_EQ(models[i].name(), names[i]);
    EXPECT_EQ(ModelZoo::ByName(names[i]).total_param_bytes(),
              models[i].total_param_bytes());
  }
}

TEST(ZooTest, MoeSparseHasInactiveExperts) {
  const Model m = ModelZoo::MoeSparse("moe", 768, 2, 8, 384);
  std::int64_t zero_flop_param_bytes = 0;
  for (const Layer& l : m.layers()) {
    if (l.has_params() && l.flops == 0) {
      zero_flop_param_bytes += l.param_bytes;
    }
  }
  // 3 of 4 experts per block are inactive: most FFN bytes are cold.
  EXPECT_GT(zero_flop_param_bytes, m.total_param_bytes() / 2);
}

TEST(ZooTest, OversizedExceedsOneV100) {
  const Model m = ModelZoo::Oversized("big");
  EXPECT_GT(m.total_param_bytes(), 16LL * 1024 * 1024 * 1024);
}

TEST(ZooTest, SummaryMentionsEveryLayer) {
  const Model m = ModelZoo::ResNet50();
  const std::string s = m.Summary();
  EXPECT_NE(s.find("resnet50"), std::string::npos);
  EXPECT_NE(s.find("stem.conv"), std::string::npos);
  EXPECT_NE(s.find("fc"), std::string::npos);
}

}  // namespace
}  // namespace deepplan
