#include <gtest/gtest.h>

#include "src/hw/gpu.h"
#include "src/model/zoo.h"
#include "src/perf/pcie_events.h"
#include "src/perf/perf_model.h"

namespace deepplan {
namespace {

class PerfModelTest : public ::testing::Test {
 protected:
  PerfModelTest() : perf_(GpuSpec::V100(), PcieSpec::Gen3()) {}
  PerfModel perf_;
};

TEST_F(PerfModelTest, LoadTimeScalesWithBytes) {
  const Layer small = Layer::Linear("s", 768, 768, 384, /*bias=*/false);
  const Layer large = Layer::Linear("l", 768, 3072, 384, /*bias=*/false);
  EXPECT_GT(perf_.LoadTime(large), perf_.LoadTime(small));
  // 4x the bytes -> close to 4x the transfer portion.
  const Nanos overhead = perf_.calibration().pcie_transfer_overhead;
  EXPECT_NEAR(static_cast<double>(perf_.LoadTime(large) - overhead),
              4.0 * static_cast<double>(perf_.LoadTime(small) - overhead),
              static_cast<double>(perf_.LoadTime(small)) * 0.01);
}

TEST_F(PerfModelTest, ParameterFreeLayersLoadInstantly) {
  EXPECT_EQ(perf_.LoadTime(Layer::Activation("a", 100)), 0);
  EXPECT_EQ(perf_.LoadTime(Layer::Attention("at", 384, 768)), 0);
}

TEST_F(PerfModelTest, FigA_LargeEmbeddingDhaBeatsLoadByFar) {
  // Figure 5a: for the 89.42 MiB embedding, load-then-execute is dominated by
  // the 8+ ms transfer while DHA touches only 1.1 MiB of rows.
  const Layer emb = Layer::Embedding("word", 30522, 768, 384);
  const Nanos load_then_exec = perf_.LoadTime(emb) + perf_.ExecInMemory(emb);
  const Nanos dha = perf_.ExecDha(emb);
  EXPECT_GT(load_then_exec, 10 * dha);
}

TEST_F(PerfModelTest, FigA_MediumEmbeddingDhaCompetitive) {
  // Figure 5a: the 1.5 MiB position embedding: DHA is no worse than load.
  const Layer emb = Layer::Embedding("pos", 512, 768, 384);
  EXPECT_LE(perf_.ExecDha(emb), perf_.LoadTime(emb) + perf_.ExecInMemory(emb));
}

TEST_F(PerfModelTest, FigB_SmallConvDhaCompetitive_LargeConvLoadWins) {
  // Figure 5b: small/medium convs are a wash; large convs favor loading.
  const Layer small = Layer::Conv2d("c", 64, 64, 3, 56, 56);
  const Layer large = Layer::Conv2d("c", 512, 512, 3, 7, 7);
  const double small_ratio =
      static_cast<double>(perf_.ExecDha(small)) /
      static_cast<double>(perf_.LoadTime(small) + perf_.ExecInMemory(small));
  const double large_ratio =
      static_cast<double>(perf_.ExecDha(large)) /
      static_cast<double>(perf_.LoadTime(large) + perf_.ExecInMemory(large));
  EXPECT_LT(small_ratio, 1.4);       // near parity
  EXPECT_GT(large_ratio, small_ratio);  // gap widens with size
  EXPECT_GT(large_ratio, 1.3);       // load clearly wins for the big conv
}

TEST_F(PerfModelTest, FigC_FullyConnectedLoadAlwaysWins) {
  // Figure 5c: both small and large FC layers strongly favor load-then-execute
  // because weights are re-read ~12x under DHA.
  for (const Layer& fc : {Layer::Linear("small", 768, 768, 384),
                          Layer::Linear("large", 768, 3072, 384)}) {
    const Nanos load_then_exec = perf_.LoadTime(fc) + perf_.ExecInMemory(fc);
    EXPECT_GT(perf_.ExecDha(fc), 3 * load_then_exec) << fc.name;
  }
}

TEST_F(PerfModelTest, BatchNormFavorsDhaLayerNormFavorsLoad) {
  // Section 3.1 "Other layers": BN -> DHA better; LN -> load better.
  const Layer bn = Layer::BatchNorm("bn", 256, 14 * 14);
  EXPECT_LT(perf_.ExecDha(bn), perf_.LoadTime(bn) + perf_.ExecInMemory(bn));
  const Layer ln = Layer::LayerNorm("ln", 768, 384);
  EXPECT_GT(perf_.ExecDha(ln), perf_.LoadTime(ln) + perf_.ExecInMemory(ln));
}

TEST_F(PerfModelTest, WarmLatencyMatchesPaperForBertBase) {
  // The paper: a warm BERT-Base inference takes 9.35 ms on V100 (batch 1).
  const Model bert = ModelZoo::BertBase();
  const double ms = ToMillis(perf_.WarmLatency(bert, 1));
  EXPECT_NEAR(ms, 9.35, 1.5);
}

TEST_F(PerfModelTest, TotalLoadTimeMatchesPaperForBertBase) {
  // The paper: loading BERT-Base host->GPU takes ~40 ms.
  const Model bert = ModelZoo::BertBase();
  const double ms = ToMillis(perf_.TotalLoadTime(bert));
  EXPECT_NEAR(ms, 40.0, 5.0);
}

TEST_F(PerfModelTest, BatchingIncreasesExecSubLinearly) {
  const Layer fc = Layer::Linear("fc", 768, 3072, 384);
  const Nanos b1 = perf_.ExecInMemory(fc, 1);
  const Nanos b8 = perf_.ExecInMemory(fc, 8);
  EXPECT_GT(b8, b1);
  EXPECT_LT(b8, 8 * b1);  // fixed dispatch overhead amortizes
}

TEST_F(PerfModelTest, DhaTrafficScalesWithBatchOnlyForEmbeddings) {
  const Layer emb = Layer::Embedding("e", 30522, 768, 384);
  const Layer fc = Layer::Linear("fc", 768, 768, 384);
  EXPECT_EQ(perf_.DhaTrafficBytes(emb, 4), 4 * perf_.DhaTrafficBytes(emb, 1));
  EXPECT_EQ(perf_.DhaTrafficBytes(fc, 4), perf_.DhaTrafficBytes(fc, 1));
}

TEST_F(PerfModelTest, NvlinkFasterThanPcieForSameBytes) {
  const Layer fc = Layer::Linear("fc", 768, 3072, 384);
  EXPECT_LT(perf_.NvlinkTime(fc, NvlinkSpec::V100Nvlink()), perf_.LoadTime(fc));
}

TEST_F(PerfModelTest, Gen4CutsLoadTimeNearlyInHalf) {
  const PerfModel gen4(GpuSpec::A5000(), PcieSpec::Gen4());
  const Layer fc = Layer::Linear("fc", 768, 3072, 384);
  const double ratio = static_cast<double>(perf_.LoadTime(fc)) /
                       static_cast<double>(gen4.LoadTime(fc));
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.3);
}

// ---------------------------------------------------------------- Table 1

class PcieEventTest : public ::testing::Test {
 protected:
  PcieEventTest() : perf_(GpuSpec::V100(), PcieSpec::Gen3()), counter_(&perf_) {}
  PerfModel perf_;
  PcieEventCounter counter_;
};

TEST_F(PcieEventTest, LoadEventsAreBytesOver64) {
  // Table 1: medium embedding (1.50 MiB) -> 24,576 events (paper: 24,580);
  // large embedding (89.42 MiB) -> 1,465,056 (paper: 1,465,112).
  const Layer medium = Layer::Embedding("m", 512, 768, 384);
  EXPECT_EQ(counter_.LoadEvents(medium), 24'576);
  const Layer large = Layer::Embedding("l", 30522, 768, 384);
  EXPECT_EQ(counter_.LoadEvents(large), 1'465'056);
}

TEST_F(PcieEventTest, EmbeddingDhaEventsIndependentOfTableSize) {
  // Table 1: DHA events 18,267 / 18,459 for medium/large — both ~= the
  // 18,432 touched-row payloads (384 x 768 x 4 / 64).
  const Layer medium = Layer::Embedding("m", 512, 768, 384);
  const Layer large = Layer::Embedding("l", 30522, 768, 384);
  EXPECT_EQ(counter_.DhaEvents(medium), 18'432);
  EXPECT_EQ(counter_.DhaEvents(large), 18'432);
}

TEST_F(PcieEventTest, ConvDhaRatioMatchesTable1) {
  const Layer conv = Layer::Conv2d("c", 256, 256, 3, 14, 14);
  const double ratio = static_cast<double>(counter_.DhaEvents(conv)) /
                       static_cast<double>(counter_.LoadEvents(conv));
  EXPECT_NEAR(ratio, 1.79, 0.05);  // paper: 65,891 / 36,869
}

TEST_F(PcieEventTest, LinearDhaRatioMatchesTable1) {
  const Layer fc = Layer::Linear("fc", 768, 768, 384, /*bias=*/false);
  const double ratio = static_cast<double>(counter_.DhaEvents(fc)) /
                       static_cast<double>(counter_.LoadEvents(fc));
  EXPECT_NEAR(ratio, 12.09, 0.15);  // paper: 446,276 / 36,920
}

}  // namespace
}  // namespace deepplan
