// Unit tests for the determinism linter (src/check/determinism_lint.h):
// per-rule fixtures (positive hit, allowlisted hit, clean file), suppression
// accounting (used / stale / malformed), and the result-state semantics the
// deepplan_lint tool maps to exit codes (ok() -> 0, violations or stale
// suppressions -> 1, IO errors -> 2).
#include "src/check/determinism_lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace deepplan {
namespace check {
namespace {

DeterminismLintResult Lint(const std::string& code) {
  return LintDeterminismSource("test.cc", code);
}

bool HasRule(const DeterminismLintResult& r, const std::string& rule) {
  return std::any_of(r.findings.begin(), r.findings.end(),
                     [&rule](const LintFinding& f) { return f.rule == rule; });
}

// ---------------------------------------------------------------- unordered

TEST(UnorderedIterationTest, FlagsRangeForOverDeclaredName) {
  const auto r = Lint(
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> counts;\n"
      "void Dump() {\n"
      "  for (const auto& [k, v] : counts) Emit(k, v);\n"
      "}\n");
  EXPECT_EQ(r.violations, 1u);
  ASSERT_TRUE(HasRule(r, kLintRuleUnorderedIteration));
  EXPECT_EQ(r.findings[0].line, 4u);
}

TEST(UnorderedIterationTest, FlagsRangeForOverWrappedDeclaration) {
  // The declared name sits after the *outer* template's closing brackets.
  const auto r = Lint(
      "std::vector<std::unordered_map<std::string, int>> links_;\n"
      "void Walk() {\n"
      "  for (const auto& m : links_) Use(m);\n"
      "}\n");
  EXPECT_EQ(r.violations, 1u);
  EXPECT_TRUE(HasRule(r, kLintRuleUnorderedIteration));
}

TEST(UnorderedIterationTest, FlagsBeginOnUnorderedName) {
  const auto r = Lint(
      "std::unordered_set<int> seen_;\n"
      "int First() { return *seen_.begin(); }\n");
  EXPECT_EQ(r.violations, 1u);
  EXPECT_TRUE(HasRule(r, kLintRuleUnorderedIteration));
}

TEST(UnorderedIterationTest, LookupsAreClean) {
  // find/at/erase-by-key and the `!= end()` sentinel are the supported
  // lookup idiom — none of them depend on bucket order.
  const auto r = Lint(
      "std::unordered_map<int, int> m_;\n"
      "bool Has(int k) { return m_.find(k) != m_.end(); }\n"
      "int Get(int k) { return m_.at(k); }\n"
      "void Drop(int k) { m_.erase(k); }\n");
  EXPECT_EQ(r.violations, 0u);
  EXPECT_TRUE(r.ok());
}

TEST(UnorderedIterationTest, OrderedContainersAreClean) {
  const auto r = Lint(
      "std::map<std::string, int> sorted_;\n"
      "void Dump() {\n"
      "  for (const auto& [k, v] : sorted_) Emit(k, v);\n"
      "  for (auto it = sorted_.begin(); it != sorted_.end(); ++it) Use(*it);\n"
      "}\n");
  EXPECT_EQ(r.violations, 0u);
}

// ------------------------------------------------------------- pointer keys

TEST(PointerKeyTest, FlagsPointerKeyedMapAndSet) {
  const auto r = Lint(
      "std::map<Node*, int> by_addr_;\n"
      "std::unordered_set<const Request*> live_;\n");
  EXPECT_EQ(r.violations, 2u);
  EXPECT_TRUE(HasRule(r, kLintRulePointerKeyedContainer));
}

TEST(PointerKeyTest, ValueSidePointersAreClean) {
  const auto r = Lint(
      "std::map<int, Node*> by_id_;\n"
      "std::unordered_map<std::string, const Link*> links_;\n");
  // unordered_map by-name lookup table: no pointer key, no iteration.
  EXPECT_EQ(r.violations, 0u);
}

// -------------------------------------------------------------- raw entropy

TEST(RawEntropyTest, FlagsRandTimeAndRandomDevice) {
  const auto r = Lint(
      "int A() { return rand(); }\n"
      "void B() { srand(42); }\n"
      "long C() { return time(nullptr); }\n"
      "unsigned D() { return std::random_device{}(); }\n");
  EXPECT_EQ(r.violations, 4u);
  EXPECT_TRUE(HasRule(r, kLintRuleRawEntropy));
}

TEST(RawEntropyTest, FlagsWallClocks) {
  const auto r = Lint(
      "auto t = std::chrono::steady_clock::now();\n"
      "auto u = std::chrono::system_clock::now();\n");
  EXPECT_EQ(r.violations, 2u);
}

TEST(RawEntropyTest, MemberAndForeignNamespaceAreClean) {
  // x.time() / sim::time() are other APIs, not libc time(); `time` without a
  // call is just an identifier; a seeded mt19937 is the supported pattern.
  const auto r = Lint(
      "Nanos t = sim.time();\n"
      "Nanos u = clock_->time();\n"
      "Nanos v = mysim::time(x);\n"
      "int time = 3; Use(time);\n"
      "std::mt19937 rng(seed);\n");
  EXPECT_EQ(r.violations, 0u);
}

TEST(RawEntropyTest, CommentsAndStringsAreScrubbed) {
  const auto r = Lint(
      "// rand() in a comment is fine\n"
      "/* so is time(nullptr) here */\n"
      "const char* s = \"rand() time() random_device\";\n"
      "const char* raw = R\"(std::random_device)\";\n");
  EXPECT_EQ(r.violations, 0u);
}

// ---------------------------------------------------------------- reduction

TEST(NondetReductionTest, FlagsUnorderedReductions) {
  const auto r = Lint(
      "double a = std::reduce(v.begin(), v.end());\n"
      "double b = std::transform_reduce(v.begin(), v.end(), 0.0, f, g);\n"
      "std::sort(std::execution::par_unseq, v.begin(), v.end());\n"
      "std::atomic<double> sum_;\n");
  EXPECT_EQ(r.violations, 4u);
  EXPECT_TRUE(HasRule(r, kLintRuleNondeterministicReduction));
}

TEST(NondetReductionTest, OrderedAccumulateIsClean) {
  const auto r = Lint(
      "double s = std::accumulate(v.begin(), v.end(), 0.0);\n"
      "std::atomic<int> counter_;\n");
  EXPECT_EQ(r.violations, 0u);
}

// ------------------------------------------------------------- suppressions

TEST(SuppressionTest, SameLineSuppressionCountsAndClears) {
  const auto r = Lint(
      "int x = rand();  // deepplan-lint: allow(raw-entropy, test fixture)\n");
  EXPECT_EQ(r.violations, 0u);
  EXPECT_EQ(r.suppressions, 1u);
  EXPECT_EQ(r.unused_suppressions, 0u);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_TRUE(r.findings[0].suppressed);
  EXPECT_EQ(r.findings[0].suppression_reason, "test fixture");
  EXPECT_TRUE(r.ok());
}

TEST(SuppressionTest, PrecedingCommentLineSuppresses) {
  const auto r = Lint(
      "// deepplan-lint: allow(raw-entropy, wall-clock only)\n"
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(r.violations, 0u);
  EXPECT_EQ(r.suppressions, 1u);
  EXPECT_TRUE(r.ok());
}

TEST(SuppressionTest, NonAdjacentSuppressionDoesNotReach) {
  // A blank line between the comment and the finding breaks adjacency: the
  // finding stays a violation AND the suppression is reported stale.
  const auto r = Lint(
      "// deepplan-lint: allow(raw-entropy, too far away)\n"
      "\n"
      "int x = rand();\n");
  EXPECT_EQ(r.violations, 1u);
  EXPECT_EQ(r.suppressions, 0u);
  EXPECT_EQ(r.unused_suppressions, 1u);
  EXPECT_FALSE(r.ok());
}

TEST(SuppressionTest, WrongRuleDoesNotSuppress) {
  const auto r = Lint(
      "// deepplan-lint: allow(unordered-iteration, wrong rule)\n"
      "int x = rand();\n");
  EXPECT_EQ(r.violations, 1u);
  EXPECT_EQ(r.unused_suppressions, 1u);  // and the allow() is stale
  EXPECT_FALSE(r.ok());
}

TEST(SuppressionTest, StaleSuppressionIsAViolation) {
  const auto r = Lint(
      "// deepplan-lint: allow(raw-entropy, nothing here anymore)\n"
      "int x = 3;\n");
  EXPECT_EQ(r.violations, 0u);
  EXPECT_EQ(r.unused_suppressions, 1u);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].find("stale suppression"), std::string::npos);
}

TEST(SuppressionTest, UnknownRuleAndMissingReasonAreMalformed) {
  const auto unknown = Lint(
      "int x = rand();  // deepplan-lint: allow(no-such-rule, reason)\n");
  EXPECT_EQ(unknown.violations, 1u);  // finding not suppressed
  EXPECT_EQ(unknown.unused_suppressions, 1u);
  const auto no_reason =
      Lint("int x = rand();  // deepplan-lint: allow(raw-entropy)\n");
  EXPECT_EQ(no_reason.violations, 1u);
  EXPECT_EQ(no_reason.unused_suppressions, 1u);
  EXPECT_FALSE(no_reason.ok());
}

TEST(SuppressionTest, OneSuppressionCoversAllSameRuleFindingsOnItsLine) {
  const auto r = Lint(
      "int x = rand() + rand();  "
      "// deepplan-lint: allow(raw-entropy, fixture)\n");
  EXPECT_EQ(r.violations, 0u);
  EXPECT_EQ(r.suppressions, 2u);
  EXPECT_TRUE(r.ok());
}

// -------------------------------------------------- result/exit-code mapping

TEST(ResultSemanticsTest, CleanFileIsOk) {
  const auto r = Lint("int main() { return 0; }\n");
  EXPECT_TRUE(r.ok());  // tool exit 0
  EXPECT_EQ(r.files, 1u);
  EXPECT_EQ(r.lines, 1u);
}

TEST(ResultSemanticsTest, UnreadableFileIsErrorNotOk) {
  const auto r = LintDeterminismFile("/nonexistent/deepplan/x.cc");
  EXPECT_FALSE(r.ok());  // tool exit 2: errors only, no violations
  EXPECT_EQ(r.violations, 0u);
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].find("cannot read"), std::string::npos);
}

TEST(ResultSemanticsTest, MergeAggregatesEverything) {
  DeterminismLintResult total;
  MergeDeterminismLint(Lint("int x = rand();\n"), &total);
  MergeDeterminismLint(
      Lint("int y = rand();  // deepplan-lint: allow(raw-entropy, fixture)\n"),
      &total);
  EXPECT_EQ(total.files, 2u);
  EXPECT_EQ(total.violations, 1u);
  EXPECT_EQ(total.suppressions, 1u);
  EXPECT_EQ(total.findings.size(), 2u);
  EXPECT_FALSE(total.ok());  // tool exit 1
}

TEST(ResultSemanticsTest, FindingsAreSortedByLine) {
  const auto r = Lint(
      "std::unordered_map<int, int> m_;\n"
      "void A() { for (auto& kv : m_) Use(kv); }\n"
      "int B() { return rand(); }\n"
      "std::map<Node*, int> addr_;\n");
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_LE(r.findings[0].line, r.findings[1].line);
  EXPECT_LE(r.findings[1].line, r.findings[2].line);
}

TEST(ResultSemanticsTest, RuleCatalogIsStable) {
  const auto& rules = DeterminismLintRules();
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0], kLintRuleUnorderedIteration);
  EXPECT_EQ(rules[1], kLintRulePointerKeyedContainer);
  EXPECT_EQ(rules[2], kLintRuleRawEntropy);
  EXPECT_EQ(rules[3], kLintRuleNondeterministicReduction);
}

}  // namespace
}  // namespace check
}  // namespace deepplan
