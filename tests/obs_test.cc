#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "src/core/profiler.h"
#include "src/core/transmission.h"
#include "src/engine/engine.h"
#include "src/engine/strategies.h"
#include "src/model/zoo.h"
#include "src/obs/causal_graph.h"
#include "src/obs/journal_stream.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace_recorder.h"
#include "src/util/chrome_trace.h"
#include "tests/json_checker.h"

// Global allocation counter: the disabled-recorder test pins the "zero cost
// when off" contract by proving dropped events never touch the heap.
namespace {
std::size_t g_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc();
}

// The nothrow variant must be replaced too: libstdc++'s temporary buffers
// (e.g. stable_sort) allocate through it, and under ASan an unreplaced
// nothrow new paired with the replaced free-based delete is flagged as an
// alloc-dealloc mismatch.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size == 0 ? 1 : size);
}

// All global operators are replaced as a matched malloc/free set, but GCC's
// pairing analysis only sees free() applied to new-expression results.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace deepplan {
namespace {

using testutil::JsonChecker;

// ---------------------------------------------------------------- recorder

TEST(TraceRecorderTest, DisabledRecorderAllocatesNothing) {
  TraceRecorder off(/*enabled=*/false);
  EXPECT_FALSE(off.enabled());
  const std::size_t before = g_allocations;
  const int pid = off.RegisterProcess("server0");
  off.Span(pid, "exec/gpu0", "warm i3", Micros(10), Micros(5));
  off.Instant(pid, "router", "i3->s1", Micros(10));
  off.Counter(pid, "bw/pcie", "gbps", Micros(10), 12.5);
  const std::size_t after = g_allocations;
  EXPECT_EQ(pid, 0);
  EXPECT_EQ(after, before);
  EXPECT_TRUE(off.empty());
  EXPECT_EQ(off.size(), 0u);
}

TEST(TraceRecorderTest, RecordsSpansInstantsAndCounters) {
  TraceRecorder rec(/*enabled=*/true);
  const int pid = rec.RegisterProcess("engine");
  rec.Span(pid, "exec/gpu0", "layer0", Micros(1), Micros(2));
  rec.Instant(pid, "router", "decision", Micros(3));
  rec.Counter(pid, "bw/pcie", "gbps", Micros(4), 10.0);
  ASSERT_EQ(rec.size(), 3u);
  const std::string json = rec.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Counter events carry the sample in args under the series key, and the
  // counter's name is the track (one Perfetto counter track per link).
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"bw/pcie\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"gbps\":10}"), std::string::npos) << json;
}

TEST(TraceRecorderTest, EmitsProcessAndThreadMetadata) {
  TraceRecorder rec(/*enabled=*/true);
  const int pid = rec.RegisterProcess("PT+DHA");
  rec.Span(pid, "exec/gpu0", "warm", 0, Micros(1));
  const std::string json = rec.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"PT+DHA\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"exec/gpu0\""), std::string::npos);
}

TEST(TraceRecorderTest, ParentSpanSortsBeforeEnclosedChildAtEqualStart) {
  TraceRecorder rec(/*enabled=*/true);
  const int pid = rec.RegisterProcess("p");
  // Appended child-first; the writer must still order the enclosing span
  // first so nesting renders correctly.
  rec.Span(pid, "t", "child", Micros(5), Micros(1));
  rec.Span(pid, "t", "parent", Micros(5), Micros(10));
  const std::string json = rec.ToJson();
  const std::size_t parent = json.find("\"name\":\"parent\"");
  const std::size_t child = json.find("\"name\":\"child\"");
  ASSERT_NE(parent, std::string::npos);
  ASSERT_NE(child, std::string::npos);
  EXPECT_LT(parent, child) << json;
}

TEST(TraceRecorderTest, ExportIsByteStable) {
  const auto fill = [] {
    TraceRecorder rec(/*enabled=*/true);
    const int a = rec.RegisterProcess("a");
    const int b = rec.RegisterProcess("b");
    rec.Span(b, "exec/gpu1", "x", Micros(2), Micros(2));
    rec.Span(a, "exec/gpu0", "x", Micros(2), Micros(2));
    rec.Counter(a, "bw/pcie", "gbps", Micros(1), 3.5);
    rec.Instant(b, "router", "d", Micros(2));
    return rec.ToJson();
  };
  EXPECT_EQ(fill(), fill());
}

TEST(TraceRecorderTest, AdoptRemapsProcessIds) {
  TraceRecorder master(/*enabled=*/true);
  const int a = master.RegisterProcess("strategyA");
  master.Span(a, "exec/gpu0", "warm", 0, Micros(1));

  TraceRecorder task(/*enabled=*/true);
  const int b = task.RegisterProcess("strategyB");
  EXPECT_EQ(b, 0);  // task recorders number their own processes from zero
  task.Span(b, "exec/gpu0", "warm", 0, Micros(1));

  master.Adopt(std::move(task));
  ASSERT_EQ(master.document().process_names.size(), 2u);
  EXPECT_EQ(master.document().process_names[1], "strategyB");
  ASSERT_EQ(master.size(), 2u);
  // The adopted event moved past the processes already registered here.
  EXPECT_EQ(master.document().events[1].pid, 1);
  const std::string json = master.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"strategyA\""), std::string::npos);
  EXPECT_NE(json.find("\"strategyB\""), std::string::npos);
}

TEST(TraceRecorderTest, EscapesControlCharactersInNames) {
  TraceRecorder rec(/*enabled=*/true);
  const int pid = rec.RegisterProcess("p");
  rec.Span(pid, "t", std::string("bad\x01name\tquote\""), 0, Micros(1));
  const std::string json = rec.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\\u0001"), std::string::npos) << json;
  EXPECT_NE(json.find("\\t"), std::string::npos) << json;
  EXPECT_NE(json.find("\\\""), std::string::npos) << json;
  // The raw control byte must not leak into the document.
  EXPECT_EQ(json.find('\x01'), std::string::npos);
}

// ---------------------------------------------------------------- registry

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.counter("server.requests"), 0);
  reg.AddCounter("server.requests");
  reg.AddCounter("server.requests", 4);
  EXPECT_EQ(reg.counter("server.requests"), 5);

  reg.SetGauge("server.queue_depth.gpu0", 3.0);
  reg.SetGauge("server.queue_depth.gpu0", 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("server.queue_depth.gpu0"), 1.0);

  for (int i = 1; i <= 100; ++i) {
    reg.Observe("server.latency_ms", static_cast<double>(i));
  }
  const HistogramSummary h = reg.histogram("server.latency_ms");
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.mean, 50.5);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
  EXPECT_NEAR(h.p50, 50.0, 1.1);
  EXPECT_NEAR(h.p99, 99.0, 1.1);
  EXPECT_FALSE(reg.empty());
}

// Degenerate histogram summaries are pinned: a never-observed histogram is
// all zeros, and a single observation puts that value in every field.
TEST(MetricsRegistryTest, ZeroAndOneSampleHistogramSummaries) {
  MetricsRegistry reg;
  const HistogramSummary none = reg.histogram("server.latency_ms");
  EXPECT_EQ(none.count, 0u);
  EXPECT_DOUBLE_EQ(none.mean, 0.0);
  EXPECT_DOUBLE_EQ(none.min, 0.0);
  EXPECT_DOUBLE_EQ(none.max, 0.0);
  EXPECT_DOUBLE_EQ(none.p50, 0.0);
  EXPECT_DOUBLE_EQ(none.p95, 0.0);
  EXPECT_DOUBLE_EQ(none.p99, 0.0);

  reg.Observe("server.latency_ms", 42.0);
  const HistogramSummary one = reg.histogram("server.latency_ms");
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 42.0);
  EXPECT_DOUBLE_EQ(one.min, 42.0);
  EXPECT_DOUBLE_EQ(one.max, 42.0);
  EXPECT_DOUBLE_EQ(one.p50, 42.0);
  EXPECT_DOUBLE_EQ(one.p95, 42.0);
  EXPECT_DOUBLE_EQ(one.p99, 42.0);
  // Both shapes export as valid JSON.
  EXPECT_TRUE(JsonChecker(reg.ToJson()).Valid()) << reg.ToJson();
}

TEST(MetricsRegistryTest, JsonExportIsSortedAndValid) {
  MetricsRegistry reg;
  EXPECT_EQ(MetricsRegistry().ToJson(), "{}");  // empty sections are omitted
  reg.AddCounter("b.second");
  reg.AddCounter("a.first");
  reg.SetGauge("g.depth", 2.0);
  reg.Observe("h.latency", 7.0);
  const std::string json = reg.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // Keys render in sorted order regardless of first-touch order.
  EXPECT_LT(json.find("a.first"), json.find("b.second"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_EQ(reg.ToJson(), json);  // export does not perturb the registry
}

// ------------------------------------------------------- journal counters

// The streaming journal writer threads its progress through the registry:
// exact counter values, stable sorted-key snapshots, and nothing at all when
// no registry is attached.
TEST(MetricsRegistryTest, JournalCountersTrackTheWriterExactly) {
  const std::string path = ::testing::TempDir() + "/obs_journal.dpj";
  MetricsRegistry reg;
  CausalGraph graph(/*enabled=*/true);
  JournalWriter writer;
  JournalWriterOptions small;
  small.chunk_requests = 2;
  ASSERT_TRUE(writer.Open(path, small, &reg));
  graph.AttachSink(&writer);
  const int process = graph.RegisterProcess("p");
  for (int i = 0; i < 5; ++i) {
    const int req = graph.BeginRequest(process, i, i * 10);
    const CpNodeId exec = graph.AddNode(req, CpKind::kExec, "exec",
                                        "exec/gpu0", i * 10, i * 10 + 5);
    graph.AddEdge(graph.arrival_node(req), exec);
    if (i != 4) {
      graph.EndRequest(req, i * 10 + 5, exec);
    }
  }
  graph.FlushOpenRequests();  // retires request 4 with completion -1
  ASSERT_TRUE(writer.Finish());

  EXPECT_EQ(reg.counter("journal.requests"), 5);
  EXPECT_EQ(reg.counter("journal.incomplete_requests"), 1);
  EXPECT_EQ(reg.counter("journal.nodes"), 10);  // arrival + exec per request
  EXPECT_EQ(reg.counter("journal.edges"), 5);
  EXPECT_EQ(reg.counter("journal.chunks"), 3);  // 2 + 2 + 1
  EXPECT_EQ(reg.counter("journal.bytes"),
            static_cast<std::int64_t>(writer.bytes_written()));
  EXPECT_EQ(writer.totals().chunks, 3u);

  // The snapshot renders journal.* in sorted key order, byte-stable.
  const std::string json = reg.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_LT(json.find("journal.bytes"), json.find("journal.chunks"));
  EXPECT_LT(json.find("journal.chunks"), json.find("journal.edges"));
  EXPECT_LT(json.find("journal.edges"), json.find("journal.incomplete"));
  EXPECT_LT(json.find("journal.incomplete"), json.find("journal.nodes"));
  EXPECT_LT(json.find("journal.nodes"), json.find("journal.requests"));
  EXPECT_EQ(reg.ToJson(), json);
  std::remove(path.c_str());
}

TEST(MetricsRegistryTest, WriterWithoutRegistryTouchesNoMetrics) {
  const std::string path = ::testing::TempDir() + "/obs_journal_noreg.dpj";
  CausalGraph graph(/*enabled=*/true);
  JournalWriter writer;
  ASSERT_TRUE(writer.Open(path));  // no registry attached
  graph.AttachSink(&writer);
  const int process = graph.RegisterProcess("p");
  const int req = graph.BeginRequest(process, 0, 0);
  graph.EndRequest(req, 1, graph.arrival_node(req));
  ASSERT_TRUE(writer.Finish());
  EXPECT_EQ(writer.totals().requests, 1u);
  std::remove(path.c_str());
}

TEST(CausalGraphTest, DisabledGraphAllocatesNothing) {
  // The disabled hot path mirrors the TraceRecorder contract: every recorder
  // call drops without touching the heap, so journaling costs nothing when
  // off. (Short labels stay in SSO buffers; the graph must not copy them.)
  CausalGraph off(/*enabled=*/false);
  EXPECT_FALSE(off.enabled());
  const std::size_t before = g_allocations;
  const int process = off.RegisterProcess("serve");
  const int req = off.BeginRequest(process, 3, 100);
  const CpNodeId node =
      off.AddNode(req, CpKind::kPcie, "load", "pcie/gpu0", 100, 200, 64, 50);
  off.SetNodeDhaPcie(node, 0);
  off.AddEdge(off.arrival_node(req), node);
  off.MarkCold(req);
  off.EndRequest(req, 200, node);
  const std::size_t after = g_allocations;
  EXPECT_EQ(process, 0);
  EXPECT_EQ(req, -1);
  EXPECT_EQ(node, -1);
  EXPECT_EQ(after, before);
  EXPECT_TRUE(off.empty());
}

// ---------------------------------------------------------------- end to end

// One PT+DHA cold start on the 2-GPU A5000 box with telemetry attached: the
// golden path of the observability stack. The exported document must be
// valid, Perfetto-loadable (metadata + spans + counters) and byte-stable.
class ColdStartTraceTest : public ::testing::Test {
 protected:
  static std::string RunOnce(TraceRecorder* out_recorder,
                             MetricsRegistry* out_registry,
                             bool record_timeline,
                             std::vector<TimelineEvent>* out_timeline) {
    const Topology topology = Topology::A5000Box();
    const PerfModel perf(topology.gpu(), topology.pcie());
    Simulator sim;
    ServerFabric fabric(&sim, &topology);
    Engine engine(&sim, &fabric, &perf);

    TraceRecorder local(/*enabled=*/true);
    TraceRecorder* recorder = out_recorder != nullptr ? out_recorder : &local;
    const int pid = recorder->RegisterProcess("PT+DHA cold start");
    engine.set_telemetry(recorder, pid);
    fabric.fabric().set_telemetry(recorder, out_registry, pid);

    const Model model = ModelZoo::BertBase();
    ProfilerOptions popts;
    popts.noise_stddev = 0.0;
    const ModelProfile profile = Profiler(&perf, popts).Profile(model);
    const Strategy strategy = Strategy::kDeepPlanPtDha;
    const int degree = StrategyDegree(strategy, topology, /*primary=*/0);
    PipelineOptions pipeline;
    pipeline.nvlink = topology.nvlink();
    const ExecutionPlan plan = MakeStrategyPlan(strategy, profile, degree, pipeline);
    ColdRunOptions options = MakeColdRunOptions(strategy);
    options.record_timeline = record_timeline;
    InferenceResult result;
    engine.RunCold(model, plan, /*primary=*/0,
                   TransmissionPlanner::ChooseSecondaries(topology, 0, degree),
                   options, [&](const InferenceResult& r) { result = r; });
    sim.Run();
    EXPECT_GT(result.latency, 0);
    if (out_timeline != nullptr) {
      *out_timeline = result.timeline;
    }
    return recorder->ToJson();
  }
};

TEST_F(ColdStartTraceTest, GoldenTwoGpuTraceIsPerfettoLoadable) {
  TraceRecorder recorder(/*enabled=*/true);
  MetricsRegistry registry;
  const std::string json = RunOnce(&recorder, &registry,
                                   /*record_timeline=*/false, nullptr);
  EXPECT_FALSE(recorder.empty());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // Per-GPU PCIe load tracks (PT splits the model over both GPUs), the
  // primary's exec track, NVLink migration, and per-link bandwidth counters.
  EXPECT_NE(json.find("\"pcie/gpu0\""), std::string::npos);
  EXPECT_NE(json.find("\"pcie/gpu1\""), std::string::npos);
  EXPECT_NE(json.find("\"exec/gpu0\""), std::string::npos);
  EXPECT_NE(json.find("nvlink/"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("bw/"), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  // The fabric counted the PT transfers.
  EXPECT_GT(registry.counter("fabric.transfers"), 0);
  EXPECT_GT(registry.counter("fabric.bytes"), 0);
}

TEST_F(ColdStartTraceTest, IdenticalRunsExportIdenticalBytes) {
  const std::string a = RunOnce(nullptr, nullptr, false, nullptr);
  const std::string b = RunOnce(nullptr, nullptr, false, nullptr);
  EXPECT_EQ(a, b);
}

TEST_F(ColdStartTraceTest, RecorderMirrorsTimelineWithoutRecordingIt) {
  // The recorder re-emits the engine's per-operation timeline even when the
  // per-run InferenceResult timeline stays off; interval counts must agree.
  // Exec operations export as complete slices; load/migrate intervals export
  // as async begin/end pairs (they may overlap across concurrent runs).
  std::vector<TimelineEvent> timeline;
  RunOnce(nullptr, nullptr, /*record_timeline=*/true, &timeline);
  ASSERT_FALSE(timeline.empty());

  TraceRecorder recorder(/*enabled=*/true);
  std::vector<TimelineEvent> no_timeline;
  RunOnce(&recorder, nullptr, /*record_timeline=*/false, &no_timeline);
  EXPECT_TRUE(no_timeline.empty());
  std::size_t intervals = 0;
  std::size_t async_begins = 0;
  std::size_t async_ends = 0;
  for (const TraceEvent& e : recorder.document().events) {
    if (e.phase == TracePhase::kSpan || e.phase == TracePhase::kAsyncBegin) {
      ++intervals;
    }
    if (e.phase == TracePhase::kAsyncBegin) {
      ++async_begins;
    }
    if (e.phase == TracePhase::kAsyncEnd) {
      ++async_ends;
    }
  }
  EXPECT_GT(async_begins, 0u);  // the PT plan always streams some layers
  EXPECT_EQ(async_begins, async_ends);
  EXPECT_EQ(intervals, timeline.size());
}

TEST(FabricTelemetryTest, ContendedLinkEmitsChangingCounterSamples) {
  Simulator sim;
  Fabric fabric(&sim);
  // Uplink X carries both transfers; Y is B's private downstream link. The
  // per-link counter records total allocation, so the saturated uplink holds
  // steady at capacity while Y's track shows B's fair share moving as the
  // contention on X comes and goes: 6 (sharing) -> 12 (A done) -> 0 (B done).
  const LinkId x = fabric.AddLink("pcie/uplink", 12.0e9);
  const LinkId y = fabric.AddLink("pcie/gpu1", 20.0e9);
  TraceRecorder recorder(/*enabled=*/true);
  MetricsRegistry registry;
  fabric.set_telemetry(&recorder, &registry, recorder.RegisterProcess("fabric"));
  fabric.Start({x}, 300'000'000, 0, [](Nanos) {});
  sim.ScheduleAt(Millis(10), [&] {
    fabric.Start({x, y}, 600'000'000, 0, [](Nanos) {});
  });
  sim.Run();
  std::vector<double> y_samples;
  for (const TraceEvent& e : recorder.document().events) {
    if (e.phase == TracePhase::kCounter && e.track == "bw/pcie/gpu1") {
      y_samples.push_back(e.value);
    }
  }
  EXPECT_EQ(registry.counter("fabric.transfers"), 2);
  EXPECT_EQ(registry.counter("fabric.bytes"), 900'000'000);
  ASSERT_GE(y_samples.size(), 3u);
  EXPECT_DOUBLE_EQ(y_samples[0], 6.0);   // fair half of the shared uplink
  EXPECT_DOUBLE_EQ(y_samples[1], 12.0);  // A finished, B gets the full uplink
  EXPECT_DOUBLE_EQ(y_samples.back(), 0.0);
}

}  // namespace
}  // namespace deepplan
