// Tests for the causal critical-path profiler: hand-built DAGs with known
// critical paths, exact attribution sums, contention accounting against the
// real fabric, journal round-trips, sweep determinism across thread counts,
// the profile-report schema linter, and the bench_diff regression gate.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/check/bench_diff.h"
#include "src/check/trace_lint.h"
#include "src/obs/causal_graph.h"
#include "src/obs/critical_path.h"
#include "src/obs/profile_report.h"
#include "src/obs/utilization.h"
#include "src/sim/fabric.h"
#include "src/sim/simulator.h"

namespace deepplan {
namespace {

using check::BenchDiffOptions;
using check::BenchDiffResult;
using check::DiffBenchReports;
using check::LintProfileReport;
using check::TraceLintResult;

// ------------------------------------------------ hand-built DAG fixtures

// One cold request whose critical path and per-component charges are known
// in closed form: arrival(1000) -> evict[1000,1200] -> pcie[1200,2200]
// (solo 800 => 200 contention) -> 100ns gap (sync) -> exec[2300,3000],
// plus one off-path exec[1500,1600] that must count toward exec_busy only.
CausalGraph KnownPathGraph() {
  CausalGraph graph(/*enabled=*/true);
  const int process = graph.RegisterProcess("fixture");
  const int req = graph.BeginRequest(process, /*instance=*/7, /*arrival=*/1000);
  graph.MarkCold(req);
  const CpNodeId arrival = graph.arrival_node(req);
  const CpNodeId evict =
      graph.AddNode(req, CpKind::kEvict, "evict", "gpu0", 1000, 1200);
  const CpNodeId pcie = graph.AddNode(req, CpKind::kPcie, "load", "pcie/gpu0",
                                      1200, 2200, /*bytes=*/1000, /*solo=*/800);
  const CpNodeId exec =
      graph.AddNode(req, CpKind::kExec, "exec", "exec/gpu0", 2300, 3000);
  const CpNodeId off_path =
      graph.AddNode(req, CpKind::kExec, "warmup", "exec/gpu0", 1500, 1600);
  graph.AddEdge(arrival, evict);
  graph.AddEdge(evict, pcie);
  graph.AddEdge(pcie, exec);
  graph.AddEdge(arrival, off_path);
  graph.EndRequest(req, 3000, exec);
  return graph;
}

TEST(CriticalPathTest, KnownPathAttributesEveryComponent) {
  const CausalGraph graph = KnownPathGraph();
  const ProfileSummary summary = AnalyzeCriticalPaths(graph);
  ASSERT_EQ(summary.requests.size(), 1u);
  const RequestProfile& p = summary.requests[0];
  EXPECT_EQ(p.latency, 2000);
  EXPECT_EQ(p.attribution.queue, 0);
  EXPECT_EQ(p.attribution.evict, 200);
  EXPECT_EQ(p.attribution.pcie, 800);
  EXPECT_EQ(p.attribution.pcie_contention, 200);
  EXPECT_EQ(p.attribution.nvlink, 0);
  EXPECT_EQ(p.attribution.exec, 700);
  EXPECT_EQ(p.attribution.sync, 100);
  EXPECT_EQ(p.attribution.Total(), p.latency);
  EXPECT_EQ(p.exec_busy, 700 + 100);  // the off-path node counts here only
  EXPECT_TRUE(p.cold);
  EXPECT_EQ(p.instance, 7);
  // The path runs arrival -> evict -> pcie -> exec; the off-path node (id 4)
  // must not appear.
  ASSERT_EQ(p.path.size(), 4u);
  EXPECT_EQ(p.path.front(), graph.requests()[0].arrival_node);
  EXPECT_EQ(p.path.back(), graph.requests()[0].terminal_node);
  for (const CpNodeId id : p.path) {
    EXPECT_NE(graph.nodes()[static_cast<std::size_t>(id)].label, "warmup");
  }
}

TEST(CriticalPathTest, GapAfterArrivalChargesQueue) {
  CausalGraph graph(/*enabled=*/true);
  const int process = graph.RegisterProcess("queued");
  const int req = graph.BeginRequest(process, 0, /*arrival=*/0);
  const CpNodeId exec =
      graph.AddNode(req, CpKind::kExec, "warm", "exec/gpu1", 500, 1500);
  graph.AddEdge(graph.arrival_node(req), exec);
  graph.EndRequest(req, 1500, exec);

  const ProfileSummary summary = AnalyzeCriticalPaths(graph);
  ASSERT_EQ(summary.requests.size(), 1u);
  const RequestProfile& p = summary.requests[0];
  EXPECT_EQ(p.attribution.queue, 500);
  EXPECT_EQ(p.attribution.exec, 1000);
  EXPECT_EQ(p.attribution.sync, 0);
  EXPECT_EQ(p.attribution.Total(), p.latency);
  EXPECT_FALSE(p.cold);
}

TEST(CriticalPathTest, RequestsWithoutCompletionAreSkipped) {
  CausalGraph graph(/*enabled=*/true);
  const int process = graph.RegisterProcess("open");
  graph.BeginRequest(process, 0, 0);  // never ended
  const ProfileSummary summary = AnalyzeCriticalPaths(graph);
  EXPECT_TRUE(summary.requests.empty());
  EXPECT_EQ(summary.total_latency, 0);
}

// ------------------------------------------------ contention vs the fabric

// Two equal transfers sharing one link: max-min fair sharing halves each
// transfer's bandwidth, so each sees actual ~= 2x solo and the excess must
// land in pcie_contention, exactly.
TEST(CriticalPathTest, SharedLinkContentionMatchesFabric) {
  Simulator sim;
  Fabric fabric(&sim);
  const LinkId link = fabric.AddLink("uplink", 1e9);  // 1 GB/s
  const std::int64_t bytes = 1'000'000;

  Nanos elapsed_a = -1;
  Nanos elapsed_b = -1;
  fabric.Start({link}, bytes, /*latency=*/0,
               [&elapsed_a](Nanos e) { elapsed_a = e; });
  fabric.Start({link}, bytes, /*latency=*/0,
               [&elapsed_b](Nanos e) { elapsed_b = e; });
  sim.Run();
  ASSERT_GT(elapsed_a, 0);
  ASSERT_GT(elapsed_b, 0);

  const Nanos solo = fabric.SoloDuration({link}, bytes, 0);
  EXPECT_EQ(solo, 1'000'000);       // 1 MB at 1 GB/s
  EXPECT_GE(elapsed_a, 2 * solo - 2);  // fair share: ~half bandwidth

  CausalGraph graph(/*enabled=*/true);
  const int process = graph.RegisterProcess("contention");
  const std::vector<Nanos> elapsed = {elapsed_a, elapsed_b};
  for (int i = 0; i < 2; ++i) {
    const int req = graph.BeginRequest(process, i, 0);
    const CpNodeId node = graph.AddNode(
        req, CpKind::kPcie, "load", "pcie/uplink", 0,
        elapsed[static_cast<std::size_t>(i)], bytes, solo);
    graph.AddEdge(graph.arrival_node(req), node);
    graph.EndRequest(req, elapsed[static_cast<std::size_t>(i)], node);
  }

  const ProfileSummary summary = AnalyzeCriticalPaths(graph);
  ASSERT_EQ(summary.requests.size(), 2u);
  for (const RequestProfile& p : summary.requests) {
    EXPECT_EQ(p.attribution.pcie, solo);
    EXPECT_EQ(p.attribution.pcie_contention, p.latency - solo);
    EXPECT_GT(p.attribution.pcie_contention, 0);
    EXPECT_EQ(p.attribution.Total(), p.latency);
  }

  // The utilization module sees one merged interval on the shared lane with
  // the contended share pro-rated in.
  const UtilizationReport util = ComputeUtilization(graph);
  ASSERT_EQ(util.resources.size(), 1u);
  EXPECT_EQ(util.resources[0].resource, "pcie/uplink");
  EXPECT_GT(util.resources[0].contended, 0);
  EXPECT_LE(util.resources[0].contended, util.resources[0].busy);
}

// ------------------------------------------------ utilization merging

// Partial overlap, touching, and disjoint intervals on one resource, with a
// second resource and a second process active over the same wall-clock time:
// merging must stay within each (process, resource) timeline.
TEST(UtilizationTest, MergesPartialOverlapPerResourceOnly) {
  CausalGraph graph(/*enabled=*/true);
  const int p0 = graph.RegisterProcess("first");
  const int p1 = graph.RegisterProcess("second");

  const int req0 = graph.BeginRequest(p0, 0, /*arrival=*/0);
  // pcie/gpu0: [0,100] (solo 60 => 40 contended) partially overlaps [50,150]
  // (solo 100 => 0 contended); [160,250] (solo 60 => 30 contended) is
  // disjoint. Merged: [0,150] + [160,250].
  graph.AddNode(req0, CpKind::kPcie, "a", "pcie/gpu0", 0, 100, 100, 60);
  graph.AddNode(req0, CpKind::kPcie, "b", "pcie/gpu0", 50, 150, 100, 100);
  graph.AddNode(req0, CpKind::kPcie, "c", "pcie/gpu0", 160, 250, 90, 60);
  // exec/gpu0 overlaps [120,220] in wall-clock time but is its own resource.
  const CpNodeId exec =
      graph.AddNode(req0, CpKind::kExec, "e", "exec/gpu0", 120, 220);
  graph.EndRequest(req0, 250, exec);

  // A second process busy on a resource with the *same name* stays separate.
  const int req1 = graph.BeginRequest(p1, 0, /*arrival=*/0);
  const CpNodeId other =
      graph.AddNode(req1, CpKind::kPcie, "x", "pcie/gpu0", 0, 50, 50, 50);
  graph.EndRequest(req1, 50, other);

  const UtilizationReport util = ComputeUtilization(graph);
  ASSERT_EQ(util.resources.size(), 3u);

  // Output order is (process, resource name).
  const ResourceTimeline& exec_tl = util.resources[0];
  EXPECT_EQ(exec_tl.process, p0);
  EXPECT_EQ(exec_tl.resource, "exec/gpu0");
  EXPECT_EQ(exec_tl.kind, "exec");
  ASSERT_EQ(exec_tl.intervals.size(), 1u);
  EXPECT_EQ(exec_tl.busy, 100);
  EXPECT_EQ(exec_tl.contended, 0);
  EXPECT_EQ(exec_tl.span, 250);

  const ResourceTimeline& pcie_tl = util.resources[1];
  EXPECT_EQ(pcie_tl.process, p0);
  EXPECT_EQ(pcie_tl.resource, "pcie/gpu0");
  EXPECT_EQ(pcie_tl.kind, "pcie");
  ASSERT_EQ(pcie_tl.intervals.size(), 2u);
  EXPECT_EQ(pcie_tl.intervals[0].start, 0);
  EXPECT_EQ(pcie_tl.intervals[0].end, 150);
  EXPECT_EQ(pcie_tl.intervals[0].contended, 40);
  EXPECT_EQ(pcie_tl.intervals[1].start, 160);
  EXPECT_EQ(pcie_tl.intervals[1].end, 250);
  EXPECT_EQ(pcie_tl.intervals[1].contended, 30);
  EXPECT_EQ(pcie_tl.busy, 150 + 90);
  EXPECT_EQ(pcie_tl.contended, 70);
  EXPECT_DOUBLE_EQ(pcie_tl.utilization, 240.0 / 250.0);

  const ResourceTimeline& other_tl = util.resources[2];
  EXPECT_EQ(other_tl.process, p1);
  EXPECT_EQ(other_tl.resource, "pcie/gpu0");
  EXPECT_EQ(other_tl.busy, 50);
  EXPECT_EQ(other_tl.span, 50);
  EXPECT_DOUBLE_EQ(other_tl.utilization, 1.0);
}

// Two fully-overlapped heavily-contended transfers: the merged interval's
// contended time is capped at the interval's length (contention can never
// exceed wall-clock busy time).
TEST(UtilizationTest, ContendedTimeIsCappedAtBusyTime) {
  CausalGraph graph(/*enabled=*/true);
  const int process = graph.RegisterProcess("capped");
  const int req = graph.BeginRequest(process, 0, 0);
  graph.AddNode(req, CpKind::kPcie, "a", "pcie/gpu0", 0, 100, 100, 10);
  const CpNodeId b =
      graph.AddNode(req, CpKind::kPcie, "b", "pcie/gpu0", 0, 100, 100, 10);
  graph.EndRequest(req, 100, b);

  const UtilizationReport util = ComputeUtilization(graph);
  ASSERT_EQ(util.resources.size(), 1u);
  EXPECT_EQ(util.resources[0].busy, 100);
  EXPECT_EQ(util.resources[0].contended, 100);  // 90 + 90, capped
}

// Touching intervals (end == next start) coalesce; zero-length and
// resource-less nodes are ignored entirely.
TEST(UtilizationTest, TouchingIntervalsCoalesceAndDegenerateNodesAreIgnored) {
  CausalGraph graph(/*enabled=*/true);
  const int process = graph.RegisterProcess("touch");
  const int req = graph.BeginRequest(process, 0, 0);
  graph.AddNode(req, CpKind::kExec, "a", "gpu0", 0, 100);
  graph.AddNode(req, CpKind::kExec, "b", "gpu0", 100, 200);
  graph.AddNode(req, CpKind::kExec, "zero", "gpu0", 150, 150);  // zero-length
  const CpNodeId tail = graph.AddNode(req, CpKind::kExec, "anon", "", 0, 500);
  graph.EndRequest(req, 200, tail);

  const UtilizationReport util = ComputeUtilization(graph);
  ASSERT_EQ(util.resources.size(), 1u);
  EXPECT_EQ(util.resources[0].resource, "gpu0");
  ASSERT_EQ(util.resources[0].intervals.size(), 1u);
  EXPECT_EQ(util.resources[0].intervals[0].start, 0);
  EXPECT_EQ(util.resources[0].intervals[0].end, 200);
  EXPECT_EQ(util.resources[0].busy, 200);
}

// ------------------------------------------------ engine-recorded journals

TEST(CriticalPathTest, EngineColdRunAttributionSumsExactly) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  for (const Strategy strategy :
       {Strategy::kBaseline, Strategy::kPipeSwitch, Strategy::kDeepPlanDha,
        Strategy::kDeepPlanPtDha}) {
    CausalGraph graph(/*enabled=*/true);
    const int process = graph.RegisterProcess(StrategyName(strategy));
    const Model model = ModelZoo::BertBase();
    const bench::ColdMeasurement m = bench::RunColdWithProfile(
        topology, perf, model, strategy, bench::ExactProfile(perf, model),
        /*batch=*/1, &graph, process);
    const ProfileSummary summary = AnalyzeCriticalPaths(graph);
    ASSERT_EQ(summary.requests.size(), 1u) << StrategyName(strategy);
    const RequestProfile& p = summary.requests[0];
    EXPECT_EQ(p.attribution.Total(), p.latency) << StrategyName(strategy);
    EXPECT_EQ(p.latency, m.result.latency) << StrategyName(strategy);
    // latency - exec_busy is the engine's own hand-computed stall (Fig. 2).
    EXPECT_EQ(p.latency - p.exec_busy, m.result.stall)
        << StrategyName(strategy);
    EXPECT_TRUE(p.cold);
  }
}

TEST(CriticalPathTest, RecordingIsTimingNeutral) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const Model model = ModelZoo::Gpt2();
  const ModelProfile profile = bench::ExactProfile(perf, model);
  const bench::ColdMeasurement plain = bench::RunColdWithProfile(
      topology, perf, model, Strategy::kDeepPlanPtDha, profile);
  CausalGraph graph(/*enabled=*/true);
  const bench::ColdMeasurement recorded = bench::RunColdWithProfile(
      topology, perf, model, Strategy::kDeepPlanPtDha, profile, /*batch=*/1,
      &graph, graph.RegisterProcess("on"));
  EXPECT_EQ(plain.result.latency, recorded.result.latency);
  EXPECT_EQ(plain.result.stall, recorded.result.stall);
  EXPECT_EQ(plain.result.exec_busy, recorded.result.exec_busy);
  EXPECT_GT(graph.nodes().size(), 1u);
}

// The stitched journal (and therefore the whole report) must be
// byte-identical whether the sweep ran on 1 thread or 8.
TEST(CriticalPathTest, SweepJournalDeterministicAcrossJobs) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const std::vector<Model> models = {ModelZoo::BertBase(), ModelZoo::Gpt2(),
                                     ModelZoo::ResNet50(),
                                     ModelZoo::RobertaBase()};
  auto run = [&](int jobs) {
    const SweepRunner runner(jobs);
    std::vector<CausalGraph> graphs =
        runner.Map(static_cast<int>(models.size()), [&](int i) {
          CausalGraph graph(/*enabled=*/true);
          const Model& model = models[static_cast<std::size_t>(i)];
          const int process = graph.RegisterProcess(model.name());
          bench::RunColdWithProfile(topology, perf, model,
                                    Strategy::kPipeSwitch,
                                    bench::ExactProfile(perf, model),
                                    /*batch=*/1, &graph, process);
          return graph;
        });
    CausalGraph merged(/*enabled=*/true);
    for (CausalGraph& graph : graphs) {
      merged.Adopt(std::move(graph));
    }
    return merged.ToJson();
  };
  const std::string serial = run(1);
  const std::string parallel = run(8);
  EXPECT_EQ(serial, parallel);

  CausalGraph parsed;
  std::string error;
  ASSERT_TRUE(CausalGraph::FromJson(serial, &parsed, &error)) << error;
  EXPECT_EQ(ProfileReportJson(BuildProfileReport(parsed)),
            ProfileReportJson(BuildProfileReport(parsed)));
  EXPECT_EQ(parsed.requests().size(), models.size());
}

// ------------------------------------------------ journal round-trip

TEST(CausalGraphTest, JournalRoundTripsThroughJson) {
  const CausalGraph graph = KnownPathGraph();
  const std::string journal = graph.ToJson();
  CausalGraph parsed;
  std::string error;
  ASSERT_TRUE(CausalGraph::FromJson(journal, &parsed, &error)) << error;
  EXPECT_EQ(parsed.ToJson(), journal);
  EXPECT_EQ(parsed.processes(), graph.processes());
  ASSERT_EQ(parsed.nodes().size(), graph.nodes().size());
  EXPECT_EQ(parsed.edges(), graph.edges());
}

TEST(CausalGraphTest, FromJsonRejectsDanglingReferences) {
  CausalGraph parsed;
  std::string error;
  EXPECT_FALSE(CausalGraph::FromJson("not json", &parsed, &error));
  EXPECT_FALSE(error.empty());
  // A node pointing at a request that does not exist.
  const std::string bad =
      "{\"causal_journal\":{\"processes\":[\"p\"],\"requests\":[],"
      "\"nodes\":[{\"id\":0,\"request\":3,\"kind\":\"exec\",\"label\":\"x\","
      "\"resource\":\"gpu0\",\"start_ns\":0,\"end_ns\":1,\"bytes\":0,"
      "\"solo_ns\":-1}],\"edges\":[]}}";
  EXPECT_FALSE(CausalGraph::FromJson(bad, &parsed, &error));
}

TEST(CausalGraphTest, DisabledGraphRecordsNothing) {
  CausalGraph graph(/*enabled=*/false);
  EXPECT_EQ(graph.RegisterProcess("p"), 0);
  const int req = graph.BeginRequest(0, 0, 0);
  EXPECT_EQ(req, -1);
  EXPECT_EQ(graph.AddNode(req, CpKind::kExec, "x", "gpu0", 0, 1), -1);
  graph.AddEdge(-1, -1);
  graph.EndRequest(req, 1, -1);
  EXPECT_TRUE(graph.empty());
  EXPECT_TRUE(graph.nodes().empty());
}

// ------------------------------------------------ report + schema linter

TEST(ProfileReportTest, ReportJsonPassesSchemaLint) {
  const CausalGraph graph = KnownPathGraph();
  const ProfileReport report = BuildProfileReport(graph);
  EXPECT_EQ(report.bottleneck, "pcie");
  const std::string json = ProfileReportJson(report);
  const TraceLintResult lint = LintProfileReport(json);
  EXPECT_TRUE(lint.ok()) << (lint.errors.empty() ? "" : lint.errors[0]);
}

TEST(ProfileReportTest, SchemaLintCatchesBrokenAttributionSum) {
  // latency_ns says 100 but the components sum to 90.
  const std::string bad =
      "{\"profile_report\":{\"requests\":1,\"cold_requests\":0,"
      "\"bottleneck\":\"exec\",\"total_latency_ns\":100,"
      "\"totals\":{\"queue_ns\":0,\"evict_ns\":0,\"pcie_ns\":0,"
      "\"pcie_contention_ns\":0,\"nvlink_ns\":0,\"exec_ns\":90,"
      "\"sync_ns\":0},\"processes\":[],\"per_request\":[],"
      "\"utilization\":[]}}";
  const TraceLintResult lint = LintProfileReport(bad);
  EXPECT_FALSE(lint.ok());
}

TEST(ProfileReportTest, SchemaLintRejectsNonReportDocuments) {
  EXPECT_FALSE(LintProfileReport("{}").ok());
  EXPECT_FALSE(LintProfileReport("[1,2,3]").ok());
  EXPECT_FALSE(LintProfileReport("garbage").ok());
}

// ------------------------------------------------ bench_diff gate

std::string BenchDoc(double latency_ms, double wall_ms) {
  JsonObject point;
  point.Set("strategy", "PipeSwitch").Set("mean_latency_ms", latency_ms);
  JsonArray points;
  points.AddRaw(point.Render());
  JsonObject doc;
  doc.Set("bench", "fixture")
      .Set("jobs", 4)
      .SetRaw("points", points.Render())
      .Set("wall_clock_ms", wall_ms);
  return doc.Render();
}

TEST(BenchDiffTest, IdenticalDocumentsPass) {
  const BenchDiffResult result =
      DiffBenchReports(BenchDoc(12.5, 100.0), BenchDoc(12.5, 100.0), {});
  EXPECT_TRUE(result.ok());
}

TEST(BenchDiffTest, MachineDependentKeysAreIgnored) {
  // Different wall clock and jobs: never a regression.
  std::string a = BenchDoc(12.5, 100.0);
  std::string b = BenchDoc(12.5, 987.0);
  const std::size_t jobs_pos = b.find("\"jobs\":4");
  ASSERT_NE(jobs_pos, std::string::npos);
  b.replace(jobs_pos, 8, "\"jobs\":9");
  EXPECT_TRUE(DiffBenchReports(a, b, {}).ok());
}

TEST(BenchDiffTest, TenPercentLatencyPerturbationIsFlagged) {
  const std::string golden = BenchDoc(100.0, 50.0);
  const std::string inflated = BenchDoc(110.0, 50.0);   // +10%
  const std::string deflated = BenchDoc(90.0, 50.0);    // -10%
  // Exact gate (default): both directions are regressions.
  EXPECT_FALSE(DiffBenchReports(golden, inflated, {}).ok());
  EXPECT_FALSE(DiffBenchReports(golden, deflated, {}).ok());
  // A 5% tolerance still flags them ...
  BenchDiffOptions tight;
  tight.rel_tol = 0.05;
  EXPECT_FALSE(DiffBenchReports(golden, inflated, tight).ok());
  EXPECT_FALSE(DiffBenchReports(golden, deflated, tight).ok());
  // ... and a 15% tolerance accepts them.
  BenchDiffOptions loose;
  loose.rel_tol = 0.15;
  EXPECT_TRUE(DiffBenchReports(golden, inflated, loose).ok());
  EXPECT_TRUE(DiffBenchReports(golden, deflated, loose).ok());
}

TEST(BenchDiffTest, StructuralDivergenceIsReportedWithPath) {
  const std::string golden = BenchDoc(100.0, 50.0);
  std::string renamed = golden;
  const std::size_t pos = renamed.find("mean_latency_ms");
  ASSERT_NE(pos, std::string::npos);
  renamed.replace(pos, 15, "mean_latency_xx");
  const BenchDiffResult result = DiffBenchReports(golden, renamed, {});
  ASSERT_FALSE(result.ok());
  bool mentions_point = false;
  for (const check::BenchDiffEntry& diff : result.diffs) {
    if (diff.path.find("points[0]") != std::string::npos) {
      mentions_point = true;
    }
  }
  EXPECT_TRUE(mentions_point);
}

TEST(BenchDiffTest, MalformedInputReportsParseError) {
  const BenchDiffResult result = DiffBenchReports("{", BenchDoc(1.0, 1.0), {});
  EXPECT_FALSE(result.parsed);
  EXPECT_FALSE(result.parse_error.empty());
  EXPECT_FALSE(result.ok());
}

// ------------------------------------------------ histogram percentiles

TEST(MetricsSnapshotTest, HistogramsExportPercentiles) {
  MetricsRegistry registry;
  for (int i = 1; i <= 100; ++i) {
    registry.Observe("server.latency_ms", static_cast<double>(i));
  }
  const HistogramSummary summary = registry.histogram("server.latency_ms");
  EXPECT_EQ(summary.count, 100);
  EXPECT_DOUBLE_EQ(summary.min, 1.0);
  EXPECT_DOUBLE_EQ(summary.max, 100.0);
  EXPECT_GE(summary.p95, summary.p50);
  EXPECT_GE(summary.p99, summary.p95);
  const std::string json = registry.Snapshot().Render();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// ------------------------------------------------ served workload journal

TEST(CriticalPathTest, ServedWorkloadAttributionIsExactForEveryRequest) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  ServerOptions options;
  options.strategy = Strategy::kPipeSwitch;
  Server server(topology, perf, options);
  const int type = server.RegisterModelType(ModelZoo::BertBase());
  server.AddInstances(type, 120);  // past capacity: forces cold starts

  CausalGraph graph(/*enabled=*/true);
  server.set_causal(&graph, graph.RegisterProcess("serve"));

  PoissonOptions w;
  w.rate_per_sec = 150.0;
  w.num_instances = 120;
  w.duration = Seconds(2.0);
  w.seed = 7;
  const ServingMetrics metrics = server.Run(GeneratePoissonTrace(w));
  ASSERT_GT(metrics.count(), 0u);

  const ProfileSummary summary = AnalyzeCriticalPaths(graph);
  EXPECT_EQ(summary.requests.size(), metrics.count());
  EXPECT_EQ(static_cast<std::size_t>(summary.cold_requests),
            metrics.ColdStartCount());
  for (const RequestProfile& p : summary.requests) {
    EXPECT_EQ(p.attribution.Total(), p.latency);
  }
  const ProfileReport report = BuildProfileReport(graph);
  EXPECT_TRUE(LintProfileReport(ProfileReportJson(report)).ok());
}

}  // namespace
}  // namespace deepplan
