#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/core/profiler.h"
#include "src/model/zoo.h"

namespace deepplan {
namespace {

// Hand-built profile for precise timeline assertions: three parameterized
// layers with load 100 and exec 10 each (units arbitrary ns).
ModelProfile TinyProfile() {
  ModelProfile p;
  p.model_name = "tiny";
  for (int i = 0; i < 3; ++i) {
    LayerProfile lp;
    lp.name = "l" + std::to_string(i);
    lp.kind = LayerKind::kLinear;
    lp.param_bytes = 1000;
    lp.load = 100;
    lp.exec_in_mem = 10;
    lp.exec_dha = 40;
    p.layers.push_back(lp);
  }
  return p;
}

TEST(PipelineTest, PipelinedTimelineOverlapsLoadAndExec) {
  const ModelProfile profile = TinyProfile();
  ExecutionPlan plan("tiny", 3);
  const PipelineResult r = SimulatePipeline(profile, plan);
  // Loads complete at 100, 200, 300. Exec: starts 100..110, 200..210, 300..310.
  EXPECT_EQ(r.layers[0].ready, 100);
  EXPECT_EQ(r.layers[1].ready, 200);
  EXPECT_EQ(r.layers[2].ready, 300);
  EXPECT_EQ(r.layers[0].exec_start, 100);
  EXPECT_EQ(r.layers[1].stall, 90);  // 110 -> 200
  EXPECT_EQ(r.total, 310);
  EXPECT_EQ(r.total_stall, 100 + 90 + 90);
  EXPECT_EQ(r.exec_busy, 30);
}

TEST(PipelineTest, BaselineWaitsForAllLoads) {
  const ModelProfile profile = TinyProfile();
  ExecutionPlan plan("tiny", 3);
  PipelineOptions options;
  options.pipelined = false;
  const PipelineResult r = SimulatePipeline(profile, plan, options);
  EXPECT_EQ(r.layers[0].exec_start, 300);
  EXPECT_EQ(r.total, 330);
}

TEST(PipelineTest, DhaLayerNeedsNoLoadAndPullsLoadsForward) {
  const ModelProfile profile = TinyProfile();
  ExecutionPlan plan("tiny", 3);
  plan.set_method(0, ExecMethod::kDirectHostAccess);
  const PipelineResult r = SimulatePipeline(profile, plan);
  // Layer 0 executes immediately (DHA, 40). Loads now only cover layers 1-2:
  // ready at 100 and 200. Exec: 0-40 (L0), 100-110 (L1), 200-210 (L2).
  EXPECT_EQ(r.layers[0].exec_start, 0);
  EXPECT_EQ(r.layers[0].exec_end, 40);
  EXPECT_EQ(r.layers[1].ready, 100);
  EXPECT_EQ(r.total, 210);
  // vs 310 all-load: DHA on layer 0 saves a full load slot.
}

TEST(PipelineTest, TwoPartitionsLoadInParallel) {
  const ModelProfile profile = TinyProfile();
  ExecutionPlan plan("tiny", 3);
  plan.set_partition(2, 1);  // last layer loads via the secondary GPU
  PipelineOptions options;
  options.nvlink.bw_bytes_per_sec = 1e12;  // make forwarding nearly free
  options.nvlink.transfer_latency = 1;
  const PipelineResult r = SimulatePipeline(profile, plan, options);
  // Partition 0 loads L0 at 100, L1 at 200. Partition 1 loads L2 at 100 in
  // parallel, forwards it by ~101. L2's exec starts when L1's exec ends (210).
  EXPECT_EQ(r.layers[0].ready, 100);
  EXPECT_EQ(r.layers[1].ready, 200);
  EXPECT_LE(r.layers[2].ready, 105);
  EXPECT_EQ(r.total, 220);
}

TEST(PipelineTest, NvlinkForwardingSerializesPerPartition) {
  ModelProfile profile = TinyProfile();
  ExecutionPlan plan("tiny", 3);
  plan.set_partition(1, 1);
  plan.set_partition(2, 1);
  PipelineOptions options;
  // NVLink takes 50 per layer (1000 bytes at 20 bytes/ns... use latency).
  options.nvlink.bw_bytes_per_sec = 1e12;
  options.nvlink.transfer_latency = 50;
  const PipelineResult r = SimulatePipeline(profile, plan, options);
  // Partition 1 PCIe: L1 at 100, L2 at 200. Migration: L1 at ~150, L2 at ~250.
  EXPECT_NEAR(static_cast<double>(r.layers[1].ready), 151, 2);
  EXPECT_NEAR(static_cast<double>(r.layers[2].ready), 251, 2);
}

TEST(PipelineTest, PcieShareDeratesPartitionBandwidth) {
  const ModelProfile profile = TinyProfile();
  ExecutionPlan plan("tiny", 3);
  PipelineOptions options;
  options.pcie_share = {0.5};  // partition 0 at half bandwidth
  const PipelineResult r = SimulatePipeline(profile, plan, options);
  EXPECT_EQ(r.layers[0].ready, 200);  // load takes 2x
  EXPECT_EQ(r.total, 610);
}

TEST(PipelineTest, StallsAreNonNegativeAndConsistent) {
  PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;
  for (const Model& model : ModelZoo::PaperModels()) {
    const ModelProfile profile = Profiler(&perf, opts).Profile(model);
    ExecutionPlan plan(model.name(), model.num_layers());
    const PipelineResult r = SimulatePipeline(profile, plan);
    Nanos prev_end = 0;
    for (const LayerTiming& t : r.layers) {
      EXPECT_GE(t.stall, 0);
      EXPECT_EQ(t.exec_start, std::max(prev_end, t.ready));
      EXPECT_GE(t.exec_end, t.exec_start);
      prev_end = t.exec_end;
    }
    EXPECT_EQ(r.total, prev_end);
    EXPECT_EQ(r.total, r.exec_busy + r.total_stall);
  }
}

TEST(PipelineTest, PipeSwitchStallSharesMatchFigure2) {
  // Figure 2: stall fraction under pipelined all-load (PipeSwitch) is ~73-75%
  // for BERT/RoBERTa and roughly 25-45% for ResNet/GPT-2.
  PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;
  auto stall_share = [&](const Model& model) {
    const ModelProfile profile = Profiler(&perf, opts).Profile(model);
    ExecutionPlan plan(model.name(), model.num_layers());
    const PipelineResult r = SimulatePipeline(profile, plan);
    return static_cast<double>(r.total_stall) / static_cast<double>(r.total);
  };
  EXPECT_NEAR(stall_share(ModelZoo::BertBase()), 0.74, 0.06);
  EXPECT_NEAR(stall_share(ModelZoo::RobertaLarge()), 0.74, 0.06);
  const double resnet = stall_share(ModelZoo::ResNet50());
  EXPECT_GT(resnet, 0.10);
  EXPECT_LT(resnet, 0.45);
  const double gpt2 = stall_share(ModelZoo::Gpt2());
  EXPECT_GT(gpt2, 0.25);
  EXPECT_LT(gpt2, 0.55);
}

}  // namespace
}  // namespace deepplan
