#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "src/util/chrome_trace.h"
#include "src/util/flags.h"
#include "src/util/json.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/time.h"
#include "tests/json_checker.h"

namespace deepplan {
namespace {

// ---------------------------------------------------------------- time

TEST(TimeTest, ConversionsRoundTrip) {
  EXPECT_EQ(Millis(1.5), 1'500'000);
  EXPECT_EQ(Micros(2.0), 2'000);
  EXPECT_EQ(Seconds(0.001), Millis(1.0));
  EXPECT_DOUBLE_EQ(ToMillis(Millis(42.0)), 42.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3.0)), 3.0);
}

TEST(TimeTest, FormatDurationPicksUnits) {
  EXPECT_EQ(FormatDuration(500), "500ns");
  EXPECT_EQ(FormatDuration(Micros(12.34)), "12.34us");
  EXPECT_EQ(FormatDuration(Millis(9.35)), "9.35ms");
  EXPECT_EQ(FormatDuration(Seconds(2.5)), "2.50s");
  EXPECT_EQ(FormatDuration(-Millis(1.0)), "-1.00ms");
}

TEST(TimeTest, FormatBytesBinaryUnits) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(2048), "2.00KiB");
  // The paper's "89.42MB" embedding is 30522*768*4 bytes = 89.42 MiB.
  EXPECT_EQ(FormatBytes(30522LL * 768 * 4), "89.42MiB");
  EXPECT_EQ(FormatBytes(3LL * 1024 * 1024 * 1024), "3.00GiB");
}

// ---------------------------------------------------------------- rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoundedCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBounded(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / 10, kSamples / 100);  // within 10% relative
  }
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(5);
  const double rate = 4.0;
  double sum = 0.0;
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.NextExponential(rate);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kSamples, 1.0 / rate, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(9);
  StreamingStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.Add(rng.NextGaussian(10.0, 3.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(13);
  for (const double mean : {0.5, 5.0, 200.0}) {
    double sum = 0.0;
    const int kSamples = 50000;
    for (int i = 0; i < kSamples; ++i) {
      sum += static_cast<double>(rng.NextPoisson(mean));
    }
    EXPECT_NEAR(sum / kSamples, mean, mean * 0.05 + 0.05);
  }
}

TEST(RngTest, ZipfIsSkewedAndInRange) {
  Rng rng(17);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.NextZipf(100, 1.0);
    ASSERT_LT(v, 100u);
    ++counts[v];
  }
  // Rank 0 should dominate rank 50 heavily.
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  // Child continues to work and differs from parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

// ---------------------------------------------------------------- stats

TEST(StreamingStatsTest, BasicMoments) {
  StreamingStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(PercentilesTest, ExactQuartiles) {
  Percentiles p;
  for (int i = 1; i <= 101; ++i) {
    p.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(p.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(p.Percentile(50), 51.0);
  EXPECT_DOUBLE_EQ(p.Percentile(100), 101.0);
  EXPECT_DOUBLE_EQ(p.Percentile(99), 100.0);
}

TEST(PercentilesTest, InterpolatesBetweenSamples) {
  Percentiles p;
  p.Add(10.0);
  p.Add(20.0);
  EXPECT_DOUBLE_EQ(p.Percentile(50), 15.0);
}

TEST(PercentilesTest, SingleSample) {
  Percentiles p;
  p.Add(3.5);
  EXPECT_DOUBLE_EQ(p.Percentile(0), 3.5);
  EXPECT_DOUBLE_EQ(p.Percentile(99), 3.5);
  EXPECT_DOUBLE_EQ(p.Percentile(100), 3.5);
  EXPECT_DOUBLE_EQ(p.Min(), 3.5);
  EXPECT_DOUBLE_EQ(p.Max(), 3.5);
  EXPECT_DOUBLE_EQ(p.Mean(), 3.5);
}

// Zero-request windows summarize as all-zero rather than crashing: every
// order statistic on an empty sample is pinned to 0.0, matching Mean().
TEST(PercentilesTest, EmptySampleIsDefinedZero) {
  Percentiles p;
  EXPECT_TRUE(p.empty());
  EXPECT_DOUBLE_EQ(p.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(p.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(p.Percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(p.Percentile(100), 0.0);
  EXPECT_DOUBLE_EQ(p.Min(), 0.0);
  EXPECT_DOUBLE_EQ(p.Max(), 0.0);
  EXPECT_DOUBLE_EQ(p.Mean(), 0.0);
  // Still usable after the empty queries.
  p.Add(7.0);
  EXPECT_DOUBLE_EQ(p.Percentile(50), 7.0);
}

// ---------------------------------------------------------------- histogram

TEST(HistogramTest, PercentileUpperBoundsValue) {
  LatencyHistogram h(0.1, 1000.0, 50);
  for (int i = 1; i <= 1000; ++i) {
    h.Add(static_cast<double>(i) / 10.0);  // 0.1 .. 100
  }
  const double p50 = h.Percentile(50);
  EXPECT_GE(p50, 50.0 * 0.95);
  EXPECT_LE(p50, 50.0 * 1.10);
  const double p99 = h.Percentile(99);
  EXPECT_GE(p99, 99.0 * 0.95);
  EXPECT_LE(p99, 99.0 * 1.10);
}

TEST(HistogramTest, ClampsOutOfRange) {
  LatencyHistogram h(1.0, 100.0);
  h.Add(0.001);
  h.Add(1e9);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.Percentile(99), 99.0);
}

TEST(HistogramTest, MergeAddsCounts) {
  LatencyHistogram a(1.0, 100.0);
  LatencyHistogram b(1.0, 100.0);
  a.Add(10.0);
  b.Add(20.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 15.0);
}

// ---------------------------------------------------------------- table

TEST(TableTest, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "2"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, NumAndPctFormat) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Pct(0.425, 1), "42.5%");
}

// ---------------------------------------------------------------- flags

TEST(FlagsTest, ParsesTypedValues) {
  Flags flags;
  flags.DefineInt("n", 5, "count").DefineDouble("rate", 1.5, "rate");
  flags.DefineString("name", "x", "name").DefineBool("fast", false, "fast");
  const char* argv[] = {"prog", "--n=7", "--rate=2.5", "--name=abc", "--fast"};
  ASSERT_TRUE(flags.Parse(5, const_cast<char**>(argv)));
  EXPECT_EQ(flags.GetInt("n"), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 2.5);
  EXPECT_EQ(flags.GetString("name"), "abc");
  EXPECT_TRUE(flags.GetBool("fast"));
}

TEST(FlagsTest, DefaultsSurviveWhenUnset) {
  Flags flags;
  flags.DefineInt("n", 5, "count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(flags.GetInt("n"), 5);
}

TEST(FlagsTest, UnknownFlagFails) {
  Flags flags;
  flags.DefineInt("n", 5, "count");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  Flags flags;
  const char* argv[] = {"prog", "alpha", "beta"};
  ASSERT_TRUE(flags.Parse(3, const_cast<char**>(argv)));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "alpha");
}

// ---------------------------------------------------------------- json

TEST(JsonTest, EscapesStringsAndFormatsScalars) {
  EXPECT_EQ(Json::Str("pcie/gpu0"), "\"pcie/gpu0\"");
  EXPECT_EQ(Json::Str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json::Int(-42), "-42");
  EXPECT_EQ(Json::Num(1.5), "1.5");
  EXPECT_EQ(Json::Num(std::nan("")), "null");
  EXPECT_EQ(Json::Bool(true), "true");
}

TEST(JsonTest, ObjectsKeepInsertionOrderAndNest) {
  JsonArray inner;
  inner.Add(1).Add(2.5).Add("three");
  JsonObject obj;
  obj.Set("b", 2).Set("a", "x").SetRaw("list", inner.Render()).Set("ok", true);
  EXPECT_EQ(obj.Render(), "{\"b\":2,\"a\":\"x\",\"list\":[1,2.5,\"three\"],\"ok\":true}");
  EXPECT_EQ(JsonObject().Render(), "{}");
  EXPECT_EQ(JsonArray().Render(), "[]");
}

// ---------------------------------------------------------------- chrome trace

using testutil::JsonChecker;

std::vector<TimelineEvent> SampleTimeline() {
  return {
      {"embedding", "pcie/gpu0", Micros(1500), Millis(2)},
      {"layer \"0\"", "exec", 1500, 2500},  // 1.5 us / 2.5 us: sub-us precision
      {"fwd\\path", "nvlink", Millis(1), Micros(250)},
  };
}

TEST(ChromeTraceTest, EmittedJsonParses) {
  const std::string json = ChromeTraceWriter::ToJson(SampleTimeline());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // Also parses for an empty timeline.
  const std::string empty =
      ChromeTraceWriter::ToJson(std::vector<TimelineEvent>{});
  EXPECT_TRUE(JsonChecker(empty).Valid()) << empty;
  EXPECT_NE(empty.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTraceTest, UsesMicrosecondTimestamps) {
  const std::string json = ChromeTraceWriter::ToJson(SampleTimeline());
  // Micros(1500) start / Millis(2) duration render as 1500 us / 2000 us.
  EXPECT_NE(json.find("\"ts\":1500,\"dur\":2000"), std::string::npos) << json;
  // 1500 ns / 2500 ns keep sub-microsecond precision as fractional us.
  EXPECT_NE(json.find("\"ts\":1.5,\"dur\":2.5"), std::string::npos) << json;
}

TEST(ChromeTraceTest, RoundTripsTrackAndNameFields) {
  const std::string json = ChromeTraceWriter::ToJson(SampleTimeline());
  // Event names round-trip, with quotes and backslashes escaped.
  EXPECT_NE(json.find("\"name\":\"embedding\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"layer \\\"0\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fwd\\\\path\""), std::string::npos);
  // Every track appears as thread_name metadata naming its lane.
  for (const char* track : {"pcie/gpu0", "exec", "nvlink"}) {
    const std::string meta = std::string("\"args\":{\"name\":\"") + track + "\"}";
    EXPECT_NE(json.find(meta), std::string::npos) << track;
  }
}

TEST(ChromeTraceTest, WriteToRoundTripsAndReportsIoFailure) {
  const std::vector<TimelineEvent> events = SampleTimeline();
  const std::string path = ::testing::TempDir() + "/chrome_trace_test.json";
  ASSERT_TRUE(ChromeTraceWriter::WriteTo(path, events));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), ChromeTraceWriter::ToJson(events));
  EXPECT_FALSE(
      ChromeTraceWriter::WriteTo("/nonexistent-dir/trace.json", events));
}

}  // namespace
}  // namespace deepplan
