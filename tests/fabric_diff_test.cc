// Differential lockdown of the Fabric's incremental (component-local)
// max-min fair-share solve against the original full progressive-filling
// re-solve: random topologies and random transfer schedules must produce
// bitwise-identical behavior in both modes — completion times, elapsed
// durations, and the per-link allocation profile sampled at every
// completion. The full re-solve (set_full_resolve_for_testing) defines
// "correct"; additionally the SimValidator shadow cross-check
// (OnFabricIncrementalSolve) is exercised with validation forced on.
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/check/validator.h"
#include "src/sim/fabric.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace deepplan {
namespace {

struct TransferSpec {
  Nanos start;
  std::vector<LinkId> path;
  std::int64_t bytes;
  Nanos latency;
};

struct FabricWorkload {
  std::vector<double> capacities;
  std::vector<TransferSpec> transfers;
};

// Random link-sharing topology + schedule. Paths are small random subsets of
// links, so transfers form shifting link-connected components: some overlap
// heavily (shared bottlenecks), some are disjoint (independent components —
// exactly what the incremental solve skips re-solving).
FabricWorkload MakeWorkload(std::uint64_t seed) {
  Rng rng(seed);
  FabricWorkload w;
  const int num_links = 3 + static_cast<int>(rng.NextBounded(8));
  const double caps[] = {1e9, 4e9, 12e9, 16e9, 25e9};
  for (int l = 0; l < num_links; ++l) {
    w.capacities.push_back(caps[rng.NextBounded(5)]);
  }
  const int num_transfers = 30 + static_cast<int>(rng.NextBounded(31));
  for (int t = 0; t < num_transfers; ++t) {
    TransferSpec spec;
    spec.start = static_cast<Nanos>(rng.NextBounded(Millis(5)));
    const int path_len = 1 + static_cast<int>(rng.NextBounded(3));
    for (int h = 0; h < path_len; ++h) {
      const LinkId link = static_cast<LinkId>(rng.NextBounded(num_links));
      bool dup = false;
      for (const LinkId existing : spec.path) {
        dup = dup || existing == link;
      }
      if (!dup) {
        spec.path.push_back(link);
      }
    }
    // Mostly mid-size transfers; a few zero-byte (latency-only) and a few
    // large ones that outlive many starts/completions.
    const std::uint64_t kind = rng.NextBounded(10);
    if (kind == 0) {
      spec.bytes = 0;
    } else if (kind < 8) {
      spec.bytes = static_cast<std::int64_t>(1 + rng.NextBounded(8u << 20));
    } else {
      spec.bytes = static_cast<std::int64_t>(1 + rng.NextBounded(256u << 20));
    }
    spec.latency = static_cast<Nanos>(rng.NextBounded(50000));
    w.transfers.push_back(std::move(spec));
  }
  return w;
}

// Everything observable about one run: per-completion (transfer, finish time,
// elapsed) plus the full per-link allocation vector sampled inside each done
// callback — the instant the fair-share state differs, so does this log.
struct FabricLog {
  std::vector<std::size_t> completed;
  std::vector<Nanos> finish_times;
  std::vector<Nanos> elapsed;
  std::vector<double> allocations;
};

FabricLog Replay(const FabricWorkload& w, bool full_resolve) {
  Simulator sim;
  Fabric fabric(&sim);
  fabric.set_full_resolve_for_testing(full_resolve);
  for (std::size_t l = 0; l < w.capacities.size(); ++l) {
    fabric.AddLink("link" + std::to_string(l), w.capacities[l]);
  }
  FabricLog log;
  for (std::size_t t = 0; t < w.transfers.size(); ++t) {
    const TransferSpec& spec = w.transfers[t];
    sim.ScheduleAt(spec.start, [&fabric, &sim, &log, &spec, t] {
      fabric.Start(spec.path, spec.bytes, spec.latency,
                   [&fabric, &sim, &log, t](Nanos elapsed) {
                     log.completed.push_back(t);
                     log.finish_times.push_back(sim.now());
                     log.elapsed.push_back(elapsed);
                     for (LinkId l = 0; l < fabric.num_links(); ++l) {
                       log.allocations.push_back(fabric.AllocatedOn(l));
                     }
                   });
    });
  }
  sim.Run();
  EXPECT_EQ(fabric.active_transfers(), 0);
  return log;
}

// Bitwise double equality: fair-share rates must agree to the last bit, not
// within a tolerance — the incremental solve is a re-ordering of the same
// arithmetic, not an approximation.
bool BitEqual(double a, double b) {
  std::uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

TEST(FabricDiffTest, IncrementalMatchesFullResolveOnRandomTopologies) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const FabricWorkload w = MakeWorkload(seed);
    const FabricLog incremental = Replay(w, /*full_resolve=*/false);
    const FabricLog full = Replay(w, /*full_resolve=*/true);

    ASSERT_EQ(incremental.completed, full.completed) << "seed " << seed;
    ASSERT_EQ(incremental.finish_times, full.finish_times) << "seed " << seed;
    ASSERT_EQ(incremental.elapsed, full.elapsed) << "seed " << seed;
    ASSERT_EQ(incremental.allocations.size(), full.allocations.size());
    for (std::size_t i = 0; i < incremental.allocations.size(); ++i) {
      ASSERT_TRUE(BitEqual(incremental.allocations[i], full.allocations[i]))
          << "seed " << seed << " sample " << i << ": "
          << incremental.allocations[i] << " vs " << full.allocations[i];
    }
  }
}

TEST(FabricDiffTest, ElapsedNeverBeatsSoloDuration) {
  // Fair sharing can only slow a transfer down: elapsed >= SoloDuration for
  // every completion, in both modes.
  const FabricWorkload w = MakeWorkload(99);
  for (const bool full : {false, true}) {
    Simulator sim;
    Fabric fabric(&sim);
    fabric.set_full_resolve_for_testing(full);
    for (std::size_t l = 0; l < w.capacities.size(); ++l) {
      fabric.AddLink("link" + std::to_string(l), w.capacities[l]);
    }
    for (const TransferSpec& spec : w.transfers) {
      sim.ScheduleAt(spec.start, [&fabric, &spec] {
        const Nanos solo =
            fabric.SoloDuration(spec.path, spec.bytes, spec.latency);
        fabric.Start(spec.path, spec.bytes, spec.latency,
                     [solo](Nanos elapsed) { EXPECT_GE(elapsed, solo); });
      });
    }
    sim.Run();
  }
}

TEST(FabricDiffTest, ValidatorShadowCrossCheckRuns) {
  // With validation forced on, every incremental solve shadows the full
  // re-solve and compares each active transfer's rate bit-for-bit
  // (SimValidator::OnFabricIncrementalSolve aborts on mismatch). A healthy
  // run must both survive and actually evaluate checks.
  check::SetValidationForTesting(1);
  const std::uint64_t before = check::ChecksRun();
  const FabricWorkload w = MakeWorkload(7);
  const FabricLog log = Replay(w, /*full_resolve=*/false);
  EXPECT_EQ(log.completed.size(), w.transfers.size());
  EXPECT_GT(check::ChecksRun(), before);
  check::SetValidationForTesting(-1);
}

}  // namespace
}  // namespace deepplan
