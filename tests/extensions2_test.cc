// Tests for the second extension round: grouped transmission, per-model-type
// strategy overrides, shard-restricted warmup, explicit home placement, and
// the HGX A100 topology.
#include <gtest/gtest.h>

#include "src/deepplan.h"

namespace deepplan {
namespace {

ModelProfile ExactProfile(const PerfModel& perf, const Model& model) {
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;
  return Profiler(&perf, opts).Profile(model);
}

// ---------------------------------------------------------------- grouping

class GroupedTransmissionTest : public ::testing::Test {
 protected:
  GroupedTransmissionTest()
      : topology_(Topology::P3_8xlarge()),
        perf_(topology_.gpu(), topology_.pcie()) {}

  InferenceResult Run(const Model& model, int group, int partitions = 1) {
    const ModelProfile profile = ExactProfile(perf_, model);
    ExecutionPlan plan(model.name(), model.num_layers());
    if (partitions > 1) {
      TransmissionPlanner::AssignPartitions(profile, partitions, &plan);
    }
    Simulator sim;
    ServerFabric fabric(&sim, &topology_);
    Engine engine(&sim, &fabric, &perf_);
    ColdRunOptions options;
    options.transfer_group_layers = group;
    InferenceResult result;
    std::vector<GpuId> secondaries;
    if (partitions > 1) {
      secondaries = TransmissionPlanner::ChooseSecondaries(topology_, 0, partitions);
    }
    engine.RunCold(model, plan, 0, secondaries, options,
                   [&](const InferenceResult& r) { result = r; });
    sim.Run();
    return result;
  }

  Topology topology_;
  PerfModel perf_;
};

TEST_F(GroupedTransmissionTest, GroupingPreservesByteConservation) {
  const Model model = ModelZoo::ResNet50();
  for (const int group : {1, 3, 8, 1000}) {
    const InferenceResult r = Run(model, group);
    std::int64_t shipped = 0;
    for (const auto& p : r.partitions) {
      shipped += p.bytes;
    }
    EXPECT_EQ(shipped, model.total_param_bytes()) << "group " << group;
  }
}

TEST_F(GroupedTransmissionTest, GroupingHelpsSmallLayerModels) {
  // ResNet has ~110 parameterized layers averaging <1 MiB: coalescing saves
  // most of the per-copy overhead.
  const Model model = ModelZoo::ResNet50();
  EXPECT_LT(Run(model, 8).latency, Run(model, 1).latency);
}

TEST_F(GroupedTransmissionTest, WholeModelGroupApproachesBaselineLoad) {
  // One giant group = no pipelining benefit: execution waits for everything.
  const Model model = ModelZoo::BertBase();
  const InferenceResult grouped = Run(model, 1 << 20);
  const double expected = static_cast<double>(perf_.WarmLatency(model, 1)) +
                          static_cast<double>(model.total_param_bytes()) /
                              topology_.pcie().effective_bw_bytes_per_sec * 1e9;
  EXPECT_NEAR(static_cast<double>(grouped.latency), expected, expected * 0.05);
}

TEST_F(GroupedTransmissionTest, GroupingWorksWithPartitions) {
  const Model model = ModelZoo::BertLarge();
  const InferenceResult r = Run(model, 4, /*partitions=*/2);
  ASSERT_EQ(r.partitions.size(), 2u);
  EXPECT_GT(r.partitions[1].bytes, 0);
  EXPECT_GT(r.latency, 0);
}

// ---------------------------------------------------------------- server bits

TEST(PerTypeStrategyTest, OverridePicksDifferentPlans) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  ServerOptions options;
  options.strategy = Strategy::kDeepPlanPtDha;
  Server server(topology, perf, options);
  const int bert = server.RegisterModelType(ModelZoo::BertBase());
  const int gpt2 = server.RegisterModelType(ModelZoo::Gpt2(), Strategy::kDeepPlanDha);
  server.AddInstances(bert, 2);
  server.AddInstances(gpt2, 2);
  PoissonOptions w;
  w.rate_per_sec = 20;
  w.num_instances = 4;
  w.duration = Seconds(3);
  const ServingMetrics m = server.Run(GeneratePoissonTrace(w));
  EXPECT_GT(m.count(), 20u);
  EXPECT_GT(m.Goodput(Millis(150)), 0.95);
}

TEST(HomePlacementTest, ExplicitHomesAreHonoured) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  ServerOptions options;
  Server server(topology, perf, options);
  const int type = server.RegisterModelType(ModelZoo::ResNet50());
  const int a = server.AddInstanceWithHome(type, 3);
  const int b = server.AddInstanceWithHome(type, 3);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  server.Warmup();
  // Both live on GPU 3; the other GPUs hold nothing.
  EXPECT_EQ(server.WarmCapacity(), 2);
}

TEST(WarmupShardTest, RestrictedWarmupOnlyTouchesShard) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  ServerOptions options;
  Server server(topology, perf, options);
  const int type = server.RegisterModelType(ModelZoo::BertBase());
  server.AddInstances(type, 40);
  server.WarmupInstances({0, 2, 4, 6});
  EXPECT_EQ(server.WarmCapacity(), 4);
}

// ---------------------------------------------------------------- hgx a100

TEST(HgxA100Test, TopologyShape) {
  const Topology t = Topology::HgxA100();
  EXPECT_EQ(t.num_gpus(), 8);
  EXPECT_EQ(t.num_switches(), 4);
  EXPECT_EQ(t.MaxParallelDegree(0), 4);
  EXPECT_EQ(t.gpu().name, "A100-SXM4-40GB");
  EXPECT_GT(t.nvlink().bw_bytes_per_sec, 2e11);
}

TEST(HgxA100Test, FasterHardwareStillPrefersDeepPlan) {
  const Topology t = Topology::HgxA100();
  const PerfModel perf(t.gpu(), t.pcie());
  const Model model = ModelZoo::BertLarge();
  const ModelProfile profile = ExactProfile(perf, model);
  auto run = [&](Strategy strategy) {
    const int degree = StrategyDegree(strategy, t, 0);
    const ExecutionPlan plan = MakeStrategyPlan(strategy, profile, degree);
    Simulator sim;
    ServerFabric fabric(&sim, &t);
    Engine engine(&sim, &fabric, &perf);
    InferenceResult result;
    engine.RunCold(model, plan, 0, TransmissionPlanner::ChooseSecondaries(t, 0, degree),
                   MakeColdRunOptions(strategy),
                   [&](const InferenceResult& r) { result = r; });
    sim.Run();
    return result.latency;
  };
  const Nanos pipeswitch = run(Strategy::kPipeSwitch);
  const Nanos ptdha = run(Strategy::kDeepPlanPtDha);
  EXPECT_LT(ptdha, pipeswitch);
  // And it is faster than the V100 box in absolute terms.
  const Topology v100 = Topology::P3_8xlarge();
  const PerfModel perf_v100(v100.gpu(), v100.pcie());
  const ModelProfile profile_v100 = ExactProfile(perf_v100, model);
  const ExecutionPlan plan_v100 =
      MakeStrategyPlan(Strategy::kPipeSwitch, profile_v100, 1);
  Simulator sim;
  ServerFabric fabric(&sim, &v100);
  Engine engine(&sim, &fabric, &perf_v100);
  InferenceResult v100_result;
  engine.RunCold(model, plan_v100, 0, {}, MakeColdRunOptions(Strategy::kPipeSwitch),
                 [&](const InferenceResult& r) { v100_result = r; });
  sim.Run();
  EXPECT_LT(pipeswitch, v100_result.latency);
}

}  // namespace
}  // namespace deepplan
