// Determinism regression tests for the SweepRunner concurrency layer: the
// same sweep must produce byte-identical aggregated results for 1, 2, and 8
// worker threads, and the SweepRunner-backed bench helpers must match a
// hand-rolled sequential loop exactly. Run under ThreadSanitizer via
// cmake -DDEEPPLAN_SANITIZE=thread (see scripts/run_all.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/util/rng.h"
#include "src/util/sweep.h"
#include "src/util/thread_pool.h"

namespace deepplan {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
  // The pool is reusable after Wait().
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 150);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(SweepRunnerTest, MapPreservesTaskIndexOrder) {
  SweepRunner runner(8);
  // Later tasks finish first, so out-of-order aggregation would be caught.
  const std::vector<int> out = runner.Map(64, [](int i) {
    std::this_thread::sleep_for(std::chrono::microseconds((64 - i) * 5));
    return i * i;
  });
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(SweepRunnerTest, EmptyAndSingletonSweeps) {
  SweepRunner runner(8);
  EXPECT_TRUE(runner.Map(0, [](int i) { return i; }).empty());
  const std::vector<int> one = runner.Map(1, [](int i) { return i + 7; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 7);
}

TEST(SweepRunnerTest, ByteIdenticalResultsFor1_2_8Threads) {
  const auto task = [](int i) {
    Rng rng(static_cast<std::uint64_t>(i) + 17);
    double acc = 0.0;
    for (int k = 0; k < 100; ++k) {
      acc += rng.NextDouble();
    }
    return acc;
  };
  const std::vector<double> sequential = SweepRunner(1).Map(40, task);
  for (const int jobs : {2, 8}) {
    const std::vector<double> threaded = SweepRunner(jobs).Map(40, task);
    ASSERT_EQ(threaded.size(), sequential.size()) << jobs << " jobs";
    EXPECT_EQ(std::memcmp(sequential.data(), threaded.data(),
                          sequential.size() * sizeof(double)),
              0)
        << jobs << " jobs";
  }
}

TEST(SweepRunnerTest, DefaultJobsHonorsEnvVar) {
  ::setenv("DEEPPLAN_JOBS", "3", 1);
  EXPECT_EQ(DefaultSweepJobs(), 3);
  ::setenv("DEEPPLAN_JOBS", "0", 1);  // clamped, never zero workers
  EXPECT_EQ(DefaultSweepJobs(), 1);
  ::setenv("DEEPPLAN_JOBS", "not-a-number", 1);  // ignored, hardware fallback
  EXPECT_GE(DefaultSweepJobs(), 1);
  ::unsetenv("DEEPPLAN_JOBS");
  EXPECT_GE(DefaultSweepJobs(), 1);
}

// Full simulation tasks (each builds its own Simulator/ServerFabric/Engine,
// seeded from the task index) aggregate byte-identically for 1, 2, and 8
// worker threads. Latencies are integer nanoseconds, so equality is exact.
TEST(SweepDeterminismTest, ColdRunSweepIdenticalAcrossThreadCounts) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const Model model = ModelZoo::BertBase();
  const auto task = [&](int r) {
    ProfilerOptions opts;
    opts.seed = 1000 + static_cast<std::uint64_t>(r);
    const ModelProfile profile = Profiler(&perf, opts).Profile(model);
    return bench::RunColdWithProfile(topology, perf, model,
                                     Strategy::kDeepPlanPtDha, profile)
        .result.latency;
  };
  const std::vector<Nanos> j1 = SweepRunner(1).Map(8, task);
  const std::vector<Nanos> j2 = SweepRunner(2).Map(8, task);
  const std::vector<Nanos> j8 = SweepRunner(8).Map(8, task);
  EXPECT_EQ(j1, j2);
  EXPECT_EQ(j1, j8);
}

// SweepRunner-backed MeanColdLatencyMs reproduces the hand-rolled sequential
// repetition loop bit-for-bit, at every thread count.
TEST(SweepDeterminismTest, MeanColdLatencyMatchesSequentialLoop) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const Model model = ModelZoo::BertBase();
  const Strategy strategy = Strategy::kDeepPlanDha;
  const int runs = 6;

  StreamingStats stats;
  for (int r = 0; r < runs; ++r) {
    ProfilerOptions opts;
    opts.seed = 1000 + static_cast<std::uint64_t>(r);
    opts.batch = 1;
    const ModelProfile profile = Profiler(&perf, opts).Profile(model);
    const int degree = StrategyDegree(strategy, topology, 0);
    PipelineOptions pipeline;
    pipeline.nvlink = topology.nvlink();
    const ExecutionPlan plan = MakeStrategyPlan(strategy, profile, degree, pipeline);
    Simulator sim;
    ServerFabric fabric(&sim, &topology);
    Engine engine(&sim, &fabric, &perf);
    InferenceResult result;
    engine.RunCold(model, plan, 0,
                   TransmissionPlanner::ChooseSecondaries(topology, 0, degree),
                   MakeColdRunOptions(strategy, 1),
                   [&](const InferenceResult& r2) { result = r2; });
    sim.Run();
    stats.Add(ToMillis(result.latency));
  }
  const double expected = stats.mean();

  for (const int jobs : {1, 2, 8}) {
    const double mean = bench::MeanColdLatencyMs(topology, perf, model, strategy,
                                                 runs, 1, SweepRunner(jobs));
    EXPECT_EQ(mean, expected) << jobs << " jobs";
  }
}

}  // namespace
}  // namespace deepplan
