#include <gtest/gtest.h>

#include "src/hw/gpu.h"
#include "src/hw/topology.h"

namespace deepplan {
namespace {

TEST(GpuSpecTest, V100MatchesPublishedSpecs) {
  const GpuSpec v100 = GpuSpec::V100();
  EXPECT_DOUBLE_EQ(v100.fp32_tflops, 15.7);
  EXPECT_EQ(v100.mem_bytes, 16LL * 1024 * 1024 * 1024);
  EXPECT_GT(v100.mem_bw_bytes_per_sec, 8e11);
}

TEST(GpuSpecTest, A5000HasMoreComputeAndMemoryThanV100) {
  const GpuSpec a = GpuSpec::A5000();
  const GpuSpec v = GpuSpec::V100();
  EXPECT_GT(a.fp32_tflops, v.fp32_tflops);
  EXPECT_GT(a.mem_bytes, v.mem_bytes);
}

TEST(PcieSpecTest, Gen4FasterThanGen3) {
  EXPECT_GT(PcieSpec::Gen4().effective_bw_bytes_per_sec,
            PcieSpec::Gen3().effective_bw_bytes_per_sec * 1.5);
  EXPECT_EQ(PcieSpec::Gen3().payload_bytes, 64);
  EXPECT_EQ(PcieSpec::Gen4().payload_bytes, 64);
}

TEST(TopologyTest, P3HasFourGpusTwoSwitches) {
  const Topology t = Topology::P3_8xlarge();
  EXPECT_EQ(t.num_gpus(), 4);
  EXPECT_EQ(t.num_switches(), 2);
  EXPECT_TRUE(t.SameSwitch(0, 1));
  EXPECT_TRUE(t.SameSwitch(2, 3));
  EXPECT_FALSE(t.SameSwitch(0, 2));
  EXPECT_FALSE(t.SameSwitch(1, 3));
}

TEST(TopologyTest, P3NvlinkIsFullMesh) {
  const Topology t = Topology::P3_8xlarge();
  for (GpuId a = 0; a < 4; ++a) {
    for (GpuId b = 0; b < 4; ++b) {
      if (a != b) {
        EXPECT_TRUE(t.HasNvlink(a, b)) << a << "-" << b;
      }
    }
  }
}

TEST(TopologyTest, ParallelCandidatesPreferOtherSwitch) {
  const Topology t = Topology::P3_8xlarge();
  const auto candidates = t.ParallelCandidates(0);
  ASSERT_EQ(candidates.size(), 3u);
  // GPUs 2 and 3 (other switch) come before GPU 1 (same switch).
  EXPECT_FALSE(t.SameSwitch(0, candidates[0]));
  EXPECT_FALSE(t.SameSwitch(0, candidates[1]));
  EXPECT_TRUE(t.SameSwitch(0, candidates[2]));
}

TEST(TopologyTest, MaxParallelDegreeIsTwoOnP3) {
  // The paper: "DeepPlan guides us to use up to two GPUs out of four for the
  // parallel-transmission at once" (two PCIe switches).
  const Topology t = Topology::P3_8xlarge();
  for (GpuId g = 0; g < 4; ++g) {
    EXPECT_EQ(t.MaxParallelDegree(g), 2);
  }
}

TEST(TopologyTest, A5000BoxSupportsDegreeTwo) {
  const Topology t = Topology::A5000Box();
  EXPECT_EQ(t.num_gpus(), 2);
  EXPECT_EQ(t.num_switches(), 2);
  EXPECT_TRUE(t.HasNvlink(0, 1));
  EXPECT_EQ(t.MaxParallelDegree(0), 2);
}

TEST(TopologyTest, CustomWithoutNvlinkDisablesParallel) {
  const Topology t =
      Topology::Custom("no-nvlink", GpuSpec::V100(), PcieSpec::Gen3(),
                       NvlinkSpec::V100Nvlink(), {0, 1}, 12e9, /*nvlink_pairs=*/{});
  EXPECT_EQ(t.MaxParallelDegree(0), 1);
  EXPECT_TRUE(t.ParallelCandidates(0).empty());
}

TEST(TopologyTest, EightGpuDgxStyleDegreeMatchesSwitchCount) {
  // DGX-1-like: 8 GPUs, 4 switches, NVLink mesh. Parallel degree should be 4
  // (one GPU per switch).
  std::vector<std::pair<GpuId, GpuId>> pairs;
  for (GpuId a = 0; a < 8; ++a) {
    for (GpuId b = a + 1; b < 8; ++b) {
      pairs.push_back({a, b});
    }
  }
  const Topology t = Topology::Custom("dgx8", GpuSpec::V100(), PcieSpec::Gen3(),
                                      NvlinkSpec::V100Nvlink(), {0, 0, 1, 1, 2, 2, 3, 3},
                                      12e9, pairs);
  EXPECT_EQ(t.MaxParallelDegree(0), 4);
}

}  // namespace
}  // namespace deepplan
