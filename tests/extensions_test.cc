// Tests for the extension modules: distributed execution (the Section 2.3
// road-not-taken), eviction policies, Algorithm 1 ordering ablation, plan
// repository persistence, Chrome-trace timeline recording, and the DGX-1
// topology.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include "src/core/plan_repository.h"
#include "src/deepplan.h"
#include "src/engine/distributed.h"

namespace deepplan {
namespace {

ModelProfile ExactProfile(const PerfModel& perf, const Model& model) {
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;
  return Profiler(&perf, opts).Profile(model);
}

// ---------------------------------------------------------------- distributed

class DistributedTest : public ::testing::Test {
 protected:
  DistributedTest()
      : topology_(Topology::P3_8xlarge()),
        perf_(topology_.gpu(), topology_.pcie()) {}
  Topology topology_;
  PerfModel perf_;
};

TEST_F(DistributedTest, WarmPaysBoundaryCostEveryInference) {
  // The paper's core argument against distributed execution: even in-memory
  // inferences pay GPU-to-GPU transfers.
  const Model model = ModelZoo::BertBase();
  const ModelProfile profile = ExactProfile(perf_, model);
  ExecutionPlan plan(model.name(), model.num_layers());
  TransmissionPlanner::AssignPartitions(profile, 2, &plan);
  Simulator sim;
  ServerFabric fabric(&sim, &topology_);
  DistributedEngine dist(&sim, &fabric, &perf_);
  const Nanos merged = perf_.WarmLatency(model, 1);
  const Nanos distributed = dist.WarmDuration(model, plan, {0, 2}, {});
  EXPECT_GT(distributed, merged);
}

TEST_F(DistributedTest, MorePartitionsMoreBoundaries) {
  const Model model = ModelZoo::Gpt2Medium();
  const ModelProfile profile = ExactProfile(perf_, model);
  Simulator sim;
  ServerFabric fabric(&sim, &topology_);
  DistributedEngine dist(&sim, &fabric, &perf_);
  ExecutionPlan p2(model.name(), model.num_layers());
  TransmissionPlanner::AssignPartitions(profile, 2, &p2);
  ExecutionPlan p4(model.name(), model.num_layers());
  TransmissionPlanner::AssignPartitions(profile, 4, &p4);
  EXPECT_GT(dist.WarmDuration(model, p4, {0, 1, 2, 3}, {}),
            dist.WarmDuration(model, p2, {0, 2}, {}));
}

TEST_F(DistributedTest, ColdRunCompletesAndConserves) {
  const Model model = ModelZoo::BertLarge();
  const ModelProfile profile = ExactProfile(perf_, model);
  ExecutionPlan plan(model.name(), model.num_layers());
  TransmissionPlanner::AssignPartitions(profile, 2, &plan);
  Simulator sim;
  ServerFabric fabric(&sim, &topology_);
  DistributedEngine dist(&sim, &fabric, &perf_);
  InferenceResult result;
  bool done = false;
  dist.RunCold(model, plan, {0, 2}, DistributedRunOptions{},
               [&](const InferenceResult& r) {
                 result = r;
                 done = true;
               });
  sim.Run();
  ASSERT_TRUE(done);
  std::int64_t shipped = 0;
  for (const auto& p : result.partitions) {
    shipped += p.bytes;
  }
  EXPECT_EQ(shipped, model.total_param_bytes());
  EXPECT_GT(result.latency, 0);
}

// ---------------------------------------------------------------- eviction

TEST(EvictionPolicyTest, FifoEvictsOldestResident) {
  InstanceManager mgr(1, 1000, EvictionPolicy::kFifo);
  const int a = mgr.AddInstance(0, 0, 400);
  const int b = mgr.AddInstance(0, 0, 400);
  const int c = mgr.AddInstance(0, 0, 400);
  std::vector<int> evicted;
  ASSERT_TRUE(mgr.MakeResident(a, 1, &evicted));
  ASSERT_TRUE(mgr.MakeResident(b, 2, &evicted));
  mgr.MarkUsed(a, 10);  // FIFO ignores recency: a is still oldest-resident
  ASSERT_TRUE(mgr.MakeResident(c, 11, &evicted));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], a);
}

TEST(EvictionPolicyTest, RandomIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    InstanceManager mgr(1, 2000, EvictionPolicy::kRandom, seed);
    std::vector<int> ids;
    for (int i = 0; i < 5; ++i) {
      ids.push_back(mgr.AddInstance(0, 0, 400));
    }
    std::vector<int> evicted;
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(mgr.MakeResident(ids[i], i, &evicted));
    }
    const int extra = mgr.AddInstance(0, 0, 400);
    EXPECT_TRUE(mgr.MakeResident(extra, 99, &evicted));
    return evicted;
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(EvictionPolicyTest, NamesAreStable) {
  EXPECT_STREQ(EvictionPolicyName(EvictionPolicy::kLru), "LRU");
  EXPECT_STREQ(EvictionPolicyName(EvictionPolicy::kFifo), "FIFO");
  EXPECT_STREQ(EvictionPolicyName(EvictionPolicy::kRandom), "Random");
}

TEST(EvictionPolicyTest, LruNeverWorseThanRandomUnderLocality) {
  // With Poisson traffic (uniform popularity) the gap is small, but LRU must
  // not lose: both policies serve the same workload.
  auto run = [](EvictionPolicy policy) {
    const Topology topology = Topology::P3_8xlarge();
    const PerfModel perf(topology.gpu(), topology.pcie());
    ServerOptions options;
    options.strategy = Strategy::kDeepPlanPtDha;
    options.eviction_policy = policy;
    Server server(topology, perf, options);
    const int type = server.RegisterModelType(ModelZoo::BertBase());
    server.AddInstances(type, 160);
    PoissonOptions w;
    w.rate_per_sec = 80;
    w.num_instances = 160;
    w.duration = Seconds(8);
    w.seed = 5;
    return server.Run(GeneratePoissonTrace(w)).ColdStartRate();
  };
  EXPECT_LE(run(EvictionPolicy::kLru), run(EvictionPolicy::kRandom) * 1.15);
}

// ---------------------------------------------------------------- ordering

TEST(CandidateOrderTest, PaperOrderingNeverLosesOnColdLatency) {
  const PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  for (const Model& model : ModelZoo::PaperModels()) {
    const ModelProfile profile = ExactProfile(perf, model);
    Planner planner(&profile);
    Nanos best_alt = std::numeric_limits<Nanos>::max();
    Nanos paper = 0;
    for (const CandidateOrder order :
         {CandidateOrder::kPerfDiffAscending, CandidateOrder::kLoadDescending,
          CandidateOrder::kLayerOrder}) {
      PlannerOptions options;
      options.candidate_order = order;
      const Nanos total =
          SimulatePipeline(profile, planner.GeneratePlan(options), options.pipeline)
              .total;
      if (order == CandidateOrder::kPerfDiffAscending) {
        paper = total;
      } else {
        best_alt = std::min(best_alt, total);
      }
    }
    // The paper's ordering is within 2% of the best alternative (and usually
    // strictly best).
    EXPECT_LE(static_cast<double>(paper), static_cast<double>(best_alt) * 1.02)
        << model.name();
  }
}

TEST(CandidateOrderTest, NamesAreStable) {
  EXPECT_STREQ(CandidateOrderName(CandidateOrder::kPerfDiffAscending),
               "PerfDiff-ascending (paper)");
  EXPECT_STREQ(CandidateOrderName(CandidateOrder::kLoadDescending),
               "Load-descending");
  EXPECT_STREQ(CandidateOrderName(CandidateOrder::kLayerOrder), "Layer-order");
}

// ---------------------------------------------------------------- repository

TEST(PlanRepositoryTest, MemoryRoundTrip) {
  PlanRepository repo("");
  const PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  const Model model = ModelZoo::BertBase();
  const ModelProfile profile = ExactProfile(perf, model);
  const ExecutionPlan plan = Planner(&profile).GeneratePlan();
  const std::string key = PlanRepository::Key("bert_base", "p3.8xlarge", "pt_dha", 1);
  EXPECT_FALSE(repo.Contains(key));
  EXPECT_TRUE(repo.Store(key, plan));
  ASSERT_TRUE(repo.Contains(key));
  const auto loaded = repo.Load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->CountDha(), plan.CountDha());
}

TEST(PlanRepositoryTest, DiskPersistsAcrossInstances) {
  const std::string dir = ::testing::TempDir() + "/plan_repo_test";
  std::filesystem::create_directories(dir);
  const PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  const Model model = ModelZoo::ResNet50();
  const ModelProfile profile = ExactProfile(perf, model);
  const ExecutionPlan plan = Planner(&profile).GeneratePlan();
  const std::string key = PlanRepository::Key("resnet50", "p3.8xlarge", "dha", 1);
  {
    PlanRepository writer(dir);
    EXPECT_TRUE(writer.Store(key, plan));
  }
  PlanRepository reader(dir);
  EXPECT_EQ(reader.MemoryCacheSize(), 0u);
  const auto loaded = reader.Load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_layers(), plan.num_layers());
  for (std::size_t i = 0; i < plan.num_layers(); ++i) {
    EXPECT_EQ(loaded->method(i), plan.method(i));
  }
  std::filesystem::remove_all(dir);
}

TEST(PlanRepositoryTest, KeySanitizesUnsafeCharacters) {
  const std::string key = PlanRepository::Key("a/b", "p3 8xlarge", "pt+dha", 4);
  EXPECT_EQ(key.find('/'), std::string::npos);
  EXPECT_EQ(key.find(' '), std::string::npos);
  EXPECT_EQ(key.find('+'), std::string::npos);
  EXPECT_NE(key.find("b4"), std::string::npos);
}

TEST(PlanRepositoryTest, MissingKeyAndCorruptFile) {
  const std::string dir = ::testing::TempDir() + "/plan_repo_corrupt";
  std::filesystem::create_directories(dir);
  PlanRepository repo(dir);
  EXPECT_FALSE(repo.Load("nope").has_value());
  {
    std::FILE* f = std::fopen((dir + "/bad.plan").c_str(), "w");
    std::fputs("garbage", f);
    std::fclose(f);
  }
  EXPECT_FALSE(repo.Load("bad").has_value());
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------- timeline

TEST(TimelineTest, RecordingCapturesLoadsMigrationsAndExecs) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const Model model = ModelZoo::BertBase();
  const ModelProfile profile = ExactProfile(perf, model);
  const ExecutionPlan plan = MakeStrategyPlan(Strategy::kDeepPlanPtDha, profile, 2);
  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  ColdRunOptions options;
  options.record_timeline = true;
  InferenceResult result;
  engine.RunCold(model, plan, 0, {2}, options,
                 [&](const InferenceResult& r) { result = r; });
  sim.Run();
  ASSERT_FALSE(result.timeline.empty());
  bool saw_load = false;
  bool saw_migrate = false;
  bool saw_exec = false;
  for (const TimelineEvent& e : result.timeline) {
    EXPECT_GE(e.start, 0);
    EXPECT_GE(e.duration, 0);
    EXPECT_LE(e.start + e.duration, result.latency);
    saw_load |= e.track.rfind("pcie/", 0) == 0;
    saw_migrate |= e.track.rfind("nvlink/", 0) == 0;
    saw_exec |= e.track.rfind("exec/", 0) == 0;
  }
  EXPECT_TRUE(saw_load);
  EXPECT_TRUE(saw_migrate);
  EXPECT_TRUE(saw_exec);
  // Exactly one exec event per layer.
  std::size_t execs = 0;
  for (const TimelineEvent& e : result.timeline) {
    execs += e.track.rfind("exec/", 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(execs, model.num_layers());
}

TEST(TimelineTest, RecordingDoesNotChangeLatency) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const Model model = ModelZoo::ResNet50();
  const ModelProfile profile = ExactProfile(perf, model);
  const ExecutionPlan plan = MakeStrategyPlan(Strategy::kDeepPlanDha, profile, 1);
  Nanos latency[2];
  for (int recording = 0; recording < 2; ++recording) {
    Simulator sim;
    ServerFabric fabric(&sim, &topology);
    Engine engine(&sim, &fabric, &perf);
    ColdRunOptions options;
    options.record_timeline = recording == 1;
    InferenceResult result;
    engine.RunCold(model, plan, 0, {}, options,
                   [&](const InferenceResult& r) { result = r; });
    sim.Run();
    latency[recording] = result.latency;
  }
  EXPECT_EQ(latency[0], latency[1]);
}

TEST(ChromeTraceTest, JsonIsWellFormedAndEscaped) {
  std::vector<TimelineEvent> events = {
      {"load \"emb\"", "pcie/gpu0", Micros(1), Micros(10)},
      {"exec emb", "exec/gpu0", Micros(11), Micros(5)},
  };
  const std::string json = ChromeTraceWriter::ToJson(events);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("load \\\"emb\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ChromeTraceTest, WriteToFile) {
  const std::string path = ::testing::TempDir() + "/trace_test.json";
  EXPECT_TRUE(ChromeTraceWriter::WriteTo(path, {{"a", "t", 0, 10}}));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- dgx1

TEST(Dgx1Test, TopologyShape) {
  const Topology t = Topology::Dgx1();
  EXPECT_EQ(t.num_gpus(), 8);
  EXPECT_EQ(t.num_switches(), 4);
  EXPECT_EQ(t.MaxParallelDegree(0), 4);
  const auto secondaries = TransmissionPlanner::ChooseSecondaries(t, 0, 4);
  ASSERT_EQ(secondaries.size(), 3u);
  // One secondary per other switch, none sharing the primary's switch.
  std::vector<bool> seen(4, false);
  seen[t.switch_of(0)] = true;
  for (const GpuId g : secondaries) {
    EXPECT_FALSE(seen[t.switch_of(g)]);
    seen[t.switch_of(g)] = true;
  }
}

TEST(Dgx1Test, HigherDegreeLoadsFasterForBigModels) {
  const Topology t = Topology::Dgx1();
  const PerfModel perf(t.gpu(), t.pcie());
  const Model model = ModelZoo::RobertaLarge();
  const ModelProfile profile = ExactProfile(perf, model);
  Nanos prev = std::numeric_limits<Nanos>::max();
  for (const int degree : {1, 2, 4}) {
    PlannerOptions options;
    options.enable_dha = false;
    options.num_partitions = degree;
    const ExecutionPlan plan = Planner(&profile).GeneratePlan(options);
    Simulator sim;
    ServerFabric fabric(&sim, &t);
    Engine engine(&sim, &fabric, &perf);
    InferenceResult result;
    engine.RunCold(model, plan, 0,
                   TransmissionPlanner::ChooseSecondaries(t, 0, degree),
                   ColdRunOptions{}, [&](const InferenceResult& r) { result = r; });
    sim.Run();
    EXPECT_LT(result.load_done, prev) << "degree " << degree;
    prev = result.load_done;
  }
}

}  // namespace
}  // namespace deepplan
