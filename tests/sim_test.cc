#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/fabric.h"
#include "src/sim/simulator.h"
#include "src/sim/stream.h"

namespace deepplan {
namespace {

// ---------------------------------------------------------------- event queue

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    q.PopNext().second();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(100, [&, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.PopNext().second();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelSuppressesEvent) {
  EventQueue q;
  bool fired = false;
  const auto id = q.Schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // double-cancel is a no-op
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

// The next few tests pin the Cancel/stale-entry contract the rest of the sim
// relies on (the fabric cancels and reschedules completion events on every
// rate change): ids are never resurrected, cancelled entries left inside the
// queue's internal structure never surface through NextTime/PopNext, and
// tie-breaking among survivors stays schedule-order.

TEST(EventQueueTest, CancelledIdIsNeverResurrectedByLaterSchedules) {
  EventQueue q;
  bool stale_fired = false;
  bool fresh_fired = false;
  const auto stale = q.Schedule(10, [&] { stale_fired = true; });
  ASSERT_TRUE(q.Cancel(stale));
  // New events (including ones at the same timestamp) must not revive the
  // cancelled id, even if the implementation recycles its storage.
  const auto fresh = q.Schedule(10, [&] { fresh_fired = true; });
  EXPECT_NE(stale, fresh);
  EXPECT_FALSE(q.Cancel(stale));
  EXPECT_EQ(q.size(), 1u);
  auto [when, cb] = q.PopNext();
  EXPECT_EQ(when, 10);
  cb();
  EXPECT_FALSE(stale_fired);
  EXPECT_TRUE(fresh_fired);
}

TEST(EventQueueTest, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const auto head = q.Schedule(5, [] {});
  q.Schedule(20, [] {});
  EXPECT_EQ(q.NextTime(), 5);
  ASSERT_TRUE(q.Cancel(head));
  EXPECT_EQ(q.NextTime(), 20);  // stale head entry must not surface
  EXPECT_EQ(q.NextTime(), 20);  // and NextTime must not consume anything
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.PopNext().first, 20);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelInsideEqualTimeBurstKeepsScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventQueue::EventId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(q.Schedule(100, [&, i] { order.push_back(i); }));
  }
  ASSERT_TRUE(q.Cancel(ids[0]));  // head of the burst
  ASSERT_TRUE(q.Cancel(ids[3]));  // middle of the burst
  while (!q.empty()) {
    q.PopNext().second();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 5}));
}

TEST(EventQueueTest, CancelAndRescheduleChurnKeepsQueueConsistent) {
  // The fabric's reallocation pattern: cancel the pending completion and
  // schedule a replacement, thousands of times. Ids must stay unique, size
  // must track live events only, and only the last replacement fires.
  EventQueue q;
  int fired = 0;
  EventQueue::EventId id = q.Schedule(1000, [&] { ++fired; });
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(q.Cancel(id));
    const EventQueue::EventId next = q.Schedule(1000 + i % 7, [&] { ++fired; });
    EXPECT_NE(next, id);
    id = next;
    ASSERT_EQ(q.size(), 1u);
  }
  q.PopNext().second();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.Cancel(id));  // already fired
}

TEST(EventQueueTest, ScheduleDuringPopAtSameTimeFiresAfterExistingTies) {
  // An event scheduled from inside a callback at the *current* timestamp
  // joins the back of the equal-time FIFO (schedule order is global).
  EventQueue q;
  std::vector<int> order;
  q.Schedule(50, [&] {
    order.push_back(0);
    q.Schedule(50, [&] { order.push_back(2); });
  });
  q.Schedule(50, [&] { order.push_back(1); });
  while (!q.empty()) {
    q.PopNext().second();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// ---------------------------------------------------------------- simulator

TEST(SimulatorTest, ClockAdvancesToEventTimes) {
  Simulator sim;
  Nanos seen = -1;
  sim.ScheduleAfter(100, [&] { seen = sim.now(); });
  sim.Run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, NestedSchedulingWorks) {
  Simulator sim;
  std::vector<Nanos> times;
  sim.ScheduleAfter(10, [&] {
    times.push_back(sim.now());
    sim.ScheduleAfter(5, [&] { times.push_back(sim.now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<Nanos>{10, 15}));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  bool late_fired = false;
  sim.ScheduleAfter(10, [] {});
  sim.ScheduleAfter(1000, [&] { late_fired = true; });
  sim.RunUntil(100);
  EXPECT_EQ(sim.now(), 100);
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.pending_events(), 1u);
}

// ---------------------------------------------------------------- fabric

TEST(FabricTest, SingleTransferTakesBytesOverBandwidth) {
  Simulator sim;
  Fabric fabric(&sim);
  const LinkId link = fabric.AddLink("pcie", 1e9);  // 1 GB/s
  Nanos elapsed = -1;
  fabric.Start({link}, 1'000'000, /*latency=*/0, [&](Nanos e) { elapsed = e; });
  sim.Run();
  EXPECT_NEAR(static_cast<double>(elapsed), 1e6, 1e3);  // 1 MB at 1 GB/s = 1 ms
}

TEST(FabricTest, LatencyAddsAfterDrain) {
  Simulator sim;
  Fabric fabric(&sim);
  const LinkId link = fabric.AddLink("pcie", 1e9);
  Nanos elapsed = -1;
  fabric.Start({link}, 1'000'000, /*latency=*/Micros(50), [&](Nanos e) { elapsed = e; });
  sim.Run();
  EXPECT_NEAR(static_cast<double>(elapsed), 1e6 + 50e3, 1e3);
}

TEST(FabricTest, ZeroByteTransferCompletesAfterLatency) {
  Simulator sim;
  Fabric fabric(&sim);
  fabric.AddLink("pcie", 1e9);
  Nanos elapsed = -1;
  fabric.Start({}, 0, Micros(7), [&](Nanos e) { elapsed = e; });
  sim.Run();
  EXPECT_EQ(elapsed, Micros(7));
}

TEST(FabricTest, TwoTransfersShareLinkFairly) {
  Simulator sim;
  Fabric fabric(&sim);
  const LinkId link = fabric.AddLink("pcie", 1e9);
  Nanos first = -1;
  Nanos second = -1;
  fabric.Start({link}, 1'000'000, 0, [&](Nanos e) { first = e; });
  fabric.Start({link}, 1'000'000, 0, [&](Nanos e) { second = e; });
  sim.Run();
  // Both share 1 GB/s -> each effectively 0.5 GB/s -> 2 ms each.
  EXPECT_NEAR(static_cast<double>(first), 2e6, 2e4);
  EXPECT_NEAR(static_cast<double>(second), 2e6, 2e4);
}

TEST(FabricTest, ShortTransferFreesBandwidthForLongOne) {
  Simulator sim;
  Fabric fabric(&sim);
  const LinkId link = fabric.AddLink("pcie", 1e9);
  Nanos long_elapsed = -1;
  fabric.Start({link}, 3'000'000, 0, [&](Nanos e) { long_elapsed = e; });
  fabric.Start({link}, 1'000'000, 0, [](Nanos) {});
  sim.Run();
  // Phase 1: both at 0.5 GB/s until the short one finishes at t=2ms (long has
  // 2 MB left). Phase 2: long alone at 1 GB/s -> +2 ms. Total 4 ms.
  EXPECT_NEAR(static_cast<double>(long_elapsed), 4e6, 4e4);
}

TEST(FabricTest, SharedUplinkConstrainsTwoGpuLoads) {
  // Two GPUs behind one switch (Table 2's 4-GPU contention case): each GPU
  // link is 12 GB/s but the shared uplink is 12.6 GB/s, so concurrent loads
  // run at ~6.3 GB/s each.
  Simulator sim;
  Fabric fabric(&sim);
  const LinkId uplink = fabric.AddLink("uplink", 12.6e9);
  const LinkId gpu0 = fabric.AddLink("gpu0", 12e9);
  const LinkId gpu1 = fabric.AddLink("gpu1", 12e9);
  Nanos t0 = -1;
  Nanos t1 = -1;
  fabric.Start({uplink, gpu0}, 126'000'000, 0, [&](Nanos e) { t0 = e; });
  fabric.Start({uplink, gpu1}, 126'000'000, 0, [&](Nanos e) { t1 = e; });
  sim.Run();
  EXPECT_NEAR(static_cast<double>(t0), 20e6, 2e5);  // 126 MB at 6.3 GB/s
  EXPECT_NEAR(static_cast<double>(t1), 20e6, 2e5);
}

TEST(FabricTest, IndependentLinksDoNotInterfere) {
  Simulator sim;
  Fabric fabric(&sim);
  const LinkId a = fabric.AddLink("a", 1e9);
  const LinkId b = fabric.AddLink("b", 1e9);
  Nanos ta = -1;
  Nanos tb = -1;
  fabric.Start({a}, 1'000'000, 0, [&](Nanos e) { ta = e; });
  fabric.Start({b}, 1'000'000, 0, [&](Nanos e) { tb = e; });
  sim.Run();
  EXPECT_NEAR(static_cast<double>(ta), 1e6, 1e4);
  EXPECT_NEAR(static_cast<double>(tb), 1e6, 1e4);
}

TEST(FabricTest, MaxMinFairnessWithAsymmetricPaths) {
  // T1 crosses links A and B; T2 crosses only A; T3 crosses only B.
  // A and B both 1 GB/s. Max-min: each link splits between its two users,
  // T1 bottlenecked at 0.5 on both; T2 and T3 get 0.5 each.
  Simulator sim;
  Fabric fabric(&sim);
  const LinkId a = fabric.AddLink("a", 1e9);
  const LinkId b = fabric.AddLink("b", 1e9);
  fabric.Start({a, b}, 10'000'000, 0, [](Nanos) {});
  fabric.Start({a}, 10'000'000, 0, [](Nanos) {});
  fabric.Start({b}, 10'000'000, 0, [](Nanos) {});
  EXPECT_NEAR(fabric.AllocatedOn(a), 1e9, 1e6);
  EXPECT_NEAR(fabric.AllocatedOn(b), 1e9, 1e6);
  sim.Run();
}

// ---------------------------------------------------------------- streams

TEST(StreamTest, OpsRunInOrder) {
  Simulator sim;
  Stream stream(&sim, "s");
  std::vector<int> order;
  stream.EnqueueMarker([&] { order.push_back(1); });
  stream.EnqueueDelay(100);
  stream.EnqueueMarker([&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_TRUE(stream.idle());
}

TEST(StreamTest, DelayOccupiesStream) {
  Simulator sim;
  Stream stream(&sim, "s");
  Nanos done_at = -1;
  stream.EnqueueDelay(100);
  stream.EnqueueDelay(50);
  stream.EnqueueMarker([&] { done_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(done_at, 150);
}

TEST(SyncEventTest, WaitBlocksUntilFire) {
  Simulator sim;
  SyncEvent event(&sim);
  Stream stream(&sim, "s");
  Nanos resumed_at = -1;
  stream.EnqueueWait(&event);
  stream.EnqueueMarker([&] { resumed_at = sim.now(); });
  sim.ScheduleAfter(500, [&] { event.Fire(); });
  sim.Run();
  EXPECT_EQ(resumed_at, 500);
  EXPECT_EQ(stream.wait_time(), 500);
}

TEST(SyncEventTest, WaitOnFiredEventIsInstant) {
  Simulator sim;
  SyncEvent event(&sim);
  event.Fire();
  Stream stream(&sim, "s");
  Nanos resumed_at = -1;
  stream.EnqueueWait(&event);
  stream.EnqueueMarker([&] { resumed_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(resumed_at, 0);
  EXPECT_EQ(stream.wait_time(), 0);
}

TEST(StreamTest, RecordFiresEventInOrder) {
  Simulator sim;
  Stream producer(&sim, "load");
  Stream consumer(&sim, "exec");
  SyncEvent event(&sim);
  producer.EnqueueDelay(200);
  producer.EnqueueRecord(&event);
  Nanos exec_start = -1;
  consumer.EnqueueWait(&event);
  consumer.EnqueueMarker([&] { exec_start = sim.now(); });
  sim.Run();
  EXPECT_EQ(exec_start, 200);
}

}  // namespace
}  // namespace deepplan
