#include <gtest/gtest.h>

#include "src/core/profiler.h"
#include "src/model/zoo.h"

namespace deepplan {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  ProfilerTest() : perf_(GpuSpec::V100(), PcieSpec::Gen3()) {}
  PerfModel perf_;
};

TEST_F(ProfilerTest, ProfileCoversEveryLayer) {
  const Model model = ModelZoo::BertBase();
  Profiler profiler(&perf_);
  const ModelProfile profile = profiler.Profile(model);
  ASSERT_EQ(profile.num_layers(), model.num_layers());
  EXPECT_EQ(profile.model_name, "bert_base");
  for (std::size_t i = 0; i < profile.num_layers(); ++i) {
    EXPECT_EQ(profile.layers[i].param_bytes, model.layer(i).param_bytes);
    EXPECT_EQ(profile.layers[i].kind, model.layer(i).kind);
    EXPECT_GT(profile.layers[i].exec_in_mem, 0);
  }
}

TEST_F(ProfilerTest, DeterministicForSameSeed) {
  const Model model = ModelZoo::ResNet50();
  ProfilerOptions opts;
  opts.seed = 99;
  Profiler a(&perf_, opts);
  Profiler b(&perf_, opts);
  const ModelProfile pa = a.Profile(model);
  const ModelProfile pb = b.Profile(model);
  for (std::size_t i = 0; i < pa.num_layers(); ++i) {
    EXPECT_EQ(pa.layers[i].load, pb.layers[i].load);
    EXPECT_EQ(pa.layers[i].exec_dha, pb.layers[i].exec_dha);
  }
}

TEST_F(ProfilerTest, MoreIterationsConvergeTowardTruth) {
  const Model model = ModelZoo::ResNet50();
  ProfilerOptions few;
  few.iterations = 2;
  few.noise_stddev = 0.05;
  ProfilerOptions many = few;
  many.iterations = 200;
  const ModelProfile pf = Profiler(&perf_, few).Profile(model);
  const ModelProfile pm = Profiler(&perf_, many).Profile(model);
  // The 200-iteration average of total load should be within 0.5% of truth.
  const double truth = static_cast<double>(perf_.TotalLoadTime(model));
  EXPECT_NEAR(static_cast<double>(pm.TotalLoad()), truth, truth * 0.005);
  (void)pf;  // few-iteration profile exists but may be noisier
}

TEST_F(ProfilerTest, PerfDiffSignsMatchLayerEconomics) {
  const Model model = ModelZoo::BertBase();
  const ModelProfile profile = Profiler(&perf_).Profile(model);
  // Word embedding: DHA execution is close to in-memory (PerfDiff small
  // relative to its load time) — the planner's prime candidate.
  const LayerProfile& emb = profile.layers[0];
  ASSERT_EQ(emb.kind, LayerKind::kEmbedding);
  EXPECT_LT(emb.PerfDiff(), emb.load / 4);
  // A big FFN linear: DHA is far slower than in-memory.
  bool found_fc = false;
  for (const auto& lp : profile.layers) {
    if (lp.kind == LayerKind::kLinear && lp.param_bytes > 8 * 1024 * 1024) {
      EXPECT_GT(lp.PerfDiff(), lp.load);
      found_fc = true;
      break;
    }
  }
  EXPECT_TRUE(found_fc);
}

TEST_F(ProfilerTest, AggregateHelpers) {
  const Model model = ModelZoo::ResNet50();
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;  // exact
  const ModelProfile profile = Profiler(&perf_, opts).Profile(model);
  EXPECT_EQ(profile.TotalParamBytes(), model.total_param_bytes());
  EXPECT_EQ(profile.TotalLoad(), perf_.TotalLoadTime(model));
  EXPECT_EQ(profile.TotalExecInMem(), perf_.WarmLatency(model, 1));
}

// ---------------------------------------------------------------- Table 5

TEST_F(ProfilerTest, ProfilingCostShapesMatchTable5) {
  // Table 5: DHA pass dominates; in-memory pass is the cheapest; totals rank
  // RoBERTa-Large > GPT-2 Medium > BERT-Base > ResNet-50.
  Profiler profiler(&perf_);
  const ProfilingCost resnet = profiler.Cost(ModelZoo::ResNet50());
  const ProfilingCost bert = profiler.Cost(ModelZoo::BertBase());
  const ProfilingCost roberta = profiler.Cost(ModelZoo::RobertaLarge());
  const ProfilingCost gpt2m = profiler.Cost(ModelZoo::Gpt2Medium());
  for (const auto& c : {resnet, bert, roberta, gpt2m}) {
    EXPECT_GT(c.dha_pass, c.in_memory_pass);
    EXPECT_GT(c.dha_pass, c.layer_load_pass);
  }
  // Totals rank large models above base models above ResNet. (The paper's
  // RoBERTa-Large > GPT-2 Medium gap is a harness artifact we do not model;
  // both land within ~10% here.)
  EXPECT_GT(roberta.Total(), bert.Total());
  EXPECT_GT(gpt2m.Total(), bert.Total());
  EXPECT_GT(bert.Total(), resnet.Total());
  EXPECT_NEAR(static_cast<double>(roberta.Total()), static_cast<double>(gpt2m.Total()),
              static_cast<double>(gpt2m.Total()) * 0.15);
  // Orders of magnitude: seconds to around a minute (paper: 3.9 s – 75.9 s).
  EXPECT_GT(ToSeconds(resnet.Total()), 1.0);
  EXPECT_LT(ToSeconds(roberta.Total()), 120.0);
}

}  // namespace
}  // namespace deepplan
