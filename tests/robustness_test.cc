// Robustness and failure-injection tests: malformed inputs must fail loudly
// (parsers) or be absorbed gracefully (degenerate models, empty traces,
// pathological workloads), and the simulation core must stay consistent
// under randomized stress.
#include <gtest/gtest.h>

#include "src/deepplan.h"
#include "src/model/model_spec.h"
#include "src/util/rng.h"

namespace deepplan {
namespace {

// ---------------------------------------------------------------- parsers

TEST(ParserFuzzTest, PlanParserNeverCrashesOnMutations) {
  // Mutate a valid serialized plan and confirm Parse either round-trips or
  // cleanly returns nullopt — never crashes or accepts corrupt layouts.
  const Model model = ModelZoo::ResNet50();
  ExecutionPlan plan(model.name(), model.num_layers());
  const std::string good = plan.Serialize();
  Rng rng(123);
  int accepted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = good;
    const int edits = 1 + static_cast<int>(rng.NextBounded(4));
    for (int e = 0; e < edits; ++e) {
      const auto pos = rng.NextBounded(mutated.size());
      mutated[pos] = static_cast<char>(32 + rng.NextBounded(95));
    }
    const auto parsed = ExecutionPlan::Parse(mutated);
    if (parsed.has_value()) {
      ++accepted;
      // Anything accepted must be structurally sane.
      EXPECT_GE(parsed->num_partitions(), 1);
    }
  }
  // Most single-character corruptions must be rejected.
  EXPECT_LT(accepted, 150);
}

TEST(ParserFuzzTest, ModelSpecParserNeverCrashesOnGarbage) {
  Rng rng(321);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const auto len = rng.NextBounded(400);
    for (std::uint64_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    std::string error;
    ParseModelSpec(garbage, &error);  // must not crash
  }
}

TEST(ParserFuzzTest, TraceCsvWithWeirdLines) {
  EXPECT_TRUE(Trace::FromCsv("time_ns,instance\n\n\n").has_value());
  // Strict row parsing: junk fields are a hard error, not silently zero —
  // a mangled multi-GB Azure CSV should fail loudly at the offending line.
  EXPECT_FALSE(Trace::FromCsv("100,1\nnot-a-number,2\n300,0\n").has_value());
  EXPECT_TRUE(Trace::FromCsv("100,1\n300,0\n").has_value());
  EXPECT_FALSE(Trace::FromCsv("justonecolumn\n").has_value());
}

// ---------------------------------------------------------------- degenerate models

TEST(DegenerateModelTest, SingleLayerModelWorksEndToEnd) {
  const Model tiny("one", {Layer::Linear("only", 64, 64, 1)}, 1);
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;
  const ModelProfile profile = Profiler(&perf, opts).Profile(tiny);
  const ExecutionPlan plan = Planner(&profile).GeneratePlan();
  EXPECT_FALSE(plan.Validate(profile).has_value());
  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  InferenceResult result;
  engine.RunCold(tiny, plan, 0, {}, ColdRunOptions{},
                 [&](const InferenceResult& r) { result = r; });
  sim.Run();
  EXPECT_GT(result.latency, 0);
}

TEST(DegenerateModelTest, AllParameterFreeModelColdStartsInstantly) {
  const Model airy("airy",
                   {Layer::Activation("a", 100), Layer::Pooling("p", 100),
                    Layer::Residual("r", 100)},
                   1);
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;
  const ModelProfile profile = Profiler(&perf, opts).Profile(airy);
  const ExecutionPlan plan = Planner(&profile).GeneratePlan();
  EXPECT_EQ(plan.CountDha(), 0u);  // nothing to decide
  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  InferenceResult result;
  engine.RunCold(airy, plan, 0, {}, ColdRunOptions{},
                 [&](const InferenceResult& r) { result = r; });
  sim.Run();
  EXPECT_EQ(result.load_done, 0);
  EXPECT_EQ(result.latency, perf.WarmLatency(airy, 1));
}

TEST(DegenerateModelTest, PartitioningOneGiantLayer) {
  // One layer holds nearly all bytes: equal-bytes partitioning cannot split
  // it, but the plan must stay valid and executable with 2 partitions.
  std::vector<Layer> layers;
  layers.push_back(Layer::Linear("tiny", 16, 16, 1));
  layers.push_back(Layer::Linear("giant", 8192, 8192, 1));
  layers.push_back(Layer::Linear("tail", 16, 16, 1));
  const Model model("lopsided", std::move(layers), 1);
  const PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;
  const ModelProfile profile = Profiler(&perf, opts).Profile(model);
  ExecutionPlan plan(model.name(), model.num_layers());
  TransmissionPlanner::AssignPartitions(profile, 2, &plan);
  EXPECT_FALSE(plan.Validate(profile).has_value());
}

// ---------------------------------------------------------------- workloads

TEST(WorkloadEdgeTest, EmptyTraceYieldsEmptyMetrics) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  ServerOptions options;
  Server server(topology, perf, options);
  const int type = server.RegisterModelType(ModelZoo::BertBase());
  server.AddInstances(type, 4);
  const ServingMetrics m = server.Run(Trace(std::vector<Arrival>{}));
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.ColdStartCount(), 0u);
}

TEST(WorkloadEdgeTest, BurstOfSimultaneousArrivals) {
  // 64 requests at the exact same instant on one instance: all must be
  // served FIFO on that instance's GPU with monotone completions.
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  ServerOptions options;
  options.strategy = Strategy::kDeepPlanDha;
  Server server(topology, perf, options);
  const int type = server.RegisterModelType(ModelZoo::ResNet50());
  server.AddInstances(type, 1);
  std::vector<Arrival> burst;
  for (int i = 0; i < 64; ++i) {
    burst.push_back({Seconds(1), 0});
  }
  const ServingMetrics m = server.Run(Trace(std::move(burst)));
  ASSERT_EQ(m.count(), 64u);
  Nanos prev = 0;
  for (const RequestRecord& r : m.records()) {
    EXPECT_GE(r.completion, prev);
    prev = r.completion;
  }
}

// ---------------------------------------------------------------- sim stress

TEST(SimStressTest, ManyInterleavedTransfersConserveBytes) {
  Simulator sim;
  Fabric fabric(&sim);
  const LinkId uplink = fabric.AddLink("uplink", 10e9);
  std::vector<LinkId> leaves;
  for (int i = 0; i < 8; ++i) {
    leaves.push_back(fabric.AddLink("leaf" + std::to_string(i), 4e9));
  }
  Rng rng(9);
  int completed = 0;
  const int kTransfers = 200;
  for (int t = 0; t < kTransfers; ++t) {
    const auto bytes = static_cast<std::int64_t>(1 + rng.NextBounded(5'000'000));
    const LinkId leaf = leaves[rng.NextBounded(leaves.size())];
    sim.ScheduleAfter(static_cast<Nanos>(rng.NextBounded(Millis(5))), [&, bytes,
                                                                       leaf]() {
      fabric.Start({uplink, leaf}, bytes, Micros(5), [&](Nanos elapsed) {
        EXPECT_GT(elapsed, 0);
        ++completed;
      });
    });
  }
  sim.Run();
  EXPECT_EQ(completed, kTransfers);
  EXPECT_EQ(fabric.active_transfers(), 0);
}

TEST(SimStressTest, DeepStreamChainCompletesInOrder) {
  Simulator sim;
  Stream stream(&sim, "deep");
  int counter = 0;
  for (int i = 0; i < 10'000; ++i) {
    stream.EnqueueMarker([&counter, i]() {
      EXPECT_EQ(counter, i);
      ++counter;
    });
  }
  sim.Run();
  EXPECT_EQ(counter, 10'000);
  EXPECT_TRUE(stream.idle());
}

TEST(SimStressTest, CancelStormLeavesQueueConsistent) {
  Simulator sim;
  Rng rng(31);
  std::vector<EventQueue::EventId> ids;
  int fired = 0;
  for (int i = 0; i < 2000; ++i) {
    ids.push_back(
        sim.ScheduleAfter(static_cast<Nanos>(rng.NextBounded(1'000'000)),
                          [&fired]() { ++fired; }));
  }
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    cancelled += sim.Cancel(ids[i]) ? 1 : 0;
  }
  sim.Run();
  EXPECT_EQ(fired + cancelled, 2000);
  EXPECT_EQ(cancelled, 1000);
}

}  // namespace
}  // namespace deepplan
