// Tests for the text model-description format and the capacity planner.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/core/profiler.h"
#include "src/core/planner.h"
#include "src/model/model_spec.h"
#include "src/model/zoo.h"
#include "src/serving/capacity.h"

namespace deepplan {
namespace {

// ---------------------------------------------------------------- model spec

TEST(ModelSpecTest, ParsesHighLevelLayers) {
  const std::string spec = R"(
# a tiny encoder
model tiny tokens=128
embedding emb.word rows=1000 dim=64
layernorm emb.ln dim=64
linear fc1 in=64 out=256
activation gelu elements=32768
linear fc2 in=256 out=64 bias=0
attention scores dim=64
)";
  std::string error;
  const auto model = ParseModelSpec(spec, &error);
  ASSERT_TRUE(model.has_value()) << error;
  EXPECT_EQ(model->name(), "tiny");
  EXPECT_EQ(model->ref_tokens(), 128);
  ASSERT_EQ(model->num_layers(), 6u);
  EXPECT_EQ(model->layer(0).kind, LayerKind::kEmbedding);
  EXPECT_EQ(model->layer(0).param_bytes, 1000LL * 64 * 4);
  // tokens defaults to ref_tokens: DHA traffic = 128 rows * 64 dims * 4 B.
  EXPECT_EQ(model->layer(0).dha_param_traffic_bytes, 128LL * 64 * 4);
  EXPECT_EQ(model->layer(2).param_bytes, (64LL * 256 + 256) * 4);
  EXPECT_EQ(model->layer(4).param_bytes, 256LL * 64 * 4);  // bias=0
}

TEST(ModelSpecTest, LayerLevelTokensOverride) {
  const std::string spec =
      "model m tokens=384\nlinear pool in=8 out=8 tokens=1\n";
  const auto model = ParseModelSpec(spec);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->layer(0).flops, 2LL * 8 * 8 * 1);
}

TEST(ModelSpecTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(ParseModelSpec("", &error).has_value());
  EXPECT_FALSE(ParseModelSpec("linear fc in=4 out=4\n", &error).has_value());
  EXPECT_NE(error.find("model"), std::string::npos);
  EXPECT_FALSE(
      ParseModelSpec("model m\nwarp drive speed=9\n", &error).has_value());
  EXPECT_FALSE(
      ParseModelSpec("model m\nlinear fc in=4\n", &error).has_value());  // no out
  EXPECT_FALSE(ParseModelSpec("model m\nlinear fc in 4 out 4\n", &error)
                   .has_value());  // not key=value
}

TEST(ModelSpecTest, RawRoundTripIsExact) {
  const Model original = ModelZoo::BertBase();
  const std::string spec = ModelToSpec(original);
  std::string error;
  const auto parsed = ParseModelSpec(spec, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->num_layers(), original.num_layers());
  EXPECT_EQ(parsed->name(), original.name());
  EXPECT_EQ(parsed->ref_tokens(), original.ref_tokens());
  for (std::size_t i = 0; i < original.num_layers(); ++i) {
    const Layer& a = original.layer(i);
    const Layer& b = parsed->layer(i);
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.param_bytes, b.param_bytes) << i;
    EXPECT_EQ(a.flops, b.flops) << i;
    EXPECT_EQ(a.act_bytes, b.act_bytes) << i;
    EXPECT_EQ(a.dha_param_traffic_bytes, b.dha_param_traffic_bytes) << i;
    EXPECT_EQ(a.dha_traffic_scales_with_batch, b.dha_traffic_scales_with_batch) << i;
  }
}

TEST(ModelSpecTest, ParsedModelIsPlannable) {
  // A custom spec'd model flows through the whole pipeline.
  const std::string spec = R"(
model custom tokens=256
embedding emb rows=50000 dim=512
layernorm ln0 dim=512
linear q in=512 out=512
linear k in=512 out=512
linear v in=512 out=512
attention attn dim=512
linear out in=512 out=512
linear up in=512 out=2048
activation act elements=524288
linear down in=2048 out=512
)";
  const auto model = ParseModelSpec(spec);
  ASSERT_TRUE(model.has_value());
  PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;
  const ModelProfile profile = Profiler(&perf, opts).Profile(*model);
  const ExecutionPlan plan = Planner(&profile).GeneratePlan();
  EXPECT_FALSE(plan.Validate(profile).has_value());
  // The 97 MiB embedding should stay host-side.
  EXPECT_EQ(plan.method(0), ExecMethod::kDirectHostAccess);
}

TEST(ModelSpecTest, LoadFromMissingFileSetsError) {
  std::string error;
  EXPECT_FALSE(LoadModelSpec("/definitely/not/here.model", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ModelSpecTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/spec_test.model";
  const Model original = ModelZoo::ResNet50();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    const std::string spec = ModelToSpec(original);
    std::fwrite(spec.data(), 1, spec.size(), f);
    std::fclose(f);
  }
  const auto loaded = LoadModelSpec(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->total_param_bytes(), original.total_param_bytes());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- capacity

TEST(CapacityTest, FindsFigure13ScaleAnswer) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  CapacityQuery query;
  query.strategy = Strategy::kPipeSwitch;
  query.rate_per_sec = 100.0;
  query.target_goodput = 0.99;
  query.requests_per_probe = 400;
  query.max_concurrency = 256;
  const CapacityReport report =
      FindMaxConcurrency(topology, perf, ModelZoo::BertBase(), query);
  // Figure 13: PipeSwitch starts violating around 120-140 instances.
  EXPECT_GT(report.max_instances, 100);
  EXPECT_LT(report.max_instances, 160);
  EXPECT_GE(report.goodput, 0.99);
  EXPECT_GT(report.probes, 1);
}

TEST(CapacityTest, DeepPlanSustainsMoreThanPipeSwitch) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  CapacityQuery query;
  query.rate_per_sec = 100.0;
  query.target_goodput = 0.99;
  query.requests_per_probe = 300;
  query.max_concurrency = 256;
  query.strategy = Strategy::kPipeSwitch;
  const int pipeswitch =
      FindMaxConcurrency(topology, perf, ModelZoo::BertBase(), query).max_instances;
  query.strategy = Strategy::kDeepPlanPtDha;
  const int deepplan =
      FindMaxConcurrency(topology, perf, ModelZoo::BertBase(), query).max_instances;
  EXPECT_GT(deepplan, pipeswitch);
}

TEST(CapacityTest, ImpossibleTargetReportsZero) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  CapacityQuery query;
  query.strategy = Strategy::kPipeSwitch;
  // GPT-2 Medium warm exec ~80 ms: 300 rps is unservable on 4 GPUs.
  query.rate_per_sec = 300.0;
  query.slo = Millis(100);
  query.target_goodput = 0.99;
  query.requests_per_probe = 200;
  const CapacityReport report =
      FindMaxConcurrency(topology, perf, ModelZoo::Gpt2Medium(), query);
  EXPECT_EQ(report.max_instances, 0);
  EXPECT_LT(report.goodput, 0.99);
}

}  // namespace
}  // namespace deepplan
