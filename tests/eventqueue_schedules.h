// Shared randomized schedule generator for event-queue implementations. The
// driver makes every decision (op choice, timestamps, cancel victims) from
// its own Rng and its own bookkeeping — never from queue-returned values,
// which are opaque handles — so driving two different implementations with
// the same seed produces the same structural schedule, and their observable
// logs (pop sequence, cancel outcomes, sizes) must agree exactly. Used by
// eventqueue_diff_test.cc (calendar queue vs the reference binary heap) and
// property_test.cc (calendar queue vs a brute-force model).
#ifndef TESTS_EVENTQUEUE_SCHEDULES_H_
#define TESTS_EVENTQUEUE_SCHEDULES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/rng.h"
#include "src/util/time.h"

namespace deepplan {
namespace testing_schedules {

// Shapes the time distribution of one randomized run.
struct ScheduleRegime {
  // Ops to perform (schedules + cancels + pops; the final drain is extra).
  int ops = 10000;
  // Timestamps are drawn from [base, base + domain); a small domain makes
  // equal-timestamp ties common (the FIFO tie-break stress).
  Nanos domain = 50;
  // When > 0, the base drifts forward by [0, drift) after every op, sweeping
  // the calendar queue across epochs (exercises AdvanceEpoch/Rewind).
  Nanos drift = 0;
  // Out of 10: weight of schedule ops (the rest split cancels and pops).
  int schedule_weight = 5;
  // Every burst_every-th schedule emits a burst of equal-timestamp events.
  int burst_every = 0;
  int burst_size = 8;
  // Every far_every-th schedule lands far in the future (epoch spread).
  int far_every = 0;
  Nanos far_offset = Seconds(100);
};

// Observable outcome of a run: everything an implementation is allowed to
// expose, in execution order. Two correct implementations must produce
// byte-equal logs for the same seed and regime.
struct ScheduleLog {
  std::vector<std::pair<Nanos, int>> pops;  // (when, tag) in pop order
  std::vector<Nanos> next_times;            // NextTime() before each pop
  std::vector<char> cancel_results;         // Cancel() outcomes in op order
  std::vector<std::size_t> sizes;           // size() after every op
  std::uint64_t scheduled = 0;              // total events scheduled

  bool operator==(const ScheduleLog& other) const {
    return pops == other.pops && next_times == other.next_times &&
           cancel_results == other.cancel_results && sizes == other.sizes &&
           scheduled == other.scheduled;
  }
};

// Runs one randomized schedule against `q` (any type with the EventQueue
// interface: Schedule, Cancel, PopNext, NextTime, size, empty) and returns
// the observable log. Fired callbacks record a per-run monotone tag — the
// insertion order, which is the documented equal-time tie-break.
template <typename Queue>
ScheduleLog RunRandomSchedule(Queue& q, std::uint64_t seed,
                              const ScheduleRegime& regime) {
  Rng rng(seed);
  ScheduleLog log;
  struct Live {
    typename Queue::EventId id;
    int tag;
  };
  std::vector<Live> live;
  std::vector<typename Queue::EventId> retired;  // fired or cancelled
  std::vector<int> fired;
  int next_tag = 0;
  Nanos base = 0;
  int schedules = 0;

  const auto schedule_at = [&](Nanos when) {
    const int tag = next_tag++;
    const typename Queue::EventId id =
        q.Schedule(when, [&fired, tag] { fired.push_back(tag); });
    live.push_back({id, tag});
    ++log.scheduled;
  };

  for (int step = 0; step < regime.ops; ++step) {
    const std::uint64_t op = rng.NextBounded(10);
    const bool want_schedule =
        op < static_cast<std::uint64_t>(regime.schedule_weight) || live.empty();
    if (want_schedule) {
      ++schedules;
      Nanos when = base + static_cast<Nanos>(
                              rng.NextBounded(static_cast<std::uint64_t>(regime.domain)));
      if (regime.far_every > 0 && schedules % regime.far_every == 0) {
        when += regime.far_offset;
      }
      if (regime.burst_every > 0 && schedules % regime.burst_every == 0) {
        for (int b = 0; b < regime.burst_size; ++b) {
          schedule_at(when);
        }
      } else {
        schedule_at(when);
      }
    } else if (op < 7) {
      // Cancel: half the time a live event, half a retired (stale) id. Both
      // outcomes are part of the observable log.
      if (!retired.empty() && rng.NextBounded(2) == 0) {
        const auto id = retired[rng.NextBounded(retired.size())];
        log.cancel_results.push_back(q.Cancel(id) ? 1 : 0);
      } else {
        const std::size_t pick = rng.NextBounded(live.size());
        log.cancel_results.push_back(q.Cancel(live[pick].id) ? 1 : 0);
        retired.push_back(live[pick].id);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    } else {
      log.next_times.push_back(q.NextTime());
      auto popped = q.PopNext();
      popped.second();
      const int tag = fired.back();
      log.pops.emplace_back(popped.first, tag);
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i].tag == tag) {
          retired.push_back(live[i].id);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    if (regime.drift > 0) {
      base += static_cast<Nanos>(
          rng.NextBounded(static_cast<std::uint64_t>(regime.drift)));
    }
    log.sizes.push_back(q.size());
  }

  // Drain: remaining events must come out in (when, insertion order).
  while (!q.empty()) {
    log.next_times.push_back(q.NextTime());
    auto popped = q.PopNext();
    popped.second();
    log.pops.emplace_back(popped.first, fired.back());
    log.sizes.push_back(q.size());
  }
  return log;
}

}  // namespace testing_schedules
}  // namespace deepplan

#endif  // TESTS_EVENTQUEUE_SCHEDULES_H_
