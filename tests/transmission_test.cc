#include <gtest/gtest.h>

#include "src/core/profiler.h"
#include "src/core/transmission.h"
#include "src/model/zoo.h"

namespace deepplan {
namespace {

ModelProfile MakeProfile(const Model& model) {
  static PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;
  return Profiler(&perf, opts).Profile(model);
}

TEST(TransmissionTest, PartitionsBalanceBytes) {
  for (const Model& model : ModelZoo::PaperModels()) {
    const ModelProfile profile = MakeProfile(model);
    ExecutionPlan plan(model.name(), model.num_layers());
    TransmissionPlanner::AssignPartitions(profile, 2, &plan);
    ASSERT_EQ(plan.num_partitions(), 2) << model.name();
    std::int64_t bytes[2] = {0, 0};
    for (std::size_t i = 0; i < plan.num_layers(); ++i) {
      bytes[plan.partition(i)] += profile.layers[i].param_bytes;
    }
    const double imbalance =
        std::abs(static_cast<double>(bytes[0] - bytes[1])) /
        static_cast<double>(profile.TotalParamBytes());
    EXPECT_LT(imbalance, 0.25) << model.name();  // "evenly in terms of size"
  }
}

TEST(TransmissionTest, PartitionsAreContiguous) {
  const ModelProfile profile = MakeProfile(ModelZoo::Gpt2Medium());
  ExecutionPlan plan("gpt2_medium", profile.num_layers());
  TransmissionPlanner::AssignPartitions(profile, 4, &plan);
  int prev = 0;
  for (std::size_t i = 0; i < plan.num_layers(); ++i) {
    EXPECT_GE(plan.partition(i), prev);
    EXPECT_LE(plan.partition(i), prev + 1);
    prev = plan.partition(i);
  }
  EXPECT_EQ(plan.num_partitions(), 4);
}

TEST(TransmissionTest, DegreeOneIsNoOp) {
  const ModelProfile profile = MakeProfile(ModelZoo::ResNet50());
  ExecutionPlan plan("resnet50", profile.num_layers());
  TransmissionPlanner::AssignPartitions(profile, 1, &plan);
  EXPECT_EQ(plan.num_partitions(), 1);
}

TEST(TransmissionTest, ChooseDegreeRespectsTopologyAndCap) {
  const Topology p3 = Topology::P3_8xlarge();
  EXPECT_EQ(TransmissionPlanner::ChooseDegree(p3, 0), 2);
  EXPECT_EQ(TransmissionPlanner::ChooseDegree(p3, 0, /*max_degree=*/1), 1);
  const Topology a5000 = Topology::A5000Box();
  EXPECT_EQ(TransmissionPlanner::ChooseDegree(a5000, 1), 2);
}

TEST(TransmissionTest, ChooseDegreeWithoutNvlinkIsOne) {
  // The paper: "we check whether the selected GPUs are connected through
  // NVLink. If not, we do not enable the parallel-transmission."
  const Topology t =
      Topology::Custom("no-nvlink", GpuSpec::V100(), PcieSpec::Gen3(),
                       NvlinkSpec::V100Nvlink(), {0, 1}, 12e9, {});
  EXPECT_EQ(TransmissionPlanner::ChooseDegree(t, 0), 1);
}

TEST(TransmissionTest, SecondariesComeFromOtherSwitch) {
  const Topology p3 = Topology::P3_8xlarge();
  for (GpuId primary = 0; primary < 4; ++primary) {
    const auto secondaries = TransmissionPlanner::ChooseSecondaries(p3, primary, 2);
    ASSERT_EQ(secondaries.size(), 1u);
    EXPECT_FALSE(p3.SameSwitch(primary, secondaries[0]))
        << "primary " << primary << " paired with same-switch GPU";
    EXPECT_TRUE(p3.HasNvlink(primary, secondaries[0]));
  }
}

TEST(TransmissionTest, DegreeOneNeedsNoSecondaries) {
  const Topology p3 = Topology::P3_8xlarge();
  EXPECT_TRUE(TransmissionPlanner::ChooseSecondaries(p3, 0, 1).empty());
}

}  // namespace
}  // namespace deepplan
