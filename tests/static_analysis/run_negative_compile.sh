#!/usr/bin/env bash
# Negative-compile harness: proves the compile-time enforcement actually
# enforces. Two modes, registered as two ctest entries:
#
#   sweep-static-assert  Compiles fail_vector_bool_sweep.cc with the
#                        configured compiler and requires the SweepRunner
#                        vector<bool> static_assert to fire. Runs anywhere.
#
#   thread-safety        Compiles pass_annotated.cc (must succeed) and each
#                        fail_*.cc snippet (must fail, and fail *because of*
#                        a -Wthread-safety diagnostic) under clang. Skips
#                        with exit 77 (ctest SKIP_RETURN_CODE) when no
#                        clang++ is available; set DEEPPLAN_CLANGXX to point
#                        at one explicitly.
#
# usage: run_negative_compile.sh <mode> <repo_root> <configured_cxx>
set -u

if [ "$#" -ne 3 ]; then
  echo "usage: $0 {sweep-static-assert|thread-safety} <repo_root> <cxx>" >&2
  exit 2
fi
mode="$1"
repo_root="$2"
cxx="$3"
here="$(cd "$(dirname "$0")" && pwd)"

# Compile one snippet to syntax-check only; returns the compiler's status and
# leaves diagnostics in $err_file.
err_file="$(mktemp)"
trap 'rm -f "$err_file"' EXIT

compile() {  # compile <compiler> <extra flags...> -- <file>
  local compiler="$1"
  shift
  "$compiler" -std=c++20 -fsyntax-only -I"$repo_root" "$@" 2>"$err_file"
}

fail() {
  echo "FAIL: $1" >&2
  sed 's/^/  | /' "$err_file" >&2
  exit 1
}

case "$mode" in
  sweep-static-assert)
    if compile "$cxx" "$here/fail_vector_bool_sweep.cc"; then
      fail "fail_vector_bool_sweep.cc compiled, but SweepRunner::Map must reject bool results"
    fi
    if ! grep -qi "vector<bool>" "$err_file"; then
      fail "fail_vector_bool_sweep.cc failed, but not via the vector<bool> static_assert"
    fi
    echo "PASS: SweepRunner::Map rejects vector<bool> result slots at compile time"
    ;;

  thread-safety)
    clangxx="${DEEPPLAN_CLANGXX:-}"
    if [ -z "$clangxx" ]; then
      clangxx="$(command -v clang++ || true)"
    fi
    if [ -z "$clangxx" ]; then
      echo "SKIP: no clang++ on PATH (thread-safety analysis is clang-only);" \
           "set DEEPPLAN_CLANGXX to run this prong" >&2
      exit 77
    fi

    # Positive control first: correct annotations must be warning-free, or
    # the failures below prove nothing.
    if ! compile "$clangxx" -Wall -Wthread-safety -Werror -- \
         "$here/pass_annotated.cc"; then
      fail "pass_annotated.cc must compile clean under -Wthread-safety -Werror"
    fi
    echo "PASS: pass_annotated.cc clean under -Wthread-safety -Werror"

    for case_file in fail_unguarded_field.cc fail_missing_requires.cc \
                     fail_lock_leak.cc; do
      if compile "$clangxx" -Wthread-safety -Werror -- "$here/$case_file"; then
        fail "$case_file compiled, but its lock-discipline bug must be rejected"
      fi
      if ! grep -q "thread-safety" "$err_file"; then
        fail "$case_file failed, but not with a -Wthread-safety diagnostic"
      fi
      echo "PASS: $case_file rejected by thread-safety analysis"
    done
    ;;

  *)
    echo "unknown mode: $mode" >&2
    exit 2
    ;;
esac
