// Negative-compile case that needs no clang: SweepRunner::Map must reject a
// bool-returning task at compile time (std::vector<bool> bit-packs elements
// into shared words, so the disjoint-slot write contract would become a data
// race). The static_assert in src/util/sweep.h fires under any compiler.
#include "src/util/sweep.h"

int main() {
  deepplan::SweepRunner runner(2);
  // BUG: R = bool -> std::vector<bool> result slots share words.
  auto flags = runner.Map(4, [](int i) { return i % 2 == 0; });
  return flags.empty() ? 1 : 0;
}
