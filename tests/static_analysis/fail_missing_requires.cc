// Negative-compile case: calling a REQUIRES(mu_) helper without holding the
// mutex must fail under clang -Wthread-safety -Werror.
#include "src/util/thread_annotations.h"

namespace {

class Queue {
 public:
  // BUG: PushLocked demands mu_, but nothing acquires it first.
  void Push() EXCLUDES(mu_) { PushLocked(); }

 private:
  void PushLocked() REQUIRES(mu_) { ++size_; }

  deepplan::Mutex mu_;
  int size_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.Push();
  return 0;
}
