// Negative-compile case: a path that returns with the mutex still held
// (no Unlock on the early-return branch) must fail under clang
// -Wthread-safety -Werror.
#include "src/util/thread_annotations.h"

namespace {

deepplan::Mutex mu;
int value GUARDED_BY(mu) = 0;

// BUG: locks mu and never unlocks it.
void Leak() {
  mu.Lock();
  value = 1;
}

}  // namespace

int main() {
  Leak();
  return value;
}
