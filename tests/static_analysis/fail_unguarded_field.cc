// Negative-compile case: writing a GUARDED_BY field without holding its
// mutex must fail under clang -Wthread-safety -Werror.
#include "src/util/thread_annotations.h"

namespace {

class Counter {
 public:
  // BUG: touches value_ with mu_ not held.
  void Increment() { ++value_; }

 private:
  deepplan::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
