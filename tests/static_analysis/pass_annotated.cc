// Positive control for the negative-compile harness: the full annotated
// vocabulary used correctly — MutexLock scopes, a REQUIRES helper called
// under the lock, a CondVar wait whose predicate starts with AssertHeld —
// must compile *clean* under clang -Wthread-safety -Werror. If this file
// ever warns, the harness is miscalibrated and the fail_* results mean
// nothing.
#include "src/util/thread_annotations.h"

namespace {

class Box {
 public:
  void Put(int v) EXCLUDES(mu_) {
    deepplan::MutexLock lock(mu_);
    StoreLocked(v);
    cv_.NotifyAll();
  }

  int TakeWhenReady() EXCLUDES(mu_) {
    deepplan::MutexLock lock(mu_);
    cv_.Wait(mu_, [this] {
      mu_.AssertHeld();
      return ready_;
    });
    ready_ = false;
    return value_;
  }

  bool ready() const EXCLUDES(mu_) {
    deepplan::MutexLock lock(mu_);
    return ready_;
  }

 private:
  void StoreLocked(int v) REQUIRES(mu_) {
    value_ = v;
    ready_ = true;
  }

  mutable deepplan::Mutex mu_;
  deepplan::CondVar cv_;
  int value_ GUARDED_BY(mu_) = 0;
  bool ready_ GUARDED_BY(mu_) = false;
};

}  // namespace

int main() {
  Box box;
  box.Put(7);
  return box.TakeWhenReady() == 7 ? 0 : 1;
}
