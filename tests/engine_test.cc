#include <gtest/gtest.h>

#include "src/core/profiler.h"
#include "src/engine/engine.h"
#include "src/engine/strategies.h"
#include "src/model/zoo.h"

namespace deepplan {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : topology_(Topology::P3_8xlarge()),
        perf_(topology_.gpu(), topology_.pcie()),
        fabric_(&sim_, &topology_),
        engine_(&sim_, &fabric_, &perf_) {}

  ModelProfile ExactProfile(const Model& model) {
    ProfilerOptions opts;
    opts.noise_stddev = 0.0;
    return Profiler(&perf_, opts).Profile(model);
  }

  InferenceResult RunColdSync(const Model& model, const ExecutionPlan& plan,
                              GpuId primary, std::vector<GpuId> secondaries,
                              const ColdRunOptions& options) {
    InferenceResult result;
    bool finished = false;
    engine_.RunCold(model, plan, primary, std::move(secondaries), options,
                    [&](const InferenceResult& r) {
                      result = r;
                      finished = true;
                    });
    sim_.Run();
    EXPECT_TRUE(finished);
    return result;
  }

  Topology topology_;
  PerfModel perf_;
  Simulator sim_;
  ServerFabric fabric_;
  Engine engine_;
};

TEST_F(EngineTest, WarmDurationMatchesPerfModel) {
  const Model model = ModelZoo::BertBase();
  const ExecutionPlan all_load(model.name(), model.num_layers());
  EXPECT_EQ(engine_.WarmDuration(model, all_load, 1), perf_.WarmLatency(model, 1));
}

TEST_F(EngineTest, WarmWithDhaPlanIsSlowerThanAllInMemory) {
  const Model model = ModelZoo::BertBase();
  const ModelProfile profile = ExactProfile(model);
  const ExecutionPlan dha_plan = Planner(&profile).GeneratePlan();
  const ExecutionPlan all_load(model.name(), model.num_layers());
  EXPECT_GT(engine_.WarmDuration(model, dha_plan, 1),
            engine_.WarmDuration(model, all_load, 1));
}

TEST_F(EngineTest, RunWarmCompletesAfterWarmDuration) {
  const Model model = ModelZoo::ResNet50();
  const ExecutionPlan plan(model.name(), model.num_layers());
  InferenceResult result;
  engine_.RunWarm(model, plan, 1, [&](const InferenceResult& r) { result = r; });
  sim_.Run();
  EXPECT_EQ(result.latency, engine_.WarmDuration(model, plan, 1));
  EXPECT_FALSE(result.cold);
}

TEST_F(EngineTest, BaselineColdIsLoadPlusExec) {
  const Model model = ModelZoo::BertBase();
  const ExecutionPlan plan(model.name(), model.num_layers());
  ColdRunOptions options;
  options.pipelined = false;
  const InferenceResult r = RunColdSync(model, plan, 0, {}, options);
  // Latency ~= total load + warm exec (within 3%: fabric rounding).
  const double expected = static_cast<double>(perf_.TotalLoadTime(model)) +
                          static_cast<double>(perf_.WarmLatency(model, 1));
  EXPECT_NEAR(static_cast<double>(r.latency), expected, expected * 0.03);
  EXPECT_TRUE(r.cold);
}

TEST_F(EngineTest, PipelinedColdBeatsBaseline) {
  const Model model = ModelZoo::BertBase();
  const ExecutionPlan plan(model.name(), model.num_layers());
  ColdRunOptions baseline;
  baseline.pipelined = false;
  const InferenceResult rb = RunColdSync(model, plan, 0, {}, baseline);

  Simulator sim2;
  ServerFabric fabric2(&sim2, &topology_);
  Engine engine2(&sim2, &fabric2, &perf_);
  InferenceResult rp;
  engine2.RunCold(model, plan, 0, {}, ColdRunOptions{},
                  [&](const InferenceResult& r) { rp = r; });
  sim2.Run();

  EXPECT_LT(rp.latency, rb.latency);
  EXPECT_GT(rp.stall, 0);
}

TEST_F(EngineTest, EngineAgreesWithAnalyticPipelineUncontended) {
  // The analytic model (used by the planner) and the event-driven engine must
  // agree in the uncontended single-run case: same plan, same timeline.
  for (const char* name : {"bert_base", "resnet50", "gpt2"}) {
    const Model model = ModelZoo::ByName(name);
    const ModelProfile profile = ExactProfile(model);
    const ExecutionPlan plan = Planner(&profile).GeneratePlan();

    Simulator sim;
    ServerFabric fabric(&sim, &topology_);
    Engine engine(&sim, &fabric, &perf_);
    InferenceResult engine_result;
    engine.RunCold(model, plan, 0, {}, ColdRunOptions{},
                   [&](const InferenceResult& r) { engine_result = r; });
    sim.Run();

    const PipelineResult analytic = SimulatePipeline(profile, plan);
    EXPECT_NEAR(static_cast<double>(engine_result.latency),
                static_cast<double>(analytic.total),
                static_cast<double>(analytic.total) * 0.02)
        << name;
  }
}

TEST_F(EngineTest, ParallelTransmissionUsesTwoLanes) {
  const Model model = ModelZoo::BertLarge();
  const ModelProfile profile = ExactProfile(model);
  PlannerOptions options;
  options.enable_dha = false;
  options.num_partitions = 2;
  const ExecutionPlan plan = Planner(&profile).GeneratePlan(options);
  const InferenceResult r = RunColdSync(model, plan, 0, {2}, ColdRunOptions{});
  ASSERT_EQ(r.partitions.size(), 2u);
  EXPECT_GT(r.partitions[0].bytes, 0);
  EXPECT_GT(r.partitions[1].bytes, 0);
  // Both lanes pull roughly half the model; PCIe completion of each lane is
  // well under the serial load time.
  EXPECT_LT(r.partitions[0].pcie_done, perf_.TotalLoadTime(model) * 3 / 4);
  EXPECT_LT(r.partitions[1].pcie_done, perf_.TotalLoadTime(model) * 3 / 4);
}

TEST_F(EngineTest, PtColdBeatsSingleLanePipelineForBert) {
  const Model model = ModelZoo::BertLarge();
  const ModelProfile profile = ExactProfile(model);
  const ExecutionPlan pipe(model.name(), model.num_layers());
  PlannerOptions pt_opts;
  pt_opts.enable_dha = false;
  pt_opts.num_partitions = 2;
  const ExecutionPlan pt = Planner(&profile).GeneratePlan(pt_opts);

  Simulator sim_a;
  ServerFabric fab_a(&sim_a, &topology_);
  Engine eng_a(&sim_a, &fab_a, &perf_);
  InferenceResult ra;
  eng_a.RunCold(model, pipe, 0, {}, ColdRunOptions{},
                [&](const InferenceResult& r) { ra = r; });
  sim_a.Run();

  Simulator sim_b;
  ServerFabric fab_b(&sim_b, &topology_);
  Engine eng_b(&sim_b, &fab_b, &perf_);
  InferenceResult rb;
  eng_b.RunCold(model, pt, 0, {2}, ColdRunOptions{},
                [&](const InferenceResult& r) { rb = r; });
  sim_b.Run();

  EXPECT_LT(static_cast<double>(rb.latency), static_cast<double>(ra.latency) * 0.8);
}

TEST_F(EngineTest, BulkMigrationSlowerThanPipelined) {
  // Figure 6: parallel-pipeline beats plain parallel (bulk forwarding).
  const Model model = ModelZoo::BertBase();
  const ModelProfile profile = ExactProfile(model);
  PlannerOptions opts;
  opts.enable_dha = false;
  opts.num_partitions = 2;
  const ExecutionPlan plan = Planner(&profile).GeneratePlan(opts);

  Nanos load_done[2];
  int idx = 0;
  for (const MigrationMode mode : {MigrationMode::kPipelined, MigrationMode::kBulk}) {
    Simulator sim;
    ServerFabric fabric(&sim, &topology_);
    Engine engine(&sim, &fabric, &perf_);
    ColdRunOptions options;
    options.migration = mode;
    InferenceResult result;
    engine.RunCold(model, plan, 0, {2}, options,
                   [&](const InferenceResult& r) { result = r; });
    sim.Run();
    load_done[idx++] = result.load_done;
  }
  EXPECT_LT(load_done[0], load_done[1]);
}

TEST_F(EngineTest, SameSwitchSecondaryContendsOnUplink) {
  // Loading via GPUs 0 and 1 (same switch) shares the uplink; via 0 and 2
  // (different switches) does not. Load completion must be later when paired
  // on one switch.
  const Model model = ModelZoo::BertLarge();
  const ModelProfile profile = ExactProfile(model);
  PlannerOptions opts;
  opts.enable_dha = false;
  opts.num_partitions = 2;
  const ExecutionPlan plan = Planner(&profile).GeneratePlan(opts);

  Nanos done_same = 0;
  Nanos done_other = 0;
  for (const GpuId secondary : {1, 2}) {
    Simulator sim;
    ServerFabric fabric(&sim, &topology_);
    Engine engine(&sim, &fabric, &perf_);
    InferenceResult result;
    engine.RunCold(model, plan, 0, {secondary}, ColdRunOptions{},
                   [&](const InferenceResult& r) { result = r; });
    sim.Run();
    (secondary == 1 ? done_same : done_other) = result.load_done;
  }
  EXPECT_GT(static_cast<double>(done_same), static_cast<double>(done_other) * 1.3);
}

TEST_F(EngineTest, ConcurrentColdStartsInterfere) {
  // Table 4: two simultaneous PT cold-starts are slower than one, but still
  // complete. GPUs 0 and 2 both run PT with each other as secondary.
  const Model model = ModelZoo::BertBase();
  const ModelProfile profile = ExactProfile(model);
  PlannerOptions opts;
  opts.enable_dha = false;
  opts.num_partitions = 2;
  const ExecutionPlan plan = Planner(&profile).GeneratePlan(opts);

  InferenceResult solo;
  {
    Simulator sim;
    ServerFabric fabric(&sim, &topology_);
    Engine engine(&sim, &fabric, &perf_);
    engine.RunCold(model, plan, 0, {2}, ColdRunOptions{},
                   [&](const InferenceResult& r) { solo = r; });
    sim.Run();
  }
  InferenceResult dual_a;
  InferenceResult dual_b;
  {
    Simulator sim;
    ServerFabric fabric(&sim, &topology_);
    Engine engine(&sim, &fabric, &perf_);
    engine.RunCold(model, plan, 0, {2}, ColdRunOptions{},
                   [&](const InferenceResult& r) { dual_a = r; });
    engine.RunCold(model, plan, 2, {0}, ColdRunOptions{},
                   [&](const InferenceResult& r) { dual_b = r; });
    sim.Run();
  }
  EXPECT_GT(dual_a.latency, solo.latency);
  EXPECT_GT(dual_b.latency, solo.latency);
  // but far from a 2x collapse (NVLink lanes are independent):
  EXPECT_LT(dual_a.latency, solo.latency * 2);
}

TEST_F(EngineTest, DhaPlanSkipsLoadingHostResidentLayers) {
  const Model model = ModelZoo::BertBase();
  const ModelProfile profile = ExactProfile(model);
  const ExecutionPlan plan = Planner(&profile).GeneratePlan();
  ASSERT_GT(plan.CountDha(), 0u);
  const InferenceResult r = RunColdSync(model, plan, 0, {}, ColdRunOptions{});
  std::int64_t loaded = 0;
  for (const auto& p : r.partitions) {
    loaded += p.bytes;
  }
  EXPECT_EQ(loaded, plan.GpuResidentBytes(profile));
  EXPECT_LT(loaded, model.total_param_bytes());
}

// ---------------------------------------------------------------- strategies

TEST(StrategiesTest, NamesAndDegrees) {
  const Topology p3 = Topology::P3_8xlarge();
  EXPECT_STREQ(StrategyName(Strategy::kPipeSwitch), "PipeSwitch");
  EXPECT_EQ(AllStrategies().size(), 5u);
  EXPECT_EQ(StrategyDegree(Strategy::kBaseline, p3, 0), 1);
  EXPECT_EQ(StrategyDegree(Strategy::kDeepPlanDha, p3, 0), 1);
  EXPECT_EQ(StrategyDegree(Strategy::kDeepPlanPt, p3, 0), 2);
  EXPECT_EQ(StrategyDegree(Strategy::kDeepPlanPtDha, p3, 0), 2);
}

TEST(StrategiesTest, PlanShapesPerStrategy) {
  PerfModel perf(GpuSpec::V100(), PcieSpec::Gen3());
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;
  const ModelProfile profile =
      Profiler(&perf, opts).Profile(ModelZoo::BertBase());
  const auto plan_for = [&](Strategy s, int degree) {
    return MakeStrategyPlan(s, profile, degree);
  };
  EXPECT_EQ(plan_for(Strategy::kBaseline, 1).CountDha(), 0u);
  EXPECT_EQ(plan_for(Strategy::kPipeSwitch, 1).CountDha(), 0u);
  EXPECT_GT(plan_for(Strategy::kDeepPlanDha, 1).CountDha(), 0u);
  EXPECT_EQ(plan_for(Strategy::kDeepPlanPt, 2).num_partitions(), 2);
  EXPECT_EQ(plan_for(Strategy::kDeepPlanPt, 2).CountDha(), 0u);
  const ExecutionPlan ptdha = plan_for(Strategy::kDeepPlanPtDha, 2);
  EXPECT_EQ(ptdha.num_partitions(), 2);
  EXPECT_GT(ptdha.CountDha(), 0u);
}

TEST(StrategiesTest, OnlyBaselineIsUnpipelined) {
  for (const Strategy s : AllStrategies()) {
    EXPECT_EQ(MakeColdRunOptions(s).pipelined, s != Strategy::kBaseline);
  }
}

}  // namespace
}  // namespace deepplan
