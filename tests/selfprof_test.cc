// Host self-profiler (src/obs/selfprof.h), its report lint (trace_lint
// --selfprof), the bench wall-clock trajectory gate (src/check/
// bench_history.h), and the DEEPPLAN_PROGRESS heartbeat. Pins the subsystem's
// three contracts:
//   - zero cost disabled: with no lane installed, scopes and counters never
//     touch the heap (replaced global operator new, mirroring obs_test.cc);
//   - exactness: counts are exact, sampled entries only run under timed
//     ancestors, so exclusive_ns arithmetic balances exactly (lint-checked);
//   - determinism: the deterministic projection is byte-identical across
//     SweepRunner jobs 1/2/8 for the same simulated run.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <new>
#include <string>
#include <vector>

#include "bench/scaling_common.h"
#include "src/check/bench_history.h"
#include "src/check/trace_lint.h"
#include "src/obs/selfprof.h"
#include "src/sim/simulator.h"
#include "src/util/json_parse.h"
#include "src/util/sweep.h"

// Global allocation counter: the disabled-profiler test pins the "zero cost
// when off" contract by proving uninstrumented scopes never touch the heap.
namespace {
std::size_t g_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc();
}

// The nothrow variant must be replaced too: libstdc++'s temporary buffers
// (e.g. stable_sort) allocate through it, and under ASan an unreplaced
// nothrow new paired with the replaced free-based delete is flagged as an
// alloc-dealloc mismatch.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size == 0 ? 1 : size);
}

// All global operators are replaced as a matched malloc/free set, but GCC's
// pairing analysis only sees free() applied to new-expression results.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace deepplan {
namespace {

using selfprof::Counter;
using selfprof::InstallLane;
using selfprof::LaneView;
using selfprof::Phase;
using selfprof::ScopedPhase;
using selfprof::SelfProfiler;

// Finds the child node of `parent` with `phase`, or nullptr.
const SelfProfiler::Node* Child(const SelfProfiler& lane,
                                const SelfProfiler::Node& parent, Phase phase) {
  const std::int32_t index =
      parent.child[static_cast<std::size_t>(phase)];
  return index >= 0 ? &lane.nodes()[static_cast<std::size_t>(index)] : nullptr;
}

// ------------------------------------------------------------ zero cost off

TEST(SelfProfTest, DisabledScopesAllocateNothing) {
  ASSERT_EQ(selfprof::CurrentLane(), nullptr);
  const std::size_t before = g_allocations;
  for (int i = 0; i < 100; ++i) {
    DP_SELFPROF_SCOPE(kSimDispatch);
    DP_SELFPROF_SCOPE(kExecStream);
    selfprof::AddCount(Counter::kEventsDispatched, 1);
  }
  {
    InstallLane off(nullptr);  // disabled install is a no-op too
    DP_SELFPROF_SCOPE(kFairShare);
  }
  const std::size_t after = g_allocations;
  EXPECT_EQ(after, before);
}

// --------------------------------------------------------- tree + sampling

TEST(SelfProfTest, NestedScopesBuildOnePathPerPhaseChain) {
  SelfProfiler lane;
  {
    InstallLane install(&lane);
    for (int i = 0; i < 3; ++i) {
      DP_SELFPROF_SCOPE(kSimDispatch);
      DP_SELFPROF_SCOPE(kColdStart);
    }
  }
  ASSERT_TRUE(lane.closed());
  EXPECT_EQ(lane.root().count, 1u);
  const SelfProfiler::Node* dispatch =
      Child(lane, lane.root(), Phase::kSimDispatch);
  ASSERT_NE(dispatch, nullptr);
  EXPECT_EQ(dispatch->count, 3u);
  EXPECT_EQ(dispatch->sampled, 3u);  // period-1 phase: every entry timed
  const SelfProfiler::Node* cold = Child(lane, *dispatch, Phase::kColdStart);
  ASSERT_NE(cold, nullptr);
  EXPECT_EQ(cold->count, 3u);
  // Same phase chain reuses one path: root + dispatch + cold.
  EXPECT_EQ(lane.nodes().size(), 3u);
  // Measured child time nests inside measured parent time — exactly.
  EXPECT_GE(dispatch->inclusive_ns, cold->inclusive_ns);
  EXPECT_GE(lane.root().inclusive_ns, dispatch->inclusive_ns);
}

TEST(SelfProfTest, SampledPhaseCountsAlwaysTimesEveryPeriodth) {
  SelfProfiler lane;
  constexpr int kEntries = 130;  // 3 gate hits at period 64: entries 1, 65, 129
  {
    InstallLane install(&lane);
    for (int i = 0; i < kEntries; ++i) {
      ScopedPhase fair(Phase::kFairShare);
      // Nested under the sampled phase: timed only when the parent entry is
      // (untimed parents suppress everything below; timing parents force
      // nested sampled phases on so they cannot starve).
      ScopedPhase setup(Phase::kSetup);
      ScopedPhase exec(Phase::kExecStream);
    }
  }
  const SelfProfiler::Node* fair = Child(lane, lane.root(), Phase::kFairShare);
  ASSERT_NE(fair, nullptr);
  EXPECT_EQ(fair->count, static_cast<std::uint64_t>(kEntries));
  EXPECT_EQ(fair->sampled, 3u);
  const SelfProfiler::Node* setup = Child(lane, *fair, Phase::kSetup);
  ASSERT_NE(setup, nullptr);
  EXPECT_EQ(setup->count, static_cast<std::uint64_t>(kEntries));
  EXPECT_EQ(setup->sampled, 3u);  // period 1, but suppressed with the parent
  const SelfProfiler::Node* exec = Child(lane, *setup, Phase::kExecStream);
  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(exec->count, static_cast<std::uint64_t>(kEntries));
  EXPECT_EQ(exec->sampled, 3u);  // nested sampled phase rides the parent
}

TEST(SelfProfTest, ReenteringInnermostPhaseCollapsesToCountBump) {
  SelfProfiler lane;
  {
    InstallLane install(&lane);
    ScopedPhase outer(Phase::kExecStream);
    ScopedPhase inner(Phase::kExecStream);  // Stream::MaybeStartNext recursion
    ScopedPhase innermost(Phase::kExecStream);
  }
  const SelfProfiler::Node* exec = Child(lane, lane.root(), Phase::kExecStream);
  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(exec->count, 3u);
  EXPECT_EQ(Child(lane, *exec, Phase::kExecStream), nullptr);
  EXPECT_EQ(lane.nodes().size(), 2u);  // root + one exec node
}

TEST(SelfProfTest, InstallLaneShadowsAndRestores) {
  SelfProfiler outer_lane;
  SelfProfiler inner_lane;
  {
    InstallLane outer(&outer_lane);
    { DP_SELFPROF_SCOPE(kWarmup); }
    {
      InstallLane inner(&inner_lane);  // jobs=1: sweep task on a lane-holding
      { DP_SELFPROF_SCOPE(kSetup); }   // thread shadows, not clobbers
      EXPECT_EQ(selfprof::CurrentLane(), &inner_lane);
    }
    EXPECT_EQ(selfprof::CurrentLane(), &outer_lane);
    { DP_SELFPROF_SCOPE(kWarmup); }
  }
  const SelfProfiler::Node* warmup =
      Child(outer_lane, outer_lane.root(), Phase::kWarmup);
  ASSERT_NE(warmup, nullptr);
  EXPECT_EQ(warmup->count, 2u);
  EXPECT_EQ(Child(outer_lane, outer_lane.root(), Phase::kSetup), nullptr);
  const SelfProfiler::Node* setup =
      Child(inner_lane, inner_lane.root(), Phase::kSetup);
  ASSERT_NE(setup, nullptr);
  EXPECT_EQ(setup->count, 1u);
}

TEST(SelfProfTest, CountersAttributeToInstalledLaneOnly) {
  selfprof::AddCount(Counter::kValidatorChecks, 5);  // no lane: dropped
  SelfProfiler lane;
  {
    InstallLane install(&lane);
    selfprof::AddCount(Counter::kValidatorChecks, 2);
    selfprof::AddCount(Counter::kEventsDispatched, 7);
  }
  EXPECT_EQ(lane.counter(Counter::kValidatorChecks), 2u);
  EXPECT_EQ(lane.counter(Counter::kEventsDispatched), 7u);
  EXPECT_EQ(lane.counter(Counter::kHeartbeats), 0u);
}

// ------------------------------------------------------------------ report

// A small two-lane report exercising nesting, sampling, and counters.
std::string TwoLaneReport(SelfProfiler* a, SelfProfiler* b,
                          bool deterministic = false) {
  {
    InstallLane install(a);
    DP_SELFPROF_SCOPE(kSimDispatch);
    for (int i = 0; i < 70; ++i) {
      ScopedPhase exec(Phase::kExecStream);
    }
    selfprof::AddCount(Counter::kEventsDispatched, 70);
    selfprof::AddCount(Counter::kHeartbeats, 1);
  }
  {
    InstallLane install(b);
    DP_SELFPROF_SCOPE(kWorkloadGen);
  }
  const std::vector<LaneView> lanes = {{"a", a}, {"b", b}};
  return deterministic ? selfprof::DeterministicReportJson("test", lanes)
                       : selfprof::ReportJson("test", lanes);
}

TEST(SelfProfReportTest, ReportPassesLintAndCarriesBothSurfaces) {
  SelfProfiler a;
  SelfProfiler b;
  const std::string json = TwoLaneReport(&a, &b);
  const check::TraceLintResult lint = check::LintSelfprofReport(json);
  EXPECT_TRUE(lint.ok()) << (lint.errors.empty() ? "" : lint.errors[0]);
  EXPECT_EQ(lint.num_tracks, 2u);

  const JsonParseResult parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok);
  const JsonValue* report = parsed.value.Find("selfprof_report");
  ASSERT_NE(report, nullptr);
  EXPECT_NE(report->Find("host"), nullptr);
  // Aggregate carries the wall-dependent heartbeat counter in the full
  // report.
  const JsonValue* aggregate = report->Find("aggregate");
  ASSERT_NE(aggregate, nullptr);
  const JsonValue* counters = aggregate->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* heartbeats = counters->Find("heartbeats");
  ASSERT_NE(heartbeats, nullptr);
  EXPECT_EQ(heartbeats->AsNumber(), 1.0);
}

TEST(SelfProfReportTest, DeterministicProjectionStripsWallDependentFields) {
  SelfProfiler a;
  SelfProfiler b;
  const std::string json = TwoLaneReport(&a, &b, /*deterministic=*/true);
  EXPECT_EQ(json.find("_ns"), std::string::npos);
  EXPECT_EQ(json.find("host"), std::string::npos);
  EXPECT_EQ(json.find("heartbeats"), std::string::npos);
  EXPECT_NE(json.find("events_dispatched"), std::string::npos);
  // The projection is itself a valid report for the lint.
  const check::TraceLintResult lint = check::LintSelfprofReport(json);
  EXPECT_TRUE(lint.ok()) << (lint.errors.empty() ? "" : lint.errors[0]);
}

TEST(SelfProfReportDeathTest, ReportingAnOpenLaneDies) {
  SelfProfiler lane;
  lane.Enter(Phase::kTotal);  // opened, never closed
  const std::vector<LaneView> lanes = {{"open", &lane}};
  EXPECT_DEATH(selfprof::ReportJson("test", lanes), "closed");
}

// -------------------------------------------------------------------- lint

TEST(SelfProfLintTest, RejectsMalformedReports) {
  SelfProfiler a;
  SelfProfiler b;
  const std::string good = TwoLaneReport(&a, &b);
  ASSERT_TRUE(check::LintSelfprofReport(good).ok());

  const auto expect_errors = [](const std::string& json) {
    const check::TraceLintResult lint = check::LintSelfprofReport(json);
    EXPECT_FALSE(lint.ok());
    return lint;
  };
  expect_errors("not json at all");
  expect_errors("{\"wrong_top\":{}}");
  // Duplicate lane names.
  std::string dup = good;
  const auto b_pos = dup.find("\"name\":\"b\"");
  ASSERT_NE(b_pos, std::string::npos);
  dup.replace(b_pos, 10, "\"name\":\"a\"");
  expect_errors(dup);
  // Root phase must be "total".
  std::string bad_root = good;
  const auto total_pos = bad_root.find("\"phase\":\"total\"");
  ASSERT_NE(total_pos, std::string::npos);
  bad_root.replace(total_pos, 15, "\"phase\":\"wrong\"");
  expect_errors(bad_root);
  // sampled > count.
  std::string oversampled = good;
  const auto sampled_pos = oversampled.find("\"count\":70,\"sampled\":2");
  ASSERT_NE(sampled_pos, std::string::npos);
  oversampled.replace(sampled_pos, 22, "\"count\":70,\"sampled\":71");
  expect_errors(oversampled);
}

// --------------------------------------------------------------- heartbeat

TEST(HeartbeatTest, DisabledByDefaultPeriodEmitsNothing) {
  Simulator sim;
  sim.set_progress_period_for_testing(0);
  std::function<void()> tick;
  std::uint64_t fired = 0;
  tick = [&] {
    if (++fired < 5000) {
      sim.ScheduleAfter(1, tick);
    }
  };
  sim.ScheduleAfter(1, tick);
  testing::internal::CaptureStderr();
  sim.Run();
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  EXPECT_EQ(sim.events_dispatched(), 5000u);
}

TEST(HeartbeatTest, TinyPeriodEmitsProgressLinesWithoutSteeringTheSim) {
  const auto run = [](Nanos period, std::string* err) {
    Simulator sim;
    sim.set_progress_period_for_testing(period);
    std::uint64_t retired = 41;
    sim.AddProgressCounter(&retired);
    std::function<void()> tick;
    std::uint64_t fired = 0;
    tick = [&] {
      ++retired;
      if (++fired < 5000) {
        sim.ScheduleAfter(1, tick);
      }
    };
    sim.ScheduleAfter(1, tick);
    testing::internal::CaptureStderr();
    const Nanos end = sim.Run();
    *err = testing::internal::GetCapturedStderr();
    sim.RemoveProgressCounter(&retired);
    EXPECT_EQ(sim.events_dispatched(), 5000u);
    return end;
  };
  std::string with_heartbeat;
  std::string without_heartbeat;
  const Nanos end_on = run(/*period=*/1, &with_heartbeat);
  const Nanos end_off = run(/*period=*/0, &without_heartbeat);
  // 1 ns period: the cadence check (every 1024 dispatches) emits from its
  // second visit on.
  EXPECT_NE(with_heartbeat.find("deepplan-progress:"), std::string::npos);
  EXPECT_NE(with_heartbeat.find("retired="), std::string::npos);
  EXPECT_EQ(without_heartbeat, "");
  EXPECT_EQ(end_on, end_off);  // observation only, no steering
}

TEST(HeartbeatTest, HeartbeatsCountIntoTheInstalledLane) {
  SelfProfiler lane;
  {
    InstallLane install(&lane);
    Simulator sim;
    sim.set_progress_period_for_testing(1);
    std::function<void()> tick;
    std::uint64_t fired = 0;
    tick = [&] {
      if (++fired < 5000) {
        sim.ScheduleAfter(1, tick);
      }
    };
    sim.ScheduleAfter(1, tick);
    testing::internal::CaptureStderr();
    sim.Run();
    testing::internal::GetCapturedStderr();
    EXPECT_EQ(lane.counter(Counter::kEventsDispatched), 5000u);
  }
  EXPECT_GT(lane.counter(Counter::kHeartbeats), 0u);
}

// ------------------------------------------------- cross-thread stitching

// The deterministic projection of a profiled sweep must be byte-identical
// for any DEEPPLAN_JOBS: lanes travel in result slots and merge in task
// order, and phase counts are a pure function of the simulated run.
TEST(SelfProfSweepTest, DeterministicReportIdenticalAcrossJobs) {
  const auto run = [](int jobs) {
    const SweepRunner runner(jobs);
    const std::vector<bench::ScalingPointResult> results =
        runner.Map(3, [](int i) {
          bench::ScalingPointOptions options;
          options.num_requests = 2000 + 1000 * static_cast<std::size_t>(i);
          options.selfprof = true;
          return bench::RunScalingPoint(options);
        });
    std::vector<LaneView> lanes;
    for (const bench::ScalingPointResult& r : results) {
      lanes.push_back(
          {std::to_string(r.requests) + " requests", &r.selfprof});
    }
    return selfprof::DeterministicReportJson("sweep", lanes);
  };
  const std::string jobs1 = run(1);
  const std::string jobs2 = run(2);
  const std::string jobs8 = run(8);
  EXPECT_EQ(jobs1, jobs2);
  EXPECT_EQ(jobs1, jobs8);
  EXPECT_TRUE(check::LintSelfprofReport(jobs1).ok());
  // The lanes did record real work: dispatch shows up with nested phases.
  EXPECT_NE(jobs1.find("sim.dispatch"), std::string::npos);
  EXPECT_NE(jobs1.find("exec.stream"), std::string::npos);
}

TEST(SelfProfSweepTest, EventsDispatchedCounterMatchesSimulator) {
  bench::ScalingPointOptions options;
  options.num_requests = 2000;
  options.selfprof = true;
  const bench::ScalingPointResult r = bench::RunScalingPoint(options);
  ASSERT_TRUE(r.selfprof.closed());
  // Every event the point's simulator dispatched was counted into the lane.
  EXPECT_GT(r.selfprof.counter(Counter::kEventsDispatched), 0u);
  EXPECT_LE(r.selfprof.counter(Counter::kEventsDispatched),
            r.events_scheduled);
}

// ----------------------------------------------------------- bench history

// Writes a minimal BENCH document; returns its path.
std::string WriteBench(const std::string& dir, const std::string& bench,
                       double wall_ms, int points = 1) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/BENCH_" + bench + ".json";
  std::ofstream out(path);
  out << "{\"bench\":\"" << bench << "\",\"jobs\":4,\"config\":{},\"points\":[";
  for (int i = 0; i < points; ++i) {
    out << (i != 0 ? "," : "") << "{\"i\":" << i << "}";
  }
  out << "],\"wall_clock_ms\":" << wall_ms << "}\n";
  return path;
}

TEST(BenchHistoryTest, ScansSortedAndSkipsMalformed) {
  const std::string dir = testing::TempDir() + "/selfprof_bh_scan";
  WriteBench(dir, "zeta", 10.0);
  WriteBench(dir, "alpha", 20.0, /*points=*/3);
  {
    std::ofstream bad(dir + "/BENCH_broken.json");
    bad << "{\"bench\":\"broken\"}\n";  // missing points/wall_clock_ms
  }
  {
    std::ofstream other(dir + "/notes.txt");
    other << "not a bench\n";  // ignored: name does not match BENCH_*.json
  }
  std::vector<std::string> errors;
  const std::vector<check::BenchRun> runs =
      check::ScanBenchDir(dir, &errors);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].bench, "alpha");  // sorted by filename
  EXPECT_EQ(runs[0].num_points, 3u);
  EXPECT_EQ(runs[0].jobs, 4);
  EXPECT_EQ(runs[1].bench, "zeta");
  EXPECT_EQ(runs[1].wall_clock_ms, 10.0);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("BENCH_broken.json"), std::string::npos);
}

TEST(BenchHistoryTest, CompareTakesBestOfEachSideAndGates) {
  std::vector<check::BenchRun> baseline(3);
  baseline[0].bench = "scaling";
  baseline[0].wall_clock_ms = 110.0;
  baseline[1].bench = "scaling";
  baseline[1].wall_clock_ms = 100.0;  // best
  baseline[2].bench = "fig13";
  baseline[2].wall_clock_ms = 50.0;
  std::vector<check::BenchRun> candidate(3);
  candidate[0].bench = "scaling";
  candidate[0].wall_clock_ms = 109.0;
  candidate[1].bench = "scaling";
  candidate[1].wall_clock_ms = 102.0;  // best: 2% slower than baseline best
  candidate[2].bench = "fig15";
  candidate[2].wall_clock_ms = 75.0;

  const std::vector<check::BenchComparison> gated =
      check::CompareBenchRuns(baseline, candidate, /*max_slowdown=*/1.03);
  ASSERT_EQ(gated.size(), 3u);  // alphabetical: fig13, fig15, scaling
  EXPECT_EQ(gated[0].bench, "fig13");
  EXPECT_EQ(gated[0].candidate_best_ms, -1.0);  // one-sided: never regresses
  EXPECT_FALSE(gated[0].regressed);
  EXPECT_EQ(gated[1].bench, "fig15");
  EXPECT_EQ(gated[1].baseline_best_ms, -1.0);
  EXPECT_FALSE(gated[1].regressed);
  EXPECT_EQ(gated[2].bench, "scaling");
  EXPECT_EQ(gated[2].baseline_best_ms, 100.0);
  EXPECT_EQ(gated[2].candidate_best_ms, 102.0);
  EXPECT_NEAR(gated[2].slowdown, 1.02, 1e-12);
  EXPECT_FALSE(gated[2].regressed);  // 2% < 3%

  const std::vector<check::BenchComparison> tight =
      check::CompareBenchRuns(baseline, candidate, /*max_slowdown=*/1.01);
  EXPECT_TRUE(tight[2].regressed);  // 2% > 1%

  // max_slowdown <= 0: report-only, nothing regresses.
  const std::vector<check::BenchComparison> report =
      check::CompareBenchRuns(baseline, candidate, /*max_slowdown=*/0.0);
  EXPECT_NEAR(report[2].slowdown, 1.02, 1e-12);
  EXPECT_FALSE(report[2].regressed);
}

}  // namespace
}  // namespace deepplan
