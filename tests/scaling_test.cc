// Scale smoke test for the million-request sim core: a 200k-request
// synthetic replay must (1) produce byte-identical bench output whether the
// sweep runs on 1, 2, or 8 threads, (2) stay within a bounded peak RSS —
// the old heap-backed queue grew its id-indexed bookkeeping without bound —
// and (3) demonstrate the arena-reuse invariant: callback slots ever created
// stay orders of magnitude below total events scheduled. Also unit-pins the
// count-exact synthetic generator (src/workload/synthetic.h) the scaling
// curve is built from.
#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/scaling_common.h"
#include "src/workload/synthetic.h"

namespace deepplan {
namespace {

TEST(SyntheticTraceTest, CountExactSortedAndInRange) {
  SyntheticScaleOptions options;
  options.num_requests = 5000;
  options.num_instances = 17;
  options.seed = 3;
  const Trace trace = GenerateSyntheticScaleTrace(options);
  ASSERT_EQ(trace.size(), 5000u);
  Nanos prev = 0;
  for (const Arrival& a : trace.arrivals()) {
    EXPECT_GE(a.time, prev);
    prev = a.time;
    EXPECT_GE(a.instance, 0);
    EXPECT_LT(a.instance, 17);
  }
  // Mean rate tracks the requested intensity (law of large numbers; wide
  // tolerance — this is a sanity pin, not a statistics test).
  EXPECT_NEAR(trace.MeanRate(), options.rate_per_sec,
              options.rate_per_sec * 0.1);
}

TEST(SyntheticTraceTest, DeterministicInOptionsOnly) {
  SyntheticScaleOptions options;
  options.num_requests = 2000;
  options.seed = 11;
  const Trace a = GenerateSyntheticScaleTrace(options);
  const Trace b = GenerateSyntheticScaleTrace(options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.arrivals()[i].time, b.arrivals()[i].time);
    EXPECT_EQ(a.arrivals()[i].instance, b.arrivals()[i].instance);
  }
  options.seed = 12;
  const Trace c = GenerateSyntheticScaleTrace(options);
  EXPECT_NE(a.arrivals()[0].time, c.arrivals()[0].time);
}

TEST(SyntheticTraceTest, ZipfSkewsTowardLowRanks) {
  SyntheticScaleOptions options;
  options.num_requests = 20000;
  options.num_instances = 50;
  options.zipf_exponent = 1.0;
  const Trace trace = GenerateSyntheticScaleTrace(options);
  const std::vector<std::size_t> counts = trace.PerInstanceCounts(50);
  // Rank 0 is the hottest instance; the bottom half combined should not
  // outdraw it under s=1.0 skew.
  std::size_t tail = 0;
  for (std::size_t i = 25; i < 50; ++i) {
    tail += counts[i];
  }
  EXPECT_GT(counts[0], tail / 5);
  EXPECT_GT(counts[0], counts[49]);
}

// The scale run proper: 200k requests through a 135-instance BERT-Base
// server. One run shared by the assertions below (it is the expensive part).
class ScalingReplayTest : public ::testing::Test {
 protected:
  static bench::ScalingPointResult& Result() {
    static bench::ScalingPointResult r = [] {
      bench::ScalingPointOptions options;
      options.num_requests = 200000;
      return bench::RunScalingPoint(options);
    }();
    return r;
  }
};

TEST_F(ScalingReplayTest, CompletesAllRequests) {
  const bench::ScalingPointResult& r = Result();
  EXPECT_EQ(r.requests, 200000u);
  EXPECT_EQ(r.completed, 200000u);
  EXPECT_GT(r.goodput, 0.5);
  EXPECT_GT(r.cold_starts, 0u);
}

TEST_F(ScalingReplayTest, EventSlotsStayBounded) {
  // Arena reuse: the queue recycles callback slots, so the number of slots
  // ever created (= peak simultaneously-pending events) must sit far below
  // the millions of events the replay schedules in total.
  const bench::ScalingPointResult& r = Result();
  EXPECT_GT(r.events_scheduled, 1000000u);
  EXPECT_LT(r.event_slot_peak, r.events_scheduled / 100);
}

TEST_F(ScalingReplayTest, PeakRssBounded) {
  // ru_maxrss is process-wide and in KiB on Linux. The replay schedules
  // millions of events; with per-event recycling the whole test binary stays
  // well under this ceiling, while the old unbounded-bookkeeping backend
  // grew by hundreds of MB on runs of this length.
  const bench::ScalingPointResult& r = Result();
  ASSERT_EQ(r.completed, r.requests);
  struct rusage usage;
  ASSERT_EQ(getrusage(RUSAGE_SELF, &usage), 0);
  // Sanitizer builds carry shadow memory and redzones on top of the real
  // working set, so give them headroom; the plain build keeps the tight bound.
  long limit_kib = 400 * 1024;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  limit_kib *= 4;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  limit_kib *= 4;
#endif
#endif
  EXPECT_LT(usage.ru_maxrss, limit_kib) << "peak RSS (KiB)";
}

TEST(ScalingDeterminismTest, ByteIdenticalAcrossJobCounts) {
  // The bench surface: the same three-point sweep must render the same
  // deterministic JSON for any thread count. Small points keep this fast;
  // identical code paths (SweepRunner + RunScalingPoint) to bench_scaling.
  std::vector<std::size_t> sizes = {2000, 4000, 8000};
  std::string baseline;
  for (const int jobs : {1, 2, 8}) {
    const SweepRunner runner(jobs);
    const std::vector<bench::ScalingPointResult> results =
        runner.Map(static_cast<int>(sizes.size()), [&](int i) {
          bench::ScalingPointOptions options;
          options.num_requests = sizes[static_cast<std::size_t>(i)];
          return bench::RunScalingPoint(options);
        });
    const std::string json = bench::DeterministicPointsJson(results);
    if (jobs == 1) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline) << "jobs=" << jobs;
    }
  }
  EXPECT_FALSE(baseline.empty());
}

}  // namespace
}  // namespace deepplan
