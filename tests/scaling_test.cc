// Scale smoke test for the million-request sim core: a 200k-request
// synthetic replay must (1) produce byte-identical bench output whether the
// sweep runs on 1, 2, or 8 threads, (2) stay within a bounded peak RSS —
// the old heap-backed queue grew its id-indexed bookkeeping without bound —
// and (3) demonstrate the arena-reuse invariant: callback slots ever created
// stay orders of magnitude below total events scheduled. Also unit-pins the
// count-exact synthetic generator (src/workload/synthetic.h) the scaling
// curve is built from.
#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/scaling_common.h"
#include "src/obs/whatif/whatif.h"
#include "src/workload/synthetic.h"

namespace deepplan {
namespace {

TEST(SyntheticTraceTest, CountExactSortedAndInRange) {
  SyntheticScaleOptions options;
  options.num_requests = 5000;
  options.num_instances = 17;
  options.seed = 3;
  const Trace trace = GenerateSyntheticScaleTrace(options);
  ASSERT_EQ(trace.size(), 5000u);
  Nanos prev = 0;
  for (const Arrival& a : trace.arrivals()) {
    EXPECT_GE(a.time, prev);
    prev = a.time;
    EXPECT_GE(a.instance, 0);
    EXPECT_LT(a.instance, 17);
  }
  // Mean rate tracks the requested intensity (law of large numbers; wide
  // tolerance — this is a sanity pin, not a statistics test).
  EXPECT_NEAR(trace.MeanRate(), options.rate_per_sec,
              options.rate_per_sec * 0.1);
}

TEST(SyntheticTraceTest, DeterministicInOptionsOnly) {
  SyntheticScaleOptions options;
  options.num_requests = 2000;
  options.seed = 11;
  const Trace a = GenerateSyntheticScaleTrace(options);
  const Trace b = GenerateSyntheticScaleTrace(options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.arrivals()[i].time, b.arrivals()[i].time);
    EXPECT_EQ(a.arrivals()[i].instance, b.arrivals()[i].instance);
  }
  options.seed = 12;
  const Trace c = GenerateSyntheticScaleTrace(options);
  EXPECT_NE(a.arrivals()[0].time, c.arrivals()[0].time);
}

TEST(SyntheticTraceTest, ZipfSkewsTowardLowRanks) {
  SyntheticScaleOptions options;
  options.num_requests = 20000;
  options.num_instances = 50;
  options.zipf_exponent = 1.0;
  const Trace trace = GenerateSyntheticScaleTrace(options);
  const std::vector<std::size_t> counts = trace.PerInstanceCounts(50);
  // Rank 0 is the hottest instance; the bottom half combined should not
  // outdraw it under s=1.0 skew.
  std::size_t tail = 0;
  for (std::size_t i = 25; i < 50; ++i) {
    tail += counts[i];
  }
  EXPECT_GT(counts[0], tail / 5);
  EXPECT_GT(counts[0], counts[49]);
}

// The scale run proper: 200k requests through a 135-instance BERT-Base
// server, streaming a binary journal as it runs — so the RSS pin below
// covers bounded-memory journal recording, not just the sim core. One run
// shared by the assertions below (it is the expensive part).
class ScalingReplayTest : public ::testing::Test {
 protected:
  static const std::string& JournalPath() {
    static const std::string path =
        ::testing::TempDir() + "/scaling_200k.dpj";
    return path;
  }

  static bench::ScalingPointResult& Result() {
    static bench::ScalingPointResult r = [] {
      bench::ScalingPointOptions options;
      options.num_requests = 200000;
      options.journal_out = JournalPath();
      return bench::RunScalingPoint(options);
    }();
    return r;
  }
};

TEST_F(ScalingReplayTest, CompletesAllRequests) {
  const bench::ScalingPointResult& r = Result();
  EXPECT_EQ(r.requests, 200000u);
  EXPECT_EQ(r.completed, 200000u);
  EXPECT_GT(r.goodput, 0.5);
  EXPECT_GT(r.cold_starts, 0u);
}

TEST_F(ScalingReplayTest, EventSlotsStayBounded) {
  // Arena reuse: the queue recycles callback slots, so the number of slots
  // ever created (= peak simultaneously-pending events) must sit far below
  // the millions of events the replay schedules in total.
  const bench::ScalingPointResult& r = Result();
  EXPECT_GT(r.events_scheduled, 1000000u);
  EXPECT_LT(r.event_slot_peak, r.events_scheduled / 100);
}

TEST_F(ScalingReplayTest, PeakRssBounded) {
  // ru_maxrss is process-wide and in KiB on Linux. The replay schedules
  // millions of events; with per-event recycling the whole test binary stays
  // well under this ceiling, while the old unbounded-bookkeeping backend
  // grew by hundreds of MB on runs of this length.
  const bench::ScalingPointResult& r = Result();
  ASSERT_EQ(r.completed, r.requests);
  struct rusage usage;
  ASSERT_EQ(getrusage(RUSAGE_SELF, &usage), 0);
  // Sanitizer builds carry shadow memory and redzones on top of the real
  // working set, so give them headroom; the plain build keeps the tight bound.
  long limit_kib = 400 * 1024;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  limit_kib *= 4;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  limit_kib *= 4;
#endif
#endif
  EXPECT_LT(usage.ru_maxrss, limit_kib) << "peak RSS (KiB)";
}

TEST_F(ScalingReplayTest, JournalTotalsCoverTheWholeRun) {
  const bench::ScalingPointResult& r = Result();
  ASSERT_TRUE(r.journaled);
  EXPECT_EQ(r.journal.requests, 200000u);
  EXPECT_EQ(r.journal.incomplete_requests, 0u);
  EXPECT_GT(r.journal.nodes, r.journal.requests);  // >= arrival + work
  EXPECT_GT(r.journal.chunks, 10u);
  std::ifstream in(JournalPath(), std::ios::binary | std::ios::ate);
  ASSERT_TRUE(in.is_open());
  EXPECT_EQ(static_cast<std::uint64_t>(in.tellg()), r.journal_bytes);
}

TEST_F(ScalingReplayTest, WindowedIdentityReplayMatchesRecordedLatencies) {
  // The streamed 200k journal replays bit-exactly under the windowed engine:
  // every request's identity-predicted completion equals the recorded one,
  // with only a bounded window of requests resident.
  const bench::ScalingPointResult& r = Result();
  ASSERT_TRUE(r.journaled);
  WindowedJournal journal;
  std::string error;
  ASSERT_TRUE(journal.Open(JournalPath(), &error)) << error;
  ASSERT_EQ(journal.requests().size(), 200000u);
  WhatIfExperiment identity;
  identity.name = "baseline";
  const WhatIfReplay replay = journal.Replay(identity);
  ASSERT_EQ(replay.latency.size(), 200000u);
  for (std::size_t i = 0; i < journal.requests().size(); ++i) {
    const CpRequest& req = journal.requests()[i];
    ASSERT_EQ(replay.latency[i], req.completion - req.arrival)
        << "request " << i;
  }
  EXPECT_LT(journal.max_resident_requests(), 200000u / 10);
}

TEST(ScalingDeterminismTest, ByteIdenticalAcrossJobCounts) {
  // The bench surface: the same three-point sweep must render the same
  // deterministic JSON — and record byte-identical journals — for any
  // thread count. Small points keep this fast; identical code paths
  // (SweepRunner + RunScalingPoint) to bench_scaling --journal_out.
  std::vector<std::size_t> sizes = {2000, 4000, 8000};
  std::string baseline;
  std::vector<std::string> baseline_journals;
  for (const int jobs : {1, 2, 8}) {
    const SweepRunner runner(jobs);
    const std::vector<bench::ScalingPointResult> results =
        runner.Map(static_cast<int>(sizes.size()), [&](int i) {
          bench::ScalingPointOptions options;
          options.num_requests = sizes[static_cast<std::size_t>(i)];
          options.journal_out = ::testing::TempDir() + "/scaling_jobs" +
                                std::to_string(jobs) + "." +
                                std::to_string(options.num_requests);
          return bench::RunScalingPoint(options);
        });
    const std::string json = bench::DeterministicPointsJson(results);
    std::vector<std::string> journals;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const std::string path = ::testing::TempDir() + "/scaling_jobs" +
                               std::to_string(jobs) + "." +
                               std::to_string(sizes[i]);
      std::ifstream in(path, std::ios::binary);
      ASSERT_TRUE(in.is_open()) << path;
      journals.emplace_back(std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>());
      in.close();
      std::remove(path.c_str());
      ASSERT_FALSE(journals.back().empty());
    }
    if (jobs == 1) {
      baseline = json;
      baseline_journals = journals;
    } else {
      EXPECT_EQ(json, baseline) << "jobs=" << jobs;
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        EXPECT_EQ(journals[i], baseline_journals[i])
            << "jobs=" << jobs << " size=" << sizes[i];
      }
    }
  }
  EXPECT_FALSE(baseline.empty());
}

}  // namespace
}  // namespace deepplan
