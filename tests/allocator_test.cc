#include <gtest/gtest.h>

#include <vector>

#include "src/sim/gpu_allocator.h"
#include "src/util/rng.h"

namespace deepplan {
namespace {

TEST(GpuAllocatorTest, BasicAllocateFree) {
  GpuAllocator a(1000, /*alignment=*/1);
  const auto x = a.Allocate(400);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(a.used_bytes(), 400);
  EXPECT_EQ(a.free_bytes(), 600);
  a.Free(*x);
  EXPECT_EQ(a.used_bytes(), 0);
  EXPECT_EQ(a.num_free_blocks(), 1);
}

TEST(GpuAllocatorTest, AlignmentRoundsUp) {
  GpuAllocator a(4096, /*alignment=*/512);
  const auto x = a.Allocate(1);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(a.used_bytes(), 512);
}

TEST(GpuAllocatorTest, FailsWhenNoContiguousBlockDespiteFreeBytes) {
  // Classic external fragmentation: free 2x250 split by a live 500 block.
  GpuAllocator a(1000, 1);
  const auto x = a.Allocate(250);
  const auto y = a.Allocate(500);
  const auto z = a.Allocate(250);
  ASSERT_TRUE(x && y && z);
  a.Free(*x);
  a.Free(*z);
  EXPECT_EQ(a.free_bytes(), 500);
  EXPECT_EQ(a.LargestFreeBlock(), 250);
  EXPECT_FALSE(a.Allocate(400).has_value());  // 500 free, but fragmented
  EXPECT_GT(a.Fragmentation(), 0.4);
}

TEST(GpuAllocatorTest, CoalescesNeighbours) {
  GpuAllocator a(1000, 1);
  const auto x = a.Allocate(300);
  const auto y = a.Allocate(300);
  const auto z = a.Allocate(300);
  ASSERT_TRUE(x && y && z);
  a.Free(*x);
  a.Free(*z);
  // [0,300) plus [600,1000) — z coalesced with the tail block.
  EXPECT_EQ(a.num_free_blocks(), 2);
  a.Free(*y);
  EXPECT_EQ(a.num_free_blocks(), 1);
  EXPECT_EQ(a.LargestFreeBlock(), 1000);
  EXPECT_DOUBLE_EQ(a.Fragmentation(), 0.0);
}

TEST(GpuAllocatorTest, FirstFitReusesLowestOffset) {
  GpuAllocator a(1000, 1);
  const auto x = a.Allocate(200);
  const auto y = a.Allocate(200);
  ASSERT_TRUE(x && y);
  a.Free(*x);
  const auto z = a.Allocate(100);
  ASSERT_TRUE(z.has_value());
  // z landed in the hole at offset 0 (first fit), leaving [100,200) free.
  EXPECT_EQ(a.num_free_blocks(), 2);
  EXPECT_EQ(a.used_bytes(), 300);
}

TEST(GpuAllocatorTest, RandomizedInvariants) {
  // Property sweep: random alloc/free churn preserves accounting invariants
  // and full-free always coalesces back to one block.
  Rng rng(77);
  GpuAllocator a(1 << 20, 64);
  std::vector<AllocId> live;
  for (int step = 0; step < 5000; ++step) {
    const bool do_alloc = live.empty() || rng.NextDouble() < 0.55;
    if (do_alloc) {
      const auto bytes = static_cast<std::int64_t>(1 + rng.NextBounded(32768));
      const auto id = a.Allocate(bytes);
      if (id.has_value()) {
        live.push_back(*id);
      }
    } else {
      const auto idx = rng.NextBounded(live.size());
      a.Free(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_GE(a.used_bytes(), 0);
    ASSERT_LE(a.used_bytes(), a.capacity());
    ASSERT_EQ(a.used_bytes() + a.free_bytes(), a.capacity());
    ASSERT_LE(a.LargestFreeBlock(), a.free_bytes());
    ASSERT_EQ(a.num_allocations(), static_cast<int>(live.size()));
  }
  for (const AllocId id : live) {
    a.Free(id);
  }
  EXPECT_EQ(a.used_bytes(), 0);
  EXPECT_EQ(a.num_free_blocks(), 1);
  EXPECT_EQ(a.LargestFreeBlock(), a.capacity());
}

}  // namespace
}  // namespace deepplan
