// Tests for the src/check correctness tooling: the runtime invariant
// validator (each invariant class must abort on a broken fixture and stay
// silent on a healthy run) and the offline Chrome-trace linter.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/check/trace_lint.h"
#include "src/check/validator.h"
#include "src/obs/causal_graph.h"
#include "src/obs/journal_stream.h"
#include "src/serving/instance.h"
#include "src/sim/fabric.h"
#include "src/sim/simulator.h"
#include "src/util/chrome_trace.h"

namespace deepplan {
namespace {

using check::ArenaSpan;
using check::FabricLinkShare;
using check::LintChromeTrace;
using check::LintChromeTraceFile;
using check::SimValidator;
using check::TraceLintResult;

// Forces validation on (or off) for one test body and restores the
// environment-derived default afterwards.
class ScopedValidation {
 public:
  explicit ScopedValidation(int mode) { check::SetValidationForTesting(mode); }
  ~ScopedValidation() { check::SetValidationForTesting(-1); }
};

// ------------------------------------------------------ broken fixtures
// One EXPECT_DEATH per invariant class. The validator is forced on inside
// the death statement (it runs in the forked child).

TEST(ValidatorDeathTest, CausalityPastScheduledEvent) {
  EXPECT_DEATH(
      {
        ScopedValidation on(1);
        SimValidator::OnSchedule(/*now=*/100, /*when=*/50);
      },
      "causality violated.*scheduled in the past");
}

TEST(ValidatorDeathTest, CausalityQueuePopNotMonotone) {
  EXPECT_DEATH(
      {
        ScopedValidation on(1);
        SimValidator::OnQueuePop(/*prev_popped=*/200, /*when=*/150);
      },
      "causality violated.*pop order not monotone");
}

TEST(ValidatorDeathTest, CausalityDoubleSyncEventFire) {
  EXPECT_DEATH(
      {
        ScopedValidation on(1);
        SimValidator::OnSyncEventFire("SyncEvent::Fire",
                                      /*already_fired=*/true, /*now=*/7);
      },
      "causality violated.*fired twice");
}

TEST(ValidatorDeathTest, FabricOversubscribedLink) {
  EXPECT_DEATH(
      {
        ScopedValidation on(1);
        std::vector<FabricLinkShare> links(1);
        links[0].name = "pcie0";
        links[0].capacity = 1e9;
        links[0].allocated = 1.5e9;  // 150% of capacity
        links[0].transfers = 2;
        SimValidator::OnFabricAllocation(/*now=*/0, links);
      },
      "fabric flow conservation violated.*oversubscribed");
}

TEST(ValidatorDeathTest, FabricStalledTransfer) {
  EXPECT_DEATH(
      {
        ScopedValidation on(1);
        SimValidator::OnTransferRate(/*now=*/0, /*transfer=*/3, /*rate=*/0.0);
      },
      "fabric flow conservation violated.*non-positive fair share");
}

TEST(ValidatorDeathTest, FabricBytesDoNotIntegrate) {
  EXPECT_DEATH(
      {
        ScopedValidation on(1);
        SimValidator::OnTransferComplete(/*now=*/10, /*transfer=*/1,
                                         /*moved_bytes=*/900.0,
                                         /*total_bytes=*/1000.0);
      },
      "fabric flow conservation violated.*moved 900 of 1000");
}

TEST(ValidatorDeathTest, ArenaSpansLeaveGap) {
  EXPECT_DEATH(
      {
        ScopedValidation on(1);
        std::vector<ArenaSpan> spans;
        spans.push_back({/*offset=*/0, /*bytes=*/400, /*free=*/false});
        spans.push_back({/*offset=*/600, /*bytes=*/400, /*free=*/true});
        SimValidator::OnArenaUpdate(/*capacity=*/1000, /*used=*/400, spans);
      },
      "gpu memory accounting violated.*gap in arena");
}

TEST(ValidatorDeathTest, ArenaFreeBlocksNotCoalesced) {
  EXPECT_DEATH(
      {
        ScopedValidation on(1);
        std::vector<ArenaSpan> spans;
        spans.push_back({/*offset=*/0, /*bytes=*/500, /*free=*/true});
        spans.push_back({/*offset=*/500, /*bytes=*/500, /*free=*/true});
        SimValidator::OnArenaUpdate(/*capacity=*/1000, /*used=*/0, spans);
      },
      "gpu memory accounting violated.*not coalesced");
}

TEST(ValidatorDeathTest, ResidencyDoubleEvict) {
  // Real-component fixture: evicting the same instance twice must trip the
  // validator before the plain DP_CHECK does.
  EXPECT_DEATH(
      {
        ScopedValidation on(1);
        InstanceManager mgr(1, 1000);
        const int a = mgr.AddInstance(0, 0, 400);
        std::vector<int> evicted;
        mgr.MakeResident(a, 1, &evicted);
        mgr.Evict(a);
        mgr.Evict(a);
      },
      "instance residency violated.*non-resident instance");
}

TEST(ValidatorDeathTest, ResidencyEvictBusyInstance) {
  EXPECT_DEATH(
      {
        ScopedValidation on(1);
        SimValidator::OnEvict(/*instance=*/4, /*resident=*/true,
                              /*busy=*/true);
      },
      "instance residency violated.*busy instance");
}

TEST(ValidatorDeathTest, ServingWarmRequestWithColdComponents) {
  EXPECT_DEATH(
      {
        ScopedValidation on(1);
        SimValidator::OnRequestComplete(/*arrival=*/0, /*start=*/10,
                                        /*evict=*/0, /*load=*/500,
                                        /*completion=*/1000, /*cold=*/false,
                                        /*evictions=*/0);
      },
      "serving accounting violated.*warm request carries cold-start");
}

TEST(ValidatorDeathTest, ServingBreakdownNotAdditive) {
  EXPECT_DEATH(
      {
        ScopedValidation on(1);
        SimValidator::OnBreakdown(/*mean_queue_ms=*/1.0, /*mean_cold_ms=*/2.0,
                                  /*mean_exec_ms=*/3.0,
                                  /*mean_total_ms=*/10.0);
      },
      "serving accounting violated.*breakdown not additive");
}

// ------------------------------------------------------- healthy fixtures

// A contended fabric run plus an eviction churn loop exercise the causality,
// fabric, arena, and residency hooks end to end; with validation forced on,
// the run must complete (no abort) and the check counter must advance.
TEST(ValidatorTest, HealthyRunPassesAndCountsChecks) {
  ScopedValidation on(1);
  const std::uint64_t before = check::ChecksRun();

  Simulator sim;
  Fabric fabric(&sim);
  const LinkId uplink = fabric.AddLink("uplink", 12.6e9);
  const LinkId gpu0 = fabric.AddLink("gpu0", 12e9);
  const LinkId gpu1 = fabric.AddLink("gpu1", 12e9);
  int completions = 0;
  fabric.Start({uplink, gpu0}, 126'000'000, 0, [&](Nanos) { ++completions; });
  fabric.Start({uplink, gpu1}, 126'000'000, 0, [&](Nanos) { ++completions; });
  sim.ScheduleAfter(Millis(1),
                    [&] { fabric.Start({uplink, gpu0}, 1'000'000, 0,
                                       [&](Nanos) { ++completions; }); });
  sim.Run();
  EXPECT_EQ(completions, 3);

  InstanceManager mgr(2, 1000);
  std::vector<int> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(mgr.AddInstance(0, i % 2, 400));
  }
  std::vector<int> evicted;
  for (int round = 0; round < 3; ++round) {
    for (const int id : ids) {
      ASSERT_TRUE(mgr.MakeResident(id, round * 10 + id, &evicted));
    }
  }
  EXPECT_FALSE(evicted.empty());  // churn actually evicted something

  EXPECT_GT(check::ChecksRun(), before);
}

TEST(ValidatorTest, DisabledModeRunsNoChecksAndNeverAborts) {
  ScopedValidation off(0);
  const std::uint64_t before = check::ChecksRun();
  // Blatantly broken inputs: with validation off these must be ignored.
  SimValidator::OnSchedule(/*now=*/100, /*when=*/-5);
  SimValidator::OnEvict(/*instance=*/0, /*resident=*/false, /*busy=*/true);
  SimValidator::OnBreakdown(1.0, 2.0, 3.0, 100.0);
  EXPECT_EQ(check::ChecksRun(), before);
}

// --------------------------------------------------------- trace linting

// Renders a healthy multi-phase document through the real writer.
std::string HealthyTraceJson() {
  TraceDocument doc;
  doc.process_names = {"server0"};
  TraceEvent outer;
  outer.phase = TracePhase::kSpan;
  outer.track = "exec/gpu0";
  outer.name = "request";
  outer.ts = Micros(10);
  outer.duration = Micros(100);
  doc.events.push_back(outer);
  TraceEvent inner = outer;  // properly nested child slice
  inner.name = "layer";
  inner.ts = Micros(20);
  inner.duration = Micros(30);
  doc.events.push_back(inner);
  TraceEvent counter;
  counter.phase = TracePhase::kCounter;
  counter.track = "bw/pcie";
  counter.name = "bytes_per_sec";
  counter.ts = Micros(15);
  counter.value = 12e9;
  doc.events.push_back(counter);
  for (std::uint64_t id = 0; id < 2; ++id) {
    TraceEvent begin;  // overlapping async intervals are legal
    begin.phase = TracePhase::kAsyncBegin;
    begin.track = "pcie/gpu0";
    begin.name = "load";
    begin.ts = Micros(10 + id);
    begin.id = id;
    doc.events.push_back(begin);
    TraceEvent end = begin;
    end.phase = TracePhase::kAsyncEnd;
    end.ts = Micros(50 + id);
    doc.events.push_back(end);
  }
  return ChromeTraceWriter::ToJson(doc);
}

TEST(TraceLintTest, AcceptsWriterOutput) {
  const TraceLintResult r = LintChromeTrace(HealthyTraceJson());
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.num_spans, 2u);
  EXPECT_EQ(r.num_counters, 1u);
  EXPECT_EQ(r.num_asyncs, 4u);
  EXPECT_GE(r.num_tracks, 2u);
}

// Hand-written minimal documents, each broken in exactly one way. Every
// fixture carries the thread_name metadata the linter requires so only the
// intended defect is reported.
constexpr char kMeta[] =
    R"({"ph":"M","pid":0,"tid":0,"name":"thread_name","args":{"name":"t"}})";

std::string Doc(const std::string& events) {
  return std::string("{\"traceEvents\":[") + kMeta + "," + events + "]}";
}

TEST(TraceLintTest, RejectsInvalidJson) {
  const TraceLintResult r = LintChromeTrace("{\"traceEvents\":[");
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("not valid JSON"), std::string::npos);
}

TEST(TraceLintTest, RejectsMissingTraceEvents) {
  const TraceLintResult r = LintChromeTrace("{\"other\":[]}");
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("traceEvents"), std::string::npos);
}

TEST(TraceLintTest, RejectsOutOfOrderTimestamps) {
  const TraceLintResult r = LintChromeTrace(Doc(
      R"({"ph":"X","pid":0,"tid":0,"name":"a","ts":50,"dur":1},)"
      R"({"ph":"X","pid":0,"tid":0,"name":"b","ts":10,"dur":1})"));
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("out of order"), std::string::npos);
}

TEST(TraceLintTest, RejectsPartiallyOverlappingSlices) {
  const TraceLintResult r = LintChromeTrace(Doc(
      R"({"ph":"X","pid":0,"tid":0,"name":"a","ts":10,"dur":50},)"
      R"({"ph":"X","pid":0,"tid":0,"name":"b","ts":30,"dur":50})"));
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("partially overlaps"), std::string::npos);
}

TEST(TraceLintTest, RejectsUnbalancedAsync) {
  const TraceLintResult r = LintChromeTrace(Doc(
      R"({"ph":"b","pid":0,"tid":0,"name":"load","cat":"pcie","id":"1","ts":10})"));
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("async begin without matching end"),
            std::string::npos);
}

TEST(TraceLintTest, RejectsEventMissingRequiredFields) {
  const TraceLintResult r = LintChromeTrace(Doc(R"({"ph":"X","ts":10})"));
  EXPECT_FALSE(r.ok());
}

TEST(TraceLintTest, UnreadableFileIsALintError) {
  const TraceLintResult r =
      LintChromeTraceFile("/nonexistent/deepplan-trace.json");
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("cannot read"), std::string::npos);
}

// ------------------------------------------- binary journal lint mode

// The structural corruption matrix lives in tests/journal_test.cc; here the
// lint entry point's negative diagnoses are pinned the way trace_lint
// --journal surfaces them.
TEST(JournalLintTest, UnreadableFileIsALintError) {
  const TraceLintResult r =
      LintJournalFile("/nonexistent/deepplan-journal.dpj");
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("cannot open"), std::string::npos)
      << r.errors[0];
}

TEST(JournalLintTest, NonJournalBytesNameTheMagic) {
  const std::string path = ::testing::TempDir() + "/not_a_journal.dpj";
  {
    std::ofstream out(path, std::ios::binary);
    out << "ELF\x7f definitely not a journal";
  }
  const TraceLintResult r = LintJournalFile(path);
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("DPJL"), std::string::npos) << r.errors[0];
  std::remove(path.c_str());
}

TEST(JournalLintTest, JsonJournalIsRedirectedToTheRightTool) {
  const std::string path = ::testing::TempDir() + "/json_journal.dpj";
  {
    std::ofstream out(path);
    out << CausalGraph(/*enabled=*/true).ToJson();
  }
  const TraceLintResult r = LintJournalFile(path);
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("journal_convert"), std::string::npos)
      << r.errors[0];
  std::remove(path.c_str());
}

// Streaming-mode misuse aborts via DP_CHECK before it can corrupt a journal.
TEST(JournalDeathTest, AttachSinkToDisabledGraphAborts) {
  EXPECT_DEATH(
      {
        JournalWriter writer;
        CausalGraph graph(/*enabled=*/false);
        graph.AttachSink(&writer);
      },
      "enabled_");
}

TEST(JournalDeathTest, AttachSinkToNonEmptyGraphAborts) {
  EXPECT_DEATH(
      {
        JournalWriter writer;
        CausalGraph graph(/*enabled=*/true);
        const int req = graph.BeginRequest(graph.RegisterProcess("p"), 0, 0);
        graph.EndRequest(req, 1, graph.arrival_node(req));
        graph.AttachSink(&writer);
      },
      "empty");
}

TEST(JournalDeathTest, ToJsonOnStreamingGraphAborts) {
  EXPECT_DEATH(
      {
        JournalWriter writer;
        CausalGraph graph(/*enabled=*/true);
        graph.AttachSink(&writer);
        graph.ToJson();
      },
      "stream_ == nullptr");
}

}  // namespace
}  // namespace deepplan
