// Property-style invariants swept over the full model x strategy x batch x
// topology space with parameterized gtest. These catch regressions the
// calibration tests cannot: orderings and conservation laws that must hold
// for *any* consistent provisioning simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "src/check/validator.h"
#include "src/core/profiler.h"
#include "src/core/transmission.h"
#include "src/engine/strategies.h"
#include "src/model/zoo.h"
#include "src/sim/event_queue.h"
#include "src/util/rng.h"
#include "tests/eventqueue_schedules.h"

namespace deepplan {
namespace {

struct RunOutput {
  InferenceResult result;
  ExecutionPlan plan;
  ModelProfile profile;
};

RunOutput RunOnce(const std::string& model_name, Strategy strategy, int batch,
                  const Topology& topology) {
  const Model model = ModelZoo::ByName(model_name);
  const PerfModel perf(topology.gpu(), topology.pcie());
  ProfilerOptions opts;
  opts.noise_stddev = 0.0;
  opts.batch = batch;
  RunOutput out;
  out.profile = Profiler(&perf, opts).Profile(model);
  const int degree = StrategyDegree(strategy, topology, 0);
  PipelineOptions pipeline;
  pipeline.nvlink = topology.nvlink();
  out.plan = MakeStrategyPlan(strategy, out.profile, degree, pipeline);
  Simulator sim;
  ServerFabric fabric(&sim, &topology);
  Engine engine(&sim, &fabric, &perf);
  bool done = false;
  engine.RunCold(model, out.plan, 0,
                 TransmissionPlanner::ChooseSecondaries(topology, 0, degree),
                 MakeColdRunOptions(strategy, batch), [&](const InferenceResult& r) {
                   out.result = r;
                   done = true;
                 });
  sim.Run();
  EXPECT_TRUE(done) << model_name;
  return out;
}

using SweepParam = std::tuple<std::string, Strategy, int>;

class ColdRunSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ColdRunSweep, InvariantsHold) {
  const auto& [model_name, strategy, batch] = GetParam();
  const Topology topology = Topology::P3_8xlarge();
  const Model model = ModelZoo::ByName(model_name);
  const RunOutput out = RunOnce(model_name, strategy, batch, topology);

  // (1) Plan validates against its profile.
  EXPECT_FALSE(out.plan.Validate(out.profile).has_value());

  // (2) Latency decomposes: exec time + stalls == total (within rounding).
  EXPECT_NEAR(static_cast<double>(out.result.latency),
              static_cast<double>(out.result.exec_busy + out.result.stall),
              static_cast<double>(out.result.latency) * 0.001);

  // (3) Conservation: bytes shipped over PCIe equal the plan's GPU-resident
  // bytes; DHA layers never cross as loads.
  std::int64_t shipped = 0;
  for (const auto& p : out.result.partitions) {
    shipped += p.bytes;
  }
  EXPECT_EQ(shipped, out.plan.GpuResidentBytes(out.profile));
  EXPECT_EQ(shipped + out.plan.HostResidentBytes(out.profile),
            model.total_param_bytes());

  // (4) Execution cannot finish before all loaded layers arrive... the last
  // layer's execution ends at `latency` >= load_done only if the last layers
  // load; in general load_done <= latency for pipelined runs of these plans.
  EXPECT_LE(out.result.load_done, out.result.latency);

  // (5) Latency at least the warm execution floor and at most baseline's
  // load-everything-then-execute ceiling.
  const PerfModel perf(topology.gpu(), topology.pcie());
  EXPECT_GE(out.result.latency, perf.WarmLatency(model, batch));
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsStrategiesBatches, ColdRunSweep,
    ::testing::Combine(::testing::Values("resnet50", "bert_base", "gpt2",
                                         "roberta_large"),
                       ::testing::Values(Strategy::kBaseline, Strategy::kPipeSwitch,
                                         Strategy::kDeepPlanDha, Strategy::kDeepPlanPt,
                                         Strategy::kDeepPlanPtDha),
                       ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string s = StrategyName(std::get<1>(info.param));
      for (char& c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return std::get<0>(info.param) + "_" + s + "_b" +
             std::to_string(std::get<2>(info.param));
    });

class StrategyOrdering : public ::testing::TestWithParam<std::string> {};

TEST_P(StrategyOrdering, PipelinedStrategiesBeatBaseline) {
  const Topology topology = Topology::P3_8xlarge();
  const Nanos baseline =
      RunOnce(GetParam(), Strategy::kBaseline, 1, topology).result.latency;
  for (const Strategy s : {Strategy::kPipeSwitch, Strategy::kDeepPlanDha,
                           Strategy::kDeepPlanPt, Strategy::kDeepPlanPtDha}) {
    EXPECT_LE(RunOnce(GetParam(), s, 1, topology).result.latency, baseline)
        << StrategyName(s);
  }
}

TEST_P(StrategyOrdering, DeepPlanVariantsBeatPipeSwitch) {
  const Topology topology = Topology::P3_8xlarge();
  const Nanos pipeswitch =
      RunOnce(GetParam(), Strategy::kPipeSwitch, 1, topology).result.latency;
  for (const Strategy s :
       {Strategy::kDeepPlanDha, Strategy::kDeepPlanPtDha}) {
    EXPECT_LE(RunOnce(GetParam(), s, 1, topology).result.latency, pipeswitch)
        << StrategyName(s);
  }
}

TEST_P(StrategyOrdering, BiggerBatchNeverFaster) {
  const Topology topology = Topology::P3_8xlarge();
  Nanos prev = 0;
  for (const int batch : {1, 2, 4, 8}) {
    const Nanos latency =
        RunOnce(GetParam(), Strategy::kDeepPlanPtDha, batch, topology).result.latency;
    EXPECT_GE(latency, prev) << "batch " << batch;
    prev = latency;
  }
}

TEST_P(StrategyOrdering, Pcie4NoSlowerThanPcie3) {
  // Figure 16's premise: the A5000/PCIe 4.0 box loads faster; cold latency
  // must not regress relative to the same strategy's stall structure.
  const RunOutput v100 =
      RunOnce(GetParam(), Strategy::kPipeSwitch, 1, Topology::P3_8xlarge());
  const RunOutput a5000 =
      RunOnce(GetParam(), Strategy::kPipeSwitch, 1, Topology::A5000Box());
  EXPECT_LT(a5000.result.load_done, v100.result.load_done);
}

INSTANTIATE_TEST_SUITE_P(Models, StrategyOrdering,
                         ::testing::Values("resnet50", "resnet101", "bert_base",
                                           "bert_large", "roberta_base",
                                           "roberta_large", "gpt2", "gpt2_medium"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// ------------------------------------------------------------- EventQueue
//
// Randomized schedule/cancel/pop interleavings checked against a brute-force
// reference model: pops must follow the time-then-insertion-order tiebreak
// documented in src/sim/event_queue.h, and Cancel of fired/unknown ids must
// stay a no-op.

struct RefEvent {
  Nanos when;
  EventQueue::EventId id;
  int tag;  // test-side label recorded by the callback when it fires
};

TEST(EventQueuePropertyTest, RandomizedInterleavingsMatchReferenceModel) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull}) {
    Rng rng(seed);
    EventQueue q;
    std::vector<RefEvent> live;                       // reference model
    std::vector<EventQueue::EventId> retired;         // fired or cancelled
    std::vector<int> fired_tags;
    int next_tag = 0;
    for (int step = 0; step < 2000; ++step) {
      const std::uint64_t op = rng.NextBounded(10);
      if (op < 5 || q.empty()) {
        // Schedule with a tiny time domain so equal-time ties are common.
        const Nanos when = static_cast<Nanos>(rng.NextBounded(50));
        const int tag = next_tag++;
        const EventQueue::EventId id =
            q.Schedule(when, [&fired_tags, tag] { fired_tags.push_back(tag); });
        live.push_back({when, id, tag});
      } else if (op < 7 && !retired.empty() && rng.NextBounded(2) == 0) {
        // Cancel of an already-fired/cancelled id: no-op, returns false.
        const EventQueue::EventId id =
            retired[rng.NextBounded(retired.size())];
        ASSERT_FALSE(q.Cancel(id));
      } else if (op < 7) {
        // Cancel a random live id: succeeds exactly once.
        const std::size_t pick = rng.NextBounded(live.size());
        ASSERT_TRUE(q.Cancel(live[pick].id));
        retired.push_back(live[pick].id);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        // Pop: must return the live event minimal in (when, insertion
        // order). `tag` counts schedules, so it is the insertion order;
        // EventId values are opaque handles (slot+generation) and carry no
        // ordering.
        const auto expected = std::min_element(
            live.begin(), live.end(), [](const RefEvent& a, const RefEvent& b) {
              return a.when != b.when ? a.when < b.when : a.tag < b.tag;
            });
        ASSERT_EQ(q.NextTime(), expected->when);
        auto [when, cb] = q.PopNext();
        ASSERT_EQ(when, expected->when);
        cb();
        ASSERT_FALSE(fired_tags.empty());
        ASSERT_EQ(fired_tags.back(), expected->tag);
        retired.push_back(expected->id);
        live.erase(expected);
      }
      ASSERT_EQ(q.size(), live.size());
      ASSERT_EQ(q.empty(), live.empty());
    }
    // Drain: remaining events come out sorted by (when, insertion order).
    std::sort(live.begin(), live.end(), [](const RefEvent& a, const RefEvent& b) {
      return a.when != b.when ? a.when < b.when : a.tag < b.tag;
    });
    for (const RefEvent& e : live) {
      auto [when, cb] = q.PopNext();
      ASSERT_EQ(when, e.when);
      cb();
      ASSERT_EQ(fired_tags.back(), e.tag);
    }
    EXPECT_TRUE(q.empty());
  }
}

TEST(EventQueuePropertyTest, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 100; ++i) {
    q.Schedule(Millis(5), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) {
    q.PopNext().second();
  }
  ASSERT_EQ(fired.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
  }
}

// Reuses the shared randomized-schedule driver (tests/eventqueue_schedules.h,
// the same generator eventqueue_diff_test.cc runs differentially) to check a
// pure FIFO property on the calendar queue alone: among all pops that share a
// timestamp, tags — which count insertion order — must appear in increasing
// order, no matter how schedules, cancels, and pops interleave.
TEST(EventQueuePropertyTest, SharedDriverEqualTimePopsRespectInsertionOrder) {
  check::SetValidationForTesting(0);  // raw-queue fuzz pops non-monotonically
  for (const std::uint64_t seed : {7ull, 77ull, 777ull}) {
    EventQueue q;
    testing_schedules::ScheduleRegime regime;
    regime.ops = 20000;
    regime.domain = 12;
    regime.burst_every = 4;
    regime.burst_size = 6;
    const testing_schedules::ScheduleLog log =
        testing_schedules::RunRandomSchedule(q, seed, regime);
    std::map<Nanos, int> last_tag_at;  // per timestamp, last tag popped
    for (const auto& [when, tag] : log.pops) {
      const auto it = last_tag_at.find(when);
      if (it != last_tag_at.end()) {
        ASSERT_LT(it->second, tag) << "seed " << seed << " time " << when;
        it->second = tag;
      } else {
        last_tag_at.emplace(when, tag);
      }
    }
    EXPECT_EQ(log.scheduled, log.pops.size() + log.cancel_results.size() -
                                 static_cast<std::uint64_t>(std::count(
                                     log.cancel_results.begin(),
                                     log.cancel_results.end(), 0)));
  }
  check::SetValidationForTesting(-1);
}

TEST(EventQueuePropertyTest, CancelOfFiredOrUnknownIdIsNoop) {
  EventQueue q;
  bool ran = false;
  const EventQueue::EventId id = q.Schedule(1, [&ran] { ran = true; });
  EXPECT_FALSE(q.Cancel(id + 1000));  // never scheduled
  q.PopNext().second();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(q.Cancel(id));  // already fired
  EXPECT_TRUE(q.empty());
  // Double-cancel: first succeeds, second is a no-op.
  const EventQueue::EventId id2 = q.Schedule(2, [] {});
  EXPECT_TRUE(q.Cancel(id2));
  EXPECT_FALSE(q.Cancel(id2));
  EXPECT_TRUE(q.empty());
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalResults) {
  const Topology topology = Topology::P3_8xlarge();
  const RunOutput a = RunOnce("bert_base", Strategy::kDeepPlanPtDha, 1, topology);
  const RunOutput b = RunOnce("bert_base", Strategy::kDeepPlanPtDha, 1, topology);
  EXPECT_EQ(a.result.latency, b.result.latency);
  EXPECT_EQ(a.result.stall, b.result.stall);
  EXPECT_EQ(a.result.load_done, b.result.load_done);
}

}  // namespace
}  // namespace deepplan
