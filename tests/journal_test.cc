// Tests for the streaming binary causal journal (src/obs/journal_stream.h)
// and its windowed what-if consumer: encoding primitives, byte-exact
// binary<->JSON round trips on engine- and server-recorded journals,
// streaming-writer equivalence with the batch dump, corruption and
// version-mismatch rejection with actionable messages, dangling-edge
// diagnosis, and the headline differential — windowed chunk-at-a-time
// replay must be bit-identical to in-memory replay while keeping fewer
// requests resident than the journal holds.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/model/zoo.h"
#include "src/obs/causal_graph.h"
#include "src/obs/journal_stream.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/whatif/whatif.h"
#include "src/obs/whatif/whatif_report.h"
#include "src/serving/server.h"
#include "src/workload/azure_trace.h"
#include "src/workload/poisson.h"

namespace deepplan {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ------------------------------------------------ encoding primitives

TEST(JournalEncodingTest, VarintRoundTrips) {
  const std::vector<std::uint64_t> values = {
      0,   1,        127,        128,        300,       16383, 16384,
      1u << 20, (1ull << 32) - 1, 1ull << 32, 1ull << 63, ~0ull};
  std::string buf;
  for (const std::uint64_t v : values) {
    AppendVarint(&buf, v);
  }
  std::size_t pos = 0;
  for (const std::uint64_t v : values) {
    std::uint64_t got = 0;
    ASSERT_TRUE(ReadVarint(buf, &pos, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(JournalEncodingTest, VarintRejectsTruncationAndOverlongForms) {
  std::string buf;
  AppendVarint(&buf, 1ull << 62);  // multi-byte encoding
  std::uint64_t out = 0;
  // Every strict prefix of a multi-byte varint is a decode error.
  for (std::size_t len = 0; len + 1 < buf.size(); ++len) {
    std::size_t pos = 0;
    EXPECT_FALSE(ReadVarint(buf.substr(0, len + 1), &pos, &out)) << len;
  }
  // An 11-byte continuation run can never be a valid 64-bit varint.
  std::size_t pos = 0;
  EXPECT_FALSE(ReadVarint(std::string(11, '\x80'), &pos, &out));
}

TEST(JournalEncodingTest, ZigzagRoundTripsAndInterleavesSigns) {
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
  EXPECT_EQ(ZigzagEncode(-2), 3u);
  const std::vector<std::int64_t> values = {
      0, 1, -1, 63, -64, 64, 1000000, -1000000,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min()};
  std::string buf;
  for (const std::int64_t v : values) {
    AppendZigzag(&buf, v);
  }
  std::size_t pos = 0;
  for (const std::int64_t v : values) {
    std::int64_t got = 0;
    ASSERT_TRUE(ReadZigzag(buf, &pos, &got));
    EXPECT_EQ(got, v);
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(JournalEncodingTest, Crc32MatchesTheStandardCheckValue) {
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("abc"), Crc32("abd"));
}

// ------------------------------------------------ recorded-journal fixtures

// fig15-style served workload: queueing, cold starts, evictions, warm DHA,
// contended links. Deterministic per seed, so two runs record identical
// graphs.
void RunServedWorkload(CausalGraph* graph, double duration_seconds = 2.0) {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  ServerOptions options;
  options.strategy = Strategy::kDeepPlanDha;
  Server server(topology, perf, options);
  const int type = server.RegisterModelType(ModelZoo::BertBase());
  server.AddInstances(type, 120);
  server.set_causal(graph, graph->RegisterProcess("serve"));
  PoissonOptions w;
  w.rate_per_sec = 150.0;
  w.num_instances = 120;
  w.duration = Seconds(duration_seconds);
  w.seed = 7;
  server.Run(GeneratePoissonTrace(w));
}

// fig02-style journal: one cold start per strategy, stitched with Adopt in
// strategy order (the multi-process / multi-graph shape).
CausalGraph ColdStartGraph() {
  const Topology topology = Topology::P3_8xlarge();
  const PerfModel perf(topology.gpu(), topology.pcie());
  const Model model = ModelZoo::BertBase();
  CausalGraph merged(/*enabled=*/true);
  for (const Strategy strategy :
       {Strategy::kBaseline, Strategy::kPipeSwitch, Strategy::kDeepPlanDha,
        Strategy::kDeepPlanPtDha}) {
    CausalGraph graph(/*enabled=*/true);
    const int process = graph.RegisterProcess(StrategyName(strategy));
    bench::RunColdWithProfile(topology, perf, model, strategy,
                              bench::ExactProfile(perf, model),
                              /*batch=*/1, &graph, process);
    merged.Adopt(std::move(graph));
  }
  return merged;
}

// ------------------------------------------------ round trips

TEST(JournalRoundTripTest, ColdStartGraphSurvivesBinaryExactly) {
  const CausalGraph graph = ColdStartGraph();
  const std::string json = graph.ToJson();
  const std::string path = TempPath("journal_fig02.dpj");

  std::string error;
  ASSERT_TRUE(WriteGraphToJournal(graph, path, {}, nullptr, &error)) << error;
  CausalGraph back(/*enabled=*/true);
  ASSERT_TRUE(ReadJournalToGraph(path, &back, &error)) << error;
  EXPECT_EQ(back.ToJson(), json);
  std::remove(path.c_str());
}

TEST(JournalRoundTripTest, ServedWorkloadSurvivesBinaryExactly) {
  CausalGraph graph(/*enabled=*/true);
  RunServedWorkload(&graph);
  ASSERT_GT(graph.requests().size(), 100u);
  const std::string json = graph.ToJson();
  const std::string path = TempPath("journal_served.dpj");

  // Small chunks force the multi-chunk code paths even on a short run.
  JournalWriterOptions small;
  small.chunk_requests = 16;
  std::string error;
  ASSERT_TRUE(WriteGraphToJournal(graph, path, small, nullptr, &error))
      << error;

  CausalGraph back(/*enabled=*/true);
  ASSERT_TRUE(ReadJournalToGraph(path, &back, &error)) << error;
  EXPECT_EQ(back.ToJson(), json);

  // JSON -> graph -> binary reproduces the first binary byte-for-byte (both
  // are id-ordered batch dumps of the same graph).
  CausalGraph parsed(/*enabled=*/true);
  ASSERT_TRUE(CausalGraph::FromJson(json, &parsed, &error)) << error;
  const std::string path2 = TempPath("journal_served2.dpj");
  ASSERT_TRUE(WriteGraphToJournal(parsed, path2, small, nullptr, &error))
      << error;
  EXPECT_EQ(ReadFileBytes(path), ReadFileBytes(path2));
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(JournalRoundTripTest, StreamingWriterRecordsTheSameGraph) {
  // Reference: the identical run recorded into an in-memory graph.
  CausalGraph reference(/*enabled=*/true);
  RunServedWorkload(&reference);

  // Streamed: same run, retiring straight into the chunked writer. Requests
  // retire in completion order (not id order), so the file differs from the
  // batch dump — but it must decode to the identical graph, and repeated
  // runs must produce identical bytes.
  const std::string path = TempPath("journal_streamed.dpj");
  const auto stream_once = [&] {
    CausalGraph graph(/*enabled=*/true);
    JournalWriter writer;
    JournalWriterOptions small;
    small.chunk_requests = 16;
    EXPECT_TRUE(writer.Open(path, small));
    graph.AttachSink(&writer);
    EXPECT_TRUE(graph.streaming());
    RunServedWorkload(&graph);
    graph.FlushOpenRequests();
    EXPECT_TRUE(writer.Finish());
    EXPECT_EQ(writer.totals().requests,
              reference.requests().size());
    EXPECT_GT(writer.totals().chunks, 1u);
    return ReadFileBytes(path);
  };
  const std::string first = stream_once();
  EXPECT_EQ(stream_once(), first);

  CausalGraph back(/*enabled=*/true);
  std::string error;
  ASSERT_TRUE(ReadJournalToGraph(path, &back, &error)) << error;
  EXPECT_EQ(back.ToJson(), reference.ToJson());
  std::remove(path.c_str());
}

TEST(JournalRoundTripTest, IncompleteRequestsKeepCompletionMinusOne) {
  const std::string path = TempPath("journal_incomplete.dpj");
  CausalGraph graph(/*enabled=*/true);
  JournalWriter writer;
  ASSERT_TRUE(writer.Open(path));
  graph.AttachSink(&writer);
  const int process = graph.RegisterProcess("p");
  const int done = graph.BeginRequest(process, 0, 10);
  const CpNodeId exec =
      graph.AddNode(done, CpKind::kExec, "exec", "exec/gpu0", 10, 20);
  graph.AddEdge(graph.arrival_node(done), exec);
  graph.EndRequest(done, 20, exec);
  const int open = graph.BeginRequest(process, 1, 15);
  graph.AddNode(open, CpKind::kExec, "exec", "exec/gpu0", 15, 25);
  // `open` never ends: FlushOpenRequests retires it with completion -1.
  graph.FlushOpenRequests();
  ASSERT_TRUE(writer.Finish());
  EXPECT_EQ(writer.totals().requests, 2u);
  EXPECT_EQ(writer.totals().incomplete_requests, 1u);

  CausalGraph back(/*enabled=*/true);
  std::string error;
  ASSERT_TRUE(ReadJournalToGraph(path, &back, &error)) << error;
  ASSERT_EQ(back.requests().size(), 2u);
  EXPECT_EQ(back.requests()[0].completion, 20);
  EXPECT_EQ(back.requests()[1].completion, -1);
  EXPECT_EQ(back.requests()[1].terminal_node, -1);
  std::remove(path.c_str());
}

// ------------------------------------------------ sequential reader

TEST(JournalReaderTest, IteratesChunksAndCrossChecksTheFooter) {
  CausalGraph graph(/*enabled=*/true);
  RunServedWorkload(&graph);
  const std::string path = TempPath("journal_iter.dpj");
  JournalWriterOptions small;
  small.chunk_requests = 32;
  std::string error;
  ASSERT_TRUE(WriteGraphToJournal(graph, path, small, nullptr, &error))
      << error;

  JournalReader reader;
  ASSERT_TRUE(reader.Open(path)) << reader.error();
  std::uint64_t chunks = 0;
  std::uint64_t requests = 0;
  JournalChunk chunk;
  while (reader.Next(&chunk) == JournalReadStatus::kChunk) {
    ++chunks;
    requests += chunk.requests.size();
  }
  ASSERT_TRUE(reader.footer_seen()) << reader.error();
  EXPECT_GT(chunks, 1u);
  EXPECT_EQ(chunks, reader.totals().chunks);
  EXPECT_EQ(requests, reader.totals().requests);
  EXPECT_EQ(requests, graph.requests().size());
  EXPECT_EQ(reader.num_processes(), graph.processes().size());
  // Past the footer the reader stays parked there.
  EXPECT_EQ(reader.Next(&chunk), JournalReadStatus::kFooter);
  std::remove(path.c_str());
}

// ------------------------------------------------ corruption rejection

// One small well-formed journal per test, then one precise mutilation.
class JournalCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("journal_corrupt.dpj");
    CausalGraph graph(/*enabled=*/true);
    const int process = graph.RegisterProcess("p");
    for (int i = 0; i < 8; ++i) {
      const int req = graph.BeginRequest(process, i, i * 100);
      const CpNodeId exec = graph.AddNode(req, CpKind::kExec, "exec",
                                          "exec/gpu0", i * 100, i * 100 + 50);
      graph.AddEdge(graph.arrival_node(req), exec);
      graph.EndRequest(req, i * 100 + 50, exec);
    }
    JournalWriterOptions small;
    small.chunk_requests = 4;  // two chunks
    std::string error;
    ASSERT_TRUE(WriteGraphToJournal(graph, path_, small, nullptr, &error))
        << error;
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), 40u);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  // Writes a mutated copy and lints it, expecting failure with `needle` in
  // the first error.
  void ExpectLintError(const std::string& mutated, const std::string& needle) {
    WriteFileBytes(path_, mutated);
    const check::TraceLintResult r = LintJournalFile(path_);
    EXPECT_FALSE(r.ok());
    ASSERT_FALSE(r.errors.empty());
    EXPECT_NE(r.errors[0].find(needle), std::string::npos) << r.errors[0];
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(JournalCorruptionTest, PristineJournalLintsClean) {
  JournalLintInfo info;
  const check::TraceLintResult r = LintJournalFile(path_, &info);
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(info.totals.requests, 8u);
  EXPECT_EQ(info.totals.chunks, 2u);
  EXPECT_EQ(info.processes, 1u);
}

TEST_F(JournalCorruptionTest, FlippedPayloadByteFailsItsChunkCrc) {
  std::string mutated = bytes_;
  // Offset 20 is inside the first chunk's payload (8 header + marker +
  // size varint + 4 CRC bytes come first).
  mutated[20] = static_cast<char>(mutated[20] ^ 0x5A);
  ExpectLintError(mutated, "CRC mismatch");
}

TEST_F(JournalCorruptionTest, UnsupportedVersionIsRejected) {
  std::string mutated = bytes_;
  mutated[4] = 9;  // version u32le lives at bytes 4..7
  ExpectLintError(mutated, "unsupported journal version 9");
}

TEST_F(JournalCorruptionTest, TruncationIsDiagnosedNotMisread) {
  // Chop into the footer frame: the frame header survives but its payload
  // does not.
  ExpectLintError(bytes_.substr(0, bytes_.size() - 4), "truncated");
  // Chop whole frames off: the journal just ends without a footer.
  ExpectLintError(bytes_.substr(0, 8), "without a footer");
  // Not even a full header.
  ExpectLintError(bytes_.substr(0, 3), "too short");
}

TEST_F(JournalCorruptionTest, BadMagicAndJsonContentGetDistinctDiagnoses) {
  ExpectLintError("XXXXXXXX-not-a-journal-at-all", "bad magic");
  // A JSON journal handed to the binary path points at the converter.
  ExpectLintError(R"({"causal_journal":{"processes":[]}})",
                  "looks like JSON");
}

TEST_F(JournalCorruptionTest, TrailingBytesAfterTheFooterAreAnError) {
  ExpectLintError(bytes_ + "extra", "trailing data");
}

TEST_F(JournalCorruptionTest, ReadJournalToGraphRefusesCorruptInput) {
  std::string mutated = bytes_;
  mutated[20] = static_cast<char>(mutated[20] ^ 0x5A);
  WriteFileBytes(path_, mutated);
  CausalGraph out(/*enabled=*/true);
  std::string error;
  EXPECT_FALSE(ReadJournalToGraph(path_, &out, &error));
  EXPECT_NE(error.find("CRC mismatch"), std::string::npos) << error;
}

TEST(JournalLintTest, DanglingEdgeNamesTheRequestAndNode) {
  // Hand-fed record whose edge points outside the request: the writer
  // encodes it (it trusts the recorder), the reader must call it out.
  const std::string path = TempPath("journal_dangling.dpj");
  JournalWriter writer;
  ASSERT_TRUE(writer.Open(path));
  writer.OnProcess(0, "p");
  CpRequestRecord rec;
  rec.request.id = 0;
  rec.request.process = 0;
  rec.request.instance = 0;
  rec.request.arrival = 0;
  rec.request.completion = 100;
  rec.request.arrival_node = 0;
  rec.request.terminal_node = 1;
  CpNode arrival;
  arrival.id = 0;
  arrival.request = 0;
  arrival.kind = CpKind::kArrival;
  arrival.label = "arrival";
  arrival.resource = "arrival";
  CpNode exec = arrival;
  exec.id = 1;
  exec.kind = CpKind::kExec;
  exec.label = "exec";
  exec.resource = "exec/gpu0";
  exec.end = 100;
  rec.nodes = {arrival, exec};
  rec.edges = {{/*seq=*/0, /*from=*/0, /*to=*/7}};  // node 7 does not exist
  writer.OnRequestRetired(std::move(rec));
  ASSERT_TRUE(writer.Finish());

  const check::TraceLintResult r = LintJournalFile(path);
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("dangling"), std::string::npos) << r.errors[0];
  EXPECT_NE(r.errors[0].find("request 0"), std::string::npos) << r.errors[0];
  std::remove(path.c_str());
}

// ------------------------------------------------ windowed replay

// The tentpole differential: chunk-windowed replay over the binary journal
// against whole-graph in-memory replay, on a served azure-style workload —
// every per-request vector identical, every report byte identical, and the
// windowed engine provably holding fewer requests than the journal.
class WindowedReplayTest : public ::testing::Test {
 protected:
  static CausalGraph& Graph() {
    static CausalGraph* graph = [] {
      auto* g = new CausalGraph(/*enabled=*/true);
      const Topology topology = Topology::P3_8xlarge();
      const PerfModel perf(topology.gpu(), topology.pcie());
      ServerOptions options;
      options.strategy = Strategy::kDeepPlanDha;
      Server server(topology, perf, options);
      const int type = server.RegisterModelType(ModelZoo::BertBase());
      server.AddInstances(type, 50);
      server.set_causal(g, g->RegisterProcess("azure"));
      AzureTraceOptions w;
      w.num_instances = 50;
      w.duration = Seconds(20);
      w.target_rate_per_sec = 100.0;
      server.Run(GenerateAzureTrace(w));
      return g;
    }();
    return *graph;
  }

  static const std::string& JournalPath() {
    static const std::string path = [] {
      const std::string p = TempPath("journal_windowed.dpj");
      JournalWriterOptions small;
      small.chunk_requests = 64;  // many windows
      std::string error;
      EXPECT_TRUE(WriteGraphToJournal(Graph(), p, small, nullptr, &error))
          << error;
      return p;
    }();
    return path;
  }
};

TEST_F(WindowedReplayTest, OpenIndexesTheSameMetadata) {
  WindowedJournal journal;
  std::string error;
  ASSERT_TRUE(journal.Open(JournalPath(), &error)) << error;
  const CausalGraph& graph = Graph();
  ASSERT_GT(graph.requests().size(), 500u);
  EXPECT_EQ(journal.processes(), graph.processes());
  ASSERT_EQ(journal.requests().size(), graph.requests().size());
  for (std::size_t i = 0; i < graph.requests().size(); ++i) {
    EXPECT_EQ(journal.requests()[i].arrival, graph.requests()[i].arrival);
    EXPECT_EQ(journal.requests()[i].completion,
              graph.requests()[i].completion);
  }
}

TEST_F(WindowedReplayTest, EveryExperimentReplaysBitIdentically) {
  WindowedJournal journal;
  std::string error;
  ASSERT_TRUE(journal.Open(JournalPath(), &error)) << error;
  std::vector<WhatIfExperiment> experiments = DefaultWhatIfExperiments();
  WhatIfExperiment identity;
  identity.name = "baseline";
  experiments.push_back(identity);
  for (const WhatIfExperiment& exp : experiments) {
    const WhatIfReplay in_memory = ReplayWhatIf(Graph(), exp);
    const WhatIfReplay windowed = journal.Replay(exp);
    EXPECT_EQ(windowed.latency, in_memory.latency) << exp.name;
    EXPECT_EQ(windowed.pcie_time, in_memory.pcie_time) << exp.name;
    EXPECT_EQ(windowed.nvlink_time, in_memory.nvlink_time) << exp.name;
    EXPECT_EQ(windowed.exec_time, in_memory.exec_time) << exp.name;
  }
}

TEST_F(WindowedReplayTest, ReportsAreByteIdenticalAcrossEngines) {
  WindowedJournal journal;
  std::string error;
  ASSERT_TRUE(journal.Open(JournalPath(), &error)) << error;
  const std::vector<WhatIfExperiment> experiments = DefaultWhatIfExperiments();
  const WhatIfReport in_memory = BuildWhatIfReport(Graph(), experiments);
  const WhatIfReport windowed =
      BuildWhatIfReportWindowed(journal, experiments);
  EXPECT_TRUE(in_memory.baseline_matches_journal);
  EXPECT_TRUE(windowed.baseline_matches_journal);
  EXPECT_EQ(WhatIfReportJson(windowed), WhatIfReportJson(in_memory));
}

TEST_F(WindowedReplayTest, ResidentWindowStaysBelowTheJournalSize) {
  WindowedJournal journal;
  std::string error;
  ASSERT_TRUE(journal.Open(JournalPath(), &error)) << error;
  WhatIfExperiment identity;
  identity.name = "baseline";
  journal.Replay(identity);
  EXPECT_GT(journal.max_resident_requests(), 0u);
  // The bounded-memory claim: a 64-request chunk window plus in-flight
  // requests, never the whole journal.
  EXPECT_LT(journal.max_resident_requests(), journal.requests().size() / 2);
}

TEST(WindowedJournalTest, OpenRejectsMissingAndCorruptFiles) {
  WindowedJournal journal;
  std::string error;
  EXPECT_FALSE(journal.Open("/nonexistent/journal.dpj", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace deepplan
