// Minimal recursive-descent JSON syntax checker shared by tests: enough to
// prove emitted documents (bench reports, Chrome traces, metric snapshots)
// parse — objects, arrays, strings, numbers, literals. Not a full validator.
#ifndef TESTS_JSON_CHECKER_H_
#define TESTS_JSON_CHECKER_H_

#include <cctype>
#include <cstring>
#include <string>

namespace deepplan {
namespace testutil {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool String() {
    if (!Eat('"')) {
      return false;
    }
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;  // skip the escaped character
        if (pos_ >= text_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      if (Eat('}')) {
        return true;
      }
      do {
        SkipWs();
        if (!String() || !Eat(':') || !Value()) {
          return false;
        }
      } while (Eat(','));
      return Eat('}');
    }
    if (c == '[') {
      ++pos_;
      if (Eat(']')) {
        return true;
      }
      do {
        if (!Value()) {
          return false;
        }
      } while (Eat(','));
      return Eat(']');
    }
    if (c == '"') {
      return String();
    }
    if (c == 't') {
      return Literal("true");
    }
    if (c == 'f') {
      return Literal("false");
    }
    if (c == 'n') {
      return Literal("null");
    }
    return Number();
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace testutil
}  // namespace deepplan

#endif  // TESTS_JSON_CHECKER_H_
