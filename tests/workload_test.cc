#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>

#include "src/workload/azure_trace.h"
#include "src/workload/poisson.h"
#include "src/workload/trace.h"

namespace deepplan {
namespace {

// ---------------------------------------------------------------- trace

TEST(TraceTest, SortsArrivalsByTime) {
  Trace t({{Seconds(3), 0}, {Seconds(1), 1}, {Seconds(2), 2}});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.arrivals()[0].instance, 1);
  EXPECT_EQ(t.arrivals()[2].instance, 0);
  EXPECT_EQ(t.duration(), Seconds(3));
}

TEST(TraceTest, MeanRate) {
  std::vector<Arrival> a;
  for (int i = 1; i <= 100; ++i) {
    a.push_back({Seconds(0.1) * i, 0});
  }
  const Trace t(std::move(a));
  EXPECT_NEAR(t.MeanRate(), 10.0, 0.2);
}

TEST(TraceTest, ScaledToRateChangesIntensityNotPattern) {
  std::vector<Arrival> a;
  for (int i = 1; i <= 100; ++i) {
    a.push_back({Seconds(0.1) * i, i % 7});
  }
  const Trace t(std::move(a));
  const Trace scaled = t.ScaledToRate(20.0);
  EXPECT_NEAR(scaled.MeanRate(), 20.0, 0.5);
  EXPECT_EQ(scaled.size(), t.size());
  EXPECT_EQ(scaled.arrivals()[5].instance, t.arrivals()[5].instance);
}

TEST(TraceTest, CsvRoundTrip) {
  Trace t({{123, 4}, {456, 7}});
  const auto parsed = Trace::FromCsv(t.ToCsv());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->arrivals()[0].time, 123);
  EXPECT_EQ(parsed->arrivals()[1].instance, 7);
}

TEST(TraceTest, FileRoundTrip) {
  Trace t({{Millis(5), 1}, {Millis(9), 2}});
  const std::string path = ::testing::TempDir() + "/trace_test.csv";
  ASSERT_TRUE(t.SaveTo(path));
  const auto loaded = Trace::LoadFrom(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
  std::remove(path.c_str());
}

TEST(TraceTest, LoadFromMissingFileFails) {
  EXPECT_FALSE(Trace::LoadFrom("/nonexistent/definitely/missing.csv").has_value());
}

// The streaming line-at-a-time loader fails fast with the file, the line
// number, and the offending text — a mangled multi-GB Azure CSV must not
// load short or silently zero-fill.
TEST(TraceTest, MalformedRowReportsFileLineAndReason) {
  const std::string path = ::testing::TempDir() + "/trace_malformed.csv";
  {
    std::ofstream out(path);
    out << "time_ns,instance\n100,1\n200,banana\n300,0\n";
  }
  std::string error;
  const auto loaded = Trace::LoadFrom(path, &error);
  EXPECT_FALSE(loaded.has_value());
  EXPECT_NE(error.find(path), std::string::npos) << error;
  EXPECT_NE(error.find(":3:"), std::string::npos) << error;  // header is line 1
  EXPECT_NE(error.find("banana"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(TraceTest, TruncatedRowWithoutCommaIsDiagnosed) {
  const std::string path = ::testing::TempDir() + "/trace_truncated.csv";
  {
    std::ofstream out(path);
    out << "100,1\n200,2\n30";  // file cut mid-row
  }
  std::string error;
  EXPECT_FALSE(Trace::LoadFrom(path, &error).has_value());
  EXPECT_NE(error.find("no comma"), std::string::npos) << error;
  EXPECT_NE(error.find(":3:"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(TraceTest, RejectsNegativeAndOverflowingFields) {
  std::string error;
  EXPECT_FALSE(Trace::LoadFrom("/nonexistent/x.csv", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
  EXPECT_FALSE(Trace::FromCsv("-5,0\n").has_value());
  EXPECT_FALSE(Trace::FromCsv("100,-1\n").has_value());
  EXPECT_FALSE(Trace::FromCsv("999999999999999999999999,0\n").has_value());
  EXPECT_FALSE(Trace::FromCsv("100,999999999999\n").has_value());
  // Windows line endings and a trailing blank line stay acceptable.
  const auto ok = Trace::FromCsv("time_ns,instance\r\n100,1\r\n\r\n");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->size(), 1u);
}

TEST(TraceTest, PerMinuteCounts) {
  Trace t({{Seconds(10), 0}, {Seconds(61), 0}, {Seconds(62), 1}, {Seconds(130), 0}});
  const auto counts = t.PerMinuteCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
}

// ---------------------------------------------------------------- poisson

TEST(PoissonTest, RateAndDurationRespected) {
  PoissonOptions opts;
  opts.rate_per_sec = 100.0;
  opts.duration = Seconds(50);
  opts.num_instances = 10;
  const Trace t = GeneratePoissonTrace(opts);
  EXPECT_NEAR(static_cast<double>(t.size()), 5000.0, 300.0);  // ~3 sigma
  EXPECT_LE(t.duration(), opts.duration);
}

TEST(PoissonTest, InstancesUniform) {
  PoissonOptions opts;
  opts.rate_per_sec = 200.0;
  opts.duration = Seconds(100);
  opts.num_instances = 4;
  const Trace t = GeneratePoissonTrace(opts);
  const auto counts = t.PerInstanceCounts(4);
  const double expected = static_cast<double>(t.size()) / 4.0;
  for (const auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.15);
  }
}

TEST(PoissonTest, DeterministicPerSeed) {
  PoissonOptions opts;
  opts.seed = 5;
  const Trace a = GeneratePoissonTrace(opts);
  const Trace b = GeneratePoissonTrace(opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.arrivals()[i].time, b.arrivals()[i].time);
    EXPECT_EQ(a.arrivals()[i].instance, b.arrivals()[i].instance);
  }
  opts.seed = 6;
  const Trace c = GeneratePoissonTrace(opts);
  EXPECT_NE(a.size(), c.size());
}

TEST(PoissonTest, InterArrivalTimesAreExponential) {
  PoissonOptions opts;
  opts.rate_per_sec = 1000.0;
  opts.duration = Seconds(100);
  const Trace t = GeneratePoissonTrace(opts);
  // CV (stddev/mean) of exponential gaps is 1.
  double prev = 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t n = 0;
  for (const Arrival& a : t.arrivals()) {
    const double gap = ToSeconds(a.time) - prev;
    prev = ToSeconds(a.time);
    sum += gap;
    sum_sq += gap * gap;
    ++n;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.05);
}

// ---------------------------------------------------------------- azure

TEST(AzureTest, HitsTargetRate) {
  AzureTraceOptions opts;
  opts.target_rate_per_sec = 150.0;
  opts.duration = Seconds(120);
  const Trace t = GenerateAzureTrace(opts);
  EXPECT_NEAR(t.MeanRate(), 150.0, 7.5);
}

TEST(AzureTest, PopularityIsSkewed) {
  AzureTraceOptions opts;
  opts.num_instances = 50;
  opts.duration = Seconds(120);
  opts.target_rate_per_sec = 300.0;
  const Trace t = GenerateAzureTrace(opts);
  auto counts = t.PerInstanceCounts(50);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  // Top 10 instances should carry several times the bottom 10's load.
  std::size_t top = 0;
  std::size_t bottom = 0;
  for (int i = 0; i < 10; ++i) {
    top += counts[i];
    bottom += counts[40 + i];
  }
  EXPECT_GT(top, bottom * 3);
}

TEST(AzureTest, RateFluctuatesOverTime) {
  AzureTraceOptions opts;
  opts.duration = Seconds(240);
  opts.target_rate_per_sec = 200.0;
  opts.diurnal_depth = 0.4;
  const Trace t = GenerateAzureTrace(opts);
  const auto per_min = t.PerMinuteCounts();
  ASSERT_GE(per_min.size(), 4u);
  std::size_t min_c = per_min[0];
  std::size_t max_c = per_min[0];
  for (const auto c : per_min) {
    min_c = std::min(min_c, c);
    max_c = std::max(max_c, c);
  }
  // Diurnal swing + spikes: min and max minutes differ visibly.
  EXPECT_GT(static_cast<double>(max_c), static_cast<double>(min_c) * 1.2);
}

TEST(AzureTest, DeterministicPerSeed) {
  AzureTraceOptions opts;
  opts.duration = Seconds(60);
  const Trace a = GenerateAzureTrace(opts);
  const Trace b = GenerateAzureTrace(opts);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.arrivals()[10].time, b.arrivals()[10].time);
}

TEST(AzureTest, CsvLoaderStreamsAndReportsErrors) {
  const std::string path = ::testing::TempDir() + "/azure_maf.csv";
  {
    std::ofstream out(path);
    out << "time_ns,instance\n1000,3\n2000,1\n";
  }
  std::string error;
  const auto loaded = LoadAzureTraceCsv(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->size(), 2u);
  {
    std::ofstream out(path);
    out << "1000,3\nbroken line\n";
  }
  EXPECT_FALSE(LoadAzureTraceCsv(path, &error).has_value());
  EXPECT_NE(error.find(":2:"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(AzureTest, AllInstancesInRange) {
  AzureTraceOptions opts;
  opts.num_instances = 9;
  opts.duration = Seconds(60);
  const Trace t = GenerateAzureTrace(opts);
  for (const Arrival& a : t.arrivals()) {
    EXPECT_GE(a.instance, 0);
    EXPECT_LT(a.instance, 9);
  }
}

}  // namespace
}  // namespace deepplan
