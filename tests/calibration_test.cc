// Pins the simulator's headline numbers against the paper's published
// measurements (Table 4, Figure 11). These are the reproduction contract: if
// a calibration constant drifts, these tests say which experiment broke.
#include <gtest/gtest.h>

#include "src/core/profiler.h"
#include "src/core/transmission.h"
#include "src/engine/strategies.h"
#include "src/model/zoo.h"

namespace deepplan {
namespace {

struct PaperLatency {
  const char* model;
  double pipeswitch_ms;  // Table 4, PipeSwitch (1)
  double ptdha_ms;       // Table 4, PT+DHA (1)
};

Nanos RunStrategy(const Model& model, Strategy strategy);

class CalibrationTest : public ::testing::TestWithParam<PaperLatency> {};

Nanos RunStrategy(const Model& model, Strategy strategy) {
    const Topology topology = Topology::P3_8xlarge();
    const PerfModel perf(topology.gpu(), topology.pcie());
    ProfilerOptions opts;
    opts.noise_stddev = 0.0;
    const ModelProfile profile = Profiler(&perf, opts).Profile(model);
    const int degree = StrategyDegree(strategy, topology, 0);
    const ExecutionPlan plan = MakeStrategyPlan(strategy, profile, degree);
    Simulator sim;
    ServerFabric fabric(&sim, &topology);
    Engine engine(&sim, &fabric, &perf);
    InferenceResult result;
    engine.RunCold(model, plan, 0,
                   TransmissionPlanner::ChooseSecondaries(topology, 0, degree),
                   MakeColdRunOptions(strategy),
                   [&](const InferenceResult& r) { result = r; });
    sim.Run();
    return result.latency;
}

TEST_P(CalibrationTest, PipeSwitchLatencyWithin15Percent) {
  const PaperLatency& c = GetParam();
  const double ms =
      ToMillis(RunStrategy(ModelZoo::ByName(c.model), Strategy::kPipeSwitch));
  EXPECT_NEAR(ms, c.pipeswitch_ms, c.pipeswitch_ms * 0.15) << c.model;
}

TEST_P(CalibrationTest, PtDhaLatencyWithin25Percent) {
  const PaperLatency& c = GetParam();
  const double ms =
      ToMillis(RunStrategy(ModelZoo::ByName(c.model), Strategy::kDeepPlanPtDha));
  EXPECT_NEAR(ms, c.ptdha_ms, c.ptdha_ms * 0.25) << c.model;
}

TEST_P(CalibrationTest, PtDhaBeatsPipeSwitch) {
  const PaperLatency& c = GetParam();
  const Model model = ModelZoo::ByName(c.model);
  EXPECT_LT(RunStrategy(model, Strategy::kDeepPlanPtDha),
            RunStrategy(model, Strategy::kPipeSwitch))
      << c.model;
}

INSTANTIATE_TEST_SUITE_P(
    Table4, CalibrationTest,
    ::testing::Values(PaperLatency{"resnet50", 12.03, 8.93},
                      PaperLatency{"resnet101", 19.85, 17.71},
                      PaperLatency{"bert_base", 40.51, 20.88},
                      PaperLatency{"bert_large", 122.37, 70.56},
                      PaperLatency{"roberta_base", 45.86, 20.83},
                      PaperLatency{"roberta_large", 129.58, 70.26},
                      PaperLatency{"gpt2", 48.41, 33.38},
                      PaperLatency{"gpt2_medium", 134.10, 101.83}),
    [](const ::testing::TestParamInfo<PaperLatency>& info) {
      return info.param.model;
    });

TEST(CalibrationHeadlineTest, BertBaseSpeedupNearPaper194x) {
  // The abstract's headline: PT+DHA gives a 1.94x single-inference speedup
  // over PipeSwitch for BERT-Base.
  const Model model = ModelZoo::BertBase();
  const double speedup =
      static_cast<double>(RunStrategy(model, Strategy::kPipeSwitch)) /
      static_cast<double>(
          RunStrategy(model, Strategy::kDeepPlanPtDha));
  EXPECT_NEAR(speedup, 1.94, 0.25);
}

TEST(CalibrationHeadlineTest, RobertaBaseSpeedupNearPaper221x) {
  const Model model = ModelZoo::RobertaBase();
  const double speedup =
      static_cast<double>(RunStrategy(model, Strategy::kPipeSwitch)) /
      static_cast<double>(
          RunStrategy(model, Strategy::kDeepPlanPtDha));
  EXPECT_NEAR(speedup, 2.21, 0.35);
}

TEST(CalibrationHeadlineTest, DhaSpeedupOverPipeSwitchInPaperRange) {
  // Figure 11 (single GPU): DHA beats PipeSwitch by 1.01-1.43x across models.
  for (const Model& model : ModelZoo::PaperModels()) {
    const double speedup =
        static_cast<double>(
            RunStrategy(model, Strategy::kPipeSwitch)) /
        static_cast<double>(
            RunStrategy(model, Strategy::kDeepPlanDha));
    EXPECT_GE(speedup, 1.0) << model.name();
    EXPECT_LE(speedup, 1.65) << model.name();
  }
}

TEST(CalibrationHeadlineTest, PtNoWinOverDhaForGpt2) {
  // Section 5.2: "In GPT-2 models, the performance improvement [of PT] is not
  // shown" — PT loads everything and loses DHA's embedding/LN savings.
  const Model model = ModelZoo::Gpt2();
  EXPECT_GE(RunStrategy(model, Strategy::kDeepPlanPt),
            RunStrategy(model, Strategy::kDeepPlanDha));
}

}  // namespace
}  // namespace deepplan
