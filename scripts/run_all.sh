#!/usr/bin/env bash
# Regenerates every paper table/figure and ablation into results/.
# Usage: scripts/run_all.sh [build-dir] [results-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "build first: cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

mkdir -p "$RESULTS_DIR"
for bench in "$BUILD_DIR"/bench/*; do
  if [ -x "$bench" ] && [ -f "$bench" ]; then
    name="$(basename "$bench")"
    echo "== $name"
    "$bench" >"$RESULTS_DIR/$name.txt" 2>&1
  fi
done
echo "results written to $RESULTS_DIR/"
