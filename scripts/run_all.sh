#!/usr/bin/env bash
# Regenerates every paper table/figure and ablation into results/, including
# each bench's machine-readable BENCH_<name>.json (written next to the .txt).
# Usage: scripts/run_all.sh [build-dir] [results-dir]
#
# Env:
#   DEEPPLAN_JOBS=N  worker threads per bench sweep (default: all cores;
#                    output is byte-identical for any value).
#   DEEPPLAN_TSAN=1  first build the ThreadSanitizer preset
#                    (cmake -DDEEPPLAN_SANITIZE=thread) into <build-dir>-tsan
#                    and run the sweep determinism tests under it.
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "build first: cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

if [ "${DEEPPLAN_TSAN:-0}" = "1" ]; then
  echo "== sweep_test (ThreadSanitizer)"
  cmake -B "$BUILD_DIR-tsan" -S . -DDEEPPLAN_SANITIZE=thread >/dev/null
  cmake --build "$BUILD_DIR-tsan" --target sweep_test -j >/dev/null
  DEEPPLAN_JOBS=8 "$BUILD_DIR-tsan/tests/sweep_test"
fi

mkdir -p "$RESULTS_DIR"
export DEEPPLAN_BENCH_DIR="$RESULTS_DIR"
for bench in "$BUILD_DIR"/bench/*; do
  if [ -x "$bench" ] && [ -f "$bench" ]; then
    name="$(basename "$bench")"
    echo "== $name"
    "$bench" >"$RESULTS_DIR/$name.txt" 2>&1
  fi
done
echo "results written to $RESULTS_DIR/"
