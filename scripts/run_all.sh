#!/usr/bin/env bash
# Regenerates every paper table/figure and ablation into results/, including
# each bench's machine-readable BENCH_<name>.json (written next to the .txt),
# then captures and validates a Chrome/Perfetto telemetry trace.
# Usage: scripts/run_all.sh [build-dir] [results-dir]
#
# Env:
#   DEEPPLAN_JOBS=N  worker threads per bench sweep (default: all cores;
#                    output is byte-identical for any value).
#   DEEPPLAN_TSAN=1  first build the ThreadSanitizer preset
#                    (cmake -DDEEPPLAN_SANITIZE=thread) into <build-dir>-tsan
#                    and run the sweep determinism and telemetry tests under it.
#   DEEPPLAN_ASAN=1  build the AddressSanitizer preset into <build-dir>-asan
#                    and run the full test suite under it.
#   DEEPPLAN_UBSAN=1 build the UndefinedBehaviorSanitizer preset into
#                    <build-dir>-ubsan and run the full test suite under it.
#   DEEPPLAN_TIDY=1  configure <build-dir>-tidy with -DDEEPPLAN_TIDY=ON and
#                    compile src/ under clang-tidy --warnings-as-errors=*
#                    (skipped with a notice when clang-tidy is not installed).
#   DEEPPLAN_CLANGXX=path
#                    clang++ for check_lint.sh's -Wthread-safety sweep and
#                    the static_analysis negative-compile tests (default:
#                    `clang++` on PATH; both skip with a notice when absent).
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "build first: cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

if [ "${DEEPPLAN_TSAN:-0}" = "1" ]; then
  echo "== sweep_test + obs_test + journal_test + scaling_test (ThreadSanitizer)"
  cmake -B "$BUILD_DIR-tsan" -S . -DDEEPPLAN_SANITIZE=thread >/dev/null
  cmake --build "$BUILD_DIR-tsan" \
    --target sweep_test obs_test journal_test scaling_test -j >/dev/null
  DEEPPLAN_JOBS=8 "$BUILD_DIR-tsan/tests/sweep_test"
  "$BUILD_DIR-tsan/tests/obs_test"
  "$BUILD_DIR-tsan/tests/journal_test"
  # The scale replay fans point sweeps across threads — and now records one
  # binary journal per point; run it under TSan with maximum fan-out (the
  # differential queue/fabric tests are single-threaded and covered by the
  # asan/ubsan full-suite legs below).
  DEEPPLAN_JOBS=8 "$BUILD_DIR-tsan/tests/scaling_test"
fi

# Sanitizer matrix: full test suite under asan / ubsan on demand.
for SAN in address undefined; do
  case "$SAN" in
    address)   flag="${DEEPPLAN_ASAN:-0}";  suffix="asan" ;;
    undefined) flag="${DEEPPLAN_UBSAN:-0}"; suffix="ubsan" ;;
  esac
  if [ "$flag" = "1" ]; then
    echo "== test suite ($SAN sanitizer)"
    cmake -B "$BUILD_DIR-$suffix" -S . -DDEEPPLAN_SANITIZE="$SAN" >/dev/null
    cmake --build "$BUILD_DIR-$suffix" -j >/dev/null
    ctest --test-dir "$BUILD_DIR-$suffix" --output-on-failure
  fi
done

if [ "${DEEPPLAN_TIDY:-0}" = "1" ]; then
  echo "== clang-tidy (src/ via DEEPPLAN_TIDY=ON)"
  cmake -B "$BUILD_DIR-tidy" -S . -DDEEPPLAN_TIDY=ON >/dev/null
  cmake --build "$BUILD_DIR-tidy" -j >/dev/null
fi

# Formatting gate: check-only, skips with a notice when clang-format is
# absent.
scripts/check_format.sh

# Determinism/concurrency lint gate: deepplan_lint always, clang
# -Wthread-safety when a clang++ is available (see scripts/check_lint.sh).
scripts/check_lint.sh "$BUILD_DIR"

mkdir -p "$RESULTS_DIR"
export DEEPPLAN_BENCH_DIR="$RESULTS_DIR"
# Keep the main sweep untraced and unprofiled (byte-stable baseline outputs)
# even when the caller has a global DEEPPLAN_TRACE/DEEPPLAN_PROFILE/
# DEEPPLAN_WHATIF/DEEPPLAN_SELFPROF/DEEPPLAN_PROGRESS; the dedicated steps
# below capture each artifact.
unset DEEPPLAN_TRACE
unset DEEPPLAN_PROFILE
unset DEEPPLAN_WHATIF
unset DEEPPLAN_SELFPROF
unset DEEPPLAN_PROGRESS
for bench in "$BUILD_DIR"/bench/*; do
  if [ -x "$bench" ] && [ -f "$bench" ]; then
    name="$(basename "$bench")"
    echo "== $name"
    "$bench" >"$RESULTS_DIR/$name.txt" 2>&1
  fi
done

# Regression gate: every checked-in golden under bench/golden/ must match the
# fresh BENCH output point-for-point (wall_clock_ms and jobs are ignored by
# the differ, so goldens gate across hosts). DEEPPLAN_BENCH_TOL widens the
# relative tolerance; the simulator is deterministic, so the default is exact.
# Runs before the traced/profiled replays below, which overwrite some BENCH
# files with short-run variants. Skips gracefully when no goldens exist.
echo "== bench_diff regression gate"
GOLDEN_DIR="bench/golden"
GOLDEN_FOUND=0
if [ -d "$GOLDEN_DIR" ]; then
  for golden in "$GOLDEN_DIR"/BENCH_*.json; do
    [ -e "$golden" ] || continue
    GOLDEN_FOUND=1
    name="$(basename "$golden")"
    if [ -f "$RESULTS_DIR/$name" ]; then
      "$BUILD_DIR/tools/bench_diff" --tol="${DEEPPLAN_BENCH_TOL:-0}" \
        "$golden" "$RESULTS_DIR/$name"
    else
      echo "skip $name: no fresh counterpart in $RESULTS_DIR"
    fi
  done
fi
if [ "$GOLDEN_FOUND" = "0" ]; then
  echo "skip: no goldens under $GOLDEN_DIR"
fi

# Scaling determinism: BENCH_scaling's deterministic surface must not depend
# on the sweep's thread count. Replay the trimmed curve (1M point dropped for
# speed) once serially and once threaded, and hold the two JSONs to the same
# exact gate the goldens use. The full default curve, 1M point included, ran
# in the main sweep above and is golden-gated like every other bench.
echo "== scaling determinism (DEEPPLAN_JOBS=1 vs 2)"
mkdir -p "$RESULTS_DIR/scaling_jobs1" "$RESULTS_DIR/scaling_jobs2"
# stdout only: wall-clock throughput lines go to stderr by design, so the
# table is byte-comparable across thread counts.
DEEPPLAN_BENCH_DIR="$RESULTS_DIR/scaling_jobs1" DEEPPLAN_JOBS=1 \
  "$BUILD_DIR/bench/bench_scaling" --max_requests=200000 \
  >"$RESULTS_DIR/scaling_jobs1/bench_scaling.txt" 2>/dev/null
DEEPPLAN_BENCH_DIR="$RESULTS_DIR/scaling_jobs2" DEEPPLAN_JOBS=2 \
  "$BUILD_DIR/bench/bench_scaling" --max_requests=200000 \
  >"$RESULTS_DIR/scaling_jobs2/bench_scaling.txt" 2>/dev/null
"$BUILD_DIR/tools/bench_diff" --tol=0 \
  "$RESULTS_DIR/scaling_jobs1/BENCH_scaling.json" \
  "$RESULTS_DIR/scaling_jobs2/BENCH_scaling.json"
cmp "$RESULTS_DIR/scaling_jobs1/bench_scaling.txt" \
  "$RESULTS_DIR/scaling_jobs2/bench_scaling.txt"

# Telemetry: capture a short traced replay and validate the artifact parses
# and carries the expected tracks (load it in ui.perfetto.dev to explore).
# DEEPPLAN_VALIDATE=1 runs the simulation invariant checker alongside; it
# writes nothing to stdout, so the bench output stays byte-identical.
echo "== trace validation (fig15_azure_trace, 2 minutes)"
TRACE_FILE="$RESULTS_DIR/trace_fig15.json"
DEEPPLAN_TRACE="$TRACE_FILE" DEEPPLAN_VALIDATE=1 \
  "$BUILD_DIR/bench/fig15_azure_trace" --minutes=2 \
  >"$RESULTS_DIR/fig15_azure_trace_traced.txt" 2>&1
if command -v python3 >/dev/null 2>&1; then
  python3 - "$TRACE_FILE" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
phases = {e["ph"] for e in events}
assert {"M", "X", "C"} <= phases, f"missing event phases: {phases}"
tracks = {e["args"]["name"] for e in events
          if e["ph"] == "M" and e["name"] == "thread_name"}
tracks |= {e["name"] for e in events if e["ph"] == "C"}
for prefix in ("exec/gpu", "coldstart/gpu", "queue/gpu", "pcie/gpu", "bw/"):
    assert any(t.startswith(prefix) for t in tracks), f"no {prefix} track"
print(f"trace OK: {len(events)} events, {len(tracks)} tracks")
EOF
else
  # Fallback: structural spot checks only.
  grep -q '"traceEvents"' "$TRACE_FILE"
  grep -q '"ph":"C"' "$TRACE_FILE"
  grep -q 'coldstart/gpu' "$TRACE_FILE"
  grep -q 'bw/' "$TRACE_FILE"
  echo "trace OK (grep checks; python3 unavailable)"
fi

# Deep structural lint (slice nesting, async pairing, metadata coverage) via
# the dedicated tool — catches artifact corruption the track check above
# cannot.
echo "== trace_lint"
"$BUILD_DIR/tools/trace_lint" "$TRACE_FILE"

# Critical-path profiling: capture a causal journal from a short profiled
# replay, re-analyze it with the offline tool, and lint the report JSON
# schema (attribution must tile each request's latency exactly). The profiled
# run writes its BENCH file into a scratch subdir so the baseline BENCH
# output above stays pristine.
echo "== profile leg (fig15_azure_trace, 2 minutes)"
PROFILE_JOURNAL="$RESULTS_DIR/profile_fig15.json"
PROFILE_REPORT="$RESULTS_DIR/profile_fig15_report.json"
mkdir -p "$RESULTS_DIR/profiled"
DEEPPLAN_BENCH_DIR="$RESULTS_DIR/profiled" DEEPPLAN_VALIDATE=1 \
  "$BUILD_DIR/bench/fig15_azure_trace" --minutes=2 \
  --profile_out="$PROFILE_JOURNAL" \
  >"$RESULTS_DIR/fig15_azure_trace_profiled.txt" 2>&1
"$BUILD_DIR/tools/profile_report" "$PROFILE_JOURNAL" \
  --json="$PROFILE_REPORT" >"$RESULTS_DIR/profile_fig15_report.txt"
"$BUILD_DIR/tools/trace_lint" --profile "$PROFILE_REPORT"

# The cold-start decomposition and concurrency-sweep journals go through the
# same journal -> offline report -> schema lint round trip.
echo "== profile leg (fig02_stall_decomposition)"
FIG02_JOURNAL="$RESULTS_DIR/profile_fig02.json"
FIG02_REPORT="$RESULTS_DIR/profile_fig02_report.json"
DEEPPLAN_BENCH_DIR="$RESULTS_DIR/profiled" \
  "$BUILD_DIR/bench/fig02_stall_decomposition" \
  --profile_out="$FIG02_JOURNAL" \
  >"$RESULTS_DIR/fig02_stall_decomposition_profiled.txt" 2>&1
"$BUILD_DIR/tools/profile_report" "$FIG02_JOURNAL" \
  --json="$FIG02_REPORT" >"$RESULTS_DIR/profile_fig02_report.txt"
"$BUILD_DIR/tools/trace_lint" --profile "$FIG02_REPORT"

echo "== profile leg (fig13_concurrency_sweep, short)"
FIG13_JOURNAL="$RESULTS_DIR/profile_fig13.json"
FIG13_REPORT="$RESULTS_DIR/profile_fig13_report.json"
DEEPPLAN_BENCH_DIR="$RESULTS_DIR/profiled" \
  "$BUILD_DIR/bench/fig13_concurrency_sweep" --requests=200 \
  --profile_out="$FIG13_JOURNAL" \
  >"$RESULTS_DIR/fig13_concurrency_sweep_profiled.txt" 2>&1
"$BUILD_DIR/tools/profile_report" "$FIG13_JOURNAL" \
  --json="$FIG13_REPORT" >"$RESULTS_DIR/profile_fig13_report.txt"
"$BUILD_DIR/tools/trace_lint" --profile "$FIG13_REPORT"

# What-if leg. fig16 --whatif_out is the full round trip: journal cold starts
# at PCIe 3.0 bandwidth, predict the PCIe 4.0 latencies from the journal
# alone, re-simulate on real PCIe 4.0 hardware, and DP_CHECK every
# per-request prediction within 1%. The offline tool then replays the fig15
# server journal captured above under the default virtual experiments; both
# reports must lint clean (the linter rejects any report whose identity
# replay failed to reproduce its own journal).
echo "== what-if leg (fig16 validation + fig15 journal replay)"
WHATIF_FIG16="$RESULTS_DIR/whatif_fig16.json"
DEEPPLAN_BENCH_DIR="$RESULTS_DIR/profiled" \
  "$BUILD_DIR/bench/fig16_pcie4" --runs=1 --whatif_out="$WHATIF_FIG16" \
  >"$RESULTS_DIR/fig16_pcie4_whatif.txt" 2>&1
"$BUILD_DIR/tools/trace_lint" --whatif "$WHATIF_FIG16"
WHATIF_FIG15="$RESULTS_DIR/whatif_fig15.json"
"$BUILD_DIR/tools/whatif_report" "$PROFILE_JOURNAL" \
  --json="$WHATIF_FIG15" >"$RESULTS_DIR/whatif_fig15.txt"
"$BUILD_DIR/tools/trace_lint" --whatif "$WHATIF_FIG15"

# Binary journal leg. One fig15 replay writes the JSON and binary journals of
# the same run; the conversion must be exact in both directions (byte-for-byte
# against the JSON journal, and back to the identical binary), and the
# windowed what-if engine streaming the binary chunks must emit the
# byte-identical report to in-memory replay over the JSON journal.
echo "== binary journal leg (lint + exact round trip + windowed replay)"
JOURNAL_BIN="$RESULTS_DIR/journal_fig15.dpj"
JOURNAL_JSON="$RESULTS_DIR/journal_fig15.json"
DEEPPLAN_BENCH_DIR="$RESULTS_DIR/profiled" \
  "$BUILD_DIR/bench/fig15_azure_trace" --minutes=2 \
  --profile_out="$JOURNAL_JSON" --journal_out="$JOURNAL_BIN" \
  >"$RESULTS_DIR/fig15_azure_trace_journaled.txt" 2>&1
"$BUILD_DIR/tools/trace_lint" --journal "$JOURNAL_BIN"
"$BUILD_DIR/tools/journal_convert" --to-json "$JOURNAL_BIN" \
  "$RESULTS_DIR/journal_fig15_rt.json" 2>/dev/null
cmp "$JOURNAL_JSON" "$RESULTS_DIR/journal_fig15_rt.json"
"$BUILD_DIR/tools/journal_convert" --to-binary "$JOURNAL_JSON" \
  "$RESULTS_DIR/journal_fig15_rt.dpj" 2>/dev/null
cmp "$JOURNAL_BIN" "$RESULTS_DIR/journal_fig15_rt.dpj"
"$BUILD_DIR/tools/whatif_report" "$JOURNAL_BIN" \
  --json="$RESULTS_DIR/whatif_fig15_windowed.json" >/dev/null
"$BUILD_DIR/tools/whatif_report" "$JOURNAL_JSON" \
  --json="$RESULTS_DIR/whatif_fig15_inmemory.json" >/dev/null
cmp "$RESULTS_DIR/whatif_fig15_windowed.json" \
  "$RESULTS_DIR/whatif_fig15_inmemory.json"
"$BUILD_DIR/tools/trace_lint" --whatif "$RESULTS_DIR/whatif_fig15_windowed.json"

# Bounded-memory recording at scale: stream one binary journal per scaling
# point (200k cap here for CI speed; the RSS bound while journaling is pinned
# by tests/scaling_test.cc, and the full 1M point records the same way with
# --max_requests=1000000) and lint every produced journal.
echo "== journal recording at scale (bench_scaling --journal_out)"
mkdir -p "$RESULTS_DIR/journaled"
DEEPPLAN_BENCH_DIR="$RESULTS_DIR/journaled" \
  "$BUILD_DIR/bench/bench_scaling" --max_requests=200000 \
  --journal_out="$RESULTS_DIR/journaled/scaling.dpj" \
  >"$RESULTS_DIR/journaled/bench_scaling.txt" 2>/dev/null
"$BUILD_DIR/tools/trace_lint" --journal \
  "$RESULTS_DIR/journaled/scaling.dpj.44000" \
  "$RESULTS_DIR/journaled/scaling.dpj.200000"

# Host self-profiling leg. A profiled scaling run must (a) produce a report
# that passes the schema lint, (b) attribute >=90% of its wall clock to
# top-level phases, (c) leave the simulated surface byte-identical to the
# unprofiled jobs=1 run above, and (d) project to the same deterministic
# phase/counter surface for any DEEPPLAN_JOBS.
echo "== selfprof leg (bench_scaling --selfprof_out)"
mkdir -p "$RESULTS_DIR/selfprof" "$RESULTS_DIR/selfprof_jobs2"
SELFPROF_JSON="$RESULTS_DIR/selfprof/selfprof_scaling.json"
DEEPPLAN_BENCH_DIR="$RESULTS_DIR/selfprof" DEEPPLAN_JOBS=1 \
  "$BUILD_DIR/bench/bench_scaling" --max_requests=200000 \
  --selfprof_out="$SELFPROF_JSON" \
  >"$RESULTS_DIR/selfprof/bench_scaling.txt" 2>/dev/null
"$BUILD_DIR/tools/trace_lint" --selfprof "$SELFPROF_JSON"
"$BUILD_DIR/tools/selfprof_report" --min_coverage=0.9 "$SELFPROF_JSON" \
  >"$RESULTS_DIR/selfprof/selfprof_report.txt"
"$BUILD_DIR/tools/bench_diff" --tol=0 \
  "$RESULTS_DIR/scaling_jobs1/BENCH_scaling.json" \
  "$RESULTS_DIR/selfprof/BENCH_scaling.json"
cmp "$RESULTS_DIR/scaling_jobs1/bench_scaling.txt" \
  "$RESULTS_DIR/selfprof/bench_scaling.txt"
DEEPPLAN_BENCH_DIR="$RESULTS_DIR/selfprof_jobs2" DEEPPLAN_JOBS=2 \
  "$BUILD_DIR/bench/bench_scaling" --max_requests=200000 \
  --selfprof_out="$RESULTS_DIR/selfprof_jobs2/selfprof_scaling.json" \
  >"$RESULTS_DIR/selfprof_jobs2/bench_scaling.txt" 2>/dev/null
"$BUILD_DIR/tools/selfprof_report" --deterministic "$SELFPROF_JSON" \
  >"$RESULTS_DIR/selfprof/deterministic.json"
"$BUILD_DIR/tools/selfprof_report" --deterministic \
  "$RESULTS_DIR/selfprof_jobs2/selfprof_scaling.json" \
  >"$RESULTS_DIR/selfprof_jobs2/deterministic.json"
cmp "$RESULTS_DIR/selfprof/deterministic.json" \
  "$RESULTS_DIR/selfprof_jobs2/deterministic.json"

# Overhead gate: self-profiling must stay under 3% wall-clock slowdown at
# the full 1M-request curve, best-of-5 vs best-of-5 (the minimum absorbs
# scheduler noise; single short runs are too jittery to gate on — tab05
# prints one for orientation only). The profiled runs double as the
# full-scale report: the first one's 1M lane must lint clean and attribute
# >=90% of its wall clock, answering ROADMAP item 1's open question.
echo "== selfprof overhead gate (1M curve, best-of-5, max 3% slowdown)"
OVH_BASE_DIRS=()
OVH_CAND_ARGS=()
for i in 1 2 3 4 5; do
  mkdir -p "$RESULTS_DIR/ovh_base$i" "$RESULTS_DIR/ovh_self$i"
  DEEPPLAN_BENCH_DIR="$RESULTS_DIR/ovh_base$i" \
    "$BUILD_DIR/bench/bench_scaling" --max_requests=1000000 \
    >"$RESULTS_DIR/ovh_base$i/bench_scaling.txt" 2>/dev/null
  DEEPPLAN_BENCH_DIR="$RESULTS_DIR/ovh_self$i" \
    "$BUILD_DIR/bench/bench_scaling" --max_requests=1000000 \
    --selfprof_out="$RESULTS_DIR/ovh_self$i/selfprof.json" \
    >"$RESULTS_DIR/ovh_self$i/bench_scaling.txt" 2>/dev/null
  OVH_BASE_DIRS+=("$RESULTS_DIR/ovh_base$i")
  OVH_CAND_ARGS+=("--candidate=$RESULTS_DIR/ovh_self$i")
done
"$BUILD_DIR/tools/bench_history" --max_slowdown=1.03 \
  "${OVH_BASE_DIRS[@]}" "${OVH_CAND_ARGS[@]}" \
  >"$RESULTS_DIR/selfprof_overhead_gate.txt"
"$BUILD_DIR/tools/trace_lint" --selfprof "$RESULTS_DIR/ovh_self1/selfprof.json"
"$BUILD_DIR/tools/selfprof_report" --min_coverage=0.9 \
  "$RESULTS_DIR/ovh_self1/selfprof.json" \
  >"$RESULTS_DIR/selfprof_1m_report.txt"

# Heartbeat smoke: DEEPPLAN_PROGRESS emits liveness lines on stderr and may
# not touch stdout or the BENCH output (byte-compared against a silent run).
echo "== heartbeat smoke (DEEPPLAN_PROGRESS)"
mkdir -p "$RESULTS_DIR/heartbeat_on" "$RESULTS_DIR/heartbeat_off"
DEEPPLAN_BENCH_DIR="$RESULTS_DIR/heartbeat_on" DEEPPLAN_PROGRESS=0.02 \
  "$BUILD_DIR/bench/bench_scaling" --max_requests=44000 \
  >"$RESULTS_DIR/heartbeat_on/bench_scaling.txt" \
  2>"$RESULTS_DIR/heartbeat_on/stderr.txt"
grep -q "deepplan-progress:" "$RESULTS_DIR/heartbeat_on/stderr.txt"
DEEPPLAN_BENCH_DIR="$RESULTS_DIR/heartbeat_off" \
  "$BUILD_DIR/bench/bench_scaling" --max_requests=44000 \
  >"$RESULTS_DIR/heartbeat_off/bench_scaling.txt" 2>/dev/null
cmp "$RESULTS_DIR/heartbeat_on/bench_scaling.txt" \
  "$RESULTS_DIR/heartbeat_off/bench_scaling.txt"
"$BUILD_DIR/tools/bench_diff" --tol=0 \
  "$RESULTS_DIR/heartbeat_off/BENCH_scaling.json" \
  "$RESULTS_DIR/heartbeat_on/BENCH_scaling.json"

# Wall-clock trajectory, report only: where this host's bench times stand
# across every snapshot taken above (gating happens in the leg before).
echo "== bench trajectory (report only)"
"$BUILD_DIR/tools/bench_history" \
  "${OVH_BASE_DIRS[@]}" \
  "$RESULTS_DIR/ovh_self1" "$RESULTS_DIR/ovh_self2" "$RESULTS_DIR/ovh_self3" \
  >"$RESULTS_DIR/bench_history.txt"

echo "results written to $RESULTS_DIR/"
