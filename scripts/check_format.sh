#!/usr/bin/env bash
# Check-only formatting gate: runs clang-format --dry-run -Werror over the
# tracked C++ sources against the repo .clang-format. Never rewrites files.
# Skips gracefully (exit 0 with a notice) when clang-format is not installed,
# so minimal containers with only a gcc toolchain still pass CI.
# Usage: scripts/check_format.sh [clang-format-binary]
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${1:-${CLANG_FORMAT:-clang-format}}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: '$CLANG_FORMAT' not found; skipping (install clang-format to enable)"
  exit 0
fi

mapfile -t files < <(git ls-files -- '*.cc' '*.h')
if [ "${#files[@]}" -eq 0 ]; then
  echo "check_format: no C++ sources tracked"
  exit 0
fi

echo "check_format: $("$CLANG_FORMAT" --version), ${#files[@]} files"
"$CLANG_FORMAT" --dry-run -Werror --style=file "${files[@]}"
echo "check_format: OK"
