#!/usr/bin/env bash
# Determinism & concurrency lint gate, two prongs:
#
#   1. deepplan_lint over src/ bench/ tools/ examples/ — always runs (the
#      linter is built from this repo, so a gcc-only container can enforce
#      the determinism rules; see src/check/determinism_lint.h for the rule
#      catalog and DESIGN.md §14 for rationale).
#   2. clang -Wthread-safety, syntax-only, over every src/ translation unit —
#      runs when a clang++ is available (DEEPPLAN_CLANGXX overrides the PATH
#      lookup), skips with a notice otherwise: gcc parses the annotation
#      macros away, so only clang can check lock discipline.
#
# Usage: scripts/check_lint.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

LINT="$BUILD_DIR/tools/deepplan_lint"
if [ ! -x "$LINT" ]; then
  echo "check_lint: building deepplan_lint into $BUILD_DIR"
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target deepplan_lint -j >/dev/null
fi

echo "check_lint: deepplan_lint over src/ bench/ tools/ examples/"
"$LINT" src bench tools examples

CLANGXX="${DEEPPLAN_CLANGXX:-}"
if [ -z "$CLANGXX" ]; then
  CLANGXX="$(command -v clang++ || true)"
fi
if [ -z "$CLANGXX" ]; then
  echo "check_lint: no clang++ found; skipping -Wthread-safety sweep" \
       "(set DEEPPLAN_CLANGXX to enable)"
  exit 0
fi

mapfile -t units < <(git ls-files -- 'src/*.cc')
echo "check_lint: $("$CLANGXX" --version | head -1)," \
     "-Wthread-safety over ${#units[@]} src/ units"
status=0
for unit in "${units[@]}"; do
  # Syntax-only is enough: thread-safety analysis runs in the frontend, and
  # skipping codegen keeps the sweep fast. -Werror is scoped to the
  # thread-safety group so clang/gcc disagreements on other warnings cannot
  # fail this gate.
  if ! "$CLANGXX" -std=c++20 -fsyntax-only -I. \
       -Wthread-safety -Werror=thread-safety "$unit"; then
    status=1
  fi
done
if [ "$status" -ne 0 ]; then
  echo "check_lint: thread-safety violations above" >&2
  exit 1
fi
echo "check_lint: OK"
