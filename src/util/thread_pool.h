// Fixed-size worker pool for host-side parallelism (experiment sweeps, batch
// plan generation). Simulated time stays single-threaded and deterministic:
// the pool only ever runs *independent* tasks — each task builds its own
// Simulator/ServerFabric/Engine — so no simulated state is shared across
// threads.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace deepplan {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  // Joins the workers. Pending tasks are still executed before shutdown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task. Tasks must not throw (an escaping exception terminates
  // the process) and must not Submit to or Wait on their own pool.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished. The pool is
  // reusable afterwards.
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // signalled when work arrives or stop_ set
  std::condition_variable idle_cv_;  // signalled when the pool may have drained
  std::size_t active_ = 0;           // tasks currently executing
  bool stop_ = false;
};

}  // namespace deepplan

#endif  // SRC_UTIL_THREAD_POOL_H_
