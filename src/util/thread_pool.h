// Fixed-size worker pool for host-side parallelism (experiment sweeps, batch
// plan generation). Simulated time stays single-threaded and deterministic:
// the pool only ever runs *independent* tasks — each task builds its own
// Simulator/ServerFabric/Engine — so no simulated state is shared across
// threads.
//
// Internally synchronized: every shared field is GUARDED_BY(mu_), checked at
// compile time by clang's thread-safety analysis (src/util/thread_annotations.h).
// Wait() returning is the happens-before edge callers rely on to read results
// produced by tasks (SweepRunner's task-index slots).
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/thread_annotations.h"

namespace deepplan {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  // Joins the workers. Pending tasks are still executed before shutdown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task. Tasks must not throw (an escaping exception terminates
  // the process) and must not Submit to or Wait on their own pool.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  // Blocks until every task submitted so far has finished. The pool is
  // reusable afterwards.
  void Wait() EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);

  std::vector<std::thread> workers_;  // set in ctor, read-only afterwards
  Mutex mu_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  CondVar work_cv_;  // signalled when work arrives or stop_ set
  CondVar idle_cv_;  // signalled when the pool may have drained
  std::size_t active_ GUARDED_BY(mu_) = 0;  // tasks currently executing
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace deepplan

#endif  // SRC_UTIL_THREAD_POOL_H_
