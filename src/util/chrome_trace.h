// Chrome-trace (chrome://tracing / Perfetto) JSON export for simulated
// timelines. Two input shapes are supported:
//
//  - the engine's flat per-run TimelineEvent list (complete "X" slices on
//    named tracks) — the pictures in Figures 7-9 of the paper, but generated
//    from a real run;
//  - a TraceDocument, the obs-layer TraceRecorder's multi-process event set:
//    span ("X"), instant ("i"), and counter ("C") events grouped under named
//    processes ("M" process_name / thread_name metadata records), so a whole
//    server or cluster run opens in Perfetto as per-GPU/per-link tracks with
//    bandwidth and queue-depth graphs overlaid.
//
// Output is byte-stable: event/track names are JSON-escaped (including
// control characters), events are sorted by timestamp with deterministic
// tie-breaking (parent spans before their children), and track ids are
// assigned from the sorted track set, never from arrival order.
#ifndef SRC_UTIL_CHROME_TRACE_H_
#define SRC_UTIL_CHROME_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/time.h"

namespace deepplan {

struct TimelineEvent {
  std::string name;   // e.g. layer name
  std::string track;  // e.g. "pcie/gpu0", "nvlink", "exec"
  Nanos start = 0;
  Nanos duration = 0;
};

enum class TracePhase {
  kSpan,        // complete slice ("X"): [ts, ts+duration) on a thread track
  kInstant,     // point-in-time marker ("i") on a thread track
  kCounter,     // sampled value ("C"); `track` names the counter track, `name`
                // the series key inside it, `value` the sample
  kAsyncBegin,  // async interval start ("b"): intervals with distinct ids may
                // overlap on one track (e.g. concurrent queue waits), which
                // complete slices must not
  kAsyncEnd,    // async interval end ("e"); pairs with kAsyncBegin by
                // (pid, track, id)
};

// One event of a multi-process trace. `pid` selects the process group
// (e.g. one per server in a cluster run); `track` names the thread-level
// track within it.
struct TraceEvent {
  TracePhase phase = TracePhase::kSpan;
  int pid = 0;
  std::string track;
  std::string name;
  Nanos ts = 0;
  Nanos duration = 0;       // spans only
  double value = 0.0;       // counters only
  std::uint64_t id = 0;     // async begin/end pairing key
};

// A full trace: process names (index = pid; missing/empty entries render as
// "pid <n>") plus the event set. Produced by obs::TraceRecorder.
struct TraceDocument {
  std::vector<std::string> process_names;
  std::vector<TraceEvent> events;
};

class ChromeTraceWriter {
 public:
  // Renders events as a Chrome trace JSON document (trace-event format,
  // "traceEvents" array, microsecond timestamps).
  static std::string ToJson(const std::vector<TimelineEvent>& events);
  static std::string ToJson(const TraceDocument& doc);

  // Writes the JSON to `path`; returns false on I/O failure.
  static bool WriteTo(const std::string& path,
                      const std::vector<TimelineEvent>& events);
  static bool WriteTo(const std::string& path, const TraceDocument& doc);
};

}  // namespace deepplan

#endif  // SRC_UTIL_CHROME_TRACE_H_
