// Chrome-trace (chrome://tracing / Perfetto) JSON export for simulated
// timelines: each event is a complete ("X") slice on a named track. Used by
// the engine's timeline recording to visualize load/migrate/execute overlap —
// the pictures in Figures 7-9 of the paper, but generated from a real run.
#ifndef SRC_UTIL_CHROME_TRACE_H_
#define SRC_UTIL_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "src/util/time.h"

namespace deepplan {

struct TimelineEvent {
  std::string name;   // e.g. layer name
  std::string track;  // e.g. "pcie/gpu0", "nvlink", "exec"
  Nanos start = 0;
  Nanos duration = 0;
};

class ChromeTraceWriter {
 public:
  // Renders events as a Chrome trace JSON document (trace-event format,
  // "traceEvents" array, microsecond timestamps).
  static std::string ToJson(const std::vector<TimelineEvent>& events);

  // Writes the JSON to `path`; returns false on I/O failure.
  static bool WriteTo(const std::string& path,
                      const std::vector<TimelineEvent>& events);
};

}  // namespace deepplan

#endif  // SRC_UTIL_CHROME_TRACE_H_
