// Column-aligned table printer for bench output: every bench binary prints the
// paper's rows through this so output stays uniform and greppable.
#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace deepplan {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  // Convenience cell formatters.
  static std::string Num(double v, int precision = 2);
  static std::string Pct(double fraction, int precision = 1);  // 0.42 -> "42.0%"

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deepplan

#endif  // SRC_UTIL_TABLE_H_
