// Compile-time concurrency enforcement: Clang Thread Safety Analysis macros
// and an annotated mutex/condition-variable wrapper set. Under clang the
// macros expand to the `capability` attribute family and every translation
// unit is compiled with -Wthread-safety (an error under DEEPPLAN_WERROR), so
// lock discipline — which field is guarded by which mutex, which private
// helper requires which lock — is checked on every build instead of only on
// the code paths a TSan run happens to execute. Under gcc the macros expand
// to nothing and the wrappers cost exactly a std::mutex.
//
// The repo has two concurrency regimes, and the annotations only cover the
// first:
//
//   1. *Internally synchronized* (annotated here): structures that threads
//      genuinely share — ThreadPool's work queue, MetricsRegistry (all its
//      operations are commutative, so a locked registry stays deterministic
//      under any interleaving), JournalWriter (the CausalSink hand-off
//      target), and CausalGraph's streaming retire state. Their shared
//      mutable fields are GUARDED_BY a Mutex and helpers that expect the
//      lock are REQUIRES-annotated.
//
//   2. *Thread-confined, deterministic hand-off* (NOT lockable): order-
//      sensitive sinks — TraceRecorder and CausalGraph's accumulation
//      vectors — and the sim-internal pools (SlotPool/ObjectPool). Locking
//      those would not make them correct: their append *order* is part of
//      the byte-identical-output contract, and a shared locked instance
//      would interleave in wall-clock order. They stay owned by one thread
//      and are stitched in deterministic task order (TraceRecorder::Adopt,
//      CausalGraph::Adopt, SweepRunner's task-index result slots); the
//      happens-before edge for the hand-off is ThreadPool::Wait. See
//      DESIGN.md §14.
//
// Negative-compile tests in tests/static_analysis/ prove the annotations
// actually fire (an unguarded read of a GUARDED_BY field, a missing
// REQUIRES caller, and a leaked lock each fail to compile under
// -Wthread-safety -Werror).
#ifndef SRC_UTIL_THREAD_ANNOTATIONS_H_
#define SRC_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define DP_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define DP_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

// A type that acts as a lock (see `Mutex` below).
#define CAPABILITY(x) DP_THREAD_ANNOTATION__(capability(x))

// An RAII type whose lifetime equals a critical section (see `MutexLock`).
#define SCOPED_CAPABILITY DP_THREAD_ANNOTATION__(scoped_lockable)

// Field may only be read or written while holding the given mutex.
#define GUARDED_BY(x) DP_THREAD_ANNOTATION__(guarded_by(x))

// Pointer field whose *pointee* is protected by the given mutex.
#define PT_GUARDED_BY(x) DP_THREAD_ANNOTATION__(pt_guarded_by(x))

// Function may only be called while holding the given mutex(es) exclusively
// (REQUIRES) or at least shared (REQUIRES_SHARED).
#define REQUIRES(...) \
  DP_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DP_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

// Function acquires / releases the given mutex(es) and must be called
// without / with them held.
#define ACQUIRE(...) DP_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  DP_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) DP_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  DP_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

// Function acquires the mutex only when it returns the given value.
#define TRY_ACQUIRE(...) \
  DP_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

// Function must be called *without* the given mutex held (deadlock guard for
// public entry points of internally-synchronized classes).
#define EXCLUDES(...) DP_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

// Runtime assertion that informs the analysis the mutex is held from here on
// (used at the top of condition-variable wait predicates, which clang cannot
// see through).
#define ASSERT_CAPABILITY(x) DP_THREAD_ANNOTATION__(assert_capability(x))

// Function returns a reference to the given mutex.
#define RETURN_CAPABILITY(x) DP_THREAD_ANNOTATION__(lock_returned(x))

// Escape hatch for functions the analysis cannot model (move constructors of
// lock-owning types, which by contract run with exclusive access to both
// objects). Every use needs a comment saying why it is safe.
#define NO_THREAD_SAFETY_ANALYSIS \
  DP_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace deepplan {

// std::mutex with the capability attribute attached (libstdc++'s std::mutex
// carries no annotations, so the analysis cannot track it directly).
// Non-movable: a Mutex pins the object that owns it, which is why movable
// classes keep their lock behind a unique_ptr (CausalGraph::StreamState).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // No-op that tells the analysis this mutex is held — call it first thing
  // inside a CondVar wait predicate, the one place a guarded read happens in
  // a lambda the analysis cannot connect to the enclosing critical section.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

  // Underlying handle for CondVar; do not lock it directly.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII critical section over a Mutex. The SCOPED_CAPABILITY annotation makes
// clang treat the object's lifetime as the lock-held region, so a GUARDED_BY
// field accessed outside a MutexLock scope (or a REQUIRES function called
// outside one) is a compile error.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to the annotated Mutex. Wait() demands the lock
// at compile time (REQUIRES), and on return the lock is held again — the
// standard condition-variable contract, now enforced instead of assumed.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Blocks until pred() holds, releasing `mu` while asleep. `pred` runs with
  // `mu` held; start it with `mu.AssertHeld()` so the analysis knows (see
  // ThreadPool::WorkerLoop for the canonical use).
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    // Adopt the already-held mutex for the wait, then release ownership back
    // to the caller's MutexLock: the lock's acquire/release bookkeeping stays
    // with the annotated scope, not with this adapter.
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace deepplan

#endif  // SRC_UTIL_THREAD_ANNOTATIONS_H_
