// Signed-to-unsigned subscript cast. The codebase indexes containers with
// `int` ids (GpuId, partition, instance) whose non-negativity DP_CHECKs
// guard; `Idx` makes the sign conversion explicit at each subscript so the
// src/ tree compiles clean under -Wsign-conversion without scattering
// static_cast noise.
#ifndef SRC_UTIL_INDEX_H_
#define SRC_UTIL_INDEX_H_

#include <cstddef>

namespace deepplan {

template <typename T>
constexpr std::size_t Idx(T i) {
  return static_cast<std::size_t>(i);
}

}  // namespace deepplan

#endif  // SRC_UTIL_INDEX_H_
