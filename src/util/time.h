// Simulated-time primitives. All simulated durations and timestamps in this
// codebase are integer nanoseconds so that event ordering is exact and every
// run is bit-reproducible.
#ifndef SRC_UTIL_TIME_H_
#define SRC_UTIL_TIME_H_

#include <cstdint>
#include <string>

namespace deepplan {

// Simulated time in nanoseconds (duration or timestamp since simulation start).
using Nanos = std::int64_t;

constexpr Nanos kNanosPerMicro = 1'000;
constexpr Nanos kNanosPerMilli = 1'000'000;
constexpr Nanos kNanosPerSecond = 1'000'000'000;

constexpr Nanos Micros(double us) { return static_cast<Nanos>(us * kNanosPerMicro); }
constexpr Nanos Millis(double ms) { return static_cast<Nanos>(ms * kNanosPerMilli); }
constexpr Nanos Seconds(double s) { return static_cast<Nanos>(s * kNanosPerSecond); }

constexpr double ToMicros(Nanos ns) { return static_cast<double>(ns) / kNanosPerMicro; }
constexpr double ToMillis(Nanos ns) { return static_cast<double>(ns) / kNanosPerMilli; }
constexpr double ToSeconds(Nanos ns) { return static_cast<double>(ns) / kNanosPerSecond; }

// "12.34ms" / "5.6us" / "3.21s" — human-readable duration for logs and tables.
std::string FormatDuration(Nanos ns);

// "89.42MiB" / "1.27GiB" — human-readable byte count (binary units, as the
// paper's MB figures are really MiB).
std::string FormatBytes(std::int64_t bytes);

}  // namespace deepplan

#endif  // SRC_UTIL_TIME_H_
