// Tiny --key=value command-line parser for examples and benches. Unknown flags
// are errors so typos fail loudly.
#ifndef SRC_UTIL_FLAGS_H_
#define SRC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace deepplan {

class Flags {
 public:
  // Parses argv; on --help or error, prints usage and returns false.
  bool Parse(int argc, char** argv);

  // Registration (call before Parse). Returns *this for chaining.
  Flags& DefineInt(const std::string& name, std::int64_t default_value,
                   const std::string& help);
  Flags& DefineDouble(const std::string& name, double default_value,
                      const std::string& help);
  Flags& DefineString(const std::string& name, const std::string& default_value,
                      const std::string& help);
  Flags& DefineBool(const std::string& name, bool default_value, const std::string& help);

  std::int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  // Positional (non-flag) arguments.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Def {
    Kind kind;
    std::string value;
    std::string help;
  };
  std::map<std::string, Def> defs_;
  std::vector<std::string> positional_;
  std::string program_;

  void PrintUsage() const;
};

}  // namespace deepplan

#endif  // SRC_UTIL_FLAGS_H_
