// Log-bucketed latency histogram: O(1) insert, approximate percentiles, fixed
// memory. Used where retaining every sample would be wasteful (long trace
// replays) and for per-minute time series.
#ifndef SRC_UTIL_HISTOGRAM_H_
#define SRC_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace deepplan {

// Fixed percentile summary shared by every histogram exporter (the metrics
// registry snapshot, BENCH metrics blobs, serving reports).
struct HistogramSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

class LatencyHistogram {
 public:
  // Buckets span [min_value, max_value] with `buckets_per_decade` log-spaced
  // buckets per 10x. Values outside the range clamp to the end buckets.
  LatencyHistogram(double min_value, double max_value, int buckets_per_decade = 20);

  void Add(double value);
  void Merge(const LatencyHistogram& other);
  void Reset();

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

  // Approximate percentile (upper bound of the containing bucket), p in
  // [0, 100].
  double Percentile(double p) const;

  // Exact count/mean/min/max plus bucket-approximate p50/p95/p99.
  HistogramSummary Summary() const;

 private:
  std::size_t BucketFor(double value) const;
  double BucketUpper(std::size_t index) const;

  double min_value_;
  double log_min_;
  double log_step_;
  std::vector<std::uint64_t> counts_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace deepplan

#endif  // SRC_UTIL_HISTOGRAM_H_
