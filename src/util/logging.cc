#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace deepplan {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace log_detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

void CheckFail(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s\n", file, line, cond);
  std::abort();
}

}  // namespace log_detail

}  // namespace deepplan
