#include "src/util/arena.h"

#include <algorithm>

namespace deepplan {

Arena::Arena(std::size_t chunk_bytes) : chunk_bytes_(std::max<std::size_t>(chunk_bytes, 64)) {}

void* Arena::Allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) {
    bytes = 1;
  }
  // Try to bump inside the current chunk; alignment is computed on the
  // absolute pointer so over-aligned requests stay correct.
  while (current_ < chunks_.size()) {
    std::byte* base = chunks_[current_].data.get();
    std::uintptr_t raw = reinterpret_cast<std::uintptr_t>(base) + offset_;
    std::uintptr_t aligned = (raw + align - 1) & ~(static_cast<std::uintptr_t>(align) - 1);
    std::size_t new_offset = offset_ + (aligned - raw) + bytes;
    if (new_offset <= chunks_[current_].size) {
      offset_ = new_offset;
      bytes_allocated_ += bytes;
      return reinterpret_cast<std::byte*>(aligned);
    }
    // Chunk exhausted (or, after Reset, too small for this request): move to
    // the next retained chunk.
    ++current_;
    offset_ = 0;
  }
  std::size_t size = std::max(chunk_bytes_, bytes + align);
  chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
  bytes_reserved_ += size;
  offset_ = 0;
  std::byte* base = chunks_[current_].data.get();
  std::uintptr_t raw = reinterpret_cast<std::uintptr_t>(base);
  std::uintptr_t aligned = (raw + align - 1) & ~(static_cast<std::uintptr_t>(align) - 1);
  offset_ = (aligned - raw) + bytes;
  bytes_allocated_ += bytes;
  return reinterpret_cast<std::byte*>(aligned);
}

void Arena::Reset() {
  current_ = 0;
  offset_ = 0;
  bytes_allocated_ = 0;
}

}  // namespace deepplan
