// SweepRunner: parallel execution of N independent experiment tasks with
// deterministic, task-order aggregation. Each task is a pure function of its
// index (it constructs its own Simulator/ServerFabric/Engine and seeds any
// randomness from the index), so the result vector — and therefore every
// table or JSON file derived from it — is byte-identical regardless of how
// many worker threads executed the sweep.
//
// Thread count comes from the DEEPPLAN_JOBS environment variable when set
// (DEEPPLAN_JOBS=1 is the escape hatch that keeps everything on the calling
// thread), otherwise from std::thread::hardware_concurrency().
#ifndef SRC_UTIL_SWEEP_H_
#define SRC_UTIL_SWEEP_H_

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/util/thread_pool.h"

namespace deepplan {

// Worker count for sweeps: DEEPPLAN_JOBS if set and parseable (clamped to
// >= 1), else hardware_concurrency (>= 1).
int DefaultSweepJobs();

class SweepRunner {
 public:
  explicit SweepRunner(int jobs = DefaultSweepJobs()) : jobs_(jobs < 1 ? 1 : jobs) {}

  int jobs() const { return jobs_; }

  // Runs fn(i) for every i in [0, n) and returns {fn(0), fn(1), ..., fn(n-1)}
  // in task-index order. Tasks run concurrently on up to jobs() threads; with
  // jobs() == 1 (or n <= 1) everything runs inline on the calling thread, so
  // DEEPPLAN_JOBS=1 removes threading from the picture entirely. fn must be
  // safe to invoke concurrently from multiple threads (i.e. tasks share no
  // mutable state) and must not throw.
  // Concurrency contract: `results` is not locked. Each task writes only its
  // own slot results[i], and distinct vector elements are distinct memory
  // locations, so disjoint-index writes race-free by construction; Wait() is
  // the happens-before edge that publishes every slot to the caller. This is
  // exactly why R = bool is rejected below: std::vector<bool> packs elements
  // into shared words, which would turn the disjoint-slot writes into a real
  // data race (and nondeterministic output) under any jobs() > 1.
  template <typename Fn>
  auto Map(int n, Fn&& fn) const -> std::vector<decltype(fn(0))> {
    using R = decltype(fn(0));
    static_assert(!std::is_same_v<R, bool>,
                  "SweepRunner::Map cannot return std::vector<bool>: its "
                  "bit-packed elements share words, so concurrent per-index "
                  "writes race. Return char/int (or a struct) instead.");
    std::vector<R> results(n > 0 ? static_cast<std::size_t>(n) : 0);
    if (n <= 0) {
      return results;
    }
    if (jobs_ == 1 || n == 1) {
      for (int i = 0; i < n; ++i) {
        results[static_cast<std::size_t>(i)] = fn(i);
      }
      return results;
    }
    ThreadPool pool(jobs_ < n ? jobs_ : n);
    for (int i = 0; i < n; ++i) {
      pool.Submit([&results, &fn, i] { results[static_cast<std::size_t>(i)] = fn(i); });
    }
    pool.Wait();
    return results;
  }

 private:
  int jobs_;
};

}  // namespace deepplan

#endif  // SRC_UTIL_SWEEP_H_
