// Minimal JSON document parser (the read-side companion of json.h's
// builders): parses a full document into an owned DOM for tools that consume
// emitted artifacts — trace_lint re-validating Chrome traces, tests reading
// BENCH_*.json. Strict where it matters (structure, escapes, numbers via
// strtod) and small where it does not (no \uXXXX decoding — escaped unicode
// is preserved verbatim, which is lossless for validation purposes).
#ifndef SRC_UTIL_JSON_PARSE_H_
#define SRC_UTIL_JSON_PARSE_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace deepplan {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  // Insertion-ordered key/value pairs (duplicate keys are preserved).
  const std::vector<std::pair<std::string, JsonValue>>& fields() const {
    return fields_;
  }

  // First field with `key`, or nullptr.
  const JsonValue* Find(const std::string& key) const;

  static JsonValue Null() { return JsonValue(Kind::kNull); }
  static JsonValue Bool(bool v);
  static JsonValue Number(double v);
  static JsonValue String(std::string v);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::vector<std::pair<std::string, JsonValue>> fields);

 private:
  explicit JsonValue(Kind kind) : kind_(kind) {}

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> fields_;
};

struct JsonParseResult {
  bool ok = false;
  std::string error;       // human-readable, includes byte offset
  JsonValue value = JsonValue::Null();
};

// Parses `text` as one JSON document (trailing whitespace allowed, trailing
// garbage is an error).
JsonParseResult ParseJson(const std::string& text);

}  // namespace deepplan

#endif  // SRC_UTIL_JSON_PARSE_H_
