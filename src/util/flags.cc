#include "src/util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "src/util/logging.h"

namespace deepplan {

Flags& Flags::DefineInt(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  defs_[name] = {Kind::kInt, std::to_string(default_value), help};
  return *this;
}

Flags& Flags::DefineDouble(const std::string& name, double default_value,
                           const std::string& help) {
  defs_[name] = {Kind::kDouble, std::to_string(default_value), help};
  return *this;
}

Flags& Flags::DefineString(const std::string& name, const std::string& default_value,
                           const std::string& help) {
  defs_[name] = {Kind::kString, default_value, help};
  return *this;
}

Flags& Flags::DefineBool(const std::string& name, bool default_value,
                         const std::string& help) {
  defs_[name] = {Kind::kBool, default_value ? "true" : "false", help};
  return *this;
}

bool Flags::Parse(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "?";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    std::string name = arg.substr(2, eq == std::string::npos ? std::string::npos : eq - 2);
    auto it = defs_.find(name);
    if (it == defs_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      PrintUsage();
      return false;
    }
    if (eq == std::string::npos) {
      if (it->second.kind == Kind::kBool) {
        it->second.value = "true";
      } else {
        std::fprintf(stderr, "flag --%s requires a value (--%s=...)\n", name.c_str(),
                     name.c_str());
        return false;
      }
    } else {
      it->second.value = arg.substr(eq + 1);
    }
  }
  return true;
}

std::int64_t Flags::GetInt(const std::string& name) const {
  auto it = defs_.find(name);
  DP_CHECK(it != defs_.end() && it->second.kind == Kind::kInt);
  return std::strtoll(it->second.value.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name) const {
  auto it = defs_.find(name);
  DP_CHECK(it != defs_.end() && it->second.kind == Kind::kDouble);
  return std::strtod(it->second.value.c_str(), nullptr);
}

const std::string& Flags::GetString(const std::string& name) const {
  auto it = defs_.find(name);
  DP_CHECK(it != defs_.end() && it->second.kind == Kind::kString);
  return it->second.value;
}

bool Flags::GetBool(const std::string& name) const {
  auto it = defs_.find(name);
  DP_CHECK(it != defs_.end() && it->second.kind == Kind::kBool);
  return it->second.value == "true" || it->second.value == "1";
}

void Flags::PrintUsage() const {
  std::fprintf(stderr, "usage: %s [--flag=value ...]\n", program_.c_str());
  for (const auto& [name, def] : defs_) {
    std::fprintf(stderr, "  --%s (default: %s)\n      %s\n", name.c_str(),
                 def.value.c_str(), def.help.c_str());
  }
}

}  // namespace deepplan
