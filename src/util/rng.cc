#include "src/util/rng.h"

#include <cmath>

#include "src/util/logging.h"

namespace deepplan {

namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  DP_CHECK(bound > 0);
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextUniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::NextExponential(double rate) {
  DP_CHECK(rate > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -std::log(1.0 - u) / rate;
}

double Rng::NextGaussian(double mean, double stddev) {
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

std::uint64_t Rng::NextPoisson(double mean) {
  DP_CHECK(mean >= 0);
  if (mean == 0) {
    return 0;
  }
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    double prod = NextDouble();
    std::uint64_t n = 0;
    while (prod > limit) {
      prod *= NextDouble();
      ++n;
    }
    return n;
  }
  const double g = NextGaussian(mean, std::sqrt(mean));
  return g <= 0 ? 0 : static_cast<std::uint64_t>(g + 0.5);
}

std::uint64_t Rng::NextZipf(std::uint64_t n, double s) {
  DP_CHECK(n > 0);
  if (n == 1) {
    return 0;
  }
  // Inversion of the continuous approximation of the Zipf CDF; adequate for
  // workload skew modelling and O(1) per sample.
  const double nd = static_cast<double>(n);
  if (std::abs(s - 1.0) < 1e-9) {
    const double u = NextDouble();
    const double x = std::exp(u * std::log(nd + 1.0)) - 1.0;
    const auto r = static_cast<std::uint64_t>(x);
    return r >= n ? n - 1 : r;
  }
  const double t = 1.0 - s;
  const double u = NextDouble();
  const double x = std::pow(u * (std::pow(nd + 1.0, t) - 1.0) + 1.0, 1.0 / t) - 1.0;
  const auto r = static_cast<std::uint64_t>(x);
  return r >= n ? n - 1 : r;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA5A5A5A5DEADBEEFULL); }

}  // namespace deepplan
