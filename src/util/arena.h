// Allocation infrastructure for the simulation hot paths. A million-request
// replay schedules tens of millions of events and cold runs; allocating each
// one from the global heap (and never recycling the bookkeeping) dominated
// the critical-path profile of the sim core. Three building blocks fix that:
//
//   Arena      — chunked bump allocator. Allocation is a pointer bump; memory
//                is released all at once (Reset or destruction). For
//                trivially-destructible payloads and as the backing store of
//                ObjectPool.
//   SlotPool   — generation-checked slot map. Alloc returns a dense index
//                whose slot is recycled after Free, plus a generation counter
//                so stale handles can never alias a recycled slot. This is
//                the event "arena": live events occupy O(max outstanding)
//                slots regardless of how many events a run schedules.
//   ObjectPool — free-list of reusable objects constructed in an Arena.
//                Acquire reuses a released object (retaining its internal
//                vector/string capacity, which is the point: a cold run's
//                bookkeeping keeps its buffers across runs).
//
// Concurrency contract: none of these are thread-safe, by design rather than
// omission — every simulator owns its own instances, matching the
// one-simulator-per-thread architecture of SweepRunner, and slot/handle
// recycling order feeds deterministic event ids, so a shared locked pool
// would trade a data race for timing-dependent allocation order. Keep pools
// thread-confined; hand results across threads via SweepRunner's task-index
// slots (see src/util/thread_annotations.h for the regime split).
#ifndef SRC_UTIL_ARENA_H_
#define SRC_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace deepplan {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `bytes` of storage aligned to `align` (a power of two). Never
  // returns nullptr; allocations larger than the chunk size get a dedicated
  // chunk.
  void* Allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  // Constructs a T inside the arena. T must be trivially destructible: the
  // arena never runs destructors. (ObjectPool layers destructor handling on
  // top for the non-trivial case.)
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::New requires trivially destructible T");
    return ::new (Allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  // Rewinds the arena: all previously returned pointers become invalid, but
  // the chunks are retained for reuse.
  void Reset();

  std::size_t bytes_allocated() const { return bytes_allocated_; }
  std::size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // chunk being bumped (chunks_.size() when none)
  std::size_t offset_ = 0;   // bump position inside chunks_[current_]
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

// Generation-checked slot map. Handles are (index, generation) pairs; Free
// bumps the slot's generation so a stale handle is detectably dead. Payloads
// stay constructed for the lifetime of the pool (Free resets them to a
// default-constructed state via assignment only when requested by the
// caller), so payload-internal capacity is retained across reuse.
template <typename T>
class SlotPool {
 public:
  using Index = std::uint32_t;
  using Generation = std::uint32_t;

  struct Handle {
    Index index = 0;
    Generation generation = 0;
  };

  // Allocates a slot (recycling a freed one when available).
  Handle Alloc() {
    Index index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
    } else {
      index = static_cast<Index>(slots_.size());
      slots_.emplace_back();
    }
    slots_[index].live = true;
    ++live_count_;
    return Handle{index, slots_[index].generation};
  }

  // True when the handle names a currently-live slot.
  bool Alive(Handle h) const {
    return h.index < slots_.size() && slots_[h.index].live &&
           slots_[h.index].generation == h.generation;
  }

  // Payload access; the handle must be alive.
  T& Get(Handle h) { return slots_[h.index].value; }
  const T& Get(Handle h) const { return slots_[h.index].value; }

  // Releases the slot. Stale or double frees are detected and refused.
  bool Free(Handle h) {
    if (!Alive(h)) {
      return false;
    }
    Slot& s = slots_[h.index];
    s.live = false;
    ++s.generation;
    free_.push_back(h.index);
    --live_count_;
    return true;
  }

  std::size_t live_count() const { return live_count_; }
  // High-water slot count: memory is bounded by the max number of
  // simultaneously live slots, not by the total ever allocated.
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    T value{};
    Generation generation = 0;
    bool live = false;
  };

  std::vector<Slot> slots_;
  std::vector<Index> free_;
  std::size_t live_count_ = 0;
};

// Free-list pool of reusable T objects, constructed inside an Arena. T's
// destructor runs only when the pool itself is destroyed; Release returns the
// object to the free list *without* destroying it, so internal buffers keep
// their capacity for the next Acquire. Callers reset reused state themselves
// (the pool cannot know which fields carry over safely).
template <typename T>
class ObjectPool {
 public:
  ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  ~ObjectPool() {
    for (T* obj : constructed_) {
      obj->~T();
    }
  }

  // Returns a reusable object: a previously released one when available,
  // otherwise a fresh default-constructed T in the arena.
  T* Acquire() {
    if (!free_.empty()) {
      T* obj = free_.back();
      free_.pop_back();
      return obj;
    }
    T* obj = ::new (arena_.Allocate(sizeof(T), alignof(T))) T();
    constructed_.push_back(obj);
    return obj;
  }

  // Returns `obj` (previously Acquired from this pool) to the free list.
  void Release(T* obj) { free_.push_back(obj); }

  std::size_t constructed_count() const { return constructed_.size(); }
  std::size_t free_count() const { return free_.size(); }

 private:
  Arena arena_;
  std::vector<T*> constructed_;
  std::vector<T*> free_;
};

}  // namespace deepplan

#endif  // SRC_UTIL_ARENA_H_
