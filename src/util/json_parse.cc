#include "src/util/json_parse.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace deepplan {

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

JsonValue JsonValue::Bool(bool v) {
  JsonValue j(Kind::kBool);
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::Number(double v) {
  JsonValue j(Kind::kNumber);
  j.number_ = v;
  return j;
}

JsonValue JsonValue::String(std::string v) {
  JsonValue j(Kind::kString);
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue j(Kind::kArray);
  j.items_ = std::move(items);
  return j;
}

JsonValue JsonValue::Object(
    std::vector<std::pair<std::string, JsonValue>> fields) {
  JsonValue j(Kind::kObject);
  j.fields_ = std::move(fields);
  return j;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonParseResult Parse() {
    JsonParseResult result;
    JsonValue value = JsonValue::Null();
    if (!ParseValue(&value)) {
      result.error = error_;
      return result;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      result.error = "trailing garbage at byte " + std::to_string(pos_);
      return result;
    }
    result.ok = true;
    result.value = std::move(value);
    return result;
  }

 private:
  bool Err(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Eat('"')) {
      return Err("expected string");
    }
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) {
        return Err("unescaped control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return Err("truncated escape");
        }
        const char e = text_[pos_];
        switch (e) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) {
              return Err("truncated \\u escape");
            }
            for (int i = 1; i <= 4; ++i) {
              if (std::isxdigit(
                      static_cast<unsigned char>(text_[pos_ + static_cast<std::size_t>(i)])) == 0) {
                return Err("bad \\u escape");
              }
            }
            // Preserved verbatim; lossless for validation.
            s += "\\u";
            s.append(text_, pos_ + 1, 4);
            pos_ += 4;
            break;
          }
          default:
            return Err("bad escape");
        }
        ++pos_;
      } else {
        s += c;
        ++pos_;
      }
    }
    if (pos_ >= text_.size()) {
      return Err("unterminated string");
    }
    ++pos_;  // closing quote
    *out = std::move(s);
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Err("expected value");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return Err("bad number \"" + token + "\"");
    }
    *out = JsonValue::Number(v);
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Err("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      std::vector<std::pair<std::string, JsonValue>> fields;
      if (Eat('}')) {
        *out = JsonValue::Object(std::move(fields));
        return true;
      }
      do {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) {
          return false;
        }
        if (!Eat(':')) {
          return Err("expected ':' after object key");
        }
        JsonValue value = JsonValue::Null();
        if (!ParseValue(&value)) {
          return false;
        }
        fields.emplace_back(std::move(key), std::move(value));
      } while (Eat(','));
      if (!Eat('}')) {
        return Err("expected '}' or ','");
      }
      *out = JsonValue::Object(std::move(fields));
      return true;
    }
    if (c == '[') {
      ++pos_;
      std::vector<JsonValue> items;
      if (Eat(']')) {
        *out = JsonValue::Array(std::move(items));
        return true;
      }
      do {
        JsonValue value = JsonValue::Null();
        if (!ParseValue(&value)) {
          return false;
        }
        items.push_back(std::move(value));
      } while (Eat(','));
      if (!Eat(']')) {
        return Err("expected ']' or ','");
      }
      *out = JsonValue::Array(std::move(items));
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) {
        return false;
      }
      *out = JsonValue::String(std::move(s));
      return true;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = JsonValue::Bool(true);
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = JsonValue::Bool(false);
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = JsonValue::Null();
      return true;
    }
    return ParseNumber(out);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace deepplan
