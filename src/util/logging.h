// Minimal leveled logger writing to stderr. Not thread-safe beyond line
// atomicity; the simulator is single-threaded by design.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace deepplan {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global minimum level; messages below it are dropped. Default: kWarning so
// library users see problems but benches stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace log_detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is disabled.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace log_detail

#define DP_LOG_ENABLED(level) \
  (static_cast<int>(level) >= static_cast<int>(::deepplan::GetLogLevel()))

#define DP_LOG(level)                                                     \
  !DP_LOG_ENABLED(::deepplan::LogLevel::level)                            \
      ? (void)0                                                           \
      : ::deepplan::log_detail::Voidify() &                               \
            ::deepplan::log_detail::LogMessage(::deepplan::LogLevel::level, \
                                               __FILE__, __LINE__)       \
                .stream()

#define DP_CHECK(cond)                                                        \
  (cond) ? (void)0                                                           \
         : ::deepplan::log_detail::CheckFail(#cond, __FILE__, __LINE__)

namespace log_detail {
[[noreturn]] void CheckFail(const char* cond, const char* file, int line);
}  // namespace log_detail

}  // namespace deepplan

#endif  // SRC_UTIL_LOGGING_H_
