#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace deepplan {

void StreamingStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void Percentiles::EnsureSorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Percentiles::Percentile(double p) {
  DP_CHECK(p >= 0.0 && p <= 100.0);
  // An empty sample has no order statistics; 0.0 matches Mean()'s convention
  // so callers summarizing zero-request windows need no special case.
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  if (samples_.size() == 1) {
    return samples_[0];
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) {
    return samples_.back();
  }
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double Percentiles::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

double Percentiles::Max() {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  return samples_.back();
}

double Percentiles::Min() {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  return samples_.front();
}

}  // namespace deepplan
