#include "src/util/table.h"

#include <algorithm>
#include <cstdio>

#include "src/util/logging.h"

namespace deepplan {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  DP_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
    }
    os << "\n";
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace deepplan
