#include "src/util/chrome_trace.h"

#include <fstream>
#include <map>
#include <sstream>

namespace deepplan {

namespace {

void AppendEscaped(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
}

}  // namespace

std::string ChromeTraceWriter::ToJson(const std::vector<TimelineEvent>& events) {
  // Stable small integer ids per track, in first-appearance order.
  std::map<std::string, int> track_ids;
  for (const auto& e : events) {
    track_ids.emplace(e.track, static_cast<int>(track_ids.size()));
  }
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, tid] : track_ids) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    AppendEscaped(os, track);
    os << "\"}}";
  }
  for (const auto& e : events) {
    os << ",{\"ph\":\"X\",\"pid\":0,\"tid\":" << track_ids[e.track] << ",\"name\":\"";
    AppendEscaped(os, e.name);
    os << "\",\"ts\":" << ToMicros(e.start) << ",\"dur\":" << ToMicros(e.duration)
       << "}";
  }
  os << "]}";
  return os.str();
}

bool ChromeTraceWriter::WriteTo(const std::string& path,
                                const std::vector<TimelineEvent>& events) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ToJson(events);
  return static_cast<bool>(out);
}

}  // namespace deepplan
