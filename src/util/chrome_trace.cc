#include "src/util/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "src/util/json.h"

namespace deepplan {

namespace {

void AppendEscaped(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

// Deterministic event order: timestamp, then process, then (for equal
// timestamps) longer spans first so parents precede the slices they enclose,
// then track/name/phase. std::stable_sort keeps insertion order for full
// ties, so identical inputs always render to identical bytes.
bool EventBefore(const TraceEvent& a, const TraceEvent& b) {
  if (a.ts != b.ts) {
    return a.ts < b.ts;
  }
  if (a.pid != b.pid) {
    return a.pid < b.pid;
  }
  if (a.duration != b.duration) {
    return a.duration > b.duration;  // parents before enclosed children
  }
  if (a.track != b.track) {
    return a.track < b.track;
  }
  if (a.name != b.name) {
    return a.name < b.name;
  }
  if (a.phase != b.phase) {
    return a.phase < b.phase;  // async begins before same-timestamp ends
  }
  return a.id < b.id;
}

}  // namespace

std::string ChromeTraceWriter::ToJson(const std::vector<TimelineEvent>& events) {
  TraceDocument doc;
  doc.events.reserve(events.size());
  for (const TimelineEvent& e : events) {
    doc.events.push_back(
        TraceEvent{TracePhase::kSpan, 0, e.track, e.name, e.start, e.duration, 0.0});
  }
  return ToJson(doc);
}

std::string ChromeTraceWriter::ToJson(const TraceDocument& doc) {
  std::vector<TraceEvent> events = doc.events;
  std::stable_sort(events.begin(), events.end(), EventBefore);

  // Track ids from the sorted (pid, track) set of thread-track events; tids
  // restart per process. Counter events carry no tid (their `track` is the
  // counter name itself).
  std::map<std::pair<int, std::string>, int> tids;
  for (const TraceEvent& e : events) {
    if (e.phase != TracePhase::kCounter) {
      tids.emplace(std::make_pair(e.pid, e.track), 0);
    }
  }
  {
    int last_pid = -1;
    int next_tid = 0;
    for (auto& [key, tid] : tids) {
      if (key.first != last_pid) {
        last_pid = key.first;
        next_tid = 0;
      }
      tid = next_tid++;
    }
  }

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&os, &first]() {
    if (!first) {
      os << ",";
    }
    first = false;
  };

  // Process-name metadata: only when the document names processes, for every
  // pid any event references.
  if (!doc.process_names.empty()) {
    std::map<int, std::string> pids;
    for (const TraceEvent& e : events) {
      if (pids.count(e.pid) != 0) {
        continue;
      }
      const auto idx = static_cast<std::size_t>(e.pid);
      std::string name = e.pid >= 0 && idx < doc.process_names.size()
                             ? doc.process_names[idx]
                             : "";
      pids.emplace(e.pid, name.empty() ? "pid " + std::to_string(e.pid) : name);
    }
    for (const auto& [pid, name] : pids) {
      comma();
      os << "{\"ph\":\"M\",\"pid\":" << pid
         << ",\"name\":\"process_name\",\"args\":{\"name\":\"";
      AppendEscaped(os, name);
      os << "\"}}";
    }
  }
  for (const auto& [key, tid] : tids) {
    comma();
    os << "{\"ph\":\"M\",\"pid\":" << key.first << ",\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    AppendEscaped(os, key.second);
    os << "\"}}";
  }

  for (const TraceEvent& e : events) {
    comma();
    switch (e.phase) {
      case TracePhase::kSpan:
        os << "{\"ph\":\"X\",\"pid\":" << e.pid << ",\"tid\":"
           << tids[{e.pid, e.track}] << ",\"name\":\"";
        AppendEscaped(os, e.name);
        os << "\",\"ts\":" << Json::Num(ToMicros(e.ts))
           << ",\"dur\":" << Json::Num(ToMicros(e.duration)) << "}";
        break;
      case TracePhase::kInstant:
        os << "{\"ph\":\"i\",\"pid\":" << e.pid << ",\"tid\":"
           << tids[{e.pid, e.track}] << ",\"name\":\"";
        AppendEscaped(os, e.name);
        os << "\",\"ts\":" << Json::Num(ToMicros(e.ts)) << ",\"s\":\"t\"}";
        break;
      case TracePhase::kCounter:
        os << "{\"ph\":\"C\",\"pid\":" << e.pid << ",\"name\":\"";
        AppendEscaped(os, e.track);
        os << "\",\"ts\":" << Json::Num(ToMicros(e.ts)) << ",\"args\":{\"";
        AppendEscaped(os, e.name);
        os << "\":" << Json::Num(e.value) << "}}";
        break;
      case TracePhase::kAsyncBegin:
      case TracePhase::kAsyncEnd:
        os << "{\"ph\":\"" << (e.phase == TracePhase::kAsyncBegin ? "b" : "e")
           << "\",\"pid\":" << e.pid << ",\"tid\":" << tids[{e.pid, e.track}]
           << ",\"cat\":\"";
        AppendEscaped(os, e.track);
        os << "\",\"id\":" << e.id << ",\"name\":\"";
        AppendEscaped(os, e.name);
        os << "\",\"ts\":" << Json::Num(ToMicros(e.ts)) << "}";
        break;
    }
  }
  os << "]}";
  return os.str();
}

bool ChromeTraceWriter::WriteTo(const std::string& path,
                                const std::vector<TimelineEvent>& events) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ToJson(events);
  return static_cast<bool>(out);
}

bool ChromeTraceWriter::WriteTo(const std::string& path, const TraceDocument& doc) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ToJson(doc) << "\n";
  return static_cast<bool>(out);
}

}  // namespace deepplan
