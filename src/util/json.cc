#include "src/util/json.h"

#include <cmath>
#include <cstdio>

namespace deepplan {

std::string Json::Str(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string Json::Num(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string Json::Int(std::int64_t v) { return std::to_string(v); }

std::string Json::Bool(bool v) { return v ? "true" : "false"; }

JsonObject& JsonObject::SetRaw(const std::string& key, std::string raw_json) {
  fields_.emplace_back(key, std::move(raw_json));
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, const std::string& string_value) {
  return SetRaw(key, Json::Str(string_value));
}

JsonObject& JsonObject::Set(const std::string& key, const char* string_value) {
  return SetRaw(key, Json::Str(string_value));
}

JsonObject& JsonObject::Set(const std::string& key, double v) {
  return SetRaw(key, Json::Num(v));
}

JsonObject& JsonObject::Set(const std::string& key, std::int64_t v) {
  return SetRaw(key, Json::Int(v));
}

JsonObject& JsonObject::Set(const std::string& key, int v) {
  return SetRaw(key, Json::Int(v));
}

JsonObject& JsonObject::Set(const std::string& key, bool v) {
  return SetRaw(key, Json::Bool(v));
}

std::string JsonObject::Render() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) {
      out.push_back(',');
    }
    out += Json::Str(fields_[i].first);
    out.push_back(':');
    out += fields_[i].second;
  }
  out.push_back('}');
  return out;
}

JsonArray& JsonArray::AddRaw(std::string raw_json) {
  items_.push_back(std::move(raw_json));
  return *this;
}

JsonArray& JsonArray::Add(const std::string& string_value) {
  return AddRaw(Json::Str(string_value));
}

JsonArray& JsonArray::Add(double v) { return AddRaw(Json::Num(v)); }

JsonArray& JsonArray::Add(std::int64_t v) { return AddRaw(Json::Int(v)); }

JsonArray& JsonArray::Add(int v) { return AddRaw(Json::Int(v)); }

std::string JsonArray::Render() const {
  std::string out = "[";
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) {
      out.push_back(',');
    }
    out += items_[i];
  }
  out.push_back(']');
  return out;
}

}  // namespace deepplan
