#include "src/util/sweep.h"

#include <cstdlib>
#include <string>
#include <thread>

namespace deepplan {

int DefaultSweepJobs() {
  if (const char* env = std::getenv("DEEPPLAN_JOBS")) {
    char* end = nullptr;
    const long jobs = std::strtol(env, &end, 10);
    if (end != env && *end == '\0') {
      return jobs < 1 ? 1 : static_cast<int>(jobs);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw < 1 ? 1 : static_cast<int>(hw);
}

}  // namespace deepplan
