// Summary statistics and percentile estimation used across benches and the
// serving metrics pipeline.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace deepplan {

// Streaming mean/variance/min/max (Welford). O(1) memory, no percentiles.
class StreamingStats {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  // Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exact percentile over a retained sample vector. Suitable for up to a few
// million samples (serving experiments keep one double per request).
class Percentiles {
 public:
  void Add(double x) { samples_.push_back(x); }
  void Reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Linear-interpolated percentile, p in [0, 100]. Sorts lazily. Defined on
  // degenerate samples: 0.0 when empty (matching Mean()), the sole sample
  // when count() == 1.
  double Percentile(double p);
  double Median() { return Percentile(50.0); }
  double Mean() const;
  double Max();  // 0.0 when empty
  double Min();  // 0.0 when empty

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted();

  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace deepplan

#endif  // SRC_UTIL_STATS_H_
