// Minimal JSON document builder for machine-readable bench output
// (BENCH_<name>.json). Insertion-ordered objects and deterministic number
// formatting, so identical experiment results render to identical bytes.
// Build-only — parsing stays in the tests that consume the output.
#ifndef SRC_UTIL_JSON_H_
#define SRC_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace deepplan {

// Scalar encoders: each returns the value rendered as a JSON token.
struct Json {
  static std::string Str(const std::string& s);  // quoted + escaped
  static std::string Num(double v);              // %.12g; NaN/Inf become null
  static std::string Int(std::int64_t v);
  static std::string Bool(bool v);
};

// Object with insertion-ordered keys. Set() escapes strings; SetRaw() takes a
// pre-rendered JSON token, which is how objects and arrays nest (pass another
// builder's Render() output).
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, const std::string& string_value);
  JsonObject& Set(const std::string& key, const char* string_value);
  JsonObject& Set(const std::string& key, double v);
  JsonObject& Set(const std::string& key, std::int64_t v);
  JsonObject& Set(const std::string& key, int v);
  JsonObject& Set(const std::string& key, bool v);
  JsonObject& SetRaw(const std::string& key, std::string raw_json);

  bool empty() const { return fields_.empty(); }
  std::string Render() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

class JsonArray {
 public:
  JsonArray& Add(const std::string& string_value);
  JsonArray& Add(double v);
  JsonArray& Add(std::int64_t v);
  JsonArray& Add(int v);
  JsonArray& AddRaw(std::string raw_json);

  bool empty() const { return items_.empty(); }
  std::string Render() const;

 private:
  std::vector<std::string> items_;
};

}  // namespace deepplan

#endif  // SRC_UTIL_JSON_H_
