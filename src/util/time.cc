#include "src/util/time.h"

#include <cmath>
#include <cstdio>

namespace deepplan {

std::string FormatDuration(Nanos ns) {
  char buf[64];
  const double v = static_cast<double>(ns);
  if (ns < 0) {
    // Prepend via insert rather than `"-" + ...`: the char* operator+ trips a
    // GCC 12 -Wstringop false positive when inlined at -O2.
    std::string positive = FormatDuration(-ns);
    positive.insert(positive.begin(), '-');
    return positive;
  }
  if (ns < kNanosPerMicro) {
    std::snprintf(buf, sizeof(buf), "%ldns", static_cast<long>(ns));
  } else if (ns < kNanosPerMilli) {
    std::snprintf(buf, sizeof(buf), "%.2fus", v / kNanosPerMicro);
  } else if (ns < kNanosPerSecond) {
    std::snprintf(buf, sizeof(buf), "%.2fms", v / kNanosPerMilli);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", v / kNanosPerSecond);
  }
  return buf;
}

std::string FormatBytes(std::int64_t bytes) {
  char buf[64];
  const double v = static_cast<double>(bytes);
  constexpr double kKiB = 1024.0;
  constexpr double kMiB = kKiB * 1024.0;
  constexpr double kGiB = kMiB * 1024.0;
  if (bytes < 0) {
    std::string positive = FormatBytes(-bytes);
    positive.insert(positive.begin(), '-');
    return positive;
  }
  if (v < kKiB) {
    std::snprintf(buf, sizeof(buf), "%ldB", static_cast<long>(bytes));
  } else if (v < kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2fKiB", v / kKiB);
  } else if (v < kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2fMiB", v / kMiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fGiB", v / kGiB);
  }
  return buf;
}

}  // namespace deepplan
