#include "src/util/time.h"

#include <cmath>
#include <cstdio>

namespace deepplan {

std::string FormatDuration(Nanos ns) {
  char buf[64];
  const double v = static_cast<double>(ns);
  if (ns < 0) {
    return "-" + FormatDuration(-ns);
  }
  if (ns < kNanosPerMicro) {
    std::snprintf(buf, sizeof(buf), "%ldns", static_cast<long>(ns));
  } else if (ns < kNanosPerMilli) {
    std::snprintf(buf, sizeof(buf), "%.2fus", v / kNanosPerMicro);
  } else if (ns < kNanosPerSecond) {
    std::snprintf(buf, sizeof(buf), "%.2fms", v / kNanosPerMilli);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", v / kNanosPerSecond);
  }
  return buf;
}

std::string FormatBytes(std::int64_t bytes) {
  char buf[64];
  const double v = static_cast<double>(bytes);
  constexpr double kKiB = 1024.0;
  constexpr double kMiB = kKiB * 1024.0;
  constexpr double kGiB = kMiB * 1024.0;
  if (bytes < 0) {
    return "-" + FormatBytes(-bytes);
  }
  if (v < kKiB) {
    std::snprintf(buf, sizeof(buf), "%ldB", static_cast<long>(bytes));
  } else if (v < kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2fKiB", v / kKiB);
  } else if (v < kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2fMiB", v / kMiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fGiB", v / kGiB);
  }
  return buf;
}

}  // namespace deepplan
