// Deterministic, seedable random number generation (xoshiro256++ seeded via
// splitmix64). Every stochastic component in the simulator takes an explicit
// Rng so whole experiments replay bit-identically from a seed.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

namespace deepplan {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Raw 64 random bits.
  std::uint64_t Next();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  // Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  // Exponential with the given rate (mean 1/rate). rate must be > 0.
  double NextExponential(double rate);

  // Standard normal via Box-Muller (no cached spare; stateless per call pair).
  double NextGaussian(double mean, double stddev);

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64).
  std::uint64_t NextPoisson(double mean);

  // Bounded Pareto-ish popularity sample: Zipf over [0, n) with exponent s,
  // via rejection-inversion. Used for skewed model popularity.
  std::uint64_t NextZipf(std::uint64_t n, double s);

  // Derive an independent child stream (useful to give each component its own
  // stream without correlation).
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace deepplan

#endif  // SRC_UTIL_RNG_H_
