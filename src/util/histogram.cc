#include "src/util/histogram.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace deepplan {

LatencyHistogram::LatencyHistogram(double min_value, double max_value,
                                   int buckets_per_decade) {
  DP_CHECK(min_value > 0.0);
  DP_CHECK(max_value > min_value);
  DP_CHECK(buckets_per_decade > 0);
  min_value_ = min_value;
  log_min_ = std::log10(min_value);
  log_step_ = 1.0 / buckets_per_decade;
  const double decades = std::log10(max_value) - log_min_;
  const auto n = static_cast<std::size_t>(std::ceil(decades * buckets_per_decade)) + 1;
  counts_.assign(n, 0);
}

std::size_t LatencyHistogram::BucketFor(double value) const {
  if (value <= min_value_) {
    return 0;
  }
  const double idx = (std::log10(value) - log_min_) / log_step_;
  auto b = static_cast<std::size_t>(idx);
  if (b >= counts_.size()) {
    b = counts_.size() - 1;
  }
  return b;
}

double LatencyHistogram::BucketUpper(std::size_t index) const {
  return std::pow(10.0, log_min_ + log_step_ * static_cast<double>(index + 1));
}

void LatencyHistogram::Add(double value) {
  ++counts_[BucketFor(value)];
  if (count_ == 0) {
    min_seen_ = value;
    max_seen_ = value;
  } else {
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
  }
  ++count_;
  sum_ += value;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  DP_CHECK(counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_seen_ = other.min_seen_;
      max_seen_ = other.max_seen_;
    } else {
      min_seen_ = std::min(min_seen_, other.min_seen_);
      max_seen_ = std::max(max_seen_, other.max_seen_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::Reset() {
  for (auto& c : counts_) {
    c = 0;
  }
  count_ = 0;
  sum_ = 0.0;
  min_seen_ = 0.0;
  max_seen_ = 0.0;
}

double LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  const auto target =
      static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      return BucketUpper(i);
    }
  }
  return BucketUpper(counts_.size() - 1);
}

HistogramSummary LatencyHistogram::Summary() const {
  HistogramSummary summary;
  if (count_ == 0) {
    return summary;
  }
  summary.count = count_;
  summary.mean = Mean();
  summary.min = min_seen_;
  summary.max = max_seen_;
  summary.p50 = Percentile(50.0);
  summary.p95 = Percentile(95.0);
  summary.p99 = Percentile(99.0);
  return summary;
}

}  // namespace deepplan
