#include "src/util/thread_pool.h"

namespace deepplan {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) {
    num_threads = 1;
  }
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {  // stop_ set and nothing left to run
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace deepplan
