#include "src/util/thread_pool.h"

#include <utility>

namespace deepplan {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) {
    num_threads = 1;
  }
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  idle_cv_.Wait(mu_, [this] {
    mu_.AssertHeld();
    return queue_.empty() && active_ == 0;
  });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      work_cv_.Wait(mu_, [this] {
        mu_.AssertHeld();
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) {  // stop_ set and nothing left to run
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    bool drained = false;
    {
      MutexLock lock(mu_);
      --active_;
      drained = queue_.empty() && active_ == 0;
    }
    if (drained) {
      idle_cv_.NotifyAll();
    }
  }
}

}  // namespace deepplan
