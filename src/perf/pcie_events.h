// PCIe read-event accounting, mirroring the paper's PCM (PCIeRdCur) hardware
// counter methodology (Table 1): every 64-byte payload crossing the root
// complex is one event.
#ifndef SRC_PERF_PCIE_EVENTS_H_
#define SRC_PERF_PCIE_EVENTS_H_

#include <cstdint>

#include "src/model/layer.h"
#include "src/perf/perf_model.h"

namespace deepplan {

class PcieEventCounter {
 public:
  explicit PcieEventCounter(const PerfModel* perf) : perf_(perf) {}

  // Events for a one-shot host->GPU load of the layer's parameters.
  std::int64_t LoadEvents(const Layer& layer) const;

  // Events for one direct-host-access inference over the layer.
  std::int64_t DhaEvents(const Layer& layer, int batch = 1) const;

 private:
  const PerfModel* perf_;
};

}  // namespace deepplan

#endif  // SRC_PERF_PCIE_EVENTS_H_
