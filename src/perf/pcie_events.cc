#include "src/perf/pcie_events.h"

#include "src/util/logging.h"

namespace deepplan {

std::int64_t PcieEventCounter::LoadEvents(const Layer& layer) const {
  const std::int64_t payload = perf_->pcie().payload_bytes;
  DP_CHECK(payload > 0);
  return (layer.param_bytes + payload - 1) / payload;
}

std::int64_t PcieEventCounter::DhaEvents(const Layer& layer, int batch) const {
  const std::int64_t payload = perf_->pcie().payload_bytes;
  DP_CHECK(payload > 0);
  const std::int64_t traffic = perf_->DhaTrafficBytes(layer, batch);
  return (traffic + payload - 1) / payload;
}

}  // namespace deepplan
