#include "src/perf/perf_model.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace deepplan {

PerfModel::PerfModel(GpuSpec gpu, PcieSpec pcie, PerfCalibration cal)
    : gpu_(std::move(gpu)), pcie_(std::move(pcie)), cal_(cal) {
  DP_CHECK(gpu_.fp32_tflops > 0);
  DP_CHECK(pcie_.effective_bw_bytes_per_sec > 0);
}

Nanos PerfModel::DispatchOverhead(LayerKind kind) const {
  switch (kind) {
    case LayerKind::kConv2d:
      return cal_.dispatch_conv;
    case LayerKind::kBatchNorm:
      return cal_.dispatch_bn;
    case LayerKind::kLinear:
      return cal_.dispatch_linear;
    case LayerKind::kLayerNorm:
      return cal_.dispatch_ln;
    case LayerKind::kEmbedding:
      return cal_.dispatch_embedding;
    case LayerKind::kAttention:
      return cal_.dispatch_attention;
    case LayerKind::kActivation:
    case LayerKind::kPooling:
    case LayerKind::kResidual:
      return cal_.dispatch_elementwise;
  }
  return 0;
}

Nanos PerfModel::DhaPenalty(LayerKind kind) const {
  switch (kind) {
    case LayerKind::kEmbedding:
      return cal_.dha_penalty_embedding;
    case LayerKind::kConv2d:
      return cal_.dha_penalty_conv;
    case LayerKind::kLinear:
      return cal_.dha_penalty_linear;
    case LayerKind::kBatchNorm:
      return cal_.dha_penalty_bn;
    case LayerKind::kLayerNorm:
      return cal_.dha_penalty_ln;
    case LayerKind::kActivation:
    case LayerKind::kPooling:
    case LayerKind::kAttention:
    case LayerKind::kResidual:
      return 0;
  }
  return 0;
}

Nanos PerfModel::LoadTime(const Layer& layer) const {
  if (!layer.has_params()) {
    return 0;
  }
  const double secs =
      static_cast<double>(layer.param_bytes) / pcie_.effective_bw_bytes_per_sec;
  return cal_.pcie_transfer_overhead + static_cast<Nanos>(secs * kNanosPerSecond);
}

Nanos PerfModel::NvlinkTime(const Layer& layer, const NvlinkSpec& nvlink) const {
  if (!layer.has_params()) {
    return 0;
  }
  const double secs = static_cast<double>(layer.param_bytes) / nvlink.bw_bytes_per_sec;
  return nvlink.transfer_latency + static_cast<Nanos>(secs * kNanosPerSecond);
}

Nanos PerfModel::ComputeTime(const Layer& layer, int batch) const {
  const double flops = static_cast<double>(layer.flops) * batch;
  const double compute_secs =
      flops / (gpu_.fp32_tflops * 1e12 * gpu_.compute_efficiency);
  const double mem_bytes =
      static_cast<double>(layer.act_bytes) * batch + static_cast<double>(layer.param_bytes);
  const double mem_secs = mem_bytes / gpu_.mem_bw_bytes_per_sec;
  return static_cast<Nanos>(std::max(compute_secs, mem_secs) * kNanosPerSecond);
}

Nanos PerfModel::ExecInMemory(const Layer& layer, int batch) const {
  DP_CHECK(batch >= 1);
  return DispatchOverhead(layer.kind) + ComputeTime(layer, batch);
}

std::int64_t PerfModel::DhaTrafficBytes(const Layer& layer, int batch) const {
  if (layer.dha_traffic_scales_with_batch) {
    return layer.dha_param_traffic_bytes * batch;
  }
  return layer.dha_param_traffic_bytes;
}

Nanos PerfModel::DhaPcieTime(const Layer& layer, int batch) const {
  DP_CHECK(batch >= 1);
  if (!layer.has_params()) {
    return 0;
  }
  const double traffic = static_cast<double>(DhaTrafficBytes(layer, batch));
  const double pcie_secs =
      traffic / (pcie_.effective_bw_bytes_per_sec * cal_.dha_bw_efficiency);
  return static_cast<Nanos>(pcie_secs * kNanosPerSecond);
}

Nanos PerfModel::ExecDha(const Layer& layer, int batch) const {
  DP_CHECK(batch >= 1);
  if (!layer.has_params()) {
    return ExecInMemory(layer, batch);
  }
  // Compute overlaps poorly with dependent zero-copy reads, so the PCIe term
  // adds to (rather than hides behind) the arithmetic.
  return DispatchOverhead(layer.kind) + DhaPenalty(layer.kind) + pcie_.access_latency +
         ComputeTime(layer, batch) + DhaPcieTime(layer, batch);
}

Nanos PerfModel::WarmLatency(const Model& model, int batch) const {
  Nanos total = 0;
  for (const Layer& l : model.layers()) {
    total += ExecInMemory(l, batch);
  }
  return total;
}

Nanos PerfModel::TotalLoadTime(const Model& model) const {
  Nanos total = 0;
  for (const Layer& l : model.layers()) {
    total += LoadTime(l);
  }
  return total;
}

}  // namespace deepplan
