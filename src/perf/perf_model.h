// Analytical per-layer cost model, calibrated against the paper's own
// measurements (Section 3, Tables 1-2, Figure 5):
//   * load time      = DMA setup + param bytes / effective PCIe bandwidth
//   * in-memory exec = max(compute, HBM traffic) + per-kind dispatch overhead
//   * DHA exec       = compute + (DHA PCIe traffic / derated PCIe bandwidth)
//                      + per-kind zero-copy penalty + dispatch overhead
// DHA PCIe traffic comes straight from Table 1 semantics (embeddings touch
// only looked-up rows; weight-reuse layers re-read params by a reuse factor).
#ifndef SRC_PERF_PERF_MODEL_H_
#define SRC_PERF_PERF_MODEL_H_

#include <cstdint>

#include "src/hw/gpu.h"
#include "src/model/model.h"
#include "src/util/time.h"

namespace deepplan {

// Tunable calibration constants. Defaults reproduce the paper's V100/PCIe 3.0
// numbers; tests pin the resulting headline latencies.
struct PerfCalibration {
  // Framework dispatch + kernel launch overhead per layer, by kind.
  Nanos dispatch_conv = Micros(60);
  Nanos dispatch_bn = Micros(45);
  Nanos dispatch_linear = Micros(8);
  Nanos dispatch_ln = Micros(15);
  Nanos dispatch_embedding = Micros(30);
  Nanos dispatch_attention = Micros(35);
  Nanos dispatch_elementwise = Micros(20);  // activation / pooling / residual

  // Per-transfer DMA setup cost for one pinned-memory host->GPU layer copy.
  Nanos pcie_transfer_overhead = Micros(20);

  // Fraction of the bulk PCIe bandwidth achieved by zero-copy accesses.
  double dha_bw_efficiency = 0.75;

  // Fixed extra cost of executing a layer zero-copy (address translation,
  // non-coalesced access tails), by kind. LayerNorm re-reads its tiny
  // gain/bias vectors per token tile over PCIe latency, which is why the
  // paper finds load-then-execute wins for LN but not BN.
  Nanos dha_penalty_embedding = Micros(15);
  Nanos dha_penalty_conv = Micros(10);
  Nanos dha_penalty_linear = Micros(10);
  Nanos dha_penalty_bn = Micros(2);
  Nanos dha_penalty_ln = Micros(40);
};

class PerfModel {
 public:
  PerfModel(GpuSpec gpu, PcieSpec pcie, PerfCalibration cal = PerfCalibration());

  const GpuSpec& gpu() const { return gpu_; }
  const PcieSpec& pcie() const { return pcie_; }
  const PerfCalibration& calibration() const { return cal_; }

  // Host->GPU transfer time of one layer's parameters (pinned memory, DMA).
  Nanos LoadTime(const Layer& layer) const;

  // GPU->GPU forwarding time of one layer's parameters over NVLink.
  Nanos NvlinkTime(const Layer& layer, const NvlinkSpec& nvlink) const;

  // Execution with parameters resident in GPU memory.
  Nanos ExecInMemory(const Layer& layer, int batch = 1) const;

  // Execution with parameters left in host memory (direct-host-access).
  // Parameter-free layers fall back to in-memory cost.
  Nanos ExecDha(const Layer& layer, int batch = 1) const;

  // DHA parameter traffic over PCIe for the given batch (bytes).
  std::int64_t DhaTrafficBytes(const Layer& layer, int batch = 1) const;

  // The PCIe-bandwidth-dependent slice of ExecDha: time spent streaming the
  // layer's parameters over the link. The remainder of ExecDha (dispatch,
  // penalty, access latency, compute) is bandwidth-independent, so
  // ExecDha(bw*k) ~= ExecDha(bw) - DhaPcieTime(bw) + DhaPcieTime(bw)/k —
  // the decomposition the what-if replay engine relies on. 0 for
  // parameter-free layers.
  Nanos DhaPcieTime(const Layer& layer, int batch = 1) const;

  // Whole-model helpers.
  Nanos WarmLatency(const Model& model, int batch = 1) const;
  Nanos TotalLoadTime(const Model& model) const;

  Nanos DispatchOverhead(LayerKind kind) const;
  Nanos DhaPenalty(LayerKind kind) const;

 private:
  Nanos ComputeTime(const Layer& layer, int batch) const;

  GpuSpec gpu_;
  PcieSpec pcie_;
  PerfCalibration cal_;
};

}  // namespace deepplan

#endif  // SRC_PERF_PERF_MODEL_H_
