// Umbrella header: the public API surface of DeepPlan-Sim.
//
// Typical usage (see examples/quickstart.cc):
//   Model model = ModelZoo::BertBase();
//   Topology topo = Topology::P3_8xlarge();
//   PerfModel perf(topo.gpu(), topo.pcie());
//   Profiler profiler(&perf);
//   ModelProfile profile = profiler.Profile(model);       // one-time pre-run
//   Planner planner(&profile);
//   ExecutionPlan plan = planner.GeneratePlan(...);       // Algorithm 1 (+PT)
//   ... run it through Engine or Server ...
#ifndef SRC_DEEPPLAN_H_
#define SRC_DEEPPLAN_H_

#include "src/core/pipeline.h"
#include "src/core/plan.h"
#include "src/core/planner.h"
#include "src/core/profile.h"
#include "src/core/profiler.h"
#include "src/core/transmission.h"
#include "src/engine/engine.h"
#include "src/engine/strategies.h"
#include "src/hw/gpu.h"
#include "src/hw/topology.h"
#include "src/model/layer.h"
#include "src/model/model.h"
#include "src/model/zoo.h"
#include "src/obs/causal_graph.h"
#include "src/obs/critical_path.h"
#include "src/obs/journal_stream.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/profile_report.h"
#include "src/obs/selfprof.h"
#include "src/obs/trace_recorder.h"
#include "src/obs/utilization.h"
#include "src/obs/whatif/whatif.h"
#include "src/obs/whatif/whatif_report.h"
#include "src/perf/pcie_events.h"
#include "src/perf/perf_model.h"
#include "src/serving/instance.h"
#include "src/serving/metrics.h"
#include "src/serving/server.h"
#include "src/sim/fabric.h"
#include "src/sim/simulator.h"
#include "src/sim/stream.h"
#include "src/util/chrome_trace.h"
#include "src/util/flags.h"
#include "src/util/json.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/sweep.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"
#include "src/util/time.h"
#include "src/workload/azure_trace.h"
#include "src/workload/poisson.h"
#include "src/workload/synthetic.h"
#include "src/workload/trace.h"

#endif  // SRC_DEEPPLAN_H_
