// Model-instance residency management: per-GPU memory accounting with
// least-recently-used eviction (Section 5.3: "to evict an instance due to the
// lack of GPU memory, we select the least recently used instance"). An
// instance's GPU footprint is its plan's GpuResidentBytes — DeepPlan instances
// are smaller than PipeSwitch ones because DHA layers stay in host memory,
// which is exactly how DeepPlan packs 124 BERT-Base instances where
// PipeSwitch fits 100 (Figure 13).
#ifndef SRC_SERVING_INSTANCE_H_
#define SRC_SERVING_INSTANCE_H_

#include <cstdint>
#include <vector>

#include "src/hw/topology.h"
#include "src/sim/gpu_allocator.h"
#include "src/util/time.h"

namespace deepplan {

// Victim selection when GPU memory runs out. The paper uses LRU; the others
// exist for the eviction ablation bench.
enum class EvictionPolicy {
  kLru,     // least recently used (the paper's choice)
  kFifo,    // oldest resident first
  kRandom,  // uniform over idle residents (seeded)
};

const char* EvictionPolicyName(EvictionPolicy policy);

struct InstanceState {
  int id = -1;
  int model_type = -1;           // index into the server's model table
  GpuId home_gpu = -1;           // where this instance runs (static placement)
  std::int64_t footprint = 0;    // GPU-resident bytes when provisioned
  bool resident = false;
  bool busy = false;             // currently executing (not evictable)
  Nanos last_used = -1;
  Nanos resident_since = -1;
  AllocId alloc = 0;             // device-memory block while resident
};

class InstanceManager {
 public:
  InstanceManager(int num_gpus, std::int64_t usable_bytes_per_gpu,
                  EvictionPolicy policy = EvictionPolicy::kLru,
                  std::uint64_t seed = 1);

  // Registers an instance with a fixed home GPU. Returns its id.
  int AddInstance(int model_type, GpuId home_gpu, std::int64_t footprint);

  int num_instances() const { return static_cast<int>(instances_.size()); }
  const InstanceState& instance(int id) const;
  InstanceState& instance(int id);

  std::int64_t used_bytes(GpuId gpu) const;
  std::int64_t capacity_bytes() const { return capacity_; }

  // Device-memory arena of one GPU (fragmentation statistics etc.).
  const GpuAllocator& arena(GpuId gpu) const;

  // Frees space on the instance's home GPU for it (evicting idle LRU
  // instances as needed) and marks it resident. Appends evicted ids to
  // `evicted`. Returns false when the instance cannot fit even after evicting
  // everything idle.
  bool MakeResident(int id, Nanos now, std::vector<int>* evicted);

  void MarkUsed(int id, Nanos now);
  void SetBusy(int id, bool busy);
  void Evict(int id);

  // Number of instances currently resident across all GPUs.
  int ResidentCount() const;

 private:
  int PickVictim(GpuId gpu, int protected_id);

  std::vector<InstanceState> instances_;
  std::vector<GpuAllocator> arenas_;
  std::int64_t capacity_;
  EvictionPolicy policy_;
  std::uint64_t rng_state_;
};

}  // namespace deepplan

#endif  // SRC_SERVING_INSTANCE_H_
