// Multi-server cluster with a front-end router: the deployment the paper's
// introduction motivates ("a promising way to reduce the cost of GPU servers
// is to allow the number of models to extend beyond the GPU memory limit,
// leading to fewer GPU servers"). Each back-end is a full Server (its own
// GPUs, fabric, instance cache) co-simulated on one shared clock; the router
// picks a back-end per request. Because each back-end caches instances
// independently, routing policy directly shapes the cold-start rate.
#ifndef SRC_SERVING_CLUSTER_H_
#define SRC_SERVING_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/serving/server.h"

namespace deepplan {

enum class RoutingPolicy {
  kRoundRobin,        // rotate over back-ends per request
  kInstanceAffinity,  // instance id hashes to a fixed back-end (cache-friendly)
  kLeastOutstanding,  // back-end with the fewest in-flight requests
};

const char* RoutingPolicyName(RoutingPolicy policy);

struct ClusterOptions {
  int num_servers = 2;
  RoutingPolicy routing = RoutingPolicy::kInstanceAffinity;
  ServerOptions server;
};

class Cluster {
 public:
  Cluster(const Topology& topology, const PerfModel& perf, ClusterOptions options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Registers the model type on every back-end. Returns the model-type id.
  int RegisterModelType(const Model& model);

  // Declares `count` cluster-wide instances of the type. Every back-end knows
  // every instance (it may be routed anywhere); residency is per back-end.
  void AddInstances(int model_type, int count);

  int num_servers() const;
  int num_instances() const;

  // Replays the trace through the router on the shared clock; returns merged
  // metrics. Per-server metrics remain accessible via server(i).metrics().
  ServingMetrics Run(const Trace& trace);

  const Server& server(int index) const;

  // Attaches telemetry (either pointer may be nullptr) before Run(): each
  // back-end becomes its own recorder process ("server<i>") with the full
  // server instrumentation, and every routing decision lands as an instant
  // event on the "router" process plus a cluster.routed.server<i> counter.
  void EnableTelemetry(TraceRecorder* recorder, MetricsRegistry* registry);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace deepplan

#endif  // SRC_SERVING_CLUSTER_H_
