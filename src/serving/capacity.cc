#include "src/serving/capacity.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/workload/poisson.h"

namespace deepplan {

namespace {

struct ProbeResult {
  double goodput;
  double p99_ms;
  double cold_rate;
};

ProbeResult Probe(const Topology& topology, const PerfModel& perf, const Model& model,
                  const CapacityQuery& query, int concurrency) {
  ServerOptions options;
  options.strategy = query.strategy;
  options.slo = query.slo;
  Server server(topology, perf, options);
  const int type = server.RegisterModelType(model);
  server.AddInstances(type, concurrency);
  PoissonOptions w;
  w.rate_per_sec = query.rate_per_sec;
  w.num_instances = concurrency;
  w.duration =
      Seconds(static_cast<double>(query.requests_per_probe) / query.rate_per_sec);
  w.seed = query.seed;
  const ServingMetrics m = server.Run(GeneratePoissonTrace(w));
  return {m.Goodput(query.slo), m.LatencyPercentileMs(99), m.ColdStartRate()};
}

}  // namespace

CapacityReport FindMaxConcurrency(const Topology& topology, const PerfModel& perf,
                                  const Model& model, const CapacityQuery& query) {
  DP_CHECK(query.min_concurrency >= 1);
  DP_CHECK(query.max_concurrency >= query.min_concurrency);
  CapacityReport report;

  // Goodput is monotone (non-increasing) in concurrency to good approximation
  // for a fixed total rate *once the load spreads over all GPUs*: more
  // instances -> colder cache -> more cold starts. Binary search the boundary
  // from a floor of 4 instances per GPU.
  int lo = std::max(query.min_concurrency, 4 * topology.num_gpus());
  int hi = std::max(query.max_concurrency, lo);
  const ProbeResult at_min = Probe(topology, perf, model, query, lo);
  ++report.probes;
  if (at_min.goodput < query.target_goodput) {
    report.max_instances = 0;
    report.goodput = at_min.goodput;
    report.p99_ms = at_min.p99_ms;
    report.cold_start_rate = at_min.cold_rate;
    return report;
  }
  ProbeResult best = at_min;
  int best_n = lo;
  while (lo < hi) {
    const int mid = lo + (hi - lo + 1) / 2;
    const ProbeResult r = Probe(topology, perf, model, query, mid);
    ++report.probes;
    if (r.goodput >= query.target_goodput) {
      best = r;
      best_n = mid;
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  report.max_instances = best_n;
  report.goodput = best.goodput;
  report.p99_ms = best.p99_ms;
  report.cold_start_rate = best.cold_rate;
  return report;
}

}  // namespace deepplan
