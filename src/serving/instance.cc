#include "src/serving/instance.h"

#include <algorithm>

#include "src/check/validator.h"
#include "src/util/index.h"
#include "src/util/logging.h"

namespace deepplan {

const char* EvictionPolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru:
      return "LRU";
    case EvictionPolicy::kFifo:
      return "FIFO";
    case EvictionPolicy::kRandom:
      return "Random";
  }
  return "?";
}

InstanceManager::InstanceManager(int num_gpus, std::int64_t usable_bytes_per_gpu,
                                 EvictionPolicy policy, std::uint64_t seed)
    : capacity_(usable_bytes_per_gpu),
      policy_(policy),
      rng_state_(seed == 0 ? 1 : seed) {
  DP_CHECK(num_gpus > 0);
  DP_CHECK(usable_bytes_per_gpu > 0);
  arenas_.reserve(Idx(num_gpus));
  for (int g = 0; g < num_gpus; ++g) {
    // Alignment 1: instance footprints are hundreds of MB, sub-byte rounding
    // noise would only obscure the capacity numbers.
    arenas_.emplace_back(usable_bytes_per_gpu, /*alignment=*/1);
  }
}

int InstanceManager::PickVictim(GpuId gpu, int protected_id) {
  std::vector<int> candidates;
  for (const InstanceState& s : instances_) {
    if (s.resident && !s.busy && s.home_gpu == gpu && s.id != protected_id) {
      candidates.push_back(s.id);
    }
  }
  if (candidates.empty()) {
    return -1;
  }
  switch (policy_) {
    case EvictionPolicy::kLru: {
      int victim = candidates[0];
      for (const int id : candidates) {
        if (instances_[Idx(id)].last_used < instances_[Idx(victim)].last_used) {
          victim = id;
        }
      }
      return victim;
    }
    case EvictionPolicy::kFifo: {
      int victim = candidates[0];
      for (const int id : candidates) {
        if (instances_[Idx(id)].resident_since < instances_[Idx(victim)].resident_since) {
          victim = id;
        }
      }
      return victim;
    }
    case EvictionPolicy::kRandom: {
      // splitmix64 step — deterministic and independent of candidate order.
      rng_state_ += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = rng_state_;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      z ^= z >> 31;
      return candidates[z % candidates.size()];
    }
  }
  return -1;
}

int InstanceManager::AddInstance(int model_type, GpuId home_gpu,
                                 std::int64_t footprint) {
  DP_CHECK(home_gpu >= 0 && home_gpu < static_cast<int>(arenas_.size()));
  DP_CHECK(footprint >= 0 && footprint <= capacity_);
  InstanceState s;
  s.id = static_cast<int>(instances_.size());
  s.model_type = model_type;
  s.home_gpu = home_gpu;
  s.footprint = footprint;
  instances_.push_back(s);
  return s.id;
}

const InstanceState& InstanceManager::instance(int id) const {
  DP_CHECK(id >= 0 && id < num_instances());
  return instances_[Idx(id)];
}

InstanceState& InstanceManager::instance(int id) {
  DP_CHECK(id >= 0 && id < num_instances());
  return instances_[Idx(id)];
}

std::int64_t InstanceManager::used_bytes(GpuId gpu) const {
  DP_CHECK(gpu >= 0 && gpu < static_cast<int>(arenas_.size()));
  return arenas_[Idx(gpu)].used_bytes();
}

const GpuAllocator& InstanceManager::arena(GpuId gpu) const {
  DP_CHECK(gpu >= 0 && gpu < static_cast<int>(arenas_.size()));
  return arenas_[Idx(gpu)];
}

bool InstanceManager::MakeResident(int id, Nanos now, std::vector<int>* evicted) {
  InstanceState& target = instance(id);
  if (target.resident) {
    MarkUsed(id, now);
    return true;
  }
  const GpuId gpu = target.home_gpu;
  // Evict until a *contiguous* block fits: total free bytes are not enough
  // when the arena is fragmented by mixed-size instances.
  std::optional<AllocId> block = arenas_[Idx(gpu)].Allocate(target.footprint);
  while (!block.has_value()) {
    const int victim = PickVictim(gpu, id);
    if (victim < 0) {
      return false;
    }
    Evict(victim);
    if (evicted != nullptr) {
      evicted->push_back(victim);
    }
    block = arenas_[Idx(gpu)].Allocate(target.footprint);
  }
  target.alloc = *block;
  target.resident = true;
  target.last_used = now;
  target.resident_since = now;
  check::SimValidator::OnMakeResident(id, arenas_[Idx(gpu)].used_bytes(), capacity_);
  return true;
}

void InstanceManager::MarkUsed(int id, Nanos now) { instance(id).last_used = now; }

void InstanceManager::SetBusy(int id, bool busy) { instance(id).busy = busy; }

void InstanceManager::Evict(int id) {
  InstanceState& s = instance(id);
  check::SimValidator::OnEvict(id, s.resident, s.busy);
  DP_CHECK(s.resident);
  DP_CHECK(!s.busy);
  s.resident = false;
  arenas_[Idx(s.home_gpu)].Free(s.alloc);
  s.alloc = 0;
}

int InstanceManager::ResidentCount() const {
  int n = 0;
  for (const InstanceState& s : instances_) {
    if (s.resident) {
      ++n;
    }
  }
  return n;
}

}  // namespace deepplan
