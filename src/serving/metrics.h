// Serving metrics: per-request records, tail latency, goodput against an SLO,
// cold-start rate, and per-minute time series (the three panels of
// Figures 13-15).
#ifndef SRC_SERVING_METRICS_H_
#define SRC_SERVING_METRICS_H_

#include <cstdint>
#include <vector>

#include "src/util/stats.h"
#include "src/util/time.h"

namespace deepplan {

struct RequestRecord {
  Nanos arrival = 0;
  Nanos start = 0;       // dispatch time (queueing ends)
  Nanos completion = 0;
  int instance = -1;
  bool cold = false;
  // Cold-start decomposition (all zero for warm requests): eviction teardown,
  // then provisioning until every parameter is resident on the primary GPU.
  // Execution overlaps provisioning under pipelining, so ExecTime() is the
  // post-load execution tail — the three parts sum exactly to Latency() minus
  // QueueTime().
  Nanos evict = 0;
  Nanos load = 0;
  int evictions = 0;     // instances evicted to make room

  Nanos Latency() const { return completion - arrival; }
  Nanos QueueTime() const { return start - arrival; }
  Nanos ColdStartTime() const { return evict + load; }
  Nanos ExecTime() const { return completion - start - evict - load; }
};

// Mean/p99 of each additive latency component over all requests (the paper's
// Figure 15 narrative in one table: where does the tail come from?).
struct LatencyBreakdown {
  double mean_queue_ms = 0.0;
  double p99_queue_ms = 0.0;
  double mean_cold_ms = 0.0;  // evict + provisioning; 0 for warm requests
  double p99_cold_ms = 0.0;
  double mean_exec_ms = 0.0;
  double p99_exec_ms = 0.0;
  double mean_total_ms = 0.0;
  double p99_total_ms = 0.0;
};

struct MinuteSeries {
  std::vector<double> p99_ms;
  std::vector<double> goodput;    // fraction of requests within SLO
  std::vector<std::size_t> requests;
  std::vector<std::size_t> cold_starts;
};

class ServingMetrics {
 public:
  void Record(const RequestRecord& record);

  std::size_t count() const { return records_.size(); }
  const std::vector<RequestRecord>& records() const { return records_; }

  // Latency percentile in milliseconds (p in [0,100]).
  double LatencyPercentileMs(double p) const;
  double MeanLatencyMs() const;

  // Fraction of requests with latency <= slo.
  double Goodput(Nanos slo) const;

  // Fraction of requests that triggered a cold start.
  double ColdStartRate() const;
  std::size_t ColdStartCount() const;

  // Instances evicted across all recorded requests.
  std::size_t EvictionCount() const;

  // Per-request latency decomposition (queue vs. cold-start vs. exec).
  LatencyBreakdown Breakdown() const;

  // Per-minute breakdown (Figure 15's time axis).
  MinuteSeries PerMinute(Nanos slo) const;

 private:
  std::vector<RequestRecord> records_;
};

}  // namespace deepplan

#endif  // SRC_SERVING_METRICS_H_
