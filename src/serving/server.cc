#include "src/serving/server.h"

#include <algorithm>

#include "src/core/profiler.h"
#include "src/core/transmission.h"
#include "src/obs/selfprof.h"
#include "src/util/index.h"
#include "src/util/logging.h"

namespace deepplan {

struct Server::ModelEntry {
  Model model;
  ModelProfile profile;
  ExecutionPlan plan;
  Strategy strategy = Strategy::kDeepPlanPtDha;
  std::int64_t footprint = 0;
  // Warm-path constants, cached at registration: WarmDuration and
  // WarmDhaPcieTime are pure functions of (model, plan, batch), and the batch
  // is fixed per server, so re-summing every layer on every warm hit (the
  // serving hot path) is pure waste.
  Nanos warm_duration = 0;
  Nanos warm_dha_pcie = 0;
};

struct PendingRequest {
  int instance = -1;
  Nanos arrival = 0;
  int causal = -1;  // causal-graph request id (-1 when profiling is off)
};

struct Server::Impl {
  Topology topology;
  PerfModel perf;
  ServerOptions options;

  Simulator own_sim;
  Simulator* sim = nullptr;  // &own_sim unless an external simulator is shared
  std::unique_ptr<ServerFabric> fabric;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<InstanceManager> instances;

  std::vector<ModelEntry> models;
  std::vector<int> instance_model;  // instance id -> model type
  std::vector<std::deque<PendingRequest>> queues;  // per GPU
  std::vector<bool> gpu_busy;
  int next_gpu = 0;  // round-robin placement cursor
  int outstanding = 0;
  bool warmed_up = false;

  ServingMetrics metrics;

  TraceRecorder* recorder = nullptr;
  MetricsRegistry* registry = nullptr;
  int pid = 0;
  // Pairs async queue-wait begin/end events; waits overlap whenever several
  // requests queue behind one GPU, so they cannot be complete slices.
  std::uint64_t next_queue_span_id = 0;
  CausalGraph* causal = nullptr;
  int causal_process = 0;
  std::int64_t cumulative_requests = 0;  // cum/requests counter track
  // Requests retired so far, surfaced to the simulator's DEEPPLAN_PROGRESS
  // heartbeat (registered below, removed in ~Impl).
  std::uint64_t retired = 0;

  Impl(Simulator* external_sim, const Topology& topo, const PerfModel& perf_model,
       ServerOptions opts)
      : topology(topo), perf(perf_model), options(opts) {
    sim = external_sim != nullptr ? external_sim : &own_sim;
    fabric = std::make_unique<ServerFabric>(sim, &topology);
    engine = std::make_unique<Engine>(sim, fabric.get(), &perf);
    instances = std::make_unique<InstanceManager>(
        topology.num_gpus(), options.usable_bytes_per_gpu, options.eviction_policy);
    queues.resize(Idx(topology.num_gpus()));
    gpu_busy.assign(Idx(topology.num_gpus()), false);
    sim->AddProgressCounter(&retired);
  }

  ~Impl() {
    // An external simulator outlives this server (existing contract); for the
    // owned one, members are still alive while this body runs.
    sim->RemoveProgressCounter(&retired);
  }

  void Dispatch(GpuId gpu);
  void FinishRequest(GpuId gpu, int instance, const PendingRequest& req, Nanos start,
                     bool cold, Nanos evict_delay, Nanos load_done, int num_evicted,
                     CpNodeId causal_terminal = -1);
  void NoteQueueDepth(GpuId gpu);
};

Server::Server(const Topology& topology, const PerfModel& perf, ServerOptions options)
    : impl_(std::make_unique<Impl>(nullptr, topology, perf, options)) {}

Server::Server(Simulator* sim, const Topology& topology, const PerfModel& perf,
               ServerOptions options)
    : impl_(std::make_unique<Impl>(sim, topology, perf, options)) {}

Server::~Server() = default;

int Server::RegisterModelType(Model model) {
  return RegisterModelType(std::move(model), impl_->options.strategy);
}

int Server::RegisterModelType(Model model, Strategy strategy_override) {
  Impl& s = *impl_;
  ModelEntry entry;
  entry.strategy = strategy_override;
  ProfilerOptions popts;
  popts.batch = s.options.batch;
  popts.seed = s.options.profiler_seed;
  Profiler profiler(&s.perf, popts);
  entry.profile = profiler.Profile(model);
  PipelineOptions pipeline;
  pipeline.nvlink = s.topology.nvlink();
  // Degree is topology-wide here; per-primary secondaries resolved at
  // dispatch time.
  const int degree = StrategyDegree(entry.strategy, s.topology, /*primary=*/0);
  entry.plan = MakeStrategyPlan(entry.strategy, entry.profile, degree, pipeline);
  entry.footprint = entry.plan.GpuResidentBytes(entry.profile);
  entry.model = std::move(model);
  entry.warm_duration =
      s.engine->WarmDuration(entry.model, entry.plan, s.options.batch);
  entry.warm_dha_pcie =
      s.engine->WarmDhaPcieTime(entry.model, entry.plan, s.options.batch);
  s.models.push_back(std::move(entry));
  return static_cast<int>(s.models.size() - 1);
}

void Server::AddInstances(int model_type, int count) {
  Impl& s = *impl_;
  for (int i = 0; i < count; ++i) {
    AddInstanceWithHome(model_type, s.next_gpu);
    s.next_gpu = (s.next_gpu + 1) % s.topology.num_gpus();
  }
}

int Server::AddInstanceWithHome(int model_type, GpuId home) {
  Impl& s = *impl_;
  DP_CHECK(model_type >= 0 && model_type < static_cast<int>(s.models.size()));
  const ModelEntry& entry = s.models[Idx(model_type)];
  const int id = s.instances->AddInstance(model_type, home, entry.footprint);
  s.instance_model.resize(Idx(id + 1));
  s.instance_model[Idx(id)] = model_type;
  return id;
}

int Server::num_instances() const { return impl_->instances->num_instances(); }

int Server::WarmCapacity() const { return impl_->instances->ResidentCount(); }

void Server::Impl::NoteQueueDepth(GpuId gpu) {
  if (recorder != nullptr) {
    recorder->Counter(pid, "queue/gpu" + std::to_string(gpu), "depth", sim->now(),
                      static_cast<double>(queues[Idx(gpu)].size()));
  }
  if (registry != nullptr) {
    registry->SetGauge("server.queue_depth.gpu" + std::to_string(gpu),
                       static_cast<double>(queues[Idx(gpu)].size()));
  }
}

void Server::Impl::FinishRequest(GpuId gpu, int instance, const PendingRequest& req,
                                 Nanos start, bool cold, Nanos evict_delay,
                                 Nanos load_done, int num_evicted,
                                 CpNodeId causal_terminal) {
  instances->SetBusy(instance, false);
  instances->MarkUsed(instance, sim->now());
  RequestRecord record;
  record.arrival = req.arrival;
  record.start = start;
  record.completion = sim->now();
  record.instance = instance;
  record.cold = cold;
  record.evict = evict_delay;
  record.load = load_done;
  record.evictions = num_evicted;
  metrics.Record(record);
  ++retired;
  if (recorder != nullptr) {
    const Nanos done = sim->now();
    if (cold) {
      // Phase decomposition of this cold start on its own track: the four
      // spans tile [arrival, completion] exactly (exec is the post-load tail;
      // execution overlaps the transfer under pipelining).
      const std::string track = "coldstart/gpu" + std::to_string(gpu);
      const std::string suffix = " i" + std::to_string(instance);
      // Queue waits of back-to-back cold starts overlap (B arrives while A is
      // still queued), so they go out as async intervals, which Perfetto
      // permits to overlap on one track — complete slices must nest.
      const std::uint64_t qid = next_queue_span_id++;
      const std::string queued = "queued/gpu" + std::to_string(gpu);
      recorder->AsyncBegin(pid, queued, "queue" + suffix, qid, req.arrival);
      recorder->AsyncEnd(pid, queued, "queue" + suffix, qid, start);
      if (evict_delay > 0) {
        recorder->Span(pid, track, "evict x" + std::to_string(num_evicted) + suffix,
                       start, evict_delay);
      }
      recorder->Span(pid, track, "transfer" + suffix, start + evict_delay, load_done);
      recorder->Span(pid, track, "exec" + suffix, start + evict_delay + load_done,
                     done - start - evict_delay - load_done);
    } else {
      recorder->Span(pid, "exec/gpu" + std::to_string(gpu),
                     "warm i" + std::to_string(instance), start, done - start);
    }
  }
  if (registry != nullptr) {
    registry->Observe("server.latency_ms", ToMillis(record.Latency()));
  }
  if (causal != nullptr && req.causal >= 0) {
    CpNodeId terminal = causal_terminal;
    if (!cold) {
      // Warm requests never enter the engine's cold path; their whole DAG is
      // arrival -> one exec node.
      terminal = causal->AddNode(req.causal, CpKind::kExec,
                                 "warm i" + std::to_string(instance),
                                 "exec/gpu" + std::to_string(gpu), start,
                                 sim->now());
      // DHA plans stream parameters during warm execution too; record the
      // PCIe-bandwidth-dependent share for the what-if engine.
      const ModelEntry& entry = models[Idx(instance_model[Idx(instance)])];
      const Nanos dha_pcie = entry.warm_dha_pcie;
      if (dha_pcie > 0) {
        causal->SetNodeDhaPcie(terminal, dha_pcie);
      }
      causal->AddEdge(causal->arrival_node(req.causal), terminal);
    }
    causal->EndRequest(req.causal, sim->now(), terminal);
  }
  --outstanding;
  gpu_busy[Idx(gpu)] = false;
  Dispatch(gpu);
}

void Server::Impl::Dispatch(GpuId gpu) {
  if (gpu_busy[Idx(gpu)] || queues[Idx(gpu)].empty()) {
    return;
  }
  const PendingRequest req = queues[Idx(gpu)].front();
  queues[Idx(gpu)].pop_front();
  gpu_busy[Idx(gpu)] = true;
  NoteQueueDepth(gpu);

  const int instance = req.instance;
  const int type = instance_model[Idx(instance)];
  const ModelEntry& entry = models[Idx(type)];
  const Nanos start = sim->now();
  instances->SetBusy(instance, true);

  if (instances->instance(instance).resident) {
    instances->MarkUsed(instance, start);
    if (registry != nullptr) {
      registry->AddCounter("server.warm_hits");
    }
    engine->RunWarmFor(entry.warm_duration,
                       [this, gpu, instance, req, start](const InferenceResult&) {
                         FinishRequest(gpu, instance, req, start, /*cold=*/false,
                                       /*evict_delay=*/0, /*load_done=*/0,
                                       /*num_evicted=*/0);
                       });
    return;
  }

  // Cold start: make room (LRU eviction), pay the eviction cost, then run the
  // strategy's provisioning + inference path.
  std::vector<int> evicted;
  const bool fits = instances->MakeResident(instance, start, &evicted);
  DP_CHECK(fits && "instance footprint exceeds GPU capacity");
  const int num_evicted = static_cast<int>(evicted.size());
  if (registry != nullptr) {
    registry->AddCounter("server.cold_starts");
    registry->AddCounter("server.evictions", num_evicted);
  }
  const Nanos evict_delay =
      options.eviction_cost * static_cast<Nanos>(evicted.size());
  CpNodeId causal_root = -1;
  if (causal != nullptr && req.causal >= 0) {
    causal->MarkCold(req.causal);
    causal_root = causal->arrival_node(req.causal);
    if (evict_delay > 0) {
      // Eviction spans [start, start + evict_delay] deterministically, so
      // the node can be recorded up front.
      const CpNodeId evict_node = causal->AddNode(
          req.causal, CpKind::kEvict,
          "evict x" + std::to_string(num_evicted),
          "gpu" + std::to_string(gpu), start, start + evict_delay);
      causal->AddEdge(causal_root, evict_node);
      causal_root = evict_node;
    }
  }
  sim->ScheduleAfter(evict_delay, [this, gpu, instance, req, start, type,
                                   evict_delay, num_evicted, causal_root]() {
    const ModelEntry& cold_entry = models[Idx(type)];
    std::vector<GpuId> secondaries;
    if (cold_entry.plan.num_partitions() > 1) {
      secondaries = TransmissionPlanner::ChooseSecondaries(
          topology, gpu, cold_entry.plan.num_partitions());
    }
    ColdRunOptions cold_options =
        MakeColdRunOptions(cold_entry.strategy, options.batch);
    cold_options.causal_request = req.causal;
    cold_options.causal_root = causal_root;
    engine->RunCold(cold_entry.model, cold_entry.plan, gpu, secondaries,
                    cold_options,
                    [this, gpu, instance, req, start, evict_delay,
                     num_evicted](const InferenceResult& result) {
                      FinishRequest(gpu, instance, req, start, /*cold=*/true,
                                    evict_delay, result.load_done, num_evicted,
                                    result.causal_terminal);
                    });
  });
}

void Server::Warmup() {
  std::vector<int> all(Idx(impl_->instances->num_instances()));
  for (int id = 0; id < static_cast<int>(all.size()); ++id) {
    all[Idx(id)] = id;
  }
  WarmupInstances(all);
}

void Server::WarmupInstances(const std::vector<int>& instances) {
  DP_SELFPROF_SCOPE(kWarmup);
  Impl& s = *impl_;
  if (s.warmed_up || !s.options.warmup) {
    s.warmed_up = true;
    return;
  }
  s.warmed_up = true;
  // Provision candidates (in the given order, round-robin homes) until GPUs
  // are full, mirroring the paper's pre-warmed steady state.
  for (const int id : instances) {
    const InstanceState& inst = s.instances->instance(id);
    if (s.instances->used_bytes(inst.home_gpu) + inst.footprint <=
        s.instances->capacity_bytes()) {
      std::vector<int> evicted;
      const bool ok = s.instances->MakeResident(id, 0, &evicted);
      DP_CHECK(ok);
      DP_CHECK(evicted.empty());
    }
  }
}

void Server::Submit(int instance) {
  Impl& s = *impl_;
  DP_CHECK(instance >= 0 && instance < s.instances->num_instances());
  const GpuId gpu = s.instances->instance(instance).home_gpu;
  ++s.outstanding;
  int causal_request = -1;
  if (s.causal != nullptr) {
    causal_request =
        s.causal->BeginRequest(s.causal_process, instance, s.sim->now());
  }
  s.queues[Idx(gpu)].push_back(
      PendingRequest{instance, s.sim->now(), causal_request});
  if (s.registry != nullptr) {
    s.registry->AddCounter("server.requests");
  }
  if (s.recorder != nullptr) {
    ++s.cumulative_requests;
    s.recorder->Counter(s.pid, "cum/requests", "count", s.sim->now(),
                        static_cast<double>(s.cumulative_requests));
  }
  s.NoteQueueDepth(gpu);
  s.Dispatch(gpu);
}

void Server::set_telemetry(TraceRecorder* recorder, MetricsRegistry* registry,
                           int pid) {
  Impl& s = *impl_;
  s.recorder = recorder;
  s.registry = registry;
  s.pid = pid;
  s.fabric->fabric().set_telemetry(recorder, registry, pid);
  s.engine->set_telemetry(recorder, pid);
}

void Server::set_causal(CausalGraph* graph, int process) {
  Impl& s = *impl_;
  s.causal = graph;
  s.causal_process = process;
  s.engine->set_causal(graph);
}

const ServingMetrics& Server::metrics() const { return impl_->metrics; }

int Server::OutstandingRequests() const { return impl_->outstanding; }

ServingMetrics Server::Run(const Trace& trace) {
  Impl& s = *impl_;
  Warmup();
  for (const Arrival& a : trace.arrivals()) {
    DP_CHECK(a.instance >= 0 && a.instance < s.instances->num_instances());
    s.sim->ScheduleAt(a.time, [this, a]() { Submit(a.instance); });
  }
  s.sim->Run();
  return s.metrics;
}

}  // namespace deepplan
