#include "src/serving/cluster.h"

#include "src/util/index.h"
#include "src/util/logging.h"

namespace deepplan {

const char* RoutingPolicyName(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kRoundRobin:
      return "RoundRobin";
    case RoutingPolicy::kInstanceAffinity:
      return "InstanceAffinity";
    case RoutingPolicy::kLeastOutstanding:
      return "LeastOutstanding";
  }
  return "?";
}

struct Cluster::Impl {
  ClusterOptions options;
  Simulator sim;
  std::vector<std::unique_ptr<Server>> servers;
  int num_instances = 0;
  int num_gpus_per_server = 0;
  int rr_cursor = 0;

  TraceRecorder* recorder = nullptr;
  MetricsRegistry* registry = nullptr;
  int router_pid = 0;

  int Route(int instance) {
    switch (options.routing) {
      case RoutingPolicy::kRoundRobin: {
        const int pick = rr_cursor;
        rr_cursor = (rr_cursor + 1) % static_cast<int>(servers.size());
        return pick;
      }
      case RoutingPolicy::kInstanceAffinity:
        return instance % static_cast<int>(servers.size());
      case RoutingPolicy::kLeastOutstanding: {
        // Break ties with a rotating cursor so idle back-ends share work
        // instead of the lowest index absorbing every quiet-period request.
        const int n = static_cast<int>(servers.size());
        int best = rr_cursor % n;
        for (int k = 0; k < n; ++k) {
          const int i = (rr_cursor + k) % n;
          if (servers[Idx(i)]->OutstandingRequests() <
              servers[Idx(best)]->OutstandingRequests()) {
            best = i;
          }
        }
        rr_cursor = (best + 1) % n;
        return best;
      }
    }
    return 0;
  }
};

Cluster::Cluster(const Topology& topology, const PerfModel& perf,
                 ClusterOptions options)
    : impl_(std::make_unique<Impl>()) {
  DP_CHECK(options.num_servers >= 1);
  impl_->options = options;
  impl_->num_gpus_per_server = topology.num_gpus();
  for (int i = 0; i < options.num_servers; ++i) {
    impl_->servers.push_back(
        std::make_unique<Server>(&impl_->sim, topology, perf, options.server));
  }
}

Cluster::~Cluster() = default;

int Cluster::RegisterModelType(const Model& model) {
  int type = -1;
  for (auto& server : impl_->servers) {
    type = server->RegisterModelType(model);
  }
  return type;
}

void Cluster::AddInstances(int model_type, int count) {
  Impl& c = *impl_;
  const int n = static_cast<int>(c.servers.size());
  for (int i = 0; i < count; ++i) {
    const int id = c.num_instances + i;
    for (int s = 0; s < n; ++s) {
      // Home GPU per back-end: spread each back-end's *routing shard* evenly
      // over its GPUs. Under affinity, back-end s serves ids with
      // id % n == s — a stride-n id sequence folded through id % num_gpus
      // would collapse onto a subset of GPUs, so the home follows the
      // instance's rank within the shard instead.
      const int rank_in_shard = id / n;
      c.servers[Idx(s)]->AddInstanceWithHome(model_type,
                                        rank_in_shard % c.num_gpus_per_server);
    }
  }
  c.num_instances += count;
}

int Cluster::num_servers() const { return static_cast<int>(impl_->servers.size()); }
int Cluster::num_instances() const { return impl_->num_instances; }

const Server& Cluster::server(int index) const {
  DP_CHECK(index >= 0 && index < num_servers());
  return *impl_->servers[Idx(index)];
}

void Cluster::EnableTelemetry(TraceRecorder* recorder, MetricsRegistry* registry) {
  Impl& c = *impl_;
  c.recorder = recorder;
  c.registry = registry;
  c.router_pid = recorder != nullptr ? recorder->RegisterProcess("router") : 0;
  for (std::size_t i = 0; i < c.servers.size(); ++i) {
    const int pid = recorder != nullptr
                        ? recorder->RegisterProcess("server" + std::to_string(i))
                        : 0;
    c.servers[i]->set_telemetry(recorder, registry, pid);
  }
}

ServingMetrics Cluster::Run(const Trace& trace) {
  Impl& c = *impl_;
  if (c.options.routing == RoutingPolicy::kInstanceAffinity) {
    // Pre-warm each back-end with its own shard only.
    for (int s = 0; s < static_cast<int>(c.servers.size()); ++s) {
      std::vector<int> shard;
      for (int id = s; id < c.num_instances;
           id += static_cast<int>(c.servers.size())) {
        shard.push_back(id);
      }
      c.servers[Idx(s)]->WarmupInstances(shard);
    }
  } else {
    for (auto& server : c.servers) {
      server->Warmup();
    }
  }
  for (const Arrival& a : trace.arrivals()) {
    DP_CHECK(a.instance >= 0 && a.instance < c.num_instances);
    c.sim.ScheduleAt(a.time, [this, a]() {
      Impl& impl = *impl_;
      const int target = impl.Route(a.instance);
      if (impl.recorder != nullptr) {
        std::string decision = "i";
        decision += std::to_string(a.instance);
        decision += "->s";
        decision += std::to_string(target);
        impl.recorder->Instant(impl.router_pid, "router", decision,
                               impl.sim.now());
      }
      if (impl.registry != nullptr) {
        impl.registry->AddCounter("cluster.routed.server" + std::to_string(target));
      }
      impl.servers[Idx(target)]->Submit(a.instance);
    });
  }
  c.sim.Run();
  ServingMetrics merged;
  for (auto& server : c.servers) {
    for (const RequestRecord& record : server->metrics().records()) {
      merged.Record(record);
    }
  }
  return merged;
}

}  // namespace deepplan
