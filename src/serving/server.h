// The DL inference server (Section 5.3): replays an arrival trace against a
// multi-GPU server. Each GPU runs one inference at a time (as in Clockwork);
// requests queue FIFO at their instance's home GPU. A request whose instance
// is GPU-resident runs warm; otherwise it cold-starts through the configured
// strategy (Baseline / PipeSwitch / DeepPlan DHA / PT / PT+DHA), evicting
// least-recently-used idle instances when GPU memory is short. Concurrent
// cold-starts on different GPUs contend for PCIe switch uplinks through the
// shared fabric, so parallel-transmission interference (Table 4) is modelled,
// not assumed away.
#ifndef SRC_SERVING_SERVER_H_
#define SRC_SERVING_SERVER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/strategies.h"
#include "src/obs/causal_graph.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace_recorder.h"
#include "src/serving/instance.h"
#include "src/serving/metrics.h"
#include "src/workload/trace.h"

namespace deepplan {

struct ServerOptions {
  Strategy strategy = Strategy::kDeepPlanPtDha;
  int batch = 1;
  Nanos slo = Millis(100);
  // GPU memory available for model parameters (the rest holds activations,
  // workspaces, and the parallel-transmission staging area). 10.95 GB per
  // V100 reproduces the paper's instance capacities (100 PipeSwitch / 124
  // DeepPlan BERT-Base instances on 4 GPUs, Figure 13).
  std::int64_t usable_bytes_per_gpu = 10'950'000'000;
  // Fixed cost of unloading one evicted instance (stream teardown + free).
  Nanos eviction_cost = Micros(200);
  // Victim selection when GPU memory runs out (LRU in the paper).
  EvictionPolicy eviction_policy = EvictionPolicy::kLru;
  // Pre-provision instances round-robin until GPUs are full before replay.
  bool warmup = true;
  std::uint64_t profiler_seed = 42;
};

class Server {
 public:
  Server(const Topology& topology, const PerfModel& perf, ServerOptions options);
  // Shares an external simulator (cluster co-simulation): arrivals must then
  // be fed via Submit() from callbacks scheduled on that simulator, and the
  // caller drives sim->Run().
  Server(Simulator* sim, const Topology& topology, const PerfModel& perf,
         ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Registers a model type: profiles it and generates the strategy's plan.
  // Returns the model-type id used by AddInstances. The optional override
  // lets different model types use different strategies on one server (e.g.
  // DHA for GPT-2 where PT adds nothing, PT+DHA for BERT).
  int RegisterModelType(Model model);
  int RegisterModelType(Model model, Strategy strategy_override);

  // Adds `count` instances of the model type, placed round-robin over GPUs.
  void AddInstances(int model_type, int count);
  // Adds one instance with an explicit home GPU (cluster routers use this to
  // keep a routing shard spread across all GPUs). Returns the instance id.
  int AddInstanceWithHome(int model_type, GpuId home);

  int num_instances() const;
  // Instances resident after warmup (the capacity line of Figure 13).
  int WarmCapacity() const;

  // Replays the trace (instance ids must be < num_instances). Returns the
  // metrics. Can be called once per Server. Only valid for servers that own
  // their simulator.
  ServingMetrics Run(const Trace& trace);

  // Co-simulation interface (external-simulator servers): pre-provision
  // instances, submit one request (call from a simulator callback at the
  // arrival time), and read the accumulated metrics.
  void Warmup();
  // Warmup restricted to a candidate set, in the given order (used by the
  // cluster router to pre-warm only the shard this back-end will serve).
  void WarmupInstances(const std::vector<int>& instances);
  void Submit(int instance);
  const ServingMetrics& metrics() const;

  // Requests queued or executing right now (for least-outstanding routing).
  int OutstandingRequests() const;

  // Attaches telemetry (either pointer may be nullptr) and forwards it to the
  // engine and fabric; call before Warmup()/Run(). `pid` is this server's
  // process group in the recorder (cluster runs register one per back-end).
  // While attached: per-GPU queue-depth counters ("queue/gpu<g>"), cold-start
  // phase spans on "coldstart/gpu<g>" (queue/evict/transfer/exec), warm exec
  // spans on "exec/gpu<g>", and registry counters (server.requests,
  // server.cold_starts, server.warm_hits, server.evictions) plus a
  // server.latency_ms histogram. Detached cost: one null test per hook.
  void set_telemetry(TraceRecorder* recorder, MetricsRegistry* registry,
                     int pid = 0);

  // Attaches a causal graph for critical-path profiling; call before
  // Warmup()/Run(). `process` is this server's process group in the graph.
  // Every submitted request then opens a causal request at arrival, cold
  // starts thread evict/transfer/exec nodes through the engine, and warm
  // runs record a single exec node; completion closes the request. nullptr
  // detaches; the disabled cost is one pointer test per request.
  void set_causal(CausalGraph* graph, int process = 0);

 private:
  struct ModelEntry;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace deepplan

#endif  // SRC_SERVING_SERVER_H_
