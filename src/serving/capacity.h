// Capacity planning: the operator-facing inverse of Figure 13 — "how many
// instances of this model can this server carry at this request rate while
// keeping goodput above the target?" Answered by binary search over
// concurrency, each probe being a full (deterministic) serving simulation.
#ifndef SRC_SERVING_CAPACITY_H_
#define SRC_SERVING_CAPACITY_H_

#include <cstdint>

#include "src/model/model.h"
#include "src/serving/server.h"

namespace deepplan {

struct CapacityQuery {
  Strategy strategy = Strategy::kDeepPlanPtDha;
  double rate_per_sec = 100.0;
  Nanos slo = Millis(100);
  double target_goodput = 0.99;
  // Probe fidelity: requests simulated per concurrency probe.
  int requests_per_probe = 600;
  // Search floor. Goodput is only monotone in concurrency once requests
  // spread across all GPUs — below ~4 instances per GPU the whole offered
  // rate funnels into few queues and goodput is *worse* at lower concurrency.
  // FindMaxConcurrency raises the floor to 4x the topology's GPU count.
  int min_concurrency = 16;
  int max_concurrency = 512;
  std::uint64_t seed = 42;
};

struct CapacityReport {
  int max_instances = 0;       // largest concurrency meeting the target
  double goodput = 0.0;        // at max_instances
  double p99_ms = 0.0;         // at max_instances
  double cold_start_rate = 0.0;
  int probes = 0;              // simulations run
};

// Binary-searches the largest concurrency whose goodput meets the target.
// Returns max_instances == 0 when even min_concurrency misses it.
CapacityReport FindMaxConcurrency(const Topology& topology, const PerfModel& perf,
                                  const Model& model, const CapacityQuery& query);

}  // namespace deepplan

#endif  // SRC_SERVING_CAPACITY_H_
