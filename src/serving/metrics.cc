#include "src/serving/metrics.h"

#include <algorithm>

#include "src/check/validator.h"
#include "src/util/logging.h"

namespace deepplan {

void ServingMetrics::Record(const RequestRecord& record) {
  check::SimValidator::OnRequestComplete(record.arrival, record.start,
                                         record.evict, record.load,
                                         record.completion, record.cold,
                                         record.evictions);
  DP_CHECK(record.completion >= record.start);
  DP_CHECK(record.start >= record.arrival);
  DP_CHECK(record.evict >= 0 && record.load >= 0 && record.evictions >= 0);
  DP_CHECK(record.completion >= record.start + record.evict + record.load);
  records_.push_back(record);
}

double ServingMetrics::LatencyPercentileMs(double p) const {
  if (records_.empty()) {
    return 0.0;
  }
  Percentiles pct;
  pct.Reserve(records_.size());
  for (const auto& r : records_) {
    pct.Add(ToMillis(r.Latency()));
  }
  return pct.Percentile(p);
}

double ServingMetrics::MeanLatencyMs() const {
  if (records_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const auto& r : records_) {
    sum += ToMillis(r.Latency());
  }
  return sum / static_cast<double>(records_.size());
}

double ServingMetrics::Goodput(Nanos slo) const {
  if (records_.empty()) {
    return 0.0;
  }
  std::size_t good = 0;
  for (const auto& r : records_) {
    if (r.Latency() <= slo) {
      ++good;
    }
  }
  return static_cast<double>(good) / static_cast<double>(records_.size());
}

double ServingMetrics::ColdStartRate() const {
  if (records_.empty()) {
    return 0.0;
  }
  return static_cast<double>(ColdStartCount()) / static_cast<double>(records_.size());
}

std::size_t ServingMetrics::ColdStartCount() const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.cold) {
      ++n;
    }
  }
  return n;
}

std::size_t ServingMetrics::EvictionCount() const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    n += static_cast<std::size_t>(r.evictions);
  }
  return n;
}

LatencyBreakdown ServingMetrics::Breakdown() const {
  LatencyBreakdown b;
  if (records_.empty()) {
    return b;
  }
  Percentiles queue, cold, exec, total;
  queue.Reserve(records_.size());
  cold.Reserve(records_.size());
  exec.Reserve(records_.size());
  total.Reserve(records_.size());
  for (const auto& r : records_) {
    queue.Add(ToMillis(r.QueueTime()));
    cold.Add(ToMillis(r.ColdStartTime()));
    exec.Add(ToMillis(r.ExecTime()));
    total.Add(ToMillis(r.Latency()));
  }
  b.mean_queue_ms = queue.Mean();
  b.p99_queue_ms = queue.Percentile(99.0);
  b.mean_cold_ms = cold.Mean();
  b.p99_cold_ms = cold.Percentile(99.0);
  b.mean_exec_ms = exec.Mean();
  b.p99_exec_ms = exec.Percentile(99.0);
  b.mean_total_ms = total.Mean();
  b.p99_total_ms = total.Percentile(99.0);
  check::SimValidator::OnBreakdown(b.mean_queue_ms, b.mean_cold_ms,
                                   b.mean_exec_ms, b.mean_total_ms);
  return b;
}

MinuteSeries ServingMetrics::PerMinute(Nanos slo) const {
  MinuteSeries series;
  std::vector<Percentiles> latencies;
  std::vector<std::size_t> good;
  for (const auto& r : records_) {
    const auto minute = static_cast<std::size_t>(r.arrival / (60 * kNanosPerSecond));
    if (minute >= latencies.size()) {
      latencies.resize(minute + 1);
      good.resize(minute + 1, 0);
      series.requests.resize(minute + 1, 0);
      series.cold_starts.resize(minute + 1, 0);
    }
    latencies[minute].Add(ToMillis(r.Latency()));
    ++series.requests[minute];
    if (r.Latency() <= slo) {
      ++good[minute];
    }
    if (r.cold) {
      ++series.cold_starts[minute];
    }
  }
  series.p99_ms.resize(latencies.size(), 0.0);
  series.goodput.resize(latencies.size(), 0.0);
  for (std::size_t m = 0; m < latencies.size(); ++m) {
    if (latencies[m].count() > 0) {
      series.p99_ms[m] = latencies[m].Percentile(99.0);
      series.goodput[m] = static_cast<double>(good[m]) /
                          static_cast<double>(series.requests[m]);
    }
  }
  return series;
}

}  // namespace deepplan
