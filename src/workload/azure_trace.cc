#include "src/workload/azure_trace.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/obs/selfprof.h"
#include "src/util/index.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace deepplan {

Trace GenerateAzureTrace(const AzureTraceOptions& options) {
  DP_SELFPROF_SCOPE(kWorkloadGen);
  DP_CHECK(options.num_instances > 0);
  DP_CHECK(options.duration > 0);
  DP_CHECK(options.target_rate_per_sec > 0);
  Rng rng(options.seed);

  // Per-instance popularity: Zipf weights, shuffled so instance id does not
  // correlate with popularity.
  const int n = options.num_instances;
  std::vector<double> weight(Idx(n));
  for (int i = 0; i < n; ++i) {
    weight[Idx(i)] = 1.0 / std::pow(static_cast<double>(i + 1), options.zipf_exponent);
  }
  for (int i = n - 1; i > 0; --i) {
    const auto j = static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(i + 1)));
    std::swap(weight[Idx(i)], weight[Idx(j)]);
  }
  double weight_sum = 0.0;
  for (double w : weight) {
    weight_sum += w;
  }

  // Per-instance spike windows.
  struct Spike {
    Nanos start;
    Nanos end;
  };
  std::vector<std::vector<Spike>> spikes(Idx(n));
  const double hours = ToSeconds(options.duration) / 3600.0;
  for (int i = 0; i < n; ++i) {
    const auto count =
        rng.NextPoisson(options.spikes_per_instance_per_hour * hours);
    for (std::uint64_t s = 0; s < count; ++s) {
      const Nanos start = static_cast<Nanos>(rng.NextDouble() *
                                             static_cast<double>(options.duration));
      spikes[Idx(i)].push_back(Spike{start, start + options.spike_duration});
    }
  }
  auto spike_boost = [&](int i, Nanos t) {
    for (const Spike& s : spikes[Idx(i)]) {
      if (t >= s.start && t < s.end) {
        return options.spike_multiplier;
      }
    }
    return 1.0;
  };

  // Diurnal modulation: one full sinusoid over the trace (the paper replays a
  // 3-hour slice; the fluctuation pattern matters, not its absolute period).
  auto diurnal = [&](Nanos t) {
    const double phase = 2.0 * M_PI * static_cast<double>(t) /
                         static_cast<double>(options.duration);
    return 1.0 + options.diurnal_depth * std::sin(phase);
  };

  // Thinning-based nonhomogeneous Poisson sampling. Upper bound on the total
  // rate: everything spiking at diurnal peak.
  const double base = options.target_rate_per_sec;
  const double rate_max =
      base * (1.0 + options.diurnal_depth) * options.spike_multiplier;
  std::vector<Arrival> arrivals;
  double t_sec = 0.0;
  const double horizon = ToSeconds(options.duration);
  while (true) {
    t_sec += rng.NextExponential(rate_max);
    if (t_sec >= horizon) {
      break;
    }
    const Nanos t = Seconds(t_sec);
    // Pick an instance by popularity, then thin by its instantaneous rate.
    double pick = rng.NextDouble() * weight_sum;
    int inst = 0;
    for (; inst < n - 1; ++inst) {
      pick -= weight[Idx(inst)];
      if (pick <= 0) {
        break;
      }
    }
    const double rate_now = base * diurnal(t) * spike_boost(inst, t);
    if (rng.NextDouble() < rate_now / rate_max) {
      arrivals.push_back(Arrival{t, inst});
    }
  }
  Trace trace(std::move(arrivals));
  // Normalize the realized mean rate to the target.
  if (trace.MeanRate() > 0) {
    return trace.ScaledToRate(options.target_rate_per_sec);
  }
  return trace;
}

std::optional<Trace> LoadAzureTraceCsv(const std::string& path,
                                       std::string* error) {
  DP_SELFPROF_SCOPE(kWorkloadGen);
  DP_CHECK(error != nullptr);
  return Trace::LoadFrom(path, error);
}

}  // namespace deepplan
