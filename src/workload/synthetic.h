// Count-exact synthetic scale traces: exactly `num_requests` arrivals from a
// Poisson process at `rate_per_sec`, with instances drawn from a Zipf
// popularity distribution. Unlike the duration-based generators (poisson.h,
// azure_trace.h), the request *count* is the input — that is what a scaling
// curve sweeps (bench/bench_scaling emits simulated-throughput points at
// 44k/200k/1M requests), and what byte-identical golden outputs need pinned.
#ifndef SRC_WORKLOAD_SYNTHETIC_H_
#define SRC_WORKLOAD_SYNTHETIC_H_

#include <cstdint>

#include "src/workload/trace.h"

namespace deepplan {

struct SyntheticScaleOptions {
  std::size_t num_requests = 44000;
  double rate_per_sec = 120.0;
  int num_instances = 135;
  // Zipf exponent of instance popularity. 0 = uniform; ~0.9-1.1 matches the
  // skew of serverless invocation traces (a few hot functions dominate).
  double zipf_exponent = 0.9;
  std::uint64_t seed = 1;
};

// Deterministic in `options`: same options, same trace, on every platform.
Trace GenerateSyntheticScaleTrace(const SyntheticScaleOptions& options);

}  // namespace deepplan

#endif  // SRC_WORKLOAD_SYNTHETIC_H_
