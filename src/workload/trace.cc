#include "src/workload/trace.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/util/index.h"
#include "src/util/logging.h"

namespace deepplan {

Trace::Trace(std::vector<Arrival> arrivals) : arrivals_(std::move(arrivals)) {
  std::stable_sort(arrivals_.begin(), arrivals_.end(),
                   [](const Arrival& a, const Arrival& b) { return a.time < b.time; });
}

double Trace::MeanRate() const {
  if (arrivals_.size() < 2 || duration() == 0) {
    return 0.0;
  }
  return static_cast<double>(arrivals_.size()) / ToSeconds(duration());
}

std::vector<std::size_t> Trace::PerInstanceCounts(int num_instances) const {
  std::vector<std::size_t> counts(Idx(num_instances), 0);
  for (const Arrival& a : arrivals_) {
    if (a.instance >= 0 && a.instance < num_instances) {
      ++counts[Idx(a.instance)];
    }
  }
  return counts;
}

std::vector<std::size_t> Trace::PerMinuteCounts() const {
  std::vector<std::size_t> counts;
  for (const Arrival& a : arrivals_) {
    const auto minute = static_cast<std::size_t>(a.time / (60 * kNanosPerSecond));
    if (minute >= counts.size()) {
      counts.resize(minute + 1, 0);
    }
    ++counts[minute];
  }
  return counts;
}

Trace Trace::ScaledToRate(double target_rate_per_sec) const {
  DP_CHECK(target_rate_per_sec > 0);
  const double current = MeanRate();
  if (current <= 0) {
    return *this;
  }
  const double factor = current / target_rate_per_sec;
  std::vector<Arrival> scaled = arrivals_;
  for (Arrival& a : scaled) {
    a.time = static_cast<Nanos>(static_cast<double>(a.time) * factor);
  }
  return Trace(std::move(scaled));
}

std::string Trace::ToCsv() const {
  std::ostringstream os;
  os << "time_ns,instance\n";
  for (const Arrival& a : arrivals_) {
    os << a.time << "," << a.instance << "\n";
  }
  return os.str();
}

namespace {

// Strict "<time_ns>,<instance>" row parse. Returns false with a diagnosis on
// anything else — a missing comma usually means the file was cut mid-row.
bool ParseArrivalLine(const std::string& line, Arrival* out,
                      std::string* why) {
  const auto comma = line.find(',');
  if (comma == std::string::npos) {
    *why = "no comma (want <time_ns>,<instance> — truncated file?)";
    return false;
  }
  char* end = nullptr;
  errno = 0;
  out->time = std::strtoll(line.c_str(), &end, 10);
  if (end != line.c_str() + comma || errno == ERANGE || out->time < 0) {
    *why = "bad time_ns field (want a non-negative integer)";
    return false;
  }
  errno = 0;
  const long instance = std::strtol(line.c_str() + comma + 1, &end, 10);
  if (end == line.c_str() + comma + 1 || *end != '\0' || errno == ERANGE ||
      instance < 0 || instance > std::numeric_limits<int>::max()) {
    *why = "bad instance field (want a non-negative integer)";
    return false;
  }
  out->instance = static_cast<int>(instance);
  return true;
}

// Shared line-at-a-time reader over any istream source.
std::optional<Trace> ReadArrivalLines(std::istream& is,
                                      const std::string& origin,
                                      std::string* error) {
  std::string line;
  std::vector<Arrival> arrivals;
  bool first = true;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    if (first) {
      first = false;
      if (line.rfind("time_ns", 0) == 0) {
        continue;  // header
      }
    }
    Arrival a;
    std::string why;
    if (!ParseArrivalLine(line, &a, &why)) {
      if (error != nullptr) {
        *error = origin + ":" + std::to_string(line_number) +
                 ": malformed row \"" + line + "\": " + why;
      }
      return std::nullopt;
    }
    arrivals.push_back(a);
  }
  return Trace(std::move(arrivals));
}

}  // namespace

std::optional<Trace> Trace::FromCsv(const std::string& text) {
  std::istringstream is(text);
  return ReadArrivalLines(is, "<csv>", nullptr);
}

bool Trace::SaveTo(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ToCsv();
  return static_cast<bool>(out);
}

std::optional<Trace> Trace::LoadFrom(const std::string& path) {
  std::string ignored;
  return LoadFrom(path, &ignored);
}

std::optional<Trace> Trace::LoadFrom(const std::string& path,
                                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = path + ": cannot open file";
    }
    return std::nullopt;
  }
  return ReadArrivalLines(in, path, error);
}

}  // namespace deepplan
