#include "src/workload/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/util/index.h"
#include "src/util/logging.h"

namespace deepplan {

Trace::Trace(std::vector<Arrival> arrivals) : arrivals_(std::move(arrivals)) {
  std::stable_sort(arrivals_.begin(), arrivals_.end(),
                   [](const Arrival& a, const Arrival& b) { return a.time < b.time; });
}

double Trace::MeanRate() const {
  if (arrivals_.size() < 2 || duration() == 0) {
    return 0.0;
  }
  return static_cast<double>(arrivals_.size()) / ToSeconds(duration());
}

std::vector<std::size_t> Trace::PerInstanceCounts(int num_instances) const {
  std::vector<std::size_t> counts(Idx(num_instances), 0);
  for (const Arrival& a : arrivals_) {
    if (a.instance >= 0 && a.instance < num_instances) {
      ++counts[Idx(a.instance)];
    }
  }
  return counts;
}

std::vector<std::size_t> Trace::PerMinuteCounts() const {
  std::vector<std::size_t> counts;
  for (const Arrival& a : arrivals_) {
    const auto minute = static_cast<std::size_t>(a.time / (60 * kNanosPerSecond));
    if (minute >= counts.size()) {
      counts.resize(minute + 1, 0);
    }
    ++counts[minute];
  }
  return counts;
}

Trace Trace::ScaledToRate(double target_rate_per_sec) const {
  DP_CHECK(target_rate_per_sec > 0);
  const double current = MeanRate();
  if (current <= 0) {
    return *this;
  }
  const double factor = current / target_rate_per_sec;
  std::vector<Arrival> scaled = arrivals_;
  for (Arrival& a : scaled) {
    a.time = static_cast<Nanos>(static_cast<double>(a.time) * factor);
  }
  return Trace(std::move(scaled));
}

std::string Trace::ToCsv() const {
  std::ostringstream os;
  os << "time_ns,instance\n";
  for (const Arrival& a : arrivals_) {
    os << a.time << "," << a.instance << "\n";
  }
  return os.str();
}

std::optional<Trace> Trace::FromCsv(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::vector<Arrival> arrivals;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    if (first) {
      first = false;
      if (line.rfind("time_ns", 0) == 0) {
        continue;  // header
      }
    }
    const auto comma = line.find(',');
    if (comma == std::string::npos) {
      return std::nullopt;
    }
    Arrival a;
    a.time = std::strtoll(line.c_str(), nullptr, 10);
    a.instance = static_cast<int>(std::strtol(line.c_str() + comma + 1, nullptr, 10));
    arrivals.push_back(a);
  }
  return Trace(std::move(arrivals));
}

bool Trace::SaveTo(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ToCsv();
  return static_cast<bool>(out);
}

std::optional<Trace> Trace::LoadFrom(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FromCsv(buffer.str());
}

}  // namespace deepplan
