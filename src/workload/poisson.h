// Open-loop Poisson arrival generator (Section 5.3.1): a merged Poisson
// process at `rate_per_sec`, with each arrival assigned to an instance
// uniformly at random — equivalently, each of N instances receives an
// independent Poisson stream at rate/N, the paper's synthetic workload.
#ifndef SRC_WORKLOAD_POISSON_H_
#define SRC_WORKLOAD_POISSON_H_

#include <cstdint>

#include "src/workload/trace.h"

namespace deepplan {

struct PoissonOptions {
  double rate_per_sec = 100.0;
  int num_instances = 100;
  Nanos duration = Seconds(10);
  std::uint64_t seed = 1;
};

Trace GeneratePoissonTrace(const PoissonOptions& options);

}  // namespace deepplan

#endif  // SRC_WORKLOAD_POISSON_H_
