// Synthetic Microsoft-Azure-Functions-like workload (Section 5.3.2). The MAF
// 2019 characterization (Shahrad et al., ATC'20) shows: heavily skewed
// per-function popularity (a few functions dominate), slow diurnal rate
// fluctuation, and short high-intensity spikes on individual functions. This
// generator reproduces those features as a nonhomogeneous Poisson process:
//   rate(t, i) = popularity_i * diurnal(t) * (1 + spike_i(t)) * base
// normalized so the whole trace averages `target_rate_per_sec`. Real MAF CSVs
// can be replayed instead via Trace::LoadFrom.
#ifndef SRC_WORKLOAD_AZURE_TRACE_H_
#define SRC_WORKLOAD_AZURE_TRACE_H_

#include <cstdint>

#include "src/workload/trace.h"

namespace deepplan {

struct AzureTraceOptions {
  int num_instances = 90;
  Nanos duration = Seconds(180);
  double target_rate_per_sec = 150.0;
  std::uint64_t seed = 7;

  // Popularity skew (Zipf exponent over instances).
  double zipf_exponent = 0.9;
  // Diurnal modulation depth (0 = flat, 0.4 = +-40% sinusoid over the trace).
  double diurnal_depth = 0.35;
  // Expected spikes per instance per hour, their intensity multiple, and
  // duration.
  double spikes_per_instance_per_hour = 2.0;
  double spike_multiplier = 4.0;
  Nanos spike_duration = Seconds(20);
};

Trace GenerateAzureTrace(const AzureTraceOptions& options);

// Replays a real (or exported) MAF-style arrival CSV. Streams the file
// line-at-a-time — memory is the decoded arrivals, never the raw text — and
// rejects malformed or truncated rows with a "path:LINE: ..." diagnosis in
// `error` instead of silently dropping the tail.
std::optional<Trace> LoadAzureTraceCsv(const std::string& path,
                                       std::string* error);

}  // namespace deepplan

#endif  // SRC_WORKLOAD_AZURE_TRACE_H_
