// Arrival traces: the common currency between workload generators and the
// serving simulator. A trace is a time-ordered list of (arrival time,
// instance id) pairs, with CSV persistence and scaling helpers so real
// Microsoft-Azure-Functions-derived traces can be replayed too.
#ifndef SRC_WORKLOAD_TRACE_H_
#define SRC_WORKLOAD_TRACE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/time.h"

namespace deepplan {

struct Arrival {
  Nanos time = 0;
  int instance = 0;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Arrival> arrivals);

  const std::vector<Arrival>& arrivals() const { return arrivals_; }
  std::size_t size() const { return arrivals_.size(); }
  bool empty() const { return arrivals_.empty(); }
  Nanos duration() const { return empty() ? 0 : arrivals_.back().time; }

  // Mean request rate over the trace duration (requests/second).
  double MeanRate() const;

  // Requests per instance (index = instance id).
  std::vector<std::size_t> PerInstanceCounts(int num_instances) const;

  // Per-minute arrival counts (the "offered load" series of Figure 15).
  std::vector<std::size_t> PerMinuteCounts() const;

  // Uniformly rescales arrival times so the mean rate becomes
  // `target_rate_per_sec` (same arrival pattern, different intensity).
  Trace ScaledToRate(double target_rate_per_sec) const;

  // CSV round-trip: one "<time_ns>,<instance>" line per arrival. Parsing is
  // strict: every row needs two integer fields and a non-negative time, so a
  // truncated or garbled file fails loudly instead of yielding a silently
  // short trace.
  std::string ToCsv() const;
  static std::optional<Trace> FromCsv(const std::string& text);
  bool SaveTo(const std::string& path) const;
  // Streams the file line-at-a-time (no whole-file buffer — MAF-scale traces
  // are larger than the arrivals they decode to). On failure the two-arg
  // overload reports the offending line: "path:LINE: malformed row ...".
  static std::optional<Trace> LoadFrom(const std::string& path);
  static std::optional<Trace> LoadFrom(const std::string& path,
                                       std::string* error);

 private:
  std::vector<Arrival> arrivals_;  // sorted by time
};

}  // namespace deepplan

#endif  // SRC_WORKLOAD_TRACE_H_
