#include "src/workload/poisson.h"

#include "src/obs/selfprof.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace deepplan {

Trace GeneratePoissonTrace(const PoissonOptions& options) {
  DP_SELFPROF_SCOPE(kWorkloadGen);
  DP_CHECK(options.rate_per_sec > 0);
  DP_CHECK(options.num_instances > 0);
  DP_CHECK(options.duration > 0);
  Rng rng(options.seed);
  std::vector<Arrival> arrivals;
  arrivals.reserve(
      static_cast<std::size_t>(options.rate_per_sec * ToSeconds(options.duration) * 1.1));
  double t_sec = 0.0;
  const double horizon = ToSeconds(options.duration);
  while (true) {
    t_sec += rng.NextExponential(options.rate_per_sec);
    if (t_sec >= horizon) {
      break;
    }
    Arrival a;
    a.time = Seconds(t_sec);
    a.instance = static_cast<int>(
        rng.NextBounded(static_cast<std::uint64_t>(options.num_instances)));
    arrivals.push_back(a);
  }
  return Trace(std::move(arrivals));
}

}  // namespace deepplan
