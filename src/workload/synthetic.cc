#include "src/workload/synthetic.h"

#include <utility>
#include <vector>

#include "src/obs/selfprof.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace deepplan {

Trace GenerateSyntheticScaleTrace(const SyntheticScaleOptions& options) {
  DP_SELFPROF_SCOPE(kWorkloadGen);
  DP_CHECK(options.num_requests > 0);
  DP_CHECK(options.rate_per_sec > 0);
  DP_CHECK(options.num_instances > 0);
  DP_CHECK(options.zipf_exponent >= 0.0);
  Rng rng(options.seed);
  std::vector<Arrival> arrivals;
  arrivals.reserve(options.num_requests);
  // Accumulate interarrivals in seconds (like poisson.cc) and quantize each
  // arrival once: the trace is a pure function of the options, never of how
  // many requests came before (a 44k trace is a strict prefix-alike of a 1M
  // trace only in distribution, not literally — each count reseeds).
  double t_sec = 0.0;
  for (std::size_t i = 0; i < options.num_requests; ++i) {
    t_sec += rng.NextExponential(options.rate_per_sec);
    Arrival a;
    a.time = Seconds(t_sec);
    if (options.zipf_exponent == 0.0) {
      a.instance = static_cast<int>(
          rng.NextBounded(static_cast<std::uint64_t>(options.num_instances)));
    } else {
      // NextZipf returns a 0-based rank; rank 0 is the hottest instance.
      a.instance = static_cast<int>(
          rng.NextZipf(static_cast<std::uint64_t>(options.num_instances),
                       options.zipf_exponent));
    }
    arrivals.push_back(a);
  }
  return Trace(std::move(arrivals));
}

}  // namespace deepplan
