#include "src/check/determinism_lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

namespace deepplan {
namespace check {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Replaces the contents of comments and string/char literals with spaces,
// preserving every newline, so later passes scan code only but line numbers
// (and column structure) stay intact. Handles //, /* */, "...", '...', raw
// strings R"delim(...)delim", escapes, and digit separators (1'000'000 never
// opens a char literal).
std::string ScrubCommentsAndStrings(const std::string& src) {
  std::string out(src.size(), ' ');
  enum class State { kCode, kLine, kBlock, kString, kChar };
  State state = State::kCode;
  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      out[i] = '\n';
      if (state == State::kLine) {
        state = State::kCode;
      }
      ++i;
      continue;
    }
    switch (state) {
      case State::kCode: {
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
          state = State::kLine;
          i += 2;
          break;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
          state = State::kBlock;
          i += 2;
          break;
        }
        if (c == '"') {
          // Raw string? (R immediately before the quote, at an identifier
          // boundary.)
          if (i > 0 && src[i - 1] == 'R' &&
              (i < 2 || !IsIdentChar(src[i - 2]))) {
            std::size_t d = i + 1;
            while (d < n && src[d] != '(') {
              ++d;
            }
            const std::string close =
                ")" + src.substr(i + 1, d - (i + 1)) + "\"";
            const std::size_t end = src.find(close, d);
            const std::size_t stop =
                end == std::string::npos ? n : end + close.size();
            for (std::size_t k = i; k < stop; ++k) {
              if (src[k] == '\n') {
                out[k] = '\n';
              }
            }
            i = stop;
            break;
          }
          state = State::kString;
          ++i;
          break;
        }
        if (c == '\'' && (i == 0 || !IsIdentChar(src[i - 1]))) {
          state = State::kChar;
          ++i;
          break;
        }
        out[i] = c;
        ++i;
        break;
      }
      case State::kLine:
        ++i;
        break;
      case State::kBlock:
        if (c == '*' && i + 1 < n && src[i + 1] == '/') {
          state = State::kCode;
          i += 2;
        } else {
          ++i;
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          i += 2;
        } else if (c == quote) {
          state = State::kCode;
          ++i;
        } else {
          ++i;
        }
        break;
      }
    }
  }
  return out;
}

// 1-based line number of byte offset `pos`, via the sorted line-start table.
std::size_t LineOf(const std::vector<std::size_t>& line_starts,
                   std::size_t pos) {
  const auto it =
      std::upper_bound(line_starts.begin(), line_starts.end(), pos);
  return static_cast<std::size_t>(it - line_starts.begin());
}

std::vector<std::size_t> LineStarts(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      starts.push_back(i + 1);
    }
  }
  return starts;
}

// True when text[pos..] starts the standalone token `word`.
bool TokenAt(const std::string& text, std::size_t pos,
             const std::string& word) {
  if (pos + word.size() > text.size() ||
      text.compare(pos, word.size(), word) != 0) {
    return false;
  }
  if (pos > 0 && IsIdentChar(text[pos - 1])) {
    return false;
  }
  const std::size_t end = pos + word.size();
  return end >= text.size() || !IsIdentChar(text[end]);
}

std::size_t SkipWs(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

// With text[pos] == '<', returns the offset just past the matching '>', or
// npos if unbalanced.
std::size_t MatchAngle(const std::string& text, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      --depth;
      if (depth == 0) {
        return i + 1;
      }
    } else if (c == ';' || c == '{') {
      return std::string::npos;  // statement ended: comparison, not template
    }
  }
  return std::string::npos;
}

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return s.substr(b, e - b);
}

// First top-level template argument of the list starting at text[pos] == '<'.
std::string FirstTemplateArg(const std::string& text, std::size_t pos) {
  int angle = 0;
  int paren = 0;
  std::string arg;
  for (std::size_t i = pos; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '<') {
      ++angle;
      if (angle == 1) {
        continue;
      }
    } else if (c == '>') {
      --angle;
      if (angle == 0) {
        return Trim(arg);
      }
    } else if (c == '(') {
      ++paren;
    } else if (c == ')') {
      --paren;
    } else if (c == ',' && angle == 1 && paren == 0) {
      return Trim(arg);
    } else if (c == ';' || c == '{') {
      return "";
    }
    arg.push_back(c);
  }
  return "";
}

struct Suppression {
  std::string rule;
  std::string reason;
  bool used = false;
  bool malformed = false;
  std::string problem;  // set when malformed
};

// Parses `// deepplan-lint: allow(<rule>, <reason>)` comments from the raw
// (unscrubbed) lines. Keyed by 1-based line.
std::map<std::size_t, Suppression> ParseSuppressions(
    const std::vector<std::string>& raw_lines) {
  std::map<std::size_t, Suppression> out;
  const std::string tag = "deepplan-lint:";
  for (std::size_t ln = 0; ln < raw_lines.size(); ++ln) {
    const std::string& line = raw_lines[ln];
    const std::size_t at = line.find(tag);
    if (at == std::string::npos) {
      continue;
    }
    Suppression sup;
    const std::string rest = Trim(line.substr(at + tag.size()));
    const std::string allow = "allow(";
    if (rest.compare(0, allow.size(), allow) != 0 ||
        rest.find(')') == std::string::npos) {
      // The tag without an allow(...) clause is prose *about* the linter
      // (docs, help strings), not a suppression attempt; ignoring it is safe
      // because whatever finding it failed to suppress still fires.
      continue;
    }
    const std::size_t close = rest.rfind(')');
    const std::string inner = rest.substr(allow.size(), close - allow.size());
    if (inner.find('<') != std::string::npos ||
        inner.find('>') != std::string::npos) {
      continue;  // allow(<rule>, <reason>) placeholder in documentation
    }
    const std::size_t comma = inner.find(',');
    if (comma == std::string::npos) {
      sup.malformed = true;
      sup.problem = "suppression is missing the mandatory reason";
      out.emplace(ln + 1, std::move(sup));
      continue;
    }
    sup.rule = Trim(inner.substr(0, comma));
    sup.reason = Trim(inner.substr(comma + 1));
    const auto& rules = DeterminismLintRules();
    if (std::find(rules.begin(), rules.end(), sup.rule) == rules.end()) {
      sup.malformed = true;
      sup.problem = "unknown rule '" + sup.rule + "'";
    } else if (sup.reason.empty()) {
      sup.malformed = true;
      sup.problem = "suppression is missing the mandatory reason";
    }
    out.emplace(ln + 1, std::move(sup));
  }
  return out;
}

bool IsCommentOnlyLine(const std::string& raw_line) {
  const std::string t = Trim(raw_line);
  return t.size() >= 2 && t[0] == '/' && (t[1] == '/' || t[1] == '*');
}

const char* const kUnorderedTypes[] = {
    "unordered_map", "unordered_multimap", "unordered_set",
    "unordered_multiset"};

// Names declared with an unordered container type (directly or wrapped, e.g.
// std::vector<std::unordered_map<...>> links_). Maps name -> declaration
// line for messages.
std::map<std::string, std::size_t> CollectUnorderedNames(
    const std::string& code, const std::vector<std::size_t>& line_starts) {
  std::map<std::string, std::size_t> names;
  for (const char* type : kUnorderedTypes) {
    const std::string t(type);
    std::size_t pos = 0;
    while ((pos = code.find(t, pos)) != std::string::npos) {
      if (!TokenAt(code, pos, t)) {
        pos += t.size();
        continue;
      }
      std::size_t p = SkipWs(code, pos + t.size());
      if (p >= code.size() || code[p] != '<') {
        pos += t.size();
        continue;
      }
      p = MatchAngle(code, p);
      if (p == std::string::npos) {
        pos += t.size();
        continue;
      }
      // Skip wrapper closers (vector<unordered_map<...>> name) and
      // ref/pointer declarators, then take the declared identifier if any.
      while (p < code.size() &&
             (code[p] == '>' || code[p] == '*' || code[p] == '&' ||
              std::isspace(static_cast<unsigned char>(code[p])) != 0)) {
        ++p;
      }
      if (p < code.size() && IsIdentStart(code[p])) {
        std::size_t e = p;
        while (e < code.size() && IsIdentChar(code[e])) {
          ++e;
        }
        names.emplace(code.substr(p, e - p), LineOf(line_starts, pos));
      }
      pos += t.size();
    }
  }
  return names;
}

bool ExprMentions(const std::string& expr,
                  const std::map<std::string, std::size_t>& names,
                  std::string* which) {
  std::size_t i = 0;
  while (i < expr.size()) {
    if (IsIdentStart(expr[i]) && (i == 0 || !IsIdentChar(expr[i - 1]))) {
      std::size_t e = i;
      while (e < expr.size() && IsIdentChar(expr[e])) {
        ++e;
      }
      const std::string ident = expr.substr(i, e - i);
      if (names.count(ident) != 0) {
        *which = ident;
        return true;
      }
      i = e;
    } else {
      ++i;
    }
  }
  return false;
}

void AddFinding(std::vector<LintFinding>* findings, const std::string& path,
                std::size_t line, const char* rule, std::string message) {
  LintFinding f;
  f.file = path;
  f.line = line;
  f.rule = rule;
  f.message = std::move(message);
  findings->push_back(std::move(f));
}

void ScanUnorderedIteration(const std::string& code,
                            const std::vector<std::size_t>& line_starts,
                            const std::map<std::string, std::size_t>& names,
                            const std::string& path,
                            std::vector<LintFinding>* findings) {
  // Range-for whose range expression is (or contains) an unordered
  // container.
  std::size_t pos = 0;
  while ((pos = code.find("for", pos)) != std::string::npos) {
    if (!TokenAt(code, pos, "for")) {
      pos += 3;
      continue;
    }
    std::size_t p = SkipWs(code, pos + 3);
    if (p >= code.size() || code[p] != '(') {
      pos += 3;
      continue;
    }
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t i = p; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '(' || c == '[' || c == '{') {
        ++depth;
      } else if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0) {
          close = i;
          break;
        }
      } else if (c == ':' && depth == 1 && colon == std::string::npos &&
                 (i == 0 || code[i - 1] != ':') &&
                 (i + 1 >= code.size() || code[i + 1] != ':')) {
        colon = i;
      }
    }
    if (colon != std::string::npos && close != std::string::npos) {
      const std::string expr = code.substr(colon + 1, close - colon - 1);
      std::string which;
      if (ExprMentions(expr, names, &which)) {
        AddFinding(findings, path, LineOf(line_starts, pos),
                   kLintRuleUnorderedIteration,
                   "range-for over unordered container '" + which +
                       "' (declared at line " +
                       std::to_string(names.at(which)) +
                       "): bucket order is not deterministic — iterate a "
                       "sorted view or an ordered container instead");
      } else if (expr.find("unordered_") != std::string::npos) {
        AddFinding(findings, path, LineOf(line_starts, pos),
                   kLintRuleUnorderedIteration,
                   "range-for over an unordered container expression: bucket "
                   "order is not deterministic");
      }
    }
    pos += 3;
  }
  // begin() family on a declared unordered name (feeds algorithms or manual
  // loops). end()/cend() alone are deliberately NOT flagged: `it !=
  // m.end()` is the find()-failure sentinel, the idiomatic *lookup* pattern
  // — and every real iteration needs a begin() anyway.
  static const char* const kIter[] = {"begin", "cbegin", "rbegin", "crbegin"};
  for (const auto& [name, decl_line] : names) {
    std::size_t at = 0;
    while ((at = code.find(name, at)) != std::string::npos) {
      if (!TokenAt(code, at, name)) {
        at += name.size();
        continue;
      }
      std::size_t p = at + name.size();
      if (p < code.size() && code[p] == '.') {
        ++p;
      } else if (p + 1 < code.size() && code[p] == '-' && code[p + 1] == '>') {
        p += 2;
      } else {
        at += name.size();
        continue;
      }
      for (const char* fn : kIter) {
        if (TokenAt(code, p, fn)) {
          const std::size_t after = SkipWs(code, p + std::string(fn).size());
          if (after < code.size() && code[after] == '(') {
            AddFinding(findings, path, LineOf(line_starts, at),
                       kLintRuleUnorderedIteration,
                       "iterator over unordered container '" + name +
                           "' (declared at line " + std::to_string(decl_line) +
                           "): bucket order is not deterministic");
          }
          break;
        }
      }
      at += name.size();
    }
  }
}

void ScanPointerKeys(const std::string& code,
                     const std::vector<std::size_t>& line_starts,
                     const std::string& path,
                     std::vector<LintFinding>* findings) {
  static const char* const kKeyed[] = {
      "map", "multimap", "set", "multiset", "unordered_map",
      "unordered_multimap", "unordered_set", "unordered_multiset"};
  for (const char* type : kKeyed) {
    const std::string t(type);
    std::size_t pos = 0;
    while ((pos = code.find(t, pos)) != std::string::npos) {
      if (!TokenAt(code, pos, t)) {
        pos += t.size();
        continue;
      }
      const std::size_t p = SkipWs(code, pos + t.size());
      if (p < code.size() && code[p] == '<') {
        const std::string key = FirstTemplateArg(code, p);
        if (!key.empty() && key.back() == '*') {
          AddFinding(findings, path, LineOf(line_starts, pos),
                     kLintRulePointerKeyedContainer,
                     "container keyed by pointer type '" + key +
                         "': ordering/hashing by address is run-dependent "
                         "(ASLR, allocation history) — key by a stable id");
        }
      }
      pos += t.size();
    }
  }
}

void ScanRawEntropy(const std::string& code,
                    const std::vector<std::size_t>& line_starts,
                    const std::string& path,
                    std::vector<LintFinding>* findings) {
  struct Pattern {
    const char* token;
    const char* what;
    bool call_only;  // only flag when followed by '('
  };
  static const Pattern kPatterns[] = {
      {"rand", "rand()", true},
      {"srand", "srand()", true},
      {"rand_r", "rand_r()", true},
      {"drand48", "drand48()", true},
      {"random_device", "std::random_device", false},
      {"system_clock", "std::chrono::system_clock", false},
      {"steady_clock", "std::chrono::steady_clock", false},
      {"high_resolution_clock", "std::chrono::high_resolution_clock", false},
      {"gettimeofday", "gettimeofday()", true},
      {"clock_gettime", "clock_gettime()", true},
      {"time", "time()", true},
  };
  for (const Pattern& pat : kPatterns) {
    const std::string t(pat.token);
    std::size_t pos = 0;
    while ((pos = code.find(t, pos)) != std::string::npos) {
      if (!TokenAt(code, pos, t)) {
        pos += t.size();
        continue;
      }
      // Member access (x.time(), obj->rand()) is some other API, not the
      // libc symbol; a std:: / global :: qualifier still is.
      bool member = false;
      if (pos > 0) {
        std::size_t b = pos;
        while (b > 0 &&
               std::isspace(static_cast<unsigned char>(code[b - 1])) != 0) {
          --b;
        }
        if (b > 0 && (code[b - 1] == '.' ||
                      (b > 1 && code[b - 2] == '-' && code[b - 1] == '>'))) {
          member = true;
        }
        if (b > 1 && code[b - 1] == ':' && code[b - 2] == ':') {
          // Qualified: only std::/:: count as the real symbol; anything else
          // (my_ns::time) is unrelated.
          std::size_t q = b - 2;
          while (q > 0 &&
                 std::isspace(static_cast<unsigned char>(code[q - 1])) != 0) {
            --q;
          }
          std::size_t e = q;
          while (q > 0 && IsIdentChar(code[q - 1])) {
            --q;
          }
          const std::string qual = code.substr(q, e - q);
          if (!qual.empty() && qual != "std" && qual != "chrono") {
            member = true;
          }
        }
      }
      if (member) {
        pos += t.size();
        continue;
      }
      if (pat.call_only) {
        const std::size_t after = SkipWs(code, pos + t.size());
        if (after >= code.size() || code[after] != '(') {
          pos += t.size();
          continue;
        }
      }
      AddFinding(findings, path, LineOf(line_starts, pos),
                 kLintRuleRawEntropy,
                 std::string(pat.what) +
                     ": unseeded entropy / wall-clock time is not "
                     "reproducible — use a generator seeded from the task "
                     "index, or suppress with a reason if the value never "
                     "reaches golden output");
      pos += t.size();
    }
  }
}

void ScanNondetReduction(const std::string& code,
                         const std::vector<std::size_t>& line_starts,
                         const std::string& path,
                         std::vector<LintFinding>* findings) {
  struct Pattern {
    const char* needle;
    const char* what;
  };
  static const Pattern kPatterns[] = {
      {"std::reduce", "std::reduce"},
      {"std::transform_reduce", "std::transform_reduce"},
      {"execution::par", "a parallel execution policy"},
      {"std::atomic<double>", "std::atomic<double>"},
      {"std::atomic<float>", "std::atomic<float>"},
  };
  for (const Pattern& pat : kPatterns) {
    const std::string t(pat.needle);
    std::size_t pos = 0;
    while ((pos = code.find(t, pos)) != std::string::npos) {
      // Prefix matches are intentional: execution::par also catches
      // execution::par_unseq, and the atomic patterns are exact.
      AddFinding(findings, path, LineOf(line_starts, pos),
                 kLintRuleNondeterministicReduction,
                 std::string(pat.what) +
                     ": unordered floating-point reduction is not "
                     "bit-reproducible — accumulate in task-index order "
                     "(SweepRunner slots + a sequential fold)");
      pos += t.size();
    }
  }
}

}  // namespace

const std::vector<std::string>& DeterminismLintRules() {
  static const std::vector<std::string> rules = {
      kLintRuleUnorderedIteration, kLintRulePointerKeyedContainer,
      kLintRuleRawEntropy, kLintRuleNondeterministicReduction};
  return rules;
}

DeterminismLintResult LintDeterminismSource(const std::string& path,
                                            const std::string& content) {
  DeterminismLintResult result;
  result.files = 1;

  std::vector<std::string> raw_lines;
  {
    std::istringstream in(content);
    std::string line;
    while (std::getline(in, line)) {
      raw_lines.push_back(line);
    }
  }
  result.lines = raw_lines.size();

  const std::string code = ScrubCommentsAndStrings(content);
  const std::vector<std::size_t> line_starts = LineStarts(code);
  const std::map<std::string, std::size_t> unordered_names =
      CollectUnorderedNames(code, line_starts);

  std::vector<LintFinding> findings;
  ScanUnorderedIteration(code, line_starts, unordered_names, path, &findings);
  ScanPointerKeys(code, line_starts, path, &findings);
  ScanRawEntropy(code, line_starts, path, &findings);
  ScanNondetReduction(code, line_starts, path, &findings);

  std::map<std::size_t, Suppression> sups = ParseSuppressions(raw_lines);

  for (LintFinding& f : findings) {
    // A suppression applies on the finding's own line, or on a comment-only
    // line directly above it.
    for (const std::size_t line : {f.line, f.line - 1}) {
      if (line == 0) {
        continue;
      }
      if (line != f.line &&
          (line > raw_lines.size() || !IsCommentOnlyLine(raw_lines[line - 1]))) {
        continue;
      }
      const auto it = sups.find(line);
      if (it != sups.end() && !it->second.malformed &&
          it->second.rule == f.rule) {
        it->second.used = true;
        f.suppressed = true;
        f.suppression_reason = it->second.reason;
        break;
      }
    }
    if (f.suppressed) {
      ++result.suppressions;
    } else {
      ++result.violations;
    }
  }

  for (const auto& [line, sup] : sups) {
    if (sup.malformed) {
      ++result.unused_suppressions;
      result.errors.push_back(path + ":" + std::to_string(line) +
                              ": malformed suppression: " + sup.problem);
    } else if (!sup.used) {
      ++result.unused_suppressions;
      result.errors.push_back(
          path + ":" + std::to_string(line) + ": stale suppression for rule '" +
          sup.rule + "' matches no finding — remove it");
    }
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const LintFinding& a, const LintFinding& b) {
                     if (a.line != b.line) {
                       return a.line < b.line;
                     }
                     return a.rule < b.rule;
                   });
  result.findings = std::move(findings);
  return result;
}

DeterminismLintResult LintDeterminismFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    DeterminismLintResult result;
    result.errors.push_back(path + ": cannot read file");
    return result;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return LintDeterminismSource(path, buf.str());
}

void MergeDeterminismLint(DeterminismLintResult&& part,
                          DeterminismLintResult* total) {
  total->violations += part.violations;
  total->suppressions += part.suppressions;
  total->unused_suppressions += part.unused_suppressions;
  total->files += part.files;
  total->lines += part.lines;
  for (LintFinding& f : part.findings) {
    total->findings.push_back(std::move(f));
  }
  for (std::string& e : part.errors) {
    total->errors.push_back(std::move(e));
  }
}

}  // namespace check
}  // namespace deepplan
