// Custom determinism linter: repo-specific source rules that no stock tool
// enforces, run by `tools/deepplan_lint` over src/, bench/, and tools/ (and
// by scripts/check_lint.sh in CI). The repo's signature invariant is
// byte-identical output for any DEEPPLAN_JOBS; these rules catch the code
// patterns that silently break it:
//
//   unordered-iteration        Iterating a std::unordered_map/unordered_set
//                              (range-for, or begin()/end() on a variable
//                              declared with an unordered type). Bucket order
//                              depends on libstdc++ version, SSO layout, and
//                              insertion history — anything derived from the
//                              iteration order is not reproducible. Lookups
//                              (find/at/count/erase-by-key) are fine.
//   pointer-keyed-container    A map/set keyed by pointer type. Ordered
//                              containers then order by allocation address
//                              (ASLR-dependent); unordered ones hash it.
//                              Key by a stable id instead.
//   raw-entropy                rand()/srand()/time()/std::random_device/
//                              wall-clock reads (steady_clock & friends).
//                              Randomness must come from generators seeded
//                              with an explicit, recorded seed (see
//                              src/workload/synthetic); wall-clock time may
//                              only feed fields the golden gate ignores
//                              (wall_clock_ms) and needs a suppression
//                              saying so.
//   nondeterministic-reduction std::reduce/std::transform_reduce, parallel
//                              execution policies, and atomic<float/double>
//                              accumulators: floating-point addition is not
//                              associative, so unordered reduction produces
//                              run-to-run different bits. Accumulate in a
//                              fixed order (std::accumulate, or SweepRunner's
//                              task-index slots then a sequential fold).
//
// Suppressions: a finding is allowed by a comment on the same line or on a
// comment-only line directly above it:
//
//   // deepplan-lint: allow(<rule>, <reason>)
//
// The reason is mandatory and the tool counts every suppression; a
// suppression that matches no finding (stale) or names an unknown rule is
// itself a violation, so the allowlist can never rot silently.
//
// Scanning is token-lite in the style of trace_lint: comments and string
// literals are scrubbed first (suppressions are read from the raw text), so
// rules fire on code only, with no compiler dependency — the tool runs in
// gcc-only containers where the clang thread-safety prong cannot.
#ifndef SRC_CHECK_DETERMINISM_LINT_H_
#define SRC_CHECK_DETERMINISM_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace deepplan {
namespace check {

// Canonical rule ids, in documentation order.
inline constexpr const char* kLintRuleUnorderedIteration =
    "unordered-iteration";
inline constexpr const char* kLintRulePointerKeyedContainer =
    "pointer-keyed-container";
inline constexpr const char* kLintRuleRawEntropy = "raw-entropy";
inline constexpr const char* kLintRuleNondeterministicReduction =
    "nondeterministic-reduction";

// All known rule ids (for --help output and suppression validation).
const std::vector<std::string>& DeterminismLintRules();

struct LintFinding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
  bool suppressed = false;
  std::string suppression_reason;  // set when suppressed
};

struct DeterminismLintResult {
  // Clean: no unsuppressed findings, no stale/malformed suppressions, and
  // every file was readable.
  bool ok() const {
    return violations == 0 && unused_suppressions == 0 && errors.empty();
  }

  std::size_t violations = 0;           // unsuppressed findings
  std::size_t suppressions = 0;         // findings allowed with a reason
  std::size_t unused_suppressions = 0;  // stale or malformed allow() comments
  std::size_t files = 0;
  std::size_t lines = 0;

  std::vector<LintFinding> findings;  // all findings, suppressed included,
                                      // sorted by (file, line, rule)
  std::vector<std::string> errors;    // IO failures, stale/malformed
                                      // suppressions — with file:line context
};

// Lints one translation unit's text. `path` is used only for messages.
DeterminismLintResult LintDeterminismSource(const std::string& path,
                                            const std::string& content);

// Reads and lints `path`; an unreadable file is an error (ok() false).
DeterminismLintResult LintDeterminismFile(const std::string& path);

// Folds `part` into `total` (the tool aggregates per-file results with this).
void MergeDeterminismLint(DeterminismLintResult&& part,
                          DeterminismLintResult* total);

}  // namespace check
}  // namespace deepplan

#endif  // SRC_CHECK_DETERMINISM_LINT_H_
