// Runtime simulation invariant checker (SimValidator). Components in the sim
// and serving layers call the hooks below at state-transition points; each
// hook re-derives an invariant the DESIGN doc claims and aborts with a
// detailed diagnostic (offending values + sim timestamp) when it does not
// hold. The checks are compiled in always and gated at runtime:
//
//   DEEPPLAN_VALIDATE=1   enable (any value other than "0")
//   DEEPPLAN_VALIDATE=0   disable
//   unset                 enabled in Debug builds (!NDEBUG), off otherwise
//
// Validation never writes to stdout and never perturbs simulation state, so
// enabling it cannot change any benchmark output byte.
//
// Invariant classes (see DESIGN.md "Correctness & static analysis"):
//   causality   — no event fires before the current sim time; the event-queue
//                 pop sequence and per-stream op starts are monotone
//   fabric      — fair shares are non-negative, per-link allocations never
//                 exceed capacity, every in-flight transfer drains at a
//                 positive rate, and bytes moved integrate to transfer size
//   gpu memory  — free blocks + allocations tile the arena exactly
//                 (free + resident == capacity, no overlap, no gap,
//                 neighbouring free blocks coalesced)
//   residency   — eviction only of resident, idle instances (no double-evict)
//   serving     — each request's queue/evict/load/exec spans tile
//                 [arrival, completion] exactly; warm requests carry no
//                 cold-start components; breakdown means stay additive
//
// This layer depends only on src/util so every other module can call into it.
#ifndef SRC_CHECK_VALIDATOR_H_
#define SRC_CHECK_VALIDATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/time.h"

namespace deepplan {
namespace check {

// True when invariant validation is active (see the gating table above).
// The environment is read once; the result is cached for the process.
bool ValidationEnabled();

// Test hook: 1 forces validation on, 0 forces it off, -1 restores the
// environment-derived default.
void SetValidationForTesting(int mode);

// Total number of invariant checks evaluated so far in this process (all
// threads). Healthy-run tests assert this moved to prove coverage.
std::uint64_t ChecksRun();

// Prints "<invariant> violated: <detail>" to stderr and aborts.
[[noreturn]] void Fail(const char* invariant, const std::string& detail);

// Per-link snapshot of a fabric allocation round.
struct FabricLinkShare {
  std::string name;
  double capacity = 0.0;   // bytes/sec
  double allocated = 0.0;  // sum of fair shares across the link, bytes/sec
  int transfers = 0;       // in-flight transfers crossing the link
};

// One span of a GPU device-memory arena (either a free block or a live
// allocation); spans are validated to tile [0, capacity] exactly.
struct ArenaSpan {
  std::int64_t offset = 0;
  std::int64_t bytes = 0;
  bool free = false;
};

class SimValidator {
 public:
  static bool enabled() { return ValidationEnabled(); }

  // -- causality --------------------------------------------------------
  // A schedule request must not target the past.
  static void OnSchedule(Nanos now, Nanos when);
  // A popped event must not fire before the clock it is about to advance.
  static void OnEventFire(Nanos now, Nanos when);
  // Successive event-queue pops must be non-decreasing in time.
  static void OnQueuePop(Nanos prev_popped, Nanos when);
  // Ops on one stream start in monotone order.
  static void OnStreamOpStart(const std::string& stream, Nanos prev_start,
                              Nanos start);
  // A sync event fires at most once, never before its creation epoch.
  static void OnSyncEventFire(const char* what, bool already_fired, Nanos now);

  // -- fabric flow conservation ----------------------------------------
  // After every progressive-filling round: shares non-negative, per-link
  // sums within capacity, every active transfer draining (rate > 0).
  static void OnFabricAllocation(Nanos now,
                                 const std::vector<FabricLinkShare>& links);
  static void OnTransferRate(Nanos now, std::uint64_t transfer, double rate);
  // At completion, bytes moved must integrate to the transfer size (within
  // the ns-rounding residue the fabric itself tolerates).
  static void OnTransferComplete(Nanos now, std::uint64_t transfer,
                                 double moved_bytes, double total_bytes);
  // The incremental (component-local) fair-share solve must agree with the
  // full progressive-filling re-solve to the last bit; the fabric runs the
  // full solve as a shadow whenever validation is on and reports both rates
  // here for every active transfer.
  static void OnFabricIncrementalSolve(Nanos now, std::uint64_t transfer,
                                       double incremental_rate,
                                       double full_rate);

  // -- GPU memory accounting -------------------------------------------
  // `spans` is the concatenation of free blocks and live allocations, in any
  // order; they must tile [0, capacity] exactly and sum to used + free.
  static void OnArenaUpdate(std::int64_t capacity, std::int64_t used,
                            std::vector<ArenaSpan> spans);

  // -- instance residency ----------------------------------------------
  static void OnEvict(int instance, bool resident, bool busy);
  static void OnMakeResident(int instance, std::int64_t used,
                             std::int64_t capacity);

  // -- serving accounting ----------------------------------------------
  // The four phases must tile [arrival, completion]: arrival <= start,
  // evict/load >= 0, start + evict + load <= completion; warm requests must
  // carry no cold-start components.
  static void OnRequestComplete(Nanos arrival, Nanos start, Nanos evict,
                                Nanos load, Nanos completion, bool cold,
                                int evictions);
  // Mean latency components must stay additive (queue + cold + exec ==
  // total, within floating-point tolerance).
  static void OnBreakdown(double mean_queue_ms, double mean_cold_ms,
                          double mean_exec_ms, double mean_total_ms);

  // -- profiling attribution -------------------------------------------
  // The critical-path engine's components must sum exactly (integer ns) to
  // the request's end-to-end latency.
  static void OnAttribution(int request, Nanos latency, Nanos attributed);
};

}  // namespace check
}  // namespace deepplan

#endif  // SRC_CHECK_VALIDATOR_H_
