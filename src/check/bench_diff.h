// Bench regression gate: structural comparison of two BENCH_*.json documents.
// Walks both DOMs in lockstep and reports every divergence with a JSON-path
// style location. Numbers compare under a configurable relative tolerance
// (plus a tiny absolute floor for values near zero); strings, bools, and
// structure must match exactly. Machine-dependent keys ("wall_clock_ms",
// "jobs" by default) are skipped wherever they appear, so goldens recorded on
// one host gate runs on another.
//
// Used by tools/bench_diff (nonzero exit on any difference) and wired into
// scripts/run_all.sh against the checked-in goldens under bench/golden/.
#ifndef SRC_CHECK_BENCH_DIFF_H_
#define SRC_CHECK_BENCH_DIFF_H_

#include <string>
#include <vector>

namespace deepplan {
namespace check {

struct BenchDiffOptions {
  double rel_tol = 0.0;   // relative tolerance for numeric leaves
  double abs_tol = 1e-9;  // absolute floor (values this close count equal)
  // Keys skipped at any depth — machine/load dependent, never regressions.
  std::vector<std::string> ignored_keys = {"wall_clock_ms", "jobs"};
};

struct BenchDiffEntry {
  std::string path;    // e.g. "points[3].mean_latency_ms"
  std::string detail;  // e.g. "12.5 -> 14.1 (rel diff 0.128 > tol 0.1)"
};

struct BenchDiffResult {
  bool parsed = false;       // both inputs were valid JSON
  std::string parse_error;   // set when !parsed
  std::vector<BenchDiffEntry> diffs;

  bool ok() const { return parsed && diffs.empty(); }
};

BenchDiffResult DiffBenchReports(const std::string& golden,
                                 const std::string& candidate,
                                 const BenchDiffOptions& options);

}  // namespace check
}  // namespace deepplan

#endif  // SRC_CHECK_BENCH_DIFF_H_
