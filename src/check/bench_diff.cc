#include "src/check/bench_diff.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/json_parse.h"

namespace deepplan {
namespace check {

namespace {

const char* KindName(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull:
      return "null";
    case JsonValue::Kind::kBool:
      return "bool";
    case JsonValue::Kind::kNumber:
      return "number";
    case JsonValue::Kind::kString:
      return "string";
    case JsonValue::Kind::kArray:
      return "array";
    case JsonValue::Kind::kObject:
      return "object";
  }
  return "?";
}

class Differ {
 public:
  Differ(const BenchDiffOptions& options, BenchDiffResult* result)
      : options_(options), result_(result) {}

  void Compare(const std::string& path, const JsonValue& golden,
               const JsonValue& candidate) {
    if (golden.kind() != candidate.kind()) {
      std::ostringstream os;
      os << KindName(golden.kind()) << " -> " << KindName(candidate.kind());
      Report(path, os.str());
      return;
    }
    switch (golden.kind()) {
      case JsonValue::Kind::kNull:
        break;
      case JsonValue::Kind::kBool:
        if (golden.AsBool() != candidate.AsBool()) {
          Report(path, golden.AsBool() ? "true -> false" : "false -> true");
        }
        break;
      case JsonValue::Kind::kNumber:
        CompareNumbers(path, golden.AsNumber(), candidate.AsNumber());
        break;
      case JsonValue::Kind::kString:
        if (golden.AsString() != candidate.AsString()) {
          Report(path,
                 "\"" + golden.AsString() + "\" -> \"" + candidate.AsString() +
                     "\"");
        }
        break;
      case JsonValue::Kind::kArray:
        CompareArrays(path, golden, candidate);
        break;
      case JsonValue::Kind::kObject:
        CompareObjects(path, golden, candidate);
        break;
    }
  }

 private:
  bool Ignored(const std::string& key) const {
    return std::find(options_.ignored_keys.begin(),
                     options_.ignored_keys.end(),
                     key) != options_.ignored_keys.end();
  }

  void Report(const std::string& path, const std::string& detail) {
    result_->diffs.push_back({path, detail});
  }

  void CompareNumbers(const std::string& path, double golden,
                      double candidate) {
    const double diff = std::abs(golden - candidate);
    if (diff <= options_.abs_tol) {
      return;
    }
    const double scale = std::max(std::abs(golden), std::abs(candidate));
    if (scale > 0.0 && diff / scale <= options_.rel_tol) {
      return;
    }
    std::ostringstream os;
    os << golden << " -> " << candidate;
    if (scale > 0.0) {
      os << " (rel diff " << diff / scale << " > tol " << options_.rel_tol
         << ")";
    }
    Report(path, os.str());
  }

  void CompareArrays(const std::string& path, const JsonValue& golden,
                     const JsonValue& candidate) {
    const auto& g = golden.items();
    const auto& c = candidate.items();
    if (g.size() != c.size()) {
      std::ostringstream os;
      os << "array length " << g.size() << " -> " << c.size();
      Report(path, os.str());
      return;
    }
    for (std::size_t i = 0; i < g.size(); ++i) {
      std::ostringstream os;
      os << path << "[" << i << "]";
      Compare(os.str(), g[i], c[i]);
    }
  }

  void CompareObjects(const std::string& path, const JsonValue& golden,
                      const JsonValue& candidate) {
    for (const auto& [key, value] : golden.fields()) {
      if (Ignored(key)) {
        continue;
      }
      const std::string child = path.empty() ? key : path + "." + key;
      const JsonValue* other = candidate.Find(key);
      if (other == nullptr) {
        Report(child, "missing in candidate");
        continue;
      }
      Compare(child, value, *other);
    }
    for (const auto& [key, value] : candidate.fields()) {
      (void)value;
      if (Ignored(key)) {
        continue;
      }
      if (golden.Find(key) == nullptr) {
        Report(path.empty() ? key : path + "." + key,
               "not present in golden");
      }
    }
  }

  const BenchDiffOptions& options_;
  BenchDiffResult* result_;
};

}  // namespace

BenchDiffResult DiffBenchReports(const std::string& golden,
                                 const std::string& candidate,
                                 const BenchDiffOptions& options) {
  BenchDiffResult result;
  const JsonParseResult g = ParseJson(golden);
  if (!g.ok) {
    result.parse_error = "golden: " + g.error;
    return result;
  }
  const JsonParseResult c = ParseJson(candidate);
  if (!c.ok) {
    result.parse_error = "candidate: " + c.error;
    return result;
  }
  result.parsed = true;
  Differ(options, &result).Compare("", g.value, c.value);
  return result;
}

}  // namespace check
}  // namespace deepplan
