// Offline re-validation of exported Chrome/Perfetto JSON traces: the
// standalone `trace_lint` tool (tools/trace_lint_main.cc) and CI run this
// over captured artifacts so a malformed trace fails loudly instead of
// rendering wrong in ui.perfetto.dev. Checks, per document:
//
//   structure  — top-level object with a "traceEvents" array of objects;
//                every event carries a known "ph" and the fields that phase
//                requires (pid everywhere; tid+name+ts for thread events;
//                dur >= 0 for complete slices; one numeric series per
//                counter sample; cat+id for async begin/end)
//   ordering   — non-metadata events sorted by ts (the writer guarantees
//                byte-stable sorted output; unsorted output breaks both
//                determinism diffs and stream-processing consumers)
//   metadata   — every (pid, tid) referenced by a thread event has a
//                thread_name record, and when process_name records exist
//                every referenced pid has one
//   nesting    — complete slices ("X") on one (pid, tid) track are properly
//                nested or disjoint (partially-overlapping slices are
//                dropped or mis-rendered by trace viewers)
//   async      — begin/end pairs ("b"/"e") balance per (pid, cat, id) with
//                end no earlier than begin
//   counters   — cumulative counter tracks (name prefixed "cum/", e.g.
//                "cum/fabric.bytes", "cum/requests") never decrease per
//                (pid, name, series)
//
// LintProfileReport validates the {"profile_report":{...}} JSON emitted by
// tools/profile_report and the bench --profile_out flag: required fields and
// types, attribution components summing exactly to each request's latency,
// and utilization entries staying within their observation span.
//
// LintWhatIfReport validates the {"whatif_report":{...}} JSON emitted by
// tools/whatif_report and the bench --whatif_out flag: required fields and
// types, positive hardware scales, quantile monotonicity (p50 <= p95 <= p99
// <= max), per-request rows matching the request count with delta_ns equal
// to predicted - baseline, and the identity replay's self-check flag
// (baseline_matches_journal false is a lint error — predictions from a
// replay that cannot reproduce its own journal are untrustworthy).
// LintSelfprofReport validates the {"selfprof_report":{...}} JSON emitted by
// the bench --selfprof_out flags (src/obs/selfprof.h): schema version,
// non-empty uniquely-named lanes, phase-tree well-formedness (root phase
// "total", no duplicate child phases, counts and sampled counts consistent),
// the exactness invariant exclusive_ns = inclusive_ns - sum(child inclusive)
// with exclusive_ns >= 0 and estimated_ns >= inclusive_ns, and the aggregate
// lane's counts/counters equalling the per-lane sums. Accepts both the full
// report and its deterministic projection (which carries no *_ns fields).
#ifndef SRC_CHECK_TRACE_LINT_H_
#define SRC_CHECK_TRACE_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace deepplan {
namespace check {

struct TraceLintOptions {
  // Stop collecting (but keep counting) errors past this many.
  std::size_t max_reported_errors = 20;
};

struct TraceLintResult {
  bool ok() const { return num_errors == 0; }

  std::size_t num_errors = 0;
  std::vector<std::string> errors;  // first max_reported_errors, with context

  std::size_t num_events = 0;    // entries of traceEvents
  std::size_t num_spans = 0;     // "X"
  std::size_t num_counters = 0;  // "C"
  std::size_t num_asyncs = 0;    // "b" + "e"
  std::size_t num_tracks = 0;    // distinct (pid, tid) thread tracks
};

// Lints `json_text` as one Chrome-trace JSON document.
TraceLintResult LintChromeTrace(const std::string& json_text,
                                const TraceLintOptions& options = {});

// Convenience for tools: reads `path` and lints it; an unreadable file is a
// lint error.
TraceLintResult LintChromeTraceFile(const std::string& path,
                                    const TraceLintOptions& options = {});

// Schema check for profile-report JSON (see header comment). Reuses
// TraceLintResult for error accounting; the trace-specific counters stay 0.
TraceLintResult LintProfileReport(const std::string& json_text,
                                  const TraceLintOptions& options = {});
TraceLintResult LintProfileReportFile(const std::string& path,
                                      const TraceLintOptions& options = {});

// Schema check for what-if report JSON (see header comment).
TraceLintResult LintWhatIfReport(const std::string& json_text,
                                 const TraceLintOptions& options = {});
TraceLintResult LintWhatIfReportFile(const std::string& path,
                                     const TraceLintOptions& options = {});

// Schema + consistency check for self-profiling report JSON (see header
// comment). num_tracks reports the number of lanes on success.
TraceLintResult LintSelfprofReport(const std::string& json_text,
                                   const TraceLintOptions& options = {});
TraceLintResult LintSelfprofReportFile(const std::string& path,
                                       const TraceLintOptions& options = {});

}  // namespace check
}  // namespace deepplan

#endif  // SRC_CHECK_TRACE_LINT_H_
