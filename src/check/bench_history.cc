#include "src/check/bench_history.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "src/util/json_parse.h"

namespace deepplan {
namespace check {

namespace {

bool IsBenchFile(const std::string& name) {
  constexpr const char kPrefix[] = "BENCH_";
  constexpr const char kSuffix[] = ".json";
  return name.size() > sizeof(kPrefix) + sizeof(kSuffix) - 2 &&
         name.compare(0, sizeof(kPrefix) - 1, kPrefix) == 0 &&
         name.compare(name.size() - (sizeof(kSuffix) - 1), sizeof(kSuffix) - 1,
                      kSuffix) == 0;
}

bool ParseBenchRun(const std::string& path, const std::string& dir,
                   BenchRun* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const JsonParseResult parsed = ParseJson(buffer.str());
  if (!parsed.ok) {
    *error = path + ": " + parsed.error;
    return false;
  }
  const JsonValue& doc = parsed.value;
  const JsonValue* bench = doc.is_object() ? doc.Find("bench") : nullptr;
  const JsonValue* jobs = doc.is_object() ? doc.Find("jobs") : nullptr;
  const JsonValue* points = doc.is_object() ? doc.Find("points") : nullptr;
  const JsonValue* wall = doc.is_object() ? doc.Find("wall_clock_ms") : nullptr;
  if (bench == nullptr || !bench->is_string() || jobs == nullptr ||
      !jobs->is_number() || points == nullptr || !points->is_array() ||
      wall == nullptr || !wall->is_number() || wall->AsNumber() < 0.0) {
    *error = path + ": not a BENCH report (need bench/jobs/points/wall_clock_ms)";
    return false;
  }
  out->path = path;
  out->dir = dir;
  out->bench = bench->AsString();
  out->jobs = static_cast<int>(jobs->AsNumber());
  out->num_points = points->items().size();
  out->wall_clock_ms = wall->AsNumber();
  return true;
}

}  // namespace

std::vector<BenchRun> ScanBenchDir(const std::string& dir,
                                   std::vector<std::string>* errors) {
  std::vector<BenchRun> runs;
  std::error_code ec;
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && IsBenchFile(entry.path().filename())) {
      names.push_back(entry.path().filename());
    }
  }
  if (ec) {
    if (errors != nullptr) {
      errors->push_back("cannot scan " + dir + ": " + ec.message());
    }
    return runs;
  }
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    BenchRun run;
    std::string error;
    if (ParseBenchRun(dir + "/" + name, dir, &run, &error)) {
      runs.push_back(std::move(run));
    } else if (errors != nullptr) {
      errors->push_back(std::move(error));
    }
  }
  return runs;
}

std::vector<BenchComparison> CompareBenchRuns(
    const std::vector<BenchRun>& baseline,
    const std::vector<BenchRun>& candidate, double max_slowdown) {
  // Best (minimum) wall-clock per bench name on each side; std::map keys the
  // output alphabetically, independent of scan order.
  std::map<std::string, double> base_best;
  std::map<std::string, double> cand_best;
  for (const BenchRun& run : baseline) {
    const auto [it, inserted] = base_best.emplace(run.bench, run.wall_clock_ms);
    if (!inserted) {
      it->second = std::min(it->second, run.wall_clock_ms);
    }
  }
  for (const BenchRun& run : candidate) {
    const auto [it, inserted] = cand_best.emplace(run.bench, run.wall_clock_ms);
    if (!inserted) {
      it->second = std::min(it->second, run.wall_clock_ms);
    }
  }
  std::map<std::string, BenchComparison> merged;
  for (const auto& [bench, best] : base_best) {
    merged[bench].bench = bench;
    merged[bench].baseline_best_ms = best;
  }
  for (const auto& [bench, best] : cand_best) {
    merged[bench].bench = bench;
    merged[bench].candidate_best_ms = best;
  }
  std::vector<BenchComparison> out;
  for (auto& [bench, cmp] : merged) {
    if (cmp.baseline_best_ms > 0.0 && cmp.candidate_best_ms >= 0.0) {
      cmp.slowdown = cmp.candidate_best_ms / cmp.baseline_best_ms;
      cmp.regressed = max_slowdown > 0.0 && cmp.slowdown > max_slowdown;
    }
    out.push_back(std::move(cmp));
  }
  return out;
}

}  // namespace check
}  // namespace deepplan
