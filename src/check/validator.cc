#include "src/check/validator.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/obs/selfprof.h"

namespace deepplan {
namespace check {

namespace {

// Tolerances mirror the fabric's own drain threshold: a completion event is
// scheduled on the next whole nanosecond, so up to one rate*1ns of byte
// residue (bounded by 1 byte at realistic rates, plus float noise) remains.
constexpr double kByteResidue = 1.0 + 1e-6;
// Relative slack for summing fair shares against a link capacity.
constexpr double kRateSlack = 1e-6;

std::atomic<std::uint64_t> g_checks_run{0};

// -1 = use environment, 0 = forced off, 1 = forced on.
std::atomic<int> g_override{-1};

bool EnvEnabled() {
  const char* v = std::getenv("DEEPPLAN_VALIDATE");
  if (v == nullptr || v[0] == '\0') {
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
  }
  return !(v[0] == '0' && v[1] == '\0');
}

void Count() {
  g_checks_run.fetch_add(1, std::memory_order_relaxed);
  selfprof::AddCount(selfprof::Counter::kValidatorChecks, 1);
}

}  // namespace

bool ValidationEnabled() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) {
    return forced != 0;
  }
  static const bool enabled = EnvEnabled();
  return enabled;
}

void SetValidationForTesting(int mode) {
  g_override.store(mode < 0 ? -1 : (mode != 0 ? 1 : 0),
                   std::memory_order_relaxed);
}

std::uint64_t ChecksRun() {
  return g_checks_run.load(std::memory_order_relaxed);
}

void Fail(const char* invariant, const std::string& detail) {
  std::fprintf(stderr, "deepplan validator: %s violated: %s\n", invariant,
               detail.c_str());
  std::fflush(stderr);
  std::abort();
}

void SimValidator::OnSchedule(Nanos now, Nanos when) {
  if (!enabled()) {
    return;
  }
  Count();
  if (when < now) {
    std::ostringstream os;
    os << "event scheduled in the past: when=" << when << "ns < now=" << now
       << "ns";
    Fail("causality", os.str());
  }
}

void SimValidator::OnEventFire(Nanos now, Nanos when) {
  if (!enabled()) {
    return;
  }
  Count();
  if (when < now) {
    std::ostringstream os;
    os << "event fires before current sim time: event time=" << when
       << "ns < now=" << now << "ns";
    Fail("causality", os.str());
  }
}

void SimValidator::OnQueuePop(Nanos prev_popped, Nanos when) {
  if (!enabled()) {
    return;
  }
  Count();
  if (when < prev_popped) {
    std::ostringstream os;
    os << "event-queue pop order not monotone: popped t=" << when
       << "ns after t=" << prev_popped << "ns";
    Fail("causality", os.str());
  }
}

void SimValidator::OnStreamOpStart(const std::string& stream, Nanos prev_start,
                                   Nanos start) {
  if (!enabled()) {
    return;
  }
  Count();
  if (start < prev_start) {
    std::ostringstream os;
    os << "stream \"" << stream << "\" op order not monotone: op starts at t="
       << start << "ns after an op started at t=" << prev_start << "ns";
    Fail("causality", os.str());
  }
}

void SimValidator::OnSyncEventFire(const char* what, bool already_fired,
                                   Nanos now) {
  if (!enabled()) {
    return;
  }
  Count();
  if (already_fired) {
    std::ostringstream os;
    os << what << " fired twice (second fire at t=" << now << "ns)";
    Fail("causality", os.str());
  }
}

void SimValidator::OnFabricAllocation(Nanos now,
                                      const std::vector<FabricLinkShare>& links) {
  if (!enabled()) {
    return;
  }
  // Heavy hooks (per-link loops, sorts, per-request accounting) carry a
  // timed scope *after* the enabled() early-out, so validation-off runs pay
  // nothing; cheap per-event hooks stay scope-free.
  DP_SELFPROF_SCOPE(kValidate);
  for (const FabricLinkShare& link : links) {
    Count();
    if (link.allocated < 0.0) {
      std::ostringstream os;
      os << "negative allocation on link \"" << link.name
         << "\": " << link.allocated << " B/s at t=" << now << "ns";
      Fail("fabric flow conservation", os.str());
    }
    if (link.allocated > link.capacity * (1.0 + kRateSlack)) {
      std::ostringstream os;
      os << "link \"" << link.name << "\" oversubscribed: "
         << link.transfers << " transfers allocate " << link.allocated
         << " B/s > capacity " << link.capacity << " B/s at t=" << now << "ns";
      Fail("fabric flow conservation", os.str());
    }
  }
}

void SimValidator::OnTransferRate(Nanos now, std::uint64_t transfer,
                                  double rate) {
  if (!enabled()) {
    return;
  }
  Count();
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    std::ostringstream os;
    os << "in-flight transfer " << transfer
       << " has non-positive fair share " << rate << " B/s at t=" << now
       << "ns (it would never drain)";
    Fail("fabric flow conservation", os.str());
  }
}

void SimValidator::OnTransferComplete(Nanos now, std::uint64_t transfer,
                                      double moved_bytes, double total_bytes) {
  if (!enabled()) {
    return;
  }
  Count();
  if (std::abs(moved_bytes - total_bytes) > kByteResidue) {
    std::ostringstream os;
    os << "transfer " << transfer << " completed at t=" << now
       << "ns having moved " << moved_bytes << " of " << total_bytes
       << " bytes";
    Fail("fabric flow conservation", os.str());
  }
}

void SimValidator::OnFabricIncrementalSolve(Nanos now, std::uint64_t transfer,
                                            double incremental_rate,
                                            double full_rate) {
  if (!enabled()) {
    return;
  }
  DP_SELFPROF_SCOPE(kValidate);
  Count();
  // Bitwise comparison on purpose: the incremental solve claims the exact
  // same arithmetic as the full re-solve, not an approximation of it.
  if (incremental_rate != full_rate) {
    std::ostringstream os;
    os.precision(17);
    os << "incremental fair-share diverged from full re-solve at t=" << now
       << "ns: transfer " << transfer << " incremental=" << incremental_rate
       << " full=" << full_rate << " bytes/sec";
    Fail("fabric fair share", os.str());
  }
}

void SimValidator::OnArenaUpdate(std::int64_t capacity, std::int64_t used,
                                 std::vector<ArenaSpan> spans) {
  if (!enabled()) {
    return;
  }
  DP_SELFPROF_SCOPE(kValidate);
  Count();
  std::sort(spans.begin(), spans.end(),
            [](const ArenaSpan& a, const ArenaSpan& b) {
              return a.offset < b.offset;
            });
  std::int64_t cursor = 0;
  std::int64_t free_total = 0;
  std::int64_t used_total = 0;
  bool prev_free = false;
  for (const ArenaSpan& span : spans) {
    if (span.bytes <= 0) {
      std::ostringstream os;
      os << (span.free ? "free block" : "allocation") << " at offset "
         << span.offset << " has non-positive size " << span.bytes;
      Fail("gpu memory accounting", os.str());
    }
    if (span.offset != cursor) {
      std::ostringstream os;
      os << (span.offset > cursor ? "gap" : "overlap") << " in arena at ["
         << std::min(cursor, span.offset) << ", "
         << std::max(cursor, span.offset) << ") — spans do not tile [0, "
         << capacity << ")";
      Fail("gpu memory accounting", os.str());
    }
    if (span.free && prev_free) {
      std::ostringstream os;
      os << "adjacent free blocks not coalesced at offset " << span.offset;
      Fail("gpu memory accounting", os.str());
    }
    prev_free = span.free;
    (span.free ? free_total : used_total) += span.bytes;
    cursor += span.bytes;
  }
  if (cursor != capacity) {
    std::ostringstream os;
    os << "arena spans cover [0, " << cursor << ") but capacity is "
       << capacity;
    Fail("gpu memory accounting", os.str());
  }
  if (used_total != used || free_total + used_total != capacity) {
    std::ostringstream os;
    os << "free (" << free_total << ") + resident (" << used_total
       << ") != capacity (" << capacity << "), accounted used=" << used;
    Fail("gpu memory accounting", os.str());
  }
}

void SimValidator::OnEvict(int instance, bool resident, bool busy) {
  if (!enabled()) {
    return;
  }
  Count();
  if (!resident) {
    std::ostringstream os;
    os << "eviction of non-resident instance " << instance
       << " (double evict?)";
    Fail("instance residency", os.str());
  }
  if (busy) {
    std::ostringstream os;
    os << "eviction of busy instance " << instance
       << " (victim selection must skip executing instances)";
    Fail("instance residency", os.str());
  }
}

void SimValidator::OnMakeResident(int instance, std::int64_t used,
                                  std::int64_t capacity) {
  if (!enabled()) {
    return;
  }
  Count();
  if (used > capacity) {
    std::ostringstream os;
    os << "provisioning instance " << instance << " left " << used
       << " bytes resident on a " << capacity << "-byte GPU";
    Fail("gpu memory accounting", os.str());
  }
}

void SimValidator::OnRequestComplete(Nanos arrival, Nanos start, Nanos evict,
                                     Nanos load, Nanos completion, bool cold,
                                     int evictions) {
  if (!enabled()) {
    return;
  }
  DP_SELFPROF_SCOPE(kValidate);
  Count();
  const auto fail = [&](const char* what) {
    std::ostringstream os;
    os << what << ": arrival=" << arrival << " start=" << start
       << " evict=" << evict << " load=" << load
       << " completion=" << completion << " cold=" << (cold ? 1 : 0)
       << " evictions=" << evictions;
    Fail("serving accounting", os.str());
  };
  if (start < arrival) {
    fail("request dispatched before it arrived");
  }
  if (evict < 0 || load < 0 || evictions < 0) {
    fail("negative cold-start component");
  }
  if (completion < start + evict + load) {
    fail("phases exceed [start, completion] — spans do not tile the request");
  }
  if (!cold && (evict != 0 || load != 0 || evictions != 0)) {
    fail("warm request carries cold-start components");
  }
  if (evictions == 0 && evict != 0) {
    fail("eviction delay without evictions");
  }
}

void SimValidator::OnBreakdown(double mean_queue_ms, double mean_cold_ms,
                               double mean_exec_ms, double mean_total_ms) {
  if (!enabled()) {
    return;
  }
  Count();
  const double sum = mean_queue_ms + mean_cold_ms + mean_exec_ms;
  const double slack =
      1e-6 * std::max(1.0, std::abs(mean_total_ms));
  if (std::abs(sum - mean_total_ms) > slack) {
    std::ostringstream os;
    os << "latency breakdown not additive: queue " << mean_queue_ms
       << " + cold " << mean_cold_ms << " + exec " << mean_exec_ms << " = "
       << sum << " != total " << mean_total_ms << " (ms)";
    Fail("serving accounting", os.str());
  }
}

void SimValidator::OnAttribution(int request, Nanos latency, Nanos attributed) {
  if (!enabled()) {
    return;
  }
  DP_SELFPROF_SCOPE(kValidate);
  Count();
  if (attributed != latency) {
    std::ostringstream os;
    os << "request " << request << " attribution components sum to "
       << attributed << "ns but end-to-end latency is " << latency << "ns";
    Fail("profiling attribution", os.str());
  }
}

}  // namespace check
}  // namespace deepplan
