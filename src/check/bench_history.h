// Bench wall-clock trajectory: scans directories of BENCH_*.json documents
// (the machine-readable output every bench writes, bench/bench_util.h) and
// tracks how each bench's wall_clock_ms evolves across snapshots — the
// "is the simulator getting slower?" companion to bench_diff's "is it still
// correct?". Used by tools/bench_history for two jobs:
//
//   trajectory  — one row per (bench, snapshot dir) with the recorded wall
//                 clock, jobs, and point count, in directory order, so a CI
//                 archive of result dirs reads as a perf timeline; and
//   gate        — best-of candidate dirs vs best-of baseline dirs per bench;
//                 a candidate/baseline ratio above --max_slowdown fails.
//                 Best-of (minimum) on both sides absorbs scheduler noise:
//                 run each side several times and compare the fastest runs.
//
// Deliberately decoupled from the benches themselves: it only needs the four
// stable top-level fields ("bench", "jobs", "points", "wall_clock_ms"), so it
// works on any past or future BENCH_*.json without recompiling old binaries.
#ifndef SRC_CHECK_BENCH_HISTORY_H_
#define SRC_CHECK_BENCH_HISTORY_H_

#include <cstddef>
#include <string>
#include <vector>

namespace deepplan {
namespace check {

// One parsed BENCH_*.json document.
struct BenchRun {
  std::string path;        // file it came from
  std::string dir;         // snapshot directory it was scanned from
  std::string bench;       // top-level "bench" name
  int jobs = 0;            // DEEPPLAN_JOBS recorded by the run
  std::size_t num_points = 0;  // entries of "points"
  double wall_clock_ms = 0.0;
};

// Scans `dir` (non-recursive) for files matching BENCH_*.json, in sorted
// filename order so output is host-independent. Unreadable or malformed
// files append a message to `errors` and are skipped.
std::vector<BenchRun> ScanBenchDir(const std::string& dir,
                                   std::vector<std::string>* errors);

// Per-bench verdict of the candidate-vs-baseline gate.
struct BenchComparison {
  std::string bench;
  double baseline_best_ms = -1.0;   // min over baseline runs; -1 if absent
  double candidate_best_ms = -1.0;  // min over candidate runs; -1 if absent
  double slowdown = 0.0;            // candidate_best / baseline_best
  bool regressed = false;           // slowdown > max_slowdown (gating only)
};

// Compares best (minimum) wall-clock per bench name across the two run sets.
// Benches present on only one side get best_ms -1 on the other and never
// regress (a new bench is not a slowdown). `max_slowdown` <= 0 means
// report-only: slowdowns are computed but `regressed` stays false.
std::vector<BenchComparison> CompareBenchRuns(
    const std::vector<BenchRun>& baseline,
    const std::vector<BenchRun>& candidate, double max_slowdown);

}  // namespace check
}  // namespace deepplan

#endif  // SRC_CHECK_BENCH_HISTORY_H_
