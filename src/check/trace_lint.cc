#include "src/check/trace_lint.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "src/util/json_parse.h"

namespace deepplan {
namespace check {

namespace {

// Timestamps are microseconds rendered at nanosecond precision; allow half a
// nanosecond of floating-point slack in interval comparisons.
constexpr double kTsSlackUs = 5e-4;

class Linter {
 public:
  Linter(const TraceLintOptions& options, TraceLintResult* result)
      : options_(options), result_(result) {}

  void Error(std::size_t index, const std::string& what) {
    ++result_->num_errors;
    if (result_->errors.size() < options_.max_reported_errors) {
      std::ostringstream os;
      os << "event " << index << ": " << what;
      result_->errors.push_back(os.str());
    }
  }

  void DocError(const std::string& what) {
    ++result_->num_errors;
    if (result_->errors.size() < options_.max_reported_errors) {
      result_->errors.push_back(what);
    }
  }

  void Lint(const std::string& json_text) {
    const JsonParseResult parsed = ParseJson(json_text);
    if (!parsed.ok) {
      DocError("not valid JSON: " + parsed.error);
      return;
    }
    if (!parsed.value.is_object()) {
      DocError("top level is not an object");
      return;
    }
    const JsonValue* events = parsed.value.Find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      DocError("missing \"traceEvents\" array");
      return;
    }
    result_->num_events = events->items().size();
    for (std::size_t i = 0; i < events->items().size(); ++i) {
      LintEvent(i, events->items()[i]);
    }
    CheckMetadataCoverage();
    CheckNesting();
    CheckAsyncBalance();
    result_->num_tracks = thread_tracks_.size();
  }

 private:
  struct Span {
    std::size_t index;
    double ts;
    double end;
    std::string name;
  };

  static const JsonValue* Field(const JsonValue& e, const char* key) {
    return e.is_object() ? e.Find(key) : nullptr;
  }

  bool RequireNumber(std::size_t i, const JsonValue& e, const char* key,
                     double* out) {
    const JsonValue* v = Field(e, key);
    if (v == nullptr || !v->is_number()) {
      Error(i, std::string("missing numeric \"") + key + "\"");
      return false;
    }
    if (out != nullptr) {
      *out = v->AsNumber();
    }
    return true;
  }

  bool RequireString(std::size_t i, const JsonValue& e, const char* key,
                     std::string* out) {
    const JsonValue* v = Field(e, key);
    if (v == nullptr || !v->is_string()) {
      Error(i, std::string("missing string \"") + key + "\"");
      return false;
    }
    if (out != nullptr) {
      *out = v->AsString();
    }
    return true;
  }

  void LintEvent(std::size_t i, const JsonValue& e) {
    if (!e.is_object()) {
      Error(i, "not an object");
      return;
    }
    std::string ph;
    if (!RequireString(i, e, "ph", &ph)) {
      return;
    }
    double pid = 0.0;
    if (!RequireNumber(i, e, "pid", &pid)) {
      return;
    }
    if (ph == "M") {
      LintMetadata(i, e, pid);
      return;
    }
    double ts = 0.0;
    if (!RequireNumber(i, e, "ts", &ts)) {
      return;
    }
    // The writer emits events sorted by timestamp (metadata first).
    if (seen_ts_ && ts < last_ts_ - kTsSlackUs) {
      std::ostringstream os;
      os << "ts " << ts << "us out of order (previous event at " << last_ts_
         << "us)";
      Error(i, os.str());
    }
    seen_ts_ = true;
    last_ts_ = std::max(last_ts_, ts);

    if (ph == "X" || ph == "i") {
      double tid = 0.0;
      std::string name;
      if (!RequireNumber(i, e, "tid", &tid) ||
          !RequireString(i, e, "name", &name)) {
        return;
      }
      const auto track = std::make_pair(static_cast<long long>(pid),
                                        static_cast<long long>(tid));
      thread_tracks_.insert(track);
      used_pids_.insert(track.first);
      if (ph == "X") {
        ++result_->num_spans;
        double dur = 0.0;
        if (!RequireNumber(i, e, "dur", &dur)) {
          return;
        }
        if (dur < 0.0) {
          std::ostringstream os;
          os << "negative dur " << dur << "us";
          Error(i, os.str());
          return;
        }
        spans_[track].push_back(Span{i, ts, ts + dur, name});
      }
      return;
    }
    if (ph == "C") {
      ++result_->num_counters;
      used_pids_.insert(static_cast<long long>(pid));
      std::string name;
      if (!RequireString(i, e, "name", &name)) {
        return;
      }
      const JsonValue* args = Field(e, "args");
      if (args == nullptr || !args->is_object() || args->fields().empty()) {
        Error(i, "counter without args series");
        return;
      }
      for (const auto& [series, value] : args->fields()) {
        if (!value.is_number()) {
          Error(i, "counter series \"" + series + "\" is not numeric");
          continue;
        }
        // Counters namespaced "cum/" promise to be cumulative: samples on
        // one (pid, name, series) track must never decrease.
        if (name.rfind("cum/", 0) == 0) {
          std::ostringstream key;
          key << pid << "/" << name << "/" << series;
          auto [it, fresh] =
              cumulative_.emplace(key.str(), value.AsNumber());
          if (!fresh) {
            if (value.AsNumber() < it->second - 1e-9) {
              std::ostringstream os;
              os << "cumulative counter \"" << name << "\" series \"" << series
                 << "\" decreased: " << it->second << " -> "
                 << value.AsNumber();
              Error(i, os.str());
            }
            it->second = std::max(it->second, value.AsNumber());
          }
        }
      }
      return;
    }
    if (ph == "b" || ph == "e") {
      ++result_->num_asyncs;
      double tid = 0.0;
      std::string cat;
      if (!RequireNumber(i, e, "tid", &tid) ||
          !RequireString(i, e, "cat", &cat) ||
          !RequireString(i, e, "name", nullptr)) {
        return;
      }
      const JsonValue* id = Field(e, "id");
      if (id == nullptr || (!id->is_number() && !id->is_string())) {
        Error(i, "async event without id");
        return;
      }
      const auto track = std::make_pair(static_cast<long long>(pid),
                                        static_cast<long long>(tid));
      thread_tracks_.insert(track);
      used_pids_.insert(track.first);
      std::ostringstream key;
      key << pid << "/" << cat << "/";
      if (id->is_number()) {
        key << id->AsNumber();
      } else {
        key << id->AsString();
      }
      auto& state = asyncs_[key.str()];
      if (ph == "b") {
        ++state.open;
        state.last_begin = ts;
      } else {
        if (state.open == 0) {
          Error(i, "async end without matching begin (" + key.str() + ")");
        } else {
          --state.open;
          if (ts < state.last_begin - kTsSlackUs) {
            Error(i, "async end before its begin (" + key.str() + ")");
          }
        }
      }
      return;
    }
    Error(i, "unknown phase \"" + ph + "\"");
  }

  void LintMetadata(std::size_t i, const JsonValue& e, double pid) {
    std::string name;
    if (!RequireString(i, e, "name", &name)) {
      return;
    }
    const JsonValue* args = Field(e, "args");
    const JsonValue* arg_name =
        args != nullptr && args->is_object() ? args->Find("name") : nullptr;
    if (arg_name == nullptr || !arg_name->is_string()) {
      Error(i, "metadata without args.name");
      return;
    }
    if (name == "process_name") {
      named_pids_.insert(static_cast<long long>(pid));
      has_process_names_ = true;
      return;
    }
    if (name == "thread_name") {
      double tid = 0.0;
      if (!RequireNumber(i, e, "tid", &tid)) {
        return;
      }
      named_tracks_.insert(std::make_pair(static_cast<long long>(pid),
                                          static_cast<long long>(tid)));
      return;
    }
    Error(i, "unknown metadata record \"" + name + "\"");
  }

  void CheckMetadataCoverage() {
    for (const auto& track : thread_tracks_) {
      if (named_tracks_.count(track) == 0) {
        std::ostringstream os;
        os << "no thread_name metadata for pid " << track.first << " tid "
           << track.second;
        DocError(os.str());
      }
    }
    if (has_process_names_) {
      for (const long long pid : used_pids_) {
        if (named_pids_.count(pid) == 0) {
          std::ostringstream os;
          os << "no process_name metadata for pid " << pid;
          DocError(os.str());
        }
      }
    }
  }

  void CheckNesting() {
    for (auto& [track, spans] : spans_) {
      // Events arrive writer-sorted; re-sort defensively (ts, longer first)
      // so the lint result does not depend on prior ordering errors.
      std::stable_sort(spans.begin(), spans.end(),
                       [](const Span& a, const Span& b) {
                         if (a.ts != b.ts) {
                           return a.ts < b.ts;
                         }
                         return a.end > b.end;
                       });
      std::vector<const Span*> stack;
      for (const Span& span : spans) {
        while (!stack.empty() && stack.back()->end <= span.ts + kTsSlackUs) {
          stack.pop_back();
        }
        if (!stack.empty() && span.end > stack.back()->end + kTsSlackUs) {
          std::ostringstream os;
          os << "slice \"" << span.name << "\" [" << span.ts << ", "
             << span.end << ")us on pid " << track.first << " tid "
             << track.second << " partially overlaps \"" << stack.back()->name
             << "\" [" << stack.back()->ts << ", " << stack.back()->end
             << ")us — slices must nest or be disjoint";
          Error(span.index, os.str());
        }
        stack.push_back(&span);
      }
    }
  }

  void CheckAsyncBalance() {
    for (const auto& [key, state] : asyncs_) {
      if (state.open != 0) {
        DocError("async begin without matching end (" + key + ")");
      }
    }
  }

  struct AsyncState {
    int open = 0;
    double last_begin = 0.0;
  };

  const TraceLintOptions& options_;
  TraceLintResult* result_;

  bool seen_ts_ = false;
  double last_ts_ = 0.0;
  std::set<std::pair<long long, long long>> thread_tracks_;
  std::set<std::pair<long long, long long>> named_tracks_;
  std::set<long long> used_pids_;
  std::set<long long> named_pids_;
  bool has_process_names_ = false;
  std::map<std::pair<long long, long long>, std::vector<Span>> spans_;
  std::map<std::string, AsyncState> asyncs_;
  std::map<std::string, double> cumulative_;  // (pid/name/series) -> last value
};

}  // namespace

TraceLintResult LintChromeTrace(const std::string& json_text,
                                const TraceLintOptions& options) {
  TraceLintResult result;
  Linter(options, &result).Lint(json_text);
  return result;
}

TraceLintResult LintChromeTraceFile(const std::string& path,
                                    const TraceLintOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    TraceLintResult result;
    ++result.num_errors;
    result.errors.push_back("cannot read " + path);
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintChromeTrace(buffer.str(), options);
}

namespace {

// Small schema-checking helper for LintProfileReport.
class ProfileLinter {
 public:
  ProfileLinter(const TraceLintOptions& options, TraceLintResult* result)
      : options_(options), result_(result) {}

  void Error(const std::string& what) {
    ++result_->num_errors;
    if (result_->errors.size() < options_.max_reported_errors) {
      result_->errors.push_back(what);
    }
  }

  const JsonValue* Number(const JsonValue& obj, const std::string& context,
                          const char* key) {
    const JsonValue* v = obj.Find(key);
    if (v == nullptr || !v->is_number()) {
      Error(context + ": missing numeric \"" + key + "\"");
      return nullptr;
    }
    return v;
  }

  // Sums the seven attribution components; returns false on schema error.
  bool AttributionSum(const JsonValue& obj, const std::string& context,
                      double* out) {
    static const char* const kFields[] = {
        "queue_ns", "evict_ns",  "pcie_ns", "pcie_contention_ns",
        "nvlink_ns", "exec_ns", "sync_ns"};
    const JsonValue* attribution = obj.Find("attribution");
    if (attribution == nullptr || !attribution->is_object()) {
      Error(context + ": missing \"attribution\" object");
      return false;
    }
    double sum = 0.0;
    for (const char* field : kFields) {
      const JsonValue* v = Number(*attribution, context, field);
      if (v == nullptr) {
        return false;
      }
      if (v->AsNumber() < 0.0) {
        Error(context + ": negative component \"" + std::string(field) + "\"");
        return false;
      }
      sum += v->AsNumber();
    }
    *out = sum;
    return true;
  }

  void Lint(const std::string& json_text) {
    const JsonParseResult parsed = ParseJson(json_text);
    if (!parsed.ok) {
      Error("not valid JSON: " + parsed.error);
      return;
    }
    const JsonValue* report =
        parsed.value.is_object() ? parsed.value.Find("profile_report") : nullptr;
    if (report == nullptr || !report->is_object()) {
      Error("missing \"profile_report\" object");
      return;
    }
    const JsonValue* requests = Number(*report, "profile_report", "requests");
    Number(*report, "profile_report", "cold_requests");
    const JsonValue* total_latency =
        Number(*report, "profile_report", "total_latency_ns");
    const JsonValue* bottleneck = report->Find("bottleneck");
    if (bottleneck == nullptr || !bottleneck->is_string()) {
      Error("profile_report: missing string \"bottleneck\"");
    }
    double totals_sum = 0.0;
    const JsonValue* totals = report->Find("totals");
    if (totals == nullptr || !totals->is_object()) {
      Error("profile_report: missing \"totals\" object");
    } else {
      // Reuse the attribution checker by wrapping totals under the expected
      // key name.
      JsonValue wrapper = JsonValue::Object({{"attribution", *totals}});
      if (AttributionSum(wrapper, "totals", &totals_sum) &&
          total_latency != nullptr &&
          totals_sum != total_latency->AsNumber()) {
        std::ostringstream os;
        os << "totals components sum to " << totals_sum
           << "ns but total_latency_ns is " << total_latency->AsNumber();
        Error(os.str());
      }
    }
    for (const char* key : {"processes", "per_request", "utilization"}) {
      const JsonValue* arr = report->Find(key);
      if (arr == nullptr || !arr->is_array()) {
        Error(std::string("profile_report: missing \"") + key + "\" array");
      }
    }
    const JsonValue* per_request = report->Find("per_request");
    if (per_request != nullptr && per_request->is_array()) {
      if (requests != nullptr &&
          static_cast<double>(per_request->items().size()) !=
              requests->AsNumber()) {
        Error("\"requests\" disagrees with per_request length");
      }
      for (std::size_t i = 0; i < per_request->items().size(); ++i) {
        const JsonValue& entry = per_request->items()[i];
        std::ostringstream ctx;
        ctx << "per_request[" << i << "]";
        if (!entry.is_object()) {
          Error(ctx.str() + ": not an object");
          continue;
        }
        const JsonValue* latency = Number(entry, ctx.str(), "latency_ns");
        double sum = 0.0;
        if (latency != nullptr &&
            AttributionSum(entry, ctx.str(), &sum) &&
            sum != latency->AsNumber()) {
          std::ostringstream os;
          os << ctx.str() << ": attribution sums to " << sum
             << "ns but latency_ns is " << latency->AsNumber();
          Error(os.str());
        }
      }
    }
    const JsonValue* utilization = report->Find("utilization");
    if (utilization != nullptr && utilization->is_array()) {
      for (std::size_t i = 0; i < utilization->items().size(); ++i) {
        const JsonValue& entry = utilization->items()[i];
        std::ostringstream ctx;
        ctx << "utilization[" << i << "]";
        if (!entry.is_object()) {
          Error(ctx.str() + ": not an object");
          continue;
        }
        const JsonValue* resource = entry.Find("resource");
        if (resource == nullptr || !resource->is_string()) {
          Error(ctx.str() + ": missing string \"resource\"");
        }
        const JsonValue* busy = Number(entry, ctx.str(), "busy_ns");
        const JsonValue* contended = Number(entry, ctx.str(), "contended_ns");
        const JsonValue* span = Number(entry, ctx.str(), "span_ns");
        if (busy != nullptr && contended != nullptr &&
            contended->AsNumber() > busy->AsNumber()) {
          Error(ctx.str() + ": contended_ns exceeds busy_ns");
        }
        if (busy != nullptr && span != nullptr &&
            busy->AsNumber() > span->AsNumber()) {
          Error(ctx.str() + ": busy_ns exceeds span_ns");
        }
      }
    }
  }

 private:
  const TraceLintOptions& options_;
  TraceLintResult* result_;
};

}  // namespace

TraceLintResult LintProfileReport(const std::string& json_text,
                                  const TraceLintOptions& options) {
  TraceLintResult result;
  ProfileLinter(options, &result).Lint(json_text);
  return result;
}

TraceLintResult LintProfileReportFile(const std::string& path,
                                      const TraceLintOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    TraceLintResult result;
    ++result.num_errors;
    result.errors.push_back("cannot read " + path);
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintProfileReport(buffer.str(), options);
}

namespace {

// Schema-checking helper for LintWhatIfReport.
class WhatIfLinter {
 public:
  WhatIfLinter(const TraceLintOptions& options, TraceLintResult* result)
      : options_(options), result_(result) {}

  void Error(const std::string& what) {
    ++result_->num_errors;
    if (result_->errors.size() < options_.max_reported_errors) {
      result_->errors.push_back(what);
    }
  }

  const JsonValue* Number(const JsonValue& obj, const std::string& context,
                          const char* key) {
    const JsonValue* v = obj.Find(key);
    if (v == nullptr || !v->is_number()) {
      Error(context + ": missing numeric \"" + key + "\"");
      return nullptr;
    }
    return v;
  }

  // A latency quantile object must carry all five fields, non-negative and
  // ordered p50 <= p95 <= p99 <= max.
  void Quantiles(const JsonValue& parent, const std::string& context,
                 const char* key) {
    const JsonValue* q = parent.Find(key);
    if (q == nullptr || !q->is_object()) {
      Error(context + ": missing \"" + std::string(key) + "\" object");
      return;
    }
    const std::string ctx = context + "." + key;
    double values[4] = {0, 0, 0, 0};
    static const char* const kOrdered[] = {"p50_ms", "p95_ms", "p99_ms",
                                           "max_ms"};
    bool complete = true;
    for (std::size_t i = 0; i < 4; ++i) {
      const JsonValue* v = Number(*q, ctx, kOrdered[i]);
      if (v == nullptr) {
        complete = false;
        continue;
      }
      if (v->AsNumber() < 0.0) {
        Error(ctx + ": negative \"" + std::string(kOrdered[i]) + "\"");
        complete = false;
      }
      values[i] = v->AsNumber();
    }
    Number(*q, ctx, "mean_ms");
    if (complete) {
      for (std::size_t i = 1; i < 4; ++i) {
        if (values[i] < values[i - 1]) {
          Error(ctx + ": quantiles not monotone (" +
                std::string(kOrdered[i - 1]) + " > " +
                std::string(kOrdered[i]) + ")");
          break;
        }
      }
    }
  }

  void LintExperiment(const JsonValue& exp, const std::string& ctx,
                      double expected_requests) {
    const JsonValue* name = exp.Find("name");
    if (name == nullptr || !name->is_string()) {
      Error(ctx + ": missing string \"name\"");
    }
    for (const char* key : {"pcie_scale", "nvlink_scale", "exec_scale"}) {
      const JsonValue* v = Number(exp, ctx, key);
      if (v != nullptr && v->AsNumber() <= 0.0) {
        Error(ctx + ": non-positive \"" + std::string(key) + "\"");
      }
    }
    for (const char* key : {"zero_contention", "remove_evictions"}) {
      const JsonValue* v = exp.Find(key);
      if (v == nullptr || !v->is_bool()) {
        Error(ctx + ": missing boolean \"" + std::string(key) + "\"");
      }
    }
    Quantiles(exp, ctx, "predicted");
    const JsonValue* delta = exp.Find("delta");
    if (delta == nullptr || !delta->is_object()) {
      Error(ctx + ": missing \"delta\" object");
    } else {
      for (const char* key :
           {"p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms"}) {
        Number(*delta, ctx + ".delta", key);
      }
    }
    const JsonValue* per_request = exp.Find("per_request");
    if (per_request == nullptr || !per_request->is_array()) {
      Error(ctx + ": missing \"per_request\" array");
      return;
    }
    if (static_cast<double>(per_request->items().size()) !=
        expected_requests) {
      Error(ctx + ": per_request length disagrees with \"requests\"");
    }
    for (std::size_t i = 0; i < per_request->items().size(); ++i) {
      const JsonValue& row = per_request->items()[i];
      std::ostringstream rctx;
      rctx << ctx << ".per_request[" << i << "]";
      if (!row.is_object()) {
        Error(rctx.str() + ": not an object");
        continue;
      }
      Number(row, rctx.str(), "request");
      Number(row, rctx.str(), "process");
      const JsonValue* baseline = Number(row, rctx.str(), "baseline_ns");
      const JsonValue* predicted = Number(row, rctx.str(), "predicted_ns");
      const JsonValue* delta_ns = Number(row, rctx.str(), "delta_ns");
      if (baseline != nullptr && baseline->AsNumber() < 0.0) {
        Error(rctx.str() + ": negative baseline_ns");
      }
      if (predicted != nullptr && predicted->AsNumber() < 0.0) {
        Error(rctx.str() + ": negative predicted_ns");
      }
      if (baseline != nullptr && predicted != nullptr && delta_ns != nullptr &&
          delta_ns->AsNumber() !=
              predicted->AsNumber() - baseline->AsNumber()) {
        std::ostringstream os;
        os << rctx.str() << ": delta_ns " << delta_ns->AsNumber()
           << " != predicted_ns - baseline_ns ("
           << predicted->AsNumber() - baseline->AsNumber() << ")";
        Error(os.str());
      }
    }
  }

  void Lint(const std::string& json_text) {
    const JsonParseResult parsed = ParseJson(json_text);
    if (!parsed.ok) {
      Error("not valid JSON: " + parsed.error);
      return;
    }
    const JsonValue* report =
        parsed.value.is_object() ? parsed.value.Find("whatif_report") : nullptr;
    if (report == nullptr || !report->is_object()) {
      Error("missing \"whatif_report\" object");
      return;
    }
    const JsonValue* requests = Number(*report, "whatif_report", "requests");
    Number(*report, "whatif_report", "skipped_requests");
    const JsonValue* matches = report->Find("baseline_matches_journal");
    if (matches == nullptr || !matches->is_bool()) {
      Error("whatif_report: missing boolean \"baseline_matches_journal\"");
    } else if (!matches->AsBool() && requests != nullptr &&
               requests->AsNumber() > 0) {
      // Predictions are only as good as the identity replay they rest on.
      Error("whatif_report: baseline replay does not match the journal");
    }
    Quantiles(*report, "whatif_report", "baseline");
    const JsonValue* processes = report->Find("processes");
    if (processes == nullptr || !processes->is_array()) {
      Error("whatif_report: missing \"processes\" array");
    }
    const JsonValue* experiments = report->Find("experiments");
    if (experiments == nullptr || !experiments->is_array()) {
      Error("whatif_report: missing \"experiments\" array");
    } else if (requests != nullptr) {
      for (std::size_t i = 0; i < experiments->items().size(); ++i) {
        std::ostringstream ctx;
        ctx << "experiments[" << i << "]";
        if (!experiments->items()[i].is_object()) {
          Error(ctx.str() + ": not an object");
          continue;
        }
        LintExperiment(experiments->items()[i], ctx.str(),
                       requests->AsNumber());
      }
    }
    const JsonValue* sensitivity = report->Find("sensitivity");
    if (sensitivity == nullptr || !sensitivity->is_array()) {
      Error("whatif_report: missing \"sensitivity\" array");
      return;
    }
    for (std::size_t i = 0; i < sensitivity->items().size(); ++i) {
      const JsonValue& row = sensitivity->items()[i];
      std::ostringstream ctx;
      ctx << "sensitivity[" << i << "]";
      if (!row.is_object()) {
        Error(ctx.str() + ": not an object");
        continue;
      }
      const JsonValue* knob = row.Find("knob");
      if (knob == nullptr || !knob->is_string() ||
          (knob->AsString() != "pcie" && knob->AsString() != "nvlink" &&
           knob->AsString() != "exec")) {
        Error(ctx.str() + ": \"knob\" must be pcie, nvlink, or exec");
      }
      for (const char* key : {"delta_p50_ms", "delta_p95_ms", "delta_p99_ms",
                              "knob_time_mean_ms", "p99_leverage"}) {
        Number(row, ctx.str(), key);
      }
    }
  }

 private:
  const TraceLintOptions& options_;
  TraceLintResult* result_;
};

}  // namespace

TraceLintResult LintWhatIfReport(const std::string& json_text,
                                 const TraceLintOptions& options) {
  TraceLintResult result;
  WhatIfLinter(options, &result).Lint(json_text);
  return result;
}

TraceLintResult LintWhatIfReportFile(const std::string& path,
                                     const TraceLintOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    TraceLintResult result;
    ++result.num_errors;
    result.errors.push_back("cannot read " + path);
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintWhatIfReport(buffer.str(), options);
}

namespace {

// Schema-checking helper for LintSelfprofReport. A report node's tally,
// keyed by its phase path ("total/sim.dispatch/exec.stream"), for the
// aggregate-equals-sum-of-lanes check.
struct PhaseTally {
  double count = 0;
  double sampled = 0;
};

class SelfprofLinter {
 public:
  SelfprofLinter(const TraceLintOptions& options, TraceLintResult* result)
      : options_(options), result_(result) {}

  void Error(const std::string& what) {
    ++result_->num_errors;
    if (result_->errors.size() < options_.max_reported_errors) {
      result_->errors.push_back(what);
    }
  }

  // Returns the value of a required non-negative numeric field, or -1.
  double Count(const JsonValue& obj, const std::string& ctx, const char* key) {
    const JsonValue* v = obj.Find(key);
    if (v == nullptr || !v->is_number()) {
      Error(ctx + ": missing numeric \"" + key + "\"");
      return -1.0;
    }
    if (v->AsNumber() < 0.0) {
      Error(ctx + ": negative \"" + key + "\"");
      return -1.0;
    }
    return v->AsNumber();
  }

  // Walks one phase node; `tally` (when non-null) accumulates counts by
  // phase path for the aggregate cross-check.
  void LintNode(const JsonValue& node, const std::string& ctx,
                const std::string& parent_path, bool is_root, double parent_count,
                std::map<std::string, PhaseTally>* tally) {
    if (!node.is_object()) {
      Error(ctx + ": node is not an object");
      return;
    }
    const JsonValue* phase = node.Find("phase");
    if (phase == nullptr || !phase->is_string() || phase->AsString().empty()) {
      Error(ctx + ": missing non-empty string \"phase\"");
      return;
    }
    const std::string& name = phase->AsString();
    if (is_root && name != "total") {
      Error(ctx + ": root phase is \"" + name + "\", expected \"total\"");
    }
    const std::string path =
        parent_path.empty() ? name : parent_path + "/" + name;
    const std::string node_ctx = ctx + " (" + path + ")";

    const double count = Count(node, node_ctx, "count");
    const double sampled = Count(node, node_ctx, "sampled");
    if (count >= 0.0 && sampled >= 0.0) {
      if (sampled > count) {
        Error(node_ctx + ": sampled exceeds count");
      }
      if (!is_root && count > 0.0 && parent_count == 0.0) {
        Error(node_ctx + ": counted child under a never-entered parent");
      }
      if (tally != nullptr) {
        (*tally)[path].count += count;
        (*tally)[path].sampled += sampled;
      }
    }

    // Duration fields travel together: the full report has all three, the
    // deterministic projection none.
    const JsonValue* inclusive = node.Find("inclusive_ns");
    const JsonValue* exclusive = node.Find("exclusive_ns");
    const JsonValue* estimated = node.Find("estimated_ns");
    const int present = (inclusive != nullptr ? 1 : 0) +
                        (exclusive != nullptr ? 1 : 0) +
                        (estimated != nullptr ? 1 : 0);
    if (present != 0 && present != 3) {
      Error(node_ctx +
            ": inclusive_ns/exclusive_ns/estimated_ns must appear together");
    }
    double inclusive_ns = 0.0;
    const bool timed = present == 3;
    if (timed) {
      inclusive_ns = Count(node, node_ctx, "inclusive_ns");
      const double exclusive_ns = Count(node, node_ctx, "exclusive_ns");
      const double estimated_ns = Count(node, node_ctx, "estimated_ns");
      if (inclusive_ns >= 0.0 && exclusive_ns > inclusive_ns) {
        Error(node_ctx + ": exclusive_ns exceeds inclusive_ns");
      }
      if (inclusive_ns >= 0.0 && estimated_ns >= 0.0 &&
          estimated_ns < inclusive_ns) {
        Error(node_ctx + ": estimated_ns below measured inclusive_ns");
      }
      if (sampled == 0.0 && inclusive_ns > 0.0) {
        Error(node_ctx + ": inclusive_ns without any sampled entries");
      }
    }

    double children_inclusive = 0.0;
    const JsonValue* children = node.Find("children");
    if (children != nullptr) {
      if (!children->is_array()) {
        Error(node_ctx + ": \"children\" is not an array");
        return;
      }
      std::set<std::string> seen;
      for (std::size_t i = 0; i < children->items().size(); ++i) {
        const JsonValue& child = children->items()[i];
        const JsonValue* child_phase = child.Find("phase");
        if (child_phase != nullptr && child_phase->is_string()) {
          if (!seen.insert(child_phase->AsString()).second) {
            Error(node_ctx + ": duplicate child phase \"" +
                  child_phase->AsString() + "\"");
          }
        }
        LintNode(child, node_ctx + ".children[" + std::to_string(i) + "]",
                 path, /*is_root=*/false, count, tally);
        if (timed && child.is_object()) {
          const JsonValue* child_inclusive = child.Find("inclusive_ns");
          if (child_inclusive != nullptr && child_inclusive->is_number()) {
            children_inclusive += child_inclusive->AsNumber();
          }
        }
      }
    }
    if (timed && inclusive_ns >= 0.0) {
      // Exact by construction (suppression rule): measured child time always
      // nests inside measured parent time.
      const JsonValue* exclusive_v = node.Find("exclusive_ns");
      if (exclusive_v != nullptr && exclusive_v->is_number() &&
          exclusive_v->AsNumber() + children_inclusive != inclusive_ns) {
        Error(node_ctx +
              ": exclusive_ns + sum(child inclusive_ns) != inclusive_ns");
      }
    }
  }

  // Lints one lane object; fills `tally` by phase path when requested.
  void LintLane(const JsonValue& lane, const std::string& ctx,
                std::map<std::string, PhaseTally>* tally,
                std::map<std::string, double>* counters_out) {
    if (!lane.is_object()) {
      Error(ctx + ": lane is not an object");
      return;
    }
    const JsonValue* name = lane.Find("name");
    if (name == nullptr || !name->is_string() || name->AsString().empty()) {
      Error(ctx + ": missing non-empty string \"name\"");
    }
    const JsonValue* counters = lane.Find("counters");
    if (counters == nullptr || !counters->is_object()) {
      Error(ctx + ": missing \"counters\" object");
    } else {
      for (const auto& [key, value] : counters->fields()) {
        if (!value.is_number() || value.AsNumber() < 0.0) {
          Error(ctx + ": counter \"" + key + "\" is not a non-negative number");
        } else if (counters_out != nullptr) {
          (*counters_out)[key] += value.AsNumber();
        }
      }
    }
    const JsonValue* tree = lane.Find("tree");
    if (tree == nullptr) {
      Error(ctx + ": missing \"tree\"");
      return;
    }
    LintNode(*tree, ctx + ".tree", "", /*is_root=*/true, 0.0, tally);
  }

  void Lint(const std::string& json_text) {
    const JsonParseResult parsed = ParseJson(json_text);
    if (!parsed.ok) {
      Error("JSON parse error: " + parsed.error);
      return;
    }
    const JsonValue* report = parsed.value.is_object()
                                  ? parsed.value.Find("selfprof_report")
                                  : nullptr;
    if (report == nullptr || !report->is_object()) {
      Error("top level: missing \"selfprof_report\" object");
      return;
    }
    const JsonValue* version = report->Find("schema_version");
    if (version == nullptr || !version->is_number() ||
        version->AsNumber() < 1.0) {
      Error("selfprof_report: missing \"schema_version\" >= 1");
    }
    const JsonValue* label = report->Find("label");
    if (label == nullptr || !label->is_string()) {
      Error("selfprof_report: missing string \"label\"");
    }
    const JsonValue* lanes = report->Find("lanes");
    if (lanes == nullptr || !lanes->is_array() || lanes->items().empty()) {
      Error("selfprof_report: missing non-empty \"lanes\" array");
      return;
    }
    std::set<std::string> lane_names;
    std::map<std::string, PhaseTally> lane_sum;
    std::map<std::string, double> counter_sum;
    for (std::size_t i = 0; i < lanes->items().size(); ++i) {
      const JsonValue& lane = lanes->items()[i];
      const std::string ctx = "lanes[" + std::to_string(i) + "]";
      const JsonValue* name = lane.Find("name");
      if (name != nullptr && name->is_string() &&
          !lane_names.insert(name->AsString()).second) {
        Error(ctx + ": duplicate lane name \"" + name->AsString() + "\"");
      }
      LintLane(lane, ctx, &lane_sum, &counter_sum);
    }
    result_->num_tracks = lanes->items().size();

    const JsonValue* aggregate = report->Find("aggregate");
    if (aggregate == nullptr || !aggregate->is_object()) {
      Error("selfprof_report: missing \"aggregate\" object");
      return;
    }
    std::map<std::string, PhaseTally> agg;
    std::map<std::string, double> agg_counters;
    LintLane(*aggregate, "aggregate", &agg, &agg_counters);
    for (const auto& [path, sum] : lane_sum) {
      const auto it = agg.find(path);
      if (it == agg.end()) {
        Error("aggregate: phase \"" + path + "\" missing (present in lanes)");
      } else if (it->second.count != sum.count ||
                 it->second.sampled != sum.sampled) {
        Error("aggregate: phase \"" + path +
              "\" counts do not equal the sum over lanes");
      }
    }
    for (const auto& [key, sum] : counter_sum) {
      const auto it = agg_counters.find(key);
      if (it == agg_counters.end()) {
        Error("aggregate: counter \"" + key + "\" missing (present in lanes)");
      } else if (it->second != sum) {
        Error("aggregate: counter \"" + key +
              "\" does not equal the sum over lanes");
      }
    }

    const JsonValue* host = report->Find("host");
    if (host != nullptr) {
      if (!host->is_object()) {
        Error("selfprof_report: \"host\" is not an object");
      } else {
        Count(*host, "host", "rss_kb");
        Count(*host, "host", "rss_peak_kb");
      }
    }
  }

 private:
  const TraceLintOptions& options_;
  TraceLintResult* result_;
};

}  // namespace

TraceLintResult LintSelfprofReport(const std::string& json_text,
                                   const TraceLintOptions& options) {
  TraceLintResult result;
  SelfprofLinter(options, &result).Lint(json_text);
  return result;
}

TraceLintResult LintSelfprofReportFile(const std::string& path,
                                       const TraceLintOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    TraceLintResult result;
    ++result.num_errors;
    result.errors.push_back("cannot read " + path);
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintSelfprofReport(buffer.str(), options);
}

}  // namespace check
}  // namespace deepplan
