#include "src/core/profiler.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace deepplan {

Profiler::Profiler(const PerfModel* perf, ProfilerOptions options)
    : perf_(perf), options_(options) {
  DP_CHECK(perf != nullptr);
  DP_CHECK(options_.iterations >= 1);
}

ModelProfile Profiler::Profile(const Model& model) const {
  ModelProfile profile;
  profile.model_name = model.name();
  profile.batch = options_.batch;
  profile.iterations = options_.iterations;
  profile.layers.reserve(model.num_layers());

  Rng rng(options_.seed);
  auto measure = [&](Nanos truth) -> Nanos {
    if (truth == 0) {
      return 0;
    }
    double sum = 0.0;
    for (int it = 0; it < options_.iterations; ++it) {
      const double noisy = static_cast<double>(truth) *
                           (1.0 + rng.NextGaussian(0.0, options_.noise_stddev));
      sum += std::max(0.0, noisy);
    }
    return static_cast<Nanos>(sum / options_.iterations);
  };

  for (const Layer& l : model.layers()) {
    LayerProfile lp;
    lp.name = l.name;
    lp.kind = l.kind;
    lp.param_bytes = l.param_bytes;
    lp.load = measure(perf_->LoadTime(l));
    lp.exec_in_mem = measure(perf_->ExecInMemory(l, options_.batch));
    lp.exec_dha = measure(perf_->ExecDha(l, options_.batch));
    profile.layers.push_back(std::move(lp));
  }
  return profile;
}

ProfilingCost Profiler::Cost(const Model& model) const {
  ProfilingCost cost;
  const auto n = static_cast<Nanos>(model.num_layers());
  const auto iters = static_cast<Nanos>(options_.iterations);
  for (const Layer& l : model.layers()) {
    cost.dha_pass += iters * perf_->ExecDha(l, options_.batch);
    cost.in_memory_pass += iters * perf_->ExecInMemory(l, options_.batch);
    cost.layer_load_pass += iters * perf_->LoadTime(l);
  }
  cost.dha_pass += iters * n * options_.dha_pass_overhead_per_layer;
  cost.in_memory_pass += iters * n * options_.sync_overhead_per_layer;
  cost.layer_load_pass += iters * n * options_.sync_overhead_per_layer;
  return cost;
}

}  // namespace deepplan
