// The profiling step of DeepPlan (Section 4.3.1): a one-time pre-run that
// measures, per layer, the load time and both execution modes. On real
// hardware this times CUDA kernels; here the "measurement" samples the
// calibrated performance model with seeded iteration noise and averages over
// `iterations` runs, exactly like the paper's 10-iteration methodology.
// It also reports the simulated wall-clock cost of profiling (Table 5).
#ifndef SRC_CORE_PROFILER_H_
#define SRC_CORE_PROFILER_H_

#include <cstdint>

#include "src/core/profile.h"
#include "src/perf/perf_model.h"

namespace deepplan {

struct ProfilerOptions {
  int iterations = 10;
  int batch = 1;
  std::uint64_t seed = 42;
  // Relative stddev of per-measurement noise (timer jitter, clock effects).
  double noise_stddev = 0.01;
  // Per-layer, per-iteration harness overhead of the DHA pass (allocator
  // remapping + synchronization), dominating Table 5's DHA column.
  Nanos dha_pass_overhead_per_layer = Millis(2);
  // Per-layer, per-iteration synchronization cost of the in-memory and load
  // passes (cudaDeviceSynchronize + host-side timing).
  Nanos sync_overhead_per_layer = Micros(30);
};

struct ProfilingCost {
  Nanos dha_pass = 0;
  Nanos in_memory_pass = 0;
  Nanos layer_load_pass = 0;
  Nanos Total() const { return dha_pass + in_memory_pass + layer_load_pass; }
};

class Profiler {
 public:
  Profiler(const PerfModel* perf, ProfilerOptions options = ProfilerOptions());

  // Runs the pre-run and returns the averaged per-layer profile.
  ModelProfile Profile(const Model& model) const;

  // Simulated wall-clock time the pre-run itself takes (Table 5).
  ProfilingCost Cost(const Model& model) const;

 private:
  const PerfModel* perf_;
  ProfilerOptions options_;
};

}  // namespace deepplan

#endif  // SRC_CORE_PROFILER_H_
