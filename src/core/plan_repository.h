// Plan repository: persists generated execution plans keyed by
// (model, topology, strategy label, batch). The paper's planning step is a
// one-time process per (model, server) pair — this is the deployment-side
// cache that makes it so: plan once on the target box, store, and every
// serving process loads the plan file instead of re-profiling.
#ifndef SRC_CORE_PLAN_REPOSITORY_H_
#define SRC_CORE_PLAN_REPOSITORY_H_

#include <map>
#include <optional>
#include <string>

#include "src/core/plan.h"

namespace deepplan {

class PlanRepository {
 public:
  // `directory` must exist; plan files are written beneath it. An empty
  // directory string makes the repository memory-only.
  explicit PlanRepository(std::string directory);

  // Canonical cache key; safe to use as a file name.
  static std::string Key(const std::string& model_name,
                         const std::string& topology_name,
                         const std::string& strategy_label, int batch);

  // Fetches a plan (memory first, then disk). nullopt if absent or corrupt.
  std::optional<ExecutionPlan> Load(const std::string& key);

  // Stores a plan in memory and (when a directory is configured) on disk.
  // Returns false if the disk write failed; the memory cache is still
  // updated.
  bool Store(const std::string& key, const ExecutionPlan& plan);

  bool Contains(const std::string& key);
  std::size_t MemoryCacheSize() const { return cache_.size(); }

 private:
  std::string PathFor(const std::string& key) const;

  std::string directory_;
  std::map<std::string, ExecutionPlan> cache_;
};

}  // namespace deepplan

#endif  // SRC_CORE_PLAN_REPOSITORY_H_
