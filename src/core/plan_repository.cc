#include "src/core/plan_repository.h"

#include <fstream>
#include <sstream>

namespace deepplan {

PlanRepository::PlanRepository(std::string directory)
    : directory_(std::move(directory)) {}

std::string PlanRepository::Key(const std::string& model_name,
                                const std::string& topology_name,
                                const std::string& strategy_label, int batch) {
  std::string key =
      model_name + "@" + topology_name + "@" + strategy_label + "@b" +
      std::to_string(batch);
  for (char& c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '@' ||
                    c == '.';
    if (!ok) {
      c = '_';
    }
  }
  return key;
}

std::string PlanRepository::PathFor(const std::string& key) const {
  return directory_ + "/" + key + ".plan";
}

std::optional<ExecutionPlan> PlanRepository::Load(const std::string& key) {
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    return it->second;
  }
  if (directory_.empty()) {
    return std::nullopt;
  }
  std::ifstream in(PathFor(key));
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto plan = ExecutionPlan::Parse(buffer.str());
  if (plan.has_value()) {
    cache_.emplace(key, *plan);
  }
  return plan;
}

bool PlanRepository::Store(const std::string& key, const ExecutionPlan& plan) {
  cache_.insert_or_assign(key, plan);
  if (directory_.empty()) {
    return true;
  }
  std::ofstream out(PathFor(key));
  if (!out) {
    return false;
  }
  out << plan.Serialize();
  return static_cast<bool>(out);
}

bool PlanRepository::Contains(const std::string& key) {
  return Load(key).has_value();
}

}  // namespace deepplan
