// Model transmission planning (Section 4.3.3): split a model into
// equal-byte contiguous partitions — one per participating GPU — and choose
// which GPUs participate by consulting the PCIe/NVLink topology (GPUs behind
// the same PCIe switch contend for the host uplink and must not be paired).
#ifndef SRC_CORE_TRANSMISSION_H_
#define SRC_CORE_TRANSMISSION_H_

#include <vector>

#include "src/core/plan.h"
#include "src/core/profile.h"
#include "src/hw/topology.h"

namespace deepplan {

class TransmissionPlanner {
 public:
  // Partition boundaries: assigns plan partitions 0..degree-1 as contiguous
  // layer ranges balanced by parameter bytes. Layers in partitions > 0 are
  // forced to kLoad (parallel transmission cannot skip them; Section 4.3.3).
  static void AssignPartitions(const ModelProfile& profile, int degree,
                               ExecutionPlan* plan);

  // Transmission degree the topology supports from `primary`: 1 + one
  // NVLink-connected GPU per *other* PCIe switch, capped at `max_degree`.
  // Returns 1 (no parallel transmission) when no NVLink peer exists, matching
  // the paper's rule of disabling PT without NVLink.
  static int ChooseDegree(const Topology& topology, GpuId primary,
                          int max_degree = 1 << 30);

  // Concrete secondary GPUs to use for a transmission of `degree` partitions
  // from `primary` (degree-1 entries, best candidates first).
  static std::vector<GpuId> ChooseSecondaries(const Topology& topology, GpuId primary,
                                              int degree);
};

}  // namespace deepplan

#endif  // SRC_CORE_TRANSMISSION_H_
