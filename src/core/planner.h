// The layer execution planner (Section 4.3.2, Algorithm 1): decides, per
// layer, between load-then-execute and direct-host-access so that pipeline
// stalls are minimized — crucially *not* by greedy per-layer comparison but by
// spending DHA on earlier layers whose eliminated load time pulls subsequent
// loads forward (Figures 7 and 8).
#ifndef SRC_CORE_PLANNER_H_
#define SRC_CORE_PLANNER_H_

#include "src/core/pipeline.h"
#include "src/core/plan.h"
#include "src/core/profile.h"

namespace deepplan {

// Order in which Algorithm 1 examines candidate layers when attacking a
// stall. The paper sorts by PerfDiff ascending ("the smaller the difference,
// the more the stall time can be reduced"); the alternatives exist for the
// planner-ordering ablation bench.
enum class CandidateOrder {
  kPerfDiffAscending,  // the paper's Algorithm 1, step 1
  kLoadDescending,     // attack the biggest transfers first
  kLayerOrder,         // naive front-to-back
};

const char* CandidateOrderName(CandidateOrder order);

struct PlannerOptions {
  PipelineOptions pipeline;
  // Number of parallel-transmission partitions (1 = DHA only). Callers obtain
  // the right value from TransmissionPlanner::ChooseDegree.
  int num_partitions = 1;
  // Enable the direct-host-access pass (Algorithm 1) on partition 0.
  bool enable_dha = true;
  CandidateOrder candidate_order = CandidateOrder::kPerfDiffAscending;
};

class Planner {
 public:
  explicit Planner(const ModelProfile* profile);

  // The paper's "Initial approach" (Table 3): independently pick DHA wherever
  // Exe(DHA) < Load + Exe(InMem), ignoring pipeline effects.
  ExecutionPlan GreedyDhaPlan() const;

  // Full DeepPlan generation: partition for parallel transmission, then run
  // Algorithm 1 on the first partition.
  ExecutionPlan GeneratePlan(const PlannerOptions& options = PlannerOptions()) const;

 private:
  // Algorithm 1 over partition 0 of `plan` (in place).
  void ReduceStallsWithDha(ExecutionPlan* plan, const PipelineOptions& pipeline,
                           CandidateOrder order) const;

  const ModelProfile* profile_;
};

}  // namespace deepplan

#endif  // SRC_CORE_PLANNER_H_
