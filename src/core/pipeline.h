// Analytic pipelined-provisioning timeline. Given a profile and a plan, this
// computes, layer by layer, when parameters become available on the primary
// GPU (via PCIe load, NVLink forwarding, or immediately for DHA layers) and
// when execution can start — i.e. the stall structure of Figures 7-9. The
// planner (Algorithm 1) iterates this model; the event-driven engine must and
// does agree with it in the uncontended case (verified by tests).
#ifndef SRC_CORE_PIPELINE_H_
#define SRC_CORE_PIPELINE_H_

#include <vector>

#include "src/core/plan.h"
#include "src/core/profile.h"
#include "src/hw/gpu.h"
#include "src/util/time.h"

namespace deepplan {

struct PipelineOptions {
  // NVLink characteristics for forwarding partitions k>0 to the primary GPU.
  NvlinkSpec nvlink = NvlinkSpec::V100Nvlink();
  // Per-partition PCIe bandwidth derating (1.0 = dedicated switch uplink;
  // 0.5 models two partitions sharing one switch). Index = partition id.
  // Missing entries default to 1.0.
  std::vector<double> pcie_share;
  // When false, execution waits for the *entire* model before starting
  // (the paper's Baseline); when true, per-layer pipelining (PipeSwitch and
  // DeepPlan behaviour).
  bool pipelined = true;
};

struct LayerTiming {
  Nanos ready = 0;       // params available on the primary GPU (0 for DHA)
  Nanos exec_start = 0;
  Nanos exec_end = 0;
  Nanos stall = 0;       // exec_start - previous exec_end (idle wait)
  ExecMethod method = ExecMethod::kLoad;
};

struct PipelineResult {
  std::vector<LayerTiming> layers;
  Nanos total = 0;        // completion of the last layer's execution
  Nanos total_stall = 0;  // sum of per-layer stalls
  Nanos exec_busy = 0;    // sum of execution times
  Nanos load_done = 0;    // when the last byte lands on the primary GPU
};

// Computes the timeline. `profile` and `plan` must agree on layer count.
PipelineResult SimulatePipeline(const ModelProfile& profile, const ExecutionPlan& plan,
                                const PipelineOptions& options = PipelineOptions());

}  // namespace deepplan

#endif  // SRC_CORE_PIPELINE_H_
