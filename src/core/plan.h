// Inference execution plans: per-layer execution method (load vs
// direct-host-access) plus the parallel-transmission partition assignment.
// A plan is what DeepPlan emits (Figure 10 step 4) and what the execution
// engine consumes. Plans serialize to a small line-oriented text format so
// they can be generated once and deployed (Section 4.3's one-time process).
#ifndef SRC_CORE_PLAN_H_
#define SRC_CORE_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/profile.h"

namespace deepplan {

enum class ExecMethod {
  kLoad,              // copy params to GPU memory, then execute (O in Table 3)
  kDirectHostAccess,  // execute against host memory, never load (X in Table 3)
};

const char* ExecMethodName(ExecMethod method);

struct LayerDecision {
  ExecMethod method = ExecMethod::kLoad;
  // Parallel-transmission partition this layer belongs to; partition 0 goes
  // straight to the primary GPU, partition k>0 loads via secondary GPU k and
  // is forwarded over NVLink.
  int partition = 0;
};

class ExecutionPlan {
 public:
  ExecutionPlan() = default;
  ExecutionPlan(std::string model_name, std::size_t num_layers);

  const std::string& model_name() const { return model_name_; }
  std::size_t num_layers() const { return decisions_.size(); }

  const LayerDecision& decision(std::size_t i) const;
  ExecMethod method(std::size_t i) const { return decision(i).method; }
  int partition(std::size_t i) const { return decision(i).partition; }

  void set_method(std::size_t i, ExecMethod method);
  void set_partition(std::size_t i, int partition);

  // Highest partition index + 1 (1 when no parallel transmission).
  int num_partitions() const { return num_partitions_; }

  std::size_t CountDha() const;

  // GPU memory this plan occupies once provisioned: every kLoad layer's
  // parameters. DHA layers stay in pinned host memory (this is how DeepPlan
  // packs more instances per GPU in Figure 13).
  std::int64_t GpuResidentBytes(const ModelProfile& profile) const;
  std::int64_t HostResidentBytes(const ModelProfile& profile) const;

  // Validation against a profile: size match, contiguous partitions starting
  // at 0, and no DHA layer outside partition 0. Returns an error description
  // or nullopt when valid.
  std::optional<std::string> Validate(const ModelProfile& profile) const;

  // Text round-trip.
  std::string Serialize() const;
  static std::optional<ExecutionPlan> Parse(const std::string& text);

 private:
  std::string model_name_;
  std::vector<LayerDecision> decisions_;
  int num_partitions_ = 1;
};

}  // namespace deepplan

#endif  // SRC_CORE_PLAN_H_
