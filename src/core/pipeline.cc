#include "src/core/pipeline.h"

#include <algorithm>

#include "src/util/index.h"
#include "src/util/logging.h"

namespace deepplan {

PipelineResult SimulatePipeline(const ModelProfile& profile, const ExecutionPlan& plan,
                                const PipelineOptions& options) {
  const std::size_t n = profile.layers.size();
  DP_CHECK(plan.num_layers() == n);

  PipelineResult result;
  result.layers.resize(n);

  const int parts = plan.num_partitions();
  // Per-partition PCIe load stream head (time the lane is next free) and
  // per-partition NVLink migration stream head.
  std::vector<Nanos> pcie_head(Idx(parts), 0);
  std::vector<Nanos> nvlink_head(Idx(parts), 0);

  auto pcie_scale = [&](int partition) {
    double share = 1.0;
    if (partition < static_cast<int>(options.pcie_share.size())) {
      share = options.pcie_share[Idx(partition)];
    }
    DP_CHECK(share > 0.0 && share <= 1.0);
    return share;
  };

  // Pass 1: transmission. Each partition's kLoad layers stream over its own
  // PCIe lane in layer order; partitions k>0 forward each layer over NVLink
  // as soon as it lands on the secondary GPU (the paper's parallel-pipeline).
  for (std::size_t i = 0; i < n; ++i) {
    const LayerProfile& lp = profile.layers[i];
    LayerTiming& t = result.layers[i];
    t.method = plan.method(i);
    if (t.method == ExecMethod::kDirectHostAccess || !lp.has_params()) {
      t.ready = 0;
      continue;
    }
    const int p = plan.partition(i);
    const auto load =
        static_cast<Nanos>(static_cast<double>(lp.load) / pcie_scale(p));
    pcie_head[Idx(p)] += load;
    if (p == 0) {
      t.ready = pcie_head[Idx(p)];
    } else {
      // NVLink forward after PCIe arrival, in order on the migration stream.
      const double secs =
          static_cast<double>(lp.param_bytes) / options.nvlink.bw_bytes_per_sec;
      const Nanos fwd =
          options.nvlink.transfer_latency + static_cast<Nanos>(secs * kNanosPerSecond);
      nvlink_head[Idx(p)] = std::max(nvlink_head[Idx(p)], pcie_head[Idx(p)]) + fwd;
      t.ready = nvlink_head[Idx(p)];
    }
    result.load_done = std::max(result.load_done, t.ready);
  }

  // Baseline semantics: nothing executes until everything is resident.
  if (!options.pipelined) {
    for (std::size_t i = 0; i < n; ++i) {
      if (result.layers[i].method == ExecMethod::kLoad &&
          profile.layers[i].has_params()) {
        result.layers[i].ready = result.load_done;
      }
    }
  }

  // Pass 2: execution stream on the primary GPU, in layer order.
  Nanos exec_end_prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const LayerProfile& lp = profile.layers[i];
    LayerTiming& t = result.layers[i];
    const Nanos exec = t.method == ExecMethod::kDirectHostAccess
                           ? lp.exec_dha
                           : lp.exec_in_mem;
    t.exec_start = std::max(exec_end_prev, t.ready);
    t.stall = t.exec_start - exec_end_prev;
    t.exec_end = t.exec_start + exec;
    exec_end_prev = t.exec_end;
    result.total_stall += t.stall;
    result.exec_busy += exec;
  }
  result.total = exec_end_prev;
  return result;
}

}  // namespace deepplan
