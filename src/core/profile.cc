#include "src/core/profile.h"

namespace deepplan {

Nanos ModelProfile::TotalLoad() const {
  Nanos total = 0;
  for (const auto& l : layers) {
    total += l.load;
  }
  return total;
}

Nanos ModelProfile::TotalExecInMem() const {
  Nanos total = 0;
  for (const auto& l : layers) {
    total += l.exec_in_mem;
  }
  return total;
}

std::int64_t ModelProfile::TotalParamBytes() const {
  std::int64_t total = 0;
  for (const auto& l : layers) {
    total += l.param_bytes;
  }
  return total;
}

}  // namespace deepplan
