#include "src/core/transmission.h"

#include <algorithm>

#include "src/util/index.h"
#include "src/util/logging.h"

namespace deepplan {

void TransmissionPlanner::AssignPartitions(const ModelProfile& profile, int degree,
                                           ExecutionPlan* plan) {
  DP_CHECK(plan != nullptr);
  DP_CHECK(degree >= 1);
  DP_CHECK(plan->num_layers() == profile.num_layers());
  if (degree == 1) {
    return;
  }
  const std::int64_t total = profile.TotalParamBytes();
  // Walk layers accumulating bytes; cut to the next partition whenever the
  // running sum crosses the next equal-bytes boundary. Parameter-free layers
  // stick with their predecessor's partition (they ride along with the
  // surrounding computation).
  std::int64_t acc = 0;
  int part = 0;
  for (std::size_t i = 0; i < profile.num_layers(); ++i) {
    const std::int64_t bytes = profile.layers[i].param_bytes;
    // Boundary for partition `part` ends at (part+1)/degree of total bytes.
    while (part + 1 < degree &&
           acc + bytes / 2 > total * static_cast<std::int64_t>(part + 1) / degree) {
      ++part;
    }
    acc += bytes;
    plan->set_partition(i, part);
    if (part > 0) {
      plan->set_method(i, ExecMethod::kLoad);
    }
  }
}

int TransmissionPlanner::ChooseDegree(const Topology& topology, GpuId primary,
                                      int max_degree) {
  const int supported = topology.MaxParallelDegree(primary);
  return std::max(1, std::min(supported, max_degree));
}

std::vector<GpuId> TransmissionPlanner::ChooseSecondaries(const Topology& topology,
                                                          GpuId primary, int degree) {
  DP_CHECK(degree >= 1);
  std::vector<GpuId> out;
  if (degree == 1) {
    return out;
  }
  std::vector<bool> switch_used(Idx(topology.num_switches()), false);
  switch_used[Idx(topology.switch_of(primary))] = true;
  for (GpuId g : topology.ParallelCandidates(primary)) {
    if (static_cast<int>(out.size()) + 1 >= degree) {
      break;
    }
    const int s = topology.switch_of(g);
    if (switch_used[Idx(s)]) {
      continue;  // avoid pairing GPUs behind one PCIe switch (Table 2)
    }
    switch_used[Idx(s)] = true;
    out.push_back(g);
  }
  DP_CHECK(static_cast<int>(out.size()) == degree - 1);
  return out;
}

}  // namespace deepplan
