#include "src/core/planner.h"

#include <algorithm>
#include <vector>

#include "src/core/transmission.h"
#include "src/util/logging.h"

namespace deepplan {

const char* CandidateOrderName(CandidateOrder order) {
  switch (order) {
    case CandidateOrder::kPerfDiffAscending:
      return "PerfDiff-ascending (paper)";
    case CandidateOrder::kLoadDescending:
      return "Load-descending";
    case CandidateOrder::kLayerOrder:
      return "Layer-order";
  }
  return "?";
}

Planner::Planner(const ModelProfile* profile) : profile_(profile) {
  DP_CHECK(profile != nullptr);
}

ExecutionPlan Planner::GreedyDhaPlan() const {
  ExecutionPlan plan(profile_->model_name, profile_->num_layers());
  for (std::size_t i = 0; i < profile_->num_layers(); ++i) {
    const LayerProfile& lp = profile_->layers[i];
    if (lp.has_params() && lp.exec_dha < lp.load + lp.exec_in_mem) {
      plan.set_method(i, ExecMethod::kDirectHostAccess);
    }
  }
  return plan;
}

void Planner::ReduceStallsWithDha(ExecutionPlan* plan, const PipelineOptions& pipeline,
                                  CandidateOrder order) const {
  const std::size_t n = profile_->num_layers();
  // Algorithm 1. The timeline is re-evaluated after every accepted change
  // ("UpdatePipelineExecutionFrom"), which also refreshes the stalls of all
  // later layers.
  PipelineResult timeline = SimulatePipeline(*profile_, *plan, pipeline);
  for (std::size_t i = 0; i < n; ++i) {
    Nanos stall = timeline.layers[i].stall;
    if (stall <= 0) {
      continue;
    }
    // Step 1: candidate layers L_1..L_i not yet DHA, in partition 0, with
    // parameters, sorted by PerfDiff ascending (smallest slowdown first).
    std::vector<std::size_t> candidates;
    for (std::size_t j = 0; j <= i; ++j) {
      if (plan->method(j) == ExecMethod::kLoad && plan->partition(j) == 0 &&
          profile_->layers[j].has_params()) {
        candidates.push_back(j);
      }
    }
    switch (order) {
      case CandidateOrder::kPerfDiffAscending:
        std::stable_sort(candidates.begin(), candidates.end(),
                         [&](std::size_t a, std::size_t b) {
                           return profile_->layers[a].PerfDiff() <
                                  profile_->layers[b].PerfDiff();
                         });
        break;
      case CandidateOrder::kLoadDescending:
        std::stable_sort(candidates.begin(), candidates.end(),
                         [&](std::size_t a, std::size_t b) {
                           return profile_->layers[a].load > profile_->layers[b].load;
                         });
        break;
      case CandidateOrder::kLayerOrder:
        break;  // already front-to-back
    }
    bool changed = false;
    for (std::size_t j : candidates) {
      const LayerProfile& lj = profile_->layers[j];
      // Step 2: L_j only helps if converting it costs less extra execution
      // time than the stall it attacks. With the paper's ordering the first
      // failure ends the search for L_i; with the ablation orderings a later
      // candidate could still qualify, so skip instead of breaking.
      if (stall < lj.PerfDiff()) {
        if (order == CandidateOrder::kPerfDiffAscending) {
          break;
        }
        continue;
      }
      // Step 3: convert L_j and account for its eliminated load time and the
      // execution-time delta.
      plan->set_method(j, ExecMethod::kDirectHostAccess);
      changed = true;
      stall -= lj.load + lj.PerfDiff();
      // Step 4: once the stall is gone, refresh the timeline and move on.
      if (stall <= 0) {
        break;
      }
    }
    if (changed) {
      timeline = SimulatePipeline(*profile_, *plan, pipeline);
    }
  }
}

ExecutionPlan Planner::GeneratePlan(const PlannerOptions& options) const {
  DP_CHECK(options.num_partitions >= 1);
  ExecutionPlan plan(profile_->model_name, profile_->num_layers());
  if (options.num_partitions > 1) {
    TransmissionPlanner::AssignPartitions(*profile_, options.num_partitions, &plan);
  }
  if (options.enable_dha) {
    ReduceStallsWithDha(&plan, options.pipeline, options.candidate_order);
  }
  const auto error = plan.Validate(*profile_);
  DP_CHECK(!error.has_value());
  return plan;
}

}  // namespace deepplan
