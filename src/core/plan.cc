#include "src/core/plan.h"

#include <algorithm>
#include <sstream>

#include "src/util/logging.h"

namespace deepplan {

const char* ExecMethodName(ExecMethod method) {
  switch (method) {
    case ExecMethod::kLoad:
      return "load";
    case ExecMethod::kDirectHostAccess:
      return "dha";
  }
  return "?";
}

ExecutionPlan::ExecutionPlan(std::string model_name, std::size_t num_layers)
    : model_name_(std::move(model_name)), decisions_(num_layers) {}

const LayerDecision& ExecutionPlan::decision(std::size_t i) const {
  DP_CHECK(i < decisions_.size());
  return decisions_[i];
}

void ExecutionPlan::set_method(std::size_t i, ExecMethod method) {
  DP_CHECK(i < decisions_.size());
  decisions_[i].method = method;
}

void ExecutionPlan::set_partition(std::size_t i, int partition) {
  DP_CHECK(i < decisions_.size());
  DP_CHECK(partition >= 0);
  decisions_[i].partition = partition;
  num_partitions_ = std::max(num_partitions_, partition + 1);
}

std::size_t ExecutionPlan::CountDha() const {
  std::size_t n = 0;
  for (const auto& d : decisions_) {
    if (d.method == ExecMethod::kDirectHostAccess) {
      ++n;
    }
  }
  return n;
}

std::int64_t ExecutionPlan::GpuResidentBytes(const ModelProfile& profile) const {
  DP_CHECK(profile.layers.size() == decisions_.size());
  std::int64_t bytes = 0;
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    if (decisions_[i].method == ExecMethod::kLoad) {
      bytes += profile.layers[i].param_bytes;
    }
  }
  return bytes;
}

std::int64_t ExecutionPlan::HostResidentBytes(const ModelProfile& profile) const {
  DP_CHECK(profile.layers.size() == decisions_.size());
  std::int64_t bytes = 0;
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    if (decisions_[i].method == ExecMethod::kDirectHostAccess) {
      bytes += profile.layers[i].param_bytes;
    }
  }
  return bytes;
}

std::optional<std::string> ExecutionPlan::Validate(const ModelProfile& profile) const {
  if (profile.layers.size() != decisions_.size()) {
    return "layer count mismatch between plan and profile";
  }
  int max_seen = -1;
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    const auto& d = decisions_[i];
    if (d.partition < 0 || d.partition >= num_partitions_) {
      return "layer " + std::to_string(i) + " has out-of-range partition";
    }
    if (d.partition < max_seen) {
      return "partitions are not contiguous at layer " + std::to_string(i);
    }
    // Partition boundaries must be non-decreasing and gapless.
    if (d.partition > max_seen + 1) {
      return "partition index jumps at layer " + std::to_string(i);
    }
    max_seen = std::max(max_seen, d.partition);
    if (d.method == ExecMethod::kDirectHostAccess && d.partition != 0) {
      return "DHA layer " + std::to_string(i) + " outside partition 0";
    }
    if (d.method == ExecMethod::kDirectHostAccess &&
        profile.layers[i].param_bytes == 0) {
      return "DHA on parameter-free layer " + std::to_string(i);
    }
  }
  if (max_seen + 1 != num_partitions_) {
    return "num_partitions does not match used partitions";
  }
  return std::nullopt;
}

std::string ExecutionPlan::Serialize() const {
  std::ostringstream os;
  os << "deepplan-v1 " << model_name_ << " layers=" << decisions_.size()
     << " partitions=" << num_partitions_ << "\n";
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    os << i << " " << ExecMethodName(decisions_[i].method) << " "
       << decisions_[i].partition << "\n";
  }
  return os.str();
}

std::optional<ExecutionPlan> ExecutionPlan::Parse(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  std::string model;
  std::string layers_kv;
  std::string parts_kv;
  if (!(is >> magic >> model >> layers_kv >> parts_kv) || magic != "deepplan-v1") {
    return std::nullopt;
  }
  const auto parse_kv = [](const std::string& kv, const char* key) -> long {
    const std::string prefix = std::string(key) + "=";
    if (kv.rfind(prefix, 0) != 0) {
      return -1;
    }
    return std::strtol(kv.c_str() + prefix.size(), nullptr, 10);
  };
  const long n = parse_kv(layers_kv, "layers");
  const long parts = parse_kv(parts_kv, "partitions");
  if (n < 0 || parts < 1) {
    return std::nullopt;
  }
  ExecutionPlan plan(model, static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    long idx = 0;
    std::string method;
    long partition = 0;
    if (!(is >> idx >> method >> partition) || idx != i) {
      return std::nullopt;
    }
    if (method == "dha") {
      plan.set_method(static_cast<std::size_t>(i), ExecMethod::kDirectHostAccess);
    } else if (method != "load") {
      return std::nullopt;
    }
    plan.set_partition(static_cast<std::size_t>(i), static_cast<int>(partition));
  }
  if (plan.num_partitions() != static_cast<int>(parts)) {
    return std::nullopt;
  }
  return plan;
}

}  // namespace deepplan
