// Per-layer performance profiles: the planner's input (Figure 10 step 1).
// A ModelProfile is what the paper's one-time pre-run produces — load time,
// in-memory execution time, and direct-host-access execution time per layer.
#ifndef SRC_CORE_PROFILE_H_
#define SRC_CORE_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/model/model.h"
#include "src/util/time.h"

namespace deepplan {

struct LayerProfile {
  std::string name;
  LayerKind kind = LayerKind::kActivation;
  std::int64_t param_bytes = 0;

  Nanos load = 0;         // host->GPU transfer time of this layer's params
  Nanos exec_in_mem = 0;  // execution with params resident in GPU memory
  Nanos exec_dha = 0;     // execution with params left in host memory

  bool has_params() const { return param_bytes > 0; }

  // Exe(DHA) - Exe(InMem), the paper's PerfDiff. Negative means DHA is
  // strictly faster even ignoring the saved load.
  Nanos PerfDiff() const { return exec_dha - exec_in_mem; }
};

struct ModelProfile {
  std::string model_name;
  int batch = 1;
  int iterations = 1;
  std::vector<LayerProfile> layers;

  std::size_t num_layers() const { return layers.size(); }
  Nanos TotalLoad() const;
  Nanos TotalExecInMem() const;
  std::int64_t TotalParamBytes() const;
};

}  // namespace deepplan

#endif  // SRC_CORE_PROFILE_H_
