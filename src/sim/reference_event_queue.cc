#include "src/sim/reference_event_queue.h"

#include "src/util/logging.h"

namespace deepplan {

ReferenceEventQueue::EventId ReferenceEventQueue::Schedule(Nanos when, Callback cb) {
  const EventId id = next_id_++;
  callbacks_.push_back(std::move(cb));
  live_.push_back(true);
  ++live_count_;
  heap_.push(Entry{when, id});
  return id;
}

bool ReferenceEventQueue::Cancel(EventId id) {
  if (id >= live_.size() || !live_[id]) {
    return false;
  }
  live_[id] = false;
  callbacks_[id] = nullptr;
  --live_count_;
  return true;
}

void ReferenceEventQueue::SkipCancelled() const {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (top.id < live_.size() && live_[top.id]) {
      return;
    }
    heap_.pop();
  }
}

Nanos ReferenceEventQueue::NextTime() const {
  SkipCancelled();
  DP_CHECK(!heap_.empty());
  return heap_.top().when;
}

std::pair<Nanos, ReferenceEventQueue::Callback> ReferenceEventQueue::PopNext() {
  SkipCancelled();
  DP_CHECK(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  Callback cb = std::move(callbacks_[top.id]);
  callbacks_[top.id] = nullptr;
  live_[top.id] = false;
  --live_count_;
  return {top.when, std::move(cb)};
}

}  // namespace deepplan
