#include "src/sim/simulator.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/check/validator.h"
#include "src/obs/selfprof.h"
#include "src/util/logging.h"

namespace deepplan {

namespace {

// DEEPPLAN_PROGRESS=<seconds between heartbeats> (fractional ok; <= 0 or
// unset disables). Read once per process — tests use the per-sim setter.
Nanos GlobalProgressPeriodNs() {
  static const Nanos period = [] {
    const char* env = std::getenv("DEEPPLAN_PROGRESS");
    if (env == nullptr || *env == '\0') {
      return Nanos{0};
    }
    const double seconds = std::strtod(env, nullptr);
    if (!(seconds > 0.0)) {
      return Nanos{0};
    }
    return Seconds(seconds);
  }();
  return period;
}

}  // namespace

Simulator::Simulator() : progress_period_ns_(GlobalProgressPeriodNs()) {}

EventQueue::EventId Simulator::ScheduleAfter(Nanos delay, Callback cb) {
  check::SimValidator::OnSchedule(now_, now_ + delay);
  DP_CHECK(delay >= 0);
  return queue_.Schedule(now_ + delay, std::move(cb));
}

EventQueue::EventId Simulator::ScheduleAt(Nanos when, Callback cb) {
  check::SimValidator::OnSchedule(now_, when);
  DP_CHECK(when >= now_);
  return queue_.Schedule(when, std::move(cb));
}

Nanos Simulator::Run() { return RunUntil(std::numeric_limits<Nanos>::max()); }

Nanos Simulator::RunUntil(Nanos deadline) {
  // One scope per drain, not per event: at ~165ns of real work per simulated
  // event, a pair of clock reads per event would dominate the loop. The
  // event count reaches the lane as a delta at each exit path instead.
  DP_SELFPROF_SCOPE(kSimDispatch);
  const std::uint64_t dispatched_at_entry = dispatched_;
  while (!queue_.empty()) {
    const Nanos next = queue_.NextTime();
    if (next > deadline) {
      now_ = deadline;
      selfprof::AddCount(selfprof::Counter::kEventsDispatched,
                         dispatched_ - dispatched_at_entry);
      return now_;
    }
    auto [when, cb] = queue_.PopNext();
    check::SimValidator::OnEventFire(now_, when);
    DP_CHECK(when >= now_);
    now_ = when;
    cb();
    ++dispatched_;
    if (progress_period_ns_ != 0 && (dispatched_ & 1023u) == 0) {
      MaybeEmitProgress();
    }
  }
  selfprof::AddCount(selfprof::Counter::kEventsDispatched,
                     dispatched_ - dispatched_at_entry);
  return now_;
}

void Simulator::AddProgressCounter(const std::uint64_t* counter) {
  progress_counters_.push_back(counter);
}

void Simulator::RemoveProgressCounter(const std::uint64_t* counter) {
  progress_counters_.erase(
      std::remove(progress_counters_.begin(), progress_counters_.end(), counter),
      progress_counters_.end());
}

void Simulator::MaybeEmitProgress() {
  const std::int64_t wall = selfprof::MonotonicNowNs();
  if (progress_last_wall_ns_ == 0) {
    // First check establishes the baseline; the first line lands one period
    // into the run, so short runs stay silent.
    progress_last_wall_ns_ = wall;
    progress_last_dispatched_ = dispatched_;
    return;
  }
  const std::int64_t elapsed = wall - progress_last_wall_ns_;
  if (elapsed < progress_period_ns_) {
    return;
  }
  std::uint64_t retired = 0;
  for (const std::uint64_t* counter : progress_counters_) {
    retired += *counter;
  }
  const double events_per_sec =
      static_cast<double>(dispatched_ - progress_last_dispatched_) /
      (static_cast<double>(elapsed) / 1e9);
  char line[192];
  std::snprintf(line, sizeof(line),
                "deepplan-progress: sim=%.3fs events=%llu ev/s=%.3gM "
                "retired=%llu rss=%lldMB\n",
                ToSeconds(now_),
                static_cast<unsigned long long>(dispatched_),
                events_per_sec / 1e6,
                static_cast<unsigned long long>(retired),
                static_cast<long long>(selfprof::CurrentRssKb() / 1024));
  std::fputs(line, stderr);
  selfprof::AddCount(selfprof::Counter::kHeartbeats, 1);
  progress_last_wall_ns_ = wall;
  progress_last_dispatched_ = dispatched_;
}

}  // namespace deepplan
