#include "src/sim/simulator.h"

#include "src/check/validator.h"
#include "src/util/logging.h"

namespace deepplan {

EventQueue::EventId Simulator::ScheduleAfter(Nanos delay, Callback cb) {
  check::SimValidator::OnSchedule(now_, now_ + delay);
  DP_CHECK(delay >= 0);
  return queue_.Schedule(now_ + delay, std::move(cb));
}

EventQueue::EventId Simulator::ScheduleAt(Nanos when, Callback cb) {
  check::SimValidator::OnSchedule(now_, when);
  DP_CHECK(when >= now_);
  return queue_.Schedule(when, std::move(cb));
}

Nanos Simulator::Run() { return RunUntil(std::numeric_limits<Nanos>::max()); }

Nanos Simulator::RunUntil(Nanos deadline) {
  while (!queue_.empty()) {
    const Nanos next = queue_.NextTime();
    if (next > deadline) {
      now_ = deadline;
      return now_;
    }
    auto [when, cb] = queue_.PopNext();
    check::SimValidator::OnEventFire(now_, when);
    DP_CHECK(when >= now_);
    now_ = when;
    cb();
  }
  return now_;
}

}  // namespace deepplan
