// CUDA-stream-like in-order work queues plus cross-stream synchronization
// events, mirroring the execution-coordination layer of Section 4.3.4: the
// load stream records a SyncEvent after each layer transfer
// (cudaEventRecord), the execute stream waits on it (cudaStreamWaitEvent).
#ifndef SRC_SIM_STREAM_H_
#define SRC_SIM_STREAM_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/time.h"

namespace deepplan {

// One-shot synchronization point. Fires once; waiters registered before the
// fire run at fire time, waiters registered after run immediately. A
// default-constructed event is inert until Reset attaches a simulator;
// Reset also rearms a fired event for reuse (pooled cold-run bookkeeping
// retains the waiter vector's capacity across runs).
class SyncEvent {
 public:
  SyncEvent() = default;
  explicit SyncEvent(Simulator* sim) : sim_(sim) {}

  void Reset(Simulator* sim) {
    sim_ = sim;
    fired_ = false;
    fire_time_ = -1;
    waiters_.clear();
  }

  bool fired() const { return fired_; }
  Nanos fire_time() const { return fire_time_; }

  // Marks the event fired at the current simulated time and releases waiters.
  void Fire();

  // Invokes `cb` once the event has fired (immediately if already fired).
  void OnFire(std::function<void()> cb);

 private:
  Simulator* sim_ = nullptr;
  bool fired_ = false;
  Nanos fire_time_ = -1;
  std::vector<std::function<void()>> waiters_;
};

// In-order asynchronous work queue. Each op receives a `done` callback it must
// invoke exactly once (possibly at a later simulated time); the next op starts
// only after the previous one finished.
class Stream {
 public:
  // An op begins when the stream reaches it and calls `done` when finished.
  using Op = std::function<void(std::function<void()> done)>;

  // A default-constructed stream is inert until Reset attaches a simulator.
  Stream() = default;
  Stream(Simulator* sim, std::string name);

  // Rearms a drained stream for reuse (pooled cold-run bookkeeping). The
  // stream must be idle: no queued ops, no op in flight.
  void Reset(Simulator* sim, std::string name);

  const std::string& name() const { return name_; }
  bool idle() const { return !running_ && queue_.empty(); }

  // Appends an op.
  void Enqueue(Op op);

  // Convenience: an op that just occupies the stream for `duration`.
  void EnqueueDelay(Nanos duration);

  // Convenience: fire `event` when the stream reaches this point.
  void EnqueueRecord(SyncEvent* event);

  // Convenience: block the stream until `event` fires.
  void EnqueueWait(SyncEvent* event);

  // Convenience: run `fn` inline (zero duration) when the stream reaches it.
  void EnqueueMarker(std::function<void()> fn);

  // Total time this stream spent with work enqueued but blocked on a wait op
  // (approximate pipeline-stall accounting for diagnostics).
  Nanos wait_time() const { return wait_time_; }

 private:
  void MaybeStartNext();

  Simulator* sim_ = nullptr;
  std::string name_;
  std::deque<Op> queue_;
  bool running_ = false;
  Nanos wait_time_ = 0;
  // When the most recent op started; the validator asserts in-order starts.
  Nanos last_start_ = -1;
};

}  // namespace deepplan

#endif  // SRC_SIM_STREAM_H_
