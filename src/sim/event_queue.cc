#include "src/sim/event_queue.h"

#include <algorithm>

#include "src/check/validator.h"
#include "src/util/logging.h"

namespace deepplan {
namespace {

constexpr std::size_t kMinBuckets = 8;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
// Buckets probed one-by-one before falling back to a direct min-epoch scan
// (sparse queues with large gaps between events).
constexpr std::size_t kLapLimit = 64;

}  // namespace

EventQueue::EventQueue() : buckets_(kMinBuckets), mask_(kMinBuckets - 1) {}

std::int64_t EventQueue::EpochOf(Nanos when) const {
  // Floor division: raw EventQueue users (property tests) may schedule
  // negative or pre-horizon times, and truncation would misorder them.
  std::int64_t q = when / width_;
  if (when % width_ < 0) {
    --q;
  }
  return q;
}

EventQueue::EventId EventQueue::Schedule(Nanos when, Callback cb) {
  const SlotPool<Callback>::Handle h = slots_.Alloc();
  slots_.Get(h) = std::move(cb);
  const Entry entry{when, seq_++, h.index, h.generation};

  if (total_entries_ == 0) {
    // Physically empty: re-anchor the calendar at this event instead of
    // walking the ring from wherever the last event left the horizon.
    cur_.clear();
    head_ = 0;
    serve_epoch_ = EpochOf(when);
    extracted_ = false;
  }
  const std::int64_t epoch = EpochOf(when);
  if (epoch < serve_epoch_) {
    Rewind(epoch);
  }
  ++total_entries_;
  if (epoch == serve_epoch_ && extracted_) {
    // The serve bucket was already swept into cur_; park the entry for a
    // lazy sorted merge so it still pops in (when, seq) order.
    pending_.push_back(entry);
  } else {
    buckets_[static_cast<std::size_t>(epoch) & mask_].push_back(entry);
  }
  MaybeResize();
  return (static_cast<EventId>(h.generation) << 32) | h.index;
}

bool EventQueue::Cancel(EventId id) {
  const SlotPool<Callback>::Handle h{static_cast<std::uint32_t>(id & 0xffffffffu),
                                     static_cast<std::uint32_t>(id >> 32)};
  if (!slots_.Alive(h)) {
    return false;
  }
  // Destroy the callback immediately (it may hold owning references); the
  // ring entry stays behind as a stale tombstone pruned lazily.
  slots_.Get(h) = nullptr;
  slots_.Free(h);
  return true;
}

void EventQueue::ExtractServeBucket() {
  std::vector<Entry>& bucket = ServeBucket();
  std::size_t keep = 0;
  for (const Entry& e : bucket) {
    if (!slots_.Alive({e.slot, e.gen})) {
      --total_entries_;  // prune cancelled entries of any epoch in passing
      continue;
    }
    if (EpochOf(e.when) == serve_epoch_) {
      cur_.push_back(e);
    } else {
      bucket[keep++] = e;  // a later lap of the ring; leave in place
    }
  }
  bucket.resize(keep);
  std::sort(cur_.begin(), cur_.end(), EntryLess);
  extracted_ = true;
}

void EventQueue::MergePending() {
  std::sort(pending_.begin(), pending_.end(), EntryLess);
  const std::size_t mid = cur_.size();
  cur_.insert(cur_.end(), pending_.begin(), pending_.end());
  std::inplace_merge(cur_.begin() + static_cast<std::ptrdiff_t>(head_),
                     cur_.begin() + static_cast<std::ptrdiff_t>(mid), cur_.end(), EntryLess);
  pending_.clear();
}

void EventQueue::AdvanceEpoch() {
  const std::size_t limit = std::min(buckets_.size(), kLapLimit);
  std::int64_t epoch = serve_epoch_;
  for (std::size_t probed = 0; probed < limit; ++probed) {
    ++epoch;
    const std::vector<Entry>& bucket = buckets_[static_cast<std::size_t>(epoch) & mask_];
    if (bucket.empty()) {
      continue;
    }
    for (const Entry& e : bucket) {
      if (EpochOf(e.when) == epoch) {
        serve_epoch_ = epoch;
        extracted_ = false;
        return;
      }
    }
  }
  // Sparse tail: jump straight to the earliest occupied epoch.
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (const std::vector<Entry>& bucket : buckets_) {
    for (const Entry& e : bucket) {
      best = std::min(best, EpochOf(e.when));
    }
  }
  DP_CHECK(best != std::numeric_limits<std::int64_t>::max());
  serve_epoch_ = best;
  extracted_ = false;
}

bool EventQueue::EnsureFront() {
  for (;;) {
    if (!extracted_) {
      ExtractServeBucket();
    }
    if (!pending_.empty()) {
      MergePending();
    }
    while (head_ < cur_.size()) {
      const Entry& e = cur_[head_];
      if (slots_.Alive({e.slot, e.gen})) {
        return true;
      }
      ++head_;  // cancelled after extraction
      --total_entries_;
    }
    cur_.clear();
    head_ = 0;
    if (slots_.live_count() == 0) {
      return false;
    }
    AdvanceEpoch();
  }
}

void EventQueue::Rewind(std::int64_t epoch) {
  // A schedule landed before the serve horizon: dump the in-flight serve
  // epoch back into its bucket (extraction re-sorts it later) and restart
  // serving from the earlier epoch.
  std::vector<Entry>& bucket = ServeBucket();
  for (std::size_t i = head_; i < cur_.size(); ++i) {
    bucket.push_back(cur_[i]);
  }
  bucket.insert(bucket.end(), pending_.begin(), pending_.end());
  cur_.clear();
  head_ = 0;
  pending_.clear();
  serve_epoch_ = epoch;
  extracted_ = false;
}

void EventQueue::MaybeResize() {
  const std::size_t n = buckets_.size();
  if ((total_entries_ > 2 * n && n < kMaxBuckets) ||
      (total_entries_ * 8 < n && n > kMinBuckets)) {
    Rebuild();
  }
}

void EventQueue::Rebuild() {
  std::vector<Entry> all;
  all.reserve(total_entries_);
  for (std::vector<Entry>& bucket : buckets_) {
    for (const Entry& e : bucket) {
      if (slots_.Alive({e.slot, e.gen})) {
        all.push_back(e);
      }
    }
    bucket.clear();
  }
  for (std::size_t i = head_; i < cur_.size(); ++i) {
    if (slots_.Alive({cur_[i].slot, cur_[i].gen})) {
      all.push_back(cur_[i]);
    }
  }
  for (const Entry& e : pending_) {
    if (slots_.Alive({e.slot, e.gen})) {
      all.push_back(e);
    }
  }
  cur_.clear();
  head_ = 0;
  pending_.clear();
  total_entries_ = all.size();

  std::size_t n = kMinBuckets;
  while (n < all.size() && n < kMaxBuckets) {
    n <<= 1;
  }
  if (buckets_.size() != n) {
    buckets_.assign(n, {});
  }
  mask_ = n - 1;

  // Width targets ~2 entries per epoch across the occupied span, so a lap of
  // the ring covers the whole population.
  if (all.size() >= 2) {
    Nanos lo = all.front().when;
    Nanos hi = lo;
    for (const Entry& e : all) {
      lo = std::min(lo, e.when);
      hi = std::max(hi, e.when);
    }
    const Nanos span = hi - lo;
    width_ = std::max<Nanos>(1, 2 * (span / static_cast<Nanos>(all.size())));
  }

  std::int64_t min_epoch = std::numeric_limits<std::int64_t>::max();
  for (const Entry& e : all) {
    const std::int64_t epoch = EpochOf(e.when);
    min_epoch = std::min(min_epoch, epoch);
    buckets_[static_cast<std::size_t>(epoch) & mask_].push_back(e);
  }
  serve_epoch_ = all.empty() ? 0 : min_epoch;
  extracted_ = false;
}

Nanos EventQueue::NextTime() const {
  EventQueue* self = const_cast<EventQueue*>(this);
  const bool has = self->EnsureFront();
  DP_CHECK(has);
  return cur_[head_].when;
}

std::pair<Nanos, EventQueue::Callback> EventQueue::PopNext() {
  const bool has = EnsureFront();
  DP_CHECK(has);
  const Entry e = cur_[head_];
  check::SimValidator::OnQueuePop(last_popped_, e.when);
  last_popped_ = e.when;
  ++head_;
  --total_entries_;
  const SlotPool<Callback>::Handle h{e.slot, e.gen};
  Callback cb = std::move(slots_.Get(h));
  slots_.Get(h) = nullptr;
  slots_.Free(h);
  return {e.when, std::move(cb)};
}

}  // namespace deepplan
