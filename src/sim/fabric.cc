#include "src/sim/fabric.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/check/validator.h"
#include "src/obs/selfprof.h"
#include "src/util/index.h"
#include "src/util/logging.h"

namespace deepplan {

namespace {
// A transfer is considered drained when fewer than this many bytes remain
// (guards against floating-point residue never reaching exactly zero).
constexpr double kEpsilonBytes = 1e-6;
}  // namespace

Fabric::Fabric(Simulator* sim) : sim_(sim) { DP_CHECK(sim != nullptr); }

LinkId Fabric::AddLink(std::string name, double capacity_bytes_per_sec) {
  DP_CHECK(capacity_bytes_per_sec > 0);
  links_.push_back(Link{std::move(name), capacity_bytes_per_sec});
  return static_cast<LinkId>(links_.size() - 1);
}

const std::string& Fabric::link_name(LinkId id) const {
  DP_CHECK(id >= 0 && id < num_links());
  return links_[Idx(id)].name;
}

double Fabric::link_capacity(LinkId id) const {
  DP_CHECK(id >= 0 && id < num_links());
  return links_[Idx(id)].capacity;
}

void Fabric::set_telemetry(TraceRecorder* recorder, MetricsRegistry* registry,
                           int pid) {
  recorder_ = recorder;
  registry_ = registry;
  pid_ = pid;
}

TransferId Fabric::Start(std::vector<LinkId> path, std::int64_t bytes, Nanos latency,
                         std::function<void(Nanos elapsed)> done) {
  DP_CHECK(bytes >= 0);
  for (LinkId l : path) {
    DP_CHECK(l >= 0 && l < num_links());
  }
  const TransferId id = next_id_++;
  if (registry_ != nullptr) {
    registry_->AddCounter("fabric.transfers");
    registry_->AddCounter("fabric.bytes", bytes);
  }
  if (recorder_ != nullptr) {
    // Cumulative byte track: the "cum/" namespace promises monotone samples,
    // which the offline trace linter re-checks.
    cumulative_bytes_ += bytes;
    recorder_->Counter(pid_, "cum/fabric.bytes", "bytes", sim_->now(),
                       static_cast<double>(cumulative_bytes_));
  }
  if (bytes == 0 || path.empty()) {
    const Nanos started = sim_->now();
    sim_->ScheduleAfter(latency, [done = std::move(done), started, this]() {
      if (done) {
        done(sim_->now() - started);
      }
    });
    return id;
  }
  Transfer t;
  t.id = id;
  t.path = std::move(path);
  t.total_bytes = static_cast<double>(bytes);
  t.remaining_bytes = static_cast<double>(bytes);
  t.last_update = sim_->now();
  t.started = sim_->now();
  t.latency = latency;
  t.done = std::move(done);
  active_.push_back(std::move(t));
  start_seeds_.assign(1, active_.size() - 1);
  Reallocate(start_seeds_, /*seeds_closed=*/false);
  return id;
}

Nanos Fabric::SoloDuration(const std::vector<LinkId>& path, std::int64_t bytes,
                           Nanos latency) const {
  if (bytes == 0 || path.empty()) {
    return latency;
  }
  double min_capacity = std::numeric_limits<double>::infinity();
  for (LinkId l : path) {
    DP_CHECK(l >= 0 && l < num_links());
    min_capacity = std::min(min_capacity, links_[Idx(l)].capacity);
  }
  const double secs = static_cast<double>(bytes) / min_capacity;
  return static_cast<Nanos>(std::ceil(secs * kNanosPerSecond)) + latency;
}

double Fabric::AllocatedOn(LinkId id) const {
  double total = 0.0;
  for (const auto& t : active_) {
    if (std::find(t.path.begin(), t.path.end(), id) != t.path.end()) {
      total += t.rate;
    }
  }
  return total;
}

void Fabric::SettleProgress() {
  const Nanos now = sim_->now();
  for (auto& t : active_) {
    if (t.rate > 0 && now > t.last_update) {
      const double elapsed_sec =
          static_cast<double>(now - t.last_update) / kNanosPerSecond;
      t.remaining_bytes = std::max(0.0, t.remaining_bytes - t.rate * elapsed_sec);
    }
    t.last_update = now;
  }
}

void Fabric::CollectComponent(const std::vector<std::size_t>& seeds,
                              std::vector<std::size_t>& out) {
  const std::size_t n = active_.size();
  // The mark arrays are all-zero between calls (cleared selectively below),
  // so growing them is the only per-call maintenance.
  if (in_component_.size() < n) {
    in_component_.resize(n, 0);
  }
  if (link_mark_.size() < links_.size()) {
    link_mark_.resize(links_.size(), 0);
  }
  out.clear();
  for (std::size_t i : seeds) {
    if (in_component_[i]) {
      continue;
    }
    in_component_[i] = 1;
    out.push_back(i);
    for (LinkId l : active_[i].path) {
      link_mark_[Idx(l)] = 1;
    }
  }
  // Fixpoint: a transfer joins the component when it shares a link with it,
  // and contributes its own links. Paths are short and components small (a
  // PCIe subtree), so a scan-to-fixpoint beats maintaining adjacency.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (in_component_[i]) {
        continue;
      }
      bool touches = false;
      for (LinkId l : active_[i].path) {
        if (link_mark_[Idx(l)]) {
          touches = true;
          break;
        }
      }
      if (!touches) {
        continue;
      }
      in_component_[i] = 1;
      out.push_back(i);
      for (LinkId l : active_[i].path) {
        link_mark_[Idx(l)] = 1;
      }
      changed = true;
    }
  }
  // Downstream solves scan the subset in ascending active_ index to keep the
  // full re-solve's tie-breaks; membership was discovered out of order.
  std::sort(out.begin(), out.end());
  for (const std::size_t i : out) {
    in_component_[i] = 0;
    for (LinkId l : active_[i].path) {
      link_mark_[Idx(l)] = 0;
    }
  }
}

void Fabric::SolveSubset(const std::vector<std::size_t>& subset,
                         std::vector<double>& rates) {
  // Progressive filling: repeatedly saturate the most-constrained link, freeze
  // the transfers crossing it at the fair share, remove them, and repeat.
  // Restricted to `subset` (a union of link-connected components) this yields
  // bitwise the rates of a full solve: transfers outside the subset share no
  // link with it, so neither side's arithmetic sees the other. Links are
  // scanned in ascending global id and transfers in ascending active_ index,
  // matching the original full solve's tie-breaks.
  users_.resize(links_.size());
  residual_.resize(links_.size());
  touched_links_.clear();
  for (std::size_t i : subset) {
    touched_links_.insert(touched_links_.end(), active_[i].path.begin(),
                          active_[i].path.end());
  }
  std::sort(touched_links_.begin(), touched_links_.end());
  touched_links_.erase(std::unique(touched_links_.begin(), touched_links_.end()),
                       touched_links_.end());
  for (LinkId l : touched_links_) {
    residual_[Idx(l)] = links_[Idx(l)].capacity;
  }
  frozen_.assign(subset.size(), 0);
  for (std::size_t i : subset) {
    rates[i] = 0.0;
  }
  std::size_t remaining = subset.size();
  while (remaining > 0) {
    // Count unfrozen transfers per link; find the tightest fair share.
    for (LinkId l : touched_links_) {
      users_[Idx(l)] = 0;
    }
    for (std::size_t k = 0; k < subset.size(); ++k) {
      if (frozen_[k]) {
        continue;
      }
      for (LinkId l : active_[subset[k]].path) {
        ++users_[Idx(l)];
      }
    }
    double best_share = std::numeric_limits<double>::infinity();
    LinkId best_link = -1;
    for (LinkId l : touched_links_) {
      if (users_[Idx(l)] == 0) {
        continue;
      }
      const double share = residual_[Idx(l)] / users_[Idx(l)];
      if (share < best_share) {
        best_share = share;
        best_link = l;
      }
    }
    DP_CHECK(best_link >= 0);
    // Freeze every unfrozen transfer crossing the bottleneck at that share.
    for (std::size_t k = 0; k < subset.size(); ++k) {
      if (frozen_[k]) {
        continue;
      }
      auto& t = active_[subset[k]];
      if (std::find(t.path.begin(), t.path.end(), best_link) == t.path.end()) {
        continue;
      }
      rates[subset[k]] = best_share;
      frozen_[k] = 1;
      --remaining;
      for (LinkId l : t.path) {
        residual_[Idx(l)] = std::max(0.0, residual_[Idx(l)] - best_share);
      }
    }
  }
}

void Fabric::ComputeRates(const std::vector<std::size_t>& seeds,
                          bool seeds_closed) {
  // Both solve entry points (transfer start via Reallocate, transfer
  // completion's direct incremental call) funnel through here.
  DP_SELFPROF_SCOPE(kFairShare);
  const std::size_t n = active_.size();
  if (force_full_resolve_) {
    affected_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      affected_.push_back(i);
    }
  } else if (seeds_closed) {
    affected_.assign(seeds.begin(), seeds.end());
  } else {
    CollectComponent(seeds, affected_);
  }
  shadow_rates_.resize(n);
  SolveSubset(affected_, shadow_rates_);
  for (std::size_t i : affected_) {
    active_[i].rate = shadow_rates_[i];
  }
  if (check::ValidationEnabled()) {
    // Shadow full re-solve: the incremental claim is bitwise equality, so
    // recompute everything from scratch and compare rate by rate.
    all_indices_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      all_indices_.push_back(i);
    }
    SolveSubset(all_indices_, shadow_rates_);
    for (std::size_t i = 0; i < n; ++i) {
      check::SimValidator::OnFabricIncrementalSolve(sim_->now(), active_[i].id,
                                                    active_[i].rate,
                                                    shadow_rates_[i]);
    }
    std::vector<check::FabricLinkShare> shares(links_.size());
    for (std::size_t l = 0; l < links_.size(); ++l) {
      shares[l].name = links_[l].name;
      shares[l].capacity = links_[l].capacity;
    }
    for (const auto& t : active_) {
      check::SimValidator::OnTransferRate(sim_->now(), t.id, t.rate);
      for (LinkId l : t.path) {
        shares[Idx(l)].allocated += t.rate;
        ++shares[Idx(l)].transfers;
      }
    }
    check::SimValidator::OnFabricAllocation(sim_->now(), shares);
  }
}

void Fabric::ScheduleCompletions() {
  for (std::size_t i = 0; i < active_.size(); ++i) {
    auto& t = active_[i];
    if (t.has_completion_event) {
      sim_->Cancel(t.completion_event);
      t.has_completion_event = false;
    }
    DP_CHECK(t.rate > 0);
    const double secs = t.remaining_bytes / t.rate;
    const auto delay = static_cast<Nanos>(std::ceil(secs * kNanosPerSecond));
    const TransferId id = t.id;
    t.completion_event = sim_->ScheduleAfter(delay, [this, id]() {
      for (std::size_t j = 0; j < active_.size(); ++j) {
        if (active_[j].id == id) {
          Complete(j);
          return;
        }
      }
      DP_CHECK(false && "completion for unknown transfer");
    });
    t.has_completion_event = true;
  }
}

void Fabric::Complete(std::size_t index) {
  SettleProgress();
  // The transfers whose fair share changes are exactly the departing
  // transfer's link-connected component; find it before the erase shifts
  // indices, then drop the departing transfer itself.
  start_seeds_.assign(1, index);
  CollectComponent(start_seeds_, completion_seeds_);
  std::size_t out = 0;
  for (std::size_t i : completion_seeds_) {
    if (i != index) {
      completion_seeds_[out++] = i > index ? i - 1 : i;
    }
  }
  completion_seeds_.resize(out);
  Transfer t = std::move(active_[index]);
  check::SimValidator::OnTransferComplete(sim_->now(), t.id,
                                          t.total_bytes - t.remaining_bytes,
                                          t.total_bytes);
  DP_CHECK(t.remaining_bytes <= kEpsilonBytes + 1.0);  // allow ns-rounding residue
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(index));
  if (!active_.empty()) {
    // completion_seeds_ is the departing transfer's component minus itself:
    // still closed under link-sharing (removal never adds connectivity).
    ComputeRates(completion_seeds_, /*seeds_closed=*/true);
    ScheduleCompletions();
  }
  EmitLinkCounters();
  const Nanos started = t.started;
  sim_->ScheduleAfter(t.latency, [this, started, done = std::move(t.done)]() {
    if (done) {
      done(sim_->now() - started);
    }
  });
}

void Fabric::Reallocate(const std::vector<std::size_t>& seeds, bool seeds_closed) {
  SettleProgress();
  ComputeRates(seeds, seeds_closed);
  ScheduleCompletions();
  EmitLinkCounters();
}

void Fabric::EmitLinkCounters() {
  if (recorder_ == nullptr) {
    return;
  }
  last_emitted_.resize(links_.size(), 0.0);
  std::vector<double> allocated(links_.size(), 0.0);
  for (const auto& t : active_) {
    for (LinkId l : t.path) {
      allocated[Idx(l)] += t.rate;
    }
  }
  for (std::size_t l = 0; l < links_.size(); ++l) {
    if (allocated[l] != last_emitted_[l]) {
      recorder_->Counter(pid_, "bw/" + links_[l].name, "gbps", sim_->now(),
                         allocated[l] * 1e-9);
      last_emitted_[l] = allocated[l];
    }
  }
}

}  // namespace deepplan
