#include "src/sim/fabric.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/check/validator.h"
#include "src/util/index.h"
#include "src/util/logging.h"

namespace deepplan {

namespace {
// A transfer is considered drained when fewer than this many bytes remain
// (guards against floating-point residue never reaching exactly zero).
constexpr double kEpsilonBytes = 1e-6;
}  // namespace

Fabric::Fabric(Simulator* sim) : sim_(sim) { DP_CHECK(sim != nullptr); }

LinkId Fabric::AddLink(std::string name, double capacity_bytes_per_sec) {
  DP_CHECK(capacity_bytes_per_sec > 0);
  links_.push_back(Link{std::move(name), capacity_bytes_per_sec});
  return static_cast<LinkId>(links_.size() - 1);
}

const std::string& Fabric::link_name(LinkId id) const {
  DP_CHECK(id >= 0 && id < num_links());
  return links_[Idx(id)].name;
}

double Fabric::link_capacity(LinkId id) const {
  DP_CHECK(id >= 0 && id < num_links());
  return links_[Idx(id)].capacity;
}

void Fabric::set_telemetry(TraceRecorder* recorder, MetricsRegistry* registry,
                           int pid) {
  recorder_ = recorder;
  registry_ = registry;
  pid_ = pid;
}

TransferId Fabric::Start(std::vector<LinkId> path, std::int64_t bytes, Nanos latency,
                         std::function<void(Nanos elapsed)> done) {
  DP_CHECK(bytes >= 0);
  for (LinkId l : path) {
    DP_CHECK(l >= 0 && l < num_links());
  }
  const TransferId id = next_id_++;
  if (registry_ != nullptr) {
    registry_->AddCounter("fabric.transfers");
    registry_->AddCounter("fabric.bytes", bytes);
  }
  if (recorder_ != nullptr) {
    // Cumulative byte track: the "cum/" namespace promises monotone samples,
    // which the offline trace linter re-checks.
    cumulative_bytes_ += bytes;
    recorder_->Counter(pid_, "cum/fabric.bytes", "bytes", sim_->now(),
                       static_cast<double>(cumulative_bytes_));
  }
  if (bytes == 0 || path.empty()) {
    const Nanos started = sim_->now();
    sim_->ScheduleAfter(latency, [done = std::move(done), started, this]() {
      if (done) {
        done(sim_->now() - started);
      }
    });
    return id;
  }
  Transfer t;
  t.id = id;
  t.path = std::move(path);
  t.total_bytes = static_cast<double>(bytes);
  t.remaining_bytes = static_cast<double>(bytes);
  t.last_update = sim_->now();
  t.started = sim_->now();
  t.latency = latency;
  t.done = std::move(done);
  active_.push_back(std::move(t));
  Reallocate();
  return id;
}

Nanos Fabric::SoloDuration(const std::vector<LinkId>& path, std::int64_t bytes,
                           Nanos latency) const {
  if (bytes == 0 || path.empty()) {
    return latency;
  }
  double min_capacity = std::numeric_limits<double>::infinity();
  for (LinkId l : path) {
    DP_CHECK(l >= 0 && l < num_links());
    min_capacity = std::min(min_capacity, links_[Idx(l)].capacity);
  }
  const double secs = static_cast<double>(bytes) / min_capacity;
  return static_cast<Nanos>(std::ceil(secs * kNanosPerSecond)) + latency;
}

double Fabric::AllocatedOn(LinkId id) const {
  double total = 0.0;
  for (const auto& t : active_) {
    if (std::find(t.path.begin(), t.path.end(), id) != t.path.end()) {
      total += t.rate;
    }
  }
  return total;
}

void Fabric::SettleProgress() {
  const Nanos now = sim_->now();
  for (auto& t : active_) {
    if (t.rate > 0 && now > t.last_update) {
      const double elapsed_sec =
          static_cast<double>(now - t.last_update) / kNanosPerSecond;
      t.remaining_bytes = std::max(0.0, t.remaining_bytes - t.rate * elapsed_sec);
    }
    t.last_update = now;
  }
}

void Fabric::ComputeRates() {
  // Progressive filling: repeatedly saturate the most-constrained link, freeze
  // the transfers crossing it at the fair share, remove them, and repeat.
  const std::size_t n = active_.size();
  std::vector<bool> frozen(n, false);
  std::vector<double> residual(links_.size());
  for (std::size_t l = 0; l < links_.size(); ++l) {
    residual[l] = links_[l].capacity;
  }
  std::size_t remaining = n;
  for (auto& t : active_) {
    t.rate = 0.0;
  }
  while (remaining > 0) {
    // Count unfrozen transfers per link; find the tightest fair share.
    std::vector<int> users(links_.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) {
        continue;
      }
      for (LinkId l : active_[i].path) {
        ++users[Idx(l)];
      }
    }
    double best_share = std::numeric_limits<double>::infinity();
    LinkId best_link = -1;
    for (std::size_t l = 0; l < links_.size(); ++l) {
      if (users[l] == 0) {
        continue;
      }
      const double share = residual[l] / users[l];
      if (share < best_share) {
        best_share = share;
        best_link = static_cast<LinkId>(l);
      }
    }
    DP_CHECK(best_link >= 0);
    // Freeze every unfrozen transfer crossing the bottleneck at that share.
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) {
        continue;
      }
      auto& t = active_[i];
      if (std::find(t.path.begin(), t.path.end(), best_link) == t.path.end()) {
        continue;
      }
      t.rate = best_share;
      frozen[i] = true;
      --remaining;
      for (LinkId l : t.path) {
        residual[Idx(l)] = std::max(0.0, residual[Idx(l)] - best_share);
      }
    }
  }
  if (check::ValidationEnabled()) {
    std::vector<check::FabricLinkShare> shares(links_.size());
    for (std::size_t l = 0; l < links_.size(); ++l) {
      shares[l].name = links_[l].name;
      shares[l].capacity = links_[l].capacity;
    }
    for (const auto& t : active_) {
      check::SimValidator::OnTransferRate(sim_->now(), t.id, t.rate);
      for (LinkId l : t.path) {
        shares[Idx(l)].allocated += t.rate;
        ++shares[Idx(l)].transfers;
      }
    }
    check::SimValidator::OnFabricAllocation(sim_->now(), shares);
  }
}

void Fabric::ScheduleCompletions() {
  for (std::size_t i = 0; i < active_.size(); ++i) {
    auto& t = active_[i];
    if (t.has_completion_event) {
      sim_->Cancel(t.completion_event);
      t.has_completion_event = false;
    }
    DP_CHECK(t.rate > 0);
    const double secs = t.remaining_bytes / t.rate;
    const auto delay = static_cast<Nanos>(std::ceil(secs * kNanosPerSecond));
    const TransferId id = t.id;
    t.completion_event = sim_->ScheduleAfter(delay, [this, id]() {
      for (std::size_t j = 0; j < active_.size(); ++j) {
        if (active_[j].id == id) {
          Complete(j);
          return;
        }
      }
      DP_CHECK(false && "completion for unknown transfer");
    });
    t.has_completion_event = true;
  }
}

void Fabric::Complete(std::size_t index) {
  SettleProgress();
  Transfer t = std::move(active_[index]);
  check::SimValidator::OnTransferComplete(sim_->now(), t.id,
                                          t.total_bytes - t.remaining_bytes,
                                          t.total_bytes);
  DP_CHECK(t.remaining_bytes <= kEpsilonBytes + 1.0);  // allow ns-rounding residue
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(index));
  if (!active_.empty()) {
    ComputeRates();
    ScheduleCompletions();
  }
  EmitLinkCounters();
  const Nanos started = t.started;
  sim_->ScheduleAfter(t.latency, [this, started, done = std::move(t.done)]() {
    if (done) {
      done(sim_->now() - started);
    }
  });
}

void Fabric::Reallocate() {
  SettleProgress();
  ComputeRates();
  ScheduleCompletions();
  EmitLinkCounters();
}

void Fabric::EmitLinkCounters() {
  if (recorder_ == nullptr) {
    return;
  }
  last_emitted_.resize(links_.size(), 0.0);
  std::vector<double> allocated(links_.size(), 0.0);
  for (const auto& t : active_) {
    for (LinkId l : t.path) {
      allocated[Idx(l)] += t.rate;
    }
  }
  for (std::size_t l = 0; l < links_.size(); ++l) {
    if (allocated[l] != last_emitted_[l]) {
      recorder_->Counter(pid_, "bw/" + links_[l].name, "gbps", sim_->now(),
                         allocated[l] * 1e-9);
      last_emitted_[l] = allocated[l];
    }
  }
}

}  // namespace deepplan
