// The original binary-heap EventQueue, kept compiled as the differential
// oracle for the calendar-queue backend (tests/eventqueue_diff_test.cc).
// Pops are ordered by (when, insertion sequence): equal-time events fire in
// schedule order. Any randomized schedule must produce bit-identical pop
// sequences on both backends; this class defines "correct".
#ifndef SRC_SIM_REFERENCE_EVENT_QUEUE_H_
#define SRC_SIM_REFERENCE_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "src/util/time.h"

namespace deepplan {

class ReferenceEventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  // Schedules `cb` at absolute time `when`. Returns an id usable with Cancel.
  EventId Schedule(Nanos when, Callback cb);

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // no-op and returns false.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  // Earliest pending event time; must not be called when empty.
  Nanos NextTime() const;

  // Pops and returns the earliest event (time + callback). Must not be empty.
  std::pair<Nanos, Callback> PopNext();

 private:
  struct Entry {
    Nanos when;
    EventId id;
    bool operator>(const Entry& o) const {
      return when != o.when ? when > o.when : id > o.id;
    }
  };

  void SkipCancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  // id -> callback; erased on cancel/fire. Keeps heap entries lightweight.
  std::vector<Callback> callbacks_;
  std::vector<bool> live_;
  EventId next_id_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace deepplan

#endif  // SRC_SIM_REFERENCE_EVENT_QUEUE_H_
