// Shared-bandwidth transfer fabric. Links have fixed capacities; a transfer
// claims a path (an ordered set of links) and receives a max-min fair share
// of every link it crosses (progressive filling). This reproduces the paper's
// PCIe contention effects: two GPUs pulling through one PCIe switch uplink
// each see roughly half bandwidth (Table 2), while NVLink traffic rides its
// own links and overlaps freely with host->GPU PCIe traffic (Figure 9).
#ifndef SRC_SIM_FABRIC_H_
#define SRC_SIM_FABRIC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/obs/metrics_registry.h"
#include "src/obs/trace_recorder.h"
#include "src/sim/simulator.h"
#include "src/util/time.h"

namespace deepplan {

using LinkId = int;
using TransferId = std::uint64_t;

class Fabric {
 public:
  explicit Fabric(Simulator* sim);

  // Adds a link with the given capacity (bytes/second). Returns its id.
  LinkId AddLink(std::string name, double capacity_bytes_per_sec);

  int num_links() const { return static_cast<int>(links_.size()); }
  const std::string& link_name(LinkId id) const;
  double link_capacity(LinkId id) const;

  // Starts a transfer of `bytes` across `path`. `latency` is added once, after
  // the last byte drains (DMA setup + completion signalling). `done` fires at
  // completion with the transfer's elapsed time. Zero-byte transfers complete
  // after just the latency. Returns an id (informational).
  TransferId Start(std::vector<LinkId> path, std::int64_t bytes, Nanos latency,
                   std::function<void(Nanos elapsed)> done);

  // Number of in-flight transfers (draining bytes; excludes latency tails).
  int active_transfers() const { return static_cast<int>(active_.size()); }

  // Current fair-share rate of a link's busiest direction: total allocated
  // bandwidth on the link (bytes/sec). For tests and bandwidth accounting.
  double AllocatedOn(LinkId id) const;

  // Duration the transfer would take with its path to itself: bytes at the
  // path's minimum link capacity (same ceil-to-ns rounding the completion
  // scheduler applies) plus the latency tail. The profiling layer charges
  // actual - solo to contention; fair sharing can only slow a transfer, so
  // actual >= solo always.
  Nanos SoloDuration(const std::vector<LinkId>& path, std::int64_t bytes,
                     Nanos latency) const;

  // Attaches telemetry (either pointer may be nullptr). While a recorder is
  // attached, every progressive-filling rate change emits one counter sample
  // per link whose allocation moved ("bw/<link name>", GB/s, tagged `pid`);
  // the registry counts transfers and bytes. Disabled cost: one null test.
  void set_telemetry(TraceRecorder* recorder, MetricsRegistry* registry,
                     int pid = 0);

  // Test hook: disables the incremental (component-local) fair-share solve
  // and re-solves every active transfer on each change, as the original
  // implementation did. tests/fabric_diff_test.cc runs one fabric in each
  // mode over identical schedules and asserts bitwise-equal behavior.
  void set_full_resolve_for_testing(bool full) { force_full_resolve_ = full; }

 private:
  struct Link {
    std::string name;
    double capacity;
  };

  struct Transfer {
    TransferId id;
    std::vector<LinkId> path;
    double total_bytes = 0.0;
    double remaining_bytes;
    double rate = 0.0;       // current allocation, bytes/sec
    Nanos last_update = 0;   // sim time when remaining_bytes was settled
    Nanos started = 0;
    Nanos latency = 0;
    std::function<void(Nanos)> done;
    EventQueue::EventId completion_event = 0;
    bool has_completion_event = false;
  };

  // Settles progress to now(), recomputes the max-min allocation of the
  // transfers whose flow set changed (`seeds`: indices into active_), and
  // reschedules every transfer's completion event. Settling and completion
  // rescheduling stay global on purpose: completion times are re-quantized
  // (ceil to whole ns) from freshly settled remaining_bytes, and skipping
  // that for "unchanged" transfers would shift completions by a nanosecond
  // relative to the original implementation.
  void Reallocate(const std::vector<std::size_t>& seeds, bool seeds_closed);
  void SettleProgress();
  // Recomputes rates for the link-connected component(s) of `seeds` only;
  // other transfers keep their (bitwise-unchanged) rates. When
  // `seeds_closed` the caller guarantees `seeds` is already closed under
  // link-sharing (a union of components) and the expansion is skipped. When
  // validation is on, shadows the full re-solve and cross-checks every rate
  // bit-for-bit.
  void ComputeRates(const std::vector<std::size_t>& seeds, bool seeds_closed);
  // Progressive filling restricted to `subset` (ascending indices into
  // active_, closed under link-sharing); writes rates[i] for i in subset.
  void SolveSubset(const std::vector<std::size_t>& subset,
                   std::vector<double>& rates);
  // Expands `seeds` to their link-connected component(s), ascending.
  void CollectComponent(const std::vector<std::size_t>& seeds,
                        std::vector<std::size_t>& out);
  void ScheduleCompletions();
  void Complete(std::size_t index);
  void EmitLinkCounters();

  Simulator* sim_;
  std::vector<Link> links_;
  std::vector<Transfer> active_;
  TransferId next_id_ = 1;
  bool force_full_resolve_ = false;

  // Scratch buffers reused across solves (the fabric reallocates on every
  // transfer start/completion; per-call vector churn was a measurable slice
  // of the sim-core profile).
  std::vector<std::size_t> affected_;
  std::vector<LinkId> touched_links_;
  std::vector<int> users_;          // per link, valid for touched links only
  std::vector<double> residual_;    // per link, valid for touched links only
  std::vector<char> in_component_;  // per active_ index
  std::vector<char> link_mark_;     // per link (component BFS)
  std::vector<std::size_t> all_indices_;       // 0..n-1 (full re-solve)
  std::vector<std::size_t> start_seeds_;       // seed buffer for Start
  std::vector<std::size_t> completion_seeds_;  // seed buffer for Complete
  std::vector<char> frozen_;        // per subset position
  std::vector<double> shadow_rates_;  // full re-solve result (validation)

  TraceRecorder* recorder_ = nullptr;
  MetricsRegistry* registry_ = nullptr;
  int pid_ = 0;
  std::vector<double> last_emitted_;  // last counter sample per link
  std::int64_t cumulative_bytes_ = 0;  // cum/fabric.bytes counter track
};

}  // namespace deepplan

#endif  // SRC_SIM_FABRIC_H_
