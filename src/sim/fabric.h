// Shared-bandwidth transfer fabric. Links have fixed capacities; a transfer
// claims a path (an ordered set of links) and receives a max-min fair share
// of every link it crosses (progressive filling). This reproduces the paper's
// PCIe contention effects: two GPUs pulling through one PCIe switch uplink
// each see roughly half bandwidth (Table 2), while NVLink traffic rides its
// own links and overlaps freely with host->GPU PCIe traffic (Figure 9).
#ifndef SRC_SIM_FABRIC_H_
#define SRC_SIM_FABRIC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/obs/metrics_registry.h"
#include "src/obs/trace_recorder.h"
#include "src/sim/simulator.h"
#include "src/util/time.h"

namespace deepplan {

using LinkId = int;
using TransferId = std::uint64_t;

class Fabric {
 public:
  explicit Fabric(Simulator* sim);

  // Adds a link with the given capacity (bytes/second). Returns its id.
  LinkId AddLink(std::string name, double capacity_bytes_per_sec);

  int num_links() const { return static_cast<int>(links_.size()); }
  const std::string& link_name(LinkId id) const;
  double link_capacity(LinkId id) const;

  // Starts a transfer of `bytes` across `path`. `latency` is added once, after
  // the last byte drains (DMA setup + completion signalling). `done` fires at
  // completion with the transfer's elapsed time. Zero-byte transfers complete
  // after just the latency. Returns an id (informational).
  TransferId Start(std::vector<LinkId> path, std::int64_t bytes, Nanos latency,
                   std::function<void(Nanos elapsed)> done);

  // Number of in-flight transfers (draining bytes; excludes latency tails).
  int active_transfers() const { return static_cast<int>(active_.size()); }

  // Current fair-share rate of a link's busiest direction: total allocated
  // bandwidth on the link (bytes/sec). For tests and bandwidth accounting.
  double AllocatedOn(LinkId id) const;

  // Duration the transfer would take with its path to itself: bytes at the
  // path's minimum link capacity (same ceil-to-ns rounding the completion
  // scheduler applies) plus the latency tail. The profiling layer charges
  // actual - solo to contention; fair sharing can only slow a transfer, so
  // actual >= solo always.
  Nanos SoloDuration(const std::vector<LinkId>& path, std::int64_t bytes,
                     Nanos latency) const;

  // Attaches telemetry (either pointer may be nullptr). While a recorder is
  // attached, every progressive-filling rate change emits one counter sample
  // per link whose allocation moved ("bw/<link name>", GB/s, tagged `pid`);
  // the registry counts transfers and bytes. Disabled cost: one null test.
  void set_telemetry(TraceRecorder* recorder, MetricsRegistry* registry,
                     int pid = 0);

 private:
  struct Link {
    std::string name;
    double capacity;
  };

  struct Transfer {
    TransferId id;
    std::vector<LinkId> path;
    double total_bytes = 0.0;
    double remaining_bytes;
    double rate = 0.0;       // current allocation, bytes/sec
    Nanos last_update = 0;   // sim time when remaining_bytes was settled
    Nanos started = 0;
    Nanos latency = 0;
    std::function<void(Nanos)> done;
    EventQueue::EventId completion_event = 0;
    bool has_completion_event = false;
  };

  // Settles progress to now(), recomputes max-min allocation, and reschedules
  // every transfer's completion event.
  void Reallocate();
  void SettleProgress();
  void ComputeRates();
  void ScheduleCompletions();
  void Complete(std::size_t index);
  void EmitLinkCounters();

  Simulator* sim_;
  std::vector<Link> links_;
  std::vector<Transfer> active_;
  TransferId next_id_ = 1;

  TraceRecorder* recorder_ = nullptr;
  MetricsRegistry* registry_ = nullptr;
  int pid_ = 0;
  std::vector<double> last_emitted_;  // last counter sample per link
  std::int64_t cumulative_bytes_ = 0;  // cum/fabric.bytes counter track
};

}  // namespace deepplan

#endif  // SRC_SIM_FABRIC_H_
