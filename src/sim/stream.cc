#include "src/sim/stream.h"

#include "src/check/validator.h"
#include "src/obs/selfprof.h"
#include "src/util/logging.h"

namespace deepplan {

void SyncEvent::Fire() {
  check::SimValidator::OnSyncEventFire("SyncEvent::Fire", fired_, sim_->now());
  DP_CHECK(!fired_);
  fired_ = true;
  fire_time_ = sim_->now();
  std::vector<std::function<void()>> waiters;
  waiters.swap(waiters_);
  for (auto& w : waiters) {
    w();
  }
}

void SyncEvent::OnFire(std::function<void()> cb) {
  if (fired_) {
    cb();
  } else {
    waiters_.push_back(std::move(cb));
  }
}

Stream::Stream(Simulator* sim, std::string name) : sim_(sim), name_(std::move(name)) {
  DP_CHECK(sim != nullptr);
}

void Stream::Reset(Simulator* sim, std::string name) {
  DP_CHECK(sim != nullptr);
  DP_CHECK(!running_ && queue_.empty());
  sim_ = sim;
  name_ = std::move(name);
  wait_time_ = 0;
  last_start_ = -1;
}

void Stream::Enqueue(Op op) {
  queue_.push_back(std::move(op));
  MaybeStartNext();
}

void Stream::EnqueueDelay(Nanos duration) {
  DP_CHECK(duration >= 0);
  Enqueue([this, duration](std::function<void()> done) {
    sim_->ScheduleAfter(duration, std::move(done));
  });
}

void Stream::EnqueueRecord(SyncEvent* event) {
  Enqueue([event](std::function<void()> done) {
    event->Fire();
    done();
  });
}

void Stream::EnqueueWait(SyncEvent* event) {
  Enqueue([this, event](std::function<void()> done) {
    const Nanos wait_start = sim_->now();
    event->OnFire([this, wait_start, done = std::move(done)]() {
      wait_time_ += sim_->now() - wait_start;
      done();
    });
  });
}

void Stream::EnqueueMarker(std::function<void()> fn) {
  Enqueue([fn = std::move(fn)](std::function<void()> done) {
    fn();
    done();
  });
}

void Stream::MaybeStartNext() {
  if (running_ || queue_.empty()) {
    return;
  }
  // After the early-outs so only real op starts are attributed; ops whose
  // done callback fires synchronously re-enter this function and collapse
  // into the already-open scope (count bump, no nested timing).
  DP_SELFPROF_SCOPE(kExecStream);
  running_ = true;
  check::SimValidator::OnStreamOpStart(name_, last_start_, sim_->now());
  last_start_ = sim_->now();
  Op op = std::move(queue_.front());
  queue_.pop_front();
  // The done callback may fire synchronously (marker/record ops); guard
  // against recursion by deferring continuation through the event queue only
  // when needed — here we simply re-enter MaybeStartNext after clearing
  // running_, which is safe because Enqueue during an op lands behind us.
  op([this]() {
    running_ = false;
    MaybeStartNext();
  });
}

}  // namespace deepplan
