#include "src/sim/gpu_allocator.h"

#include <algorithm>
#include <vector>

#include "src/check/validator.h"
#include "src/util/logging.h"

namespace deepplan {

GpuAllocator::GpuAllocator(std::int64_t capacity, std::int64_t alignment)
    : capacity_(capacity), alignment_(alignment) {
  DP_CHECK(capacity > 0);
  DP_CHECK(alignment > 0);
  free_blocks_[0] = capacity;
}

std::int64_t GpuAllocator::AlignUp(std::int64_t bytes) const {
  return (bytes + alignment_ - 1) / alignment_ * alignment_;
}

std::optional<AllocId> GpuAllocator::Allocate(std::int64_t bytes) {
  DP_CHECK(bytes > 0);
  const std::int64_t need = AlignUp(bytes);
  // First fit in address order (cudaMalloc-like behaviour).
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    if (it->second < need) {
      continue;
    }
    const std::int64_t offset = it->first;
    const std::int64_t remaining = it->second - need;
    free_blocks_.erase(it);
    if (remaining > 0) {
      free_blocks_[offset + need] = remaining;
    }
    const AllocId id = next_id_++;
    allocs_[id] = Allocation{offset, need};
    used_ += need;
    ValidateArena();
    return id;
  }
  return std::nullopt;
}

void GpuAllocator::Free(AllocId id) {
  const auto it = allocs_.find(id);
  DP_CHECK(it != allocs_.end());
  std::int64_t offset = it->second.offset;
  std::int64_t bytes = it->second.bytes;
  used_ -= bytes;
  allocs_.erase(it);
  // Coalesce with the following free block.
  const auto next = free_blocks_.lower_bound(offset);
  if (next != free_blocks_.end() && next->first == offset + bytes) {
    bytes += next->second;
    free_blocks_.erase(next);
  }
  // Coalesce with the preceding free block.
  const auto after = free_blocks_.lower_bound(offset);
  if (after != free_blocks_.begin()) {
    auto prev = std::prev(after);
    if (prev->first + prev->second == offset) {
      prev->second += bytes;
      ValidateArena();
      return;
    }
  }
  free_blocks_[offset] = bytes;
  ValidateArena();
}

void GpuAllocator::ValidateArena() const {
  if (!check::ValidationEnabled()) {
    return;
  }
  std::vector<check::ArenaSpan> spans;
  spans.reserve(free_blocks_.size() + allocs_.size());
  for (const auto& [offset, bytes] : free_blocks_) {
    spans.push_back(check::ArenaSpan{offset, bytes, true});
  }
  for (const auto& [id, alloc] : allocs_) {
    spans.push_back(check::ArenaSpan{alloc.offset, alloc.bytes, false});
  }
  check::SimValidator::OnArenaUpdate(capacity_, used_, spans);
}

std::int64_t GpuAllocator::LargestFreeBlock() const {
  std::int64_t largest = 0;
  for (const auto& [offset, bytes] : free_blocks_) {
    largest = std::max(largest, bytes);
  }
  return largest;
}

double GpuAllocator::Fragmentation() const {
  const std::int64_t free = free_bytes();
  if (free == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(LargestFreeBlock()) / static_cast<double>(free);
}

int GpuAllocator::num_free_blocks() const {
  return static_cast<int>(free_blocks_.size());
}

}  // namespace deepplan
