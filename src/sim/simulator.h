// Single-threaded discrete-event simulator: a clock plus an event queue.
// Components schedule callbacks; Run() drains events in time order.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <functional>
#include <limits>

#include "src/sim/event_queue.h"
#include "src/util/time.h"

namespace deepplan {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  Nanos now() const { return now_; }

  // Schedules `cb` to run `delay` after the current time (delay >= 0).
  EventQueue::EventId ScheduleAfter(Nanos delay, Callback cb);
  // Schedules `cb` at absolute simulated time `when` (>= now()).
  EventQueue::EventId ScheduleAt(Nanos when, Callback cb);
  bool Cancel(EventQueue::EventId id) { return queue_.Cancel(id); }

  // Runs until the queue is empty. Returns the final clock value.
  Nanos Run();
  // Runs until the queue is empty or the clock would pass `deadline`; events
  // at exactly `deadline` still fire.
  Nanos RunUntil(Nanos deadline);

  bool idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }
  // Queue introspection (slot reuse / scheduling volume) for tests + benches.
  const EventQueue& event_queue() const { return queue_; }

 private:
  Nanos now_ = 0;
  EventQueue queue_;
};

}  // namespace deepplan

#endif  // SRC_SIM_SIMULATOR_H_
