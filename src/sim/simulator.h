// Single-threaded discrete-event simulator: a clock plus an event queue.
// Components schedule callbacks; Run() drains events in time order.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/util/time.h"

namespace deepplan {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  // Picks up the process-wide DEEPPLAN_PROGRESS heartbeat period (0 when
  // unset/disabled).
  Simulator();

  Nanos now() const { return now_; }

  // Schedules `cb` to run `delay` after the current time (delay >= 0).
  EventQueue::EventId ScheduleAfter(Nanos delay, Callback cb);
  // Schedules `cb` at absolute simulated time `when` (>= now()).
  EventQueue::EventId ScheduleAt(Nanos when, Callback cb);
  bool Cancel(EventQueue::EventId id) { return queue_.Cancel(id); }

  // Runs until the queue is empty. Returns the final clock value.
  Nanos Run();
  // Runs until the queue is empty or the clock would pass `deadline`; events
  // at exactly `deadline` still fire.
  Nanos RunUntil(Nanos deadline);

  bool idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }
  // Queue introspection (slot reuse / scheduling volume) for tests + benches.
  const EventQueue& event_queue() const { return queue_; }
  // Events popped and fired by this simulator over its lifetime.
  std::uint64_t events_dispatched() const { return dispatched_; }

  // Live progress heartbeat (DEEPPLAN_PROGRESS=<seconds>, fractional ok):
  // when enabled, the dispatch loop emits a stderr line at most once per
  // period — simulated time, events/sec, requests retired, RSS. Off by
  // default so every bench golden (stdout *and* stderr formats) is
  // untouched. The per-sim setter exists so tests need not mutate the
  // process environment.
  void set_progress_period_for_testing(Nanos period) {
    progress_period_ns_ = period;
  }
  // Components expose "requests retired so far" to the heartbeat by
  // registering a counter location (Server registers its finished-request
  // count; the heartbeat prints the sum). The pointee must stay valid until
  // removed; single-threaded like the rest of the simulator.
  void AddProgressCounter(const std::uint64_t* counter);
  void RemoveProgressCounter(const std::uint64_t* counter);

 private:
  void MaybeEmitProgress();

  Nanos now_ = 0;
  EventQueue queue_;
  std::uint64_t dispatched_ = 0;
  Nanos progress_period_ns_;  // 0 = heartbeat disabled
  std::int64_t progress_last_wall_ns_ = 0;
  std::uint64_t progress_last_dispatched_ = 0;
  std::vector<const std::uint64_t*> progress_counters_;
};

}  // namespace deepplan

#endif  // SRC_SIM_SIMULATOR_H_
