// First-fit GPU device-memory allocator with block splitting/coalescing and
// fragmentation accounting. The serving system allocates one block per
// provisioned instance; repeated load/evict cycles of mixed-size models
// fragment the arena exactly as cudaMalloc/cudaFree would, which is why the
// instance manager reasons about *allocatable* rather than merely free bytes.
#ifndef SRC_SIM_GPU_ALLOCATOR_H_
#define SRC_SIM_GPU_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <optional>

namespace deepplan {

using AllocId = std::uint64_t;

class GpuAllocator {
 public:
  // `capacity` bytes of device memory; allocations align up to `alignment`.
  explicit GpuAllocator(std::int64_t capacity, std::int64_t alignment = 512);

  // Allocates `bytes` (rounded up to alignment). Returns nullopt when no
  // contiguous free block fits — which can happen even with enough total
  // free bytes (external fragmentation).
  std::optional<AllocId> Allocate(std::int64_t bytes);

  // Frees a previous allocation; neighbouring free blocks coalesce.
  void Free(AllocId id);

  std::int64_t capacity() const { return capacity_; }
  std::int64_t used_bytes() const { return used_; }
  std::int64_t free_bytes() const { return capacity_ - used_; }

  // Largest single allocation that would currently succeed.
  std::int64_t LargestFreeBlock() const;

  // External fragmentation in [0, 1]: 1 - largest_free/free (0 when empty or
  // when all free space is one block).
  double Fragmentation() const;

  int num_allocations() const { return static_cast<int>(allocs_.size()); }
  int num_free_blocks() const;

 private:
  struct Allocation {
    std::int64_t offset;
    std::int64_t bytes;
  };

  std::int64_t AlignUp(std::int64_t bytes) const;

  // Feeds the full span map to the validator (tiling/coalescing invariants).
  // No-op unless validation is enabled.
  void ValidateArena() const;

  std::int64_t capacity_;
  std::int64_t alignment_;
  std::int64_t used_ = 0;
  // offset -> length of free blocks, disjoint, non-adjacent (coalesced).
  std::map<std::int64_t, std::int64_t> free_blocks_;
  std::map<AllocId, Allocation> allocs_;
  AllocId next_id_ = 1;
};

}  // namespace deepplan

#endif  // SRC_SIM_GPU_ALLOCATOR_H_
