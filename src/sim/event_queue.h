// Calendar queue of timestamped callbacks with a deterministic tiebreak
// (insertion sequence), so equal-time events fire in schedule order — the
// same pop order, bit for bit, as the original binary-heap backend (kept as
// ReferenceEventQueue and enforced by tests/eventqueue_diff_test.cc).
//
// Design (DESIGN.md §12): time is divided into fixed-width epochs hashed
// into a power-of-two ring of buckets. Pops serve one epoch at a time from a
// sorted working vector; schedules append to a bucket (O(1)). Width and
// bucket count adapt to the live population, so both schedule and pop are
// amortized O(1) instead of the heap's O(log n). Callbacks live in a
// generation-checked SlotPool: slots are recycled when events fire or are
// cancelled, bounding memory by the *maximum outstanding* events rather than
// the total ever scheduled (the old backend's id-indexed vectors grew without
// bound — ~700 MB over a 20-minute fig15 replay).
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "src/util/arena.h"
#include "src/util/time.h"

namespace deepplan {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  EventQueue();

  // Schedules `cb` at absolute time `when`. Returns an id usable with Cancel.
  EventId Schedule(Nanos when, Callback cb);

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // no-op and returns false. A cancelled id is never resurrected: the slot it
  // named is recycled under a new generation, so stale ids stay dead.
  bool Cancel(EventId id);

  bool empty() const { return slots_.live_count() == 0; }
  std::size_t size() const { return slots_.live_count(); }

  // Earliest pending event time; must not be called when empty.
  Nanos NextTime() const;

  // Pops and returns the earliest event (time + callback). Must not be empty.
  std::pair<Nanos, Callback> PopNext();

  // --- introspection (tests + bench_scaling) ---
  // Total events ever scheduled on this queue.
  std::uint64_t total_scheduled() const { return seq_; }
  // Callback slots ever created; bounded by max simultaneously-pending
  // events, not total_scheduled() — the arena-reuse invariant scaling_test
  // asserts on.
  std::size_t slot_capacity() const { return slots_.capacity(); }
  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  struct Entry {
    Nanos when;
    std::uint64_t seq;   // global schedule order; FIFO tiebreak at equal when
    std::uint32_t slot;  // SlotPool handle (callback location)
    std::uint32_t gen;   // SlotPool generation; mismatch = cancelled/stale
  };

  static bool EntryLess(const Entry& a, const Entry& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }

  std::int64_t EpochOf(Nanos when) const;
  std::vector<Entry>& ServeBucket() {
    return buckets_[static_cast<std::size_t>(serve_epoch_) & mask_];
  }

  // Positions the next live entry at cur_[head_]; false when nothing is live.
  bool EnsureFront();
  void ExtractServeBucket();
  void MergePending();
  void AdvanceEpoch();
  void Rewind(std::int64_t epoch);
  void MaybeResize();
  void Rebuild();

  SlotPool<Callback> slots_;
  std::vector<std::vector<Entry>> buckets_;
  std::size_t mask_ = 0;  // buckets_.size() - 1 (power of two)
  Nanos width_ = 1;       // nanoseconds per epoch

  // Serving state: cur_ holds the serve epoch's entries sorted by
  // (when, seq); head_ is the next unpopped index. Entries scheduled into the
  // serve epoch after extraction land in pending_ and are merged lazily.
  std::vector<Entry> cur_;
  std::size_t head_ = 0;
  std::vector<Entry> pending_;
  std::int64_t serve_epoch_ = 0;
  bool extracted_ = false;

  std::uint64_t seq_ = 0;
  // Entries physically resident in buckets_/cur_/pending_, including
  // cancelled ones not yet pruned.
  std::size_t total_entries_ = 0;
  // Latest popped timestamp; the validator asserts pops are monotone.
  Nanos last_popped_ = std::numeric_limits<Nanos>::min();
};

}  // namespace deepplan

#endif  // SRC_SIM_EVENT_QUEUE_H_
