// GPU and PCIe hardware descriptions. These are *specifications* consumed by
// the performance model and the simulator; they hold no state.
#ifndef SRC_HW_GPU_H_
#define SRC_HW_GPU_H_

#include <cstdint>
#include <string>

#include "src/util/time.h"

namespace deepplan {

// PCIe generation parameters (per-GPU x16 link, host -> device direction).
struct PcieSpec {
  std::string name;
  // Effective host->GPU bandwidth achievable with pinned-memory DMA
  // (bytes/second). PCIe 3.0 x16 is 15.75 GB/s theoretical; the paper measures
  // 10.9-11.5 GB/s effective (Table 2).
  double effective_bw_bytes_per_sec = 0.0;
  // Transaction payload (cache line) used for read-event accounting (Table 1).
  std::int64_t payload_bytes = 64;
  // One-way latency of a small read through the root complex. Direct-host-
  // access pays this on the critical path of dependent accesses.
  Nanos access_latency = 0;

  static PcieSpec Gen3();
  static PcieSpec Gen4();
};

// GPU compute/memory specification.
struct GpuSpec {
  std::string name;
  double fp32_tflops = 0.0;          // peak FP32 throughput
  double mem_bw_bytes_per_sec = 0.0;  // HBM/GDDR bandwidth
  std::int64_t mem_bytes = 0;         // total device memory
  // Fraction of peak FLOPs realizable by batch-1 inference kernels.
  double compute_efficiency = 0.5;
  // Fixed per-kernel launch + framework dispatch overhead.
  Nanos kernel_overhead = 0;

  static GpuSpec V100();
  static GpuSpec A5000();
  static GpuSpec A100();
};

// NVLink interconnect between a GPU pair (per-direction bandwidth).
struct NvlinkSpec {
  std::string name;
  double bw_bytes_per_sec = 0.0;
  Nanos transfer_latency = 0;  // per-transfer setup cost

  static NvlinkSpec V100Nvlink();   // NVLink 2.0 as in p3.8xlarge
  static NvlinkSpec A5000Bridge();  // NVLink bridge between two A5000s
  static NvlinkSpec A100Nvswitch(); // NVLink 3.0 through NVSwitch (HGX A100)
};

}  // namespace deepplan

#endif  // SRC_HW_GPU_H_
