// Server topology: GPUs, PCIe switches, NVLink connectivity. The transmission
// planner (Section 4.3.3 of the paper) consults this to pick GPUs that do not
// contend on the same PCIe switch uplink, and the fabric simulator uses it to
// route transfers through shared links.
#ifndef SRC_HW_TOPOLOGY_H_
#define SRC_HW_TOPOLOGY_H_

#include <string>
#include <vector>

#include "src/hw/gpu.h"

namespace deepplan {

using GpuId = int;

// A multi-GPU server. GPUs attach to PCIe switches; switches share a host
// uplink; NVLink edges connect GPU pairs directly.
class Topology {
 public:
  static Topology P3_8xlarge();  // 4x V100, 2 PCIe switches x 2 GPUs, NVLink mesh
  static Topology A5000Box();    // 2x A5000, separate PCIe 4.0 root ports, NV bridge
  static Topology Dgx1();        // 8x V100, 4 PCIe switches x 2 GPUs, NVLink mesh
  static Topology HgxA100();     // 8x A100, PCIe 4.0, NVSwitch all-to-all
  // Custom builder used by tests: `switch_of[g]` gives each GPU's switch;
  // `nvlink_pairs` lists connected GPU pairs.
  static Topology Custom(std::string name, GpuSpec gpu, PcieSpec pcie, NvlinkSpec nvlink,
                         std::vector<int> switch_of, double switch_uplink_bw,
                         std::vector<std::pair<GpuId, GpuId>> nvlink_pairs);

  // Copy of this topology with the PCIe effective bandwidth replaced (the
  // switch uplink keeps its 1.05x headroom over the new per-lane bandwidth;
  // access latency and every other spec stay put). Used by the what-if
  // validation harness to re-simulate "same box, different link speed" — e.g.
  // fig16's PCIe 4.0 system journaled at PCIe 3.0 bandwidth.
  Topology WithPcieBandwidth(double effective_bw_bytes_per_sec) const;

  const std::string& name() const { return name_; }
  int num_gpus() const { return static_cast<int>(switch_of_.size()); }
  int num_switches() const { return num_switches_; }

  const GpuSpec& gpu() const { return gpu_; }
  const PcieSpec& pcie() const { return pcie_; }
  const NvlinkSpec& nvlink() const { return nvlink_; }

  // PCIe switch the GPU hangs off.
  int switch_of(GpuId gpu) const;
  bool SameSwitch(GpuId a, GpuId b) const;
  bool HasNvlink(GpuId a, GpuId b) const;

  // Aggregate host->switch uplink bandwidth shared by all GPUs on one switch
  // (bytes/second). GPUs on the same switch contend for this (Table 2: 4-GPU
  // parallel load halves per-GPU bandwidth).
  double switch_uplink_bw() const { return switch_uplink_bw_; }

  // GPUs sorted best-first for joining a parallel transmission with `primary`:
  // prefer NVLink-connected GPUs on *other* switches; excludes the primary.
  // GPUs without NVLink to the primary are omitted (the paper disables PT
  // without NVLink).
  std::vector<GpuId> ParallelCandidates(GpuId primary) const;

  // Largest useful parallel-transmission degree for this server: 1 (primary)
  // + at most one GPU per other PCIe switch reachable via NVLink. On
  // p3.8xlarge this returns 2, matching the paper's guidance to use up to two
  // GPUs per model.
  int MaxParallelDegree(GpuId primary) const;

 private:
  std::string name_;
  GpuSpec gpu_;
  PcieSpec pcie_;
  NvlinkSpec nvlink_;
  std::vector<int> switch_of_;
  int num_switches_ = 0;
  double switch_uplink_bw_ = 0.0;
  std::vector<std::vector<bool>> nvlink_adj_;
};

}  // namespace deepplan

#endif  // SRC_HW_TOPOLOGY_H_
