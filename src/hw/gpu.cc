#include "src/hw/gpu.h"

namespace deepplan {

namespace {
constexpr double kGB = 1e9;
constexpr std::int64_t kGiB = 1024LL * 1024 * 1024;
}  // namespace

PcieSpec PcieSpec::Gen3() {
  PcieSpec spec;
  spec.name = "PCIe 3.0 x16";
  // Calibrated so a BERT-Base (417 MiB) bulk load takes ~40 ms and Table 2's
  // 10.9-11.5 GB/s serial bandwidths emerge once per-layer overheads apply.
  spec.effective_bw_bytes_per_sec = 12.0 * kGB;
  spec.payload_bytes = 64;
  spec.access_latency = Micros(1.2);
  return spec;
}

PcieSpec PcieSpec::Gen4() {
  PcieSpec spec;
  spec.name = "PCIe 4.0 x16";
  spec.effective_bw_bytes_per_sec = 23.0 * kGB;
  spec.payload_bytes = 64;
  spec.access_latency = Micros(1.0);
  return spec;
}

GpuSpec GpuSpec::V100() {
  GpuSpec spec;
  spec.name = "V100-SXM2-16GB";
  spec.fp32_tflops = 15.7;
  spec.mem_bw_bytes_per_sec = 900.0 * kGB;
  spec.mem_bytes = 16 * kGiB;
  spec.compute_efficiency = 0.63;
  spec.kernel_overhead = Micros(9.0);
  return spec;
}

GpuSpec GpuSpec::A5000() {
  GpuSpec spec;
  spec.name = "RTX-A5000-24GB";
  spec.fp32_tflops = 27.8;
  spec.mem_bw_bytes_per_sec = 768.0 * kGB;
  spec.mem_bytes = 24 * kGiB;
  spec.compute_efficiency = 0.50;
  spec.kernel_overhead = Micros(8.0);
  return spec;
}

GpuSpec GpuSpec::A100() {
  GpuSpec spec;
  spec.name = "A100-SXM4-40GB";
  spec.fp32_tflops = 19.5;
  spec.mem_bw_bytes_per_sec = 1555.0 * kGB;
  spec.mem_bytes = 40 * kGiB;
  spec.compute_efficiency = 0.62;
  spec.kernel_overhead = Micros(8.0);
  return spec;
}

NvlinkSpec NvlinkSpec::V100Nvlink() {
  NvlinkSpec spec;
  spec.name = "NVLink2";
  spec.bw_bytes_per_sec = 45.0 * kGB;  // two links per pair on p3.8xlarge
  spec.transfer_latency = Micros(4.0);
  return spec;
}

NvlinkSpec NvlinkSpec::A5000Bridge() {
  NvlinkSpec spec;
  spec.name = "NVLink-Bridge";
  spec.bw_bytes_per_sec = 50.0 * kGB;
  spec.transfer_latency = Micros(4.0);
  return spec;
}

NvlinkSpec NvlinkSpec::A100Nvswitch() {
  NvlinkSpec spec;
  spec.name = "NVLink3-NVSwitch";
  spec.bw_bytes_per_sec = 300.0 * kGB;  // 600 GB/s bidirectional per GPU
  spec.transfer_latency = Micros(3.0);
  return spec;
}

}  // namespace deepplan
