#include "src/hw/topology.h"

#include <algorithm>

#include "src/util/index.h"
#include "src/util/logging.h"

namespace deepplan {

Topology Topology::Custom(std::string name, GpuSpec gpu, PcieSpec pcie,
                          NvlinkSpec nvlink, std::vector<int> switch_of,
                          double switch_uplink_bw,
                          std::vector<std::pair<GpuId, GpuId>> nvlink_pairs) {
  Topology t;
  t.name_ = std::move(name);
  t.gpu_ = std::move(gpu);
  t.pcie_ = std::move(pcie);
  t.nvlink_ = std::move(nvlink);
  t.switch_of_ = std::move(switch_of);
  t.switch_uplink_bw_ = switch_uplink_bw;
  t.num_switches_ = t.switch_of_.empty()
                        ? 0
                        : *std::max_element(t.switch_of_.begin(), t.switch_of_.end()) + 1;
  const int n = t.num_gpus();
  t.nvlink_adj_.assign(Idx(n), std::vector<bool>(Idx(n), false));
  for (const auto& [a, b] : nvlink_pairs) {
    DP_CHECK(a >= 0 && a < n && b >= 0 && b < n && a != b);
    t.nvlink_adj_[Idx(a)][Idx(b)] = true;
    t.nvlink_adj_[Idx(b)][Idx(a)] = true;
  }
  return t;
}

Topology Topology::P3_8xlarge() {
  // 4x V100: GPUs {0,1} on switch 0, {2,3} on switch 1. NVLink connects every
  // pair (NVLink mesh on p3.8xlarge). The switch uplink carries slightly more
  // than one x16 link's worth of traffic, so two same-switch GPUs loading at
  // once see roughly half bandwidth each (Table 2's ~6 GB/s with 4 GPUs).
  const PcieSpec pcie = PcieSpec::Gen3();
  return Custom("p3.8xlarge", GpuSpec::V100(), pcie, NvlinkSpec::V100Nvlink(),
                {0, 0, 1, 1},
                /*switch_uplink_bw=*/pcie.effective_bw_bytes_per_sec * 1.05,
                {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
}

Topology Topology::A5000Box() {
  // 2x RTX A5000 on separate PCIe 4.0 root ports with an NVLink bridge.
  const PcieSpec pcie = PcieSpec::Gen4();
  return Custom("a5000_box", GpuSpec::A5000(), pcie, NvlinkSpec::A5000Bridge(), {0, 1},
                /*switch_uplink_bw=*/pcie.effective_bw_bytes_per_sec * 1.05, {{0, 1}});
}

Topology Dgx1Impl() {
  // DGX-1-style box: 8x V100, every two GPUs behind one PCIe switch ("in
  // modern multi-GPU servers, there are eight GPUs, and every two GPUs share
  // the same PCIe switch"), NVLink mesh. Supports parallel transmission of
  // degree 4 (one GPU per switch).
  const PcieSpec pcie = PcieSpec::Gen3();
  std::vector<std::pair<GpuId, GpuId>> pairs;
  for (GpuId a = 0; a < 8; ++a) {
    for (GpuId b = a + 1; b < 8; ++b) {
      pairs.push_back({a, b});
    }
  }
  return Topology::Custom("dgx1", GpuSpec::V100(), pcie, NvlinkSpec::V100Nvlink(),
                          {0, 0, 1, 1, 2, 2, 3, 3},
                          pcie.effective_bw_bytes_per_sec * 1.05, pairs);
}

Topology Topology::Dgx1() { return Dgx1Impl(); }

Topology Topology::HgxA100() {
  // HGX A100-style box (the paper's Related Work points at it): 8x A100 on
  // PCIe 4.0, every two GPUs behind one switch, NVSwitch all-to-all fabric.
  const PcieSpec pcie = PcieSpec::Gen4();
  std::vector<std::pair<GpuId, GpuId>> pairs;
  for (GpuId a = 0; a < 8; ++a) {
    for (GpuId b = a + 1; b < 8; ++b) {
      pairs.push_back({a, b});
    }
  }
  return Custom("hgx_a100", GpuSpec::A100(), pcie, NvlinkSpec::A100Nvswitch(),
                {0, 0, 1, 1, 2, 2, 3, 3}, pcie.effective_bw_bytes_per_sec * 1.05,
                pairs);
}

Topology Topology::WithPcieBandwidth(double effective_bw_bytes_per_sec) const {
  DP_CHECK(effective_bw_bytes_per_sec > 0);
  Topology t = *this;
  t.name_ += "_bw";
  t.pcie_.effective_bw_bytes_per_sec = effective_bw_bytes_per_sec;
  t.switch_uplink_bw_ = effective_bw_bytes_per_sec * 1.05;
  return t;
}

int Topology::switch_of(GpuId gpu) const {
  DP_CHECK(gpu >= 0 && gpu < num_gpus());
  return switch_of_[Idx(gpu)];
}

bool Topology::SameSwitch(GpuId a, GpuId b) const {
  return switch_of(a) == switch_of(b);
}

bool Topology::HasNvlink(GpuId a, GpuId b) const {
  DP_CHECK(a >= 0 && a < num_gpus() && b >= 0 && b < num_gpus());
  return nvlink_adj_[Idx(a)][Idx(b)];
}

std::vector<GpuId> Topology::ParallelCandidates(GpuId primary) const {
  DP_CHECK(primary >= 0 && primary < num_gpus());
  std::vector<GpuId> out;
  // Other-switch NVLink peers first (no uplink contention with the primary),
  // then same-switch peers (still usable, but contended).
  for (int pass = 0; pass < 2; ++pass) {
    for (GpuId g = 0; g < num_gpus(); ++g) {
      if (g == primary || !HasNvlink(primary, g)) {
        continue;
      }
      const bool other_switch = !SameSwitch(primary, g);
      if ((pass == 0) == other_switch) {
        out.push_back(g);
      }
    }
  }
  return out;
}

int Topology::MaxParallelDegree(GpuId primary) const {
  std::vector<bool> switch_used(Idx(num_switches_), false);
  switch_used[Idx(switch_of(primary))] = true;
  int degree = 1;
  for (GpuId g : ParallelCandidates(primary)) {
    const int s = switch_of(g);
    if (!switch_used[Idx(s)]) {
      switch_used[Idx(s)] = true;
      ++degree;
    }
  }
  return degree;
}

}  // namespace deepplan
