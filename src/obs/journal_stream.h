// Streaming binary causal journal (schema v1). The JSON journal
// (CausalGraph::ToJson) is lossless but needs the whole graph in memory; this
// format is its scale-ready twin: a streaming JournalWriter consumes retired
// requests from a streaming CausalGraph (CausalSink) and appends them in
// CRC-guarded chunks, so recording a million-request run costs only the
// in-flight state, and a chunk-iterator JournalReader lets consumers (the
// windowed what-if engine, the lint mode, the JSON converter) bound their
// resident set to a window of chunks. JSON stays the export format — the
// conversion is exact in both directions, byte-identical to ToJson().
//
// File layout (all integers little-endian; varint = LEB128, zigzag for
// signed):
//
//   header  "DPJL" + u32 version (=1)
//   frame*  u8 marker + varint payload_size + u32 crc32(payload) + payload
//
// A frame is a chunk (marker 0xC4) or the footer (0xFA, final frame). Chunk
// payload:
//
//   varint new_process_count, { varint len, bytes }*   (ids are sequential)
//   varint string_count,      { varint len, bytes }*   (chunk string table,
//                                                       first-use order)
//   varint request_count, request records...
//
// Each request record is self-contained (the recorder guarantees edges never
// cross requests): request meta, nodes (id-delta, kind, label/resource as
// string-table indices, start relative to arrival, duration, bytes, solo,
// dha_pcie, hops as link index + raw f64 capacity bits), then edges (seq
// delta + endpoints relative to the first node id). The footer carries the
// journal totals, which readers cross-check against the chunks they saw.
//
// Determinism: the encoding has no timestamps, pointers, or hashes of
// addresses — the same run produces the same bytes, for any DEEPPLAN_JOBS.
#ifndef SRC_OBS_JOURNAL_STREAM_H_
#define SRC_OBS_JOURNAL_STREAM_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/check/trace_lint.h"
#include "src/obs/causal_graph.h"
#include "src/obs/metrics_registry.h"
#include "src/util/thread_annotations.h"

namespace deepplan {

inline constexpr char kJournalMagic[4] = {'D', 'P', 'J', 'L'};
inline constexpr std::uint32_t kJournalVersion = 1;
inline constexpr std::uint8_t kJournalChunkMarker = 0xC4;
inline constexpr std::uint8_t kJournalFooterMarker = 0xFA;

// --- low-level encoding primitives (exposed for tests) ---

void AppendVarint(std::string* out, std::uint64_t v);
std::uint64_t ZigzagEncode(std::int64_t v);
std::int64_t ZigzagDecode(std::uint64_t v);
void AppendZigzag(std::string* out, std::int64_t v);
// Bounds-checked LEB128 decode from `data` at `*pos`; false on overrun or a
// >10-byte (overlong) encoding.
bool ReadVarint(std::string_view data, std::size_t* pos, std::uint64_t* out);
bool ReadZigzag(std::string_view data, std::size_t* pos, std::int64_t* out);
// CRC-32 (IEEE 802.3, reflected 0xEDB88320) — Crc32("123456789") is the
// standard check value 0xCBF43926.
std::uint32_t Crc32(std::string_view data);

// Footer totals; also the shape of the journal.* metrics counters.
struct JournalTotals {
  std::uint64_t requests = 0;
  std::uint64_t incomplete_requests = 0;  // flushed with completion -1
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  std::uint64_t chunks = 0;

  bool operator==(const JournalTotals&) const = default;
};

struct JournalWriterOptions {
  // A chunk flushes when it holds this many requests or its encoded body
  // reaches this many bytes, whichever first. Both bound reader windows.
  std::size_t chunk_requests = 4096;
  std::size_t chunk_bytes = std::size_t{1} << 20;
};

// Streaming writer; plugs into a streaming CausalGraph as its CausalSink.
// When a MetricsRegistry is attached, each flushed chunk bumps the
// journal.requests / journal.incomplete_requests / journal.nodes /
// journal.edges / journal.chunks / journal.bytes counters; with no registry
// (and on the disabled-graph path, which never calls the sink) the writer
// touches no metrics at all.
//
// Internally synchronized: the writer is the retirement hand-off point, so
// every mutable field sits behind mu_ (GUARDED_BY, compile-checked). What the
// lock does NOT provide is retirement *order* — under PDES the caller must
// still hand requests over in a deterministic order for the journal bytes to
// be reproducible; today that order comes from the single-threaded recorder
// (or FlushOpenRequests' id-ordered sweep). The status accessors return by
// value for the same reason: a reference into guarded state would escape the
// lock. Lock order: this is a leaf for the graph (graph's stream mutex is
// held across OnRequestRetired) but acquires the registry's internal lock via
// the journal.* counters — so registry < writer < graph, never cyclic.
class JournalWriter : public CausalSink {
 public:
  JournalWriter() = default;
  ~JournalWriter() override;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  bool Open(const std::string& path, const JournalWriterOptions& options = {},
            MetricsRegistry* metrics = nullptr) EXCLUDES(mu_);

  void OnProcess(int id, const std::string& name) override EXCLUDES(mu_);
  void OnRequestRetired(CpRequestRecord&& record) override EXCLUDES(mu_);

  // Flushes the tail chunk, writes the footer, and closes. Returns false if
  // any write failed. Safe to call once; the destructor calls it if needed.
  bool Finish() EXCLUDES(mu_);

  bool ok() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return ok_;
  }
  std::string error() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return error_;
  }
  JournalTotals totals() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return totals_;
  }
  std::uint64_t bytes_written() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return bytes_written_;
  }

 private:
  std::uint64_t Intern(const std::string& s) REQUIRES(mu_);
  void EncodeRecord(const CpRequestRecord& record) REQUIRES(mu_);
  void FlushChunk() REQUIRES(mu_);
  void WriteFrame(std::uint8_t marker, const std::string& payload)
      REQUIRES(mu_);

  mutable Mutex mu_;
  std::ofstream out_ GUARDED_BY(mu_);
  bool open_ GUARDED_BY(mu_) = false;
  bool finished_ GUARDED_BY(mu_) = false;
  bool ok_ GUARDED_BY(mu_) = true;
  std::string error_ GUARDED_BY(mu_);
  JournalWriterOptions options_ GUARDED_BY(mu_);
  MetricsRegistry* metrics_ GUARDED_BY(mu_) = nullptr;
  JournalTotals totals_ GUARDED_BY(mu_);
  std::uint64_t bytes_written_ GUARDED_BY(mu_) = 0;
  // Current-chunk state, reset at every flush.
  std::vector<std::string> pending_processes_ GUARDED_BY(mu_);
  std::vector<std::string> strings_ GUARDED_BY(mu_);
  std::unordered_map<std::string, std::uint64_t> string_ids_ GUARDED_BY(mu_);
  std::string body_ GUARDED_BY(mu_);
  std::uint64_t chunk_requests_ GUARDED_BY(mu_) = 0;
  std::uint64_t chunk_incomplete_ GUARDED_BY(mu_) = 0;
  std::uint64_t chunk_nodes_ GUARDED_BY(mu_) = 0;
  std::uint64_t chunk_edges_ GUARDED_BY(mu_) = 0;
};

// One decoded chunk: process names registered in it (ids continue the
// cumulative sequence) plus its request records, in file order.
struct JournalChunk {
  std::vector<std::string> new_processes;
  std::vector<CpRequestRecord> requests;
};

enum class JournalReadStatus { kChunk, kFooter, kError };

// Sequential chunk iterator with full structural validation: header magic
// and version, per-frame CRC, in-range string/process references, strictly
// increasing node ids, edge endpoints resolving to nodes of the same request
// (dangling edges are rejected here, not downstream), and footer totals
// matching the chunks read. Any failure latches error() with an actionable
// message and Next() returns kError from then on.
class JournalReader {
 public:
  JournalReader() = default;
  JournalReader(const JournalReader&) = delete;
  JournalReader& operator=(const JournalReader&) = delete;

  bool Open(const std::string& path);

  // Advances one frame. kChunk fills `chunk`; kFooter means the journal
  // ended cleanly (totals() is now valid and Next() keeps returning
  // kFooter); kError means corruption (see error()).
  JournalReadStatus Next(JournalChunk* chunk);

  // Random access for windowed consumers: decodes the single frame starting
  // at `offset` (a value previously observed via next_offset()). Process
  // references are validated against `process_bound` — pass the total from a
  // completed sequential pass. Does not disturb the sequential cursor state
  // beyond the file position, so use a dedicated reader for random access.
  bool ReadChunkAt(std::uint64_t offset, std::uint64_t process_bound,
                   JournalChunk* chunk);

  // File offset of the next frame Next() would read.
  std::uint64_t next_offset() const { return offset_; }
  std::uint64_t chunks_read() const { return seen_.chunks; }
  std::uint64_t num_processes() const { return process_count_; }
  bool footer_seen() const { return footer_seen_; }
  const JournalTotals& totals() const { return totals_; }
  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& message);
  bool ReadFrame(std::uint8_t* marker, std::string* payload, bool* at_eof);
  bool DecodeChunk(const std::string& payload, std::uint64_t process_bound,
                   JournalChunk* chunk, std::string* error) const;

  std::ifstream in_;
  std::string path_;
  bool open_ = false;
  bool footer_seen_ = false;
  std::string error_;
  std::uint64_t offset_ = 0;
  std::uint64_t process_count_ = 0;
  JournalTotals seen_;    // accumulated over chunks read sequentially
  JournalTotals totals_;  // from the footer
};

// --- whole-journal conversions ---

// True if `path` starts with the binary journal magic (cheap sniff for tools
// that accept either representation).
bool IsBinaryJournalFile(const std::string& path);

// Reads a complete binary journal into an in-memory CausalGraph. Requires a
// clean footer; reassembles global node-id and edge-seq order, so
// out->ToJson() is byte-identical to the graph that wrote the journal
// regardless of retirement order. Incomplete (flushed) requests keep
// completion -1.
bool ReadJournalToGraph(const std::string& path, CausalGraph* out,
                        std::string* error);

// Dumps an in-memory graph as a binary journal, requests in id (= arrival)
// order. Fails on graphs with cross-request edges (the chunked format cannot
// represent them; no recorder produces them).
bool WriteGraphToJournal(const CausalGraph& graph, const std::string& path,
                         const JournalWriterOptions& options = {},
                         MetricsRegistry* metrics = nullptr,
                         std::string* error = nullptr);

// --- lint (trace_lint --journal) ---

struct JournalLintInfo {
  JournalTotals totals;
  std::uint64_t processes = 0;
};

// Walks the whole journal through the validating reader: header/version
// check, per-chunk CRC verification, record-level reference checks
// (including dangling-edge diagnosis), and footer/truncation diagnosis.
// Reuses TraceLintResult for error accounting (num_events = requests seen).
check::TraceLintResult LintJournalFile(
    const std::string& path, JournalLintInfo* info = nullptr,
    const check::TraceLintOptions& options = {});

}  // namespace deepplan

#endif  // SRC_OBS_JOURNAL_STREAM_H_
