#include "src/obs/trace_recorder.h"

#include <utility>

#include "src/obs/selfprof.h"

namespace deepplan {

int TraceRecorder::RegisterProcess(std::string_view name) {
  if (!enabled_) {
    return 0;
  }
  doc_.process_names.emplace_back(name);
  return static_cast<int>(doc_.process_names.size() - 1);
}

void TraceRecorder::Span(int pid, std::string_view track, std::string_view name,
                         Nanos start, Nanos duration) {
  if (!enabled_) {
    return;
  }
  doc_.events.push_back(TraceEvent{TracePhase::kSpan, pid, std::string(track),
                                   std::string(name), start, duration, 0.0});
}

void TraceRecorder::Instant(int pid, std::string_view track, std::string_view name,
                            Nanos ts) {
  if (!enabled_) {
    return;
  }
  doc_.events.push_back(TraceEvent{TracePhase::kInstant, pid, std::string(track),
                                   std::string(name), ts, 0, 0.0});
}

void TraceRecorder::Counter(int pid, std::string_view track, std::string_view series,
                            Nanos ts, double value) {
  if (!enabled_) {
    return;
  }
  doc_.events.push_back(TraceEvent{TracePhase::kCounter, pid, std::string(track),
                                   std::string(series), ts, 0, value});
}

void TraceRecorder::AsyncBegin(int pid, std::string_view track,
                               std::string_view name, std::uint64_t id, Nanos ts) {
  if (!enabled_) {
    return;
  }
  doc_.events.push_back(TraceEvent{TracePhase::kAsyncBegin, pid,
                                   std::string(track), std::string(name), ts, 0,
                                   0.0, id});
}

void TraceRecorder::AsyncEnd(int pid, std::string_view track,
                             std::string_view name, std::uint64_t id, Nanos ts) {
  if (!enabled_) {
    return;
  }
  doc_.events.push_back(TraceEvent{TracePhase::kAsyncEnd, pid,
                                   std::string(track), std::string(name), ts, 0,
                                   0.0, id});
}

void TraceRecorder::Adopt(TraceRecorder&& other) {
  if (!enabled_) {
    return;
  }
  const int offset = static_cast<int>(doc_.process_names.size());
  for (std::string& name : other.doc_.process_names) {
    doc_.process_names.push_back(std::move(name));
  }
  doc_.events.reserve(doc_.events.size() + other.doc_.events.size());
  for (TraceEvent& e : other.doc_.events) {
    e.pid += offset;
    doc_.events.push_back(std::move(e));
  }
  other.doc_.process_names.clear();
  other.doc_.events.clear();
}

std::string TraceRecorder::ToJson() const {
  DP_SELFPROF_SCOPE(kTraceSerialize);
  return ChromeTraceWriter::ToJson(doc_);
}

bool TraceRecorder::WriteTo(const std::string& path) const {
  DP_SELFPROF_SCOPE(kTraceSerialize);
  return ChromeTraceWriter::WriteTo(path, doc_);
}

}  // namespace deepplan
